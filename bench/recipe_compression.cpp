// File-recipe compression (extension) — quantifies how much of Fig. 7(c)'s
// FileManifest metadata the Meister-style post-process codec removes for
// each algorithm. MHD's run-length recipes are already small; the
// per-chunk recipes of the baselines compress the most in relative terms
// (sequential same-chunk references encode as ~3 bytes/entry).
#include "bench_common.h"
#include "mhd/format/recipe_codec.h"

using namespace mhd;
using namespace mhd::bench;

int main(int argc, char** argv) {
  BenchOptions o = BenchOptions::parse(argc, argv);
  const Flags flags(argc, argv);
  const std::uint32_t ecs =
      static_cast<std::uint32_t>(flags.get_int("table_ecs", 1024));
  print_header("Extension: file-recipe compression (Meister et al.)",
               "recipes shrink several-fold; the paper notes recipes are "
               "only one of many metadata types",
               o);
  const Corpus corpus = o.make_corpus();

  TextTable t({"Algorithm", "Recipes raw KB", "Compressed KB", "Ratio",
               "Share of total metadata"});
  for (const auto& algo : engine_names()) {
    MemoryBackend backend;
    ObjectStore store(backend);
    auto engine = make_engine(algo, store, o.engine_config(ecs));
    for (std::size_t i = 0; i < corpus.files().size(); ++i) {
      auto src = corpus.open(i);
      engine->add_file(corpus.files()[i].name, *src);
    }
    engine->finish();

    std::uint64_t raw = 0, compressed = 0;
    for (const auto& name : backend.list(Ns::kFileManifest)) {
      const auto data = backend.get(Ns::kFileManifest, name);
      const auto fm = FileManifest::deserialize(*data);
      if (!fm) continue;
      const ByteVec packed = compress_recipe(*fm);
      // Safety: the codec must round-trip every real recipe.
      const auto back = decompress_recipe(packed);
      if (!back || back->entries() != fm->entries()) {
        std::fprintf(stderr, "codec round-trip failed for %s\n", name.c_str());
        return 1;
      }
      raw += data->size();
      compressed += packed.size();
    }
    const auto meta = MetadataBreakdown::from(backend);
    t.add_row({engine->name(), TextTable::num(raw / 1024),
               TextTable::num(compressed / 1024),
               TextTable::num(compressed == 0
                                  ? 0.0
                                  : static_cast<double>(raw) /
                                        static_cast<double>(compressed),
                              2),
               pct(static_cast<double>(raw) /
                       static_cast<double>(meta.total_bytes()),
                   1)});
  }
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}
