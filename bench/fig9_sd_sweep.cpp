// Fig. 9 — BF-MHD at different SD values.
//
// The paper sweeps SD = 1000, 500, 250 (we default to the bench-scaled
// 64, 32, 16 — pass --sd_list=1000,500,250 with a large --size_mb to match
// the paper's absolute parameters). Expected shape: smaller SD improves
// the trade-off between real DER and both MetaDataRatio and
// ThroughputRatio, because metadata growth is slow while the duplicate
// data detected rises quickly.
#include "bench_common.h"

using namespace mhd;
using namespace mhd::bench;

int main(int argc, char** argv) {
  BenchOptions o = BenchOptions::parse(argc, argv);
  const Flags flags(argc, argv);
  std::vector<std::int64_t> sd_list = flags.get_int_list(
      "sd_list", {static_cast<std::int64_t>(o.sd),
                  static_cast<std::int64_t>(o.sd) / 2,
                  static_cast<std::int64_t>(o.sd) / 4});
  print_header("Fig. 9: BF-MHD at different SD values",
               "smaller SD gives a better real-DER vs metadata and vs "
               "throughput trade-off",
               o);
  const Corpus corpus = o.make_corpus();

  TextTable t({"SD", "ECS", "MetaDataRatio", "ThroughputRatio", "Real DER",
               "Data-only DER"});
  TextTable csv({"sd", "ecs", "metadata_ratio_pct", "throughput_ratio",
                 "real_der", "data_only_der"});
  for (const auto sd : sd_list) {
    BenchOptions os = o;
    os.sd = static_cast<std::uint32_t>(sd);
    for (const auto ecs : o.ecs_list) {
      const auto r = run_experiment(
          os.spec("bf-mhd", static_cast<std::uint32_t>(ecs)), corpus);
      t.add_row({TextTable::num(static_cast<std::uint64_t>(sd)),
                 TextTable::num(static_cast<std::uint64_t>(ecs)),
                 pct(r.metadata_ratio()),
                 TextTable::num(r.throughput_ratio(), 3),
                 TextTable::num(r.real_der(), 3),
                 TextTable::num(r.data_only_der(), 3)});
      csv.add_row({TextTable::num(static_cast<std::uint64_t>(sd)),
                   TextTable::num(static_cast<std::uint64_t>(ecs)),
                   TextTable::num(r.metadata_ratio() * 100, 5),
                   TextTable::num(r.throughput_ratio(), 4),
                   TextTable::num(r.real_der(), 4),
                   TextTable::num(r.data_only_der(), 4)});
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("CSV:\n%s", csv.to_csv().c_str());
  std::printf("\nexpected shape: at a fixed ECS, the smaller-SD rows show "
              "higher real DER for a modest metadata increase.\n");
  return 0;
}
