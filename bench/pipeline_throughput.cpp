// pipeline_throughput — end-to-end ingest MB/s, serial vs. the staged
// concurrent pipeline, across hash-pool sizes:
//
//   ./pipeline_throughput [--size_mb=96] [--ecs=4096] [--reps=3]
//                         [--workers=0,1,2,4,8] [--engine=cdc]
//                         [--chunker=gear] [--chunker-impl=auto]
//                         [--hash-impl=auto] [--seed=1]
//                         [--json=BENCH_pipeline.json]
//
// Each row drives the full corpus through a fresh engine + in-memory
// store with the given hash-pool size (0 = the serial reference path) and
// reports best-of-reps throughput. The determinism contract is enforced
// on every run: any divergence from the serial counters or stored bytes
// aborts the bench with a non-zero exit — a pipeline that is fast but
// wrong never produces a number. Per-stage busy/idle/queue stats for the
// largest pool are printed so a regression is attributable to a stage.
//
// A final serial run repeats the ingest through the CRC32C FramedBackend:
// its dedup counters must match the bare serial reference bit for bit
// (framing is invisible to the engine), and the physical − logical byte
// delta is reported as the framing overhead — in the table and in the
// JSON baseline.
//
// BENCH_pipeline.json at the repo root is the recorded baseline from this
// harness (see --json).
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "mhd/sim/runner.h"
#include "mhd/store/framed_backend.h"
#include "mhd/store/memory_backend.h"
#include "mhd/util/flags.h"
#include "mhd/util/table.h"
#include "mhd/util/timer.h"
#include "mhd/workload/presets.h"

namespace {

using namespace mhd;

struct Row {
  std::uint32_t workers = 0;
  double mb_per_s = 0;
  EngineCounters counters;
  std::uint64_t stored_bytes = 0;    // logical chunk payload bytes
  std::uint64_t physical_bytes = 0;  // framed runs: bytes on the raw store
  bool framed = false;
  PipelineStats stats;
};

struct RunConfig {
  std::string engine_name;
  EngineConfig engine;
  int reps = 3;
};

/// The corpus pre-materialized in RAM: ingest throughput is measured in
/// the page-cache regime (bytes already resident), so the number reflects
/// the dedup pipeline itself, not the synthetic generator's speed.
struct ResidentCorpus {
  std::vector<std::string> names;
  std::vector<ByteVec> data;
  std::uint64_t total_bytes = 0;

  explicit ResidentCorpus(const Corpus& corpus) {
    for (std::size_t i = 0; i < corpus.files().size(); ++i) {
      auto src = corpus.open(i);
      ByteVec file(corpus.files()[i].bytes);
      std::size_t off = 0;
      while (off < file.size()) {
        const std::size_t n =
            src->read({file.data() + off, file.size() - off});
        if (n == 0) break;
        off += n;
      }
      file.resize(off);
      total_bytes += off;
      names.push_back(corpus.files()[i].name);
      data.push_back(std::move(file));
    }
  }
};

Row measure(const RunConfig& rc, const ResidentCorpus& corpus,
            std::uint32_t workers, bool framed = false) {
  Row row;
  row.workers = workers;
  row.framed = framed;
  double best = 0;
  for (int rep = 0; rep < rc.reps; ++rep) {
    MemoryBackend backend;
    std::optional<FramedBackend> framing;
    if (framed) framing.emplace(backend);
    StorageBackend& active = framed ? static_cast<StorageBackend&>(*framing)
                                    : backend;
    ObjectStore store(active);
    EngineConfig cfg = rc.engine;
    cfg.ingest_threads = workers;
    auto engine = make_engine(rc.engine_name, store, cfg);
    Stopwatch watch;
    for (std::size_t i = 0; i < corpus.data.size(); ++i) {
      MemorySource src(corpus.data[i]);
      engine->add_file(corpus.names[i], src);
    }
    const double secs = watch.seconds();
    best = std::max(best, corpus.total_bytes / 1048576.0 / secs);
    row.counters = engine->counters();
    row.stored_bytes = active.content_bytes(Ns::kDiskChunk);
    row.physical_bytes =
        framed ? framing->physical_bytes(Ns::kDiskChunk) : row.stored_bytes;
    row.stats = engine->pipeline_stats();
  }
  row.mb_per_s = best;
  return row;
}

/// Any mismatch vs. the serial reference is a correctness bug, not noise.
bool diverges(const Row& serial, const Row& row, std::string& why) {
  const auto& a = serial.counters;
  const auto& b = row.counters;
  auto check = [&](const char* name, std::uint64_t x, std::uint64_t y) {
    if (x == y) return false;
    why = std::string(name) + ": serial=" + std::to_string(x) +
          " workers=" + std::to_string(row.workers) + " -> " +
          std::to_string(y);
    return true;
  };
  return check("input_chunks", a.input_chunks, b.input_chunks) ||
         check("dup_chunks", a.dup_chunks, b.dup_chunks) ||
         check("dup_bytes", a.dup_bytes, b.dup_bytes) ||
         check("stored_chunks", a.stored_chunks, b.stored_chunks) ||
         check("stored_bytes", serial.stored_bytes, row.stored_bytes);
}

void write_json(const std::string& path, const RunConfig& rc,
                const ResidentCorpus& corpus, const std::vector<Row>& rows,
                double serial_mb_s, const Row& framed) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"pipeline_throughput\",\n"
               "  \"engine\": \"%s\",\n  \"ecs\": %u,\n"
               "  \"hash_impl\": \"%s\",\n"
               "  \"corpus_mb\": %.1f,\n  \"host_cpus\": %u,\n"
               "  \"rows\": [\n",
               rc.engine_name.c_str(), rc.engine.ecs,
               resolved_sha1_impl_name(rc.engine.hash_impl),
               corpus.total_bytes / 1048576.0,
               std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f,
                 "    {\"workers\": %u, \"mb_per_s\": %.1f, "
                 "\"speedup\": %.2f}%s\n",
                 r.workers, r.mb_per_s, r.mb_per_s / serial_mb_s,
                 i + 1 < rows.size() ? "," : "");
  }
  const std::uint64_t overhead = framed.physical_bytes - framed.stored_bytes;
  std::fprintf(f,
               "  ],\n  \"framed\": {\n"
               "    \"mb_per_s\": %.1f,\n    \"vs_serial\": %.2f,\n"
               "    \"stored_data_bytes\": %llu,\n"
               "    \"physical_data_bytes\": %llu,\n"
               "    \"framing_overhead_bytes\": %llu,\n"
               "    \"framing_overhead_pct\": %.3f\n  }\n}\n",
               framed.mb_per_s, framed.mb_per_s / serial_mb_s,
               static_cast<unsigned long long>(framed.stored_bytes),
               static_cast<unsigned long long>(framed.physical_bytes),
               static_cast<unsigned long long>(overhead),
               framed.stored_bytes == 0
                   ? 0.0
                   : 100.0 * overhead / framed.stored_bytes);
  std::fclose(f);
  std::printf("\nbaseline written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  RunConfig rc;
  rc.engine_name = flags.get("engine", "cdc");
  rc.reps = static_cast<int>(flags.get_uint("reps", 3, 1, 100));
  rc.engine.ecs =
      static_cast<std::uint32_t>(flags.get_uint("ecs", 4096, 64, 1 << 20));
  rc.engine.sd = 32;
  // Gear (SIMD scan) by default so chunking is cheap and SHA-1 dominates —
  // the regime the hash pool is built for; override to study others.
  rc.engine.chunker = chunker_kind_from_string(flags.get("chunker", "gear"));
  rc.engine.chunker_impl = chunker_impl_from_string(
      flags.get_choice("chunker-impl", {"auto", "scalar", "simd"}, "auto"));
  rc.engine.hash_impl = sha1_impl_from_string(flags.get_choice(
      "hash-impl", {"auto", "shani", "simd", "portable"}, "auto"));
  rc.engine.pipeline_queue_depth = static_cast<std::uint32_t>(
      flags.get_uint("pipeline-queue-depth", 64, 1, 65536));

  std::vector<std::uint32_t> workers;
  for (const auto w : flags.get_int_list("workers", {0, 1, 2, 4, 8})) {
    workers.push_back(static_cast<std::uint32_t>(w));
  }
  if (workers.empty() || workers.front() != 0) {
    workers.insert(workers.begin(), 0);  // the serial reference is mandatory
  }

  const auto size_mb = flags.get_uint("size_mb", 96, 1, 1 << 20);
  const auto seed = flags.get_uint("seed", 1);
  const ResidentCorpus corpus{Corpus(icpp13_preset(size_mb, seed))};

  const unsigned cpus = std::thread::hardware_concurrency();
  std::printf("=== ingest pipeline throughput ===\n");
  std::printf(
      "engine=%s ecs=%u chunker=%s sha1=%s corpus=%lluMB (%zu files, in "
      "RAM), best of %d, host cpus=%u\n\n",
      rc.engine_name.c_str(), rc.engine.ecs,
      chunker_kind_name(rc.engine.chunker),
      resolved_sha1_impl_name(rc.engine.hash_impl),
      static_cast<unsigned long long>(size_mb), corpus.data.size(), rc.reps,
      cpus);
  if (cpus <= 1) {
    std::printf(
        "NOTE: single-CPU host — hash workers time-slice one core, so no\n"
        "speedup is possible here; the table measures pipeline overhead\n"
        "(and the divergence check still proves determinism).\n\n");
  }

  std::vector<Row> rows;
  for (const auto w : workers) rows.push_back(measure(rc, corpus, w));

  const double serial_mb_s = rows.front().mb_per_s;
  TextTable t({"hash workers", "MB/s", "speedup"});
  for (const auto& row : rows) {
    std::string why;
    if (diverges(rows.front(), row, why)) {
      std::fprintf(stderr,
                   "FATAL: pipelined result diverges from serial — %s\n",
                   why.c_str());
      return 1;
    }
    t.add_row({row.workers == 0 ? "serial" : std::to_string(row.workers),
               TextTable::num(row.mb_per_s, 1),
               TextTable::num(row.mb_per_s / serial_mb_s, 2) + "x"});
  }
  std::printf("%s", t.to_string().c_str());

  // Framed reference run: the CRC32C framing must be invisible to the
  // dedup engine (identical counters and logical bytes) and costs only
  // the header/trailer bytes it adds on the raw store.
  const Row framed = measure(rc, corpus, 0, /*framed=*/true);
  {
    std::string why;
    if (diverges(rows.front(), framed, why)) {
      std::fprintf(stderr,
                   "FATAL: framed result diverges from bare serial — %s\n",
                   why.c_str());
      return 1;
    }
  }
  const std::uint64_t overhead = framed.physical_bytes - framed.stored_bytes;
  std::printf(
      "\nCRC32C framing (serial): %.1f MB/s (%.2fx of bare), overhead "
      "%llu bytes = %.3f%% of %.1f MB stored\n",
      framed.mb_per_s, framed.mb_per_s / serial_mb_s,
      static_cast<unsigned long long>(overhead),
      framed.stored_bytes == 0 ? 0.0
                               : 100.0 * overhead / framed.stored_bytes,
      framed.stored_bytes / 1048576.0);

  const auto& widest = rows.back();
  if (!widest.stats.empty()) {
    std::printf("\nstage breakdown at %u workers:\n", widest.workers);
    TextTable p({"Stage", "Busy s", "Idle s", "Util", "Queue HWM"});
    for (const auto& s : widest.stats.stages) {
      p.add_row({s.stage, TextTable::num(s.busy_seconds, 3),
                 TextTable::num(s.idle_seconds, 3),
                 TextTable::num(s.utilization() * 100, 1) + "%",
                 TextTable::num(s.queue_high_water)});
    }
    std::printf("%s", p.to_string().c_str());
  }

  const std::string json = flags.get("json", "");
  if (!json.empty()) {
    write_json(json, rc, corpus, rows, serial_mb_s, framed);
  }
  return 0;
}
