// Fig. 7 — metadata comparison vs ECS (four panels).
//
//  (a) inodes per MB of input        : BF-MHD ~= SubChunk < Bimodal <
//                                      SparseIndexing
//  (b) Manifest+Hook MetaDataRatio   : BF-MHD < Bimodal < SubChunk <
//                                      SparseIndexing
//  (c) FileManifest MetaDataRatio    : BF-MHD lowest (run-length entries)
//  (d) total MetaDataRatio           : BF-MHD best overall
#include "bench_common.h"

using namespace mhd;
using namespace mhd::bench;

int main(int argc, char** argv) {
  const BenchOptions o = BenchOptions::parse(argc, argv);
  print_header("Fig. 7: metadata vs ECS",
               "BF-MHD produces the least metadata at every ECS; "
               "SparseIndexing the most (panels a,b,d); BF-MHD's run-length "
               "FileManifests are the smallest (panel c)",
               o);
  const Corpus corpus = o.make_corpus();
  const std::vector<std::string> algos = {"bf-mhd", "bimodal", "subchunk",
                                          "sparseindexing"};

  std::vector<std::vector<ExperimentResult>> results;  // [ecs][algo]
  for (const auto ecs : o.ecs_list) {
    std::vector<ExperimentResult> row;
    for (const auto& a : algos) {
      row.push_back(
          run_experiment(o.spec(a, static_cast<std::uint32_t>(ecs)), corpus));
    }
    results.push_back(std::move(row));
  }

  auto panel = [&](const char* title, auto metric, int precision) {
    TextTable t({"ECS (Bytes)", "BF-MHD", "Bimodal", "SubChunk",
                 "SparseIndexing"});
    for (std::size_t i = 0; i < results.size(); ++i) {
      std::vector<std::string> cells = {
          TextTable::num(static_cast<std::uint64_t>(o.ecs_list[i]))};
      for (const auto& r : results[i]) {
        cells.push_back(TextTable::num(metric(r), precision));
      }
      t.add_row(std::move(cells));
    }
    std::printf("--- %s ---\n%s\n", title, t.to_string().c_str());
  };

  panel("(a) Number of inodes per MB vs ECS",
        [](const ExperimentResult& r) { return r.inodes_per_mb(); }, 3);
  panel("(b) Manifest+Hook MetaDataRatio (%) vs ECS",
        [](const ExperimentResult& r) {
          return r.manifest_hook_metadata_ratio() * 100;
        },
        4);
  panel("(c) FileManifest MetaDataRatio (%) vs ECS",
        [](const ExperimentResult& r) {
          return r.filemanifest_metadata_ratio() * 100;
        },
        4);
  panel("(d) Total MetaDataRatio (%) vs ECS",
        [](const ExperimentResult& r) { return r.metadata_ratio() * 100; }, 4);

  std::printf("CSV (panel d):\n");
  TextTable csv({"ecs", "bf_mhd", "bimodal", "subchunk", "sparseindexing"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    csv.add_row({TextTable::num(static_cast<std::uint64_t>(o.ecs_list[i])),
                 TextTable::num(results[i][0].metadata_ratio() * 100, 5),
                 TextTable::num(results[i][1].metadata_ratio() * 100, 5),
                 TextTable::num(results[i][2].metadata_ratio() * 100, 5),
                 TextTable::num(results[i][3].metadata_ratio() * 100, 5)});
  }
  std::printf("%s", csv.to_csv().c_str());
  return 0;
}
