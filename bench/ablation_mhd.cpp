// Ablation study of MHD's three design choices (DESIGN.md section 6):
//
//   shm-off    : hook sampling without hash merging — every stored chunk
//                keeps its own 37-byte manifest entry. Shows how much of
//                the metadata harnessing comes from SHM itself.
//   edge-off   : HHR splits produce no EdgeHash — identical future slices
//                re-trigger byte reloads (more chunk-input accesses).
//   fwd-only   : forward-only match extension — duplicate data *behind*
//                an anchor (between two hooks) is permanently missed.
//   bloom-off  : TABLE II's "without bloom filter" row — every unique
//                chunk pays a failed on-disk query.
#include "bench_common.h"

using namespace mhd;
using namespace mhd::bench;

int main(int argc, char** argv) {
  BenchOptions o = BenchOptions::parse(argc, argv);
  const Flags flags(argc, argv);
  const std::uint32_t ecs =
      static_cast<std::uint32_t>(flags.get_int("table_ecs", 1024));
  print_header("Ablation: MHD design choices",
               "each row disables one mechanism of BF-MHD", o);
  const Corpus corpus = o.make_corpus();

  struct Variant {
    const char* label;
    void (*tweak)(EngineConfig&);
  };
  const Variant variants[] = {
      {"BF-MHD (full)", [](EngineConfig&) {}},
      {"shm-off", [](EngineConfig& c) { c.enable_shm = false; }},
      {"edge-off", [](EngineConfig& c) { c.enable_edge_hash = false; }},
      {"fwd-only",
       [](EngineConfig& c) { c.enable_backward_extension = false; }},
      {"bloom-off", [](EngineConfig& c) { c.use_bloom = false; }},
  };

  TextTable t({"Variant", "MetaDataRatio", "Real DER", "Data-only DER",
               "HHR reloads", "Queries", "Total accesses"});
  for (const auto& v : variants) {
    RunSpec spec = o.spec("mhd", ecs);
    spec.engine.use_bloom = true;
    v.tweak(spec.engine);
    const auto r = run_experiment(spec, corpus);
    t.add_row({v.label, pct(r.metadata_ratio()),
               TextTable::num(r.real_der(), 3),
               TextTable::num(r.data_only_der(), 3),
               TextTable::num(r.counters.hhr_chunk_reloads),
               TextTable::num(r.stats.count(AccessKind::kSmallChunkQuery) +
                              r.stats.count(AccessKind::kBigChunkQuery)),
               TextTable::num(r.stats.total_accesses())});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "expected shape: shm-off trades metadata for detection — every chunk\n"
      "stays individually addressable, so DER rises while manifest bytes\n"
      "grow ~SD/2-fold (the growth looks modest at bench scale where N is\n"
      "small; at the paper's SD=1000 and billions of chunks the 37N-byte\n"
      "manifests dominate RAM and I/O, which is the point of SHM).\n"
      "edge-off raises HHR chunk reloads (repeat re-chunking of identical\n"
      "slices); fwd-only loses the duplicate data behind each anchor;\n"
      "bloom-off multiplies duplication queries (TABLE II's no-bloom row).\n");
  return 0;
}
