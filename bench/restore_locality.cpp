// Restore locality (extension) — the read-path consequence of metadata
// harnessing. The paper evaluates write throughput only; a backup system
// also has to restore. Two experiments:
//
//  1. Recipe positioning model: a restore performs one positioning per
//     FileManifest entry run and per container switch, so MHD's run-length
//     recipes restore with orders of magnitude fewer seeks than per-chunk
//     recipes, and SubChunk/SparseIndexing pay extra container switches
//     from their scattered-container layouts.
//
//  2. Container-store restore tradeoff: ingest the multi-generation corpus
//     through the real container store under --rewrite=none|cbr|har and
//     *actually restore* every generation through the bounded-cache
//     restore path, measuring restore MB/s, containers-read-per-MB and
//     CFL per generation — the fragmentation-accumulation curve the
//     rewrite algorithms exist to flatten — against the dedup ratio each
//     mode gave up. --json-out=FILE dumps the curve (BENCH_restore.json).
#include <fstream>

#include "bench_common.h"
#include "mhd/dedup/rewrite.h"
#include "mhd/format/file_manifest.h"
#include "mhd/store/container_store.h"

using namespace mhd;
using namespace mhd::bench;

namespace {

struct RestorePoint {
  std::string mode;
  std::uint32_t generation = 0;
  RestoreMetrics m;
};

struct ModeSummary {
  std::string mode;
  double real_der = 0;
  double rewrite_ratio = 0;
  std::uint64_t rewritten_bytes = 0;
  std::uint64_t containers_sealed = 0;
};

}  // namespace

int main(int argc, char** argv) {
  BenchOptions o = BenchOptions::parse(argc, argv);
  const Flags flags(argc, argv);
  const std::uint32_t ecs =
      static_cast<std::uint32_t>(flags.get_int("table_ecs", 1024));
  print_header("Extension: restore locality",
               "run-length recipes (BF-MHD) need the fewest positionings "
               "per restored MB; CBR/HAR rewriting flattens the CFL decay "
               "across generations",
               o);
  const Corpus corpus = o.make_corpus();
  const DiskModel disk;

  TextTable t({"Algorithm", "Recipe entries", "Container switches",
               "Seeks per MB", "Modeled restore MB/s"});
  for (const auto& algo : engine_names()) {
    MemoryBackend backend;
    ObjectStore store(backend);
    auto engine = make_engine(algo, store, o.engine_config(ecs));
    for (std::size_t i = 0; i < corpus.files().size(); ++i) {
      auto src = corpus.open(i);
      engine->add_file(corpus.files()[i].name, *src);
    }
    engine->finish();

    std::uint64_t entries = 0;
    std::uint64_t switches = 0;
    std::uint64_t bytes = 0;
    for (const auto& name : backend.list(Ns::kFileManifest)) {
      const auto raw = backend.get(Ns::kFileManifest, name);
      const auto fm = raw ? FileManifest::deserialize(*raw) : std::nullopt;
      if (!fm) continue;
      entries += fm->entries().size();
      bytes += fm->total_length();
      const Digest* prev = nullptr;
      for (const auto& e : fm->entries()) {
        if (prev == nullptr || !(*prev == e.chunk_name)) ++switches;
        prev = &e.chunk_name;
      }
    }
    // Restore cost model: one positioning per recipe entry plus the
    // sequential transfer of the restored bytes.
    const double seconds =
        static_cast<double>(entries) * disk.seek_seconds +
        static_cast<double>(bytes) / disk.read_bw;
    t.add_row({engine->name(), TextTable::num(entries),
               TextTable::num(switches),
               TextTable::num(static_cast<double>(entries) /
                                  (static_cast<double>(bytes) / 1048576.0),
                              1),
               TextTable::num(bytes / 1048576.0 / seconds, 1)});
  }
  std::printf("%s\n", t.to_string().c_str());

  // ---- Part 2: real restores through the container store ----
  const std::string algo = flags.get("algo", "bf-mhd");
  const std::uint64_t container_bytes =
      flags.get_size("container-mb", 1ull << 20, 64ull << 10, 1ull << 40,
                     /*unit=*/1ull << 20);
  const std::uint64_t cache_bytes =
      flags.get_size("restore-cache-mb", 8ull << 20, 64ull << 10, 1ull << 40,
                     /*unit=*/1ull << 20);

  std::printf("container-store restores: %s, %.1f MB containers, %.0f MB "
              "restore cache, %u generations\n\n",
              algo.c_str(), container_bytes / 1048576.0,
              cache_bytes / 1048576.0, corpus.config().snapshots);

  std::vector<RestorePoint> curve;
  std::vector<ModeSummary> summaries;
  for (const RewriteMode mode :
       {RewriteMode::kNone, RewriteMode::kCbr, RewriteMode::kHar}) {
    MemoryBackend mem;
    ContainerConfig cc;
    cc.container_bytes = container_bytes;
    cc.cache_bytes = cache_bytes;
    ContainerBackend containers(mem, cc);
    ObjectStore store(containers);

    EngineConfig cfg = o.engine_config(ecs);
    cfg.container_bytes = container_bytes;
    cfg.restore_cache_bytes = cache_bytes;
    cfg.rewrite = mode;
    cfg.cbr_segment_bytes = flags.get_size(
        "cbr-segment-mb", 2ull << 20, 64ull << 10, 1ull << 40, 1ull << 20);
    // Default cap 3: corpus images are small (segments never span files),
    // so the per-segment budget must be tight for capping to bind.
    cfg.cbr_cap = static_cast<std::uint32_t>(
        flags.get_uint("cbr-cap", 3, 1, 65536));
    cfg.har_utilization = flags.get_double("har-util", 0.5);

    auto engine = make_engine(algo, store, cfg);
    for (std::size_t i = 0; i < corpus.files().size(); ++i) {
      if (i > 0 &&
          corpus.files()[i].snapshot != corpus.files()[i - 1].snapshot) {
        engine->end_snapshot();
      }
      auto src = corpus.open(i);
      engine->add_file(corpus.files()[i].name, *src);
    }
    engine->end_snapshot();
    engine->finish();
    containers.flush();

    const ExperimentResult r = summarize(engine->name(), *engine, containers, disk);
    summaries.push_back({std::string(rewrite_mode_name(mode)), r.real_der(),
                         r.rewrite_ratio(), r.counters.rewritten_bytes,
                         r.containers_sealed});

    // Restore each generation through the bounded-cache read path.
    for (std::uint32_t g = 0; g < corpus.config().snapshots; ++g) {
      std::vector<std::string> names;
      for (const auto& f : corpus.files()) {
        if (f.snapshot == g) names.push_back(f.name);
      }
      if (names.empty()) continue;
      RestorePoint p;
      p.mode = rewrite_mode_name(mode);
      p.generation = g;
      p.m = measure_restore(containers, names);
      curve.push_back(p);
    }
  }

  TextTable rt({"Rewrite", "Gen", "Restore MB/s", "Containers/MB", "CFL"});
  for (const auto& p : curve) {
    rt.add_row({p.mode, TextTable::num(static_cast<std::uint64_t>(p.generation)),
                TextTable::num(p.m.mb_per_s(), 1),
                TextTable::num(p.m.containers_read_per_mb(), 3),
                TextTable::num(p.m.cfl, 3)});
  }
  std::printf("%s\n", rt.to_string().c_str());

  TextTable st({"Rewrite", "real DER", "Rewritten MB", "Rewrite ratio",
                "Containers sealed"});
  for (const auto& s : summaries) {
    st.add_row({s.mode, TextTable::num(s.real_der, 3),
                TextTable::num(s.rewritten_bytes / 1048576.0, 2),
                pct(s.rewrite_ratio, 2),
                TextTable::num(s.containers_sealed)});
  }
  std::printf("%s\n", st.to_string().c_str());
  std::printf("reading: CFL decays with generation under none as old copies "
              "scatter;\ncbr/har trade dedup ratio (rewritten MB) for a "
              "flatter curve.\n");

  const std::string json_out = flags.get("json-out", "");
  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::trunc);
    out << "{\n  \"bench\": \"restore_locality\",\n"
        << "  \"algo\": \"" << algo << "\",\n"
        << "  \"corpus_mb\": " << o.total_mb << ",\n"
        << "  \"generations\": " << corpus.config().snapshots << ",\n"
        << "  \"container_bytes\": " << container_bytes << ",\n"
        << "  \"restore_cache_bytes\": " << cache_bytes << ",\n  \"modes\": [";
    for (std::size_t i = 0; i < summaries.size(); ++i) {
      const auto& s = summaries[i];
      out << (i ? "," : "") << "\n    {\"rewrite\": \"" << s.mode
          << "\", \"real_der\": " << s.real_der
          << ", \"rewrite_ratio\": " << s.rewrite_ratio
          << ", \"rewritten_bytes\": " << s.rewritten_bytes
          << ", \"containers_sealed\": " << s.containers_sealed << "}";
    }
    out << "\n  ],\n  \"restores\": [";
    for (std::size_t i = 0; i < curve.size(); ++i) {
      const auto& p = curve[i];
      out << (i ? "," : "") << "\n    {\"rewrite\": \"" << p.mode
          << "\", \"generation\": " << p.generation
          << ", \"bytes\": " << p.m.bytes
          << ", \"restore_mb_per_s\": " << p.m.mb_per_s()
          << ", \"container_reads\": " << p.m.container_reads
          << ", \"containers_read_per_mb\": " << p.m.containers_read_per_mb()
          << ", \"cfl\": " << p.m.cfl << "}";
    }
    out << "\n  ]\n}\n";
    std::printf("wrote %s\n", json_out.c_str());
  }
  return 0;
}
