// Restore locality (extension) — the read-path consequence of metadata
// harnessing. The paper evaluates write throughput only; a backup system
// also has to restore. A restore performs one positioning per FileManifest
// entry run and per container switch, so MHD's run-length recipes restore
// with orders of magnitude fewer seeks than per-chunk recipes, and
// SubChunk/SparseIndexing pay extra container switches from their
// scattered-container layouts.
#include "bench_common.h"
#include "mhd/format/file_manifest.h"

using namespace mhd;
using namespace mhd::bench;

int main(int argc, char** argv) {
  BenchOptions o = BenchOptions::parse(argc, argv);
  const Flags flags(argc, argv);
  const std::uint32_t ecs =
      static_cast<std::uint32_t>(flags.get_int("table_ecs", 1024));
  print_header("Extension: restore locality",
               "run-length recipes (BF-MHD) need the fewest positionings "
               "per restored MB",
               o);
  const Corpus corpus = o.make_corpus();
  const DiskModel disk;

  TextTable t({"Algorithm", "Recipe entries", "Container switches",
               "Seeks per MB", "Modeled restore MB/s"});
  for (const auto& algo : engine_names()) {
    MemoryBackend backend;
    ObjectStore store(backend);
    auto engine = make_engine(algo, store, o.engine_config(ecs));
    for (std::size_t i = 0; i < corpus.files().size(); ++i) {
      auto src = corpus.open(i);
      engine->add_file(corpus.files()[i].name, *src);
    }
    engine->finish();

    std::uint64_t entries = 0;
    std::uint64_t switches = 0;
    std::uint64_t bytes = 0;
    for (const auto& name : backend.list(Ns::kFileManifest)) {
      const auto raw = backend.get(Ns::kFileManifest, name);
      const auto fm = raw ? FileManifest::deserialize(*raw) : std::nullopt;
      if (!fm) continue;
      entries += fm->entries().size();
      bytes += fm->total_length();
      const Digest* prev = nullptr;
      for (const auto& e : fm->entries()) {
        if (prev == nullptr || !(*prev == e.chunk_name)) ++switches;
        prev = &e.chunk_name;
      }
    }
    // Restore cost model: one positioning per recipe entry plus the
    // sequential transfer of the restored bytes.
    const double seconds =
        static_cast<double>(entries) * disk.seek_seconds +
        static_cast<double>(bytes) / disk.read_bw;
    t.add_row({engine->name(), TextTable::num(entries),
               TextTable::num(switches),
               TextTable::num(static_cast<double>(entries) /
                                  (static_cast<double>(bytes) / 1048576.0),
                              1),
               TextTable::num(bytes / 1048576.0 / seconds, 1)});
  }
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}
