// TABLE II — disk accessing times comparison.
//
// Prints the paper's analytical access-count formulas (with and without a
// bloom filter) instantiated with measured (F, N, D, L), next to the
// categorized access counters each engine actually recorded. Expected
// shape: when 3L < D/SD, MHD performs the fewest disk accesses.
#include "bench_common.h"

using namespace mhd;
using namespace mhd::bench;

int main(int argc, char** argv) {
  BenchOptions o = BenchOptions::parse(argc, argv);
  const Flags flags(argc, argv);
  const std::uint32_t ecs =
      static_cast<std::uint32_t>(flags.get_int("table_ecs", 4096));
  print_header("TABLE II: disk accessing times comparison",
               "MHD summary (bloom): 2F+6L+N/SD; CDC: 2F+3L+N; Bimodal: "
               "2F+(2SD+1)L+N/SD; SubChunk: 2F+3L+(N+D)/SD",
               o);

  const Corpus corpus = o.make_corpus();
  const auto cdc_run = run_experiment(o.spec("cdc", ecs), corpus);
  const AnalysisInputs in = analysis_inputs_from(cdc_run, o.sd);
  std::printf(
      "measured inputs at ECS=%u: F=%llu N=%llu D=%llu L=%llu (3L %s D/SD)\n\n",
      ecs, static_cast<unsigned long long>(in.F),
      static_cast<unsigned long long>(in.N),
      static_cast<unsigned long long>(in.D),
      static_cast<unsigned long long>(in.L),
      3 * in.L < in.D / in.SD ? "<" : ">=");

  const DiskAccessModel models[] = {table2_mhd(in), table2_subchunk(in),
                                    table2_bimodal(in), table2_cdc(in)};
  TextTable analytic({"Row", "MHD", "SubChunk", "Bimodal", "CDC"});
  auto row = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells = {label};
    for (const auto& m : models) cells.push_back(TextTable::num(getter(m)));
    analytic.add_row(std::move(cells));
  };
  row("Chunk Output Times", [](const auto& m) { return m.chunk_out; });
  row("Chunk Input Times", [](const auto& m) { return m.chunk_in; });
  row("Hook Output Times", [](const auto& m) { return m.hook_out; });
  row("Hook Input Times", [](const auto& m) { return m.hook_in; });
  row("Manifest Output Times", [](const auto& m) { return m.manifest_out; });
  row("Manifest Input Times", [](const auto& m) { return m.manifest_in; });
  row("Big Chunk Query Times", [](const auto& m) { return m.big_chunk_query; });
  row("Small Chunk Query Times",
      [](const auto& m) { return m.small_chunk_query; });
  row("Summary without Bloom Filter",
      [](const auto& m) { return m.summary_without_bloom; });
  row("Summary with Bloom Filter",
      [](const auto& m) { return m.summary_with_bloom; });
  std::printf("--- analytical, from TABLE II formulas ---\n%s\n",
              analytic.to_string().c_str());

  // Measured categorized access counts per engine (bloom enabled).
  const char* algos[] = {"bf-mhd", "subchunk", "bimodal", "cdc"};
  std::vector<ExperimentResult> results;
  for (const char* a : algos) {
    results.push_back(run_experiment(o.spec(a, ecs), corpus));
  }
  TextTable measured({"Row", "BF-MHD", "SubChunk", "Bimodal", "CDC"});
  for (int k = 0; k < StorageStats::kKinds; ++k) {
    std::vector<std::string> cells = {
        std::string(access_kind_name(static_cast<AccessKind>(k))) + " Times"};
    for (const auto& r : results) {
      cells.push_back(TextTable::num(r.stats.accesses[k]));
    }
    measured.add_row(std::move(cells));
  }
  {
    std::vector<std::string> cells = {"Total accesses"};
    for (const auto& r : results) {
      cells.push_back(TextTable::num(r.stats.total_accesses()));
    }
    measured.add_row(std::move(cells));
  }
  std::printf("--- measured (bloom filter enabled, ECS=%u) ---\n%s\n", ecs,
              measured.to_string().c_str());
  std::printf("expected shape: MHD total below the others when duplicate\n"
              "slices are long relative to the sample distance (3L < D/SD).\n");
  return 0;
}
