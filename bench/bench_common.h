// Shared scaffolding for the paper-reproduction bench harnesses.
//
// Every bench binary accepts:
//   --size_mb=N     total corpus size (default 96)
//   --sd=N          sample distance in hashes (default 32 — see below)
//   --ecs=a,b,c     ECS sweep (default 512,1024,2048,4096,8192)
//   --seed=N        corpus seed
//   --cache_kb=N    equal manifest-cache RAM budget per algorithm (256)
//   --chunker=K     rabin (default) | tttd | gear
//   --chunker-impl=I  auto (default) | scalar | simd scan kernel
//   --pipeline      staged concurrent ingest with 4 hash workers
//   --ingest-threads=N  hash-pool size for the ingest pipeline (0 = serial)
//   --verify        byte-exact reconstruction check after every run (slow)
//
// Scaling note (EXPERIMENTS.md discusses this in detail): the paper used a
// 1.0 TB corpus with SD=1000, i.e. hundreds of hooks per 5 GB disk image.
// At bench scale (default ~96 MB so the full suite runs in minutes) SD is
// scaled down to keep the number of hooks per image — and the ratio of
// duplicate-slice length to hook spacing — in the paper's regime. Pass
// --size_mb=1000 --sd=1000 to approach the paper's parameters directly.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "mhd/metrics/analysis.h"
#include "mhd/sim/runner.h"
#include "mhd/util/flags.h"
#include "mhd/util/table.h"
#include "mhd/workload/presets.h"

namespace mhd::bench {

struct BenchOptions {
  std::uint64_t total_mb = 96;
  std::uint32_t sd = 32;
  std::vector<std::int64_t> ecs_list = {512, 1024, 2048, 4096, 8192};
  std::uint64_t seed = 1;
  bool verify = false;
  /// Equal manifest-cache RAM budget for every algorithm (--cache_kb).
  std::uint64_t cache_kb = 256;
  /// Cut-point algorithm for every engine (--chunker=rabin|tttd|gear).
  ChunkerKind chunker = ChunkerKind::kRabin;
  /// Scan kernel (--chunker-impl=auto|scalar|simd); cut points identical.
  ChunkerImpl chunker_impl = ChunkerImpl::kAuto;
  /// Hash workers for the staged ingest pipeline (0 = serial ingest).
  std::uint32_t ingest_threads = 0;

  static BenchOptions parse(int argc, char** argv) {
    const Flags flags(argc, argv);
    BenchOptions o;
    o.total_mb = static_cast<std::uint64_t>(flags.get_int("size_mb", 96));
    o.sd = static_cast<std::uint32_t>(flags.get_int("sd", 32));
    o.ecs_list = flags.get_int_list("ecs", o.ecs_list);
    o.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
    o.verify = flags.get_bool("verify", false);
    o.cache_kb = static_cast<std::uint64_t>(flags.get_int("cache_kb", 256));
    o.chunker = chunker_kind_from_string(flags.get("chunker", "rabin"));
    o.chunker_impl = chunker_impl_from_string(
        flags.get_choice("chunker-impl", {"auto", "scalar", "simd"}, "auto"));
    o.ingest_threads = static_cast<std::uint32_t>(flags.get_uint(
        "ingest-threads", flags.get_bool("pipeline", false) ? 4 : 0, 0, 256));
    return o;
  }

  Corpus make_corpus() const { return Corpus(icpp13_preset(total_mb, seed)); }

  EngineConfig engine_config(std::uint32_t ecs) const {
    EngineConfig cfg;
    cfg.ecs = ecs;
    cfg.sd = sd;
    cfg.bloom_bytes = 4 << 20;
    // Equal RAM budget for cached manifests across algorithms; the entry
    // count cap is lifted so the byte budget is the binding constraint.
    cfg.manifest_cache_bytes = cache_kb << 10;
    cfg.manifest_cache_capacity = 4096;
    cfg.chunker = chunker;
    cfg.chunker_impl = chunker_impl;
    cfg.ingest_threads = ingest_threads;
    return cfg;
  }

  RunSpec spec(const std::string& algorithm, std::uint32_t ecs) const {
    RunSpec s;
    s.algorithm = algorithm;
    s.engine = engine_config(ecs);
    s.verify = verify;
    return s;
  }
};

inline void print_header(const char* experiment, const char* paper_claim,
                         const BenchOptions& o) {
  std::printf("=== %s ===\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("config: corpus=%lluMB (14 machines x 14 snapshots), SD=%u, seed=%llu\n\n",
              static_cast<unsigned long long>(o.total_mb), o.sd,
              static_cast<unsigned long long>(o.seed));
}

inline std::string pct(double fraction, int precision = 3) {
  return TextTable::num(fraction * 100.0, precision) + "%";
}

/// Derives the paper's analysis inputs (F, N, D, L) from a CDC run — the
/// algorithm-independent chunk-population quantities of Section IV.
inline AnalysisInputs analysis_inputs_from(const ExperimentResult& cdc,
                                           std::uint32_t sd) {
  AnalysisInputs in;
  in.F = cdc.counters.files_with_data;
  in.N = cdc.counters.stored_chunks;
  in.D = cdc.counters.dup_chunks;
  in.L = cdc.counters.dup_slices;
  in.SD = sd;
  return in;
}

}  // namespace mhd::bench
