// Chunking motivation — the paper's introductory claim, made measurable:
// "fixed-sized chunking algorithms such as those used in Venti and
// OceanStore are not able to handle the boundary-shifting problem", which
// is why every algorithm in the paper builds on CDC.
//
// Deduplicates the backup corpus with the CDC engine mounted on four
// different chunkers (fixed-size, Rabin, TTTD, Gear/FastCDC). The corpus
// mutations include insertions/deletions, so fixed-size chunking loses
// almost all cross-snapshot duplication downstream of every shift while
// the content-defined chunkers keep it.
#include "bench_common.h"
#include "mhd/chunk/chunk_stream.h"
#include "mhd/chunk/fixed_chunker.h"
#include "mhd/chunk/gear_chunker.h"
#include "mhd/chunk/rabin_chunker.h"
#include "mhd/chunk/tttd_chunker.h"
#include "mhd/hash/sha1.h"
#include "mhd/util/timer.h"

#include <memory>
#include <unordered_set>

using namespace mhd;
using namespace mhd::bench;

namespace {

// Chunker-level dedup model: unique chunk bytes over the corpus. This
// isolates the chunker's contribution from engine policy.
struct ChunkerStats {
  std::uint64_t input = 0;
  std::uint64_t unique = 0;
  std::uint64_t chunks = 0;
  double seconds = 0;
};

template <typename MakeChunker>
ChunkerStats measure(const Corpus& corpus, MakeChunker make) {
  ChunkerStats s;
  std::unordered_set<std::uint64_t> seen;  // digest prefixes suffice here
  const Stopwatch watch;
  for (std::size_t i = 0; i < corpus.files().size(); ++i) {
    auto src = corpus.open(i);
    auto chunker = make();
    ChunkStream stream(*src, *chunker);
    ByteVec c;
    while (stream.next(c)) {
      s.input += c.size();
      ++s.chunks;
      if (seen.insert(Sha1::hash(c).prefix64()).second) s.unique += c.size();
    }
  }
  s.seconds = watch.seconds();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions o = BenchOptions::parse(argc, argv);
  const Flags flags(argc, argv);
  const std::uint32_t ecs =
      static_cast<std::uint32_t>(flags.get_int("table_ecs", 1024));
  print_header("Chunking motivation: the boundary-shifting problem",
               "fixed-size chunking (Venti/OceanStore) collapses under the "
               "corpus' insertions/deletions; CDC variants do not",
               o);
  const Corpus corpus = o.make_corpus();
  const auto cfg = ChunkerConfig::from_expected(ecs);

  struct Row {
    const char* name;
    ChunkerStats stats;
  };
  const Row rows[] = {
      {"Fixed-size (FSP)",
       measure(corpus,
               [&] { return std::make_unique<FixedChunker>(ecs); })},
      {"Rabin CDC",
       measure(corpus,
               [&] { return std::make_unique<RabinChunker>(cfg); })},
      {"TTTD",
       measure(corpus, [&] { return std::make_unique<TttdChunker>(cfg); })},
      {"Gear/FastCDC",
       measure(corpus, [&] { return std::make_unique<GearChunker>(cfg); })},
  };

  TextTable t({"Chunker", "Chunks", "Avg size", "Unique MB",
               "Chunk-level DER", "MB/s"});
  for (const auto& row : rows) {
    const auto& s = row.stats;
    t.add_row({row.name, TextTable::num(s.chunks),
               TextTable::num(static_cast<double>(s.input) /
                                  static_cast<double>(s.chunks),
                              0),
               TextTable::num(s.unique / 1048576.0, 1),
               TextTable::num(static_cast<double>(s.input) /
                                  static_cast<double>(s.unique),
                              3),
               TextTable::num(s.input / 1048576.0 / s.seconds, 1)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("expected shape: all CDC variants reach a similar chunk-level "
              "DER while fixed-size\nchunking detects far less (everything "
              "downstream of an insert/delete shifts).\n");
  return 0;
}
