// chunking_throughput — MB/s of the raw Chunker::scan hot loop, per
// implementation per chunker. This is the harness behind the SIMD gear
// numbers quoted in README.md:
//
//   ./chunking_throughput [--size_mb=256] [--reps=3] [--ecs=1024,4096,8192]
//                         [--seed=1]
//
// Each row scans the same random buffer end to end (no I/O, no hashing,
// no store — chunking only) and reports throughput plus the cut count, so
// a kernel that "wins" by finding different boundaries is caught on the
// spot (the differential test suite proves equivalence exhaustively; the
// bench cross-checks it on every run).
#include <cstdio>
#include <string>
#include <vector>

#include "mhd/chunk/gear_chunker.h"
#include "mhd/chunk/make_chunker.h"
#include "mhd/util/cpufeatures.h"
#include "mhd/util/flags.h"
#include "mhd/util/random.h"
#include "mhd/util/table.h"
#include "mhd/util/timer.h"

namespace {

using namespace mhd;

std::uint64_t count_cuts(Chunker& chunker, ByteSpan data) {
  std::uint64_t cuts = 0;
  std::size_t off = 0;
  while (off < data.size()) {
    const auto r = chunker.scan({data.data() + off, data.size() - off});
    off += r.consumed;
    cuts += r.cut;
  }
  return cuts;
}

struct Row {
  std::string name;
  std::uint64_t cuts = 0;
  double mb_per_s = 0;
};

Row measure(const std::string& name, Chunker& chunker, ByteSpan data,
            int reps) {
  Row row;
  row.name = name;
  double best = 0;
  for (int rep = 0; rep < reps; ++rep) {
    chunker.reset();  // drop the trailing partial chunk of the previous rep
    Stopwatch watch;
    const std::uint64_t cuts = count_cuts(chunker, data);
    const double secs = watch.seconds();
    if (rep == 0) {
      row.cuts = cuts;
    } else if (cuts != row.cuts) {
      std::fprintf(stderr, "%s: cut count varies across reps!\n",
                   name.c_str());
    }
    best = std::max(best, data.size() / 1048576.0 / secs);
  }
  row.mb_per_s = best;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto size_mb =
      static_cast<std::size_t>(flags.get_int("size_mb", 256));
  const int reps = static_cast<int>(flags.get_int("reps", 3));
  const auto ecs_list = flags.get_int_list("ecs", {1024, 4096, 8192});
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  std::printf("=== chunking throughput (scan loop only) ===\n");
  std::printf("cpu: sse2=%d avx2=%d -> best simd level: %s\n",
              cpu_features().sse2, cpu_features().avx2,
              simd_level_name(best_simd_level()));
  std::printf("buffer: %zu MB random, best of %d reps\n\n", size_mb, reps);

  ByteVec data(size_mb << 20);
  {
    Xoshiro256 rng(seed);
    for (auto& b : data) b = static_cast<Byte>(rng());
  }

  TextTable t({"ECS", "chunker", "impl", "cuts", "MB/s", "speedup"});
  for (const auto ecs : ecs_list) {
    const ChunkerConfig base =
        ChunkerConfig::from_expected(static_cast<std::uint64_t>(ecs));

    // Scalar baselines of the paper's chunkers, for context.
    std::vector<Row> rows;
    for (const ChunkerKind kind : {ChunkerKind::kRabin, ChunkerKind::kTttd}) {
      auto chunker = make_chunker(kind, base);
      rows.push_back(
          measure(chunker_kind_name(kind), *chunker, data, reps));
    }

    ChunkerConfig scalar_cfg = base;
    scalar_cfg.impl = ChunkerImpl::kScalar;
    GearChunker scalar(scalar_cfg);
    const Row scalar_row = measure("gear/scalar", scalar, data, reps);
    rows.push_back(scalar_row);

    ChunkerConfig simd_cfg = base;
    simd_cfg.impl = ChunkerImpl::kSimd;
    GearChunker simd(simd_cfg);
    Row simd_row =
        measure(std::string("gear/") + simd.impl_name(), simd, data, reps);
    if (simd_row.cuts != scalar_row.cuts) {
      std::fprintf(stderr,
                   "FATAL: gear cut points differ between impls "
                   "(%llu vs %llu) — determinism invariant broken\n",
                   static_cast<unsigned long long>(scalar_row.cuts),
                   static_cast<unsigned long long>(simd_row.cuts));
      return 1;
    }
    rows.push_back(simd_row);

    for (const auto& row : rows) {
      const bool gear = row.name.rfind("gear/", 0) == 0;
      t.add_row({std::to_string(ecs), gear ? "gear" : row.name,
                 gear ? row.name.substr(5) : "scalar",
                 std::to_string(row.cuts), TextTable::num(row.mb_per_s, 1),
                 gear ? TextTable::num(row.mb_per_s / scalar_row.mb_per_s, 2) +
                            "x"
                      : "-"});
    }
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nspeedup is vs gear/scalar at the same ECS; rabin/tttd rows show\n"
      "what the paper's chunkers cost on the same buffer.\n");
  return 0;
}
