// Fig. 8 — trade-off between deduplication efficiency and overhead.
//
// Each algorithm's curve is traced by the ECS sweep (smaller ECS => more
// duplicate found => more metadata and more disk I/O). Four panels:
//  (a) data-only DER vs MetaDataRatio   (b) real DER vs MetaDataRatio
//  (c) data-only DER vs ThroughputRatio (d) real DER vs ThroughputRatio
// Paper shape: BF-MHD achieves the best real DER; Bimodal/SubChunk give
// the worst DER at a given ThroughputRatio; SparseIndexing's data-only DER
// is highest but its metadata growth depresses its real DER below BF-MHD.
#include "bench_common.h"
#include "mhd/sim/parallel.h"

using namespace mhd;
using namespace mhd::bench;

int main(int argc, char** argv) {
  const BenchOptions o = BenchOptions::parse(argc, argv);
  print_header("Fig. 8: DER vs metadata and throughput trade-offs",
               "BF-MHD attains the best real DER; its curve dominates in "
               "panels (b) and (d)",
               o);
  const Corpus corpus = o.make_corpus();
  const std::vector<std::string> algos = {"bf-mhd", "bimodal", "subchunk",
                                          "sparseindexing"};

  TextTable t({"Algorithm", "ECS", "MetaDataRatio", "ThroughputRatio",
               "Data-only DER", "Real DER"});
  TextTable csv({"algorithm", "ecs", "metadata_ratio_pct", "throughput_ratio",
                 "data_only_der", "real_der"});
  std::vector<RunSpec> specs;
  for (const auto& a : algos) {
    for (const auto ecs : o.ecs_list) {
      specs.push_back(o.spec(a, static_cast<std::uint32_t>(ecs)));
    }
  }
  // Embarrassingly parallel sweep: one thread per core.
  const auto results = run_experiments(specs, corpus);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const auto ecs = static_cast<std::uint64_t>(specs[i].engine.ecs);
    t.add_row({r.algorithm, TextTable::num(ecs), pct(r.metadata_ratio()),
               TextTable::num(r.throughput_ratio(), 3),
               TextTable::num(r.data_only_der(), 3),
               TextTable::num(r.real_der(), 3)});
    csv.add_row({r.algorithm, TextTable::num(ecs),
                 TextTable::num(r.metadata_ratio() * 100, 5),
                 TextTable::num(r.throughput_ratio(), 4),
                 TextTable::num(r.data_only_der(), 4),
                 TextTable::num(r.real_der(), 4)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("CSV:\n%s", csv.to_csv().c_str());
  std::printf("\nexpected shape: for every ECS, BF-MHD's real DER row is the "
              "highest among the four algorithms,\nand its MetaDataRatio the "
              "lowest; Bimodal/SubChunk trail in DER at comparable "
              "ThroughputRatio.\n");
  return 0;
}
