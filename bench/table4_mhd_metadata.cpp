// TABLE IV — byte size of all Hooks and Manifests in BF-MHD.
//
// Paper: 0.007%-0.02% of the input (ECS 1024..8192, SD 1000/500/250);
// bytes shrink as ECS grows and grow as SD shrinks. If all Hooks and
// Manifests fit in RAM, the bloom filter and the TABLE V manifest loads
// can be avoided entirely — the paper's argument for MHD's small RAM
// footprint.
#include "bench_common.h"

using namespace mhd;
using namespace mhd::bench;

int main(int argc, char** argv) {
  BenchOptions o = BenchOptions::parse(argc, argv);
  const Flags flags(argc, argv);
  o.ecs_list = flags.get_int_list("ecs", {1024, 2048, 4096, 8192});
  const std::vector<std::int64_t> sd_list = flags.get_int_list(
      "sd_list", {static_cast<std::int64_t>(o.sd),
                  static_cast<std::int64_t>(o.sd) / 2,
                  static_cast<std::int64_t>(o.sd) / 4});
  print_header("TABLE IV: byte size for all Hooks and Manifests in BF-MHD",
               "0.007%-0.02% of input at paper scale; decreasing in ECS, "
               "increasing as SD shrinks",
               o);
  const Corpus corpus = o.make_corpus();

  TextTable t({"SD", "ECS (Bytes)", "Size (KB)", "% of input"});
  for (const auto sd : sd_list) {
    BenchOptions os = o;
    os.sd = static_cast<std::uint32_t>(sd);
    for (const auto ecs : o.ecs_list) {
      const auto r = run_experiment(
          os.spec("bf-mhd", static_cast<std::uint32_t>(ecs)), corpus);
      t.add_row({TextTable::num(static_cast<std::uint64_t>(sd)),
                 TextTable::num(static_cast<std::uint64_t>(ecs)),
                 TextTable::num(r.metadata.hook_manifest_bytes() / 1024),
                 pct(static_cast<double>(r.metadata.hook_manifest_bytes()) /
                         static_cast<double>(r.input_bytes),
                     4)});
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("expected shape: size falls as ECS rises and rises as SD "
              "falls; always a tiny fraction of the input.\n");
  return 0;
}
