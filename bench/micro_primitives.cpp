// Micro-benchmarks (google-benchmark) for the substrate primitives:
// SHA-1 hashing, Rabin fingerprint rolling, the chunkers, the bloom
// filter, and the synthetic content generator. These set the CPU-cost
// context for the ThroughputRatio results.
#include <benchmark/benchmark.h>

#include <string>

#include "mhd/chunk/chunk_stream.h"
#include "mhd/chunk/fixed_chunker.h"
#include "mhd/chunk/rabin_chunker.h"
#include "mhd/chunk/tttd_chunker.h"
#include "mhd/container/bloom_filter.h"
#include "mhd/hash/sha1.h"
#include "mhd/util/random.h"
#include "mhd/workload/block_source.h"

namespace mhd {
namespace {

ByteVec make_data(std::size_t n) {
  BlockSource src(42);
  ByteVec data(n);
  src.fill(7, 0, data);
  return data;
}

void BM_Sha1(benchmark::State& state) {
  const ByteVec data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(512)->Arg(4096)->Arg(65536)->Arg(1 << 20);

/// Per-kernel SHA-1 MB/s (the BENCH_sha1.json section). One benchmark per
/// compiled-in kernel the host supports, pinned via sha1_digest_with so
/// the numbers are dispatch-independent; registered dynamically in main()
/// because the kernel list is a runtime CPUID question.
void BM_Sha1Kernel(benchmark::State& state, Sha1CompressFn fn) {
  const ByteVec data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha1_digest_with(fn, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void register_sha1_throughput() {
  for (const Sha1KernelInfo& k : sha1_kernels()) {
    if (!k.supported) continue;
    const std::string name = std::string("sha1_throughput/") + k.name;
    auto* bench = benchmark::RegisterBenchmark(
        name.c_str(),
        [fn = k.fn](benchmark::State& s) { BM_Sha1Kernel(s, fn); });
    bench->Arg(1024)->Arg(4096)->Arg(65536)->Arg(1 << 20);
  }
}

void BM_RabinRoll(benchmark::State& state) {
  const ByteVec data = make_data(1 << 16);
  RabinFingerprint fp(48);
  for (auto _ : state) {
    for (Byte b : data) benchmark::DoNotOptimize(fp.push(b));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_RabinRoll);

template <typename ChunkerT>
void chunker_bench(benchmark::State& state, std::uint32_t ecs) {
  const ByteVec data = make_data(4 << 20);
  for (auto _ : state) {
    ChunkerT chunker{ChunkerConfig::from_expected(ecs)};
    MemorySource src(data);
    ChunkStream stream(src, chunker);
    ByteVec chunk;
    std::size_t chunks = 0;
    while (stream.next(chunk)) ++chunks;
    benchmark::DoNotOptimize(chunks);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}

void BM_RabinChunker(benchmark::State& state) {
  chunker_bench<RabinChunker>(state, static_cast<std::uint32_t>(state.range(0)));
}
BENCHMARK(BM_RabinChunker)->Arg(512)->Arg(4096)->Arg(8192);

void BM_TttdChunker(benchmark::State& state) {
  chunker_bench<TttdChunker>(state, static_cast<std::uint32_t>(state.range(0)));
}
BENCHMARK(BM_TttdChunker)->Arg(4096);

void BM_BloomFilter(benchmark::State& state) {
  BloomFilter bf(4 << 20);
  Xoshiro256 rng(1);
  for (int i = 0; i < 100000; ++i) bf.insert(rng());
  Xoshiro256 probe(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bf.maybe_contains(probe()));
  }
}
BENCHMARK(BM_BloomFilter);

void BM_BlockSourceFill(benchmark::State& state) {
  BlockSource src(1);
  ByteVec buf(1 << 20);
  std::uint64_t id = 0;
  for (auto _ : state) {
    src.fill(id++, 0, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_BlockSourceFill);

}  // namespace
}  // namespace mhd

int main(int argc, char** argv) {
  mhd::register_sha1_throughput();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
