// TABLE I — metadata size comparison.
//
// Reproduces the paper's analytical metadata-byte formulas for MHD,
// SubChunk, Bimodal and CDC, instantiated with (F, N, D, L) measured from
// the corpus, and cross-checks them against the metadata each engine
// actually wrote. Expected shape: with SD large, MHD requires far less
// metadata than every other algorithm.
#include "bench_common.h"

using namespace mhd;
using namespace mhd::bench;

int main(int argc, char** argv) {
  BenchOptions o = BenchOptions::parse(argc, argv);
  const Flags flags(argc, argv);
  const std::uint32_t ecs =
      static_cast<std::uint32_t>(flags.get_int("table_ecs", 4096));
  print_header("TABLE I: metadata size comparison (SD >= 2)",
               "summary rows: MHD 512F+424N/SD | SubChunk 532F+280N/SD+36N | "
               "Bimodal 512F+312N/SD+624L(SD-1) | CDC 512F+312N",
               o);

  const Corpus corpus = o.make_corpus();
  const auto cdc_run = run_experiment(o.spec("cdc", ecs), corpus);
  const AnalysisInputs in = analysis_inputs_from(cdc_run, o.sd);
  std::printf("measured inputs at ECS=%u: F=%llu N=%llu D=%llu L=%llu\n\n",
              ecs, static_cast<unsigned long long>(in.F),
              static_cast<unsigned long long>(in.N),
              static_cast<unsigned long long>(in.D),
              static_cast<unsigned long long>(in.L));

  const MetadataModel models[] = {table1_mhd(in), table1_subchunk(in),
                                  table1_bimodal(in), table1_cdc(in)};

  TextTable analytic({"Row", "MHD", "SubChunk", "Bimodal", "CDC"});
  auto row = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells = {label};
    for (const auto& m : models) cells.push_back(TextTable::num(getter(m)));
    analytic.add_row(std::move(cells));
  };
  row("Inodes for DiskChunks",
      [](const MetadataModel& m) { return m.inodes_diskchunks; });
  row("Inodes for Hooks",
      [](const MetadataModel& m) { return m.inodes_hooks; });
  row("Bytes for each Hook",
      [](const MetadataModel& m) { return m.bytes_per_hook; });
  row("Inodes for Manifests",
      [](const MetadataModel& m) { return m.inodes_manifests; });
  row("Bytes for Manifests",
      [](const MetadataModel& m) { return m.manifest_bytes; });
  row("summary (paper, verbatim)",
      [](const MetadataModel& m) { return m.summary_printed; });
  row("summary (component sum)",
      [](const MetadataModel& m) { return m.summary_components(); });
  std::printf("--- analytical (bytes), from TABLE I formulas ---\n%s\n",
              analytic.to_string().c_str());

  // Measured cross-check: what each engine actually wrote.
  TextTable measured({"Algorithm", "inodes", "hook B", "manifest B",
                      "filemanifest B", "total metadata B", "model B"});
  const char* algos[] = {"bf-mhd", "subchunk", "bimodal", "cdc"};
  for (int i = 0; i < 4; ++i) {
    const auto r = run_experiment(o.spec(algos[i], ecs), corpus);
    measured.add_row({r.algorithm, TextTable::num(r.metadata.total_inodes()),
                      TextTable::num(r.metadata.hook_bytes),
                      TextTable::num(r.metadata.manifest_bytes),
                      TextTable::num(r.metadata.filemanifest_bytes),
                      TextTable::num(r.metadata.total_bytes()),
                      TextTable::num(models[i].summary_components())});
  }
  std::printf("--- measured (engines on the same corpus, ECS=%u) ---\n%s\n",
              ecs, measured.to_string().c_str());
  std::printf("expected shape: MHD total << Bimodal, SubChunk, CDC totals.\n");
  return 0;
}
