// TABLE III — RAM used for the sparse index in SparseIndexing, plus the
// sampled similarity tier (--index-impl=sampled) measured against its
// analytic RAM model.
//
// The paper reports ~0.01% of the input size (about 100 MB for 1 TB, ECS
// sweep 1024..8192, SD=1000). We report the measured in-RAM sparse-index
// footprint across the ECS sweep; the fraction of input is the
// scale-invariant quantity to compare.
//
// The sampled-tier columns run the same corpus through the MHD engine
// with --index-impl=sampled and put the MEASURED hook-table RAM next to
// the analytic model
//
//   hooks ≈ stored_chunks / 2^sample_bits
//   RAM   ≈ hooks × (entry + champion-reference cost)
//
// so a drift between table and model (uneven sampling, champion-list
// growth) is visible at a glance. --sample-bits picks the rate.
#include "bench_common.h"
#include "mhd/index/sampled_index.h"
#include "mhd/index/similarity/hook_table.h"

using namespace mhd;
using namespace mhd::bench;

int main(int argc, char** argv) {
  BenchOptions o = BenchOptions::parse(argc, argv);
  const Flags flags(argc, argv);
  o.ecs_list = flags.get_int_list("ecs", {1024, 2048, 4096, 8192});
  const auto sample_bits = static_cast<std::uint32_t>(
      flags.get_uint("sample-bits", 6, 0, 64));
  print_header("TABLE III: RAM used for sparse index in SparseIndexing",
               "~0.01% of input; shrinking slowly as ECS grows", o);
  const Corpus corpus = o.make_corpus();

  TextTable t({"ECS (Bytes)", "RAM (KB)", "% of input", "Sampled hook KB",
               "Model KB", "Hooks", "Missed-dup %"});
  for (const auto ecs : o.ecs_list) {
    const auto r = run_experiment(
        o.spec("sparseindexing", static_cast<std::uint32_t>(ecs)), corpus);

    // Same corpus through the sampled similarity tier: measured
    // hook-table RAM vs the analytic model from the chunk population.
    RunSpec sspec = o.spec("mhd", static_cast<std::uint32_t>(ecs));
    sspec.engine.index_impl = IndexImpl::kSampled;
    sspec.engine.sample_bits = sample_bits;
    const auto sr = run_experiment(sspec, corpus);
    const std::uint64_t measured_hook_ram = sr.sampled_hook_table_bytes;
    const std::uint64_t model_hooks =
        sr.counters.stored_chunks >> std::min(sample_bits, 63u);
    const std::uint64_t model_ram =
        model_hooks * (similarity::HookTable::kHookRamBytes + Digest::kSize);
    const double missed = sr.counters.dup_bytes + sr.sampled_missed_dup_bytes
                              ? static_cast<double>(
                                    sr.sampled_missed_dup_bytes) /
                                    static_cast<double>(
                                        sr.counters.dup_bytes +
                                        sr.sampled_missed_dup_bytes)
                              : 0.0;

    t.add_row({TextTable::num(static_cast<std::uint64_t>(ecs)),
               TextTable::num(r.index_ram_bytes / 1024),
               pct(static_cast<double>(r.index_ram_bytes) /
                       static_cast<double>(r.input_bytes),
                   4),
               TextTable::num(measured_hook_ram / 1024.0, 1),
               TextTable::num(model_ram / 1024.0, 1),
               TextTable::num(sr.sampled_hook_entries),
               pct(missed, 2)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("expected shape: RAM decreases slowly with ECS and stays a "
              "tiny fraction of the input; the sampled hook table tracks "
              "its model (stored chunks / 2^%u).\n",
              sample_bits);
  return 0;
}
