// TABLE III — RAM used for the sparse index in SparseIndexing.
//
// The paper reports ~0.01% of the input size (about 100 MB for 1 TB, ECS
// sweep 1024..8192, SD=1000). We report the measured in-RAM sparse-index
// footprint across the ECS sweep; the fraction of input is the
// scale-invariant quantity to compare.
#include "bench_common.h"

using namespace mhd;
using namespace mhd::bench;

int main(int argc, char** argv) {
  BenchOptions o = BenchOptions::parse(argc, argv);
  const Flags flags(argc, argv);
  o.ecs_list = flags.get_int_list("ecs", {1024, 2048, 4096, 8192});
  print_header("TABLE III: RAM used for sparse index in SparseIndexing",
               "~0.01% of input; shrinking slowly as ECS grows", o);
  const Corpus corpus = o.make_corpus();

  TextTable t({"ECS (Bytes)", "RAM (KB)", "% of input"});
  for (const auto ecs : o.ecs_list) {
    const auto r = run_experiment(
        o.spec("sparseindexing", static_cast<std::uint32_t>(ecs)), corpus);
    t.add_row({TextTable::num(static_cast<std::uint64_t>(ecs)),
               TextTable::num(r.index_ram_bytes / 1024),
               pct(static_cast<double>(r.index_ram_bytes) /
                       static_cast<double>(r.input_bytes),
                   4)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("expected shape: RAM decreases slowly with ECS and stays a "
              "tiny fraction of the input.\n");
  return 0;
}
