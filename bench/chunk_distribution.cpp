// Chunk-size distributions — the TTTD claim from the paper's Section II
// ("candidate cut points ... used only if no pre-defined fingerprints are
// detected when the chunk size reaches the upper bound"), measured:
// TTTD and FastCDC-normalized Gear tighten the size distribution of plain
// Rabin CDC, mostly by eliminating forced max-size cuts.
#include "bench_common.h"
#include "mhd/chunk/chunk_stream.h"
#include "mhd/chunk/gear_chunker.h"
#include "mhd/chunk/rabin_chunker.h"
#include "mhd/chunk/tttd_chunker.h"

#include <algorithm>
#include <cmath>
#include <memory>

using namespace mhd;
using namespace mhd::bench;

namespace {

struct Distribution {
  std::vector<std::uint64_t> sizes;

  double mean() const {
    std::uint64_t sum = 0;
    for (auto s : sizes) sum += s;
    return sizes.empty() ? 0.0 : static_cast<double>(sum) / sizes.size();
  }
  double stddev() const {
    const double m = mean();
    double acc = 0;
    for (auto s : sizes) acc += (s - m) * (s - m);
    return sizes.empty() ? 0.0 : std::sqrt(acc / sizes.size());
  }
  std::uint64_t percentile(double p) const {
    if (sizes.empty()) return 0;
    std::vector<std::uint64_t> sorted = sizes;
    std::sort(sorted.begin(), sorted.end());
    const auto idx = static_cast<std::size_t>(p * (sorted.size() - 1));
    return sorted[idx];
  }
  double fraction_at(std::uint64_t value) const {
    std::size_t n = 0;
    for (auto s : sizes) n += (s == value);
    return sizes.empty() ? 0.0 : static_cast<double>(n) / sizes.size();
  }
};

template <typename MakeChunker>
Distribution measure(const Corpus& corpus, MakeChunker make) {
  Distribution d;
  for (std::size_t i = 0; i < corpus.files().size(); ++i) {
    auto src = corpus.open(i);
    auto chunker = make();
    ChunkStream stream(*src, *chunker);
    ByteVec c;
    while (stream.next(c)) d.sizes.push_back(c.size());
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions o = BenchOptions::parse(argc, argv);
  const Flags flags(argc, argv);
  const std::uint32_t ecs =
      static_cast<std::uint32_t>(flags.get_int("table_ecs", 1024));
  print_header("Chunk-size distributions (Rabin vs TTTD vs Gear/FastCDC)",
               "TTTD/FastCDC reduce forced max-size cuts and the size "
               "variance of plain Rabin CDC",
               o);
  const Corpus corpus = o.make_corpus();
  const auto cfg = ChunkerConfig::from_expected(ecs);

  struct Row {
    const char* name;
    Distribution dist;
  };
  const Row rows[] = {
      {"Rabin CDC",
       measure(corpus, [&] { return std::make_unique<RabinChunker>(cfg); })},
      {"TTTD",
       measure(corpus, [&] { return std::make_unique<TttdChunker>(cfg); })},
      {"Gear/FastCDC",
       measure(corpus, [&] { return std::make_unique<GearChunker>(cfg); })},
  };

  TextTable t({"Chunker", "Chunks", "Mean", "StdDev", "p5", "p50", "p95",
               "% at max"});
  for (const auto& row : rows) {
    const auto& d = row.dist;
    t.add_row({row.name, TextTable::num(std::uint64_t{d.sizes.size()}),
               TextTable::num(d.mean(), 0), TextTable::num(d.stddev(), 0),
               TextTable::num(d.percentile(0.05)),
               TextTable::num(d.percentile(0.50)),
               TextTable::num(d.percentile(0.95)),
               TextTable::num(d.fraction_at(cfg.max_size) * 100, 2) + "%"});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("config: min=%u expected=%u max=%u\n", cfg.min_size,
              cfg.expected_size, cfg.max_size);
  return 0;
}
