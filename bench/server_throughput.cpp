// Multi-tenant daemon throughput: concurrent sessions vs aggregate
// ingest/restore bandwidth and tail latency.
//
//   server_throughput [--sessions=1,4,8] [--files=4] [--file_kb=512]
//                     [--fault-plan=SPEC|none] [--seed=N]
//                     [--json=BENCH_server.json]
//
// For each session count S the harness starts a fresh in-process daemon
// on a loopback socket and drives S concurrent client sessions (disjoint
// tenants) through the real wire protocol: every session PUTs `files`
// files of `file_kb` KiB (consecutive files share half their content, so
// the dedup path is exercised), then GETs them all back with byte
// verification. Each sweep runs twice: clean, and with a deterministic
// storage fault plan injected below the framing layer (restores absorb
// the transient read errors through the bounded in-stream retry — the
// row's `errors` column shows what still surfaced).
//
// Reported per (sessions, faults, phase): aggregate MB/s over the phase
// wall clock, exact p50/p99 per-request latency, and two efficiency
// ratios from process-wide pump counters — payload bytes moved per
// transport syscall (transport_stats) and fresh slab allocations per MB
// (chunk_buffer_pool stats: acquires minus free-list reuses). The daemon
// runs in-process, so both sides of the loopback conversation are
// counted. BENCH_server.json at the repo root is the recorded baseline
// (see --json).
//
// --floor-mbps=N (or the MHD_PERF_SMOKE_FLOOR_MBPS env var, which wins)
// turns the run into a pass/fail gate: exit 1 unless the clean
// single-session ingest sustains at least N MB/s. The `perf-smoke` ctest
// uses it to catch data-path regressions.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mhd/server/client.h"
#include "mhd/server/daemon.h"
#include "mhd/store/fault_backend.h"
#include "mhd/store/framed_backend.h"
#include "mhd/store/memory_backend.h"
#include "mhd/util/buffer_pool.h"
#include "mhd/util/flags.h"

namespace {

using namespace mhd;
using namespace mhd::server;
using Clock = std::chrono::steady_clock;

ByteVec make_blob(std::uint64_t seed, std::size_t n) {
  ByteVec v(n);
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + 0x2545F4914F6CDD1Dull;
  for (auto& b : v) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<Byte>(x >> 32);
  }
  return v;
}

/// `files` blobs per tenant; file k shares its first half with file k-1.
std::vector<ByteVec> session_files(std::uint64_t tenant, int files,
                                   std::size_t bytes, std::uint64_t seed) {
  std::vector<ByteVec> out;
  for (int k = 0; k < files; ++k) {
    ByteVec blob = make_blob(seed + tenant * 1000 + k, bytes);
    if (k > 0) {
      std::copy(out.back().begin(),
                out.back().begin() + static_cast<std::ptrdiff_t>(bytes / 2),
                blob.begin());
    }
    out.push_back(std::move(blob));
  }
  return out;
}

struct Row {
  int sessions = 0;
  bool faults = false;
  const char* phase = "";
  double mb_per_s = 0;
  std::uint64_t p50_us = 0, p99_us = 0;
  int errors = 0;
  double bytes_per_syscall = 0;  ///< transport payload bytes / syscalls
  double allocs_per_mb = 0;      ///< fresh slab allocations / phase MB
};

/// Phase-scoped pump counters: transport syscalls (reset at entry) and
/// chunk-pool allocations (delta of the monotonic counters).
class PhaseCounters {
 public:
  PhaseCounters() : pool_before_(chunk_buffer_pool().stats()) {
    reset_transport_stats();
  }

  void finish(double phase_mb, Row& row) const {
    const auto t = transport_stats();
    const auto calls = t.read_calls + t.write_calls;
    row.bytes_per_syscall =
        calls == 0 ? 0.0
                   : static_cast<double>(t.read_bytes + t.write_bytes) /
                         static_cast<double>(calls);
    const auto pool = chunk_buffer_pool().stats();
    const auto fresh = (pool.acquires - pool_before_.acquires) -
                       (pool.reuses - pool_before_.reuses);
    row.allocs_per_mb =
        phase_mb == 0 ? 0.0 : static_cast<double>(fresh) / phase_mb;
  }

 private:
  BufferPool::Stats pool_before_;
};

std::uint64_t pct(std::vector<std::uint64_t>& v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(q * (v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

void run_config(int sessions, const FaultPlan& plan, int files,
                std::size_t file_bytes, std::uint64_t seed,
                std::vector<Row>& rows) {
  MemoryBackend mem;
  std::optional<FaultInjectingBackend> faulty;
  StorageBackend* top = &mem;
  if (!plan.empty()) {
    faulty.emplace(mem, plan);
    top = &*faulty;
  }
  FramedBackend framed(*top);

  DaemonConfig dc;
  dc.listen = "tcp:0";
  dc.max_sessions = static_cast<std::uint32_t>(sessions) + 2;
  DedupDaemon daemon(framed, mem, dc);
  daemon.start();
  const std::string spec = daemon.listen_spec();

  std::mutex agg_mu;
  std::vector<std::uint64_t> put_us, get_us;
  std::atomic<int> put_errors{0}, get_errors{0};
  const std::uint64_t bytes_per_phase =
      static_cast<std::uint64_t>(sessions) * files * file_bytes;

  const double mb = static_cast<double>(bytes_per_phase) / (1024.0 * 1024.0);
  Row ingest_row{sessions, !plan.empty(), "ingest"};
  Row restore_row{sessions, !plan.empty(), "restore"};

  const PhaseCounters ingest_counters;
  const auto ingest_start = Clock::now();
  {
    std::vector<std::thread> workers;
    for (int s = 0; s < sessions; ++s) {
      workers.emplace_back([&, s] {
        auto client = DedupClient::connect(spec);
        if (!client) {
          put_errors += files;
          return;
        }
        const auto data = session_files(s, files, file_bytes, seed);
        std::vector<std::uint64_t> local;
        for (int k = 0; k < files; ++k) {
          const auto t0 = Clock::now();
          const auto r = client->put_bytes(
              "s" + std::to_string(s), "f" + std::to_string(k) + ".img",
              ByteSpan{data[k]});
          local.push_back(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - t0)
                  .count()));
          if (!r.ok) ++put_errors;
        }
        std::lock_guard<std::mutex> lock(agg_mu);
        put_us.insert(put_us.end(), local.begin(), local.end());
      });
    }
    for (auto& w : workers) w.join();
  }
  const double ingest_s =
      std::chrono::duration<double>(Clock::now() - ingest_start).count();
  ingest_counters.finish(mb, ingest_row);

  const PhaseCounters restore_counters;
  const auto restore_start = Clock::now();
  {
    std::vector<std::thread> workers;
    for (int s = 0; s < sessions; ++s) {
      workers.emplace_back([&, s] {
        auto client = DedupClient::connect(spec);
        if (!client) {
          get_errors += files;
          return;
        }
        const auto data = session_files(s, files, file_bytes, seed);
        std::vector<std::uint64_t> local;
        for (int k = 0; k < files; ++k) {
          ByteVec out;
          const auto t0 = Clock::now();
          const auto r = client->get(
              "s" + std::to_string(s), "f" + std::to_string(k) + ".img",
              [&](ByteSpan chunk) { append(out, chunk); });
          local.push_back(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - t0)
                  .count()));
          if (!r.ok || !r.stream_ok || out != data[k]) ++get_errors;
        }
        std::lock_guard<std::mutex> lock(agg_mu);
        get_us.insert(get_us.end(), local.begin(), local.end());
      });
    }
    for (auto& w : workers) w.join();
  }
  const double restore_s =
      std::chrono::duration<double>(Clock::now() - restore_start).count();
  restore_counters.finish(mb, restore_row);
  daemon.stop();

  ingest_row.mb_per_s = mb / ingest_s;
  ingest_row.p50_us = pct(put_us, 0.50);
  ingest_row.p99_us = pct(put_us, 0.99);
  ingest_row.errors = put_errors.load();
  restore_row.mb_per_s = mb / restore_s;
  restore_row.p50_us = pct(get_us, 0.50);
  restore_row.p99_us = pct(get_us, 0.99);
  restore_row.errors = get_errors.load();
  rows.push_back(ingest_row);
  rows.push_back(restore_row);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto sessions_list =
      flags.get_int_list("sessions", std::vector<std::int64_t>{1, 4, 8});
  const int files = static_cast<int>(flags.get_int("files", 4));
  const std::size_t file_bytes =
      static_cast<std::size_t>(flags.get_int("file_kb", 512)) << 10;
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 1));
  // Transient read errors late in the op stream, absorbed by the restore
  // retry path; `none` skips the fault sweep entirely.
  const std::string fault_spec =
      flags.get("fault-plan", "readerr@40x3,readerr@90x2,seed:7");

  std::vector<Row> rows;
  for (const auto s : sessions_list) {
    run_config(static_cast<int>(s), FaultPlan{}, files, file_bytes, seed,
               rows);
  }
  if (fault_spec != "none") {
    const FaultPlan plan = FaultPlan::parse(fault_spec);
    for (const auto s : sessions_list) {
      run_config(static_cast<int>(s), plan, files, file_bytes, seed, rows);
    }
  }

  std::printf("%9s %7s %8s %10s %9s %9s %7s %11s %9s\n", "sessions",
              "faults", "phase", "MB/s", "p50_us", "p99_us", "errors",
              "B/syscall", "alloc/MB");
  for (const auto& r : rows) {
    std::printf("%9d %7s %8s %10.1f %9llu %9llu %7d %11.0f %9.2f\n",
                r.sessions, r.faults ? "yes" : "no", r.phase, r.mb_per_s,
                static_cast<unsigned long long>(r.p50_us),
                static_cast<unsigned long long>(r.p99_us), r.errors,
                r.bytes_per_syscall, r.allocs_per_mb);
  }

  const std::string json = flags.get("json", "");
  if (!json.empty()) {
    std::ofstream out(json);
    out << "{\n  \"bench\": \"server_throughput\",\n";
    out << "  \"files_per_session\": " << files << ",\n";
    out << "  \"file_kb\": " << (file_bytes >> 10) << ",\n";
    out << "  \"host_cpus\": " << std::thread::hardware_concurrency()
        << ",\n";
    out << "  \"fault_plan\": \""
        << (fault_spec == "none" ? "" : fault_spec) << "\",\n";
    out << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      char buf[320];
      std::snprintf(buf, sizeof(buf),
                    "    {\"sessions\": %d, \"faults\": %s, \"phase\": "
                    "\"%s\", \"mb_per_s\": %.1f, \"p50_us\": %llu, "
                    "\"p99_us\": %llu, \"errors\": %d, "
                    "\"bytes_per_syscall\": %.0f, "
                    "\"allocs_per_mb\": %.2f}%s\n",
                    r.sessions, r.faults ? "true" : "false", r.phase,
                    r.mb_per_s, static_cast<unsigned long long>(r.p50_us),
                    static_cast<unsigned long long>(r.p99_us), r.errors,
                    r.bytes_per_syscall, r.allocs_per_mb,
                    i + 1 < rows.size() ? "," : "");
      out << buf;
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json.c_str());
  }

  // Perf-smoke gate: fail the run when the clean single-session ingest
  // falls under the floor. The env var outranks the flag so a slow CI
  // host can loosen the bar without editing the test definition.
  double floor_mbps = static_cast<double>(flags.get_int("floor-mbps", 0));
  if (const char* env = std::getenv("MHD_PERF_SMOKE_FLOOR_MBPS")) {
    floor_mbps = std::atof(env);
  }
  if (floor_mbps > 0) {
    for (const auto& r : rows) {
      if (r.sessions != 1 || r.faults || std::string(r.phase) != "ingest") {
        continue;
      }
      if (r.errors != 0 || r.mb_per_s < floor_mbps) {
        std::printf(
            "perf-smoke FAIL: single-session ingest %.1f MB/s "
            "(errors=%d) under floor %.1f MB/s\n",
            r.mb_per_s, r.errors, floor_mbps);
        return 1;
      }
      std::printf("perf-smoke OK: %.1f MB/s >= floor %.1f MB/s\n",
                  r.mb_per_s, floor_mbps);
    }
  }
  return 0;
}
