// Multi-tenant daemon throughput: concurrent sessions vs aggregate
// ingest/restore bandwidth and tail latency.
//
//   server_throughput [--sessions=1,4,8] [--files=4] [--file_kb=512]
//                     [--fault-plan=SPEC|none] [--seed=N]
//                     [--net-fault-plan=SPEC|none]
//                     [--json=BENCH_server.json]
//
// For each session count S the harness starts a fresh in-process daemon
// on a loopback socket and drives S concurrent client sessions (disjoint
// tenants) through the real wire protocol: every session PUTs `files`
// files of `file_kb` KiB (consecutive files share half their content, so
// the dedup path is exercised), then GETs them all back with byte
// verification. Each sweep runs twice: clean, and with a deterministic
// storage fault plan injected below the framing layer (restores absorb
// the transient read errors through the bounded in-stream retry — the
// row's `errors` column shows what still surfaced).
//
// A final chaos row (largest session count) replaces storage faults with
// NETWORK faults — a seeded net-fault plan (server/fault_conn.h) tearing
// and resetting early connections — drives every client with a retry
// policy, and restarts the daemon cold at the phase midpoint. Its columns
// are the effective MB/s over the whole wall clock (restart blackout
// included), the retries the clients absorbed, and the blackout length
// from stop() to the successor daemon serving its first request.
// --net-fault-plan=none skips it (the perf-smoke gate does).
//
// Reported per (sessions, faults, phase): aggregate MB/s over the phase
// wall clock, exact p50/p99 per-request latency, and two efficiency
// ratios from process-wide pump counters — payload bytes moved per
// transport syscall (transport_stats) and fresh slab allocations per MB
// (chunk_buffer_pool stats: acquires minus free-list reuses). The daemon
// runs in-process, so both sides of the loopback conversation are
// counted. BENCH_server.json at the repo root is the recorded baseline
// (see --json).
//
// --floor-mbps=N (or the MHD_PERF_SMOKE_FLOOR_MBPS env var, which wins)
// turns the run into a pass/fail gate: exit 1 unless the clean
// single-session ingest sustains at least N MB/s. The `perf-smoke` ctest
// uses it to catch data-path regressions.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mhd/server/client.h"
#include "mhd/server/daemon.h"
#include "mhd/store/fault_backend.h"
#include "mhd/store/framed_backend.h"
#include "mhd/store/memory_backend.h"
#include "mhd/util/buffer_pool.h"
#include "mhd/util/flags.h"

namespace {

using namespace mhd;
using namespace mhd::server;
using Clock = std::chrono::steady_clock;

ByteVec make_blob(std::uint64_t seed, std::size_t n) {
  ByteVec v(n);
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + 0x2545F4914F6CDD1Dull;
  for (auto& b : v) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<Byte>(x >> 32);
  }
  return v;
}

/// `files` blobs per tenant; file k shares its first half with file k-1.
std::vector<ByteVec> session_files(std::uint64_t tenant, int files,
                                   std::size_t bytes, std::uint64_t seed) {
  std::vector<ByteVec> out;
  for (int k = 0; k < files; ++k) {
    ByteVec blob = make_blob(seed + tenant * 1000 + k, bytes);
    if (k > 0) {
      std::copy(out.back().begin(),
                out.back().begin() + static_cast<std::ptrdiff_t>(bytes / 2),
                blob.begin());
    }
    out.push_back(std::move(blob));
  }
  return out;
}

struct Row {
  int sessions = 0;
  bool faults = false;
  const char* phase = "";
  double mb_per_s = 0;
  std::uint64_t p50_us = 0, p99_us = 0;
  int errors = 0;
  double bytes_per_syscall = 0;  ///< transport payload bytes / syscalls
  double allocs_per_mb = 0;      ///< fresh slab allocations / phase MB
  std::uint64_t retries = 0;     ///< client retries absorbed (chaos row)
  double recovery_ms = 0;        ///< daemon restart -> first served ping
};

/// Phase-scoped pump counters: transport syscalls (reset at entry) and
/// chunk-pool allocations (delta of the monotonic counters).
class PhaseCounters {
 public:
  PhaseCounters() : pool_before_(chunk_buffer_pool().stats()) {
    reset_transport_stats();
  }

  void finish(double phase_mb, Row& row) const {
    const auto t = transport_stats();
    const auto calls = t.read_calls + t.write_calls;
    row.bytes_per_syscall =
        calls == 0 ? 0.0
                   : static_cast<double>(t.read_bytes + t.write_bytes) /
                         static_cast<double>(calls);
    const auto pool = chunk_buffer_pool().stats();
    const auto fresh = (pool.acquires - pool_before_.acquires) -
                       (pool.reuses - pool_before_.reuses);
    row.allocs_per_mb =
        phase_mb == 0 ? 0.0 : static_cast<double>(fresh) / phase_mb;
  }

 private:
  BufferPool::Stats pool_before_;
};

std::uint64_t pct(std::vector<std::uint64_t>& v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(q * (v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

void run_config(int sessions, const FaultPlan& plan, int files,
                std::size_t file_bytes, std::uint64_t seed,
                std::vector<Row>& rows) {
  MemoryBackend mem;
  std::optional<FaultInjectingBackend> faulty;
  StorageBackend* top = &mem;
  if (!plan.empty()) {
    faulty.emplace(mem, plan);
    top = &*faulty;
  }
  FramedBackend framed(*top);

  DaemonConfig dc;
  dc.listen = "tcp:0";
  dc.max_sessions = static_cast<std::uint32_t>(sessions) + 2;
  DedupDaemon daemon(framed, mem, dc);
  daemon.start();
  const std::string spec = daemon.listen_spec();

  std::mutex agg_mu;
  std::vector<std::uint64_t> put_us, get_us;
  std::atomic<int> put_errors{0}, get_errors{0};
  const std::uint64_t bytes_per_phase =
      static_cast<std::uint64_t>(sessions) * files * file_bytes;

  const double mb = static_cast<double>(bytes_per_phase) / (1024.0 * 1024.0);
  Row ingest_row{sessions, !plan.empty(), "ingest"};
  Row restore_row{sessions, !plan.empty(), "restore"};

  const PhaseCounters ingest_counters;
  const auto ingest_start = Clock::now();
  {
    std::vector<std::thread> workers;
    for (int s = 0; s < sessions; ++s) {
      workers.emplace_back([&, s] {
        auto client = DedupClient::connect(spec);
        if (!client) {
          put_errors += files;
          return;
        }
        const auto data = session_files(s, files, file_bytes, seed);
        std::vector<std::uint64_t> local;
        for (int k = 0; k < files; ++k) {
          const auto t0 = Clock::now();
          const auto r = client->put_bytes(
              "s" + std::to_string(s), "f" + std::to_string(k) + ".img",
              ByteSpan{data[k]});
          local.push_back(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - t0)
                  .count()));
          if (!r.ok) ++put_errors;
        }
        std::lock_guard<std::mutex> lock(agg_mu);
        put_us.insert(put_us.end(), local.begin(), local.end());
      });
    }
    for (auto& w : workers) w.join();
  }
  const double ingest_s =
      std::chrono::duration<double>(Clock::now() - ingest_start).count();
  ingest_counters.finish(mb, ingest_row);

  const PhaseCounters restore_counters;
  const auto restore_start = Clock::now();
  {
    std::vector<std::thread> workers;
    for (int s = 0; s < sessions; ++s) {
      workers.emplace_back([&, s] {
        auto client = DedupClient::connect(spec);
        if (!client) {
          get_errors += files;
          return;
        }
        const auto data = session_files(s, files, file_bytes, seed);
        std::vector<std::uint64_t> local;
        for (int k = 0; k < files; ++k) {
          ByteVec out;
          const auto t0 = Clock::now();
          const auto r = client->get(
              "s" + std::to_string(s), "f" + std::to_string(k) + ".img",
              [&](ByteSpan chunk) { append(out, chunk); });
          local.push_back(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - t0)
                  .count()));
          if (!r.ok || !r.stream_ok || out != data[k]) ++get_errors;
        }
        std::lock_guard<std::mutex> lock(agg_mu);
        get_us.insert(get_us.end(), local.begin(), local.end());
      });
    }
    for (auto& w : workers) w.join();
  }
  const double restore_s =
      std::chrono::duration<double>(Clock::now() - restore_start).count();
  restore_counters.finish(mb, restore_row);
  daemon.stop();

  ingest_row.mb_per_s = mb / ingest_s;
  ingest_row.p50_us = pct(put_us, 0.50);
  ingest_row.p99_us = pct(put_us, 0.99);
  ingest_row.errors = put_errors.load();
  restore_row.mb_per_s = mb / restore_s;
  restore_row.p50_us = pct(get_us, 0.50);
  restore_row.p99_us = pct(get_us, 0.99);
  restore_row.errors = get_errors.load();
  rows.push_back(ingest_row);
  rows.push_back(restore_row);
}

/// Chaos sweep: ingest through a seeded NETWORK fault plan (torn frames,
/// resets on early connections) with retrying clients, plus one full
/// daemon restart mid-phase. Reports the effective bandwidth over the
/// whole wall clock (blackout included), how many retries the clients
/// absorbed, and how long the restart blackout lasted from stop() to the
/// first served request — the dedup cost of "the server died and came
/// back" with resilient clients.
void run_chaos_config(int sessions, const std::string& net_spec, int files,
                      std::size_t file_bytes, std::uint64_t seed,
                      std::vector<Row>& rows) {
  MemoryBackend mem;
  FramedBackend framed(mem);
  const std::string sock = "server_throughput_chaos.sock";
  ::unlink(sock.c_str());

  DaemonConfig dc;
  dc.listen = "unix:" + sock;
  dc.max_sessions = static_cast<std::uint32_t>(sessions) + 2;
  dc.net_fault_plan = net_spec;
  auto daemon = std::make_unique<DedupDaemon>(framed, mem, dc);
  daemon->start();
  const std::string spec = daemon->listen_spec();

  const std::uint64_t bytes_per_phase =
      static_cast<std::uint64_t>(sessions) * files * file_bytes;
  const double mb = static_cast<double>(bytes_per_phase) / (1024.0 * 1024.0);
  Row row{sessions, true, "chaos-ingest"};

  std::mutex agg_mu;
  std::vector<std::uint64_t> put_us;
  std::atomic<int> errors{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<int> completed{0};
  const int total_puts = sessions * files;

  const PhaseCounters counters;
  const auto start = Clock::now();
  std::vector<std::thread> workers;
  for (int s = 0; s < sessions; ++s) {
    workers.emplace_back([&, s] {
      auto client = DedupClient::connect(spec);
      if (!client) {
        errors += files;
        completed += files;
        return;
      }
      RetryPolicy policy;
      policy.max_retries = 400;
      policy.base_backoff_ms = 2;
      policy.max_backoff_ms = 50;
      policy.seed = seed + static_cast<std::uint64_t>(s);
      client->set_retry_policy(policy);
      const auto data = session_files(s, files, file_bytes, seed);
      std::vector<std::uint64_t> local;
      for (int k = 0; k < files; ++k) {
        const auto t0 = Clock::now();
        const auto r = client->put_bytes(
            "s" + std::to_string(s), "f" + std::to_string(k) + ".img",
            ByteSpan{data[k]});
        local.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - t0)
                .count()));
        if (!r.ok) ++errors;
        ++completed;
      }
      retries += client->retries();
      std::lock_guard<std::mutex> lock(agg_mu);
      put_us.insert(put_us.end(), local.begin(), local.end());
    });
  }

  // Kill-and-restart at the phase's midpoint: the clients ride the
  // blackout on their retry budgets. The probe measures stop() -> first
  // request served by the successor.
  while (completed.load() < total_puts / 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto stop_at = Clock::now();
  daemon->stop();
  daemon.reset();
  ::unlink(sock.c_str());
  daemon = std::make_unique<DedupDaemon>(framed, mem, dc);
  daemon->start();
  for (;;) {
    auto probe = DedupClient::connect(spec);
    if (probe && probe->ping().ok) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  row.recovery_ms =
      std::chrono::duration<double>(Clock::now() - stop_at).count() * 1e3;

  for (auto& w : workers) w.join();
  const double phase_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  counters.finish(mb, row);
  daemon->stop();
  ::unlink(sock.c_str());

  row.mb_per_s = mb / phase_s;
  row.p50_us = pct(put_us, 0.50);
  row.p99_us = pct(put_us, 0.99);
  row.errors = errors.load();
  row.retries = retries.load();
  rows.push_back(row);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto sessions_list =
      flags.get_int_list("sessions", std::vector<std::int64_t>{1, 4, 8});
  const int files = static_cast<int>(flags.get_int("files", 4));
  const std::size_t file_bytes =
      static_cast<std::size_t>(flags.get_int("file_kb", 512)) << 10;
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 1));
  // Transient read errors late in the op stream, absorbed by the restore
  // retry path; `none` skips the fault sweep entirely.
  const std::string fault_spec =
      flags.get("fault-plan", "readerr@40x3,readerr@90x2,seed:7");

  std::vector<Row> rows;
  for (const auto s : sessions_list) {
    run_config(static_cast<int>(s), FaultPlan{}, files, file_bytes, seed,
               rows);
  }
  if (fault_spec != "none") {
    const FaultPlan plan = FaultPlan::parse(fault_spec);
    for (const auto s : sessions_list) {
      run_config(static_cast<int>(s), plan, files, file_bytes, seed, rows);
    }
  }
  // Network chaos sweep (largest session count only — the interesting
  // number is effective bandwidth with ALL clients riding the faults).
  const std::string net_spec =
      flags.get("net-fault-plan", "torn@3,reset@6,conn@1x2,conn@5x1,seed:9");
  if (net_spec != "none" && !sessions_list.empty()) {
    run_chaos_config(static_cast<int>(sessions_list.back()), net_spec, files,
                     file_bytes, seed, rows);
  }

  std::printf("%9s %7s %13s %10s %9s %9s %7s %11s %9s %8s %9s\n", "sessions",
              "faults", "phase", "MB/s", "p50_us", "p99_us", "errors",
              "B/syscall", "alloc/MB", "retries", "recov_ms");
  for (const auto& r : rows) {
    std::printf(
        "%9d %7s %13s %10.1f %9llu %9llu %7d %11.0f %9.2f %8llu %9.1f\n",
        r.sessions, r.faults ? "yes" : "no", r.phase, r.mb_per_s,
        static_cast<unsigned long long>(r.p50_us),
        static_cast<unsigned long long>(r.p99_us), r.errors,
        r.bytes_per_syscall, r.allocs_per_mb,
        static_cast<unsigned long long>(r.retries), r.recovery_ms);
  }

  const std::string json = flags.get("json", "");
  if (!json.empty()) {
    std::ofstream out(json);
    out << "{\n  \"bench\": \"server_throughput\",\n";
    out << "  \"files_per_session\": " << files << ",\n";
    out << "  \"file_kb\": " << (file_bytes >> 10) << ",\n";
    out << "  \"host_cpus\": " << std::thread::hardware_concurrency()
        << ",\n";
    out << "  \"fault_plan\": \""
        << (fault_spec == "none" ? "" : fault_spec) << "\",\n";
    out << "  \"net_fault_plan\": \""
        << (net_spec == "none" ? "" : net_spec) << "\",\n";
    out << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      char buf[320];
      std::snprintf(buf, sizeof(buf),
                    "    {\"sessions\": %d, \"faults\": %s, \"phase\": "
                    "\"%s\", \"mb_per_s\": %.1f, \"p50_us\": %llu, "
                    "\"p99_us\": %llu, \"errors\": %d, "
                    "\"bytes_per_syscall\": %.0f, "
                    "\"allocs_per_mb\": %.2f, \"retries\": %llu, "
                    "\"recovery_ms\": %.1f}%s\n",
                    r.sessions, r.faults ? "true" : "false", r.phase,
                    r.mb_per_s, static_cast<unsigned long long>(r.p50_us),
                    static_cast<unsigned long long>(r.p99_us), r.errors,
                    r.bytes_per_syscall, r.allocs_per_mb,
                    static_cast<unsigned long long>(r.retries),
                    r.recovery_ms, i + 1 < rows.size() ? "," : "");
      out << buf;
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json.c_str());
  }

  // Perf-smoke gate: fail the run when the clean single-session ingest
  // falls under the floor. The env var outranks the flag so a slow CI
  // host can loosen the bar without editing the test definition.
  double floor_mbps = static_cast<double>(flags.get_int("floor-mbps", 0));
  if (const char* env = std::getenv("MHD_PERF_SMOKE_FLOOR_MBPS")) {
    floor_mbps = std::atof(env);
  }
  if (floor_mbps > 0) {
    for (const auto& r : rows) {
      if (r.sessions != 1 || r.faults || std::string(r.phase) != "ingest") {
        continue;
      }
      if (r.errors != 0 || r.mb_per_s < floor_mbps) {
        std::printf(
            "perf-smoke FAIL: single-session ingest %.1f MB/s "
            "(errors=%d) under floor %.1f MB/s\n",
            r.mb_per_s, r.errors, floor_mbps);
        return 1;
      }
      std::printf("perf-smoke OK: %.1f MB/s >= floor %.1f MB/s\n",
                  r.mb_per_s, floor_mbps);
    }
  }
  return 0;
}
