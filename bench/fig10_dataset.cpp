// Fig. 10 — dataset characteristics and HHR cost statistics.
//
//  (a) DAD (duplicate bytes / duplicate slices) detected by BF-MHD vs ECS:
//      smaller ECS finds shorter slices, so detected DAD shrinks with ECS
//      (the paper measures 90-220 KB on its 1 TB corpus).
//  (b) extra disk accesses caused by HHR vs the number of duplicate
//      slices L: the worst-case bound is 3L, but measured HHR cost is far
//      below L because re-chunked entries are reused across backups.
#include "bench_common.h"

using namespace mhd;
using namespace mhd::bench;

int main(int argc, char** argv) {
  BenchOptions o = BenchOptions::parse(argc, argv);
  const Flags flags(argc, argv);
  o.ecs_list = flags.get_int_list("ecs", {512, 768, 1024, 2048, 4096, 8192});
  print_header("Fig. 10: dataset characteristics and HHR cost",
               "(a) DAD grows with ECS; (b) HHR disk accesses << L << 3L",
               o);
  const Corpus corpus = o.make_corpus();

  TextTable t({"ECS (Bytes)", "DAD (KB)", "Dup slices L", "HHR accesses",
               "HHR ops", "3L bound"});
  TextTable csv({"ecs", "dad_kb", "dup_slices", "hhr_accesses", "hhr_ops"});
  for (const auto ecs : o.ecs_list) {
    const auto r = run_experiment(
        o.spec("bf-mhd", static_cast<std::uint32_t>(ecs)), corpus);
    // HHR's extra disk accesses: chunk-byte reloads plus the dirty manifest
    // write-backs it causes (manifest outputs beyond the F per-file ones).
    const std::uint64_t extra_manifest_out =
        r.stats.count(AccessKind::kManifestOut) -
        std::min(r.stats.count(AccessKind::kManifestOut),
                 r.counters.files_with_data);
    const std::uint64_t hhr_accesses =
        r.counters.hhr_chunk_reloads + extra_manifest_out;
    t.add_row({TextTable::num(static_cast<std::uint64_t>(ecs)),
               TextTable::num(r.dad_bytes() / 1024.0, 2),
               TextTable::num(r.counters.dup_slices),
               TextTable::num(hhr_accesses),
               TextTable::num(r.counters.hhr_operations),
               TextTable::num(3 * r.counters.dup_slices)});
    csv.add_row({TextTable::num(static_cast<std::uint64_t>(ecs)),
                 TextTable::num(r.dad_bytes() / 1024.0, 3),
                 TextTable::num(r.counters.dup_slices),
                 TextTable::num(hhr_accesses),
                 TextTable::num(r.counters.hhr_operations)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("CSV:\n%s", csv.to_csv().c_str());
  std::printf("\nexpected shape: DAD increases with ECS; HHR accesses stay "
              "well below L (and far below the 3L worst case).\n");
  return 0;
}
