// Extensions comparison — the related-work engines implemented beyond the
// paper's evaluation set (FBC, Extreme Binning) side by side with the
// paper's four, on the same corpus and metrics as Fig. 8.
#include "bench_common.h"

using namespace mhd;
using namespace mhd::bench;

int main(int argc, char** argv) {
  BenchOptions o = BenchOptions::parse(argc, argv);
  const Flags flags(argc, argv);
  const std::uint32_t ecs =
      static_cast<std::uint32_t>(flags.get_int("table_ecs", 1024));
  print_header("Extensions: FBC and Extreme Binning vs the paper's set",
               "FBC sits between Bimodal and SubChunk; Extreme Binning "
               "trades DER for one index access per file",
               o);
  const Corpus corpus = o.make_corpus();

  TextTable t({"Algorithm", "MetaDataRatio", "ThroughputRatio",
               "Data-only DER", "Real DER", "Manifest loads", "Index RAM KB"});
  std::vector<std::string> algos = engine_names();
  for (const auto& extra : extension_engine_names()) algos.push_back(extra);
  for (const auto& algo : algos) {
    const auto r = run_experiment(o.spec(algo, ecs), corpus);
    t.add_row({r.algorithm, pct(r.metadata_ratio()),
               TextTable::num(r.throughput_ratio(), 3),
               TextTable::num(r.data_only_der(), 3),
               TextTable::num(r.real_der(), 3),
               TextTable::num(r.manifest_loads),
               TextTable::num(r.index_ram_bytes / 1024)});
  }
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}
