// index_throughput — fingerprint-index op throughput, mem vs. disk, plus
// the sampled similarity tier at 10–100× corpus scale:
//
//   ./index_throughput [--keys=200000] [--index-cache-mb=8]
//                      [--shards=256] [--reps=3]
//                      [--sampled-scales=10,100] [--sampled-bits=8,10]
//                      [--segment-chunks=8192] [--resident-entries=8192]
//                      [--json=BENCH_index.json]
//
// Measures, best-of-reps, millions of ops/s for the three access patterns
// a dedup ingest generates — insert (new fingerprint), lookup-hit (a
// duplicate), lookup-miss (unique data, the common case the bloom front
// exists for) — against:
//
//   mem         MemIndex, the historical always-resident map
//   disk-cold   PersistentIndex populated in this process (delta + pages)
//   disk-warm   the same backend reopened: bloom snapshot loaded, pages
//               faulted through the bounded cache (the warm-restart path)
//
// RAM accounting is printed alongside: the disk index's high-water must
// sit near its configured page-cache budget + bloom, not near the
// MemIndex's O(keys) footprint — that bounded-RAM-at-speed trade is the
// whole point of --index-impl=disk.
//
// The sampled sweep streams scale×keys fingerprints through a SampledIndex
// the way an engine would: fingerprints arrive in segments of
// --segment-chunks (one manifest per segment), the resident map is capped
// at --resident-entries by evicting the oldest whole segments (the
// manifest-cache mirror), and hooks accumulate in the sparse table. A
// second pass replays the identical stream as duplicates: a hit is either
// resident or reached by loading the hook's champion segment — everything
// else is the tier's measured dedup loss. RAM is compared against a disk
// index actually populated at the same scale (measured up to 4M keys,
// modeled as page-cache budget + bloom above that).
//
// BENCH_index.json at the repo root is the recorded baseline (see --json).
#include <algorithm>
#include <cstdio>
#include <deque>
#include <fstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mhd/hash/sha1.h"
#include "mhd/index/mem_index.h"
#include "mhd/index/persistent_index.h"
#include "mhd/index/sampled_index.h"
#include "mhd/store/memory_backend.h"
#include "mhd/util/flags.h"
#include "mhd/util/random.h"
#include "mhd/util/table.h"
#include "mhd/util/timer.h"

namespace {

using namespace mhd;

Digest digest_of(std::uint64_t n) {
  ByteVec v;
  append_le<std::uint64_t>(v, n);
  return Sha1::hash(v);
}

struct Row {
  std::string impl;
  std::string phase;
  std::uint64_t ops = 0;
  double seconds = 0;

  double mops() const { return ops / seconds / 1e6; }
};

/// Best-of-reps timing of `fn` over `ops` operations.
template <typename Fn>
Row time_phase(const std::string& impl, const std::string& phase,
               std::uint64_t ops, int reps, Fn&& fn) {
  Row row{impl, phase, ops, 0};
  for (int r = 0; r < reps; ++r) {
    const Stopwatch watch;
    fn();
    const double s = watch.seconds();
    if (row.seconds == 0 || s < row.seconds) row.seconds = s;
  }
  return row;
}

void run_lookups(FingerprintIndex& index, const std::vector<Digest>& keys,
                 bool expect_hit) {
  std::uint64_t hits = 0;
  for (const Digest& fp : keys) hits += index.lookup(fp).has_value() ? 1 : 0;
  if (expect_hit ? hits != keys.size() : hits != 0) {
    std::fprintf(stderr, "FATAL: %llu/%zu unexpected lookup results — the "
                         "index under benchmark is wrong, numbers void\n",
                 static_cast<unsigned long long>(expect_hit
                                                     ? keys.size() - hits
                                                     : hits),
                 keys.size());
    std::exit(1);
  }
}

/// "10,100" -> {10, 100}; malformed pieces are skipped.
std::vector<std::uint32_t> parse_u32_list(const std::string& s) {
  std::vector<std::uint32_t> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string piece =
        s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!piece.empty()) {
      out.push_back(static_cast<std::uint32_t>(std::stoul(piece)));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// One (scale, sample_bits) configuration of the sampled sweep.
struct SampledRun {
  std::uint32_t scale = 0;
  std::uint32_t bits = 0;
  std::uint64_t total = 0;
  std::uint64_t segments = 0;
  double ingest_seconds = 0;
  double replay_seconds = 0;
  std::uint64_t ram_hw = 0;
  std::uint64_t hook_table_bytes = 0;
  std::uint64_t hook_entries = 0;
  std::uint64_t champion_loads = 0;
  std::uint64_t dup_found = 0;
  std::uint64_t disk_ram = 0;  ///< same-scale disk index RAM high-water
  bool disk_ram_measured = false;  ///< false = budget+bloom model

  double detected() const {
    return total == 0 ? 0.0
                      : static_cast<double>(dup_found) /
                            static_cast<double>(total);
  }
  double loss() const { return 1.0 - detected(); }
  double ram_reduction() const {
    return ram_hw == 0 ? 0.0
                       : static_cast<double>(disk_ram) /
                             static_cast<double>(ram_hw);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto keys_n = flags.get_uint("keys", 200000, 1000, 50u << 20);
  const auto cache_bytes = flags.get_size("index-cache-mb", 8ull << 20,
                                          64u << 10, 1ull << 40, 1ull << 20);
  const auto shards =
      static_cast<std::uint32_t>(flags.get_uint("shards", 256, 1, 4096));
  const int reps = static_cast<int>(flags.get_uint("reps", 3, 1, 100));

  std::vector<Digest> present, absent;
  present.reserve(keys_n);
  absent.reserve(keys_n);
  for (std::uint64_t i = 0; i < keys_n; ++i) {
    present.push_back(digest_of(i));
    absent.push_back(digest_of(i + (1ull << 40)));
  }
  // Lookups in an order unrelated to insertion: no accidental locality.
  Xoshiro256 rng(11);
  std::shuffle(present.begin(), present.end(), rng);

  const auto entry_for = [](const Digest& fp) {
    return IndexEntry{Sha1::hash(fp.span()), fp.prefix64() % 4096};
  };

  std::vector<Row> rows;

  // --- mem --------------------------------------------------------------
  MemIndex mem;
  rows.push_back(time_phase("mem", "insert", keys_n, 1, [&] {
    for (const Digest& fp : present) mem.put(fp, entry_for(fp));
  }));
  rows.push_back(time_phase("mem", "lookup-hit", keys_n, reps,
                            [&] { run_lookups(mem, present, true); }));
  rows.push_back(time_phase("mem", "lookup-miss", keys_n, reps,
                            [&] { run_lookups(mem, absent, false); }));
  const std::uint64_t mem_ram = mem.ram_high_water();

  // --- disk, cold (populate + compact in-process) -----------------------
  PersistentIndexConfig cfg;
  cfg.shards = shards;
  cfg.cache_bytes = cache_bytes;
  cfg.expected_keys = keys_n;
  MemoryBackend backend;
  std::uint64_t cold_ram = 0, cold_page_ram = 0;
  {
    PersistentIndex disk(backend, cfg);
    rows.push_back(time_phase("disk-cold", "insert", keys_n, 1, [&] {
      for (const Digest& fp : present) disk.put(fp, entry_for(fp));
    }));
    disk.compact();
    disk.flush();
    rows.push_back(time_phase("disk-cold", "lookup-hit", keys_n, reps,
                              [&] { run_lookups(disk, present, true); }));
    rows.push_back(time_phase("disk-cold", "lookup-miss", keys_n, reps,
                              [&] { run_lookups(disk, absent, false); }));
    cold_ram = disk.ram_high_water();
    cold_page_ram = disk.page_cache_ram_high_water();
  }

  // --- disk, warm reopen (the restart path) -----------------------------
  PersistentIndex warm(backend, cfg);
  if (warm.entry_count() != keys_n) {
    std::fprintf(stderr, "FATAL: reopen lost entries (%llu != %llu)\n",
                 static_cast<unsigned long long>(warm.entry_count()),
                 static_cast<unsigned long long>(keys_n));
    return 1;
  }
  rows.push_back(time_phase("disk-warm", "lookup-hit", keys_n, reps,
                            [&] { run_lookups(warm, present, true); }));
  rows.push_back(time_phase("disk-warm", "lookup-miss", keys_n, reps,
                            [&] { run_lookups(warm, absent, false); }));
  const std::uint64_t warm_ram = warm.ram_high_water();
  const std::uint64_t warm_page_ram = warm.page_cache_ram_high_water();

  // --- sampled similarity tier, 10–100× corpus scale --------------------
  const auto scales = parse_u32_list(flags.get("sampled-scales", "10,100"));
  const auto bits_list = parse_u32_list(flags.get("sampled-bits", "8,10"));
  const std::uint64_t seg_chunks =
      flags.get_uint("segment-chunks", 8192, 64, 1u << 20);
  const std::uint64_t resident_cap = std::max<std::uint64_t>(
      flags.get_uint("resident-entries", 8192, 64, 1u << 24), seg_chunks);
  // A disk index populated at the same scale is the RAM yardstick;
  // measured up to 4M keys, modeled (page-cache budget + bloom) above.
  std::unordered_map<std::uint32_t, std::uint64_t> disk_at_scale;
  std::vector<SampledRun> sruns;
  for (const std::uint32_t scale : scales) {
    const std::uint64_t total = static_cast<std::uint64_t>(scale) * keys_n;
    const bool measure_disk = total <= 4'000'000;
    if (measure_disk && disk_at_scale.find(scale) == disk_at_scale.end()) {
      PersistentIndexConfig dcfg = cfg;
      dcfg.expected_keys = total;
      MemoryBackend dbackend;
      PersistentIndex scaled_disk(dbackend, dcfg);
      for (std::uint64_t i = 0; i < total; ++i) {
        scaled_disk.put(digest_of(i), entry_for(digest_of(i)));
      }
      scaled_disk.compact();
      scaled_disk.flush();
      disk_at_scale[scale] = scaled_disk.ram_high_water();
    }
    for (const std::uint32_t bits : bits_list) {
      SampledRun run;
      run.scale = scale;
      run.bits = bits;
      run.total = total;
      run.segments = (total + seg_chunks - 1) / seg_chunks;

      MemoryBackend sbackend;
      SampledIndexConfig scfg;
      scfg.sample_bits = bits;
      SampledIndex sampled(sbackend, scfg);

      // Segment s covers fingerprints [s*G, (s+1)*G) under one manifest.
      std::vector<Digest> manifest_of(run.segments);
      std::unordered_map<Digest, std::uint64_t, DigestHasher> seg_of;
      for (std::uint64_t s = 0; s < run.segments; ++s) {
        ByteVec v;
        append_le<std::uint64_t>(v, s);
        append_le<std::uint64_t>(v, 0x5347u);  // segment-name domain tag
        manifest_of[s] = Sha1::hash(v);
        seg_of.emplace(manifest_of[s], s);
      }

      const auto seg_len = [&](std::uint64_t s) {
        return std::min<std::uint64_t>(seg_chunks, total - s * seg_chunks);
      };
      std::deque<std::uint64_t> window;  // resident segments, oldest first
      std::unordered_set<std::uint64_t> resident_segs;
      std::uint64_t resident_entries = 0;
      // Room is made BEFORE inserting, so the resident map never
      // overshoots the cap mid-segment (the cache would not either).
      const auto evict_for = [&](std::uint64_t incoming) {
        while (!window.empty() &&
               resident_entries + incoming > resident_cap) {
          const std::uint64_t old = window.front();
          window.pop_front();
          resident_segs.erase(old);
          const std::uint64_t base = old * seg_chunks, n = seg_len(old);
          for (std::uint64_t j = 0; j < n; ++j) {
            sampled.erase(digest_of(base + j));
          }
          resident_entries -= n;
        }
      };
      const auto load_segment = [&](std::uint64_t s) {
        const std::uint64_t base = s * seg_chunks, n = seg_len(s);
        evict_for(n);
        for (std::uint64_t j = 0; j < n; ++j) {
          sampled.put(digest_of(base + j),
                      IndexEntry{manifest_of[s], j * 4096});
        }
        window.push_back(s);
        resident_segs.insert(s);
        resident_entries += n;
      };

      {
        const Stopwatch watch;
        for (std::uint64_t s = 0; s < run.segments; ++s) load_segment(s);
        run.ingest_seconds = watch.seconds();
      }
      sampled.flush();

      // Replay the identical stream as duplicates. A fingerprint counts
      // as detected when it is resident or becomes resident after the
      // hook's champion segments load — the engine's exact decision path.
      {
        const Stopwatch watch;
        for (std::uint64_t i = 0; i < total; ++i) {
          const Digest fp = digest_of(i);
          if (sampled.lookup(fp)) {
            ++run.dup_found;
            continue;
          }
          bool loaded = false;
          for (const Digest& m : sampled.champions_for(fp)) {
            const auto it = seg_of.find(m);
            if (it == seg_of.end() || resident_segs.count(it->second)) {
              continue;
            }
            load_segment(it->second);
            sampled.note_champion_load();
            loaded = true;
          }
          if (loaded && sampled.lookup(fp)) ++run.dup_found;
        }
        run.replay_seconds = watch.seconds();
      }

      run.ram_hw = sampled.ram_high_water();
      run.hook_table_bytes = sampled.ram_bytes() - sampled.entry_count() *
                                                       MemIndex::kEntryRamBytes;
      run.hook_entries = sampled.hook_entries();
      run.champion_loads = sampled.champion_loads();
      if (const auto it = disk_at_scale.find(scale);
          it != disk_at_scale.end()) {
        run.disk_ram = it->second;
        run.disk_ram_measured = true;
      } else {
        run.disk_ram =
            cache_bytes + total * cfg.bloom_bits_per_key / 8;
      }
      sruns.push_back(run);
    }
  }

  std::printf("fingerprint index throughput, %llu keys (shards=%u, "
              "cache=%0.1f MB)\n\n",
              static_cast<unsigned long long>(keys_n), shards,
              cache_bytes / 1048576.0);
  TextTable t({"Impl", "Phase", "Mops/s"});
  for (const auto& r : rows) {
    t.add_row({r.impl, r.phase, TextTable::num(r.mops(), 2)});
  }
  std::printf("%s\n", t.to_string().c_str());
  TextTable m({"Impl", "RAM high-water KB", "page cache KB", "budget KB"});
  m.add_row({"mem", TextTable::num(mem_ram / 1024), "-", "-"});
  m.add_row({"disk-cold", TextTable::num(cold_ram / 1024),
             TextTable::num(cold_page_ram / 1024),
             TextTable::num(cache_bytes / 1024)});
  m.add_row({"disk-warm", TextTable::num(warm_ram / 1024),
             TextTable::num(warm_page_ram / 1024),
             TextTable::num(cache_bytes / 1024)});
  std::printf("%s", m.to_string().c_str());

  if (!sruns.empty()) {
    std::printf("\nsampled similarity tier (segment=%llu chunks, resident "
                "cap=%llu entries)\n\n",
                static_cast<unsigned long long>(seg_chunks),
                static_cast<unsigned long long>(resident_cap));
    TextTable s({"Scale", "Bits", "Keys", "Ingest Mops/s", "Replay Mops/s",
                 "RAM KB", "Hook KB", "Dup found", "Loss", "vs disk RAM"});
    for (const auto& r : sruns) {
      s.add_row({TextTable::num(static_cast<std::uint64_t>(r.scale)) + "x",
                 TextTable::num(static_cast<std::uint64_t>(r.bits)),
                 TextTable::num(r.total),
                 TextTable::num(r.total / r.ingest_seconds / 1e6, 2),
                 TextTable::num(r.total / r.replay_seconds / 1e6, 2),
                 TextTable::num(r.ram_hw / 1024),
                 TextTable::num(r.hook_table_bytes / 1024),
                 TextTable::num(r.detected() * 100, 1) + "%",
                 TextTable::num(r.loss() * 100, 1) + "%",
                 TextTable::num(r.ram_reduction(), 1) + "x" +
                     (r.disk_ram_measured ? "" : " (model)")});
    }
    std::printf("%s", s.to_string().c_str());
  }

  if (cold_page_ram > cache_bytes || warm_page_ram > cache_bytes) {
    std::fprintf(stderr, "FATAL: page cache exceeded its budget\n");
    return 1;
  }

  const std::string json = flags.get("json", "");
  if (!json.empty()) {
    std::ofstream out(json);
    out << "{\n  \"bench\": \"index_throughput\",\n"
        << "  \"keys\": " << keys_n << ",\n"
        << "  \"shards\": " << shards << ",\n"
        << "  \"cache_bytes\": " << cache_bytes << ",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "    {\"impl\": \"%s\", \"phase\": \"%s\", "
                    "\"mops_per_s\": %.2f}%s\n",
                    rows[i].impl.c_str(), rows[i].phase.c_str(),
                    rows[i].mops(), i + 1 < rows.size() ? "," : "");
      out << buf;
    }
    out << "  ],\n  \"ram_high_water_bytes\": {\"mem\": " << mem_ram
        << ", \"disk_cold\": " << cold_ram
        << ", \"disk_warm\": " << warm_ram
        << ", \"disk_page_cache_budget\": " << cache_bytes << "},\n";
    out << "  \"sampled\": {\n    \"segment_chunks\": " << seg_chunks
        << ",\n    \"resident_entries\": " << resident_cap
        << ",\n    \"runs\": [\n";
    for (std::size_t i = 0; i < sruns.size(); ++i) {
      const SampledRun& r = sruns[i];
      char buf[512];
      std::snprintf(
          buf, sizeof(buf),
          "      {\"scale\": %u, \"sample_bits\": %u, \"keys\": %llu, "
          "\"ingest_mops_per_s\": %.2f, \"replay_mops_per_s\": %.2f, "
          "\"ram_high_water_bytes\": %llu, \"hook_table_bytes\": %llu, "
          "\"hook_entries\": %llu, \"champion_loads\": %llu, "
          "\"dup_detected_ratio\": %.4f, \"missed_dup_ratio\": %.4f, "
          "\"disk_ram_bytes\": %llu, \"disk_ram_measured\": %s, "
          "\"ram_reduction_vs_disk\": %.1f}%s\n",
          r.scale, r.bits, static_cast<unsigned long long>(r.total),
          r.total / r.ingest_seconds / 1e6, r.total / r.replay_seconds / 1e6,
          static_cast<unsigned long long>(r.ram_hw),
          static_cast<unsigned long long>(r.hook_table_bytes),
          static_cast<unsigned long long>(r.hook_entries),
          static_cast<unsigned long long>(r.champion_loads), r.detected(),
          r.loss(), static_cast<unsigned long long>(r.disk_ram),
          r.disk_ram_measured ? "true" : "false", r.ram_reduction(),
          i + 1 < sruns.size() ? "," : "");
      out << buf;
    }
    out << "    ]\n  }\n}\n";
    std::printf("wrote %s\n", json.c_str());
  }
  return 0;
}
