// index_throughput — fingerprint-index op throughput, mem vs. disk:
//
//   ./index_throughput [--keys=200000] [--index-cache-mb=8]
//                      [--shards=256] [--reps=3]
//                      [--json=BENCH_index.json]
//
// Measures, best-of-reps, millions of ops/s for the three access patterns
// a dedup ingest generates — insert (new fingerprint), lookup-hit (a
// duplicate), lookup-miss (unique data, the common case the bloom front
// exists for) — against:
//
//   mem         MemIndex, the historical always-resident map
//   disk-cold   PersistentIndex populated in this process (delta + pages)
//   disk-warm   the same backend reopened: bloom snapshot loaded, pages
//               faulted through the bounded cache (the warm-restart path)
//
// RAM accounting is printed alongside: the disk index's high-water must
// sit near its configured page-cache budget + bloom, not near the
// MemIndex's O(keys) footprint — that bounded-RAM-at-speed trade is the
// whole point of --index-impl=disk.
//
// BENCH_index.json at the repo root is the recorded baseline (see --json).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "mhd/hash/sha1.h"
#include "mhd/index/mem_index.h"
#include "mhd/index/persistent_index.h"
#include "mhd/store/memory_backend.h"
#include "mhd/util/flags.h"
#include "mhd/util/random.h"
#include "mhd/util/table.h"
#include "mhd/util/timer.h"

namespace {

using namespace mhd;

Digest digest_of(std::uint64_t n) {
  ByteVec v;
  append_le<std::uint64_t>(v, n);
  return Sha1::hash(v);
}

struct Row {
  std::string impl;
  std::string phase;
  std::uint64_t ops = 0;
  double seconds = 0;

  double mops() const { return ops / seconds / 1e6; }
};

/// Best-of-reps timing of `fn` over `ops` operations.
template <typename Fn>
Row time_phase(const std::string& impl, const std::string& phase,
               std::uint64_t ops, int reps, Fn&& fn) {
  Row row{impl, phase, ops, 0};
  for (int r = 0; r < reps; ++r) {
    const Stopwatch watch;
    fn();
    const double s = watch.seconds();
    if (row.seconds == 0 || s < row.seconds) row.seconds = s;
  }
  return row;
}

void run_lookups(FingerprintIndex& index, const std::vector<Digest>& keys,
                 bool expect_hit) {
  std::uint64_t hits = 0;
  for (const Digest& fp : keys) hits += index.lookup(fp).has_value() ? 1 : 0;
  if (expect_hit ? hits != keys.size() : hits != 0) {
    std::fprintf(stderr, "FATAL: %llu/%zu unexpected lookup results — the "
                         "index under benchmark is wrong, numbers void\n",
                 static_cast<unsigned long long>(expect_hit
                                                     ? keys.size() - hits
                                                     : hits),
                 keys.size());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto keys_n = flags.get_uint("keys", 200000, 1000, 50u << 20);
  const auto cache_bytes = flags.get_size("index-cache-mb", 8ull << 20,
                                          64u << 10, 1ull << 40, 1ull << 20);
  const auto shards =
      static_cast<std::uint32_t>(flags.get_uint("shards", 256, 1, 4096));
  const int reps = static_cast<int>(flags.get_uint("reps", 3, 1, 100));

  std::vector<Digest> present, absent;
  present.reserve(keys_n);
  absent.reserve(keys_n);
  for (std::uint64_t i = 0; i < keys_n; ++i) {
    present.push_back(digest_of(i));
    absent.push_back(digest_of(i + (1ull << 40)));
  }
  // Lookups in an order unrelated to insertion: no accidental locality.
  Xoshiro256 rng(11);
  std::shuffle(present.begin(), present.end(), rng);

  const auto entry_for = [](const Digest& fp) {
    return IndexEntry{Sha1::hash(fp.span()), fp.prefix64() % 4096};
  };

  std::vector<Row> rows;

  // --- mem --------------------------------------------------------------
  MemIndex mem;
  rows.push_back(time_phase("mem", "insert", keys_n, 1, [&] {
    for (const Digest& fp : present) mem.put(fp, entry_for(fp));
  }));
  rows.push_back(time_phase("mem", "lookup-hit", keys_n, reps,
                            [&] { run_lookups(mem, present, true); }));
  rows.push_back(time_phase("mem", "lookup-miss", keys_n, reps,
                            [&] { run_lookups(mem, absent, false); }));
  const std::uint64_t mem_ram = mem.ram_high_water();

  // --- disk, cold (populate + compact in-process) -----------------------
  PersistentIndexConfig cfg;
  cfg.shards = shards;
  cfg.cache_bytes = cache_bytes;
  cfg.expected_keys = keys_n;
  MemoryBackend backend;
  std::uint64_t cold_ram = 0, cold_page_ram = 0;
  {
    PersistentIndex disk(backend, cfg);
    rows.push_back(time_phase("disk-cold", "insert", keys_n, 1, [&] {
      for (const Digest& fp : present) disk.put(fp, entry_for(fp));
    }));
    disk.compact();
    disk.flush();
    rows.push_back(time_phase("disk-cold", "lookup-hit", keys_n, reps,
                              [&] { run_lookups(disk, present, true); }));
    rows.push_back(time_phase("disk-cold", "lookup-miss", keys_n, reps,
                              [&] { run_lookups(disk, absent, false); }));
    cold_ram = disk.ram_high_water();
    cold_page_ram = disk.page_cache_ram_high_water();
  }

  // --- disk, warm reopen (the restart path) -----------------------------
  PersistentIndex warm(backend, cfg);
  if (warm.entry_count() != keys_n) {
    std::fprintf(stderr, "FATAL: reopen lost entries (%llu != %llu)\n",
                 static_cast<unsigned long long>(warm.entry_count()),
                 static_cast<unsigned long long>(keys_n));
    return 1;
  }
  rows.push_back(time_phase("disk-warm", "lookup-hit", keys_n, reps,
                            [&] { run_lookups(warm, present, true); }));
  rows.push_back(time_phase("disk-warm", "lookup-miss", keys_n, reps,
                            [&] { run_lookups(warm, absent, false); }));
  const std::uint64_t warm_ram = warm.ram_high_water();
  const std::uint64_t warm_page_ram = warm.page_cache_ram_high_water();

  std::printf("fingerprint index throughput, %llu keys (shards=%u, "
              "cache=%0.1f MB)\n\n",
              static_cast<unsigned long long>(keys_n), shards,
              cache_bytes / 1048576.0);
  TextTable t({"Impl", "Phase", "Mops/s"});
  for (const auto& r : rows) {
    t.add_row({r.impl, r.phase, TextTable::num(r.mops(), 2)});
  }
  std::printf("%s\n", t.to_string().c_str());
  TextTable m({"Impl", "RAM high-water KB", "page cache KB", "budget KB"});
  m.add_row({"mem", TextTable::num(mem_ram / 1024), "-", "-"});
  m.add_row({"disk-cold", TextTable::num(cold_ram / 1024),
             TextTable::num(cold_page_ram / 1024),
             TextTable::num(cache_bytes / 1024)});
  m.add_row({"disk-warm", TextTable::num(warm_ram / 1024),
             TextTable::num(warm_page_ram / 1024),
             TextTable::num(cache_bytes / 1024)});
  std::printf("%s", m.to_string().c_str());

  if (cold_page_ram > cache_bytes || warm_page_ram > cache_bytes) {
    std::fprintf(stderr, "FATAL: page cache exceeded its budget\n");
    return 1;
  }

  const std::string json = flags.get("json", "");
  if (!json.empty()) {
    std::ofstream out(json);
    out << "{\n  \"bench\": \"index_throughput\",\n"
        << "  \"keys\": " << keys_n << ",\n"
        << "  \"shards\": " << shards << ",\n"
        << "  \"cache_bytes\": " << cache_bytes << ",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "    {\"impl\": \"%s\", \"phase\": \"%s\", "
                    "\"mops_per_s\": %.2f}%s\n",
                    rows[i].impl.c_str(), rows[i].phase.c_str(),
                    rows[i].mops(), i + 1 < rows.size() ? "," : "");
      out << buf;
    }
    out << "  ],\n  \"ram_high_water_bytes\": {\"mem\": " << mem_ram
        << ", \"disk_cold\": " << cold_ram
        << ", \"disk_warm\": " << warm_ram
        << ", \"disk_page_cache_budget\": " << cache_bytes << "}\n}\n";
    std::printf("wrote %s\n", json.c_str());
  }
  return 0;
}
