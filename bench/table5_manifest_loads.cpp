// TABLE V — disk accessing times for Manifest loading in BF-MHD.
//
// Counts how many times a Manifest had to be read from disk into the LRU
// cache during deduplication. Paper shape: loads decrease as ECS grows
// (fewer, larger chunks) and increase as SD shrinks (more hooks anchor
// more slices). These loads are exactly what disappears if the TABLE IV
// footprint is held in RAM.
#include "bench_common.h"

using namespace mhd;
using namespace mhd::bench;

int main(int argc, char** argv) {
  BenchOptions o = BenchOptions::parse(argc, argv);
  const Flags flags(argc, argv);
  o.ecs_list = flags.get_int_list("ecs", {1024, 2048, 4096, 8192});
  // At bench scale every manifest fits in the default cache budget and no
  // loads would occur at all; constrain the cache (unless overridden) so
  // the eviction/reload dynamics of the paper's 1 TB run appear.
  if (!flags.has("cache_kb")) {
    o.cache_kb = static_cast<std::uint64_t>(flags.get_int("cache_kb", 16));
  }
  const std::vector<std::int64_t> sd_list = flags.get_int_list(
      "sd_list", {static_cast<std::int64_t>(o.sd),
                  static_cast<std::int64_t>(o.sd) / 2,
                  static_cast<std::int64_t>(o.sd) / 4});
  print_header("TABLE V: disk accessing times for Manifest loading in BF-MHD",
               "loads shrink as ECS grows; grow as SD shrinks", o);
  const Corpus corpus = o.make_corpus();

  TextTable t({"SD", "ECS (Bytes)", "Manifest loads", "Manifest inputs"});
  for (const auto sd : sd_list) {
    BenchOptions os = o;
    os.sd = static_cast<std::uint32_t>(sd);
    for (const auto ecs : o.ecs_list) {
      const auto r = run_experiment(
          os.spec("bf-mhd", static_cast<std::uint32_t>(ecs)), corpus);
      t.add_row({TextTable::num(static_cast<std::uint64_t>(sd)),
                 TextTable::num(static_cast<std::uint64_t>(ecs)),
                 TextTable::num(r.manifest_loads),
                 TextTable::num(r.stats.count(AccessKind::kManifestIn))});
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}
