file(REMOVE_RECURSE
  "CMakeFiles/hysteresis_anatomy.dir/hysteresis_anatomy.cpp.o"
  "CMakeFiles/hysteresis_anatomy.dir/hysteresis_anatomy.cpp.o.d"
  "hysteresis_anatomy"
  "hysteresis_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hysteresis_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
