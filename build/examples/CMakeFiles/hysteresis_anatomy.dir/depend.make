# Empty dependencies file for hysteresis_anatomy.
# This may be replaced when dependencies are built.
