# Empty compiler generated dependencies file for retention_policy.
# This may be replaced when dependencies are built.
