file(REMOVE_RECURSE
  "CMakeFiles/retention_policy.dir/retention_policy.cpp.o"
  "CMakeFiles/retention_policy.dir/retention_policy.cpp.o.d"
  "retention_policy"
  "retention_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retention_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
