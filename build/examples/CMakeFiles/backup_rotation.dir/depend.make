# Empty dependencies file for backup_rotation.
# This may be replaced when dependencies are built.
