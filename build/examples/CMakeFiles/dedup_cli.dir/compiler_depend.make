# Empty compiler generated dependencies file for dedup_cli.
# This may be replaced when dependencies are built.
