file(REMOVE_RECURSE
  "CMakeFiles/dedup_cli.dir/dedup_cli.cpp.o"
  "CMakeFiles/dedup_cli.dir/dedup_cli.cpp.o.d"
  "dedup_cli"
  "dedup_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedup_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
