file(REMOVE_RECURSE
  "CMakeFiles/mhd_util.dir/mhd/util/flags.cpp.o"
  "CMakeFiles/mhd_util.dir/mhd/util/flags.cpp.o.d"
  "CMakeFiles/mhd_util.dir/mhd/util/hex.cpp.o"
  "CMakeFiles/mhd_util.dir/mhd/util/hex.cpp.o.d"
  "CMakeFiles/mhd_util.dir/mhd/util/random.cpp.o"
  "CMakeFiles/mhd_util.dir/mhd/util/random.cpp.o.d"
  "CMakeFiles/mhd_util.dir/mhd/util/table.cpp.o"
  "CMakeFiles/mhd_util.dir/mhd/util/table.cpp.o.d"
  "libmhd_util.a"
  "libmhd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
