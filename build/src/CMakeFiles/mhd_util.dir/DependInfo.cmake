
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mhd/util/flags.cpp" "src/CMakeFiles/mhd_util.dir/mhd/util/flags.cpp.o" "gcc" "src/CMakeFiles/mhd_util.dir/mhd/util/flags.cpp.o.d"
  "/root/repo/src/mhd/util/hex.cpp" "src/CMakeFiles/mhd_util.dir/mhd/util/hex.cpp.o" "gcc" "src/CMakeFiles/mhd_util.dir/mhd/util/hex.cpp.o.d"
  "/root/repo/src/mhd/util/random.cpp" "src/CMakeFiles/mhd_util.dir/mhd/util/random.cpp.o" "gcc" "src/CMakeFiles/mhd_util.dir/mhd/util/random.cpp.o.d"
  "/root/repo/src/mhd/util/table.cpp" "src/CMakeFiles/mhd_util.dir/mhd/util/table.cpp.o" "gcc" "src/CMakeFiles/mhd_util.dir/mhd/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
