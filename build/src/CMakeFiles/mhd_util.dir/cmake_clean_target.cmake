file(REMOVE_RECURSE
  "libmhd_util.a"
)
