# Empty compiler generated dependencies file for mhd_util.
# This may be replaced when dependencies are built.
