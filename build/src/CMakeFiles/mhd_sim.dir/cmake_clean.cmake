file(REMOVE_RECURSE
  "CMakeFiles/mhd_sim.dir/mhd/sim/parallel.cpp.o"
  "CMakeFiles/mhd_sim.dir/mhd/sim/parallel.cpp.o.d"
  "CMakeFiles/mhd_sim.dir/mhd/sim/runner.cpp.o"
  "CMakeFiles/mhd_sim.dir/mhd/sim/runner.cpp.o.d"
  "libmhd_sim.a"
  "libmhd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
