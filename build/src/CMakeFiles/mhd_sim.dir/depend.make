# Empty dependencies file for mhd_sim.
# This may be replaced when dependencies are built.
