file(REMOVE_RECURSE
  "libmhd_sim.a"
)
