file(REMOVE_RECURSE
  "libmhd_metrics.a"
)
