file(REMOVE_RECURSE
  "CMakeFiles/mhd_metrics.dir/mhd/metrics/analysis.cpp.o"
  "CMakeFiles/mhd_metrics.dir/mhd/metrics/analysis.cpp.o.d"
  "CMakeFiles/mhd_metrics.dir/mhd/metrics/json_export.cpp.o"
  "CMakeFiles/mhd_metrics.dir/mhd/metrics/json_export.cpp.o.d"
  "CMakeFiles/mhd_metrics.dir/mhd/metrics/metrics.cpp.o"
  "CMakeFiles/mhd_metrics.dir/mhd/metrics/metrics.cpp.o.d"
  "libmhd_metrics.a"
  "libmhd_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhd_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
