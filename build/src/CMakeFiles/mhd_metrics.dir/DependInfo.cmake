
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mhd/metrics/analysis.cpp" "src/CMakeFiles/mhd_metrics.dir/mhd/metrics/analysis.cpp.o" "gcc" "src/CMakeFiles/mhd_metrics.dir/mhd/metrics/analysis.cpp.o.d"
  "/root/repo/src/mhd/metrics/json_export.cpp" "src/CMakeFiles/mhd_metrics.dir/mhd/metrics/json_export.cpp.o" "gcc" "src/CMakeFiles/mhd_metrics.dir/mhd/metrics/json_export.cpp.o.d"
  "/root/repo/src/mhd/metrics/metrics.cpp" "src/CMakeFiles/mhd_metrics.dir/mhd/metrics/metrics.cpp.o" "gcc" "src/CMakeFiles/mhd_metrics.dir/mhd/metrics/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mhd_store.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhd_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
