# Empty dependencies file for mhd_metrics.
# This may be replaced when dependencies are built.
