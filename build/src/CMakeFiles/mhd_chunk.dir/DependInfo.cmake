
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mhd/chunk/byte_source.cpp" "src/CMakeFiles/mhd_chunk.dir/mhd/chunk/byte_source.cpp.o" "gcc" "src/CMakeFiles/mhd_chunk.dir/mhd/chunk/byte_source.cpp.o.d"
  "/root/repo/src/mhd/chunk/chunk_stream.cpp" "src/CMakeFiles/mhd_chunk.dir/mhd/chunk/chunk_stream.cpp.o" "gcc" "src/CMakeFiles/mhd_chunk.dir/mhd/chunk/chunk_stream.cpp.o.d"
  "/root/repo/src/mhd/chunk/fixed_chunker.cpp" "src/CMakeFiles/mhd_chunk.dir/mhd/chunk/fixed_chunker.cpp.o" "gcc" "src/CMakeFiles/mhd_chunk.dir/mhd/chunk/fixed_chunker.cpp.o.d"
  "/root/repo/src/mhd/chunk/gear_chunker.cpp" "src/CMakeFiles/mhd_chunk.dir/mhd/chunk/gear_chunker.cpp.o" "gcc" "src/CMakeFiles/mhd_chunk.dir/mhd/chunk/gear_chunker.cpp.o.d"
  "/root/repo/src/mhd/chunk/make_chunker.cpp" "src/CMakeFiles/mhd_chunk.dir/mhd/chunk/make_chunker.cpp.o" "gcc" "src/CMakeFiles/mhd_chunk.dir/mhd/chunk/make_chunker.cpp.o.d"
  "/root/repo/src/mhd/chunk/rabin_chunker.cpp" "src/CMakeFiles/mhd_chunk.dir/mhd/chunk/rabin_chunker.cpp.o" "gcc" "src/CMakeFiles/mhd_chunk.dir/mhd/chunk/rabin_chunker.cpp.o.d"
  "/root/repo/src/mhd/chunk/tttd_chunker.cpp" "src/CMakeFiles/mhd_chunk.dir/mhd/chunk/tttd_chunker.cpp.o" "gcc" "src/CMakeFiles/mhd_chunk.dir/mhd/chunk/tttd_chunker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mhd_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
