# Empty dependencies file for mhd_chunk.
# This may be replaced when dependencies are built.
