file(REMOVE_RECURSE
  "libmhd_chunk.a"
)
