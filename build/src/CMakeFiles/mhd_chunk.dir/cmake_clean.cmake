file(REMOVE_RECURSE
  "CMakeFiles/mhd_chunk.dir/mhd/chunk/byte_source.cpp.o"
  "CMakeFiles/mhd_chunk.dir/mhd/chunk/byte_source.cpp.o.d"
  "CMakeFiles/mhd_chunk.dir/mhd/chunk/chunk_stream.cpp.o"
  "CMakeFiles/mhd_chunk.dir/mhd/chunk/chunk_stream.cpp.o.d"
  "CMakeFiles/mhd_chunk.dir/mhd/chunk/fixed_chunker.cpp.o"
  "CMakeFiles/mhd_chunk.dir/mhd/chunk/fixed_chunker.cpp.o.d"
  "CMakeFiles/mhd_chunk.dir/mhd/chunk/gear_chunker.cpp.o"
  "CMakeFiles/mhd_chunk.dir/mhd/chunk/gear_chunker.cpp.o.d"
  "CMakeFiles/mhd_chunk.dir/mhd/chunk/make_chunker.cpp.o"
  "CMakeFiles/mhd_chunk.dir/mhd/chunk/make_chunker.cpp.o.d"
  "CMakeFiles/mhd_chunk.dir/mhd/chunk/rabin_chunker.cpp.o"
  "CMakeFiles/mhd_chunk.dir/mhd/chunk/rabin_chunker.cpp.o.d"
  "CMakeFiles/mhd_chunk.dir/mhd/chunk/tttd_chunker.cpp.o"
  "CMakeFiles/mhd_chunk.dir/mhd/chunk/tttd_chunker.cpp.o.d"
  "libmhd_chunk.a"
  "libmhd_chunk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhd_chunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
