
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mhd/store/disk_model.cpp" "src/CMakeFiles/mhd_store.dir/mhd/store/disk_model.cpp.o" "gcc" "src/CMakeFiles/mhd_store.dir/mhd/store/disk_model.cpp.o.d"
  "/root/repo/src/mhd/store/file_backend.cpp" "src/CMakeFiles/mhd_store.dir/mhd/store/file_backend.cpp.o" "gcc" "src/CMakeFiles/mhd_store.dir/mhd/store/file_backend.cpp.o.d"
  "/root/repo/src/mhd/store/memory_backend.cpp" "src/CMakeFiles/mhd_store.dir/mhd/store/memory_backend.cpp.o" "gcc" "src/CMakeFiles/mhd_store.dir/mhd/store/memory_backend.cpp.o.d"
  "/root/repo/src/mhd/store/object_store.cpp" "src/CMakeFiles/mhd_store.dir/mhd/store/object_store.cpp.o" "gcc" "src/CMakeFiles/mhd_store.dir/mhd/store/object_store.cpp.o.d"
  "/root/repo/src/mhd/store/stats.cpp" "src/CMakeFiles/mhd_store.dir/mhd/store/stats.cpp.o" "gcc" "src/CMakeFiles/mhd_store.dir/mhd/store/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mhd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhd_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
