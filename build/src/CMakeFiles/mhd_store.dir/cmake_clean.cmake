file(REMOVE_RECURSE
  "CMakeFiles/mhd_store.dir/mhd/store/disk_model.cpp.o"
  "CMakeFiles/mhd_store.dir/mhd/store/disk_model.cpp.o.d"
  "CMakeFiles/mhd_store.dir/mhd/store/file_backend.cpp.o"
  "CMakeFiles/mhd_store.dir/mhd/store/file_backend.cpp.o.d"
  "CMakeFiles/mhd_store.dir/mhd/store/memory_backend.cpp.o"
  "CMakeFiles/mhd_store.dir/mhd/store/memory_backend.cpp.o.d"
  "CMakeFiles/mhd_store.dir/mhd/store/object_store.cpp.o"
  "CMakeFiles/mhd_store.dir/mhd/store/object_store.cpp.o.d"
  "CMakeFiles/mhd_store.dir/mhd/store/stats.cpp.o"
  "CMakeFiles/mhd_store.dir/mhd/store/stats.cpp.o.d"
  "libmhd_store.a"
  "libmhd_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhd_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
