file(REMOVE_RECURSE
  "libmhd_store.a"
)
