# Empty compiler generated dependencies file for mhd_store.
# This may be replaced when dependencies are built.
