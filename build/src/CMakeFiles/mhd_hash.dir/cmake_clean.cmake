file(REMOVE_RECURSE
  "CMakeFiles/mhd_hash.dir/mhd/hash/mix.cpp.o"
  "CMakeFiles/mhd_hash.dir/mhd/hash/mix.cpp.o.d"
  "CMakeFiles/mhd_hash.dir/mhd/hash/rabin.cpp.o"
  "CMakeFiles/mhd_hash.dir/mhd/hash/rabin.cpp.o.d"
  "CMakeFiles/mhd_hash.dir/mhd/hash/sha1.cpp.o"
  "CMakeFiles/mhd_hash.dir/mhd/hash/sha1.cpp.o.d"
  "libmhd_hash.a"
  "libmhd_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhd_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
