# Empty dependencies file for mhd_hash.
# This may be replaced when dependencies are built.
