
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mhd/hash/mix.cpp" "src/CMakeFiles/mhd_hash.dir/mhd/hash/mix.cpp.o" "gcc" "src/CMakeFiles/mhd_hash.dir/mhd/hash/mix.cpp.o.d"
  "/root/repo/src/mhd/hash/rabin.cpp" "src/CMakeFiles/mhd_hash.dir/mhd/hash/rabin.cpp.o" "gcc" "src/CMakeFiles/mhd_hash.dir/mhd/hash/rabin.cpp.o.d"
  "/root/repo/src/mhd/hash/sha1.cpp" "src/CMakeFiles/mhd_hash.dir/mhd/hash/sha1.cpp.o" "gcc" "src/CMakeFiles/mhd_hash.dir/mhd/hash/sha1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mhd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
