file(REMOVE_RECURSE
  "libmhd_hash.a"
)
