
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mhd/format/file_manifest.cpp" "src/CMakeFiles/mhd_format.dir/mhd/format/file_manifest.cpp.o" "gcc" "src/CMakeFiles/mhd_format.dir/mhd/format/file_manifest.cpp.o.d"
  "/root/repo/src/mhd/format/manifest.cpp" "src/CMakeFiles/mhd_format.dir/mhd/format/manifest.cpp.o" "gcc" "src/CMakeFiles/mhd_format.dir/mhd/format/manifest.cpp.o.d"
  "/root/repo/src/mhd/format/recipe_codec.cpp" "src/CMakeFiles/mhd_format.dir/mhd/format/recipe_codec.cpp.o" "gcc" "src/CMakeFiles/mhd_format.dir/mhd/format/recipe_codec.cpp.o.d"
  "/root/repo/src/mhd/store/maintenance.cpp" "src/CMakeFiles/mhd_format.dir/mhd/store/maintenance.cpp.o" "gcc" "src/CMakeFiles/mhd_format.dir/mhd/store/maintenance.cpp.o.d"
  "/root/repo/src/mhd/store/restore_reader.cpp" "src/CMakeFiles/mhd_format.dir/mhd/store/restore_reader.cpp.o" "gcc" "src/CMakeFiles/mhd_format.dir/mhd/store/restore_reader.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mhd_store.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhd_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
