# Empty dependencies file for mhd_format.
# This may be replaced when dependencies are built.
