file(REMOVE_RECURSE
  "CMakeFiles/mhd_format.dir/mhd/format/file_manifest.cpp.o"
  "CMakeFiles/mhd_format.dir/mhd/format/file_manifest.cpp.o.d"
  "CMakeFiles/mhd_format.dir/mhd/format/manifest.cpp.o"
  "CMakeFiles/mhd_format.dir/mhd/format/manifest.cpp.o.d"
  "CMakeFiles/mhd_format.dir/mhd/format/recipe_codec.cpp.o"
  "CMakeFiles/mhd_format.dir/mhd/format/recipe_codec.cpp.o.d"
  "CMakeFiles/mhd_format.dir/mhd/store/maintenance.cpp.o"
  "CMakeFiles/mhd_format.dir/mhd/store/maintenance.cpp.o.d"
  "CMakeFiles/mhd_format.dir/mhd/store/restore_reader.cpp.o"
  "CMakeFiles/mhd_format.dir/mhd/store/restore_reader.cpp.o.d"
  "libmhd_format.a"
  "libmhd_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhd_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
