file(REMOVE_RECURSE
  "libmhd_format.a"
)
