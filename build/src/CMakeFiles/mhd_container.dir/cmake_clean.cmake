file(REMOVE_RECURSE
  "CMakeFiles/mhd_container.dir/mhd/container/bloom_filter.cpp.o"
  "CMakeFiles/mhd_container.dir/mhd/container/bloom_filter.cpp.o.d"
  "libmhd_container.a"
  "libmhd_container.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhd_container.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
