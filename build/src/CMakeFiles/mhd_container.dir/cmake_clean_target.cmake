file(REMOVE_RECURSE
  "libmhd_container.a"
)
