# Empty compiler generated dependencies file for mhd_container.
# This may be replaced when dependencies are built.
