file(REMOVE_RECURSE
  "libmhd_dedup.a"
)
