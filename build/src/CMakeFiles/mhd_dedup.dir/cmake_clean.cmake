file(REMOVE_RECURSE
  "CMakeFiles/mhd_dedup.dir/mhd/core/manifest_cache.cpp.o"
  "CMakeFiles/mhd_dedup.dir/mhd/core/manifest_cache.cpp.o.d"
  "CMakeFiles/mhd_dedup.dir/mhd/core/match_extension.cpp.o"
  "CMakeFiles/mhd_dedup.dir/mhd/core/match_extension.cpp.o.d"
  "CMakeFiles/mhd_dedup.dir/mhd/core/mhd_engine.cpp.o"
  "CMakeFiles/mhd_dedup.dir/mhd/core/mhd_engine.cpp.o.d"
  "CMakeFiles/mhd_dedup.dir/mhd/dedup/bimodal_engine.cpp.o"
  "CMakeFiles/mhd_dedup.dir/mhd/dedup/bimodal_engine.cpp.o.d"
  "CMakeFiles/mhd_dedup.dir/mhd/dedup/cdc_engine.cpp.o"
  "CMakeFiles/mhd_dedup.dir/mhd/dedup/cdc_engine.cpp.o.d"
  "CMakeFiles/mhd_dedup.dir/mhd/dedup/engine.cpp.o"
  "CMakeFiles/mhd_dedup.dir/mhd/dedup/engine.cpp.o.d"
  "CMakeFiles/mhd_dedup.dir/mhd/dedup/extreme_binning_engine.cpp.o"
  "CMakeFiles/mhd_dedup.dir/mhd/dedup/extreme_binning_engine.cpp.o.d"
  "CMakeFiles/mhd_dedup.dir/mhd/dedup/fbc_engine.cpp.o"
  "CMakeFiles/mhd_dedup.dir/mhd/dedup/fbc_engine.cpp.o.d"
  "CMakeFiles/mhd_dedup.dir/mhd/dedup/sparse_index_engine.cpp.o"
  "CMakeFiles/mhd_dedup.dir/mhd/dedup/sparse_index_engine.cpp.o.d"
  "CMakeFiles/mhd_dedup.dir/mhd/dedup/subchunk_engine.cpp.o"
  "CMakeFiles/mhd_dedup.dir/mhd/dedup/subchunk_engine.cpp.o.d"
  "libmhd_dedup.a"
  "libmhd_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhd_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
