
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mhd/core/manifest_cache.cpp" "src/CMakeFiles/mhd_dedup.dir/mhd/core/manifest_cache.cpp.o" "gcc" "src/CMakeFiles/mhd_dedup.dir/mhd/core/manifest_cache.cpp.o.d"
  "/root/repo/src/mhd/core/match_extension.cpp" "src/CMakeFiles/mhd_dedup.dir/mhd/core/match_extension.cpp.o" "gcc" "src/CMakeFiles/mhd_dedup.dir/mhd/core/match_extension.cpp.o.d"
  "/root/repo/src/mhd/core/mhd_engine.cpp" "src/CMakeFiles/mhd_dedup.dir/mhd/core/mhd_engine.cpp.o" "gcc" "src/CMakeFiles/mhd_dedup.dir/mhd/core/mhd_engine.cpp.o.d"
  "/root/repo/src/mhd/dedup/bimodal_engine.cpp" "src/CMakeFiles/mhd_dedup.dir/mhd/dedup/bimodal_engine.cpp.o" "gcc" "src/CMakeFiles/mhd_dedup.dir/mhd/dedup/bimodal_engine.cpp.o.d"
  "/root/repo/src/mhd/dedup/cdc_engine.cpp" "src/CMakeFiles/mhd_dedup.dir/mhd/dedup/cdc_engine.cpp.o" "gcc" "src/CMakeFiles/mhd_dedup.dir/mhd/dedup/cdc_engine.cpp.o.d"
  "/root/repo/src/mhd/dedup/engine.cpp" "src/CMakeFiles/mhd_dedup.dir/mhd/dedup/engine.cpp.o" "gcc" "src/CMakeFiles/mhd_dedup.dir/mhd/dedup/engine.cpp.o.d"
  "/root/repo/src/mhd/dedup/extreme_binning_engine.cpp" "src/CMakeFiles/mhd_dedup.dir/mhd/dedup/extreme_binning_engine.cpp.o" "gcc" "src/CMakeFiles/mhd_dedup.dir/mhd/dedup/extreme_binning_engine.cpp.o.d"
  "/root/repo/src/mhd/dedup/fbc_engine.cpp" "src/CMakeFiles/mhd_dedup.dir/mhd/dedup/fbc_engine.cpp.o" "gcc" "src/CMakeFiles/mhd_dedup.dir/mhd/dedup/fbc_engine.cpp.o.d"
  "/root/repo/src/mhd/dedup/sparse_index_engine.cpp" "src/CMakeFiles/mhd_dedup.dir/mhd/dedup/sparse_index_engine.cpp.o" "gcc" "src/CMakeFiles/mhd_dedup.dir/mhd/dedup/sparse_index_engine.cpp.o.d"
  "/root/repo/src/mhd/dedup/subchunk_engine.cpp" "src/CMakeFiles/mhd_dedup.dir/mhd/dedup/subchunk_engine.cpp.o" "gcc" "src/CMakeFiles/mhd_dedup.dir/mhd/dedup/subchunk_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mhd_chunk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhd_container.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhd_store.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhd_format.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhd_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
