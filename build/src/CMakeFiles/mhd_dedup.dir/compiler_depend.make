# Empty compiler generated dependencies file for mhd_dedup.
# This may be replaced when dependencies are built.
