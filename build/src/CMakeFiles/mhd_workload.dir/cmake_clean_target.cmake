file(REMOVE_RECURSE
  "libmhd_workload.a"
)
