# Empty dependencies file for mhd_workload.
# This may be replaced when dependencies are built.
