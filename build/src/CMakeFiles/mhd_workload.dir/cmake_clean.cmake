file(REMOVE_RECURSE
  "CMakeFiles/mhd_workload.dir/mhd/workload/block_source.cpp.o"
  "CMakeFiles/mhd_workload.dir/mhd/workload/block_source.cpp.o.d"
  "CMakeFiles/mhd_workload.dir/mhd/workload/corpus.cpp.o"
  "CMakeFiles/mhd_workload.dir/mhd/workload/corpus.cpp.o.d"
  "CMakeFiles/mhd_workload.dir/mhd/workload/image_plan.cpp.o"
  "CMakeFiles/mhd_workload.dir/mhd/workload/image_plan.cpp.o.d"
  "CMakeFiles/mhd_workload.dir/mhd/workload/presets.cpp.o"
  "CMakeFiles/mhd_workload.dir/mhd/workload/presets.cpp.o.d"
  "libmhd_workload.a"
  "libmhd_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhd_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
