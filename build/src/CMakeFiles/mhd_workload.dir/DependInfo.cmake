
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mhd/workload/block_source.cpp" "src/CMakeFiles/mhd_workload.dir/mhd/workload/block_source.cpp.o" "gcc" "src/CMakeFiles/mhd_workload.dir/mhd/workload/block_source.cpp.o.d"
  "/root/repo/src/mhd/workload/corpus.cpp" "src/CMakeFiles/mhd_workload.dir/mhd/workload/corpus.cpp.o" "gcc" "src/CMakeFiles/mhd_workload.dir/mhd/workload/corpus.cpp.o.d"
  "/root/repo/src/mhd/workload/image_plan.cpp" "src/CMakeFiles/mhd_workload.dir/mhd/workload/image_plan.cpp.o" "gcc" "src/CMakeFiles/mhd_workload.dir/mhd/workload/image_plan.cpp.o.d"
  "/root/repo/src/mhd/workload/presets.cpp" "src/CMakeFiles/mhd_workload.dir/mhd/workload/presets.cpp.o" "gcc" "src/CMakeFiles/mhd_workload.dir/mhd/workload/presets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mhd_chunk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhd_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
