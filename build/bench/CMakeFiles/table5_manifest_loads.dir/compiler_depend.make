# Empty compiler generated dependencies file for table5_manifest_loads.
# This may be replaced when dependencies are built.
