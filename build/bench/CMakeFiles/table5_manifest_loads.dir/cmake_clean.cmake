file(REMOVE_RECURSE
  "CMakeFiles/table5_manifest_loads.dir/table5_manifest_loads.cpp.o"
  "CMakeFiles/table5_manifest_loads.dir/table5_manifest_loads.cpp.o.d"
  "table5_manifest_loads"
  "table5_manifest_loads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_manifest_loads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
