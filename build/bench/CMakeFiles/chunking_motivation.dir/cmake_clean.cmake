file(REMOVE_RECURSE
  "CMakeFiles/chunking_motivation.dir/chunking_motivation.cpp.o"
  "CMakeFiles/chunking_motivation.dir/chunking_motivation.cpp.o.d"
  "chunking_motivation"
  "chunking_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chunking_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
