# Empty compiler generated dependencies file for chunking_motivation.
# This may be replaced when dependencies are built.
