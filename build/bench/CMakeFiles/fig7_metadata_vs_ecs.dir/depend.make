# Empty dependencies file for fig7_metadata_vs_ecs.
# This may be replaced when dependencies are built.
