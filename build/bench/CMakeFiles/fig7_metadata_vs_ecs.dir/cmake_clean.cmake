file(REMOVE_RECURSE
  "CMakeFiles/fig7_metadata_vs_ecs.dir/fig7_metadata_vs_ecs.cpp.o"
  "CMakeFiles/fig7_metadata_vs_ecs.dir/fig7_metadata_vs_ecs.cpp.o.d"
  "fig7_metadata_vs_ecs"
  "fig7_metadata_vs_ecs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_metadata_vs_ecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
