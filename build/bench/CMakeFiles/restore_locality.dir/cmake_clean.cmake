file(REMOVE_RECURSE
  "CMakeFiles/restore_locality.dir/restore_locality.cpp.o"
  "CMakeFiles/restore_locality.dir/restore_locality.cpp.o.d"
  "restore_locality"
  "restore_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restore_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
