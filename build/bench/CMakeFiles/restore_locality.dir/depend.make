# Empty dependencies file for restore_locality.
# This may be replaced when dependencies are built.
