file(REMOVE_RECURSE
  "CMakeFiles/recipe_compression.dir/recipe_compression.cpp.o"
  "CMakeFiles/recipe_compression.dir/recipe_compression.cpp.o.d"
  "recipe_compression"
  "recipe_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recipe_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
