# Empty compiler generated dependencies file for recipe_compression.
# This may be replaced when dependencies are built.
