# Empty dependencies file for chunk_distribution.
# This may be replaced when dependencies are built.
