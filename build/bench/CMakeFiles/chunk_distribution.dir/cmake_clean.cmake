file(REMOVE_RECURSE
  "CMakeFiles/chunk_distribution.dir/chunk_distribution.cpp.o"
  "CMakeFiles/chunk_distribution.dir/chunk_distribution.cpp.o.d"
  "chunk_distribution"
  "chunk_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chunk_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
