# Empty compiler generated dependencies file for ablation_mhd.
# This may be replaced when dependencies are built.
