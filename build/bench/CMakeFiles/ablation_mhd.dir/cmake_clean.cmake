file(REMOVE_RECURSE
  "CMakeFiles/ablation_mhd.dir/ablation_mhd.cpp.o"
  "CMakeFiles/ablation_mhd.dir/ablation_mhd.cpp.o.d"
  "ablation_mhd"
  "ablation_mhd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mhd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
