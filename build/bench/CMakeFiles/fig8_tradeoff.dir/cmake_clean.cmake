file(REMOVE_RECURSE
  "CMakeFiles/fig8_tradeoff.dir/fig8_tradeoff.cpp.o"
  "CMakeFiles/fig8_tradeoff.dir/fig8_tradeoff.cpp.o.d"
  "fig8_tradeoff"
  "fig8_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
