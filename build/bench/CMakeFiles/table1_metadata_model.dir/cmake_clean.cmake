file(REMOVE_RECURSE
  "CMakeFiles/table1_metadata_model.dir/table1_metadata_model.cpp.o"
  "CMakeFiles/table1_metadata_model.dir/table1_metadata_model.cpp.o.d"
  "table1_metadata_model"
  "table1_metadata_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_metadata_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
