file(REMOVE_RECURSE
  "CMakeFiles/table4_mhd_metadata.dir/table4_mhd_metadata.cpp.o"
  "CMakeFiles/table4_mhd_metadata.dir/table4_mhd_metadata.cpp.o.d"
  "table4_mhd_metadata"
  "table4_mhd_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_mhd_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
