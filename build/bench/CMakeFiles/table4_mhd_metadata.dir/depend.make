# Empty dependencies file for table4_mhd_metadata.
# This may be replaced when dependencies are built.
