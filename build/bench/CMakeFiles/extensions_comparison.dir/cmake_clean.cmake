file(REMOVE_RECURSE
  "CMakeFiles/extensions_comparison.dir/extensions_comparison.cpp.o"
  "CMakeFiles/extensions_comparison.dir/extensions_comparison.cpp.o.d"
  "extensions_comparison"
  "extensions_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extensions_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
