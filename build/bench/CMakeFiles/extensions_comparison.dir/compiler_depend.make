# Empty compiler generated dependencies file for extensions_comparison.
# This may be replaced when dependencies are built.
