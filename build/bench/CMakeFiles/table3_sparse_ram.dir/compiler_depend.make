# Empty compiler generated dependencies file for table3_sparse_ram.
# This may be replaced when dependencies are built.
