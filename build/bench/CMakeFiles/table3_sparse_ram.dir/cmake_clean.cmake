file(REMOVE_RECURSE
  "CMakeFiles/table3_sparse_ram.dir/table3_sparse_ram.cpp.o"
  "CMakeFiles/table3_sparse_ram.dir/table3_sparse_ram.cpp.o.d"
  "table3_sparse_ram"
  "table3_sparse_ram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_sparse_ram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
