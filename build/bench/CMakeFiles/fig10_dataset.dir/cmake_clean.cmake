file(REMOVE_RECURSE
  "CMakeFiles/fig10_dataset.dir/fig10_dataset.cpp.o"
  "CMakeFiles/fig10_dataset.dir/fig10_dataset.cpp.o.d"
  "fig10_dataset"
  "fig10_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
