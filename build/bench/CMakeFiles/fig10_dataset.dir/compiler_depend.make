# Empty compiler generated dependencies file for fig10_dataset.
# This may be replaced when dependencies are built.
