# Empty dependencies file for table2_disk_accesses.
# This may be replaced when dependencies are built.
