file(REMOVE_RECURSE
  "CMakeFiles/table2_disk_accesses.dir/table2_disk_accesses.cpp.o"
  "CMakeFiles/table2_disk_accesses.dir/table2_disk_accesses.cpp.o.d"
  "table2_disk_accesses"
  "table2_disk_accesses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_disk_accesses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
