file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/file_backend_e2e_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/file_backend_e2e_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/parallel_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/parallel_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/runner_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/runner_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/seed_sweep_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/seed_sweep_test.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
