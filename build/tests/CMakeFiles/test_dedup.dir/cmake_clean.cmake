file(REMOVE_RECURSE
  "CMakeFiles/test_dedup.dir/dedup/bimodal_engine_test.cpp.o"
  "CMakeFiles/test_dedup.dir/dedup/bimodal_engine_test.cpp.o.d"
  "CMakeFiles/test_dedup.dir/dedup/cdc_engine_test.cpp.o"
  "CMakeFiles/test_dedup.dir/dedup/cdc_engine_test.cpp.o.d"
  "CMakeFiles/test_dedup.dir/dedup/extension_engines_test.cpp.o"
  "CMakeFiles/test_dedup.dir/dedup/extension_engines_test.cpp.o.d"
  "CMakeFiles/test_dedup.dir/dedup/fault_injection_test.cpp.o"
  "CMakeFiles/test_dedup.dir/dedup/fault_injection_test.cpp.o.d"
  "CMakeFiles/test_dedup.dir/dedup/reingest_test.cpp.o"
  "CMakeFiles/test_dedup.dir/dedup/reingest_test.cpp.o.d"
  "CMakeFiles/test_dedup.dir/dedup/sparse_index_engine_test.cpp.o"
  "CMakeFiles/test_dedup.dir/dedup/sparse_index_engine_test.cpp.o.d"
  "CMakeFiles/test_dedup.dir/dedup/subchunk_engine_test.cpp.o"
  "CMakeFiles/test_dedup.dir/dedup/subchunk_engine_test.cpp.o.d"
  "test_dedup"
  "test_dedup.pdb"
  "test_dedup[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
