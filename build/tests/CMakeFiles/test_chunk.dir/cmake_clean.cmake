file(REMOVE_RECURSE
  "CMakeFiles/test_chunk.dir/chunk/chunk_stream_test.cpp.o"
  "CMakeFiles/test_chunk.dir/chunk/chunk_stream_test.cpp.o.d"
  "CMakeFiles/test_chunk.dir/chunk/fixed_chunker_test.cpp.o"
  "CMakeFiles/test_chunk.dir/chunk/fixed_chunker_test.cpp.o.d"
  "CMakeFiles/test_chunk.dir/chunk/gear_chunker_test.cpp.o"
  "CMakeFiles/test_chunk.dir/chunk/gear_chunker_test.cpp.o.d"
  "CMakeFiles/test_chunk.dir/chunk/rabin_chunker_test.cpp.o"
  "CMakeFiles/test_chunk.dir/chunk/rabin_chunker_test.cpp.o.d"
  "CMakeFiles/test_chunk.dir/chunk/tttd_chunker_test.cpp.o"
  "CMakeFiles/test_chunk.dir/chunk/tttd_chunker_test.cpp.o.d"
  "test_chunk"
  "test_chunk.pdb"
  "test_chunk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
