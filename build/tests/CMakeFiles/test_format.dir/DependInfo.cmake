
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/format/file_manifest_test.cpp" "tests/CMakeFiles/test_format.dir/format/file_manifest_test.cpp.o" "gcc" "tests/CMakeFiles/test_format.dir/format/file_manifest_test.cpp.o.d"
  "/root/repo/tests/format/manifest_test.cpp" "tests/CMakeFiles/test_format.dir/format/manifest_test.cpp.o" "gcc" "tests/CMakeFiles/test_format.dir/format/manifest_test.cpp.o.d"
  "/root/repo/tests/format/recipe_codec_test.cpp" "tests/CMakeFiles/test_format.dir/format/recipe_codec_test.cpp.o" "gcc" "tests/CMakeFiles/test_format.dir/format/recipe_codec_test.cpp.o.d"
  "/root/repo/tests/format/serialization_fuzz_test.cpp" "tests/CMakeFiles/test_format.dir/format/serialization_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/test_format.dir/format/serialization_fuzz_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mhd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhd_dedup.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhd_container.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhd_format.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhd_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhd_chunk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhd_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhd_store.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhd_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
