file(REMOVE_RECURSE
  "CMakeFiles/test_container.dir/container/bloom_filter_test.cpp.o"
  "CMakeFiles/test_container.dir/container/bloom_filter_test.cpp.o.d"
  "CMakeFiles/test_container.dir/container/lru_cache_test.cpp.o"
  "CMakeFiles/test_container.dir/container/lru_cache_test.cpp.o.d"
  "CMakeFiles/test_container.dir/container/lru_weight_test.cpp.o"
  "CMakeFiles/test_container.dir/container/lru_weight_test.cpp.o.d"
  "test_container"
  "test_container.pdb"
  "test_container[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_container.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
