# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_hash[1]_include.cmake")
include("/root/repo/build/tests/test_chunk[1]_include.cmake")
include("/root/repo/build/tests/test_container[1]_include.cmake")
include("/root/repo/build/tests/test_store[1]_include.cmake")
include("/root/repo/build/tests/test_format[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_dedup[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
