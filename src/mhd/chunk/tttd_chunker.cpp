#include "mhd/chunk/tttd_chunker.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mhd {

namespace {
std::uint64_t mask_bits(double target) {
  const int bits =
      std::max(1, static_cast<int>(std::lround(std::log2(std::max(2.0, target)))));
  return (bits >= 63) ? ~0ULL : ((1ULL << bits) - 1);
}
}  // namespace

TttdChunker::TttdChunker(const ChunkerConfig& config)
    : config_(config),
      fp_(config.window),
      main_mask_(mask_bits(static_cast<double>(config.expected_size) -
                           static_cast<double>(config.min_size))),
      // Backup divisor is half as selective as the main one (D' = D/2).
      backup_mask_(main_mask_ >> 1),
      magic_(0x4D5A3B7F9E2C6A1ULL) {
  if (config_.min_size == 0 || config_.max_size < config_.min_size) {
    throw std::invalid_argument("TttdChunker: bad min/max sizes");
  }
  hash_start_ = config_.min_size > config_.window
                    ? config_.min_size - config_.window
                    : 0;
  reset();
}

void TttdChunker::reset() {
  fp_.reset();
  pos_ = 0;
  backup_pos_ = 0;
  cut_back_ = 0;
}

Chunker::ScanResult TttdChunker::scan(ByteSpan data) {
  std::size_t i = 0;
  const std::size_t n = data.size();
  cut_back_ = 0;

  if (pos_ < hash_start_) {
    const std::size_t skip = std::min(n, hash_start_ - pos_);
    pos_ += skip;
    i += skip;
  }

  while (i < n) {
    const std::uint64_t f = fp_.push(data[i]);
    ++i;
    ++pos_;
    if (pos_ >= config_.min_size) {
      if ((f & main_mask_) == (magic_ & main_mask_)) {
        reset();
        return {i, true};
      }
      if ((f & backup_mask_) == (magic_ & backup_mask_)) {
        backup_pos_ = pos_;
      }
    }
    if (pos_ >= config_.max_size) {
      const std::size_t back =
          (backup_pos_ >= config_.min_size) ? pos_ - backup_pos_ : 0;
      reset();
      cut_back_ = back;
      return {i, true};
    }
  }
  return {i, false};
}

}  // namespace mhd
