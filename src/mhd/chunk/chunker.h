// Chunker interface + configuration shared by all chunking algorithms.
//
// A chunker is a streaming cut-point detector: the caller feeds byte spans
// and the chunker reports how many bytes it consumed into the current chunk
// and whether a cut point was reached. Chunker state resets at each cut, so
// cut decisions depend only on bytes since the previous cut — this is what
// gives content-defined chunking its boundary-shift resilience.
#pragma once

#include <cstdint>

#include "mhd/util/bytes.h"

namespace mhd {

/// Which scan-loop implementation a chunker should use. Only GearChunker
/// has a vectorized path today; every other chunker treats all values as
/// kScalar. kAuto resolves to the best kernel the CPU supports at runtime.
/// The implementation is a pure performance choice: every implementation
/// MUST produce bit-identical cut points (the differential test suite in
/// tests/chunk/chunker_differential_test.cpp enforces this).
enum class ChunkerImpl : int {
  kAuto = 0,
  kScalar,
  kSimd,
};

struct ChunkerConfig {
  std::uint32_t min_size = 0;
  std::uint32_t expected_size = 0;
  std::uint32_t max_size = 0;
  std::uint32_t window = 48;  ///< Rabin sliding-window width in bytes.
  ChunkerImpl impl = ChunkerImpl::kAuto;  ///< scan-loop implementation

  /// Paper-style configuration from the expected chunk size (ECS):
  /// min = ECS/4 (floored at 64B), max = 8*ECS, as in the LBFS lineage.
  static ChunkerConfig from_expected(std::uint64_t ecs);
};

class Chunker {
 public:
  virtual ~Chunker() = default;

  struct ScanResult {
    std::size_t consumed = 0;  ///< bytes of `data` taken into current chunk
    bool cut = false;          ///< true if a cut point follows those bytes
  };

  /// Resets per-chunk state (called automatically after each cut).
  virtual void reset() = 0;

  /// Scans `data` for the next cut point.
  virtual ScanResult scan(ByteSpan data) = 0;

  /// After scan() reports a cut, the true cut point may lie this many bytes
  /// *before* the last consumed byte (TTTD backup divisor). Those bytes
  /// belong to the next chunk and must be re-fed to scan() by the caller
  /// (ChunkStream does this). Valid only immediately after a cut.
  virtual std::size_t cut_back() const { return 0; }
};

}  // namespace mhd
