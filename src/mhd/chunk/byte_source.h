// Streaming byte input abstraction.
//
// Deduplication engines never see whole files; they pull from a ByteSource
// so that multi-gigabyte synthetic corpora can be processed without
// materialization.
#pragma once

#include <cstddef>

#include "mhd/util/bytes.h"

namespace mhd {

class ByteSource {
 public:
  virtual ~ByteSource() = default;

  /// Fills up to out.size() bytes; returns the number written, 0 at EOF.
  virtual std::size_t read(MutByteSpan out) = 0;
};

/// ByteSource over an in-memory buffer (non-owning).
class MemorySource final : public ByteSource {
 public:
  explicit MemorySource(ByteSpan data) : data_(data) {}

  std::size_t read(MutByteSpan out) override;

  void rewind() { offset_ = 0; }

 private:
  ByteSpan data_;
  std::size_t offset_ = 0;
};

/// Drains a source into an owning buffer (test/tooling convenience).
ByteVec read_all(ByteSource& src);

}  // namespace mhd
