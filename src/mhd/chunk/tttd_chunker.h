// TTTD — Two Thresholds, Two Divisors chunking (Eshghi & Tang, HPL-2005-30).
//
// Like the Rabin chunker but with a secondary, easier divisor: positions
// matching the backup divisor are remembered, and if the chunk reaches
// max_size without a primary match, the cut happens at the last backup
// candidate instead of the hard max. This tightens the size distribution.
// Included as the paper's cited improved chunker (related work, Section II).
//
// When the backup candidate is used, scan() reports the cut at max_size and
// cut_back() returns how many trailing bytes belong to the next chunk; the
// ChunkStream re-feeds them.
#pragma once

#include "mhd/chunk/chunker.h"
#include "mhd/hash/rabin.h"

namespace mhd {

class TttdChunker final : public Chunker {
 public:
  explicit TttdChunker(const ChunkerConfig& config);

  void reset() override;
  ScanResult scan(ByteSpan data) override;
  std::size_t cut_back() const override { return cut_back_; }

 private:
  ChunkerConfig config_;
  RabinFingerprint fp_;
  std::uint64_t main_mask_;
  std::uint64_t backup_mask_;
  std::uint64_t magic_;
  std::size_t hash_start_;
  std::size_t pos_ = 0;
  std::size_t backup_pos_ = 0;  ///< last backup-divisor match (0 = none)
  std::size_t cut_back_ = 0;
};

}  // namespace mhd
