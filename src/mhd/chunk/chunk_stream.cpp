#include "mhd/chunk/chunk_stream.h"

namespace mhd {

ChunkStream::ChunkStream(ByteSource& source, Chunker& chunker,
                         std::size_t io_buffer_size)
    : source_(source), chunker_(chunker), io_buf_(io_buffer_size) {}

std::size_t ChunkStream::refill() {
  buf_pos_ = 0;
  buf_len_ = source_.read({io_buf_.data(), io_buf_.size()});
  if (buf_len_ == 0) eof_ = true;
  return buf_len_;
}

bool ChunkStream::next(ByteVec& chunk) {
  chunk.clear();

  // Re-feed carry-over bytes (they are logically unread input).
  if (!carry_.empty()) {
    ByteVec pending;
    pending.swap(carry_);
    std::size_t off = 0;
    while (off < pending.size()) {
      const auto r = chunker_.scan(
          {pending.data() + off, pending.size() - off});
      append(chunk, {pending.data() + off, r.consumed});
      off += r.consumed;
      if (r.cut) {
        const std::size_t back = chunker_.cut_back();
        if (back > 0) {
          carry_.assign(chunk.end() - static_cast<std::ptrdiff_t>(back),
                        chunk.end());
          chunk.resize(chunk.size() - back);
        }
        // Any unscanned pending bytes must stay queued for the next chunk.
        carry_.insert(carry_.end(), pending.begin() + static_cast<std::ptrdiff_t>(off),
                      pending.end());
        bytes_emitted_ += chunk.size();
        return true;
      }
    }
  }

  for (;;) {
    if (buf_pos_ == buf_len_) {
      if (eof_ || refill() == 0) {
        bytes_emitted_ += chunk.size();
        return !chunk.empty();
      }
    }
    const auto r =
        chunker_.scan({io_buf_.data() + buf_pos_, buf_len_ - buf_pos_});
    append(chunk, {io_buf_.data() + buf_pos_, r.consumed});
    buf_pos_ += r.consumed;
    if (r.cut) {
      const std::size_t back = chunker_.cut_back();
      if (back > 0) {
        carry_.assign(chunk.end() - static_cast<std::ptrdiff_t>(back),
                      chunk.end());
        chunk.resize(chunk.size() - back);
      }
      bytes_emitted_ += chunk.size();
      return true;
    }
  }
}

}  // namespace mhd
