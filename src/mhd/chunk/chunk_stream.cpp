#include "mhd/chunk/chunk_stream.h"

#include "mhd/util/buffer_pool.h"

namespace mhd {

ChunkStream::ChunkStream(ByteSource& source, Chunker& chunker,
                         std::size_t io_buffer_size)
    : source_(source), chunker_(chunker), io_buf_(io_buffer_size) {}

std::size_t ChunkStream::refill() {
  buf_pos_ = 0;
  buf_len_ = source_.read({io_buf_.data(), io_buf_.size()});
  if (buf_len_ == 0) eof_ = true;
  return buf_len_;
}

bool ChunkStream::next(ByteVec& chunk) {
  // Callers that hand us a fresh (capacity-free) vector get a recycled
  // slab; callers reusing one vector across calls keep their capacity and
  // never touch the pool here. Either way append() below runs inside
  // existing capacity once the pool / the caller's vector is warm.
  if (chunk.capacity() == 0) chunk = chunk_buffer_pool().acquire();
  chunk.clear();

  // Re-feed carry-over bytes (they are logically unread input). The swap
  // hands carry_ a recycled slab, so the carry_.assign/insert below run
  // inside pooled capacity too.
  if (!carry_.empty()) {
    ByteVec pending = chunk_buffer_pool().acquire();
    pending.swap(carry_);
    std::size_t off = 0;
    while (off < pending.size()) {
      const auto r = chunker_.scan(
          {pending.data() + off, pending.size() - off});
      append(chunk, {pending.data() + off, r.consumed});
      off += r.consumed;
      if (r.cut) {
        const std::size_t back = chunker_.cut_back();
        if (back > 0) {
          carry_.assign(chunk.end() - static_cast<std::ptrdiff_t>(back),
                        chunk.end());
          chunk.resize(chunk.size() - back);
        }
        // Any unscanned pending bytes must stay queued for the next chunk.
        carry_.insert(carry_.end(), pending.begin() + static_cast<std::ptrdiff_t>(off),
                      pending.end());
        bytes_emitted_ += chunk.size();
        chunk_buffer_pool().release(std::move(pending));
        return true;
      }
    }
    // pending fully consumed into `chunk`; recycle its storage. carry_ is
    // empty again (it was swapped out above), so the next next() call
    // starts a fresh swap cycle with pooled capacity.
    chunk_buffer_pool().release(std::move(pending));
  }

  for (;;) {
    if (buf_pos_ == buf_len_) {
      if (eof_ || refill() == 0) {
        bytes_emitted_ += chunk.size();
        return !chunk.empty();
      }
    }
    const auto r =
        chunker_.scan({io_buf_.data() + buf_pos_, buf_len_ - buf_pos_});
    append(chunk, {io_buf_.data() + buf_pos_, r.consumed});
    buf_pos_ += r.consumed;
    if (r.cut) {
      const std::size_t back = chunker_.cut_back();
      if (back > 0) {
        carry_.assign(chunk.end() - static_cast<std::ptrdiff_t>(back),
                      chunk.end());
        chunk.resize(chunk.size() - back);
      }
      bytes_emitted_ += chunk.size();
      return true;
    }
  }
}

}  // namespace mhd
