#include "mhd/chunk/make_chunker.h"

#include <stdexcept>

#include "mhd/chunk/fixed_chunker.h"
#include "mhd/chunk/gear_chunker.h"
#include "mhd/chunk/rabin_chunker.h"
#include "mhd/chunk/tttd_chunker.h"

namespace mhd {

const char* chunker_kind_name(ChunkerKind kind) {
  switch (kind) {
    case ChunkerKind::kRabin: return "rabin";
    case ChunkerKind::kTttd: return "tttd";
    case ChunkerKind::kGear: return "gear";
    case ChunkerKind::kFixed: return "fixed";
  }
  return "?";
}

ChunkerKind chunker_kind_from_string(const std::string& name) {
  if (name == "rabin") return ChunkerKind::kRabin;
  if (name == "tttd") return ChunkerKind::kTttd;
  if (name == "gear") return ChunkerKind::kGear;
  if (name == "fixed") return ChunkerKind::kFixed;
  throw std::invalid_argument("unknown chunker: " + name);
}

const char* chunker_impl_name(ChunkerImpl impl) {
  switch (impl) {
    case ChunkerImpl::kAuto: return "auto";
    case ChunkerImpl::kScalar: return "scalar";
    case ChunkerImpl::kSimd: return "simd";
  }
  return "?";
}

ChunkerImpl chunker_impl_from_string(const std::string& name) {
  if (name == "auto") return ChunkerImpl::kAuto;
  if (name == "scalar") return ChunkerImpl::kScalar;
  if (name == "simd") return ChunkerImpl::kSimd;
  throw std::invalid_argument("unknown chunker impl: " + name);
}

const char* resolved_chunker_impl_name(ChunkerKind kind,
                                       const ChunkerConfig& config) {
  return kind == ChunkerKind::kGear ? resolved_gear_impl_name(config)
                                    : "scalar";
}

std::unique_ptr<Chunker> make_chunker(ChunkerKind kind,
                                      const ChunkerConfig& config) {
  switch (kind) {
    case ChunkerKind::kRabin:
      return std::make_unique<RabinChunker>(config);
    case ChunkerKind::kTttd:
      return std::make_unique<TttdChunker>(config);
    case ChunkerKind::kGear:
      return std::make_unique<GearChunker>(config);
    case ChunkerKind::kFixed:
      return std::make_unique<FixedChunker>(config.expected_size);
  }
  throw std::invalid_argument("make_chunker: unknown kind");
}

}  // namespace mhd
