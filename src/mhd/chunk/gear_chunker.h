// Gear-hash chunking with FastCDC-style normalization (Xia et al.,
// USENIX ATC'16) — an extension beyond the paper: the modern successor of
// the Rabin/TTTD chunkers this repository reproduces, included because
// every contemporary CDC deduplicator (restic, borg, ...) uses this
// family. Drop-in compatible with the Chunker interface, so any engine
// can be run on top of it.
//
// The gear hash is h = (h << 1) + G[b]: a one-shift-one-add rolling hash
// whose window is implicitly the last 64 bytes. FastCDC normalization
// applies a harder mask before the expected size and an easier one after,
// tightening the size distribution without TTTD's backup-cut bookkeeping.
//
// Two scan implementations share the same cut semantics:
//  * scalar  — the reference per-byte loop;
//  * simd    — a block scan: the rolling hash of a whole block is
//    materialized, boundary *candidates* are found with vector compares
//    (AVX2/SSE2 picked at runtime, portable unrolled fallback), and only
//    candidate positions pay the position/mask decision logic.
// Cut points are bit-identical between the two for every configuration:
// the block scan runs the same serial hash recurrence over the same bytes
// (including the shared skip of the pre-min-size region, which is safe
// because (x << 1) mod 2^64 is linear, so
//   h_i = sum_{j=0..63} G[b_{i-j}] << j  (mod 2^64)
// exactly — the hash depends on nothing but the last 64 bytes) and only
// restructures *where the boundary test branches*: one branch per 32-byte
// block instead of two per byte. tests/chunk/chunker_differential_test
// enforces the equivalence over adversarial corpora and split points.
#pragma once

#include <array>

#include "mhd/chunk/chunker.h"

namespace mhd {

class GearChunker final : public Chunker {
 public:
  explicit GearChunker(const ChunkerConfig& config);

  void reset() override;
  ScanResult scan(ByteSpan data) override;

  /// The gear table is a pure function of this seed (deterministic across
  /// runs and platforms).
  static constexpr std::uint64_t kTableSeed = 0x9E2C6A15B7F3D481ULL;

  /// The implementation the constructor resolved config.impl to, e.g.
  /// "scalar", "simd-avx2", "simd-sse2", "simd-portable".
  const char* impl_name() const;

 private:
  /// Per-byte reference loop over data[i..n); updates hash_/pos_ and
  /// returns on cut or when `limit` bytes were consumed.
  ScanResult scan_scalar(ByteSpan data, std::size_t i);

  /// Block scan: vectorized candidate pre-filter + scalar cut resolution.
  ScanResult scan_simd(ByteSpan data, std::size_t i);

  ChunkerConfig config_;
  std::array<std::uint64_t, 256> gear_;
  std::uint64_t mask_small_;  ///< harder mask, used before expected_size
  std::uint64_t mask_large_;  ///< easier mask, used after expected_size
  std::uint64_t hash_ = 0;
  std::size_t pos_ = 0;
  bool use_simd_ = false;
  const char* impl_name_ = "scalar";
  /// Candidate kernel: bitmap of 32 hash lanes with (h & mask) == 0.
  std::uint32_t (*kernel_)(const std::uint64_t*, std::uint64_t) = nullptr;
};

/// The implementation name GearChunker would resolve `config` to on this
/// machine ("scalar" / "simd-avx2" / ...), without building one. Used by
/// metrics reporting so exported results record which kernel ran.
const char* resolved_gear_impl_name(const ChunkerConfig& config);

}  // namespace mhd
