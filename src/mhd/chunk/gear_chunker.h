// Gear-hash chunking with FastCDC-style normalization (Xia et al.,
// USENIX ATC'16) — an extension beyond the paper: the modern successor of
// the Rabin/TTTD chunkers this repository reproduces, included because
// every contemporary CDC deduplicator (restic, borg, ...) uses this
// family. Drop-in compatible with the Chunker interface, so any engine
// can be run on top of it.
//
// The gear hash is h = (h << 1) + G[b]: a one-shift-one-add rolling hash
// whose window is implicitly the last 64 bytes. FastCDC normalization
// applies a harder mask before the expected size and an easier one after,
// tightening the size distribution without TTTD's backup-cut bookkeeping.
#pragma once

#include <array>

#include "mhd/chunk/chunker.h"

namespace mhd {

class GearChunker final : public Chunker {
 public:
  explicit GearChunker(const ChunkerConfig& config);

  void reset() override;
  ScanResult scan(ByteSpan data) override;

  /// The gear table is a pure function of this seed (deterministic across
  /// runs and platforms).
  static constexpr std::uint64_t kTableSeed = 0x9E2C6A15B7F3D481ULL;

 private:
  ChunkerConfig config_;
  std::array<std::uint64_t, 256> gear_;
  std::uint64_t mask_small_;  ///< harder mask, used before expected_size
  std::uint64_t mask_large_;  ///< easier mask, used after expected_size
  std::uint64_t hash_ = 0;
  std::size_t pos_ = 0;
};

}  // namespace mhd
