#include "mhd/chunk/byte_source.h"

#include <algorithm>
#include <cstring>

namespace mhd {

std::size_t MemorySource::read(MutByteSpan out) {
  const std::size_t n = std::min(out.size(), data_.size() - offset_);
  if (n > 0) {
    std::memcpy(out.data(), data_.data() + offset_, n);
    offset_ += n;
  }
  return n;
}

ByteVec read_all(ByteSource& src) {
  ByteVec out;
  Byte buf[64 * 1024];
  for (;;) {
    const std::size_t n = src.read({buf, sizeof(buf)});
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  return out;
}

}  // namespace mhd
