// Fixed-size partitioning (Venti/OceanStore style); the paper's foil for
// the boundary-shifting problem, used by tests and the FSP ablation.
#pragma once

#include "mhd/chunk/chunker.h"

namespace mhd {

class FixedChunker final : public Chunker {
 public:
  explicit FixedChunker(std::uint32_t size);

  void reset() override;
  ScanResult scan(ByteSpan data) override;

 private:
  std::uint32_t size_;
  std::size_t pos_ = 0;
};

}  // namespace mhd
