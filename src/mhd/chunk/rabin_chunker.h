// Content-defined chunking with a Rabin fingerprint sliding window
// (LBFS-style), the base chunker of the paper and of every engine here.
//
// A position is a cut point when the window fingerprint masked to
// log2-expected bits equals a fixed magic value and the chunk length is at
// least min_size; a cut is forced at max_size.
#pragma once

#include "mhd/chunk/chunker.h"
#include "mhd/hash/rabin.h"

namespace mhd {

class RabinChunker final : public Chunker {
 public:
  explicit RabinChunker(const ChunkerConfig& config);

  void reset() override;
  ScanResult scan(ByteSpan data) override;

  const ChunkerConfig& config() const { return config_; }
  std::uint64_t mask() const { return mask_; }

 private:
  ChunkerConfig config_;
  RabinFingerprint fp_;
  std::uint64_t mask_;
  std::uint64_t magic_;
  std::size_t hash_start_;  ///< first position worth hashing (min - window)
  std::size_t pos_ = 0;     ///< bytes consumed into the current chunk
};

}  // namespace mhd
