#include "mhd/chunk/fixed_chunker.h"

#include <algorithm>
#include <stdexcept>

namespace mhd {

FixedChunker::FixedChunker(std::uint32_t size) : size_(size) {
  if (size == 0) throw std::invalid_argument("FixedChunker: size must be > 0");
}

void FixedChunker::reset() { pos_ = 0; }

Chunker::ScanResult FixedChunker::scan(ByteSpan data) {
  const std::size_t take = std::min<std::size_t>(data.size(), size_ - pos_);
  pos_ += take;
  if (pos_ == size_) {
    reset();
    return {take, true};
  }
  return {take, false};
}

}  // namespace mhd
