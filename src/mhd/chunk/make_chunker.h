// Chunker factory: engines select their cut-point algorithm by enum, so
// any deduplication engine can run on Rabin (the paper's default), TTTD
// or Gear/FastCDC without code changes.
#pragma once

#include <memory>
#include <string>

#include "mhd/chunk/chunker.h"

namespace mhd {

enum class ChunkerKind : int {
  kRabin = 0,  ///< the paper's chunker
  kTttd,
  kGear,
  kFixed,  ///< fixed-size partitioning (for the boundary-shift foil)
};

const char* chunker_kind_name(ChunkerKind kind);

/// Parses "rabin" | "tttd" | "gear" | "fixed"; throws std::invalid_argument
/// on anything else.
ChunkerKind chunker_kind_from_string(const std::string& name);

const char* chunker_impl_name(ChunkerImpl impl);

/// Parses "auto" | "scalar" | "simd" (the --chunker-impl flag values);
/// throws std::invalid_argument on anything else.
ChunkerImpl chunker_impl_from_string(const std::string& name);

/// The scan-kernel name `kind` + `config` resolve to on this machine:
/// "scalar" for every chunker but Gear, else resolved_gear_impl_name().
const char* resolved_chunker_impl_name(ChunkerKind kind,
                                       const ChunkerConfig& config);

/// Creates a chunker of `kind` with the given configuration (kFixed uses
/// config.expected_size as the block size).
std::unique_ptr<Chunker> make_chunker(ChunkerKind kind,
                                      const ChunkerConfig& config);

}  // namespace mhd
