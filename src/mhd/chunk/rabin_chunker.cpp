#include "mhd/chunk/rabin_chunker.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mhd {

ChunkerConfig ChunkerConfig::from_expected(std::uint64_t ecs) {
  ChunkerConfig c;
  c.expected_size = static_cast<std::uint32_t>(ecs);
  c.min_size = static_cast<std::uint32_t>(std::max<std::uint64_t>(64, ecs / 4));
  c.max_size = static_cast<std::uint32_t>(ecs * 8);
  return c;
}

namespace {
// Number of fingerprint bits to test so that the expected gap between cut
// candidates past min_size equals expected - min.
std::uint64_t mask_for(const ChunkerConfig& c) {
  const double target =
      std::max<double>(2.0, static_cast<double>(c.expected_size) -
                                static_cast<double>(c.min_size));
  const int bits = std::max(1, static_cast<int>(std::lround(std::log2(target))));
  return (bits >= 63) ? ~0ULL : ((1ULL << bits) - 1);
}
}  // namespace

RabinChunker::RabinChunker(const ChunkerConfig& config)
    : config_(config),
      fp_(config.window),
      mask_(mask_for(config)),
      // Arbitrary fixed pattern; avoiding 0 prevents runs of zero bytes
      // (common in disk images) from cutting at every position.
      magic_(0x4D5A3B7F9E2C6A1ULL & mask_) {
  if (config_.min_size == 0 || config_.max_size < config_.min_size) {
    throw std::invalid_argument("RabinChunker: bad min/max sizes");
  }
  hash_start_ = config_.min_size > config_.window
                    ? config_.min_size - config_.window
                    : 0;
  reset();
}

void RabinChunker::reset() {
  fp_.reset();
  pos_ = 0;
}

Chunker::ScanResult RabinChunker::scan(ByteSpan data) {
  std::size_t i = 0;
  const std::size_t n = data.size();

  // Skip the prefix where no cut can occur and the window is not yet
  // relevant: positions before (min_size - window).
  if (pos_ < hash_start_) {
    const std::size_t skip = std::min(n, hash_start_ - pos_);
    pos_ += skip;
    i += skip;
  }

  while (i < n) {
    if (pos_ >= config_.max_size) {
      reset();
      return {i, true};
    }
    const std::uint64_t f = fp_.push(data[i]);
    ++i;
    ++pos_;
    if (pos_ >= config_.min_size && (f & mask_) == magic_) {
      reset();
      return {i, true};
    }
    if (pos_ >= config_.max_size) {
      reset();
      return {i, true};
    }
  }
  return {i, false};
}

}  // namespace mhd
