#include "mhd/chunk/gear_chunker.h"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "mhd/util/cpufeatures.h"
#include "mhd/util/random.h"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define MHD_GEAR_X86_KERNELS 1
#endif

namespace mhd {

namespace {

std::uint64_t mask_with_bits(int bits) {
  bits = std::max(1, std::min(bits, 62));
  // Spread mask bits like FastCDC's padded masks; a plain low-bit mask
  // works too, but spreading decorrelates from the gear table's low bits.
  std::uint64_t mask = 0;
  std::uint64_t x = 0xAAAAAAAAAAAAAAA5ULL;
  int set = 0;
  for (int bit = 63; bit >= 0 && set < bits; --bit) {
    x = splitmix64(x + bit);
    if ((x & 1) != 0) continue;  // pseudo-random skip pattern
    mask |= 1ULL << bit;
    ++set;
  }
  // Ensure exactly `bits` bits even if the skip pattern ran out.
  for (int bit = 0; set < bits && bit < 64; ++bit) {
    if ((mask & (1ULL << bit)) == 0) {
      mask |= 1ULL << bit;
      ++set;
    }
  }
  return mask;
}

// ---- Candidate kernels ---------------------------------------------------
//
// Each kernel answers, for 32 consecutive rolling-hash values, "which lanes
// satisfy (h & mask) == 0?" as a 32-bit bitmap (bit k = lane k). The hash
// chain itself is inherently serial — h_i feeds h_{i+1} — so the chain is
// computed scalar (one shift+add per byte, branch-free) and the vector unit
// is spent where lanes are independent: the masked zero test.

constexpr std::size_t kBlock = 32;

std::uint32_t zero_lanes_portable(const std::uint64_t* h, std::uint64_t mask) {
  std::uint32_t out = 0;
  for (std::size_t k = 0; k < kBlock; k += 4) {
    out |= static_cast<std::uint32_t>((h[k + 0] & mask) == 0) << (k + 0);
    out |= static_cast<std::uint32_t>((h[k + 1] & mask) == 0) << (k + 1);
    out |= static_cast<std::uint32_t>((h[k + 2] & mask) == 0) << (k + 2);
    out |= static_cast<std::uint32_t>((h[k + 3] & mask) == 0) << (k + 3);
  }
  return out;
}

#ifdef MHD_GEAR_X86_KERNELS

std::uint32_t zero_lanes_sse2(const std::uint64_t* h, std::uint64_t mask) {
  const __m128i m = _mm_set1_epi64x(static_cast<long long>(mask));
  const __m128i z = _mm_setzero_si128();
  std::uint32_t out = 0;
  for (std::size_t k = 0; k < kBlock; k += 2) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(h + k));
    // SSE2 has no 64-bit compare: require both 32-bit halves equal to zero.
    const __m128i eq32 = _mm_cmpeq_epi32(_mm_and_si128(v, m), z);
    const __m128i eq64 = _mm_and_si128(
        eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
    out |= static_cast<std::uint32_t>(
               _mm_movemask_pd(_mm_castsi128_pd(eq64)))
           << k;
  }
  return out;
}

__attribute__((target("avx2"))) std::uint32_t zero_lanes_avx2(
    const std::uint64_t* h, std::uint64_t mask) {
  const __m256i m = _mm256_set1_epi64x(static_cast<long long>(mask));
  const __m256i z = _mm256_setzero_si256();
  std::uint32_t out = 0;
  for (std::size_t k = 0; k < kBlock; k += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + k));
    const __m256i eq = _mm256_cmpeq_epi64(_mm256_and_si256(v, m), z);
    out |= static_cast<std::uint32_t>(
               _mm256_movemask_pd(_mm256_castsi256_pd(eq)))
           << k;
  }
  return out;
}

#endif  // MHD_GEAR_X86_KERNELS

using ZeroLanesFn = std::uint32_t (*)(const std::uint64_t*, std::uint64_t);

struct GearImplChoice {
  bool block_scan = false;       ///< use the block scan (any kernel)
  ZeroLanesFn kernel = nullptr;  ///< candidate kernel when block_scan
  const char* name = "scalar";
};

GearImplChoice choose_impl(ChunkerImpl requested) {
  if (requested == ChunkerImpl::kScalar) return {false, nullptr, "scalar"};
  const SimdLevel level = best_simd_level();
#ifdef MHD_GEAR_X86_KERNELS
  if (level == SimdLevel::kAvx2) return {true, zero_lanes_avx2, "simd-avx2"};
  if (level == SimdLevel::kSse2) return {true, zero_lanes_sse2, "simd-sse2"};
#else
  (void)level;
#endif
  // No vector unit: kAuto keeps the reference loop, an explicit kSimd
  // request still exercises the block scan through the portable kernel
  // (same code path, so the differential tests mean something everywhere).
  if (requested == ChunkerImpl::kAuto) return {false, nullptr, "scalar"};
  return {true, zero_lanes_portable, "simd-portable"};
}

}  // namespace

GearChunker::GearChunker(const ChunkerConfig& config) : config_(config) {
  if (config_.min_size == 0 || config_.max_size < config_.min_size) {
    throw std::invalid_argument("GearChunker: bad min/max sizes");
  }
  std::uint64_t seed = kTableSeed;
  for (auto& g : gear_) {
    seed = splitmix64(seed);
    g = seed;
  }
  const int bits = std::max(
      1, static_cast<int>(std::lround(
             std::log2(std::max<double>(2.0, config_.expected_size)))));
  // FastCDC normalization level 1: +/- one bit around the expected size.
  mask_small_ = mask_with_bits(bits + 1);
  mask_large_ = mask_with_bits(bits - 1);
  const GearImplChoice choice = choose_impl(config_.impl);
  use_simd_ = choice.block_scan;
  impl_name_ = choice.name;
  kernel_ = choice.kernel;
  reset();
}

const char* GearChunker::impl_name() const { return impl_name_; }

const char* resolved_gear_impl_name(const ChunkerConfig& config) {
  return choose_impl(config.impl).name;
}

void GearChunker::reset() {
  hash_ = 0;
  pos_ = 0;
}

Chunker::ScanResult GearChunker::scan(ByteSpan data) {
  std::size_t i = 0;
  const std::size_t n = data.size();

  // No cut can occur before min_size; the gear window self-primes within
  // 64 bytes, so skipping the hash updates before (min - 64) is safe.
  if (pos_ + 64 < config_.min_size) {
    const std::size_t skip = std::min(n, config_.min_size - 64 - pos_);
    pos_ += skip;
    i += skip;
  }

  return use_simd_ ? scan_simd(data, i) : scan_scalar(data, i);
}

Chunker::ScanResult GearChunker::scan_scalar(ByteSpan data, std::size_t i) {
  const std::size_t n = data.size();
  while (i < n) {
    hash_ = (hash_ << 1) + gear_[data[i]];
    ++i;
    ++pos_;
    if (pos_ >= config_.min_size) {
      const std::uint64_t mask =
          pos_ < config_.expected_size ? mask_small_ : mask_large_;
      if ((hash_ & mask) == 0) {
        reset();
        return {i, true};
      }
    }
    if (pos_ >= config_.max_size) {
      reset();
      return {i, true};
    }
  }
  return {i, false};
}

// Block scan. Equivalence with scan_scalar, lane by lane:
//  * the hash chain is the identical recurrence over the identical bytes
//    (the shared min-size skip ran in scan()), so hbuf[k] equals the value
//    scan_scalar's hash_ would hold after consuming byte i+k;
//  * lane k sits at stream position pos_+k+1; the eligibility bitmap
//    reproduces the `pos >= min_size` guard and the small/large bitmap
//    reproduces the `pos < expected_size` mask choice, per lane;
//  * the first set bit of `hits` is the first position scan_scalar would
//    have cut at (the max_size forced cut cannot fire inside a block: the
//    loop condition caps blocks at max_size - kBlock, and the scalar tail
//    below owns the boundary).
Chunker::ScanResult GearChunker::scan_simd(ByteSpan data, std::size_t i) {
  const std::size_t n = data.size();
  const Byte* p = data.data();
  const std::uint64_t* g = gear_.data();
  const ZeroLanesFn kernel = kernel_;
  std::uint64_t h = hash_;
  std::size_t pos = pos_;

  // The strict > keeps the max_size position itself out of the block loop
  // (a lane can mask-hit there but never force-cut), so the scalar tail
  // owns the forced cut.
  while (n - i >= kBlock && config_.max_size - pos > kBlock) {
    alignas(32) std::uint64_t hbuf[kBlock];
    for (std::size_t k = 0; k < kBlock; k += 4) {
      h = (h << 1) + g[p[i + k + 0]];
      hbuf[k + 0] = h;
      h = (h << 1) + g[p[i + k + 1]];
      hbuf[k + 1] = h;
      h = (h << 1) + g[p[i + k + 2]];
      hbuf[k + 2] = h;
      h = (h << 1) + g[p[i + k + 3]];
      hbuf[k + 3] = h;
    }

    const std::size_t p0 = pos + 1;  // stream position of lane 0
    std::uint32_t elig;
    if (p0 >= config_.min_size) {
      elig = 0xFFFFFFFFu;
    } else if (config_.min_size - p0 >= kBlock) {
      elig = 0;
    } else {
      elig = 0xFFFFFFFFu << (config_.min_size - p0);
    }

    std::uint32_t hits = 0;
    if (elig != 0) {
      std::uint32_t small_lanes;  // lanes before expected_size
      if (p0 >= config_.expected_size) {
        small_lanes = 0;
      } else if (config_.expected_size - p0 >= kBlock) {
        small_lanes = 0xFFFFFFFFu;
      } else {
        small_lanes = ~(0xFFFFFFFFu << (config_.expected_size - p0));
      }
      std::uint32_t cand_small = 0, cand_large = 0;
      if ((small_lanes & elig) != 0) cand_small = kernel(hbuf, mask_small_);
      if ((~small_lanes & elig) != 0) cand_large = kernel(hbuf, mask_large_);
      hits = ((cand_small & small_lanes) | (cand_large & ~small_lanes)) & elig;
    }

    if (hits != 0) {
      const unsigned k = static_cast<unsigned>(std::countr_zero(hits));
      reset();
      return {i + k + 1, true};
    }
    i += kBlock;
    pos += kBlock;
  }

  // Tail: fewer than kBlock bytes left, or the max_size forced cut is less
  // than a block away. The reference loop finishes the call either way.
  hash_ = h;
  pos_ = pos;
  return scan_scalar(data, i);
}

}  // namespace mhd
