#include "mhd/chunk/gear_chunker.h"

#include <cmath>
#include <stdexcept>

#include "mhd/util/random.h"

namespace mhd {

namespace {
std::uint64_t mask_with_bits(int bits) {
  bits = std::max(1, std::min(bits, 62));
  // Spread mask bits like FastCDC's padded masks; a plain low-bit mask
  // works too, but spreading decorrelates from the gear table's low bits.
  std::uint64_t mask = 0;
  std::uint64_t x = 0xAAAAAAAAAAAAAAA5ULL;
  int set = 0;
  for (int bit = 63; bit >= 0 && set < bits; --bit) {
    x = splitmix64(x + bit);
    if ((x & 1) != 0) continue;  // pseudo-random skip pattern
    mask |= 1ULL << bit;
    ++set;
  }
  // Ensure exactly `bits` bits even if the skip pattern ran out.
  for (int bit = 0; set < bits && bit < 64; ++bit) {
    if ((mask & (1ULL << bit)) == 0) {
      mask |= 1ULL << bit;
      ++set;
    }
  }
  return mask;
}
}  // namespace

GearChunker::GearChunker(const ChunkerConfig& config) : config_(config) {
  if (config_.min_size == 0 || config_.max_size < config_.min_size) {
    throw std::invalid_argument("GearChunker: bad min/max sizes");
  }
  std::uint64_t seed = kTableSeed;
  for (auto& g : gear_) {
    seed = splitmix64(seed);
    g = seed;
  }
  const int bits = std::max(
      1, static_cast<int>(std::lround(
             std::log2(std::max<double>(2.0, config_.expected_size)))));
  // FastCDC normalization level 1: +/- one bit around the expected size.
  mask_small_ = mask_with_bits(bits + 1);
  mask_large_ = mask_with_bits(bits - 1);
  reset();
}

void GearChunker::reset() {
  hash_ = 0;
  pos_ = 0;
}

Chunker::ScanResult GearChunker::scan(ByteSpan data) {
  std::size_t i = 0;
  const std::size_t n = data.size();

  // No cut can occur before min_size; the gear window self-primes within
  // 64 bytes, so skipping the hash updates before (min - 64) is safe.
  if (pos_ + 64 < config_.min_size) {
    const std::size_t skip =
        std::min(n, config_.min_size - 64 - pos_);
    pos_ += skip;
    i += skip;
  }

  while (i < n) {
    hash_ = (hash_ << 1) + gear_[data[i]];
    ++i;
    ++pos_;
    if (pos_ >= config_.min_size) {
      const std::uint64_t mask =
          pos_ < config_.expected_size ? mask_small_ : mask_large_;
      if ((hash_ & mask) == 0) {
        reset();
        return {i, true};
      }
    }
    if (pos_ >= config_.max_size) {
      reset();
      return {i, true};
    }
  }
  return {i, false};
}

}  // namespace mhd
