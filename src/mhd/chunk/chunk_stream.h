// ChunkStream — pulls whole chunks (bytes + cut metadata) out of a
// ByteSource through any Chunker, handling I/O buffering and TTTD
// carry-over. This is the front end of every deduplication engine.
#pragma once

#include <memory>

#include "mhd/chunk/byte_source.h"
#include "mhd/chunk/chunker.h"

namespace mhd {

class ChunkStream {
 public:
  ChunkStream(ByteSource& source, Chunker& chunker,
              std::size_t io_buffer_size = 256 * 1024);

  /// Fills `chunk` with the next chunk's bytes. Returns false at end of
  /// stream (chunk left empty). The final chunk may end without a content
  /// cut (end of input).
  bool next(ByteVec& chunk);

  /// Total bytes emitted so far.
  std::uint64_t bytes_emitted() const { return bytes_emitted_; }

 private:
  std::size_t refill();

  ByteSource& source_;
  Chunker& chunker_;
  ByteVec io_buf_;
  std::size_t buf_pos_ = 0;
  std::size_t buf_len_ = 0;
  ByteVec carry_;  ///< bytes rolled back past a TTTD backup cut
  bool eof_ = false;
  std::uint64_t bytes_emitted_ = 0;
};

}  // namespace mhd
