// Bloom filter (Broder & Mitzenmacher survey; as used by Data Domain and
// by the paper's BF-MHD/Bimodal/SubChunk implementations) over 64-bit keys.
//
// Keys are Digest::prefix64() values — SHA-1 prefixes are uniformly
// distributed, and the k probe positions are derived by double hashing.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mhd/util/bytes.h"

namespace mhd {

class BloomFilter {
 public:
  /// `bytes` of bit storage (the paper uses a 100 MB filter) and `k` probes.
  explicit BloomFilter(std::size_t bytes, int k = 6);

  /// Sizes a filter for `expected_items` at the given false-positive rate.
  static BloomFilter for_items(std::uint64_t expected_items,
                               double fp_rate = 0.01);

  void insert(std::uint64_t key);
  /// True if the key *may* have been inserted (false positives possible,
  /// false negatives impossible).
  bool maybe_contains(std::uint64_t key) const;

  void clear();

  std::size_t size_bytes() const { return bits_.size() * sizeof(std::uint64_t); }
  /// Inserts that set at least one new bit — effectively the distinct-key
  /// load. Re-inserting a known key (journal replay, warm-restart
  /// re-learn) does not move it, so the serialized filter is a pure
  /// function of the key set.
  std::uint64_t inserted_count() const { return inserted_; }
  int probes() const { return k_; }

  /// Predicted false-positive rate for the current load.
  double estimated_fp_rate() const;

  /// Versioned, CRC32C-framed snapshot:
  ///   [magic "MBF1"][version u32][k u32][inserted u64][words u64]
  ///   [bit words...][crc32c u32 over everything before]
  /// Lets the persistent fingerprint index rehydrate its filter on reopen
  /// instead of rescanning every bucket page.
  ByteVec serialize() const;

  /// Rebuilds a filter from serialize() output. nullopt on wrong magic or
  /// version, truncation, length mismatch, or CRC mismatch — a damaged
  /// snapshot must be rejected, never half-loaded (a bloom with missing
  /// bits would return false negatives, which breaks its contract).
  static std::optional<BloomFilter> deserialize(ByteSpan data);

 private:
  std::vector<std::uint64_t> bits_;
  std::uint64_t bit_count_;
  int k_;
  std::uint64_t inserted_ = 0;
};

}  // namespace mhd
