// Bloom filter (Broder & Mitzenmacher survey; as used by Data Domain and
// by the paper's BF-MHD/Bimodal/SubChunk implementations) over 64-bit keys.
//
// Keys are Digest::prefix64() values — SHA-1 prefixes are uniformly
// distributed, and the k probe positions are derived by double hashing.
#pragma once

#include <cstdint>
#include <vector>

#include "mhd/util/bytes.h"

namespace mhd {

class BloomFilter {
 public:
  /// `bytes` of bit storage (the paper uses a 100 MB filter) and `k` probes.
  explicit BloomFilter(std::size_t bytes, int k = 6);

  /// Sizes a filter for `expected_items` at the given false-positive rate.
  static BloomFilter for_items(std::uint64_t expected_items,
                               double fp_rate = 0.01);

  void insert(std::uint64_t key);
  /// True if the key *may* have been inserted (false positives possible,
  /// false negatives impossible).
  bool maybe_contains(std::uint64_t key) const;

  void clear();

  std::size_t size_bytes() const { return bits_.size() * sizeof(std::uint64_t); }
  std::uint64_t inserted_count() const { return inserted_; }
  int probes() const { return k_; }

  /// Predicted false-positive rate for the current load.
  double estimated_fp_rate() const;

 private:
  std::vector<std::uint64_t> bits_;
  std::uint64_t bit_count_;
  int k_;
  std::uint64_t inserted_ = 0;
};

}  // namespace mhd
