#include "mhd/container/bloom_filter.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mhd/hash/mix.h"
#include "mhd/util/crc32c.h"

namespace mhd {

namespace {
constexpr std::uint32_t kBloomMagic = 0x3146424Du;  // "MBF1"
constexpr std::uint32_t kBloomVersion = 1;
/// magic + version + k + inserted + word count.
constexpr std::size_t kBloomHeaderBytes = 4 + 4 + 4 + 8 + 8;
}  // namespace

BloomFilter::BloomFilter(std::size_t bytes, int k)
    : bits_((std::max<std::size_t>(bytes, 8) + 7) / 8, 0),
      bit_count_(bits_.size() * 64),
      k_(k) {
  if (k <= 0) throw std::invalid_argument("BloomFilter: k must be positive");
}

BloomFilter BloomFilter::for_items(std::uint64_t expected_items,
                                   double fp_rate) {
  expected_items = std::max<std::uint64_t>(expected_items, 1);
  const double ln2 = 0.6931471805599453;
  const double bits = -static_cast<double>(expected_items) *
                      std::log(fp_rate) / (ln2 * ln2);
  const int k = std::max(1, static_cast<int>(std::lround(
                                bits / static_cast<double>(expected_items) * ln2)));
  return BloomFilter(static_cast<std::size_t>(bits / 8.0) + 1, k);
}

void BloomFilter::insert(std::uint64_t key) {
  const std::uint64_t h1 = mix64(key, 0x9E3779B97F4A7C15ULL);
  const std::uint64_t h2 = mix64(key, 0xC2B2AE3D27D4EB4FULL) | 1;
  bool changed = false;
  for (int i = 0; i < k_; ++i) {
    const std::uint64_t bit = (h1 + static_cast<std::uint64_t>(i) * h2) % bit_count_;
    const std::uint64_t mask = 1ULL << (bit & 63);
    changed = changed || (bits_[bit >> 6] & mask) == 0;
    bits_[bit >> 6] |= mask;
  }
  // Count only inserts that set a new bit: the load estimate then depends
  // solely on the SET of keys ever inserted, not on how many times each
  // was re-inserted. That determinism is load-bearing — a journal replay
  // or warm-restart re-learn re-inserts known keys, and the serialized
  // filter must stay bit-identical to one that never went through the
  // replay (the daemon's warm-engine-vs-fresh-engine equivalence).
  if (changed) ++inserted_;
}

bool BloomFilter::maybe_contains(std::uint64_t key) const {
  const std::uint64_t h1 = mix64(key, 0x9E3779B97F4A7C15ULL);
  const std::uint64_t h2 = mix64(key, 0xC2B2AE3D27D4EB4FULL) | 1;
  for (int i = 0; i < k_; ++i) {
    const std::uint64_t bit = (h1 + static_cast<std::uint64_t>(i) * h2) % bit_count_;
    if ((bits_[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
  }
  return true;
}

void BloomFilter::clear() {
  std::fill(bits_.begin(), bits_.end(), 0);
  inserted_ = 0;
}

ByteVec BloomFilter::serialize() const {
  ByteVec out;
  out.reserve(kBloomHeaderBytes + bits_.size() * 8 + 4);
  append_le(out, kBloomMagic);
  append_le(out, kBloomVersion);
  append_le(out, static_cast<std::uint32_t>(k_));
  append_le(out, inserted_);
  append_le(out, static_cast<std::uint64_t>(bits_.size()));
  for (std::uint64_t word : bits_) append_le(out, word);
  append_le(out, crc32c(0, out));
  return out;
}

std::optional<BloomFilter> BloomFilter::deserialize(ByteSpan data) {
  if (data.size() < kBloomHeaderBytes + 4) return std::nullopt;
  if (load_le<std::uint32_t>(data.data()) != kBloomMagic) return std::nullopt;
  if (load_le<std::uint32_t>(data.data() + 4) != kBloomVersion) {
    return std::nullopt;
  }
  const auto k = load_le<std::uint32_t>(data.data() + 8);
  const auto inserted = load_le<std::uint64_t>(data.data() + 12);
  const auto words = load_le<std::uint64_t>(data.data() + 20);
  if (k == 0 || words == 0) return std::nullopt;
  if (data.size() != kBloomHeaderBytes + words * 8 + 4) return std::nullopt;
  const std::size_t body = data.size() - 4;
  if (load_le<std::uint32_t>(data.data() + body) !=
      crc32c(0, data.subspan(0, body))) {
    return std::nullopt;
  }
  BloomFilter filter(static_cast<std::size_t>(words) * 8,
                     static_cast<int>(k));
  for (std::uint64_t i = 0; i < words; ++i) {
    filter.bits_[i] =
        load_le<std::uint64_t>(data.data() + kBloomHeaderBytes + i * 8);
  }
  filter.inserted_ = inserted;
  return filter;
}

double BloomFilter::estimated_fp_rate() const {
  const double exponent = -static_cast<double>(k_) *
                          static_cast<double>(inserted_) /
                          static_cast<double>(bit_count_);
  return std::pow(1.0 - std::exp(exponent), k_);
}

}  // namespace mhd
