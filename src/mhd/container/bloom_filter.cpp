#include "mhd/container/bloom_filter.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mhd/hash/mix.h"

namespace mhd {

BloomFilter::BloomFilter(std::size_t bytes, int k)
    : bits_((std::max<std::size_t>(bytes, 8) + 7) / 8, 0),
      bit_count_(bits_.size() * 64),
      k_(k) {
  if (k <= 0) throw std::invalid_argument("BloomFilter: k must be positive");
}

BloomFilter BloomFilter::for_items(std::uint64_t expected_items,
                                   double fp_rate) {
  expected_items = std::max<std::uint64_t>(expected_items, 1);
  const double ln2 = 0.6931471805599453;
  const double bits = -static_cast<double>(expected_items) *
                      std::log(fp_rate) / (ln2 * ln2);
  const int k = std::max(1, static_cast<int>(std::lround(
                                bits / static_cast<double>(expected_items) * ln2)));
  return BloomFilter(static_cast<std::size_t>(bits / 8.0) + 1, k);
}

void BloomFilter::insert(std::uint64_t key) {
  const std::uint64_t h1 = mix64(key, 0x9E3779B97F4A7C15ULL);
  const std::uint64_t h2 = mix64(key, 0xC2B2AE3D27D4EB4FULL) | 1;
  for (int i = 0; i < k_; ++i) {
    const std::uint64_t bit = (h1 + static_cast<std::uint64_t>(i) * h2) % bit_count_;
    bits_[bit >> 6] |= (1ULL << (bit & 63));
  }
  ++inserted_;
}

bool BloomFilter::maybe_contains(std::uint64_t key) const {
  const std::uint64_t h1 = mix64(key, 0x9E3779B97F4A7C15ULL);
  const std::uint64_t h2 = mix64(key, 0xC2B2AE3D27D4EB4FULL) | 1;
  for (int i = 0; i < k_; ++i) {
    const std::uint64_t bit = (h1 + static_cast<std::uint64_t>(i) * h2) % bit_count_;
    if ((bits_[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
  }
  return true;
}

void BloomFilter::clear() {
  std::fill(bits_.begin(), bits_.end(), 0);
  inserted_ = 0;
}

double BloomFilter::estimated_fp_rate() const {
  const double exponent = -static_cast<double>(k_) *
                          static_cast<double>(inserted_) /
                          static_cast<double>(bit_count_);
  return std::pow(1.0 - std::exp(exponent), k_);
}

}  // namespace mhd
