// Intrusive-list LRU cache used for the in-RAM Manifest cache (the paper's
// "cache contains a number of Manifests... freed following the LRU policy",
// with dirty entries written back before eviction).
//
// Eviction invokes a user-supplied callback so the owner can flush dirty
// state to the storage backend.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace mhd {

template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  using EvictFn = std::function<void(const K&, V&)>;
  /// Optional byte-weight of a value; enables RAM-budgeted eviction so
  /// algorithms with bigger manifests cache fewer of them (the fair
  /// equal-RAM comparison the paper's analysis assumes).
  using WeightFn = std::function<std::uint64_t(const V&)>;

  explicit LruCache(std::size_t capacity, EvictFn on_evict = nullptr,
                    std::uint64_t max_weight = 0, WeightFn weigher = nullptr)
      : capacity_(capacity),
        max_weight_(max_weight),
        on_evict_(std::move(on_evict)),
        weigher_(std::move(weigher)) {
    if (capacity_ == 0) throw std::invalid_argument("LruCache: capacity 0");
  }

  /// Inserts (or replaces) and marks most-recently-used. May evict LRU
  /// entries (by count, and by total weight when a weigher is set).
  /// Returns a reference valid until the next mutation.
  V& put(const K& key, V value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      if (weigher_) {
        total_weight_ -= weigher_(it->second->second);
        total_weight_ += weigher_(value);
      }
      it->second->second = std::move(value);
      touch(it->second);
      shrink_to_budget(/*keep_front=*/true);
      return order_.front().second;
    }
    if (order_.size() >= capacity_) evict_one();
    if (weigher_) total_weight_ += weigher_(value);
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    shrink_to_budget(/*keep_front=*/true);
    return order_.front().second;
  }

  /// Re-computes an entry's weight after in-place mutation of the value
  /// obtained from get()/peek(). `old_weight` is what the entry previously
  /// contributed (callers track it).
  void reweigh(const K& key, std::uint64_t old_weight) {
    if (!weigher_) return;
    auto it = index_.find(key);
    if (it == index_.end()) return;
    total_weight_ -= old_weight;
    total_weight_ += weigher_(it->second->second);
    shrink_to_budget(/*keep_front=*/false);
  }

  std::uint64_t total_weight() const { return total_weight_; }

  /// Looks up and marks most-recently-used; nullptr if absent.
  V* get(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    touch(it->second);
    return &order_.front().second;
  }

  /// Lookup without changing recency (for read-only scans).
  V* peek(const K& key) {
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->second;
  }

  bool contains(const K& key) const { return index_.count(key) > 0; }

  /// Removes an entry *without* invoking the eviction callback.
  bool erase(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    if (weigher_) total_weight_ -= weigher_(it->second->second);
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  /// Evicts everything (invoking the callback for each entry).
  void flush() {
    while (!order_.empty()) evict_one();
  }

  /// Iterate entries from most- to least-recently used.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& [k, v] : order_) fn(k, v);
  }

  std::size_t size() const { return order_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t eviction_count() const { return evictions_; }

 private:
  using Entry = std::pair<K, V>;
  using Iter = typename std::list<Entry>::iterator;

  void touch(Iter it) { order_.splice(order_.begin(), order_, it); }

  void evict_one() {
    auto& back = order_.back();
    if (weigher_) total_weight_ -= weigher_(back.second);
    if (on_evict_) on_evict_(back.first, back.second);
    index_.erase(back.first);
    order_.pop_back();
    ++evictions_;
  }

  /// Evicts from the LRU end until within the weight budget. With
  /// keep_front, the most-recently-used entry always survives (a single
  /// over-budget manifest must still be usable).
  void shrink_to_budget(bool keep_front) {
    if (max_weight_ == 0 || !weigher_) return;
    while (total_weight_ > max_weight_ &&
           order_.size() > (keep_front ? 1u : 0u)) {
      evict_one();
    }
  }

  std::size_t capacity_;
  std::uint64_t max_weight_;
  std::uint64_t total_weight_ = 0;
  EvictFn on_evict_;
  WeightFn weigher_;
  std::list<Entry> order_;
  std::unordered_map<K, Iter, Hash> index_;
  std::uint64_t evictions_ = 0;
};

}  // namespace mhd
