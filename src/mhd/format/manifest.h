// DiskChunkManifest ("Manifest") — the per-DiskChunk metadata file.
//
// A Manifest is an ordered sequence of hash entries describing the data
// blocks inside its DiskChunk (Fig. 3 of the paper). Entries cost 36 bytes
// (20-byte SHA-1 + byte start position + byte size); MHD adds a one-byte
// Hook flag per entry (37). `chunk_count` records how many original
// small chunks an entry spans: entries with chunk_count > 1 are SHM-merged
// regions eligible for Hysteresis Hash Re-chunking, while EdgeHash and
// plain entries (chunk_count == 1) are atomic and stop match extension.
// Manifests are the only metadata files updated in place.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mhd/hash/digest.h"
#include "mhd/util/bytes.h"

namespace mhd {

struct ManifestEntry {
  Digest hash;
  std::uint64_t offset = 0;  ///< byte start within the owning DiskChunk
  std::uint32_t size = 0;    ///< byte size of the region
  std::uint32_t chunk_count = 1;  ///< original small chunks spanned
  bool is_hook = false;

  /// Paper accounting: 36 bytes per entry, +1 for the Hook flag.
  static constexpr std::uint64_t kBaseBytes = 36;
  static constexpr std::uint64_t kHookFlagBytes = 1;

  bool operator==(const ManifestEntry&) const = default;
};

class Manifest {
 public:
  Manifest() = default;
  explicit Manifest(Digest chunk_name) : chunk_name_(chunk_name) {}

  const Digest& chunk_name() const { return chunk_name_; }
  std::vector<ManifestEntry>& entries() { return entries_; }
  const std::vector<ManifestEntry>& entries() const { return entries_; }

  void add(ManifestEntry entry) { entries_.push_back(entry); }

  /// Index of the first entry with this hash, or nullopt.
  std::optional<std::size_t> find(const Digest& hash) const;

  bool dirty() const { return dirty_; }
  void set_dirty(bool dirty = true) { dirty_ = dirty; }

  /// Serialized size under the paper's accounting (with_hook_flags selects
  /// the MHD 37-byte entries vs the baseline 36-byte entries).
  std::uint64_t byte_size(bool with_hook_flags) const;

  /// Wire format: chunk_name(20) | flags(1) | count(4) | entries.
  ByteVec serialize(bool with_hook_flags) const;
  static std::optional<Manifest> deserialize(ByteSpan data);

  /// Sanity invariant: entries are contiguous, ordered, non-overlapping
  /// regions of the DiskChunk starting at `expected_start`.
  bool regions_contiguous(std::uint64_t expected_start = 0) const;

 private:
  Digest chunk_name_{};
  std::vector<ManifestEntry> entries_;
  bool dirty_ = false;
};

}  // namespace mhd
