#include "mhd/format/file_manifest.h"

#include <limits>

namespace mhd {

void FileManifest::add_range(const Digest& chunk_name, std::uint64_t offset,
                             std::uint64_t length, bool coalesce) {
  while (length > 0) {
    const std::uint32_t take = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(length, std::numeric_limits<std::uint32_t>::max()));
    if (coalesce && !entries_.empty()) {
      auto& last = entries_.back();
      if (last.chunk_name == chunk_name &&
          last.offset + last.length == offset &&
          static_cast<std::uint64_t>(last.length) + take <=
              std::numeric_limits<std::uint32_t>::max()) {
        last.length += take;
        offset += take;
        length -= take;
        continue;
      }
    }
    entries_.push_back({chunk_name, offset, take});
    offset += take;
    length -= take;
  }
}

std::uint64_t FileManifest::total_length() const {
  std::uint64_t total = 0;
  for (const auto& e : entries_) total += e.length;
  return total;
}

ByteVec FileManifest::serialize() const {
  ByteVec out;
  out.reserve(6 + file_name_.size() + entries_.size() * 32);
  append_le<std::uint16_t>(out, static_cast<std::uint16_t>(file_name_.size()));
  append(out, as_bytes(file_name_));
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(entries_.size()));
  for (const auto& e : entries_) {
    append(out, e.chunk_name.span());
    append_le<std::uint64_t>(out, e.offset);
    append_le<std::uint32_t>(out, e.length);
  }
  return out;
}

std::optional<FileManifest> FileManifest::deserialize(ByteSpan data) {
  if (data.size() < 6) return std::nullopt;
  const std::uint16_t name_len = load_le<std::uint16_t>(data.data());
  std::size_t pos = 2;
  if (data.size() < pos + name_len + 4) return std::nullopt;
  FileManifest fm(std::string(reinterpret_cast<const char*>(data.data() + pos),
                              name_len));
  pos += name_len;
  const std::uint32_t count = load_le<std::uint32_t>(data.data() + pos);
  pos += 4;
  if (data.size() < pos + static_cast<std::size_t>(count) * 32) {
    return std::nullopt;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    FileManifestEntry e;
    std::copy(data.begin() + static_cast<std::ptrdiff_t>(pos),
              data.begin() + static_cast<std::ptrdiff_t>(pos + Digest::kSize),
              e.chunk_name.bytes.begin());
    pos += Digest::kSize;
    e.offset = load_le<std::uint64_t>(data.data() + pos);
    pos += 8;
    e.length = load_le<std::uint32_t>(data.data() + pos);
    pos += 4;
    fm.entries_.push_back(e);
  }
  return fm;
}

}  // namespace mhd
