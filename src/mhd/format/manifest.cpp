#include "mhd/format/manifest.h"

namespace mhd {

std::optional<std::size_t> Manifest::find(const Digest& hash) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].hash == hash) return i;
  }
  return std::nullopt;
}

std::uint64_t Manifest::byte_size(bool with_hook_flags) const {
  const std::uint64_t per_entry =
      ManifestEntry::kBaseBytes +
      (with_hook_flags ? ManifestEntry::kHookFlagBytes : 0);
  return entries_.size() * per_entry;
}

ByteVec Manifest::serialize(bool with_hook_flags) const {
  ByteVec out;
  out.reserve(25 + entries_.size() * 37);
  append(out, chunk_name_.span());
  out.push_back(with_hook_flags ? 1 : 0);
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(entries_.size()));
  for (const auto& e : entries_) {
    append(out, e.hash.span());
    append_le<std::uint64_t>(out, e.offset);
    append_le<std::uint32_t>(out, e.size);
    append_le<std::uint32_t>(out, e.chunk_count);
    if (with_hook_flags) out.push_back(e.is_hook ? 1 : 0);
  }
  return out;
}

std::optional<Manifest> Manifest::deserialize(ByteSpan data) {
  if (data.size() < 25) return std::nullopt;
  Manifest m;
  std::copy(data.begin(), data.begin() + Digest::kSize, m.chunk_name_.bytes.begin());
  const bool with_hook_flags = data[Digest::kSize] != 0;
  const std::uint32_t count = load_le<std::uint32_t>(data.data() + Digest::kSize + 1);
  const std::size_t entry_bytes = 36 + (with_hook_flags ? 1 : 0);
  std::size_t pos = Digest::kSize + 5;
  if (data.size() < pos + static_cast<std::size_t>(count) * entry_bytes) {
    return std::nullopt;
  }
  m.entries_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ManifestEntry e;
    std::copy(data.begin() + static_cast<std::ptrdiff_t>(pos),
              data.begin() + static_cast<std::ptrdiff_t>(pos + Digest::kSize),
              e.hash.bytes.begin());
    pos += Digest::kSize;
    e.offset = load_le<std::uint64_t>(data.data() + pos);
    pos += 8;
    e.size = load_le<std::uint32_t>(data.data() + pos);
    pos += 4;
    e.chunk_count = load_le<std::uint32_t>(data.data() + pos);
    pos += 4;
    if (with_hook_flags) {
      e.is_hook = data[pos] != 0;
      pos += 1;
    }
    m.entries_.push_back(e);
  }
  return m;
}

bool Manifest::regions_contiguous(std::uint64_t expected_start) const {
  std::uint64_t cursor = expected_start;
  for (const auto& e : entries_) {
    if (e.offset != cursor) return false;
    cursor += e.size;
  }
  return true;
}

}  // namespace mhd
