// FileManifest — the per-input-file recipe used to reconstruct the file.
//
// MHD writes one entry per *run*: "a new entry will only be written into
// the FileManifest at the terminating point of neighboring chunks of
// duplicate or non-duplicate data slices within one file" — so an entry
// covers a contiguous byte range of one DiskChunk. Baseline engines write
// one entry per chunk (big or small), which is exactly why their
// FileManifest MetaDataRatio in Fig. 7(c) is higher.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mhd/hash/digest.h"
#include "mhd/util/bytes.h"

namespace mhd {

struct FileManifestEntry {
  Digest chunk_name;          ///< source DiskChunk object
  std::uint64_t offset = 0;   ///< byte offset within that DiskChunk
  std::uint32_t length = 0;   ///< bytes to copy

  /// Paper-consistent accounting: 20-byte address + offset + length.
  static constexpr std::uint64_t kBytes = 32;

  bool operator==(const FileManifestEntry&) const = default;
};

class FileManifest {
 public:
  FileManifest() = default;
  explicit FileManifest(std::string file_name)
      : file_name_(std::move(file_name)) {}

  const std::string& file_name() const { return file_name_; }
  const std::vector<FileManifestEntry>& entries() const { return entries_; }

  /// Appends a range, coalescing with the previous entry when contiguous
  /// in the same DiskChunk (the MHD run-length behaviour). `coalesce=false`
  /// reproduces the per-chunk baseline behaviour.
  void add_range(const Digest& chunk_name, std::uint64_t offset,
                 std::uint64_t length, bool coalesce);

  std::uint64_t total_length() const;
  std::uint64_t byte_size() const {
    return entries_.size() * FileManifestEntry::kBytes;
  }

  /// Wire format: name_len(2) | name | count(4) | entries(32 each).
  ByteVec serialize() const;
  static std::optional<FileManifest> deserialize(ByteSpan data);

 private:
  std::string file_name_;
  std::vector<FileManifestEntry> entries_;
};

}  // namespace mhd
