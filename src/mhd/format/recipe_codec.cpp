#include "mhd/format/recipe_codec.h"

#include <unordered_map>

namespace mhd {

void put_varint(ByteVec& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<Byte>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<Byte>(value));
}

std::optional<std::uint64_t> get_varint(ByteSpan data, std::size_t& pos) {
  std::uint64_t value = 0;
  int shift = 0;
  while (pos < data.size() && shift < 64) {
    const Byte b = data[pos++];
    value |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return value;
    shift += 7;
  }
  return std::nullopt;
}

ByteVec compress_recipe(const FileManifest& fm) {
  // Dictionary of distinct chunk names, in first-appearance order.
  std::vector<Digest> dict;
  std::unordered_map<Digest, std::uint64_t, DigestHasher> dict_index;
  for (const auto& e : fm.entries()) {
    if (dict_index.emplace(e.chunk_name, dict.size()).second) {
      dict.push_back(e.chunk_name);
    }
  }

  ByteVec out;
  put_varint(out, fm.file_name().size());
  append(out, as_bytes(fm.file_name()));
  put_varint(out, dict.size());
  for (const auto& d : dict) append(out, d.span());
  put_varint(out, fm.entries().size());

  // Per chunk name, predict the next offset as "end of the previous range
  // from the same chunk" — sequential reads then encode as delta 0.
  std::unordered_map<Digest, std::uint64_t, DigestHasher> predicted;
  for (const auto& e : fm.entries()) {
    put_varint(out, dict_index[e.chunk_name]);
    const std::int64_t delta =
        static_cast<std::int64_t>(e.offset) -
        static_cast<std::int64_t>(predicted[e.chunk_name]);
    put_varint(out, zigzag_encode(delta));
    put_varint(out, e.length);
    predicted[e.chunk_name] = e.offset + e.length;
  }
  return out;
}

std::optional<FileManifest> decompress_recipe(ByteSpan data) {
  std::size_t pos = 0;
  const auto name_len = get_varint(data, pos);
  if (!name_len || pos + *name_len > data.size()) return std::nullopt;
  FileManifest fm(std::string(reinterpret_cast<const char*>(data.data() + pos),
                              static_cast<std::size_t>(*name_len)));
  pos += static_cast<std::size_t>(*name_len);

  const auto dict_size = get_varint(data, pos);
  if (!dict_size || pos + *dict_size * Digest::kSize > data.size()) {
    return std::nullopt;
  }
  std::vector<Digest> dict(static_cast<std::size_t>(*dict_size));
  for (auto& d : dict) {
    std::copy(data.begin() + static_cast<std::ptrdiff_t>(pos),
              data.begin() + static_cast<std::ptrdiff_t>(pos + Digest::kSize),
              d.bytes.begin());
    pos += Digest::kSize;
  }

  const auto entry_count = get_varint(data, pos);
  if (!entry_count) return std::nullopt;
  std::unordered_map<Digest, std::uint64_t, DigestHasher> predicted;
  for (std::uint64_t i = 0; i < *entry_count; ++i) {
    const auto dict_id = get_varint(data, pos);
    if (!dict_id || *dict_id >= dict.size()) return std::nullopt;
    const Digest& chunk = dict[static_cast<std::size_t>(*dict_id)];
    const auto zz = get_varint(data, pos);
    const auto length = get_varint(data, pos);
    if (!zz || !length) return std::nullopt;
    const std::int64_t offset =
        static_cast<std::int64_t>(predicted[chunk]) + zigzag_decode(*zz);
    if (offset < 0) return std::nullopt;
    fm.add_range(chunk, static_cast<std::uint64_t>(offset), *length,
                 /*coalesce=*/false);
    predicted[chunk] = static_cast<std::uint64_t>(offset) + *length;
  }
  return fm;
}

}  // namespace mhd
