// File-recipe compression (after Meister, Brinkmann & S., FAST'13 —
// cited in the paper's related work as post-process compression for file
// recipes).
//
// A FileManifest is a sequence of (chunk, offset, length) records whose
// neighbors are highly redundant: consecutive entries usually reference
// the same DiskChunk at consecutive offsets. The codec exploits this with
// a chunk-name dictionary, zig-zag varint offset deltas (delta relative to
// the predicted "previous end" position) and varint lengths. Decoding is
// exact; compress_recipe/decompress_recipe round-trip any FileManifest.
#pragma once

#include <optional>

#include "mhd/format/file_manifest.h"

namespace mhd {

/// Varint primitives (LEB128), exposed for tests.
void put_varint(ByteVec& out, std::uint64_t value);
std::optional<std::uint64_t> get_varint(ByteSpan data, std::size_t& pos);

/// Zig-zag mapping for signed deltas.
constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
constexpr std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Compresses a FileManifest into the recipe wire format.
ByteVec compress_recipe(const FileManifest& fm);

/// Inverse of compress_recipe; nullopt on malformed input.
std::optional<FileManifest> decompress_recipe(ByteSpan data);

}  // namespace mhd
