#include "mhd/core/match_extension.h"

#include <algorithm>

#include "mhd/util/buffer_pool.h"

namespace mhd {

namespace {

/// SHA-1 over a run of stream chunks (concatenated bytes).
Digest hash_run(const std::deque<StreamChunk>& chunks, std::size_t first,
                std::size_t count) {
  Sha1 h;
  for (std::size_t i = 0; i < count; ++i) h.update(chunks[first + i].bytes);
  return h.digest();
}

/// Match extension is a terminal consumer: a matched buffered chunk's
/// bytes are never needed again, so the slab goes back to the pool right
/// before the deque erases the StreamChunk.
void recycle(StreamChunk& c) {
  if (c.bytes.capacity() > 0) chunk_buffer_pool().release(std::move(c.bytes));
}

}  // namespace

std::size_t MatchExtender::splice(Manifest& m, const Digest& name,
                                  std::size_t index,
                                  std::vector<ManifestEntry> replacement) {
  auto& entries = m.entries();
  entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(index));
  entries.insert(entries.begin() + static_cast<std::ptrdiff_t>(index),
                 replacement.begin(), replacement.end());
  m.set_dirty();
  cache_.mark_dirty(name);
  cache_.invalidate_index(name);
  ++counters_.hhr_operations;
  return replacement.size() - 1;
}

std::optional<ByteVec> MatchExtender::reload_chunk_range(
    const Manifest& m, const ManifestEntry& e) {
  try {
    return store_.read_chunk_range(m.chunk_name().hex(), e.offset, e.size);
  } catch (const CorruptObjectError&) {
    ++counters_.corruption_fallbacks;
    return std::nullopt;
  }
}

bool MatchExtender::hhr_backward(Manifest& m, const Digest& name,
                                 std::size_t index,
                                 std::deque<StreamChunk>& pending,
                                 std::uint64_t frontier, Outcome& out) {
  const ManifestEntry e = m.entries()[index];  // copy: we may splice
  const auto bytes = reload_chunk_range(m, e);
  ++counters_.hhr_chunk_reloads;
  if (!bytes) return false;

  // Byte-compare the tail of the buffer against the tail of the old region,
  // whole buffered chunks at a time (the paper compares at new-chunk
  // granularity: Chunk 4/5 duplicate, Chunk N3 not). The buffer may hold
  // non-adjacent chunks (unmatched survivors on both sides of an earlier
  // duplicate slice), so the run must stay file-contiguous up to the
  // frontier — the recorded duplicate segment covers one file range.
  std::uint64_t acc = 0;
  std::size_t matched = 0;
  while (matched < pending.size()) {
    const StreamChunk& pc = pending[pending.size() - 1 - matched];
    if (pc.file_offset + pc.bytes.size() + acc != frontier) break;
    const ByteVec& pb = pc.bytes;
    if (acc + pb.size() > e.size) break;
    const ByteSpan old_piece(bytes->data() + (e.size - acc - pb.size()),
                             pb.size());
    if (!equal(pb, old_piece)) break;
    acc += pb.size();
    ++matched;
  }
  if (acc == 0) return false;

  // EdgeHash: pin the discovered edge with a block the size of the first
  // mismatching new chunk, so the identical slice never re-triggers HHR.
  std::uint64_t edge_size = 0;
  if (cfg_.enable_edge_hash && matched < pending.size()) {
    edge_size =
        std::min<std::uint64_t>(pending[pending.size() - 1 - matched].bytes.size(),
                                e.size - acc);
  }
  const std::uint64_t rem_size = e.size - acc - edge_size;

  std::vector<ManifestEntry> repl;
  if (rem_size > 0) {
    const std::uint32_t rem_chunks = static_cast<std::uint32_t>(std::max<std::int64_t>(
        1, static_cast<std::int64_t>(e.chunk_count) -
               static_cast<std::int64_t>(matched) - (edge_size > 0 ? 1 : 0)));
    repl.push_back({Sha1::digest_of({bytes->data(), rem_size}), e.offset,
                    static_cast<std::uint32_t>(rem_size), rem_chunks, false});
  }
  if (edge_size > 0) {
    repl.push_back({Sha1::digest_of({bytes->data() + rem_size, edge_size}),
                    e.offset + rem_size, static_cast<std::uint32_t>(edge_size),
                    1, false});
  }
  repl.push_back({Sha1::digest_of({bytes->data() + (e.size - acc), acc}),
                  e.offset + e.size - acc, static_cast<std::uint32_t>(acc),
                  static_cast<std::uint32_t>(std::max<std::size_t>(1, matched)),
                  false});
  splice(m, name, index, std::move(repl));

  // Consume the matched buffered chunks and record where their bytes live.
  out.dup_segments.push_back(
      {pending[pending.size() - matched].file_offset, m.chunk_name(),
       e.offset + e.size - acc, acc});
  out.dup_chunks += matched;
  out.dup_bytes += acc;
  for (std::size_t j = pending.size() - matched; j < pending.size(); ++j) {
    recycle(pending[j]);
  }
  pending.erase(pending.end() - static_cast<std::ptrdiff_t>(matched),
                pending.end());
  return true;
}

bool MatchExtender::hhr_forward(Manifest& m, const Digest& name,
                                std::size_t index,
                                std::deque<StreamChunk>& look, Outcome& out) {
  const ManifestEntry e = m.entries()[index];
  const auto bytes = reload_chunk_range(m, e);
  ++counters_.hhr_chunk_reloads;
  if (!bytes) return false;

  std::uint64_t acc = 0;
  std::size_t matched = 0;
  while (matched < look.size()) {
    const ByteVec& lb = look[matched].bytes;
    if (acc + lb.size() > e.size) break;
    if (!equal(lb, ByteSpan(bytes->data() + acc, lb.size()))) break;
    acc += lb.size();
    ++matched;
  }
  if (acc == 0) return false;

  std::uint64_t edge_size = 0;
  if (cfg_.enable_edge_hash && matched < look.size()) {
    edge_size = std::min<std::uint64_t>(look[matched].bytes.size(), e.size - acc);
  }
  const std::uint64_t rem_size = e.size - acc - edge_size;

  std::vector<ManifestEntry> repl;
  repl.push_back({Sha1::digest_of({bytes->data(), acc}), e.offset,
                  static_cast<std::uint32_t>(acc),
                  static_cast<std::uint32_t>(std::max<std::size_t>(1, matched)),
                  false});
  if (edge_size > 0) {
    repl.push_back({Sha1::digest_of({bytes->data() + acc, edge_size}),
                    e.offset + acc, static_cast<std::uint32_t>(edge_size), 1,
                    false});
  }
  if (rem_size > 0) {
    const std::uint32_t rem_chunks = static_cast<std::uint32_t>(std::max<std::int64_t>(
        1, static_cast<std::int64_t>(e.chunk_count) -
               static_cast<std::int64_t>(matched) - (edge_size > 0 ? 1 : 0)));
    repl.push_back({Sha1::digest_of({bytes->data() + acc + edge_size, rem_size}),
                    e.offset + acc + edge_size,
                    static_cast<std::uint32_t>(rem_size), rem_chunks, false});
  }
  splice(m, name, index, std::move(repl));

  out.dup_segments.push_back(
      {look.front().file_offset, m.chunk_name(), e.offset, acc});
  out.dup_chunks += matched;
  out.dup_bytes += acc;
  for (std::size_t j = 0; j < matched; ++j) recycle(look[j]);
  look.erase(look.begin(), look.begin() + static_cast<std::ptrdiff_t>(matched));
  return true;
}

MatchExtender::Outcome MatchExtender::extend(
    const ManifestCache::Located& loc, const StreamChunk& anchor,
    std::deque<StreamChunk>& pending, const PullFn& pull) {
  Outcome out;
  Manifest& m = *loc.manifest;
  const Digest name = loc.manifest_name;
  std::size_t i = loc.entry_index;

  // The anchor chunk itself.
  {
    const ManifestEntry& e = m.entries()[i];
    out.dup_segments.push_back({anchor.file_offset, m.chunk_name(), e.offset,
                                e.size});
    out.dup_chunks += 1;
    out.dup_bytes += e.size;
  }

  // --- Backward Match Extension --------------------------------------
  if (cfg_.enable_backward_extension) {
    std::size_t bi = i;
    // File offset the matched region must end at: initially the anchor's
    // start; moves backward as entries match. Buffered chunks that are not
    // file-contiguous with it (survivors flanking an earlier duplicate
    // slice) cannot be part of this duplicate region.
    std::uint64_t frontier = anchor.file_offset;
    while (bi > 0 && !pending.empty()) {
      const ManifestEntry e = m.entries()[bi - 1];  // copy: splice safety
      // Gather a file-contiguous pending-tail run ending at the frontier
      // whose total size equals the entry size.
      std::uint64_t acc = 0;
      std::size_t k = 0;
      while (k < pending.size() && acc < e.size) {
        const StreamChunk& pc = pending[pending.size() - 1 - k];
        if (pc.file_offset + pc.bytes.size() + acc != frontier) break;
        acc += pc.bytes.size();
        ++k;
      }
      if (acc == e.size &&
          hash_run(pending, pending.size() - k, k) == e.hash) {
        out.dup_segments.push_back(
            {pending[pending.size() - k].file_offset, m.chunk_name(), e.offset,
             e.size});
        out.dup_chunks += k;
        out.dup_bytes += e.size;
        frontier -= e.size;
        for (std::size_t j = pending.size() - k; j < pending.size(); ++j) {
          recycle(pending[j]);
        }
        pending.erase(pending.end() - static_cast<std::ptrdiff_t>(k),
                      pending.end());
        --bi;
        continue;
      }
      // Mismatch. Re-chunk only merged entries that may straddle an edge.
      if (e.chunk_count > 1) {
        const std::size_t before = m.entries().size();
        hhr_backward(m, name, bi - 1, pending, frontier, out);
        i += m.entries().size() - before;  // splice shifts the anchor index
      }
      break;
    }
  }

  // --- Forward Match Extension ----------------------------------------
  std::deque<StreamChunk> look;
  std::uint64_t look_bytes = 0;
  auto ensure_look = [&](std::uint64_t need) {
    while (look_bytes < need) {
      auto c = pull();
      if (!c) return;
      look_bytes += c->bytes.size();
      look.push_back(std::move(*c));
    }
  };

  std::size_t fi = i;
  while (fi + 1 < m.entries().size()) {
    const ManifestEntry e = m.entries()[fi + 1];
    ensure_look(e.size);
    std::uint64_t acc = 0;
    std::size_t k = 0;
    while (k < look.size() && acc < e.size) {
      acc += look[k].bytes.size();
      ++k;
    }
    if (acc == e.size && hash_run(look, 0, k) == e.hash) {
      out.dup_segments.push_back(
          {look.front().file_offset, m.chunk_name(), e.offset, e.size});
      out.dup_chunks += k;
      out.dup_bytes += e.size;
      for (std::size_t j = 0; j < k; ++j) {
        look_bytes -= look.front().bytes.size();
        recycle(look.front());
        look.pop_front();
      }
      ++fi;
      continue;
    }
    if (e.chunk_count > 1 && !look.empty()) {
      const std::uint64_t before_bytes = look_bytes;
      const std::size_t before_count = look.size();
      hhr_forward(m, name, fi + 1, look, out);
      // hhr_forward consumed matched chunks from the front.
      if (look.size() != before_count) {
        look_bytes = 0;
        for (const auto& c : look) look_bytes += c.bytes.size();
      } else {
        look_bytes = before_bytes;
      }
    }
    break;
  }

  out.leftover = std::move(look);
  return out;
}

}  // namespace mhd
