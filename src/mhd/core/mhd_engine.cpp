#include "mhd/core/mhd_engine.h"

#include <algorithm>

#include "mhd/chunk/chunk_stream.h"
#include "mhd/chunk/rabin_chunker.h"
#include "mhd/format/file_manifest.h"

namespace mhd {

MhdEngine::MhdEngine(ObjectStore& store, const EngineConfig& config)
    : DedupEngine(store, config),
      cache_(store, config.manifest_cache_capacity, /*hook_flags=*/true,
             config.manifest_cache_bytes, &fp_index()),
      bloom_(config.bloom_bytes),
      extender_(store, cache_, cfg_, counters_) {
  if (cfg_.use_bloom) seed_bloom_from_hooks(bloom_, store.backend());
  restore_warm_state(cache_);
}

std::optional<ManifestCache::Located> MhdEngine::find_anchor(
    const Digest& hash) {
  if (auto loc = cache_.lookup_hash(hash)) return loc;
  if (sampled_mode()) {
    // Similarity path only: the bloom + get_hook fallback below assumes
    // every stored fingerprint is findable; the sampled tier deliberately
    // forgets, and a miss here is stored fresh (the loss meter counts it).
    if (load_champions(cache_, hash)) return cache_.lookup_hash(hash);
    return std::nullopt;
  }
  if (cfg_.use_bloom && !bloom_.maybe_contains(hash.prefix64())) {
    return std::nullopt;
  }
  const auto hook = degrade_on_corruption(
      [&] { return store_.get_hook(hash, AccessKind::kSmallChunkQuery); });
  if (!hook || hook->size() != Digest::kSize) return std::nullopt;
  Digest manifest_name;
  std::copy(hook->begin(), hook->end(), manifest_name.bytes.begin());
  if (degrade_on_corruption([&] { return cache_.load(manifest_name); }) ==
      nullptr) {
    return std::nullopt;
  }
  return cache_.lookup_hash(hash);
}

void MhdEngine::flush_pending(FileCtx& ctx, std::size_t count) {
  count = std::min(count, ctx.pending.size());
  if (count == 0) return;
  if (!ctx.writer) ctx.writer.emplace(store_.open_chunk(ctx.dig.hex()));

  std::size_t done = 0;
  while (done < count) {
    std::size_t group = std::min<std::size_t>(cfg_.sd, count - done);
    // Paper, Section III: "SHM can be performed on the contiguous
    // non-duplicate chunks of the original input stream, to guarantee each
    // non-duplicate data slice of the input stream owns at least one
    // Hook." Cut the group at the first file-discontinuity (a duplicate
    // slice was removed between those chunks), so the next slice starts
    // with its own Hook — the anchor a later backup needs.
    for (std::size_t j = 1; j < group; ++j) {
      const StreamChunk& prev = ctx.pending[j - 1];
      if (prev.file_offset + prev.bytes.size() !=
          ctx.pending[j].file_offset) {
        group = j;
        break;
      }
    }

    // Group leader becomes a Hook: small-chunk granularity, addressable
    // from disk via a hash-named hook file pointing at this Manifest.
    {
      const StreamChunk& first = ctx.pending.front();
      ctx.manifest.add({first.hash, ctx.chunk_off,
                        static_cast<std::uint32_t>(first.bytes.size()), 1,
                        true});
      store_.put_hook(first.hash, ctx.dig.span());
      if (cfg_.use_bloom) bloom_.insert(first.hash.prefix64());
      ctx.writer->write(first.bytes);
      ctx.log.push_back({first.file_offset, ctx.dig, ctx.chunk_off,
                         first.bytes.size()});
      ctx.current.emplace(
          first.hash,
          std::make_pair(ctx.chunk_off,
                         static_cast<std::uint32_t>(first.bytes.size())));
      ctx.chunk_off += first.bytes.size();
      ++counters_.stored_chunks;
      recycle_chunk(std::move(ctx.pending.front().bytes));
      ctx.pending.pop_front();
      ++done;
    }

    const std::size_t rest = group - 1;
    if (rest == 0) continue;

    if (cfg_.enable_shm) {
      // Sampling and Hash Merging: the SD-1 chunks between hooks are
      // represented by a single hash over their concatenation.
      Sha1 merged;
      std::uint64_t merged_size = 0;
      const std::uint64_t merged_off = ctx.chunk_off;
      for (std::size_t j = 0; j < rest; ++j) {
        const StreamChunk& c = ctx.pending.front();
        merged.update(c.bytes);
        merged_size += c.bytes.size();
        ctx.writer->write(c.bytes);
        ctx.log.push_back({c.file_offset, ctx.dig, ctx.chunk_off,
                           c.bytes.size()});
        ctx.current.emplace(
            c.hash, std::make_pair(ctx.chunk_off,
                                   static_cast<std::uint32_t>(c.bytes.size())));
        ctx.chunk_off += c.bytes.size();
        ++counters_.stored_chunks;
        recycle_chunk(std::move(ctx.pending.front().bytes));
        ctx.pending.pop_front();
        ++done;
      }
      ctx.manifest.add({merged.digest(), merged_off,
                        static_cast<std::uint32_t>(merged_size),
                        static_cast<std::uint32_t>(rest), false});
      ++counters_.shm_merged_hashes;
    } else {
      // Ablation: hook sampling without hash merging — every chunk keeps
      // its own entry (metadata grows like plain CDC).
      for (std::size_t j = 0; j < rest; ++j) {
        const StreamChunk& c = ctx.pending.front();
        ctx.manifest.add({c.hash, ctx.chunk_off,
                          static_cast<std::uint32_t>(c.bytes.size()), 1,
                          false});
        ctx.writer->write(c.bytes);
        ctx.log.push_back({c.file_offset, ctx.dig, ctx.chunk_off,
                           c.bytes.size()});
        ctx.current.emplace(
            c.hash, std::make_pair(ctx.chunk_off,
                                   static_cast<std::uint32_t>(c.bytes.size())));
        ctx.chunk_off += c.bytes.size();
        ++counters_.stored_chunks;
        recycle_chunk(std::move(ctx.pending.front().bytes));
        ctx.pending.pop_front();
        ++done;
      }
    }
  }
}

void MhdEngine::process_file(const std::string& file_name, ByteSource& data) {
  FileCtx ctx;
  // The FileManifest is addressed by the file name; the DiskChunk/Manifest
  // pair gets a collision-free store name (re-ingesting a file name must
  // not touch the immutable chunks other manifests may reference).
  ctx.dig = unique_store_digest(file_digest(file_name));
  ctx.manifest = Manifest(ctx.dig);

  const auto stream = open_ingest(data, cfg_.ecs);

  auto pull_chunk = [&]() -> std::optional<StreamChunk> {
    if (!ctx.inbox.empty()) {
      StreamChunk c = std::move(ctx.inbox.front());
      ctx.inbox.pop_front();
      return c;
    }
    ByteVec bytes;
    StreamChunk c;
    if (!stream->next(bytes, c.hash)) return std::nullopt;
    c.file_offset = ctx.file_offset;
    ctx.file_offset += bytes.size();
    counters_.input_bytes += bytes.size();
    ++counters_.input_chunks;
    c.bytes = std::move(bytes);
    return c;
  };

  while (auto chunk = pull_chunk()) {
    auto loc = find_anchor(chunk->hash);
    if (loc) {
      const ManifestEntry& e = loc->manifest->entries()[loc->entry_index];
      if (e.size == chunk->bytes.size() &&
          admit_duplicate(loc->manifest->chunk_name(), e.offset, e.size)) {
        // extend() may HHR-splice new entries into this manifest and
        // reallocate its entry vector, so `e` dies here — keep the size.
        const std::uint32_t anchor_size = e.size;
        end_dup_run();
        auto outcome =
            extender_.extend(*loc, *chunk, ctx.pending, pull_chunk);
        ++counters_.dup_slices;
        counters_.dup_chunks += outcome.dup_chunks;
        counters_.dup_bytes += outcome.dup_bytes;
        // The extension walked past the anchor inside the same DiskChunk;
        // the rewrite stream advances by everything the slice consumed.
        if (outcome.dup_bytes > anchor_size) {
          advance_rewrite_stream(outcome.dup_bytes - anchor_size);
        }
        for (auto& seg : outcome.dup_segments) ctx.log.push_back(seg);
        // Unmatched prefetches re-enter the pipeline in stream order.
        while (!outcome.leftover.empty()) {
          ctx.inbox.push_front(std::move(outcome.leftover.back()));
          outcome.leftover.pop_back();
        }
        // The anchor's bytes were fully consumed by the match.
        recycle_chunk(std::move(chunk->bytes));
        continue;
      }
    }
    // Intra-file duplicate: a chunk identical to one already flushed to
    // this file's own DiskChunk (the manifest is not anchorable until file
    // end, so this side map covers e.g. repeated zero pages).
    if (const auto it = ctx.current.find(chunk->hash);
        it != ctx.current.end() &&
        it->second.second == chunk->bytes.size() &&
        admit_duplicate(ctx.dig, it->second.first, it->second.second)) {
      note_duplicate(chunk->bytes.size());
      ctx.log.push_back({chunk->file_offset, ctx.dig, it->second.first,
                         it->second.second});
      recycle_chunk(std::move(chunk->bytes));
      continue;
    }
    note_unique(chunk->bytes.size());
    ctx.pending.push_back(std::move(*chunk));
    if (ctx.pending.size() >= 2 * static_cast<std::size_t>(cfg_.sd)) {
      flush_pending(ctx, cfg_.sd);
    }
  }
  flush_pending(ctx, ctx.pending.size());

  if (ctx.writer) {
    ctx.writer->close();
    store_.put_manifest(ctx.dig.hex(), ctx.manifest.serialize(true));
    cache_.insert(ctx.dig, std::move(ctx.manifest), /*dirty=*/false);
    ++counters_.files_with_data;
  }

  // Build the run-length FileManifest from the segment log.
  std::sort(ctx.log.begin(), ctx.log.end(),
            [](const FileSegment& a, const FileSegment& b) {
              return a.file_offset < b.file_offset;
            });
  // Invariant: the segments tile the file exactly — every byte resolved
  // once, no gaps, no overlaps. A violation means a match-extension bug.
  std::uint64_t cursor = 0;
  for (const auto& seg : ctx.log) {
    if (seg.file_offset != cursor) {
      throw std::logic_error("MhdEngine: segment log does not tile " +
                             file_name);
    }
    cursor += seg.length;
  }
  if (cursor != ctx.file_offset) {
    throw std::logic_error("MhdEngine: segment log length mismatch for " +
                           file_name);
  }
  FileManifest fm(file_name);
  for (const auto& seg : ctx.log) {
    fm.add_range(seg.chunk_name, seg.chunk_offset, seg.length,
                 /*coalesce=*/true);
  }
  store_.put_file_manifest(file_digest(file_name).hex(), fm.serialize());
}

void MhdEngine::finish() {
  cache_.flush();
  persist_index_state(cache_);
}

bool MhdEngine::flush_session() {
  if (rewrite_controller() != nullptr) {
    finish();
    return false;
  }
  if (cfg_.index_impl == IndexImpl::kDisk ||
      cfg_.index_impl == IndexImpl::kSampled) {
    // Keep the cache resident: the fresh-engine baseline warm-loads the
    // persisted residency list anyway, so staying warm IS the baseline.
    // The sampled tier additionally persists its hook table + loss meter
    // here, making the session boundary a commit point for the tier.
    cache_.flush();
    persist_index_state(cache_);
  } else {
    // A fresh mem-index engine starts with an empty cache and index;
    // evict-all reproduces that exactly (the mirror invariant drains the
    // MemIndex with the cache).
    cache_.reset();
  }
  return true;
}

}  // namespace mhd
