#include "mhd/core/manifest_cache.h"

namespace mhd {

ManifestCache::ManifestCache(ObjectStore& store, std::size_t capacity,
                             bool hook_flags, std::uint64_t max_bytes)
    : store_(store),
      hook_flags_(hook_flags),
      lru_(
          capacity,
          [this](const Digest& name, Slot& slot) {
            write_back(name, slot);
            drop_from_global(name, slot);
          },
          max_bytes, [](const Slot& slot) { return slot.weight; }) {}

ManifestCache::~ManifestCache() = default;

void ManifestCache::write_back(const Digest& name, Slot& slot) {
  if (!slot.manifest.dirty()) return;
  store_.put_manifest(name.hex(), slot.manifest.serialize(hook_flags_));
  slot.manifest.set_dirty(false);
}

void ManifestCache::drop_from_global(const Digest& name, const Slot& slot) {
  for (const auto& entry : slot.manifest.entries()) {
    auto it = global_.find(entry.hash);
    if (it != global_.end() && it->second == name) global_.erase(it);
  }
  // Hashes that were replaced by HHR may linger in global_; they self-heal
  // in lookup_hash when the confirmation probe fails.
}

void ManifestCache::ensure_index(const Digest& name, Slot& slot) {
  if (!slot.index_stale) return;
  slot.by_hash.clear();
  const auto& entries = slot.manifest.entries();
  slot.by_hash.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    slot.by_hash.emplace(entries[i].hash, i);
    global_.insert_or_assign(entries[i].hash, name);
  }
  slot.index_stale = false;
}

std::optional<ManifestCache::Located> ManifestCache::lookup_hash(
    const Digest& chunk_hash) {
  const auto it = global_.find(chunk_hash);
  if (it == global_.end()) return std::nullopt;
  const Digest owner = it->second;
  Slot* slot = lru_.get(owner);
  if (slot == nullptr) {
    // Owner was evicted and the global entry is stale.
    global_.erase(it);
    return std::nullopt;
  }
  ensure_index(owner, *slot);
  const auto hit = slot->by_hash.find(chunk_hash);
  if (hit == slot->by_hash.end()) {
    // Hash disappeared from the manifest (HHR rewrote it): self-heal.
    global_.erase(chunk_hash);
    return std::nullopt;
  }
  return Located{owner, &slot->manifest, hit->second};
}

Manifest* ManifestCache::load(const Digest& name) {
  if (Slot* slot = lru_.get(name)) {
    ensure_index(name, *slot);
    return &slot->manifest;
  }
  const auto raw = store_.get_manifest(name.hex());
  if (!raw) return nullptr;
  auto manifest = Manifest::deserialize(*raw);
  if (!manifest) return nullptr;
  ++loads_;
  Slot slot;
  slot.manifest = std::move(*manifest);
  slot.weight = 64 + slot.manifest.entries().size() * 37;
  Slot& placed = lru_.put(name, std::move(slot));
  ensure_index(name, placed);
  return &placed.manifest;
}

Manifest* ManifestCache::cached(const Digest& name) {
  Slot* slot = lru_.get(name);
  if (slot == nullptr) return nullptr;
  ensure_index(name, *slot);
  return &slot->manifest;
}

Manifest* ManifestCache::insert(const Digest& name, Manifest manifest,
                                bool dirty) {
  Slot slot;
  slot.manifest = std::move(manifest);
  slot.manifest.set_dirty(dirty);
  slot.weight = 64 + slot.manifest.entries().size() * 37;
  Slot& placed = lru_.put(name, std::move(slot));
  ensure_index(name, placed);
  return &placed.manifest;
}

void ManifestCache::mark_dirty(const Digest& name) {
  if (Slot* slot = lru_.peek(name)) slot->manifest.set_dirty(true);
}

void ManifestCache::invalidate_index(const Digest& name) {
  if (Slot* slot = lru_.peek(name)) {
    slot->index_stale = true;
    // Rebuild eagerly: HHR's new entry hashes (the duplicate part and the
    // EdgeHash) must become anchorable immediately — a lazy rebuild would
    // only happen after some *other* hash of this manifest is hit.
    ensure_index(name, *slot);
  }
}

void ManifestCache::flush() {
  lru_.for_each([this](const Digest& name, Slot& slot) {
    write_back(name, slot);
  });
}

}  // namespace mhd
