#include "mhd/core/manifest_cache.h"

#include "mhd/index/mem_index.h"
#include "mhd/index/sampled_index.h"
#include "mhd/store/container_store.h"
#include "mhd/store/store_errors.h"

namespace mhd {

ManifestCache::ManifestCache(ObjectStore& store, std::size_t capacity,
                             bool hook_flags, std::uint64_t max_bytes,
                             FingerprintIndex* index)
    : store_(store),
      containers_(dynamic_cast<const ContainerBackend*>(&store.backend())),
      sampled_(dynamic_cast<SampledIndex*>(index)),
      hook_flags_(hook_flags),
      lru_(
          capacity,
          [this](const Digest& name, Slot& slot) {
            write_back(name, slot);
            drop_from_index(name, slot);
          },
          max_bytes, [](const Slot& slot) { return slot.weight; }),
      owned_index_(index == nullptr ? std::make_unique<MemIndex>() : nullptr),
      index_(index == nullptr ? owned_index_.get() : index) {}

ManifestCache::~ManifestCache() = default;

void ManifestCache::write_back(const Digest& name, Slot& slot) {
  if (!slot.manifest.dirty()) return;
  store_.put_manifest(name.hex(), slot.manifest.serialize(hook_flags_));
  slot.manifest.set_dirty(false);
}

void ManifestCache::drop_from_index(const Digest& name, const Slot& slot) {
  for (const auto& entry : slot.manifest.entries()) {
    const auto hit = index_->lookup(entry.hash);
    if (hit && hit->manifest == name) index_->erase(entry.hash);
  }
  // Hashes HHR removed from this manifest were already erased by
  // ensure_index's removed-hash pass, so nothing can linger.
}

void ManifestCache::ensure_index(const Digest& name, Slot& slot) {
  if (!slot.index_stale) return;
  // Hashes present in the previous build of this manifest's table but not
  // in the current entries were rewritten by HHR: erase their index
  // entries eagerly instead of leaving them to linger until eviction
  // (the historical unbounded-growth leak of the global map).
  std::vector<Digest> previous;
  previous.reserve(slot.by_hash.size());
  for (const auto& [hash, idx] : slot.by_hash) previous.push_back(hash);
  slot.by_hash.clear();
  const auto& entries = slot.manifest.entries();
  slot.by_hash.reserve(entries.size());
  const std::string chunk_hex =
      containers_ ? slot.manifest.chunk_name().hex() : std::string();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    slot.by_hash.emplace(entries[i].hash, i);
    IndexEntry ie{name, entries[i].offset};
    if (containers_ != nullptr) {
      // Location record: resolve the chunk's physical container so
      // index-only consumers see placement (ContainerBackend::locate stays
      // the authoritative query; nullopt leaves the kNoContainer sentinel).
      if (const auto c = containers_->locate(chunk_hex, entries[i].offset)) {
        ie.container = *c;
      }
    }
    index_->put(entries[i].hash, ie);
  }
  for (const auto& hash : previous) {
    if (slot.by_hash.count(hash) > 0) continue;
    const auto hit = index_->lookup(hash);
    if (hit && hit->manifest == name) index_->erase(hash);
  }
  slot.index_stale = false;
}

std::optional<ManifestCache::Located> ManifestCache::lookup_hash(
    const Digest& chunk_hash) {
  const auto hit = index_->lookup(chunk_hash);
  if (!hit) return std::nullopt;
  const Digest owner = hit->manifest;
  Slot* slot = lru_.get(owner);
  if (slot == nullptr) {
    // Owner was evicted and the index entry is stale.
    index_->erase(chunk_hash);
    return std::nullopt;
  }
  ensure_index(owner, *slot);
  const auto found = slot->by_hash.find(chunk_hash);
  if (found == slot->by_hash.end()) {
    // Hash disappeared from the manifest (HHR rewrote it): self-heal.
    index_->erase(chunk_hash);
    return std::nullopt;
  }
  return Located{owner, &slot->manifest, found->second};
}

Manifest* ManifestCache::load(const Digest& name) {
  if (Slot* slot = lru_.get(name)) {
    ensure_index(name, *slot);
    return &slot->manifest;
  }
  const auto raw = store_.get_manifest(name.hex());
  if (!raw) return nullptr;
  auto manifest = Manifest::deserialize(*raw);
  if (!manifest) return nullptr;
  ++loads_;
  Slot slot;
  slot.manifest = std::move(*manifest);
  slot.weight = 64 + slot.manifest.entries().size() * 37;
  Slot& placed = lru_.put(name, std::move(slot));
  ensure_index(name, placed);
  return &placed.manifest;
}

Manifest* ManifestCache::cached(const Digest& name) {
  Slot* slot = lru_.get(name);
  if (slot == nullptr) return nullptr;
  ensure_index(name, *slot);
  return &slot->manifest;
}

Manifest* ManifestCache::insert(const Digest& name, Manifest manifest,
                                bool dirty) {
  if (sampled_ != nullptr) {
    // A freshly built manifest is the stream of chunks just STORED (loads
    // and warm reloads never come through insert): exactly what the
    // sampled tier's loss meter must watch for re-stored duplicates.
    for (const auto& entry : manifest.entries()) {
      sampled_->note_fresh_chunk(entry.hash, entry.size);
    }
  }
  Slot slot;
  slot.manifest = std::move(manifest);
  slot.manifest.set_dirty(dirty);
  slot.weight = 64 + slot.manifest.entries().size() * 37;
  Slot& placed = lru_.put(name, std::move(slot));
  ensure_index(name, placed);
  return &placed.manifest;
}

void ManifestCache::mark_dirty(const Digest& name) {
  if (Slot* slot = lru_.peek(name)) slot->manifest.set_dirty(true);
}

void ManifestCache::invalidate_index(const Digest& name) {
  if (Slot* slot = lru_.peek(name)) {
    slot->index_stale = true;
    // Rebuild eagerly: HHR's new entry hashes (the duplicate part and the
    // EdgeHash) must become anchorable immediately — a lazy rebuild would
    // only happen after some *other* hash of this manifest is hit.
    ensure_index(name, *slot);
  }
}

void ManifestCache::flush() {
  lru_.for_each([this](const Digest& name, Slot& slot) {
    write_back(name, slot);
  });
}

void ManifestCache::reset() {
  // The eviction callback writes dirty manifests back and drops their
  // entries from the index, so a full flush leaves the index empty.
  lru_.flush();
}

std::vector<Digest> ManifestCache::resident_names() {
  std::vector<Digest> names;
  names.reserve(lru_.size());
  lru_.for_each([&](const Digest& name, Slot&) { names.push_back(name); });
  return names;
}

void ManifestCache::warm_load(const std::vector<Digest>& names) {
  // Insert least-recently-used first so put() recreates the recency order
  // the snapshot was taken with.
  for (auto it = names.rbegin(); it != names.rend(); ++it) {
    if (lru_.contains(*it)) continue;
    std::optional<ByteVec> raw;
    try {
      raw = store_.backend().get(Ns::kManifest, it->hex());
    } catch (const CorruptObjectError&) {
      continue;  // skipped: the warm set is advisory
    }
    if (!raw) continue;
    auto manifest = Manifest::deserialize(*raw);
    if (!manifest) continue;
    Slot slot;
    slot.manifest = std::move(*manifest);
    slot.weight = 64 + slot.manifest.entries().size() * 37;
    Slot& placed = lru_.put(*it, std::move(slot));
    ensure_index(*it, placed);
  }
}

}  // namespace mhd
