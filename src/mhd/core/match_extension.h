// Bi-Directional Match Extension (BME/FME) + Hysteresis Hash Re-chunking
// (HHR) — Section III of the paper.
//
// When an incoming chunk's hash anchors on a Manifest entry, the match is
// extended in both directions:
//   * backward over the engine's buffered not-yet-stored chunks, and
//   * forward over prefetched incoming chunks,
// by recomputing hashes over buffered bytes and comparing them with the
// neighboring Manifest entries. When the mismatching entry is an SHM-merged
// region (chunk_count > 1) that straddles a duplicate/non-duplicate edge,
// its bytes are reloaded from the DiskChunk (one disk access), byte-compared
// at buffered-chunk granularity, and the entry is re-chunked into at most
// three entries: a remainder, an EdgeHash (same size as the first
// mismatching new chunk — it pins the discovered edge so an identical
// future slice match-stops without another reload), and the duplicate part.
// The Manifest is marked dirty and written back on eviction/flush.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "mhd/core/manifest_cache.h"
#include "mhd/dedup/engine.h"

namespace mhd {

/// A chunk in flight: bytes + content hash + its byte offset in the file.
struct StreamChunk {
  ByteVec bytes;
  Digest hash;
  std::uint64_t file_offset = 0;
};

/// One contiguous byte range of the reconstructed file, resolved to a
/// stored DiskChunk region. The engine sorts these by file_offset to build
/// the FileManifest.
struct FileSegment {
  std::uint64_t file_offset = 0;
  Digest chunk_name{};
  std::uint64_t chunk_offset = 0;
  std::uint64_t length = 0;
};

class MatchExtender {
 public:
  /// Pulls the next incoming chunk (engine's inbox, then the chunker).
  using PullFn = std::function<std::optional<StreamChunk>()>;

  MatchExtender(ObjectStore& store, ManifestCache& cache,
                const EngineConfig& config, EngineCounters& counters)
      : store_(store), cache_(cache), cfg_(config), counters_(counters) {}

  struct Outcome {
    std::vector<FileSegment> dup_segments;  ///< any order; engine sorts
    std::deque<StreamChunk> leftover;  ///< prefetched but not matched (order)
    std::uint64_t dup_chunks = 0;
    std::uint64_t dup_bytes = 0;
  };

  /// Extends the duplicate match anchored at `loc` (whose entry the chunk
  /// `anchor` equals). Backward extension consumes matched chunks from the
  /// tail of `pending`; forward extension pulls via `pull` and returns
  /// unmatched prefetches in Outcome::leftover.
  Outcome extend(const ManifestCache::Located& loc, const StreamChunk& anchor,
                 std::deque<StreamChunk>& pending, const PullFn& pull);

 private:
  /// HHR chunk-byte reload with graceful degradation: a stored region that
  /// fails CRC verification reads as "no match" (the extension simply
  /// stops, the data is re-stored as non-duplicate) and is counted under
  /// corruption_fallbacks — ingest never aborts on a rotten old chunk.
  std::optional<ByteVec> reload_chunk_range(const Manifest& m,
                                            const ManifestEntry& e);

  /// Splices entries[index] -> replacement; returns entries added - 1.
  std::size_t splice(Manifest& m, const Digest& name, std::size_t index,
                     std::vector<ManifestEntry> replacement);

  /// Backward HHR at entries[index]; consumes matched pending-tail chunks.
  /// `frontier` is the file offset the matched run must end at (buffered
  /// chunks are only byte-compared while they are file-contiguous with the
  /// already-matched region). Returns true if duplicate bytes were found.
  bool hhr_backward(Manifest& m, const Digest& name, std::size_t index,
                    std::deque<StreamChunk>& pending, std::uint64_t frontier,
                    Outcome& out);

  /// Forward HHR at entries[index]; consumes matched lookahead-front chunks.
  bool hhr_forward(Manifest& m, const Digest& name, std::size_t index,
                   std::deque<StreamChunk>& look, Outcome& out);

  ObjectStore& store_;
  ManifestCache& cache_;
  const EngineConfig& cfg_;
  EngineCounters& counters_;
};

}  // namespace mhd
