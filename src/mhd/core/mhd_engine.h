// MhdEngine — the paper's Metadata Harnessing Deduplication algorithm
// (BF-MHD when config().use_bloom, sparse-index-free variant otherwise).
//
// Pipeline per Fig. 4: Rabin-chunk the file stream at ECS; SHA-1 each
// chunk; duplicate anchors come from the Manifest cache, else the bloom
// filter gates an on-disk Hook lookup which loads the owning Manifest into
// the LRU cache. Anchored duplicates are grown by Bi-Directional Match
// Extension with Hysteresis Hash Re-chunking (match_extension.h).
// Non-duplicates wait in a 2*SD-chunk buffer: when it fills, the first SD
// chunks are flushed to the per-file DiskChunk and represented by exactly
// two Manifest entries — a Hook (first chunk, written as a hash-named hook
// file pointing at the Manifest) and one merged hash over the other SD-1
// chunks (Sampling and Hash Merging). FileManifest entries are run-length:
// one per duplicate/non-duplicate slice.
#pragma once

#include <deque>
#include <unordered_map>

#include "mhd/core/manifest_cache.h"
#include "mhd/core/match_extension.h"
#include "mhd/dedup/engine.h"

namespace mhd {

class MhdEngine final : public DedupEngine {
 public:
  MhdEngine(ObjectStore& store, const EngineConfig& config);

  std::string name() const override {
    return cfg_.use_bloom ? "BF-MHD" : "MHD";
  }

  void finish() override;

  /// Warm-session flush (see DedupEngine::flush_session). Reuse after the
  /// flush is bit-identical to a fresh engine because each piece of state
  /// either equals what a fresh construction would rebuild or is reset:
  ///  * bloom: flush_pending inserted every written hook's prefix64, so
  ///    the warm filter bit-equals seed_bloom_from_hooks over the on-disk
  ///    hook set (a bloom is an order-independent OR-set);
  ///  * mem index: the cache is reset — eviction write-back empties the
  ///    mirror MemIndex, matching a fresh engine's empty cache/index;
  ///  * disk index: the cache is flushed and the index persisted while
  ///    both stay resident — PR 5's warm-restart proof shows a reopened
  ///    index + warm_load of the residency list reconstructs exactly this
  ///    state (warm_load's re-puts are no-op on disk);
  ///  * per-file state (FileCtx, MatchExtender) never outlives add_file.
  /// Returns false (discard) with a rewrite controller: its segment and
  /// utilization history is cross-session state a fresh engine would not
  /// have.
  bool flush_session() override;

  /// Manifests loaded from disk (paper TABLE V).
  std::uint64_t manifest_loads() const override {
    return cache_.manifest_loads();
  }

 protected:
  void process_file(const std::string& file_name, ByteSource& data) override;

 private:
  struct FileCtx {
    Digest dig{};
    Manifest manifest;
    std::optional<ChunkWriter> writer;
    std::uint64_t chunk_off = 0;      ///< append position in the DiskChunk
    std::uint64_t file_offset = 0;    ///< next incoming chunk's file offset
    std::deque<StreamChunk> pending;  ///< SHM buffer (capacity 2*SD)
    std::deque<StreamChunk> inbox;    ///< prefetched chunks to re-process
    std::vector<FileSegment> log;     ///< segments; sorted at file end
    /// Chunks already flushed to this file's own DiskChunk. The file's
    /// manifest only becomes visible to anchor detection at file end, so
    /// intra-file duplication (e.g. repeated zero pages of a VM image) is
    /// caught through this side map instead.
    std::unordered_map<Digest, std::pair<std::uint64_t, std::uint32_t>,
                       DigestHasher>
        current;
  };

  /// Flushes the first `count` pending chunks through SHM.
  void flush_pending(FileCtx& ctx, std::size_t count);

  /// Anchor detection for one incoming chunk hash (cache, bloom, hooks).
  std::optional<ManifestCache::Located> find_anchor(const Digest& hash);

  ManifestCache cache_;
  BloomFilter bloom_;
  MatchExtender extender_;
};

}  // namespace mhd
