// ManifestCache — the in-RAM Manifest working set.
//
// The paper: "The cache contains a number of Manifests, each of which is
// organized as a hash table. An incoming duplicate chunk is detected if
// its hash matches a Manifest in the cache... If the cache becomes full,
// one Manifest would be freed following the LRU policy. A Manifest that
// has been set dirty is written back to the disk before it is freed."
//
// This class implements exactly that: per-manifest hash tables plus a
// chunk-hash -> owning-manifest index (a FingerprintIndex — in-RAM by
// default, or the persistent disk index when the engine injects one) for
// O(1) duplicate detection across the whole cached set, LRU eviction with
// dirty write-back through the ObjectStore (counting kManifestOut), and
// lazy index rebuilds after HHR mutates a manifest's entries.
//
// Invariant: the fingerprint index mirrors exactly the entries of the
// cache-resident manifests — entries are added when a manifest's hash
// table is built and erased on eviction or when HHR removes the hash.
// That mirror is what makes the mem and disk index implementations
// behaviorally identical, and (with the warm list) what lets a reopened
// process resume with the same cache/index state it closed with.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mhd/container/lru_cache.h"
#include "mhd/format/manifest.h"
#include "mhd/index/fingerprint_index.h"
#include "mhd/store/object_store.h"

namespace mhd {

class ContainerBackend;
class SampledIndex;

class ManifestCache {
 public:
  /// `hook_flags` selects the serialized entry format (MHD's 37-byte
  /// entries vs the baselines' 36-byte entries). `max_bytes` caps the
  /// total serialized size of cached manifests (0 = count-limited only).
  /// `index` routes duplicate detection through a caller-owned
  /// FingerprintIndex; nullptr keeps a private MemIndex (the historical
  /// behavior, bit-identical).
  ManifestCache(ObjectStore& store, std::size_t capacity, bool hook_flags,
                std::uint64_t max_bytes = 0,
                FingerprintIndex* index = nullptr);
  ~ManifestCache();

  ManifestCache(const ManifestCache&) = delete;
  ManifestCache& operator=(const ManifestCache&) = delete;

  struct Located {
    Digest manifest_name;
    Manifest* manifest;       ///< owned by the cache; do not retain
    std::size_t entry_index;  ///< first entry whose hash matched
  };

  /// Duplicate detection: is this chunk hash present in any cached
  /// manifest? Touches the owning manifest's LRU recency on hit.
  std::optional<Located> lookup_hash(const Digest& chunk_hash);

  /// Returns the cached manifest, or loads it from the store (counting a
  /// kManifestIn access). nullptr if it does not exist on disk either.
  Manifest* load(const Digest& name);

  /// Returns the manifest only if already cached (no disk access).
  Manifest* cached(const Digest& name);

  /// Inserts a freshly built manifest. `dirty` schedules a write-back on
  /// eviction/flush; callers that already persisted it pass false.
  Manifest* insert(const Digest& name, Manifest manifest, bool dirty);

  void mark_dirty(const Digest& name);

  /// Must be called after mutating a cached manifest's entries (HHR);
  /// the hash indexes are rebuilt lazily on next lookup.
  void invalidate_index(const Digest& name);

  /// Writes every dirty manifest back to the store (end of run).
  void flush();

  /// Evicts everything: dirty manifests are written back and every entry
  /// leaves the fingerprint index (the mirror invariant empties it). After
  /// reset() the cache is indistinguishable from a freshly constructed one
  /// over the same store — the session flush boundary the daemon's warm
  /// per-tenant engines use to stay bit-identical to fresh-engine runs.
  void reset();

  /// Cached manifest names, most-recently-used first (the persistent
  /// index's warm-restart list).
  std::vector<Digest> resident_names();

  /// Reloads `names` (an earlier resident_names() snapshot) from the
  /// store, preserving recency. Reads bypass access accounting and the
  /// manifest_loads counter: a warm reload restores state the
  /// uninterrupted run never lost, so it must not show up in the paper's
  /// TABLE V. Missing or corrupt manifests are skipped.
  void warm_load(const std::vector<Digest>& names);

  FingerprintIndex& index() { return *index_; }

  /// Number of manifests loaded from disk (the paper's TABLE V).
  std::uint64_t manifest_loads() const { return loads_; }
  std::uint64_t evictions() const { return lru_.eviction_count(); }
  std::size_t size() const { return lru_.size(); }

 private:
  struct Slot {
    Manifest manifest;
    std::unordered_multimap<Digest, std::size_t, DigestHasher> by_hash;
    bool index_stale = true;
    /// Byte weight snapshot taken at insertion (stable across HHR edits so
    /// the cache's weight accounting never underflows).
    std::uint64_t weight = 0;
  };

  void write_back(const Digest& name, Slot& slot);
  void ensure_index(const Digest& name, Slot& slot);
  void drop_from_index(const Digest& name, const Slot& slot);

  ObjectStore& store_;
  /// Non-null when the store packs containers: index entries then carry
  /// the chunk's container id as a location record (advisory hint).
  const ContainerBackend* containers_ = nullptr;
  /// Non-null when the injected index is the sampled similarity tier:
  /// insert() then feeds every freshly stored chunk to its loss meter
  /// (sampled_missed_dup_bytes — measured, not hidden).
  SampledIndex* sampled_ = nullptr;
  bool hook_flags_;
  LruCache<Digest, Slot, DigestHasher> lru_;
  std::unique_ptr<FingerprintIndex> owned_index_;  ///< when none injected
  FingerprintIndex* index_;
  std::uint64_t loads_ = 0;
};

}  // namespace mhd
