#include "mhd/sim/parallel.h"

#include <atomic>
#include <exception>
#include <thread>

namespace mhd {

std::vector<ExperimentResult> run_experiments(
    const std::vector<RunSpec>& specs, const Corpus& corpus,
    unsigned threads) {
  std::vector<ExperimentResult> results(specs.size());
  if (specs.empty()) return results;

  if (threads == 0) threads = std::thread::hardware_concurrency();
  threads = std::max(1u, std::min<unsigned>(
                             threads, static_cast<unsigned>(specs.size())));

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::atomic<bool> failed{false};

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= specs.size() || failed.load(std::memory_order_acquire)) {
        return;
      }
      try {
        results[i] = run_experiment(specs[i], corpus);
      } catch (...) {
        // Record the first failure; later cells are abandoned.
        bool expected = false;
        if (failed.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
          first_error = std::current_exception();
        }
        return;
      }
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace mhd
