// Parallel experiment sweeps.
//
// A paper-reproduction sweep is embarrassingly parallel: each
// (algorithm, ECS, SD) cell runs a fresh engine against a private
// in-memory backend over the shared read-only corpus. run_experiments()
// fans the cells out over a thread pool; results land in input order and
// are bit-identical to serial execution (everything except measured CPU
// seconds is deterministic).
//
// Thread-safety contract: Corpus is immutable after construction and
// Corpus::open() hands each thread its own ImageSource; BlockSource::fill
// is a pure function. Engines, ObjectStores and backends are
// thread-private.
#pragma once

#include <vector>

#include "mhd/sim/runner.h"

namespace mhd {

/// Runs every spec against `corpus`, using up to `threads` worker threads
/// (0 = std::thread::hardware_concurrency). Results are positionally
/// aligned with `specs`. Exceptions from individual runs are rethrown on
/// the caller's thread after all workers join.
std::vector<ExperimentResult> run_experiments(
    const std::vector<RunSpec>& specs, const Corpus& corpus,
    unsigned threads = 0);

}  // namespace mhd
