// Experiment runner — drives any engine over a corpus and produces the
// ExperimentResult rows the bench harnesses print.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mhd/dedup/engine.h"
#include "mhd/metrics/metrics.h"
#include "mhd/store/memory_backend.h"
#include "mhd/workload/corpus.h"

namespace mhd {

/// Creates an engine by name: "cdc", "bimodal", "subchunk",
/// "sparseindexing", "fbc", "extremebinning", "mhd" (bloom per config),
/// "bf-mhd" (forces bloom).
/// Throws std::invalid_argument for unknown names.
std::unique_ptr<DedupEngine> make_engine(const std::string& name,
                                         ObjectStore& store,
                                         const EngineConfig& config);

/// Names accepted by make_engine, in the paper's comparison order.
const std::vector<std::string>& engine_names();

/// Related-work engines implemented beyond the paper's evaluation set
/// (FBC, Extreme Binning); also accepted by make_engine.
const std::vector<std::string>& extension_engine_names();

struct RunSpec {
  std::string algorithm = "bf-mhd";
  EngineConfig engine;
  DiskModel disk;
  /// Reconstruct every file and compare byte-exactly after the run
  /// (slow; throws std::runtime_error on mismatch).
  bool verify = false;
};

/// Runs the full corpus through a fresh engine + in-memory backend.
ExperimentResult run_experiment(const RunSpec& spec, const Corpus& corpus);

/// Runs against a caller-provided backend (e.g. FileBackend).
ExperimentResult run_experiment(const RunSpec& spec, const Corpus& corpus,
                                StorageBackend& backend);

}  // namespace mhd
