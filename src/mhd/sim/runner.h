// Experiment runner — drives any engine over a corpus and produces the
// ExperimentResult rows the bench harnesses print.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mhd/dedup/engine.h"
#include "mhd/metrics/metrics.h"
#include "mhd/store/memory_backend.h"
#include "mhd/workload/corpus.h"

namespace mhd {

/// Creates an engine by name: "cdc", "bimodal", "subchunk",
/// "sparseindexing", "fbc", "extremebinning", "mhd" (bloom per config),
/// "bf-mhd" (forces bloom).
/// Throws std::invalid_argument for unknown names.
std::unique_ptr<DedupEngine> make_engine(const std::string& name,
                                         ObjectStore& store,
                                         const EngineConfig& config);

/// Names accepted by make_engine, in the paper's comparison order.
const std::vector<std::string>& engine_names();

/// Related-work engines implemented beyond the paper's evaluation set
/// (FBC, Extreme Binning); also accepted by make_engine.
const std::vector<std::string>& extension_engine_names();

struct RunSpec {
  std::string algorithm = "bf-mhd";
  EngineConfig engine;
  DiskModel disk;
  /// Reconstruct every file and compare byte-exactly after the run
  /// (slow; throws std::runtime_error on mismatch).
  bool verify = false;
  /// After ingest, time a streaming restore of the newest snapshot's
  /// files and fill ExperimentResult::restore (MB/s, container reads,
  /// CFL). The latest generation is the fragmentation-sensitive one.
  bool measure_restore = false;
};

/// Runs the full corpus through a fresh engine + in-memory backend.
/// With spec.engine.container_bytes > 0 the stack gains a ContainerBackend
/// (above framing/faults): Memory → [Fault] → [Framed] → [Container].
ExperimentResult run_experiment(const RunSpec& spec, const Corpus& corpus);

/// Runs against a caller-provided backend (e.g. FileBackend).
ExperimentResult run_experiment(const RunSpec& spec, const Corpus& corpus,
                                StorageBackend& backend);

/// Streams a restore of every named file through `backend` (timed, whole
/// files discarded as read) and, when the backend is a ContainerBackend,
/// drops its container cache first (cold-cache measurement — the cache
/// still assists *within* the restore, bounded by --restore-cache-mb),
/// then diffs its ContainerStats to attribute container traffic and
/// compute CFL = ceil(bytes / container_bytes) / actual container reads.
/// Byte verification is the caller's job; a missing or damaged file
/// throws std::runtime_error.
RestoreMetrics measure_restore(StorageBackend& backend,
                               const std::vector<std::string>& files);

}  // namespace mhd
