#include "mhd/sim/runner.h"

#include <optional>
#include <stdexcept>

#include "mhd/core/mhd_engine.h"
#include "mhd/store/fault_backend.h"
#include "mhd/store/framed_backend.h"
#include "mhd/dedup/bimodal_engine.h"
#include "mhd/dedup/cdc_engine.h"
#include "mhd/dedup/extreme_binning_engine.h"
#include "mhd/dedup/fbc_engine.h"
#include "mhd/dedup/sparse_index_engine.h"
#include "mhd/dedup/subchunk_engine.h"

namespace mhd {

std::unique_ptr<DedupEngine> make_engine(const std::string& name,
                                         ObjectStore& store,
                                         const EngineConfig& config) {
  if (name == "cdc") return std::make_unique<CdcEngine>(store, config);
  if (name == "bimodal") return std::make_unique<BimodalEngine>(store, config);
  if (name == "subchunk") {
    return std::make_unique<SubChunkEngine>(store, config);
  }
  if (name == "sparseindexing" || name == "sparse") {
    return std::make_unique<SparseIndexEngine>(store, config);
  }
  if (name == "fbc") return std::make_unique<FbcEngine>(store, config);
  if (name == "extremebinning" || name == "extreme") {
    return std::make_unique<ExtremeBinningEngine>(store, config);
  }
  if (name == "mhd") return std::make_unique<MhdEngine>(store, config);
  if (name == "bf-mhd") {
    EngineConfig cfg = config;
    cfg.use_bloom = true;
    return std::make_unique<MhdEngine>(store, cfg);
  }
  throw std::invalid_argument("unknown engine: " + name);
}

const std::vector<std::string>& engine_names() {
  static const std::vector<std::string> names = {
      "bf-mhd", "bimodal", "subchunk", "sparseindexing", "cdc"};
  return names;
}

const std::vector<std::string>& extension_engine_names() {
  static const std::vector<std::string> names = {"fbc", "extremebinning"};
  return names;
}

ExperimentResult run_experiment(const RunSpec& spec, const Corpus& corpus,
                                StorageBackend& backend) {
  ObjectStore store(backend);
  auto engine = make_engine(spec.algorithm, store, spec.engine);
  for (std::size_t i = 0; i < corpus.files().size(); ++i) {
    auto src = corpus.open(i);
    engine->add_file(corpus.files()[i].name, *src);
  }
  engine->finish();

  if (spec.verify) {
    for (std::size_t i = 0; i < corpus.files().size(); ++i) {
      auto src = corpus.open(i);
      const ByteVec original = read_all(*src);
      const auto restored = engine->reconstruct(corpus.files()[i].name);
      if (!restored || !equal(*restored, original)) {
        throw std::runtime_error(spec.algorithm + ": reconstruction mismatch for " +
                                 corpus.files()[i].name);
      }
    }
  }
  return summarize(engine->name(), *engine, backend, spec.disk);
}

ExperimentResult run_experiment(const RunSpec& spec, const Corpus& corpus) {
  MemoryBackend backend;
  if (!spec.engine.framed && spec.engine.fault_plan.empty()) {
    return run_experiment(spec, corpus, backend);
  }
  // Durability stack: faults are injected on the *physical* layer, below
  // the framing that exists to detect them.
  std::optional<FaultInjectingBackend> faulty;
  StorageBackend* lower = &backend;
  if (!spec.engine.fault_plan.empty()) {
    faulty.emplace(backend, FaultPlan::parse(spec.engine.fault_plan));
    lower = &*faulty;
  }
  if (!spec.engine.framed) return run_experiment(spec, corpus, *lower);
  FramedBackend framed(*lower);
  return run_experiment(spec, corpus, framed);
}

}  // namespace mhd
