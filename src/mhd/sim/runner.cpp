#include "mhd/sim/runner.h"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "mhd/core/mhd_engine.h"
#include "mhd/store/container_store.h"
#include "mhd/store/fault_backend.h"
#include "mhd/store/framed_backend.h"
#include "mhd/store/restore_reader.h"
#include "mhd/util/timer.h"
#include "mhd/dedup/bimodal_engine.h"
#include "mhd/dedup/cdc_engine.h"
#include "mhd/dedup/extreme_binning_engine.h"
#include "mhd/dedup/fbc_engine.h"
#include "mhd/dedup/sparse_index_engine.h"
#include "mhd/dedup/subchunk_engine.h"

namespace mhd {

std::unique_ptr<DedupEngine> make_engine(const std::string& name,
                                         ObjectStore& store,
                                         const EngineConfig& config) {
  if (name == "cdc") return std::make_unique<CdcEngine>(store, config);
  if (name == "bimodal") return std::make_unique<BimodalEngine>(store, config);
  if (name == "subchunk") {
    return std::make_unique<SubChunkEngine>(store, config);
  }
  if (name == "sparseindexing" || name == "sparse") {
    return std::make_unique<SparseIndexEngine>(store, config);
  }
  if (name == "fbc") return std::make_unique<FbcEngine>(store, config);
  if (name == "extremebinning" || name == "extreme") {
    return std::make_unique<ExtremeBinningEngine>(store, config);
  }
  if (name == "mhd") return std::make_unique<MhdEngine>(store, config);
  if (name == "bf-mhd") {
    EngineConfig cfg = config;
    cfg.use_bloom = true;
    return std::make_unique<MhdEngine>(store, cfg);
  }
  throw std::invalid_argument("unknown engine: " + name);
}

const std::vector<std::string>& engine_names() {
  static const std::vector<std::string> names = {
      "bf-mhd", "bimodal", "subchunk", "sparseindexing", "cdc"};
  return names;
}

const std::vector<std::string>& extension_engine_names() {
  static const std::vector<std::string> names = {"fbc", "extremebinning"};
  return names;
}

ExperimentResult run_experiment(const RunSpec& spec, const Corpus& corpus,
                                StorageBackend& backend) {
  ObjectStore store(backend);
  auto engine = make_engine(spec.algorithm, store, spec.engine);
  for (std::size_t i = 0; i < corpus.files().size(); ++i) {
    // Snapshot boundary: HAR folds the finished generation's container
    // utilization into its sparse set (no-op without --rewrite=har).
    if (i > 0 &&
        corpus.files()[i].snapshot != corpus.files()[i - 1].snapshot) {
      engine->end_snapshot();
    }
    auto src = corpus.open(i);
    engine->add_file(corpus.files()[i].name, *src);
  }
  engine->end_snapshot();
  engine->finish();
  // Seal the open container so the physical layout summarize() measures
  // (and any fsck of the inner backend) sees only clean streams.
  if (auto* containers = dynamic_cast<ContainerBackend*>(&backend)) {
    containers->flush();
  }

  if (spec.verify) {
    for (std::size_t i = 0; i < corpus.files().size(); ++i) {
      auto src = corpus.open(i);
      const ByteVec original = read_all(*src);
      const auto restored = engine->reconstruct(corpus.files()[i].name);
      if (!restored || !equal(*restored, original)) {
        throw std::runtime_error(spec.algorithm + ": reconstruction mismatch for " +
                                 corpus.files()[i].name);
      }
    }
  }
  ExperimentResult result = summarize(engine->name(), *engine, backend, spec.disk);
  if (spec.measure_restore && !corpus.files().empty()) {
    const std::uint32_t last = corpus.files().back().snapshot;
    std::vector<std::string> names;
    for (const auto& f : corpus.files()) {
      if (f.snapshot == last) names.push_back(f.name);
    }
    result.restore = measure_restore(backend, names);
  }
  return result;
}

ExperimentResult run_experiment(const RunSpec& spec, const Corpus& corpus) {
  MemoryBackend backend;
  if (!spec.engine.framed && spec.engine.fault_plan.empty() &&
      spec.engine.container_bytes == 0) {
    return run_experiment(spec, corpus, backend);
  }
  // Durability stack (innermost first): faults are injected on the
  // *physical* layer, below the framing that exists to detect them; the
  // container layer packs logical chunks above both.
  std::optional<FaultInjectingBackend> faulty;
  StorageBackend* lower = &backend;
  if (!spec.engine.fault_plan.empty()) {
    faulty.emplace(backend, FaultPlan::parse(spec.engine.fault_plan));
    lower = &*faulty;
  }
  std::optional<FramedBackend> framed;
  if (spec.engine.framed) {
    framed.emplace(*lower);
    lower = &*framed;
  }
  if (spec.engine.container_bytes == 0) {
    return run_experiment(spec, corpus, *lower);
  }
  ContainerConfig cc;
  cc.container_bytes = spec.engine.container_bytes;
  cc.cache_bytes = spec.engine.restore_cache_bytes;
  ContainerBackend containers(*lower, cc);
  return run_experiment(spec, corpus, containers);
}

RestoreMetrics measure_restore(StorageBackend& backend,
                               const std::vector<std::string>& files) {
  RestoreMetrics m;
  auto* containers = dynamic_cast<ContainerBackend*>(&backend);
  if (containers != nullptr) containers->drop_cache();
  const ContainerStats before =
      containers ? containers->stats() : ContainerStats{};

  ByteVec buf(1 << 20);
  const Stopwatch watch;
  for (const auto& file : files) {
    auto reader = RestoreReader::open(backend, file);
    if (!reader) throw std::runtime_error("measure_restore: missing " + file);
    std::size_t n;
    while ((n = reader->read({buf.data(), buf.size()})) > 0) m.bytes += n;
    if (!reader->ok() || reader->produced() != reader->total_length()) {
      throw std::runtime_error("measure_restore: short restore of " + file);
    }
  }
  m.seconds = watch.seconds();

  if (containers != nullptr) {
    const ContainerStats after = containers->stats();
    m.container_reads = after.container_reads - before.container_reads;
    m.cache_hits = after.cache_hits - before.cache_hits;
    const std::uint64_t cbytes = containers->config().container_bytes;
    if (cbytes > 0 && m.bytes > 0) {
      if (m.container_reads == 0) {
        // Everything came from the open container's RAM image — there is
        // no fragmentation signal to report, score it perfect.
        m.cfl = 1.0;
      } else {
        const std::uint64_t optimal = (m.bytes + cbytes - 1) / cbytes;
        // Capped at 1.0 (the literature's convention): the cache can push
        // actual reads below the sequential optimum.
        m.cfl = std::min(1.0, static_cast<double>(optimal) /
                                  static_cast<double>(m.container_reads));
      }
    }
  }
  return m;
}

}  // namespace mhd
