#include "mhd/server/fault_conn.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mhd::server {
namespace {

constexpr std::size_t kPumpBufBytes = 64u << 10;
constexpr std::uint32_t kStallPollMs = 10;

/// Same xorshift* generator the store fault plan uses: cheap, seedable,
/// and good enough for tear fractions and garbage bytes.
std::uint64_t next_rand(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545F4914F6CDD1DULL;
}

[[noreturn]] void bad_atom(const std::string& atom, const char* why) {
  throw std::invalid_argument("net-fault plan: bad atom '" + atom + "': " +
                              why);
}

std::uint64_t parse_u64(const std::string& atom, const std::string& text) {
  if (text.empty()) bad_atom(atom, "expected a number");
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') bad_atom(atom, "expected a number");
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

/// Shared between the two pump threads of one connection. The last pump
/// out closes both fds; kill() is idempotent and wakes any blocked read
/// on either side via shutdown.
struct PumpState {
  int peer = -1;   ///< the real accepted client socket
  int inner = -1;  ///< pump's end of the daemon-facing socketpair
  std::atomic<bool> dead{false};
  std::atomic<int> live{2};

  void kill() {
    if (dead.exchange(true)) return;
    ::shutdown(peer, SHUT_RDWR);
    ::shutdown(inner, SHUT_RDWR);
  }

  void release() {
    if (live.fetch_sub(1) == 1) {
      ::close(peer);
      ::close(inner);
    }
  }
};

/// Reads exactly n bytes unless EOF/error intervenes; returns the count
/// actually read (so callers can tell clean EOF at offset 0 from a tear).
std::size_t read_upto_exact(int fd, unsigned char* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    ssize_t got = ::read(fd, buf + done, n - done);
    if (got > 0) {
      done += static_cast<std::size_t>(got);
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    break;  // EOF or hard error
  }
  return done;
}

bool write_all(int fd, const unsigned char* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    ssize_t put = ::send(fd, buf + done, n - done, MSG_NOSIGNAL);
    if (put > 0) {
      done += static_cast<std::size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Sleeps up to `ms` (0 = forever) in small increments, bailing out as
/// soon as the connection dies so a reaped stall never outlives its
/// socketpair by more than one poll tick.
void interruptible_stall(PumpState& st, std::uint32_t ms) {
  std::uint32_t waited = 0;
  while (!st.dead.load(std::memory_order_relaxed)) {
    if (ms != 0 && waited >= ms) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(kStallPollMs));
    waited += kStallPollMs;
  }
}

/// daemon→client direction: straight passthrough. Responses are never
/// faulted — the plan models hostile/unlucky *clients and networks on
/// the request path*, and an un-faulted response channel keeps every
/// scenario's daemon-side observation deterministic.
void pump_responses(std::shared_ptr<PumpState> st) {
  std::vector<unsigned char> buf(kPumpBufBytes);
  for (;;) {
    ssize_t got = ::read(st->inner, buf.data(), buf.size());
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;  // daemon closed (or kill()ed): tear everything
    if (!write_all(st->peer, buf.data(), static_cast<std::size_t>(got))) break;
  }
  st->kill();
  st->release();
}

/// client→daemon direction: parses [u32 len][u8 type] headers to count
/// frames (1-based) and executes the plan's atom for each.
void pump_requests(std::shared_ptr<PumpState> st, NetFaultPlan plan,
                   std::uint64_t conn_index) {
  std::uint64_t rng = plan.seed ^ (conn_index * 0x9E3779B97F4A7C15ULL);
  next_rand(rng);
  std::vector<unsigned char> buf(kPumpBufBytes);
  std::uint64_t frame = 0;
  bool clean_eof = false;
  for (;;) {
    ++frame;
    const NetFaultPlan::Atom* atom = nullptr;
    for (const auto& a : plan.atoms) {
      if (a.frame == frame) {
        atom = &a;
        break;
      }
    }
    if (atom && atom->kind == NetFaultPlan::Kind::kReset) break;

    unsigned char header[5];
    std::size_t got = read_upto_exact(st->peer, header, sizeof header);
    if (got == 0) {
      clean_eof = true;  // client finished at a frame boundary
      break;
    }
    if (got < sizeof header) break;  // mid-header tear from the peer
    std::uint32_t len = static_cast<std::uint32_t>(header[0]) |
                        (static_cast<std::uint32_t>(header[1]) << 8) |
                        (static_cast<std::uint32_t>(header[2]) << 16) |
                        (static_cast<std::uint32_t>(header[3]) << 24);

    if (atom && atom->kind == NetFaultPlan::Kind::kTorn) {
      double f = atom->fraction;
      if (f < 0.0) {
        f = static_cast<double>(next_rand(rng) >> 11) /
            static_cast<double>(1ULL << 53);
      }
      std::uint64_t total = 5 + static_cast<std::uint64_t>(len);
      std::uint64_t keep = static_cast<std::uint64_t>(
          f * static_cast<double>(total));
      if (keep < 1) keep = 1;
      if (keep >= total) keep = total - 1;
      std::size_t from_header = keep < 5 ? static_cast<std::size_t>(keep) : 5;
      if (!write_all(st->inner, header, from_header)) break;
      std::uint64_t body = keep - from_header;
      while (body > 0) {
        std::size_t want = body < buf.size()
                               ? static_cast<std::size_t>(body)
                               : buf.size();
        std::size_t r = read_upto_exact(st->peer, buf.data(), want);
        if (r == 0 || !write_all(st->inner, buf.data(), r)) break;
        body -= r;
      }
      break;  // then die, exactly like a client killed mid-frame
    }

    if (atom && atom->kind == NetFaultPlan::Kind::kGarbage) {
      // A corrupted-in-flight header. The high length bit is forced on so
      // the parsed payload length always exceeds kMaxFramePayload — the
      // daemon must reject it as a typed ProtocolError, deterministically,
      // rather than sometimes reading the garbage as a small valid frame.
      std::uint64_t r = next_rand(rng);
      unsigned char junk[5];
      std::memcpy(junk, &r, sizeof junk);
      junk[3] |= 0x80;
      if (!write_all(st->inner, junk, sizeof junk)) break;
      // Keep relaying the real payload: the daemon closes on its side and
      // the relay dies on EPIPE, which is the realistic shape of the
      // failure (client still talking into a dead socket).
    } else if (!write_all(st->inner, header, sizeof header)) {
      break;
    }

    bool stalled = atom && atom->kind == NetFaultPlan::Kind::kStall;
    bool dribble = atom && atom->kind == NetFaultPlan::Kind::kShort;
    std::uint32_t body = len;
    bool failed = false;
    bool first_byte = true;
    while (body > 0) {
      std::size_t want = stalled && first_byte
                             ? 1
                             : std::min<std::size_t>(body, buf.size());
      std::size_t r = read_upto_exact(st->peer, buf.data(), want);
      if (r == 0) {
        failed = true;  // peer tore mid-payload
        break;
      }
      if (dribble) {
        for (std::size_t i = 0; i < r && !failed; ++i) {
          failed = !write_all(st->inner, buf.data() + i, 1);
        }
      } else {
        failed = !write_all(st->inner, buf.data(), r);
      }
      if (failed) break;
      body -= static_cast<std::uint32_t>(r);
      if (stalled && first_byte) {
        first_byte = false;
        interruptible_stall(*st, atom->stall_ms);
        if (st->dead.load(std::memory_order_relaxed)) {
          failed = true;
          break;
        }
      }
    }
    if (stalled && len == 0) {
      // Nothing to hold back inside an empty frame; stall before the next
      // header instead so the wire still goes quiet mid-conversation.
      interruptible_stall(*st, atom->stall_ms);
    }
    if (failed) break;
  }
  if (clean_eof) {
    // Propagate the half-close so the daemon still observes a clean EOF
    // at a frame boundary (not a reset) and responses keep flowing.
    ::shutdown(st->inner, SHUT_WR);
  } else {
    st->kill();
  }
  st->release();
}

}  // namespace

bool NetFaultPlan::applies_to_conn(std::uint64_t conn_index) const {
  if (conns.empty()) return true;
  for (const auto& r : conns) {
    if (conn_index >= r.first && conn_index < r.first + r.count) return true;
  }
  return false;
}

NetFaultPlan NetFaultPlan::parse(const std::string& spec) {
  NetFaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string atom = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (atom.empty()) continue;

    if (atom.rfind("seed:", 0) == 0) {
      plan.seed = parse_u64(atom, atom.substr(5));
      continue;
    }

    std::size_t at = atom.find('@');
    if (at == std::string::npos) bad_atom(atom, "expected kind@N");
    std::string kind = atom.substr(0, at);
    std::string rest = atom.substr(at + 1);

    if (kind == "conn") {
      ConnRange range;
      std::size_t x = rest.find('x');
      if (x == std::string::npos) {
        range.first = parse_u64(atom, rest);
      } else {
        range.first = parse_u64(atom, rest.substr(0, x));
        range.count = parse_u64(atom, rest.substr(x + 1));
      }
      if (range.first == 0 || range.count == 0) {
        bad_atom(atom, "connections are 1-based and count must be > 0");
      }
      plan.conns.push_back(range);
      continue;
    }

    Atom a;
    std::size_t colon = rest.find(':');
    std::string frame_text =
        colon == std::string::npos ? rest : rest.substr(0, colon);
    a.frame = parse_u64(atom, frame_text);
    if (a.frame == 0) bad_atom(atom, "frames are 1-based");

    if (kind == "torn") {
      a.kind = Kind::kTorn;
      if (colon != std::string::npos) {
        std::string frac = rest.substr(colon + 1);
        try {
          std::size_t used = 0;
          a.fraction = std::stod(frac, &used);
          if (used != frac.size()) bad_atom(atom, "bad fraction");
        } catch (const std::exception&) {
          bad_atom(atom, "bad fraction");
        }
        if (a.fraction <= 0.0 || a.fraction >= 1.0) {
          bad_atom(atom, "fraction must be in (0, 1)");
        }
      }
    } else if (kind == "stall") {
      a.kind = Kind::kStall;
      if (colon != std::string::npos) {
        a.stall_ms = static_cast<std::uint32_t>(
            parse_u64(atom, rest.substr(colon + 1)));
      }
    } else if (kind == "reset") {
      a.kind = Kind::kReset;
      if (colon != std::string::npos) bad_atom(atom, "reset takes no value");
    } else if (kind == "garbage") {
      a.kind = Kind::kGarbage;
      if (colon != std::string::npos) bad_atom(atom, "garbage takes no value");
    } else if (kind == "short") {
      a.kind = Kind::kShort;
      if (colon != std::string::npos) bad_atom(atom, "short takes no value");
    } else {
      bad_atom(atom, "unknown kind");
    }
    plan.atoms.push_back(a);
  }
  return plan;
}

int wrap_with_net_faults(int fd, const NetFaultPlan& plan,
                         std::uint64_t conn_index) {
  if (plan.empty() || !plan.applies_to_conn(conn_index)) return fd;

  int pair[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, pair) != 0) {
    // Out of fds: serving un-faulted beats refusing the connection; the
    // daemon is not in the business of failing because chaos could not
    // be arranged.
    return fd;
  }
  auto st = std::make_shared<PumpState>();
  st->peer = fd;
  st->inner = pair[1];

  // Pumps are detached and self-reaping: each exits as soon as either
  // side closes (kill() shuts down both fds, waking any blocked read),
  // and the last one out closes both descriptors.
  std::thread(pump_requests, st, plan, conn_index).detach();
  std::thread(pump_responses, st).detach();
  return pair[0];
}

}  // namespace mhd::server
