// Wire protocol of the multi-tenant dedup daemon.
//
// Transport: a byte stream (local TCP or a Unix socket). Every message is
// one length-prefixed frame:
//
//   [u32 payload_len (LE)] [u8 type] [payload_len bytes]
//
// The length covers the payload only, not the type byte, and is capped at
// kMaxFramePayload — a malformed peer can never make the daemon allocate
// unbounded memory. Strings inside payloads are [u16 len][bytes].
//
// Conversations are strict request/response per connection:
//
//   PUT:  PutBegin(tenant, name) → PutData* → PutEnd
//         ← Ok(summary json) | Err | Quota | Busy
//   GET:  Get(tenant, name) ← Data* ← DataEnd(total, ok) | Err | Busy
//   LS:   Ls(tenant) ← Ok(json array) | Err
//   STATS: Stats ← Ok(json object)
//   MAINTAIN: Maintain(op) ← Ok(json) | Err | Busy   (op: gc | fsck)
//   PING: Ping ← Ok("pong")
//
// Backpressure has two layers: admission (a daemon at max-sessions answers
// the first request frame with Busy(retry_after_ms) and closes) and
// streaming (PutData frames land in a BoundedQueue; when the dedup worker
// falls behind, the daemon simply stops reading the socket and TCP/Unix
// flow control pushes back to the client).
//
// Tenant ids are validated at this boundary (validate_tenant): they become
// object-name prefixes in the store, so path separators, dots and empties
// are rejected before they can touch a filename.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "mhd/util/bytes.h"

namespace mhd::server {

/// Hard cap on a single frame's payload (daemon-side allocation bound).
constexpr std::uint32_t kMaxFramePayload = 8u << 20;

/// Preferred PutData/Data frame size for streaming (well under the cap).
constexpr std::uint32_t kStreamFrameBytes = 256u << 10;

enum class MsgType : std::uint8_t {
  // requests
  kPutBegin = 0x01,
  kPutData = 0x02,
  kPutEnd = 0x03,
  kGet = 0x04,
  kLs = 0x05,
  kStats = 0x06,
  kMaintain = 0x07,  ///< payload: u8 op (1 = gc, 2 = fsck)
  kPing = 0x08,
  // responses
  kOk = 0x40,       ///< payload: UTF-8 text (JSON where structured)
  kData = 0x41,     ///< restore bytes
  kDataEnd = 0x42,  ///< u64 total, u8 ok
  kErr = 0x43,      ///< human-readable error
  kBusy = 0x44,     ///< u32 retry_after_ms — admission backpressure
  kQuota = 0x45,    ///< tenant quota exceeded; payload names the limit
};

enum class MaintainOp : std::uint8_t { kGc = 1, kFsck = 2 };

struct Frame {
  MsgType type = MsgType::kErr;
  ByteVec payload;
};

/// Tenant ids become object-name prefixes (`<tenant>.<name>`), so the
/// alphabet is restricted to [A-Za-z0-9_-], length 1..64. Returns the
/// rejection reason, or nullopt when valid.
std::optional<std::string> validate_tenant(const std::string& tenant);

/// Blocking exact-size frame IO on a connected socket. read_frame returns
/// false on clean EOF and throws ProtocolError on a malformed or oversized
/// frame; write_frame throws on a broken pipe.
bool read_frame(int fd, Frame& out);
void write_frame(int fd, MsgType type, ByteSpan payload);
void write_frame(int fd, MsgType type, const std::string& text);

/// Payload helpers ([u16 len][bytes] strings).
void append_string(ByteVec& out, const std::string& s);
std::optional<std::string> read_string(ByteSpan payload, std::size_t& pos);

/// Malformed frame / handshake violation.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

/// Listening socket bound from a spec: "unix:<path>" or "tcp:<port>"
/// (loopback only; port 0 picks an ephemeral port, see port()). accept()
/// blocks until a connection arrives or wake() is called from another
/// thread (returns -1 then, and after close()).
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Throws std::runtime_error on bind failure (port in use, bad spec).
  void listen(const std::string& spec);
  int accept();
  void wake();
  void close();

  /// Bound TCP port (0 for Unix sockets) — lets tests listen on tcp:0.
  int port() const { return port_; }
  const std::string& spec() const { return spec_; }

 private:
  int fd_ = -1;
  int wake_r_ = -1;
  int wake_w_ = -1;
  int port_ = 0;
  std::string spec_;
  std::string unix_path_;  ///< unlinked on close
};

/// Connects to a listener spec; returns -1 on failure.
int connect_to(const std::string& spec);

}  // namespace mhd::server
