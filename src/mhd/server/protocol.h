// Wire protocol of the multi-tenant dedup daemon.
//
// Transport: a byte stream (local TCP or a Unix socket). Every message is
// one length-prefixed frame:
//
//   [u32 payload_len (LE)] [u8 type] [payload_len bytes]
//
// The length covers the payload only, not the type byte, and is capped at
// kMaxFramePayload — a malformed peer can never make the daemon allocate
// unbounded memory. Strings inside payloads are [u16 len][bytes].
//
// Conversations are strict request/response per connection:
//
//   PUT:  PutBegin(tenant, name) → PutData* → PutEnd
//         ← Ok(summary json) | Err | Quota | Busy
//   GET:  Get(tenant, name) ← Data* ← DataEnd(total, ok) | Err | Busy
//   LS:   Ls(tenant) ← Ok(json array) | Err
//   STATS: Stats ← Ok(json object)
//   MAINTAIN: Maintain(op) ← Ok(json) | Err | Busy   (op: gc | fsck)
//   PING: Ping ← Ok("pong")
//
// Backpressure has two layers: admission (a daemon at max-sessions answers
// the first request frame with Busy(retry_after_ms) and closes) and
// streaming (the dedup engine consumes PutData payload bytes straight off
// the connection on the session thread; when it falls behind, reads stop
// and TCP/Unix flow control pushes back to the client).
//
// Tenant ids are validated at this boundary (validate_tenant): they become
// object-name prefixes in the store, so path separators, dots and empties
// are rejected before they can touch a filename.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "mhd/util/bytes.h"

namespace mhd::server {

/// Hard cap on a single frame's payload (daemon-side allocation bound).
constexpr std::uint32_t kMaxFramePayload = 8u << 20;

/// Preferred PutData/Data frame size for streaming (well under the cap).
/// Large frames amortize the per-frame header + syscall cost: at 1 MB a
/// stream pays ~2 syscalls per MB on each side instead of dozens.
constexpr std::uint32_t kStreamFrameBytes = 1u << 20;

/// FrameReader's coalescing buffer: small frames (headers, control
/// messages, short payloads) are parsed out of one buffered read() instead
/// of costing two exact-size reads each.
constexpr std::size_t kReadBufferBytes = 256u << 10;

/// SO_SNDBUF/SO_RCVBUF hint applied to every stream socket.
constexpr int kSocketBufferBytes = 1 << 20;

enum class MsgType : std::uint8_t {
  // requests
  kPutBegin = 0x01,
  kPutData = 0x02,
  kPutEnd = 0x03,
  kGet = 0x04,
  kLs = 0x05,
  kStats = 0x06,
  kMaintain = 0x07,  ///< payload: u8 op (1 = gc, 2 = fsck)
  kPing = 0x08,
  // responses
  kOk = 0x40,       ///< payload: UTF-8 text (JSON where structured)
  kData = 0x41,     ///< restore bytes
  kDataEnd = 0x42,  ///< u64 total, u8 ok
  kErr = 0x43,      ///< human-readable error
  kBusy = 0x44,     ///< u32 retry_after_ms — admission backpressure
  kQuota = 0x45,    ///< tenant quota exceeded; payload names the limit
  /// Retryable failure: the request hit a transient condition (store read
  /// retries exhausted, backend hiccup). The tenant session was dropped
  /// and rebuilt cleanly; the CONNECTION stays usable and the same
  /// request, re-sent, is expected to succeed. Payload: u32 retry_after_ms
  /// followed by a human-readable reason.
  kRetry = 0x46,
};

enum class MaintainOp : std::uint8_t { kGc = 1, kFsck = 2 };

struct Frame {
  MsgType type = MsgType::kErr;
  ByteVec payload;
};

/// Tenant ids become object-name prefixes (`<tenant>.<name>`), so the
/// alphabet is restricted to [A-Za-z0-9_-], length 1..64. Returns the
/// rejection reason, or nullopt when valid.
std::optional<std::string> validate_tenant(const std::string& tenant);

/// Blocking exact-size frame IO on a connected socket. read_frame returns
/// false on clean EOF and throws ProtocolError on a malformed or oversized
/// frame; write_frame throws on a broken pipe. write_frame sends header
/// and payload as ONE vectored syscall (sendmsg with MSG_NOSIGNAL).
bool read_frame(int fd, Frame& out);
void write_frame(int fd, MsgType type, ByteSpan payload);
void write_frame(int fd, MsgType type, const std::string& text);

/// Transport tuning for a connected stream socket: TCP_NODELAY (the
/// request/response protocol must never sit out a Nagle/delayed-ACK
/// window — that alone was a ~40 ms stall per RPC) and larger kernel
/// buffers. A no-op where an option does not apply (Unix sockets).
void tune_stream_socket(int fd);

/// Process-wide transport counters (bench attribution: bytes-per-syscall).
/// Monotonic; covers every FrameReader read and write_frame send in the
/// process. reset_transport_stats() zeroes them between bench phases.
struct TransportStats {
  std::uint64_t read_calls = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t write_calls = 0;
  std::uint64_t write_bytes = 0;
};
TransportStats transport_stats();
void reset_transport_stats();

/// Buffered frame reads over one connected socket. A FrameReader owns the
/// read side of its fd: it issues large read()s into a coalescing buffer
/// and parses frames out of it, so a run of small frames costs one
/// syscall, not two each. Payloads larger than the buffer are read
/// straight into the caller's memory (no double buffering). Once a
/// FrameReader is attached to an fd, every read on that fd must go
/// through it (it over-reads by design).
///
/// Two access styles:
///  * read_frame(Frame&): whole frames, same semantics as the free
///    function (false on clean EOF at a frame boundary, ProtocolError on
///    tears/oversize);
///  * next_header() + read_payload(): streaming consumption — the PUT
///    data path pulls payload bytes directly into the chunker's buffer
///    without materializing a frame.
class FrameReader {
 public:
  explicit FrameReader(int fd, std::size_t buffer_bytes = kReadBufferBytes);

  FrameReader(const FrameReader&) = delete;
  FrameReader& operator=(const FrameReader&) = delete;

  /// Reads one whole frame. False on clean EOF at a frame boundary.
  bool read_frame(Frame& out);

  /// Reads the next frame header. False on clean EOF at a frame boundary.
  /// Must not be called while the previous frame's payload is unconsumed.
  bool next_header(MsgType& type, std::uint32_t& len);

  /// Consumes up to out.size() bytes of the current frame's payload;
  /// returns the count (0 when the payload is fully consumed).
  std::size_t read_payload(MutByteSpan out);

  std::uint32_t payload_remaining() const { return remaining_; }

  /// High-water of bytes held in the coalescing buffer (observability:
  /// the stats RPC reports it as the session's buffered high-water).
  std::size_t buffer_high_water() const { return high_water_; }

 private:
  /// Ensures at least `need` buffered bytes. Returns false on clean EOF
  /// with an empty buffer; throws ProtocolError on EOF mid-datum.
  bool fill(std::size_t need);

  int fd_;
  ByteVec buf_;
  std::size_t pos_ = 0;   ///< next unconsumed byte
  std::size_t end_ = 0;   ///< one past the last buffered byte
  std::uint32_t remaining_ = 0;  ///< unconsumed payload of the open frame
  std::size_t high_water_ = 0;
};

/// Payload helpers ([u16 len][bytes] strings).
void append_string(ByteVec& out, const std::string& s);
std::optional<std::string> read_string(ByteSpan payload, std::size_t& pos);

/// Malformed frame / handshake violation.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

/// The peer went away (EPIPE/ECONNRESET on either direction, or EOF in
/// the middle of a frame — a client killed mid-PUT looks exactly like
/// this). A subclass of ProtocolError so every existing "drop the
/// connection" catch still works, but typed so the daemon can count
/// benign disconnects apart from hostile malformed peers.
class PeerDisconnectedError : public ProtocolError {
 public:
  explicit PeerDisconnectedError(const std::string& what)
      : ProtocolError(what) {}
};

/// A blocking read sat past the socket's SO_RCVTIMEO (slowloris / stalled
/// peer). The daemon reaps the connection and frees its admission slot.
class IdleTimeoutError : public ProtocolError {
 public:
  explicit IdleTimeoutError(const std::string& what) : ProtocolError(what) {}
};

/// Listening socket bound from a spec: "unix:<path>" or "tcp:<port>"
/// (loopback only; port 0 picks an ephemeral port, see port()). accept()
/// blocks until a connection arrives or wake() is called from another
/// thread (returns -1 then, and after close()).
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Throws std::runtime_error on bind failure (port in use, bad spec).
  void listen(const std::string& spec);
  int accept();
  void wake();
  void close();

  /// Bound TCP port (0 for Unix sockets) — lets tests listen on tcp:0.
  int port() const { return port_; }
  const std::string& spec() const { return spec_; }

 private:
  int fd_ = -1;
  int wake_r_ = -1;
  int wake_w_ = -1;
  int port_ = 0;
  std::string spec_;
  std::string unix_path_;  ///< unlinked on close
};

/// Connects to a listener spec; returns -1 on failure.
int connect_to(const std::string& spec);

}  // namespace mhd::server
