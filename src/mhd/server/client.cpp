#include "mhd/server/client.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

namespace mhd::server {

namespace {

std::uint64_t next_rand(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545F4914F6CDD1DULL;
}

}  // namespace

std::optional<DedupClient> DedupClient::connect(const std::string& spec) {
  const int fd = connect_to(spec);
  if (fd < 0) return std::nullopt;
  return DedupClient(fd, spec);
}

DedupClient::~DedupClient() {
  if (fd_ >= 0) ::close(fd_);
}

DedupClient::DedupClient(DedupClient&& other) noexcept
    : fd_(other.fd_),
      reader_(std::move(other.reader_)),
      spec_(std::move(other.spec_)),
      put_buf_(std::move(other.put_buf_)),
      policy_(other.policy_),
      rng_(other.rng_),
      retries_(other.retries_) {
  other.fd_ = -1;
}

void DedupClient::set_retry_policy(RetryPolicy policy) {
  policy_ = policy;
  rng_ = policy.seed ^ 0x9E3779B97F4A7C15ULL;
  next_rand(rng_);
}

bool DedupClient::reconnect() {
  if (fd_ >= 0) ::close(fd_);
  reader_.reset();
  fd_ = connect_to(spec_);
  if (fd_ < 0) return false;
  reader_ = std::make_unique<FrameReader>(fd_);
  return true;
}

std::uint32_t DedupClient::backoff_ms(std::uint32_t attempt,
                                      std::uint32_t hint_ms) {
  std::uint64_t delay = policy_.base_backoff_ms == 0
                            ? 1
                            : policy_.base_backoff_ms;
  delay <<= std::min<std::uint32_t>(attempt, 16);
  delay = std::min<std::uint64_t>(delay, policy_.max_backoff_ms);
  // Deterministic jitter in [delay/2, delay]: enough spread to break the
  // thundering herd after a Busy storm, seeded so a failing chaos run
  // replays with identical timing decisions.
  const std::uint64_t span = delay / 2;
  std::uint64_t jittered = delay - span;
  if (span != 0) jittered += next_rand(rng_) % (span + 1);
  return static_cast<std::uint32_t>(
      std::max<std::uint64_t>(jittered, hint_ms));
}

DedupClient::Result DedupClient::with_retry(
    const std::function<Result()>& attempt,
    const std::function<bool()>& may_retry) {
  Result r = fd_ >= 0 ? attempt() : [] {
    Result dead;
    dead.transport = true;
    dead.message = "not connected";
    return dead;
  }();
  std::uint64_t slept_ms = 0;
  for (std::uint32_t tries = 0; tries < policy_.max_retries; ++tries) {
    if (r.ok || !(r.busy || r.retryable || r.transport)) break;
    if (may_retry && !may_retry()) break;
    const std::uint32_t delay = backoff_ms(tries, r.retry_after_ms);
    if (policy_.budget_ms != 0 && slept_ms + delay > policy_.budget_ms) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    slept_ms += delay;
    ++retries_;
    // Busy closes the connection daemon-side (FIN + drain); transport
    // means it is already gone. Only a Retry response leaves the
    // connection usable as-is.
    if ((r.busy || r.transport) && !reconnect()) {
      // The daemon may be mid-restart (the crash-recovery story): keep
      // backing off and dialing until the policy gives up.
      r = Result{};
      r.transport = true;
      r.message = "reconnect failed: " + spec_;
      continue;
    }
    r = attempt();
  }
  return r;
}

DedupClient::Result DedupClient::read_response() {
  Result r;
  Frame frame;
  if (!reader_->read_frame(frame)) {
    r.transport = true;
    r.message = "connection closed by daemon";
    return r;
  }
  const std::string text(reinterpret_cast<const char*>(frame.payload.data()),
                         frame.payload.size());
  switch (frame.type) {
    case MsgType::kOk:
      r.ok = true;
      r.message = text;
      break;
    case MsgType::kBusy:
      r.busy = true;
      if (frame.payload.size() >= 4) {
        r.retry_after_ms = load_le<std::uint32_t>(frame.payload.data());
      }
      r.message = "daemon busy";
      break;
    case MsgType::kQuota:
      r.quota = true;
      r.message = text;
      break;
    case MsgType::kRetry:
      // Transient server-side failure; the connection stays aligned and
      // the daemon expects the same request again after the hinted wait.
      r.retryable = true;
      if (frame.payload.size() >= 4) {
        r.retry_after_ms = load_le<std::uint32_t>(frame.payload.data());
        r.message = text.substr(4);
      }
      if (r.message.empty()) r.message = "transient daemon failure";
      break;
    default:
      r.message = text.empty() ? "daemon error" : text;
      break;
  }
  return r;
}

DedupClient::Result DedupClient::put(const std::string& tenant,
                                     const std::string& name,
                                     ByteSource& src) {
  try {
    ByteVec begin;
    append_string(begin, tenant);
    append_string(begin, name);
    write_frame(fd_, MsgType::kPutBegin, ByteSpan{begin});
    // One staging slab for the client's lifetime; write_frame sends the
    // header and this payload in a single vectored syscall.
    put_buf_.resize(kStreamFrameBytes);
    std::size_t n;
    while ((n = src.read({put_buf_.data(), put_buf_.size()})) > 0) {
      write_frame(fd_, MsgType::kPutData, ByteSpan{put_buf_.data(), n});
    }
    write_frame(fd_, MsgType::kPutEnd, ByteSpan{});
  } catch (const ProtocolError&) {
    // The daemon may have aborted the stream (quota, invalid tenant) and
    // already queued its verdict; try to read it before giving up.
  }
  try {
    return read_response();
  } catch (const ProtocolError& e) {
    Result r;
    r.transport = true;
    r.message = e.what();
    return r;
  }
}

DedupClient::Result DedupClient::put(const std::string& tenant,
                                     const std::string& name,
                                     const SourceFactory& make_src) {
  return with_retry([&] {
    auto src = make_src();
    if (!src) {
      Result r;
      r.message = "source factory returned null";
      return r;  // caller bug, not retryable
    }
    return put(tenant, name, *src);
  });
}

DedupClient::Result DedupClient::put_bytes(const std::string& tenant,
                                           const std::string& name,
                                           ByteSpan data) {
  return with_retry([&] {
    MemorySource src(data);
    return put(tenant, name, src);
  });
}

DedupClient::GetResult DedupClient::get(
    const std::string& tenant, const std::string& name,
    const std::function<void(ByteSpan)>& sink) {
  std::uint64_t delivered = 0;
  GetResult last;
  const auto attempt = [&]() -> Result {
    GetResult r;
    try {
      ByteVec req;
      append_string(req, tenant);
      append_string(req, name);
      write_frame(fd_, MsgType::kGet, ByteSpan{req});
      Frame frame;
      while (reader_->read_frame(frame)) {
        if (frame.type == MsgType::kData) {
          delivered += frame.payload.size();
          if (sink) sink(ByteSpan{frame.payload});
          continue;
        }
        if (frame.type == MsgType::kDataEnd) {
          if (frame.payload.size() >= 9) {
            r.produced = load_le<std::uint64_t>(frame.payload.data());
            r.stream_ok = frame.payload[8] == Byte{1};
          }
          r.ok = r.stream_ok;
          if (!r.stream_ok) r.message = "restore incomplete (damaged store)";
          last = r;
          return r;
        }
        if (frame.type == MsgType::kBusy) {
          r.busy = true;
          if (frame.payload.size() >= 4) {
            r.retry_after_ms = load_le<std::uint32_t>(frame.payload.data());
          }
          r.message = "daemon busy";
          last = r;
          return r;
        }
        if (frame.type == MsgType::kRetry) {
          r.retryable = true;
          if (frame.payload.size() >= 4) {
            r.retry_after_ms = load_le<std::uint32_t>(frame.payload.data());
          }
          r.message = "transient daemon failure";
          last = r;
          return r;
        }
        r.message.assign(reinterpret_cast<const char*>(frame.payload.data()),
                         frame.payload.size());
        last = r;
        return r;
      }
      r.transport = true;
      r.message = "connection closed by daemon";
    } catch (const ProtocolError& e) {
      r.transport = true;
      r.message = e.what();
    }
    last = r;
    return r;
  };
  // Retry only while nothing has reached the sink: delivered bytes
  // cannot be un-delivered, and a restarted stream would duplicate them.
  const Result final_result =
      with_retry(attempt, [&] { return delivered == 0; });
  // A terminal reconnect failure never reaches `attempt`; fold the base
  // outcome back in so the caller sees the loop's true final state.
  static_cast<Result&>(last) = final_result;
  return last;
}

DedupClient::Result DedupClient::ls(const std::string& tenant) {
  return with_retry([&] {
    try {
      ByteVec req;
      append_string(req, tenant);
      write_frame(fd_, MsgType::kLs, ByteSpan{req});
      return read_response();
    } catch (const ProtocolError& e) {
      Result r;
      r.transport = true;
      r.message = e.what();
      return r;
    }
  });
}

DedupClient::Result DedupClient::stats(bool reset) {
  return with_retry([&] {
    try {
      ByteVec req;
      if (reset) req.push_back(Byte{1});
      write_frame(fd_, MsgType::kStats, ByteSpan{req});
      return read_response();
    } catch (const ProtocolError& e) {
      Result r;
      r.transport = true;
      r.message = e.what();
      return r;
    }
  });
}

DedupClient::Result DedupClient::maintain(MaintainOp op) {
  // gc and fsck are idempotent, so reconnect-and-retry is safe here too.
  return with_retry([&] {
    try {
      ByteVec req;
      req.push_back(static_cast<Byte>(op));
      write_frame(fd_, MsgType::kMaintain, ByteSpan{req});
      return read_response();
    } catch (const ProtocolError& e) {
      Result r;
      r.transport = true;
      r.message = e.what();
      return r;
    }
  });
}

DedupClient::Result DedupClient::ping() {
  return with_retry([&] {
    try {
      write_frame(fd_, MsgType::kPing, ByteSpan{});
      return read_response();
    } catch (const ProtocolError& e) {
      Result r;
      r.transport = true;
      r.message = e.what();
      return r;
    }
  });
}

}  // namespace mhd::server
