#include "mhd/server/client.h"

#include <unistd.h>

namespace mhd::server {

std::optional<DedupClient> DedupClient::connect(const std::string& spec) {
  const int fd = connect_to(spec);
  if (fd < 0) return std::nullopt;
  return DedupClient(fd);
}

DedupClient::~DedupClient() {
  if (fd_ >= 0) ::close(fd_);
}

DedupClient::DedupClient(DedupClient&& other) noexcept
    : fd_(other.fd_),
      reader_(std::move(other.reader_)),
      put_buf_(std::move(other.put_buf_)) {
  other.fd_ = -1;
}

DedupClient::Result DedupClient::read_response() {
  Result r;
  Frame frame;
  if (!reader_->read_frame(frame)) {
    r.message = "connection closed by daemon";
    return r;
  }
  const std::string text(reinterpret_cast<const char*>(frame.payload.data()),
                         frame.payload.size());
  switch (frame.type) {
    case MsgType::kOk:
      r.ok = true;
      r.message = text;
      break;
    case MsgType::kBusy:
      r.busy = true;
      if (frame.payload.size() >= 4) {
        r.retry_after_ms = load_le<std::uint32_t>(frame.payload.data());
      }
      r.message = "daemon busy";
      break;
    case MsgType::kQuota:
      r.quota = true;
      r.message = text;
      break;
    default:
      r.message = text.empty() ? "daemon error" : text;
      break;
  }
  return r;
}

DedupClient::Result DedupClient::put(const std::string& tenant,
                                     const std::string& name,
                                     ByteSource& src) {
  try {
    ByteVec begin;
    append_string(begin, tenant);
    append_string(begin, name);
    write_frame(fd_, MsgType::kPutBegin, ByteSpan{begin});
    // One staging slab for the client's lifetime; write_frame sends the
    // header and this payload in a single vectored syscall.
    put_buf_.resize(kStreamFrameBytes);
    std::size_t n;
    while ((n = src.read({put_buf_.data(), put_buf_.size()})) > 0) {
      write_frame(fd_, MsgType::kPutData, ByteSpan{put_buf_.data(), n});
    }
    write_frame(fd_, MsgType::kPutEnd, ByteSpan{});
  } catch (const ProtocolError&) {
    // The daemon may have aborted the stream (quota, invalid tenant) and
    // already queued its verdict; try to read it before giving up.
  }
  try {
    return read_response();
  } catch (const ProtocolError& e) {
    Result r;
    r.message = e.what();
    return r;
  }
}

DedupClient::Result DedupClient::put_bytes(const std::string& tenant,
                                           const std::string& name,
                                           ByteSpan data) {
  MemorySource src(data);
  return put(tenant, name, src);
}

DedupClient::GetResult DedupClient::get(
    const std::string& tenant, const std::string& name,
    const std::function<void(ByteSpan)>& sink) {
  GetResult r;
  try {
    ByteVec req;
    append_string(req, tenant);
    append_string(req, name);
    write_frame(fd_, MsgType::kGet, ByteSpan{req});
    Frame frame;
    while (reader_->read_frame(frame)) {
      if (frame.type == MsgType::kData) {
        if (sink) sink(ByteSpan{frame.payload});
        continue;
      }
      if (frame.type == MsgType::kDataEnd) {
        if (frame.payload.size() >= 9) {
          r.produced = load_le<std::uint64_t>(frame.payload.data());
          r.stream_ok = frame.payload[8] == Byte{1};
        }
        r.ok = r.stream_ok;
        if (!r.stream_ok) r.message = "restore incomplete (damaged store)";
        return r;
      }
      if (frame.type == MsgType::kBusy) {
        r.busy = true;
        if (frame.payload.size() >= 4) {
          r.retry_after_ms = load_le<std::uint32_t>(frame.payload.data());
        }
        r.message = "daemon busy";
        return r;
      }
      r.message.assign(reinterpret_cast<const char*>(frame.payload.data()),
                       frame.payload.size());
      return r;
    }
    r.message = "connection closed by daemon";
  } catch (const ProtocolError& e) {
    r.message = e.what();
  }
  return r;
}

DedupClient::Result DedupClient::ls(const std::string& tenant) {
  try {
    ByteVec req;
    append_string(req, tenant);
    write_frame(fd_, MsgType::kLs, ByteSpan{req});
    return read_response();
  } catch (const ProtocolError& e) {
    Result r;
    r.message = e.what();
    return r;
  }
}

DedupClient::Result DedupClient::stats(bool reset) {
  try {
    ByteVec req;
    if (reset) req.push_back(Byte{1});
    write_frame(fd_, MsgType::kStats, ByteSpan{req});
    return read_response();
  } catch (const ProtocolError& e) {
    Result r;
    r.message = e.what();
    return r;
  }
}

DedupClient::Result DedupClient::maintain(MaintainOp op) {
  try {
    ByteVec req;
    req.push_back(static_cast<Byte>(op));
    write_frame(fd_, MsgType::kMaintain, ByteSpan{req});
    return read_response();
  } catch (const ProtocolError& e) {
    Result r;
    r.message = e.what();
    return r;
  }
}

DedupClient::Result DedupClient::ping() {
  try {
    write_frame(fd_, MsgType::kPing, ByteSpan{});
    return read_response();
  } catch (const ProtocolError& e) {
    Result r;
    r.message = e.what();
    return r;
  }
}

}  // namespace mhd::server
