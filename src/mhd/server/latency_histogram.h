// LatencyHistogram — fixed-footprint log2 latency buckets.
//
// Request latencies span orders of magnitude (a cache-hit GET vs a PUT
// that compacts the index), so the daemon records them in power-of-two
// microsecond buckets: bucket i counts samples in [2^i, 2^(i+1)) µs.
// quantile() returns the upper bound of the bucket containing the q-th
// sample — a ≤2× overestimate, which is the right fidelity for p50/p99
// dashboards at 512 bytes per histogram.
//
// Not internally synchronized; the daemon guards each tenant's histograms
// with the registry mutex it already holds to update the counters.
#pragma once

#include <array>
#include <cstdint>

namespace mhd::server {

class LatencyHistogram {
 public:
  void record(std::uint64_t micros) {
    int b = 0;
    while ((1ull << (b + 1)) <= micros && b + 1 < kBuckets) ++b;
    ++buckets_[b];
    ++count_;
  }

  std::uint64_t count() const { return count_; }

  /// Zeroes every bucket (the stats RPC's atomic snapshot-and-reset; the
  /// caller holds whatever lock guards record()).
  void reset() {
    buckets_.fill(0);
    count_ = 0;
  }

  /// Upper bound (µs) of the bucket holding the q-th quantile sample;
  /// 0 when empty. q in [0,1].
  std::uint64_t quantile(double q) const {
    if (count_ == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    // rank counts from 1: p50 of 2 samples is the 1st, p99 the 2nd.
    std::uint64_t rank = static_cast<std::uint64_t>(q * (count_ - 1)) + 1;
    for (int b = 0; b < kBuckets; ++b) {
      if (rank <= buckets_[b]) return 1ull << (b + 1);
      rank -= buckets_[b];
    }
    return 1ull << kBuckets;
  }

 private:
  static constexpr int kBuckets = 40;  ///< up to ~2^40 µs ≈ 12 days
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
};

}  // namespace mhd::server
