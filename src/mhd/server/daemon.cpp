#include "mhd/server/daemon.h"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <exception>
#include <set>
#include <vector>

#include "mhd/core/mhd_engine.h"
#include "mhd/metrics/json_export.h"
#include "mhd/pipeline/bounded_queue.h"
#include "mhd/server/protocol.h"
#include "mhd/store/maintenance.h"
#include "mhd/store/object_store.h"
#include "mhd/store/restore_reader.h"
#include "mhd/store/scrub.h"

namespace mhd::server {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_us(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

/// ByteSource over the PUT session's BoundedQueue: the dedup worker pulls
/// from here while the socket pump pushes PutData payloads in.
class QueueSource final : public ByteSource {
 public:
  explicit QueueSource(BoundedQueue<ByteVec>& queue) : queue_(&queue) {}

  std::size_t read(MutByteSpan out) override {
    std::size_t done = 0;
    while (done < out.size()) {
      if (pos_ == current_.size()) {
        if (!queue_->pop(current_)) return done;  // closed and drained
        pos_ = 0;
        continue;
      }
      const std::size_t n =
          std::min(out.size() - done, current_.size() - pos_);
      std::copy(current_.begin() + static_cast<std::ptrdiff_t>(pos_),
                current_.begin() + static_cast<std::ptrdiff_t>(pos_ + n),
                out.begin() + static_cast<std::ptrdiff_t>(done));
      pos_ += n;
      done += n;
    }
    return done;
  }

 private:
  BoundedQueue<ByteVec>* queue_;
  ByteVec current_;
  std::size_t pos_ = 0;
};

/// Graceful rejection: the response frame is already queued; FIN our write
/// side and drain (bounded) whatever the peer is still streaming, so the
/// close never turns into an RST that destroys the undelivered response.
void drain_rejected(int fd) {
  ::shutdown(fd, SHUT_WR);
  timeval tv{2, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char sink[4096];
  while (::recv(fd, sink, sizeof(sink), 0) > 0) {
  }
}

}  // namespace

DedupDaemon::DedupDaemon(StorageBackend& active, StorageBackend& raw,
                         DaemonConfig cfg)
    : sync_(active), raw_(raw), cfg_(std::move(cfg)) {
  if (cfg_.max_sessions == 0) cfg_.max_sessions = 1;
  if (cfg_.session_queue_depth == 0) cfg_.session_queue_depth = 1;
}

DedupDaemon::~DedupDaemon() { stop(); }

void DedupDaemon::start() {
  listener_.listen(cfg_.listen);
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void DedupDaemon::stop() {
  if (!running_.exchange(false)) return;
  listener_.wake();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Unblock sessions stuck in socket reads, then join them all.
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    for (auto& slot : sessions_) {
      if (!slot->done.load() && slot->fd >= 0) {
        ::shutdown(slot->fd, SHUT_RDWR);
      }
    }
  }
  for (;;) {
    std::unique_ptr<SessionSlot> slot;
    {
      std::lock_guard<std::mutex> lock(reg_mu_);
      if (sessions_.empty()) break;
      slot = std::move(sessions_.front());
      sessions_.pop_front();
    }
    if (slot->thread.joinable()) slot->thread.join();
  }
  listener_.close();
}

std::string DedupDaemon::listen_spec() const {
  if (listener_.port() != 0) return "tcp:" + std::to_string(listener_.port());
  return listener_.spec();
}

void DedupDaemon::reap_finished_sessions() {
  std::list<std::unique_ptr<SessionSlot>> finished;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if ((*it)->done.load()) {
        finished.push_back(std::move(*it));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& slot : finished) {
    if (slot->thread.joinable()) slot->thread.join();
  }
}

void DedupDaemon::accept_loop() {
  while (running_.load()) {
    const int fd = listener_.accept();
    if (fd < 0) break;  // woken for shutdown or listener error
    reap_finished_sessions();
    // Admission control: reject beyond max_sessions with an explicit
    // retry hint rather than queueing unbounded connections.
    std::uint32_t active = active_sessions_.load();
    bool admitted = false;
    while (active < cfg_.max_sessions) {
      if (active_sessions_.compare_exchange_weak(active, active + 1)) {
        admitted = true;
        break;
      }
    }
    if (!admitted) {
      busy_rejections_.fetch_add(1);
      ByteVec payload;
      append_le(payload, cfg_.retry_after_ms);
      try {
        write_frame(fd, MsgType::kBusy, ByteSpan{payload});
      } catch (const ProtocolError&) {
      }
      drain_rejected(fd);
      ::close(fd);
      continue;
    }
    // A stalled peer must not pin a session slot (and with it the shared
    // maintenance lock) forever.
    timeval tv{30, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    auto slot = std::make_unique<SessionSlot>();
    slot->fd = fd;
    SessionSlot* raw_slot = slot.get();
    {
      std::lock_guard<std::mutex> lock(reg_mu_);
      sessions_.push_back(std::move(slot));
    }
    raw_slot->thread = std::thread([this, raw_slot] {
      serve_connection(*raw_slot);
      ::close(raw_slot->fd);
      active_sessions_.fetch_sub(1);
      sessions_served_.fetch_add(1);
      raw_slot->done.store(true);
    });
  }
}

void DedupDaemon::serve_connection(SessionSlot& slot) {
  const int fd = slot.fd;
  try {
    Frame frame;
    while (read_frame(fd, frame)) {
      switch (frame.type) {
        case MsgType::kPing: {
          std::shared_lock<std::shared_mutex> maint(maint_mu_);
          write_frame(fd, MsgType::kOk, std::string("pong"));
          break;
        }
        case MsgType::kStats: {
          std::shared_lock<std::shared_mutex> maint(maint_mu_);
          write_frame(fd, MsgType::kOk, stats_json());
          break;
        }
        case MsgType::kPutBegin: {
          std::shared_lock<std::shared_mutex> maint(maint_mu_);
          handle_put(fd, ByteSpan{frame.payload});
          break;
        }
        case MsgType::kGet: {
          std::shared_lock<std::shared_mutex> maint(maint_mu_);
          handle_get(fd, ByteSpan{frame.payload});
          break;
        }
        case MsgType::kLs: {
          std::shared_lock<std::shared_mutex> maint(maint_mu_);
          handle_ls(fd, ByteSpan{frame.payload});
          break;
        }
        case MsgType::kMaintain:
          // Takes maint_mu_ exclusively itself — must not hold it shared.
          handle_maintain(fd, ByteSpan{frame.payload});
          break;
        default:
          write_frame(fd, MsgType::kErr, std::string("unexpected frame"));
          return;  // protocol state lost; drop the connection
      }
    }
  } catch (const ProtocolError&) {
    // Malformed peer / reset / stalled past SO_RCVTIMEO: drop silently.
  } catch (const std::exception& e) {
    try {
      write_frame(fd, MsgType::kErr, std::string(e.what()));
    } catch (const ProtocolError&) {
    }
  }
}

DedupDaemon::TenantState& DedupDaemon::tenant(const std::string& id) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  auto& slot = tenants_[id];
  if (!slot) slot = std::make_unique<TenantState>();
  return *slot;
}

void DedupDaemon::seed_tenant(const std::string& id, TenantState& ts) {
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    if (ts.seeded) return;
  }
  // Repository scan outside the registry lock (it reads objects).
  TenantView view(sync_, id);
  const auto files = scan_tenant_files(view);
  std::uint64_t bytes = 0;
  for (const auto& f : files) bytes += f.bytes;
  std::lock_guard<std::mutex> lock(reg_mu_);
  if (ts.seeded) return;
  ts.seeded = true;
  ts.files = files.size();
  ts.logical_bytes = bytes;
}

void DedupDaemon::handle_put(int fd, ByteSpan payload) {
  const auto start = Clock::now();
  std::size_t pos = 0;
  const auto tenant_id = read_string(payload, pos);
  const auto file_name = read_string(payload, pos);
  if (!tenant_id || !file_name || file_name->empty()) {
    throw ProtocolError("malformed PutBegin");
  }
  if (const auto reason = validate_tenant(*tenant_id)) {
    write_frame(fd, MsgType::kErr, *reason);
    drain_rejected(fd);
    throw ProtocolError("invalid tenant id");  // drop: data frames follow
  }

  TenantState& ts = tenant(*tenant_id);
  // One writer per tenant namespace; cross-tenant PUTs stay concurrent.
  std::lock_guard<std::mutex> writer(ts.write_mu);
  seed_tenant(*tenant_id, ts);

  std::uint64_t base_bytes = 0, base_files = 0;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    base_bytes = ts.logical_bytes;
    base_files = ts.files;
  }
  const auto& quota = cfg_.quota;
  if (quota.max_files != 0 && base_files + 1 > quota.max_files) {
    std::lock_guard<std::mutex> lock(reg_mu_);
    ++ts.counters.quota_rejections;
    write_frame(fd, MsgType::kQuota,
                "file count limit " + std::to_string(quota.max_files) +
                    " reached");
    drain_rejected(fd);
    throw ProtocolError("quota: file count");
  }

  // Dedup worker: per-tenant engine over the shared synchronized stack.
  BoundedQueue<ByteVec> queue(cfg_.session_queue_depth);
  EngineCounters counters;
  std::exception_ptr worker_error;
  std::thread worker([&] {
    try {
      TenantView view(sync_, *tenant_id);
      ObjectStore store(view);
      MhdEngine engine(store, cfg_.engine);
      QueueSource src(queue);
      engine.add_file(*file_name, src);
      engine.end_snapshot();
      engine.finish();
      counters = engine.counters();
    } catch (...) {
      worker_error = std::current_exception();
      // Unblock the pump if it is mid-push.
      queue.fail(std::make_exception_ptr(
          ProtocolError("ingest worker failed")));
    }
  });

  // Socket pump: stream PutData frames into the queue until PutEnd. The
  // bounded queue is the backpressure point — when the worker lags, push
  // blocks, we stop reading, and transport flow control reaches the peer.
  std::uint64_t streamed = 0;
  bool over_quota = false;
  std::string pump_error;
  try {
    Frame frame;
    while (true) {
      if (!read_frame(fd, frame)) {
        pump_error = "connection closed mid-PUT";
        break;
      }
      if (frame.type == MsgType::kPutEnd) break;
      if (frame.type != MsgType::kPutData) {
        pump_error = "unexpected frame inside PUT";
        break;
      }
      streamed += frame.payload.size();
      if (quota.max_logical_bytes != 0 &&
          base_bytes + streamed > quota.max_logical_bytes) {
        over_quota = true;
        break;
      }
      try {
        queue.push(std::move(frame.payload));
      } catch (const ProtocolError&) {
        break;  // worker already failed; its error is authoritative
      }
    }
  } catch (const ProtocolError& e) {
    pump_error = e.what();
  }

  if (over_quota || !pump_error.empty()) {
    queue.fail(std::make_exception_ptr(QuotaExceededError(
        *tenant_id, over_quota ? "aborted mid-stream" : pump_error)));
  } else {
    queue.close();
  }
  worker.join();

  const std::uint64_t us = elapsed_us(start);
  if (over_quota) {
    std::lock_guard<std::mutex> lock(reg_mu_);
    ++ts.counters.quota_rejections;
    write_frame(fd, MsgType::kQuota,
                "logical byte limit " +
                    std::to_string(quota.max_logical_bytes) + " exceeded");
    // Partially written chunks are unreferenced garbage; the next gc
    // maintenance pass reclaims them.
    drain_rejected(fd);
    throw ProtocolError("quota: logical bytes");
  }
  if (!pump_error.empty()) throw ProtocolError(pump_error);
  if (worker_error) {
    try {
      std::rethrow_exception(worker_error);
    } catch (const std::exception& e) {
      write_frame(fd, MsgType::kErr, std::string(e.what()));
      return;
    }
  }

  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    ts.files += 1;
    ts.logical_bytes += counters.input_bytes;
    ++ts.counters.puts;
    ts.counters.files = ts.files;
    ts.counters.logical_bytes = ts.logical_bytes;
    ts.counters.ingest_bytes += counters.input_bytes;
    ts.counters.dup_bytes += counters.dup_bytes;
    ts.counters.queue_high_water =
        std::max<std::uint64_t>(ts.counters.queue_high_water,
                                queue.high_water());
    ts.put_us.record(us);
  }
  std::string summary = "{\"file\":\"" + json_escape(*file_name) +
                        "\",\"input_bytes\":" +
                        std::to_string(counters.input_bytes) +
                        ",\"dup_bytes\":" + std::to_string(counters.dup_bytes) +
                        ",\"micros\":" + std::to_string(us) + "}";
  write_frame(fd, MsgType::kOk, summary);
}

void DedupDaemon::handle_get(int fd, ByteSpan payload) {
  const auto start = Clock::now();
  std::size_t pos = 0;
  const auto tenant_id = read_string(payload, pos);
  const auto file_name = read_string(payload, pos);
  if (!tenant_id || !file_name) throw ProtocolError("malformed Get");
  if (const auto reason = validate_tenant(*tenant_id)) {
    write_frame(fd, MsgType::kErr, *reason);
    return;
  }

  // Restores need no engine and no tenant write lock: RestoreReader is a
  // read-only stream over the tenant view, safe concurrently with
  // everything (the synchronized stack linearizes the object reads).
  TenantView view(sync_, *tenant_id);
  auto reader = RestoreReader::open(view, *file_name);
  if (!reader) {
    write_frame(fd, MsgType::kErr,
                "no such file in tenant '" + *tenant_id + "': " + *file_name);
    return;
  }
  ByteVec buf(kStreamFrameBytes);
  std::size_t n;
  while ((n = reader->read({buf.data(), buf.size()})) > 0) {
    write_frame(fd, MsgType::kData, ByteSpan{buf.data(), n});
  }
  ByteVec tail;
  append_le(tail, reader->produced());
  tail.push_back(reader->ok() ? Byte{1} : Byte{0});
  write_frame(fd, MsgType::kDataEnd, ByteSpan{tail});

  TenantState& ts = tenant(*tenant_id);
  std::lock_guard<std::mutex> lock(reg_mu_);
  ++ts.counters.gets;
  ts.counters.restore_bytes += reader->produced();
  ts.get_us.record(elapsed_us(start));
}

void DedupDaemon::handle_ls(int fd, ByteSpan payload) {
  std::size_t pos = 0;
  const auto tenant_id = read_string(payload, pos);
  if (!tenant_id) throw ProtocolError("malformed Ls");
  if (const auto reason = validate_tenant(*tenant_id)) {
    write_frame(fd, MsgType::kErr, *reason);
    return;
  }
  TenantView view(sync_, *tenant_id);
  std::string json = "[";
  bool first = true;
  for (const auto& f : scan_tenant_files(view)) {
    if (!first) json += ",";
    first = false;
    json += "{\"name\":\"" + json_escape(f.name) +
            "\",\"bytes\":" + std::to_string(f.bytes) + "}";
  }
  json += "]";
  write_frame(fd, MsgType::kOk, json);
}

std::vector<std::string> DedupDaemon::discover_tenants() const {
  // Every daemon-written object carries a `<tenant>.` prefix; union the
  // prefixes across the namespaces a tenant can leave objects in (a
  // tenant whose files were all deleted still has chunks until gc runs).
  std::set<std::string> ids;
  for (const Ns ns : {Ns::kFileManifest, Ns::kManifest, Ns::kHook,
                      Ns::kDiskChunk}) {
    for (const auto& name : sync_.list(ns)) {
      const auto dot = name.find('.');
      if (dot == std::string::npos) continue;
      const std::string id = name.substr(0, dot);
      if (!validate_tenant(id)) ids.insert(id);
    }
  }
  return {ids.begin(), ids.end()};
}

void DedupDaemon::handle_maintain(int fd, ByteSpan payload) {
  if (payload.size() != 1) throw ProtocolError("malformed Maintain");
  const auto op = static_cast<MaintainOp>(payload[0]);
  // Quiesce: wait for in-flight requests to drain, hold off new ones.
  // Engines exist only for the duration of a PUT, so a quiesced daemon
  // has no live index/container state to invalidate.
  std::unique_lock<std::shared_mutex> maint(maint_mu_);
  maintenance_runs_.fetch_add(1);
  // Maintenance runs PER TENANT, through the same namespace view the
  // sessions use: hooks, manifests and index objects reference each other
  // by unprefixed digest names, so only a view resolves them correctly.
  // (Physical container reclamation needs the ContainerBackend itself and
  // stays an offline `dedup_cli gc` operation.)
  const auto tenants = discover_tenants();
  if (op == MaintainOp::kGc) {
    GcReport total;
    for (const auto& id : tenants) {
      TenantView view(sync_, id);
      const auto r = collect_garbage(view);
      total.live_chunks += r.live_chunks;
      total.deleted_chunks += r.deleted_chunks;
      total.reclaimed_bytes += r.reclaimed_bytes;
      total.deleted_manifests += r.deleted_manifests;
      total.deleted_hooks += r.deleted_hooks;
      total.index_rebuilt = total.index_rebuilt || r.index_rebuilt;
    }
    write_frame(
        fd, MsgType::kOk,
        "{\"op\":\"gc\",\"tenants\":" + std::to_string(tenants.size()) +
            ",\"live_chunks\":" + std::to_string(total.live_chunks) +
            ",\"deleted_chunks\":" + std::to_string(total.deleted_chunks) +
            ",\"reclaimed_bytes\":" + std::to_string(total.reclaimed_bytes) +
            ",\"index_rebuilt\":" +
            (total.index_rebuilt ? "true" : "false") + "}");
    return;
  }
  if (op == MaintainOp::kFsck) {
    // Read-only integrity pass (scrub semantics) — safe on every repo
    // flavour; repairing fsck remains an offline fsck_cli operation.
    bool clean = true;
    std::uint64_t file_manifests = 0, chunks = 0, corrupt = 0, dangling = 0;
    for (const auto& id : tenants) {
      TenantView view(sync_, id);
      const auto r = scrub_repository(view);
      clean = clean && r.clean();
      file_manifests += r.file_manifests;
      chunks += r.chunks;
      corrupt += r.corrupt_objects;
      dangling += r.dangling_hooks;
    }
    write_frame(
        fd, MsgType::kOk,
        std::string("{\"op\":\"fsck\",\"tenants\":") +
            std::to_string(tenants.size()) +
            ",\"clean\":" + (clean ? "true" : "false") +
            ",\"file_manifests\":" + std::to_string(file_manifests) +
            ",\"chunks\":" + std::to_string(chunks) +
            ",\"corrupt_objects\":" + std::to_string(corrupt) +
            ",\"dangling_hooks\":" + std::to_string(dangling) + "}");
    return;
  }
  write_frame(fd, MsgType::kErr, std::string("unknown maintenance op"));
}

std::string DedupDaemon::stats_json() const {
  std::lock_guard<std::mutex> lock(reg_mu_);
  std::string json = "{";
  json += "\"active_sessions\":" + std::to_string(active_sessions_.load());
  json += ",\"sessions_served\":" + std::to_string(sessions_served_.load());
  json += ",\"busy_rejections\":" + std::to_string(busy_rejections_.load());
  json += ",\"maintenance_runs\":" + std::to_string(maintenance_runs_.load());
  json += ",\"max_sessions\":" + std::to_string(cfg_.max_sessions);
  json += ",\"session_queue_depth\":" +
          std::to_string(cfg_.session_queue_depth);
  json += ",\"tenants\":{";
  bool first = true;
  for (const auto& [id, ts] : tenants_) {
    if (!first) json += ",";
    first = false;
    const auto& c = ts->counters;
    json += "\"" + json_escape(id) + "\":{";
    json += "\"puts\":" + std::to_string(c.puts);
    json += ",\"gets\":" + std::to_string(c.gets);
    json += ",\"files\":" + std::to_string(ts->files);
    json += ",\"logical_bytes\":" + std::to_string(ts->logical_bytes);
    json += ",\"ingest_bytes\":" + std::to_string(c.ingest_bytes);
    json += ",\"restore_bytes\":" + std::to_string(c.restore_bytes);
    json += ",\"dup_bytes\":" + std::to_string(c.dup_bytes);
    json += ",\"queue_high_water\":" + std::to_string(c.queue_high_water);
    json += ",\"quota_rejections\":" + std::to_string(c.quota_rejections);
    json += ",\"put_p50_us\":" + std::to_string(ts->put_us.quantile(0.5));
    json += ",\"put_p99_us\":" + std::to_string(ts->put_us.quantile(0.99));
    json += ",\"get_p50_us\":" + std::to_string(ts->get_us.quantile(0.5));
    json += ",\"get_p99_us\":" + std::to_string(ts->get_us.quantile(0.99));
    json += "}";
  }
  json += "}}";
  return json;
}

}  // namespace mhd::server
