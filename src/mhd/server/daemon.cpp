#include "mhd/server/daemon.h"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <exception>
#include <set>
#include <vector>

#include "mhd/core/mhd_engine.h"
#include "mhd/index/sampled_index.h"
#include "mhd/metrics/json_export.h"
#include "mhd/server/protocol.h"
#include "mhd/store/maintenance.h"
#include "mhd/store/object_store.h"
#include "mhd/store/restore_reader.h"
#include "mhd/store/scrub.h"
#include "mhd/store/store_errors.h"
#include "mhd/util/buffer_pool.h"

namespace mhd::server {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_us(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

/// ByteSource that pulls PutData payload bytes straight out of the
/// connection's FrameReader — the dedup engine consumes the socket
/// directly on the session thread. No worker thread, no frame queue, no
/// per-frame ByteVec: payload bytes land in whatever buffer the chunker
/// hands down. Backpressure is transport flow control (when the engine
/// stalls, reads stop).
///
/// The stream ends at the PutEnd frame (read() returns 0 from then on).
/// A mid-stream byte-quota breach throws QuotaExceededError; EOF or a
/// non-PutData frame inside the stream throws ProtocolError.
class SocketFrameSource final : public ByteSource {
 public:
  static constexpr std::uint64_t kUnlimited = ~0ull;

  /// read() throws QuotaExceededError once more than `byte_budget` bytes
  /// have streamed (kUnlimited disables the check; 0 aborts on the first
  /// payload byte — a tenant already at its limit may still PUT an empty
  /// file, matching the historical base + streamed > max semantics).
  SocketFrameSource(FrameReader& reader, std::string tenant,
                    std::uint64_t byte_budget)
      : reader_(&reader),
        tenant_(std::move(tenant)),
        byte_budget_(byte_budget) {}

  std::size_t read(MutByteSpan out) override {
    std::size_t done = 0;
    while (done < out.size() && !ended_) {
      if (reader_->payload_remaining() == 0) {
        MsgType type;
        std::uint32_t len;
        if (!reader_->next_header(type, len)) {
          throw ProtocolError("connection closed mid-PUT");
        }
        if (type == MsgType::kPutEnd) {
          if (len != 0) throw ProtocolError("malformed PutEnd");
          ended_ = true;
          break;
        }
        if (type != MsgType::kPutData) {
          throw ProtocolError("unexpected frame inside PUT");
        }
        continue;  // 0-length PutData is legal; fetch the next header
      }
      const std::size_t n =
          reader_->read_payload({out.data() + done, out.size() - done});
      done += n;
      streamed_ += n;
      if (streamed_ > byte_budget_) {
        throw QuotaExceededError(tenant_, "aborted mid-stream");
      }
    }
    return done;
  }

  std::uint64_t streamed() const { return streamed_; }
  bool ended() const { return ended_; }

 private:
  FrameReader* reader_;
  std::string tenant_;
  std::uint64_t byte_budget_;
  std::uint64_t streamed_ = 0;
  bool ended_ = false;
};

/// Consumes the remainder of an in-flight PUT stream through the
/// connection's FrameReader — open frame payload first, then whole frames
/// up to and including PutEnd — so a PUT that failed server-side can be
/// answered on a still-frame-aligned connection (the Retry path keeps the
/// connection alive, unlike the quota path's FIN-and-drop). Throws the
/// same typed errors as the data path when the peer dies or misbehaves
/// mid-drain; the drain cannot hang past SO_RCVTIMEO.
void drain_put_stream(FrameReader& reader) {
  ByteVec sink(32u << 10);
  for (;;) {
    while (reader.payload_remaining() > 0) {
      reader.read_payload({sink.data(), sink.size()});
    }
    MsgType type;
    std::uint32_t len;
    if (!reader.next_header(type, len)) {
      throw PeerDisconnectedError("connection closed mid-PUT");
    }
    if (type == MsgType::kPutEnd) {
      if (len != 0) throw ProtocolError("malformed PutEnd");
      return;
    }
    if (type != MsgType::kPutData) {
      throw ProtocolError("unexpected frame inside PUT");
    }
  }
}

/// Graceful rejection: the response frame is already queued; FIN our write
/// side and drain (bounded) whatever the peer is still streaming, so the
/// close never turns into an RST that destroys the undelivered response.
void drain_rejected(int fd) {
  ::shutdown(fd, SHUT_WR);
  timeval tv{2, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char sink[4096];
  while (::recv(fd, sink, sizeof(sink), 0) > 0) {
  }
}

}  // namespace

/// The warm per-tenant engine stack. Constructed on a tenant's first PUT
/// and reused by later PUTs (under the tenant's write_mu) until the
/// maintenance gate, an ingest error, or daemon stop drops it. Member
/// order is the dependency order: view over the shared synchronized
/// backend, store over the view, engine over the store.
struct DedupDaemon::EngineSession {
  TenantView view;
  ObjectStore store;
  MhdEngine engine;

  EngineSession(SyncBackend& sync, const std::string& tenant,
                const EngineConfig& cfg)
      : view(sync, tenant), store(view), engine(store, cfg) {}

  /// Non-null when this tenant's engine runs the sampled similarity tier.
  const SampledIndex* sampled() const {
    return dynamic_cast<const SampledIndex*>(engine.fingerprint_index());
  }
};

DedupDaemon::DedupDaemon(StorageBackend& active, StorageBackend& raw,
                         DaemonConfig cfg)
    : sync_(active), raw_(raw), cfg_(std::move(cfg)) {
  if (cfg_.max_sessions == 0) cfg_.max_sessions = 1;
  if (cfg_.session_queue_depth == 0) cfg_.session_queue_depth = 1;
  if (!cfg_.net_fault_plan.empty()) {
    net_fault_plan_ = NetFaultPlan::parse(cfg_.net_fault_plan);
  }
}

DedupDaemon::~DedupDaemon() { stop(); }

void DedupDaemon::start() {
  listener_.listen(cfg_.listen);
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void DedupDaemon::stop() {
  if (!running_.exchange(false)) return;
  listener_.wake();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Unblock sessions stuck in socket reads, then join them all.
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    for (auto& slot : sessions_) {
      if (!slot->done.load() && slot->fd >= 0) {
        ::shutdown(slot->fd, SHUT_RDWR);
      }
    }
  }
  for (;;) {
    std::unique_ptr<SessionSlot> slot;
    {
      std::lock_guard<std::mutex> lock(reg_mu_);
      if (sessions_.empty()) break;
      slot = std::move(sessions_.front());
      sessions_.pop_front();
    }
    if (slot->thread.joinable()) slot->thread.join();
  }
  listener_.close();
  // Drain flush boundary: every PUT already ended with flush_session(),
  // so dropping the warm engines here releases their RAM without any
  // further writes.
  drop_engine_sessions();
}

void DedupDaemon::drop_engine_sessions() {
  std::lock_guard<std::mutex> lock(reg_mu_);
  for (auto& [id, ts] : tenants_) ts->session.reset();
}

std::string DedupDaemon::listen_spec() const {
  if (listener_.port() != 0) return "tcp:" + std::to_string(listener_.port());
  return listener_.spec();
}

void DedupDaemon::reap_finished_sessions() {
  std::list<std::unique_ptr<SessionSlot>> finished;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if ((*it)->done.load()) {
        finished.push_back(std::move(*it));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& slot : finished) {
    if (slot->thread.joinable()) slot->thread.join();
  }
}

void DedupDaemon::accept_loop() {
  while (running_.load()) {
    int fd = listener_.accept();
    if (fd < 0) break;  // woken for shutdown or listener error
    reap_finished_sessions();
    // Admission control: reject beyond max_sessions with an explicit
    // retry hint rather than queueing unbounded connections.
    std::uint32_t active = active_sessions_.load();
    bool admitted = false;
    while (active < cfg_.max_sessions) {
      if (active_sessions_.compare_exchange_weak(active, active + 1)) {
        admitted = true;
        break;
      }
    }
    if (!admitted) {
      busy_rejections_.fetch_add(1);
      ByteVec payload;
      append_le(payload, cfg_.retry_after_ms);
      try {
        write_frame(fd, MsgType::kBusy, ByteSpan{payload});
      } catch (const ProtocolError&) {
      }
      drain_rejected(fd);
      ::close(fd);
      continue;
    }
    // Chaos interposition happens before any socket tuning so the
    // timeout below lands on the fd the session actually reads from
    // (the proxy's socketpair end when the plan selects this conn).
    const std::uint64_t conn_index = accepted_conns_.fetch_add(1) + 1;
    if (!net_fault_plan_.empty()) {
      fd = wrap_with_net_faults(fd, net_fault_plan_, conn_index);
    }
    // A stalled peer must not pin a session slot (and with it the shared
    // maintenance lock) forever.
    if (cfg_.idle_timeout_ms != 0) {
      timeval tv{};
      tv.tv_sec = cfg_.idle_timeout_ms / 1000;
      tv.tv_usec = static_cast<suseconds_t>(cfg_.idle_timeout_ms % 1000) *
                   1000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    auto slot = std::make_unique<SessionSlot>();
    slot->fd = fd;
    SessionSlot* raw_slot = slot.get();
    {
      std::lock_guard<std::mutex> lock(reg_mu_);
      sessions_.push_back(std::move(slot));
    }
    raw_slot->thread = std::thread([this, raw_slot] {
      serve_connection(*raw_slot);
      ::close(raw_slot->fd);
      active_sessions_.fetch_sub(1);
      sessions_served_.fetch_add(1);
      raw_slot->done.store(true);
    });
  }
}

void DedupDaemon::serve_connection(SessionSlot& slot) {
  const int fd = slot.fd;
  tune_stream_socket(fd);
  // The reader owns the connection's read side for its whole life; every
  // handler that consumes frames (the PUT data path) goes through it.
  FrameReader reader(fd);
  try {
    Frame frame;
    while (reader.read_frame(frame)) {
      switch (frame.type) {
        case MsgType::kPing: {
          std::shared_lock<std::shared_mutex> maint(maint_mu_);
          write_frame(fd, MsgType::kOk, std::string("pong"));
          break;
        }
        case MsgType::kStats: {
          std::shared_lock<std::shared_mutex> maint(maint_mu_);
          // A 1-byte payload of 0x01 atomically resets the latency
          // histograms with the snapshot (bench phase boundaries).
          const bool reset =
              frame.payload.size() == 1 && frame.payload[0] == Byte{1};
          write_frame(fd, MsgType::kOk,
                      reset ? stats_json_and_reset() : stats_json());
          break;
        }
        case MsgType::kPutBegin: {
          std::shared_lock<std::shared_mutex> maint(maint_mu_);
          handle_put(fd, reader, ByteSpan{frame.payload});
          break;
        }
        case MsgType::kGet: {
          std::shared_lock<std::shared_mutex> maint(maint_mu_);
          handle_get(fd, ByteSpan{frame.payload});
          break;
        }
        case MsgType::kLs: {
          std::shared_lock<std::shared_mutex> maint(maint_mu_);
          handle_ls(fd, ByteSpan{frame.payload});
          break;
        }
        case MsgType::kMaintain:
          // Takes maint_mu_ exclusively itself — must not hold it shared.
          handle_maintain(fd, ByteSpan{frame.payload});
          break;
        default:
          protocol_errors_.fetch_add(1);
          write_frame(fd, MsgType::kErr, std::string("unexpected frame"));
          return;  // protocol state lost; drop the connection
      }
    }
    // Typed and counted per cause (most-derived first — both subclasses
    // ARE ProtocolErrors). This was one silent catch before: a hostile
    // malformed peer, a client killed mid-PUT, and a slowloris reaped by
    // the receive timeout were indistinguishable in every stats view.
  } catch (const IdleTimeoutError&) {
    idle_timeout_reaps_.fetch_add(1);
  } catch (const PeerDisconnectedError&) {
    peer_disconnects_.fetch_add(1);
  } catch (const ProtocolError&) {
    protocol_errors_.fetch_add(1);
  } catch (const std::exception& e) {
    try {
      write_frame(fd, MsgType::kErr, std::string(e.what()));
    } catch (const ProtocolError&) {
    }
  }
}

DedupDaemon::TenantState& DedupDaemon::tenant(const std::string& id) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  auto& slot = tenants_[id];
  if (!slot) slot = std::make_unique<TenantState>();
  return *slot;
}

void DedupDaemon::seed_tenant(const std::string& id, TenantState& ts) {
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    if (ts.seeded) return;
  }
  // Repository scan outside the registry lock (it reads objects).
  TenantView view(sync_, id);
  const auto files = scan_tenant_files(view);
  std::uint64_t bytes = 0;
  for (const auto& f : files) bytes += f.bytes;
  std::lock_guard<std::mutex> lock(reg_mu_);
  if (ts.seeded) return;
  ts.seeded = true;
  ts.files = files.size();
  ts.logical_bytes = bytes;
}

void DedupDaemon::handle_put(int fd, FrameReader& reader, ByteSpan payload) {
  const auto start = Clock::now();
  std::size_t pos = 0;
  const auto tenant_id = read_string(payload, pos);
  const auto file_name = read_string(payload, pos);
  if (!tenant_id || !file_name || file_name->empty()) {
    throw ProtocolError("malformed PutBegin");
  }
  if (const auto reason = validate_tenant(*tenant_id)) {
    write_frame(fd, MsgType::kErr, *reason);
    drain_rejected(fd);
    throw ProtocolError("invalid tenant id");  // drop: data frames follow
  }

  TenantState& ts = tenant(*tenant_id);
  // One writer per tenant namespace; cross-tenant PUTs stay concurrent.
  std::lock_guard<std::mutex> writer(ts.write_mu);
  seed_tenant(*tenant_id, ts);

  std::uint64_t base_bytes = 0, base_files = 0;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    base_bytes = ts.logical_bytes;
    base_files = ts.files;
  }
  const auto& quota = cfg_.quota;
  if (quota.max_files != 0 && base_files + 1 > quota.max_files) {
    std::lock_guard<std::mutex> lock(reg_mu_);
    ++ts.counters.quota_rejections;
    write_frame(fd, MsgType::kQuota,
                "file count limit " + std::to_string(quota.max_files) +
                    " reached");
    drain_rejected(fd);
    throw ProtocolError("quota: file count");
  }

  // Remaining byte budget for this PUT (base + streamed > max aborts).
  const std::uint64_t budget =
      quota.max_logical_bytes == 0
          ? SocketFrameSource::kUnlimited
          : (quota.max_logical_bytes > base_bytes
                 ? quota.max_logical_bytes - base_bytes
                 : 0);
  SocketFrameSource src(reader, *tenant_id, budget);

  // The engine consumes the socket inline. Any exception invalidates the
  // warm session (a half-ingested engine's cache/bloom state is no longer
  // derivable from disk) — the next PUT rebuilds it fresh, which is
  // exactly the baseline's behavior over the same on-disk state. The warm
  // session is (re)built INSIDE the try: booting the engine stack reads
  // hooks and index objects, so construction can hit the same transient
  // store faults as ingest itself and must take the same Retry path.
  EngineCounters before, after;
  std::uint64_t retries_before = 0;
  std::uint64_t put_transient_retries = 0;
  bool sampled_tier = false;
  std::uint64_t sampled_champs = 0, sampled_missed = 0, sampled_hooks = 0;
  try {
    if (!ts.session) {
      ts.session =
          std::make_unique<EngineSession>(sync_, *tenant_id, cfg_.engine);
    }
    EngineSession& sess = *ts.session;
    before = sess.engine.counters();
    retries_before = sess.store.stats().transient_retries;
    // The sampled tier's counters are cumulative (persisted across engine
    // rebuilds), so the per-PUT contribution is a delta like the engine's.
    std::uint64_t champs_before = 0, missed_before = 0;
    if (const SampledIndex* s = sess.sampled()) {
      champs_before = s->champion_loads();
      missed_before = s->missed_dup_bytes();
    }
    sess.engine.add_file(*file_name, src);
    sess.engine.end_snapshot();
    after = sess.engine.counters();
    put_transient_retries =
        sess.store.stats().transient_retries - retries_before;
    if (const SampledIndex* s = sess.sampled()) {
      sampled_tier = true;
      sampled_champs = s->champion_loads() - champs_before;
      sampled_missed = s->missed_dup_bytes() - missed_before;
      sampled_hooks = s->hook_entries();
    }
    if (!sess.engine.flush_session()) ts.session.reset();
  } catch (const QuotaExceededError&) {
    ts.session.reset();
    std::lock_guard<std::mutex> lock(reg_mu_);
    ++ts.counters.quota_rejections;
    write_frame(fd, MsgType::kQuota,
                "logical byte limit " +
                    std::to_string(quota.max_logical_bytes) + " exceeded");
    // Partially written chunks are unreferenced garbage; the next gc
    // maintenance pass reclaims them.
    drain_rejected(fd);
    throw ProtocolError("quota: logical bytes");
  } catch (const TransientReadError& e) {
    // Store retries exhausted — a RETRYABLE failure, not a connection
    // death. The warm session is poisoned (half-ingested cache state) and
    // dropped; partially written chunks are unreferenced garbage for the
    // next gc, exactly like the quota abort. But unlike quota the
    // CONNECTION is fine: drain the rest of the PUT stream to stay
    // frame-aligned and answer Retry — the client re-sends the same PUT
    // against a freshly rebuilt session.
    const std::uint64_t burned =
        ts.session
            ? ts.session->store.stats().transient_retries - retries_before
            : 0;
    ts.session.reset();
    {
      std::lock_guard<std::mutex> lock(reg_mu_);
      ++ts.counters.retryable_errors;
      ts.counters.transient_retries += burned;
    }
    retryable_errors_.fetch_add(1);
    transient_retries_.fetch_add(burned);
    if (!src.ended()) drain_put_stream(reader);
    ByteVec retry;
    append_le(retry, cfg_.retry_after_ms);
    const std::string reason = e.what();
    retry.insert(retry.end(),
                 reinterpret_cast<const Byte*>(reason.data()),
                 reinterpret_cast<const Byte*>(reason.data()) +
                     reason.size());
    write_frame(fd, MsgType::kRetry, ByteSpan{retry});
    return;
  } catch (const IdleTimeoutError&) {
    ts.session.reset();
    {
      std::lock_guard<std::mutex> lock(reg_mu_);
      ++ts.counters.idle_timeout_reaps;
    }
    throw;  // serve loop reaps the connection and counts it globally
  } catch (const PeerDisconnectedError&) {
    ts.session.reset();
    {
      std::lock_guard<std::mutex> lock(reg_mu_);
      ++ts.counters.peer_disconnects;
    }
    throw;
  } catch (const ProtocolError&) {
    ts.session.reset();
    {
      std::lock_guard<std::mutex> lock(reg_mu_);
      ++ts.counters.protocol_errors;
    }
    throw;  // connection-level failure: serve loop drops the connection
  } catch (const std::exception& e) {
    ts.session.reset();
    write_frame(fd, MsgType::kErr, std::string(e.what()));
    return;  // stray PutData frames will end the serve loop
  }

  const std::uint64_t input_bytes = after.input_bytes - before.input_bytes;
  const std::uint64_t dup_bytes = after.dup_bytes - before.dup_bytes;

  const std::uint64_t us = elapsed_us(start);
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    ts.files += 1;
    ts.logical_bytes += input_bytes;
    ++ts.counters.puts;
    ts.counters.files = ts.files;
    ts.counters.logical_bytes = ts.logical_bytes;
    ts.counters.ingest_bytes += input_bytes;
    ts.counters.dup_bytes += dup_bytes;
    ts.counters.queue_high_water = std::max<std::uint64_t>(
        ts.counters.queue_high_water, reader.buffer_high_water());
    ts.counters.transient_retries += put_transient_retries;
    if (sampled_tier) {
      ts.counters.champion_loads += sampled_champs;
      ts.counters.sampled_missed_dup_bytes += sampled_missed;
      ts.counters.sampled_hook_entries = sampled_hooks;
    }
    ts.put_us.record(us);
  }
  if (put_transient_retries != 0) {
    transient_retries_.fetch_add(put_transient_retries);
  }
  std::string summary = "{\"file\":\"" + json_escape(*file_name) +
                        "\",\"input_bytes\":" + std::to_string(input_bytes) +
                        ",\"dup_bytes\":" + std::to_string(dup_bytes) +
                        ",\"micros\":" + std::to_string(us) + "}";
  write_frame(fd, MsgType::kOk, summary);
}

void DedupDaemon::handle_get(int fd, ByteSpan payload) {
  const auto start = Clock::now();
  std::size_t pos = 0;
  const auto tenant_id = read_string(payload, pos);
  const auto file_name = read_string(payload, pos);
  if (!tenant_id || !file_name) throw ProtocolError("malformed Get");
  if (const auto reason = validate_tenant(*tenant_id)) {
    write_frame(fd, MsgType::kErr, *reason);
    return;
  }

  // Restores need no engine and no tenant write lock: RestoreReader is a
  // read-only stream over the tenant view, safe concurrently with
  // everything (the synchronized stack linearizes the object reads).
  TenantView view(sync_, *tenant_id);
  TenantState& ts = tenant(*tenant_id);
  std::uint64_t sent_bytes = 0;
  std::uint64_t produced = 0;
  std::uint64_t get_retries = 0;
  bool stream_ok = false;
  try {
    auto reader = RestoreReader::open(view, *file_name);
    if (!reader) {
      write_frame(fd, MsgType::kErr, "no such file in tenant '" +
                                         *tenant_id + "': " + *file_name);
      // Failed GETs get their own histogram — a fast "no such file" must
      // not drag the success percentiles down.
      std::lock_guard<std::mutex> lock(reg_mu_);
      ++ts.counters.get_errors;
      ts.get_err_us.record(elapsed_us(start));
      return;
    }
    // Recycled staging slab: steady-state restore streaming allocates
    // nothing per GET after warm-up.
    ByteVec buf = chunk_buffer_pool().acquire();
    buf.resize(kStreamFrameBytes);
    std::size_t n;
    while ((n = reader->read({buf.data(), buf.size()})) > 0) {
      write_frame(fd, MsgType::kData, ByteSpan{buf.data(), n});
      sent_bytes += n;
    }
    chunk_buffer_pool().release(std::move(buf));
    produced = reader->produced();
    get_retries = reader->transient_retries();
    stream_ok = reader->ok();
  } catch (const TransientReadError& e) {
    // Store retries exhausted mid-restore. Before any Data frame has
    // left, the whole GET is retryable: answer Retry and keep the
    // connection (the client re-requests against a hopefully-recovered
    // backend). Mid-stream the delivered prefix cannot be recalled, so
    // end the stream honestly with ok=0 — the existing "short stream,
    // never wrong bytes" contract.
    {
      std::lock_guard<std::mutex> lock(reg_mu_);
      ++ts.counters.retryable_errors;
      ++ts.counters.get_errors;
      ts.get_err_us.record(elapsed_us(start));
    }
    retryable_errors_.fetch_add(1);
    if (sent_bytes == 0) {
      ByteVec retry;
      append_le(retry, cfg_.retry_after_ms);
      const std::string reason = e.what();
      retry.insert(retry.end(),
                   reinterpret_cast<const Byte*>(reason.data()),
                   reinterpret_cast<const Byte*>(reason.data()) +
                       reason.size());
      write_frame(fd, MsgType::kRetry, ByteSpan{retry});
    } else {
      ByteVec tail;
      append_le(tail, sent_bytes);
      tail.push_back(Byte{0});
      write_frame(fd, MsgType::kDataEnd, ByteSpan{tail});
    }
    return;
  }
  ByteVec tail;
  append_le(tail, produced);
  tail.push_back(stream_ok ? Byte{1} : Byte{0});
  write_frame(fd, MsgType::kDataEnd, ByteSpan{tail});

  if (get_retries != 0) transient_retries_.fetch_add(get_retries);
  std::lock_guard<std::mutex> lock(reg_mu_);
  ++ts.counters.gets;
  ts.counters.restore_bytes += produced;
  ts.counters.transient_retries += get_retries;
  // A stream that ended short (damaged objects) is a failure: record it
  // apart from the successes even though DataEnd was delivered.
  if (stream_ok) {
    ts.get_us.record(elapsed_us(start));
  } else {
    ++ts.counters.get_errors;
    ts.get_err_us.record(elapsed_us(start));
  }
}

void DedupDaemon::handle_ls(int fd, ByteSpan payload) {
  std::size_t pos = 0;
  const auto tenant_id = read_string(payload, pos);
  if (!tenant_id) throw ProtocolError("malformed Ls");
  if (const auto reason = validate_tenant(*tenant_id)) {
    write_frame(fd, MsgType::kErr, *reason);
    return;
  }
  TenantView view(sync_, *tenant_id);
  std::string json = "[";
  bool first = true;
  for (const auto& f : scan_tenant_files(view)) {
    if (!first) json += ",";
    first = false;
    json += "{\"name\":\"" + json_escape(f.name) +
            "\",\"bytes\":" + std::to_string(f.bytes) + "}";
  }
  json += "]";
  write_frame(fd, MsgType::kOk, json);
}

std::vector<std::string> DedupDaemon::discover_tenants() const {
  // Every daemon-written object carries a `<tenant>.` prefix; union the
  // prefixes across the namespaces a tenant can leave objects in (a
  // tenant whose files were all deleted still has chunks until gc runs).
  std::set<std::string> ids;
  for (const Ns ns : {Ns::kFileManifest, Ns::kManifest, Ns::kHook,
                      Ns::kDiskChunk}) {
    for (const auto& name : sync_.list(ns)) {
      const auto dot = name.find('.');
      if (dot == std::string::npos) continue;
      const std::string id = name.substr(0, dot);
      if (!validate_tenant(id)) ids.insert(id);
    }
  }
  return {ids.begin(), ids.end()};
}

void DedupDaemon::handle_maintain(int fd, ByteSpan payload) {
  if (payload.size() != 1) throw ProtocolError("malformed Maintain");
  const auto op = static_cast<MaintainOp>(payload[0]);
  // Quiesce: wait for in-flight requests to drain, hold off new ones.
  // Every PUT ends with flush_session(), so the quiesced store is fully
  // durable; the warm engine sessions are then dropped because gc/fsck
  // rewrite the hooks, manifests and index objects beneath them — the
  // next PUT rebuilds from the post-maintenance disk state.
  std::unique_lock<std::shared_mutex> maint(maint_mu_);
  drop_engine_sessions();
  maintenance_runs_.fetch_add(1);
  // Maintenance runs PER TENANT, through the same namespace view the
  // sessions use: hooks, manifests and index objects reference each other
  // by unprefixed digest names, so only a view resolves them correctly.
  // (Physical container reclamation needs the ContainerBackend itself and
  // stays an offline `dedup_cli gc` operation.)
  const auto tenants = discover_tenants();
  if (op == MaintainOp::kGc) {
    GcReport total;
    for (const auto& id : tenants) {
      TenantView view(sync_, id);
      const auto r = collect_garbage(view);
      total.live_chunks += r.live_chunks;
      total.deleted_chunks += r.deleted_chunks;
      total.reclaimed_bytes += r.reclaimed_bytes;
      total.deleted_manifests += r.deleted_manifests;
      total.deleted_hooks += r.deleted_hooks;
      total.index_rebuilt = total.index_rebuilt || r.index_rebuilt;
    }
    write_frame(
        fd, MsgType::kOk,
        "{\"op\":\"gc\",\"tenants\":" + std::to_string(tenants.size()) +
            ",\"live_chunks\":" + std::to_string(total.live_chunks) +
            ",\"deleted_chunks\":" + std::to_string(total.deleted_chunks) +
            ",\"reclaimed_bytes\":" + std::to_string(total.reclaimed_bytes) +
            ",\"index_rebuilt\":" +
            (total.index_rebuilt ? "true" : "false") + "}");
    return;
  }
  if (op == MaintainOp::kFsck) {
    // Read-only integrity pass (scrub semantics) — safe on every repo
    // flavour; repairing fsck remains an offline fsck_cli operation.
    bool clean = true;
    std::uint64_t file_manifests = 0, chunks = 0, corrupt = 0, dangling = 0;
    for (const auto& id : tenants) {
      TenantView view(sync_, id);
      const auto r = scrub_repository(view);
      clean = clean && r.clean();
      file_manifests += r.file_manifests;
      chunks += r.chunks;
      corrupt += r.corrupt_objects;
      dangling += r.dangling_hooks;
    }
    write_frame(
        fd, MsgType::kOk,
        std::string("{\"op\":\"fsck\",\"tenants\":") +
            std::to_string(tenants.size()) +
            ",\"clean\":" + (clean ? "true" : "false") +
            ",\"file_manifests\":" + std::to_string(file_manifests) +
            ",\"chunks\":" + std::to_string(chunks) +
            ",\"corrupt_objects\":" + std::to_string(corrupt) +
            ",\"dangling_hooks\":" + std::to_string(dangling) + "}");
    return;
  }
  write_frame(fd, MsgType::kErr, std::string("unknown maintenance op"));
}

std::string DedupDaemon::stats_json() const {
  return build_stats_json(/*reset_histograms=*/false);
}

std::string DedupDaemon::stats_json_and_reset() {
  return build_stats_json(/*reset_histograms=*/true);
}

std::string DedupDaemon::build_stats_json(bool reset_histograms) const {
  // One reg_mu_ hold for the whole snapshot (and the optional reset): a
  // reader either sees every sample of a PUT/GET or none of it, and a
  // reset can never lose a sample recorded between snapshot and zeroing.
  std::lock_guard<std::mutex> lock(reg_mu_);
  std::string json = "{";
  json += "\"active_sessions\":" + std::to_string(active_sessions_.load());
  json += ",\"sessions_served\":" + std::to_string(sessions_served_.load());
  json += ",\"busy_rejections\":" + std::to_string(busy_rejections_.load());
  json += ",\"maintenance_runs\":" + std::to_string(maintenance_runs_.load());
  json += ",\"max_sessions\":" + std::to_string(cfg_.max_sessions);
  json += ",\"session_queue_depth\":" +
          std::to_string(cfg_.session_queue_depth);
  // Resolved per-tenant engine routing (stickiness already applied by the
  // caller's config), so clients can see which index tier serves them.
  json += std::string(",\"index_impl\":\"") +
          (cfg_.engine.index_impl == IndexImpl::kDisk      ? "disk"
           : cfg_.engine.index_impl == IndexImpl::kSampled ? "sampled"
                                                           : "mem") +
          "\"";
  if (cfg_.engine.index_impl == IndexImpl::kSampled) {
    json += ",\"sample_bits\":" + std::to_string(cfg_.engine.sample_bits);
  }
  json += ",\"protocol_errors\":" + std::to_string(protocol_errors_.load());
  json +=
      ",\"peer_disconnects\":" + std::to_string(peer_disconnects_.load());
  json += ",\"idle_timeout_reaps\":" +
          std::to_string(idle_timeout_reaps_.load());
  json += ",\"transient_retries\":" +
          std::to_string(transient_retries_.load());
  json +=
      ",\"retryable_errors\":" + std::to_string(retryable_errors_.load());
  json += ",\"tenants\":{";
  bool first = true;
  for (const auto& [id, ts] : tenants_) {
    if (!first) json += ",";
    first = false;
    const auto& c = ts->counters;
    json += "\"" + json_escape(id) + "\":{";
    json += "\"puts\":" + std::to_string(c.puts);
    json += ",\"gets\":" + std::to_string(c.gets);
    json += ",\"files\":" + std::to_string(ts->files);
    json += ",\"logical_bytes\":" + std::to_string(ts->logical_bytes);
    json += ",\"ingest_bytes\":" + std::to_string(c.ingest_bytes);
    json += ",\"restore_bytes\":" + std::to_string(c.restore_bytes);
    json += ",\"dup_bytes\":" + std::to_string(c.dup_bytes);
    json += ",\"queue_high_water\":" + std::to_string(c.queue_high_water);
    json += ",\"quota_rejections\":" + std::to_string(c.quota_rejections);
    json += ",\"get_errors\":" + std::to_string(c.get_errors);
    json += ",\"protocol_errors\":" + std::to_string(c.protocol_errors);
    json += ",\"peer_disconnects\":" + std::to_string(c.peer_disconnects);
    json += ",\"idle_timeout_reaps\":" +
            std::to_string(c.idle_timeout_reaps);
    json += ",\"transient_retries\":" +
            std::to_string(c.transient_retries);
    json += ",\"retryable_errors\":" + std::to_string(c.retryable_errors);
    json += ",\"champion_loads\":" + std::to_string(c.champion_loads);
    json += ",\"sampled_missed_dup_bytes\":" +
            std::to_string(c.sampled_missed_dup_bytes);
    json += ",\"sampled_hook_entries\":" +
            std::to_string(c.sampled_hook_entries);
    json += ",\"put_p50_us\":" + std::to_string(ts->put_us.quantile(0.5));
    json += ",\"put_p99_us\":" + std::to_string(ts->put_us.quantile(0.99));
    json += ",\"get_p50_us\":" + std::to_string(ts->get_us.quantile(0.5));
    json += ",\"get_p99_us\":" + std::to_string(ts->get_us.quantile(0.99));
    json += ",\"get_err_p99_us\":" +
            std::to_string(ts->get_err_us.quantile(0.99));
    json += "}";
    if (reset_histograms) {
      // unique_ptr's shallow const lets the snapshot-and-reset flavour
      // share this builder; reg_mu_ serializes it against recorders.
      ts->put_us.reset();
      ts->get_us.reset();
      ts->get_err_us.reset();
    }
  }
  json += "}}";
  return json;
}

}  // namespace mhd::server
