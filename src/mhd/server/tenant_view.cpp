#include "mhd/server/tenant_view.h"

#include <algorithm>

#include "mhd/format/file_manifest.h"

namespace mhd::server {

std::vector<TenantFile> scan_tenant_files(const StorageBackend& view) {
  std::vector<TenantFile> files;
  for (const auto& obj : view.list(Ns::kFileManifest)) {
    std::optional<ByteVec> raw;
    try {
      raw = view.get(Ns::kFileManifest, obj);
    } catch (const StoreError&) {
      continue;  // unreadable manifest: not restorable, not counted
    }
    if (!raw) continue;
    const auto fm = FileManifest::deserialize(*raw);
    if (!fm) continue;
    files.push_back({fm->file_name(), fm->total_length()});
  }
  std::sort(files.begin(), files.end(),
            [](const TenantFile& a, const TenantFile& b) {
              return a.name < b.name;
            });
  return files;
}

}  // namespace mhd::server
