// DedupClient — typed client for the daemon protocol.
//
// One connection, one request at a time (the protocol is strict
// request/response). Results carry the admission-control outcome
// explicitly: `busy` + retry_after_ms when the daemon is at its session
// limit (callers are expected to back off and retry), `quota` when a PUT
// hit the tenant's limits. Both CLI subcommands and the server tests
// drive the daemon exclusively through this class.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "mhd/chunk/byte_source.h"
#include "mhd/server/protocol.h"

namespace mhd::server {

class DedupClient {
 public:
  /// Connects to "unix:<path>" or "tcp:<port>"; nullopt on failure.
  static std::optional<DedupClient> connect(const std::string& spec);
  ~DedupClient();
  DedupClient(DedupClient&& other) noexcept;
  DedupClient& operator=(DedupClient&&) = delete;
  DedupClient(const DedupClient&) = delete;
  DedupClient& operator=(const DedupClient&) = delete;

  struct Result {
    bool ok = false;
    bool busy = false;    ///< daemon at max sessions; retry after hint
    bool quota = false;   ///< tenant quota exceeded
    std::uint32_t retry_after_ms = 0;
    std::string message;  ///< Ok payload (JSON where structured) or error
  };

  struct GetResult : Result {
    std::uint64_t produced = 0;
    /// False when the daemon hit damaged objects mid-restore (short
    /// stream, never wrong bytes).
    bool stream_ok = false;
  };

  /// Streams `src` as the tenant's file `name`.
  Result put(const std::string& tenant, const std::string& name,
             ByteSource& src);
  Result put_bytes(const std::string& tenant, const std::string& name,
                   ByteSpan data);

  /// Streams the restored bytes into `sink` chunk by chunk.
  GetResult get(const std::string& tenant, const std::string& name,
                const std::function<void(ByteSpan)>& sink);

  Result ls(const std::string& tenant);  ///< message: JSON file array
  /// message: JSON daemon stats. `reset` atomically zeroes the latency
  /// histograms with the snapshot (bench phase boundaries).
  Result stats(bool reset = false);
  Result maintain(MaintainOp op);        ///< message: JSON report
  Result ping();

 private:
  explicit DedupClient(int fd)
      : fd_(fd), reader_(std::make_unique<FrameReader>(fd)) {}
  Result read_response();

  int fd_ = -1;
  /// Owns the connection's read side (coalesced reads); behind a pointer
  /// because FrameReader is non-movable and DedupClient moves.
  std::unique_ptr<FrameReader> reader_;
  /// Staging slab reused by every put() of this client's lifetime.
  ByteVec put_buf_;
};

}  // namespace mhd::server
