// DedupClient — typed client for the daemon protocol.
//
// One connection, one request at a time (the protocol is strict
// request/response). Results carry the admission-control outcome
// explicitly: `busy` + retry_after_ms when the daemon is at its session
// limit, `quota` when a PUT hit the tenant's limits, `retryable` when the
// daemon hit a transient store fault and asked for a re-send, and
// `transport` when the connection itself died. Both CLI subcommands and
// the server tests drive the daemon exclusively through this class.
//
// Resilience is opt-in via set_retry_policy(): with a nonzero retry
// count, every operation absorbs Busy responses, Retry responses and
// transport failures by backing off (capped exponential with
// deterministic jitter, honoring the daemon's retry_after_ms hint),
// reconnecting when the connection is gone, and re-sending the request.
// PUTs re-send through a source factory (a ByteSource is not rewindable);
// GETs only retry while zero payload bytes have reached the sink (the
// sink is not rewindable either). The default policy retries nothing —
// exactly the historical behavior.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "mhd/chunk/byte_source.h"
#include "mhd/server/protocol.h"

namespace mhd::server {

/// Client-side backoff contract. An operation is attempted once plus at
/// most max_retries more times; before retry k (0-based) the client
/// sleeps max(daemon hint, jitter(min(base_backoff_ms << k,
/// max_backoff_ms))) where jitter draws uniformly from [d/2, d] with a
/// seeded xorshift — deterministic for tests, decorrelated across
/// clients via the seed. budget_ms caps the SUM of sleeps (0 = no cap):
/// once the next sleep would exceed it, the last failure is returned.
struct RetryPolicy {
  std::uint32_t max_retries = 0;  ///< 0 = never retry (historical)
  std::uint32_t base_backoff_ms = 10;
  std::uint32_t max_backoff_ms = 2'000;
  std::uint32_t budget_ms = 0;
  std::uint64_t seed = 1;
};

class DedupClient {
 public:
  /// Connects to "unix:<path>" or "tcp:<port>"; nullopt on failure.
  static std::optional<DedupClient> connect(const std::string& spec);
  ~DedupClient();
  DedupClient(DedupClient&& other) noexcept;
  DedupClient& operator=(DedupClient&&) = delete;
  DedupClient(const DedupClient&) = delete;
  DedupClient& operator=(const DedupClient&) = delete;

  struct Result {
    bool ok = false;
    bool busy = false;    ///< daemon at max sessions; retry after hint
    bool quota = false;   ///< tenant quota exceeded
    /// Daemon answered Retry: a transient store fault consumed the
    /// request but the connection is fine; re-sending should succeed.
    bool retryable = false;
    /// The connection itself failed (closed, reset, malformed response).
    /// Retrying requires a reconnect; the retry policy does that.
    bool transport = false;
    std::uint32_t retry_after_ms = 0;
    std::string message;  ///< Ok payload (JSON where structured) or error
  };

  struct GetResult : Result {
    std::uint64_t produced = 0;
    /// False when the daemon hit damaged objects mid-restore (short
    /// stream, never wrong bytes).
    bool stream_ok = false;
  };

  /// Re-creates a fresh ByteSource for each PUT (re)send attempt.
  using SourceFactory = std::function<std::unique_ptr<ByteSource>()>;

  /// Installs the backoff contract for every subsequent operation. The
  /// default-constructed policy (max_retries = 0) disables retries.
  void set_retry_policy(RetryPolicy policy);
  const RetryPolicy& retry_policy() const { return policy_; }
  /// Retries performed so far (reconnect attempts included) — the chaos
  /// tests and bench assert these are nonzero under fault plans.
  std::uint64_t retries() const { return retries_; }

  /// Streams `src` as the tenant's file `name`. ONE attempt — a consumed
  /// ByteSource cannot be replayed, so this flavour never retries; use
  /// the factory overload (or put_bytes) for retrying ingest.
  Result put(const std::string& tenant, const std::string& name,
             ByteSource& src);
  /// Retrying PUT: `make_src` is invoked once per attempt.
  Result put(const std::string& tenant, const std::string& name,
             const SourceFactory& make_src);
  Result put_bytes(const std::string& tenant, const std::string& name,
                   ByteSpan data);

  /// Streams the restored bytes into `sink` chunk by chunk. Retries only
  /// while nothing has been delivered to the sink yet.
  GetResult get(const std::string& tenant, const std::string& name,
                const std::function<void(ByteSpan)>& sink);

  Result ls(const std::string& tenant);  ///< message: JSON file array
  /// message: JSON daemon stats. `reset` atomically zeroes the latency
  /// histograms with the snapshot (bench phase boundaries).
  Result stats(bool reset = false);
  Result maintain(MaintainOp op);        ///< message: JSON report
  Result ping();

 private:
  DedupClient(int fd, std::string spec)
      : fd_(fd),
        reader_(std::make_unique<FrameReader>(fd)),
        spec_(std::move(spec)) {}
  Result read_response();
  /// Drops the dead connection and dials spec_ again.
  bool reconnect();
  std::uint32_t backoff_ms(std::uint32_t attempt, std::uint32_t hint_ms);
  /// The retry loop shared by every operation: reconnect-and-retry on
  /// busy/transport, plain re-send on retryable, give up on everything
  /// else (ok, quota, fatal error) or when `may_retry` says no (the GET
  /// partial-delivery guard).
  Result with_retry(const std::function<Result()>& attempt,
                    const std::function<bool()>& may_retry = nullptr);

  int fd_ = -1;
  /// Owns the connection's read side (coalesced reads); behind a pointer
  /// because FrameReader is non-movable and DedupClient moves.
  std::unique_ptr<FrameReader> reader_;
  std::string spec_;  ///< original dial target, for reconnects
  /// Staging slab reused by every put() of this client's lifetime.
  ByteVec put_buf_;
  RetryPolicy policy_;
  std::uint64_t rng_ = 0x9E3779B97F4A7C15ULL;
  std::uint64_t retries_ = 0;
};

}  // namespace mhd::server
