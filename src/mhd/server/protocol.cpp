#include "mhd/server/protocol.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace mhd::server {

namespace {

bool read_exact(int fd, void* buf, std::size_t len) {
  auto* p = static_cast<unsigned char*>(buf);
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::read(fd, p + done, len - done);
    if (n == 0) {
      if (done == 0) return false;  // clean EOF between frames
      throw ProtocolError("connection closed mid-frame");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (done == 0 && (errno == ECONNRESET || errno == EPIPE)) return false;
      throw ProtocolError(std::string("read: ") + std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

void write_exact(int fd, const void* buf, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(buf);
  std::size_t done = 0;
  while (done < len) {
    // MSG_NOSIGNAL: a peer that vanished mid-write must surface as EPIPE,
    // not kill the daemon with SIGPIPE.
    const ssize_t n = ::send(fd, p + done, len - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError(std::string("write: ") + std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::optional<std::string> validate_tenant(const std::string& tenant) {
  if (tenant.empty()) return "tenant id is empty";
  if (tenant.size() > 64) return "tenant id longer than 64 chars";
  for (const char c : tenant) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) {
      // '/' '\\' '.' and friends would leak into object/file names.
      return std::string("tenant id contains forbidden character '") + c +
             "' (allowed: [A-Za-z0-9_-])";
    }
  }
  return std::nullopt;
}

bool read_frame(int fd, Frame& out) {
  unsigned char header[5];
  if (!read_exact(fd, header, sizeof(header))) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(header[0]) |
                            (static_cast<std::uint32_t>(header[1]) << 8) |
                            (static_cast<std::uint32_t>(header[2]) << 16) |
                            (static_cast<std::uint32_t>(header[3]) << 24);
  if (len > kMaxFramePayload) {
    throw ProtocolError("frame payload exceeds " +
                        std::to_string(kMaxFramePayload) + " bytes");
  }
  out.type = static_cast<MsgType>(header[4]);
  out.payload.resize(len);
  if (len != 0 && !read_exact(fd, out.payload.data(), len)) {
    throw ProtocolError("connection closed mid-frame");
  }
  return true;
}

void write_frame(int fd, MsgType type, ByteSpan payload) {
  if (payload.size() > kMaxFramePayload) {
    throw ProtocolError("attempted to write an oversized frame");
  }
  const auto len = static_cast<std::uint32_t>(payload.size());
  unsigned char header[5] = {
      static_cast<unsigned char>(len & 0xff),
      static_cast<unsigned char>((len >> 8) & 0xff),
      static_cast<unsigned char>((len >> 16) & 0xff),
      static_cast<unsigned char>((len >> 24) & 0xff),
      static_cast<unsigned char>(type),
  };
  write_exact(fd, header, sizeof(header));
  if (len != 0) write_exact(fd, payload.data(), payload.size());
}

void write_frame(int fd, MsgType type, const std::string& text) {
  write_frame(fd, type,
              ByteSpan{reinterpret_cast<const Byte*>(text.data()),
                       text.size()});
}

void append_string(ByteVec& out, const std::string& s) {
  const auto len = static_cast<std::uint16_t>(
      s.size() > 0xffff ? 0xffff : s.size());
  append_le(out, len);
  append(out, ByteSpan{reinterpret_cast<const Byte*>(s.data()), len});
}

std::optional<std::string> read_string(ByteSpan payload, std::size_t& pos) {
  if (pos + 2 > payload.size()) return std::nullopt;
  const auto len = load_le<std::uint16_t>(payload.data() + pos);
  pos += 2;
  if (pos + len > payload.size()) return std::nullopt;
  std::string s(reinterpret_cast<const char*>(payload.data() + pos), len);
  pos += len;
  return s;
}

Listener::~Listener() { close(); }

void Listener::listen(const std::string& spec) {
  spec_ = spec;
  int fd = -1;
  if (spec.rfind("unix:", 0) == 0) {
    const std::string path = spec.substr(5);
    if (path.size() + 1 > sizeof(sockaddr_un{}.sun_path)) {
      throw std::runtime_error("unix socket path too long: " + path);
    }
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("socket: " + std::string(std::strerror(errno)));
    ::unlink(path.c_str());  // a previous daemon's leftover socket
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("bind " + path + ": " + std::strerror(err));
    }
    unix_path_ = path;
  } else if (spec.rfind("tcp:", 0) == 0) {
    const int port = std::atoi(spec.c_str() + 4);
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("socket: " + std::string(std::strerror(errno)));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("bind tcp:" + std::to_string(port) + ": " +
                               std::strerror(err));
    }
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen);
    port_ = ntohs(bound.sin_port);
  } else {
    throw std::runtime_error("listen spec must be unix:<path> or tcp:<port>: " +
                             spec);
  }
  if (::listen(fd, 64) < 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("listen: " + std::string(std::strerror(err)));
  }
  int pipefd[2];
  if (::pipe(pipefd) < 0) {
    ::close(fd);
    throw std::runtime_error("pipe: " + std::string(std::strerror(errno)));
  }
  fd_ = fd;
  wake_r_ = pipefd[0];
  wake_w_ = pipefd[1];
}

int Listener::accept() {
  while (fd_ >= 0) {
    pollfd fds[2] = {{fd_, POLLIN, 0}, {wake_r_, POLLIN, 0}};
    const int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (fds[1].revents != 0) return -1;  // woken for shutdown
    if (fds[0].revents != 0) {
      const int conn = ::accept(fd_, nullptr, nullptr);
      if (conn >= 0) return conn;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return -1;
    }
  }
  return -1;
}

void Listener::wake() {
  if (wake_w_ >= 0) {
    const char c = 'w';
    (void)!::write(wake_w_, &c, 1);
  }
}

void Listener::close() {
  if (fd_ >= 0) ::close(fd_);
  if (wake_r_ >= 0) ::close(wake_r_);
  if (wake_w_ >= 0) ::close(wake_w_);
  fd_ = wake_r_ = wake_w_ = -1;
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

int connect_to(const std::string& spec) {
  if (spec.rfind("unix:", 0) == 0) {
    const std::string path = spec.substr(5);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const int port = std::atoi(spec.c_str() + 4);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  return -1;
}

}  // namespace mhd::server
