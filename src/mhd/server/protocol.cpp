#include "mhd/server/protocol.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace mhd::server {

namespace {

std::atomic<std::uint64_t> g_read_calls{0};
std::atomic<std::uint64_t> g_read_bytes{0};
std::atomic<std::uint64_t> g_write_calls{0};
std::atomic<std::uint64_t> g_write_bytes{0};

ssize_t counted_read(int fd, void* buf, std::size_t len) {
  const ssize_t n = ::read(fd, buf, len);
  g_read_calls.fetch_add(1, std::memory_order_relaxed);
  if (n > 0) {
    g_read_bytes.fetch_add(static_cast<std::uint64_t>(n),
                           std::memory_order_relaxed);
  }
  return n;
}

/// Maps a failed read()'s errno to the typed error vocabulary: a stalled
/// peer (SO_RCVTIMEO expiry) and a vanished peer are different events and
/// the daemon counts them separately.
[[noreturn]] void throw_read_error(int err) {
  if (err == EAGAIN || err == EWOULDBLOCK) {
    throw IdleTimeoutError("connection idle past receive timeout");
  }
  if (err == ECONNRESET || err == EPIPE) {
    throw PeerDisconnectedError(std::string("peer reset: ") +
                                std::strerror(err));
  }
  throw ProtocolError(std::string("read: ") + std::strerror(err));
}

bool read_exact(int fd, void* buf, std::size_t len) {
  auto* p = static_cast<unsigned char*>(buf);
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = counted_read(fd, p + done, len - done);
    if (n == 0) {
      if (done == 0) return false;  // clean EOF between frames
      throw PeerDisconnectedError("connection closed mid-frame");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (done == 0 && (errno == ECONNRESET || errno == EPIPE)) return false;
      throw_read_error(errno);
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// Vectored exact write: header + payload leave in one sendmsg. Partial
/// sends advance through the iovec array. MSG_NOSIGNAL: a peer that
/// vanished mid-write must surface as EPIPE, not kill the daemon with
/// SIGPIPE.
void writev_exact(int fd, iovec* iov, int iovcnt) {
  while (iovcnt > 0) {
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    g_write_calls.fetch_add(1, std::memory_order_relaxed);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        // The peer vanished while we were answering it — benign from the
        // daemon's point of view, and counted apart from protocol abuse.
        throw PeerDisconnectedError(std::string("peer gone on write: ") +
                                    std::strerror(errno));
      }
      throw ProtocolError(std::string("write: ") + std::strerror(errno));
    }
    g_write_bytes.fetch_add(static_cast<std::uint64_t>(n),
                            std::memory_order_relaxed);
    std::size_t advanced = static_cast<std::size_t>(n);
    while (iovcnt > 0 && advanced >= iov->iov_len) {
      advanced -= iov->iov_len;
      ++iov;
      --iovcnt;
    }
    if (iovcnt > 0) {
      iov->iov_base = static_cast<unsigned char*>(iov->iov_base) + advanced;
      iov->iov_len -= advanced;
    }
  }
}

}  // namespace

TransportStats transport_stats() {
  TransportStats s;
  s.read_calls = g_read_calls.load(std::memory_order_relaxed);
  s.read_bytes = g_read_bytes.load(std::memory_order_relaxed);
  s.write_calls = g_write_calls.load(std::memory_order_relaxed);
  s.write_bytes = g_write_bytes.load(std::memory_order_relaxed);
  return s;
}

void reset_transport_stats() {
  g_read_calls.store(0, std::memory_order_relaxed);
  g_read_bytes.store(0, std::memory_order_relaxed);
  g_write_calls.store(0, std::memory_order_relaxed);
  g_write_bytes.store(0, std::memory_order_relaxed);
}

void tune_stream_socket(int fd) {
  const int one = 1;
  // Fails with ENOTSUP/EOPNOTSUPP on Unix sockets — fine, they have no
  // Nagle to disable.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int buf = kSocketBufferBytes;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &buf, sizeof(buf));
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &buf, sizeof(buf));
}

std::optional<std::string> validate_tenant(const std::string& tenant) {
  if (tenant.empty()) return "tenant id is empty";
  if (tenant.size() > 64) return "tenant id longer than 64 chars";
  for (const char c : tenant) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) {
      // '/' '\\' '.' and friends would leak into object/file names.
      return std::string("tenant id contains forbidden character '") + c +
             "' (allowed: [A-Za-z0-9_-])";
    }
  }
  return std::nullopt;
}

bool read_frame(int fd, Frame& out) {
  unsigned char header[5];
  if (!read_exact(fd, header, sizeof(header))) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(header[0]) |
                            (static_cast<std::uint32_t>(header[1]) << 8) |
                            (static_cast<std::uint32_t>(header[2]) << 16) |
                            (static_cast<std::uint32_t>(header[3]) << 24);
  if (len > kMaxFramePayload) {
    throw ProtocolError("frame payload exceeds " +
                        std::to_string(kMaxFramePayload) + " bytes");
  }
  out.type = static_cast<MsgType>(header[4]);
  out.payload.resize(len);
  if (len != 0 && !read_exact(fd, out.payload.data(), len)) {
    throw ProtocolError("connection closed mid-frame");
  }
  return true;
}

void write_frame(int fd, MsgType type, ByteSpan payload) {
  if (payload.size() > kMaxFramePayload) {
    throw ProtocolError("attempted to write an oversized frame");
  }
  const auto len = static_cast<std::uint32_t>(payload.size());
  unsigned char header[5] = {
      static_cast<unsigned char>(len & 0xff),
      static_cast<unsigned char>((len >> 8) & 0xff),
      static_cast<unsigned char>((len >> 16) & 0xff),
      static_cast<unsigned char>((len >> 24) & 0xff),
      static_cast<unsigned char>(type),
  };
  iovec iov[2];
  iov[0].iov_base = header;
  iov[0].iov_len = sizeof(header);
  int iovcnt = 1;
  if (len != 0) {
    iov[1].iov_base = const_cast<Byte*>(payload.data());
    iov[1].iov_len = payload.size();
    iovcnt = 2;
  }
  writev_exact(fd, iov, iovcnt);
}

void write_frame(int fd, MsgType type, const std::string& text) {
  write_frame(fd, type,
              ByteSpan{reinterpret_cast<const Byte*>(text.data()),
                       text.size()});
}

FrameReader::FrameReader(int fd, std::size_t buffer_bytes)
    : fd_(fd), buf_(buffer_bytes) {}

bool FrameReader::fill(std::size_t need) {
  const std::size_t have = end_ - pos_;
  if (have >= need) return true;
  // Compact so the tail of the buffer is free for one large read().
  if (pos_ != 0) {
    std::memmove(buf_.data(), buf_.data() + pos_, have);
    end_ = have;
    pos_ = 0;
  }
  while (end_ - pos_ < need) {
    const ssize_t n = counted_read(fd_, buf_.data() + end_, buf_.size() - end_);
    if (n == 0) {
      if (end_ == pos_) return false;  // clean EOF at a frame boundary
      throw PeerDisconnectedError("connection closed mid-frame");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (end_ == pos_ && (errno == ECONNRESET || errno == EPIPE)) {
        return false;
      }
      throw_read_error(errno);
    }
    end_ += static_cast<std::size_t>(n);
    if (end_ > high_water_) high_water_ = end_;
  }
  return true;
}

bool FrameReader::next_header(MsgType& type, std::uint32_t& len) {
  if (remaining_ != 0) {
    throw ProtocolError("frame header requested with payload unconsumed");
  }
  if (!fill(5)) return false;
  const Byte* h = buf_.data() + pos_;
  len = static_cast<std::uint32_t>(h[0]) |
        (static_cast<std::uint32_t>(h[1]) << 8) |
        (static_cast<std::uint32_t>(h[2]) << 16) |
        (static_cast<std::uint32_t>(h[3]) << 24);
  if (len > kMaxFramePayload) {
    throw ProtocolError("frame payload exceeds " +
                        std::to_string(kMaxFramePayload) + " bytes");
  }
  type = static_cast<MsgType>(h[4]);
  pos_ += 5;
  remaining_ = len;
  return true;
}

std::size_t FrameReader::read_payload(MutByteSpan out) {
  if (remaining_ == 0 || out.empty()) return 0;
  std::size_t want = out.size() < remaining_ ? out.size() : remaining_;
  std::size_t done = 0;
  // Drain whatever the coalescing buffer already holds.
  const std::size_t buffered = end_ - pos_;
  if (buffered != 0) {
    const std::size_t take = buffered < want ? buffered : want;
    std::memcpy(out.data(), buf_.data() + pos_, take);
    pos_ += take;
    done = take;
  }
  // Large remainders go straight into the caller's memory — no double
  // buffering for bulk payload bytes.
  while (done < want) {
    const ssize_t n = counted_read(fd_, out.data() + done, want - done);
    if (n == 0) throw PeerDisconnectedError("connection closed mid-frame");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_read_error(errno);
    }
    done += static_cast<std::size_t>(n);
  }
  remaining_ -= static_cast<std::uint32_t>(done);
  return done;
}

bool FrameReader::read_frame(Frame& out) {
  MsgType type;
  std::uint32_t len;
  if (!next_header(type, len)) return false;
  out.type = type;
  out.payload.resize(len);
  std::size_t done = 0;
  while (done < len) {
    done += read_payload(
        MutByteSpan{out.payload.data() + done, len - done});
  }
  return true;
}

void append_string(ByteVec& out, const std::string& s) {
  const auto len = static_cast<std::uint16_t>(
      s.size() > 0xffff ? 0xffff : s.size());
  append_le(out, len);
  append(out, ByteSpan{reinterpret_cast<const Byte*>(s.data()), len});
}

std::optional<std::string> read_string(ByteSpan payload, std::size_t& pos) {
  if (pos + 2 > payload.size()) return std::nullopt;
  const auto len = load_le<std::uint16_t>(payload.data() + pos);
  pos += 2;
  if (pos + len > payload.size()) return std::nullopt;
  std::string s(reinterpret_cast<const char*>(payload.data() + pos), len);
  pos += len;
  return s;
}

Listener::~Listener() { close(); }

void Listener::listen(const std::string& spec) {
  spec_ = spec;
  int fd = -1;
  if (spec.rfind("unix:", 0) == 0) {
    const std::string path = spec.substr(5);
    if (path.size() + 1 > sizeof(sockaddr_un{}.sun_path)) {
      throw std::runtime_error("unix socket path too long: " + path);
    }
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("socket: " + std::string(std::strerror(errno)));
    ::unlink(path.c_str());  // a previous daemon's leftover socket
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("bind " + path + ": " + std::strerror(err));
    }
    unix_path_ = path;
  } else if (spec.rfind("tcp:", 0) == 0) {
    const int port = std::atoi(spec.c_str() + 4);
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("socket: " + std::string(std::strerror(errno)));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("bind tcp:" + std::to_string(port) + ": " +
                               std::strerror(err));
    }
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen);
    port_ = ntohs(bound.sin_port);
  } else {
    throw std::runtime_error("listen spec must be unix:<path> or tcp:<port>: " +
                             spec);
  }
  if (::listen(fd, 64) < 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("listen: " + std::string(std::strerror(err)));
  }
  int pipefd[2];
  if (::pipe(pipefd) < 0) {
    ::close(fd);
    throw std::runtime_error("pipe: " + std::string(std::strerror(errno)));
  }
  fd_ = fd;
  wake_r_ = pipefd[0];
  wake_w_ = pipefd[1];
}

int Listener::accept() {
  while (fd_ >= 0) {
    pollfd fds[2] = {{fd_, POLLIN, 0}, {wake_r_, POLLIN, 0}};
    const int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (fds[1].revents != 0) return -1;  // woken for shutdown
    if (fds[0].revents != 0) {
      const int conn = ::accept(fd_, nullptr, nullptr);
      if (conn >= 0) return conn;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return -1;
    }
  }
  return -1;
}

void Listener::wake() {
  if (wake_w_ >= 0) {
    const char c = 'w';
    (void)!::write(wake_w_, &c, 1);
  }
}

void Listener::close() {
  if (fd_ >= 0) ::close(fd_);
  if (wake_r_ >= 0) ::close(wake_r_);
  if (wake_w_ >= 0) ::close(wake_w_);
  fd_ = wake_r_ = wake_w_ = -1;
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

int connect_to(const std::string& spec) {
  if (spec.rfind("unix:", 0) == 0) {
    const std::string path = spec.substr(5);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd);
      return -1;
    }
    tune_stream_socket(fd);
    return fd;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const int port = std::atoi(spec.c_str() + 4);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd);
      return -1;
    }
    tune_stream_socket(fd);
    return fd;
  }
  return -1;
}

}  // namespace mhd::server
