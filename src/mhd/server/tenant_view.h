// TenantView — per-tenant namespace isolation over a shared backend.
//
// The daemon runs every tenant against one physical repository. Isolation
// is by name: a TenantView prefixes every object name with `<tenant>.`
// in every namespace, so tenants cannot observe or collide with each
// other's chunks, hooks, manifests, file manifests, index objects — the
// whole store. Consequences, by design:
//
//   * no cross-tenant deduplication (identical data stored by two tenants
//     is stored twice) — isolation beats ratio here, and it makes
//     "N parallel tenants == N serial runs" a well-defined bit-level
//     equivalence the tests assert;
//   * the persistent fingerprint index is per tenant too (its meta/shard
//     objects carry the prefix), so engines opened for different tenants
//     never share index state;
//   * container packing happens BELOW this layer, so physical containers
//     may interleave chunks of different tenants — shared bandwidth,
//     private namespaces.
//
// The tenant id alphabet is enforced at the protocol boundary
// (server::validate_tenant); '.' is the one separator this prefix scheme
// reserves, and FileBackend object names (hex digests, "meta",
// "shard-…") never start with `<tenant>.` for a valid tenant id.
//
// list()/object_count()/content_bytes() are filtered to the tenant
// (content_bytes by reading each object — a stats-path operation, not a
// hot path).
#pragma once

#include <string>

#include "mhd/store/backend.h"
#include "mhd/store/store_errors.h"

namespace mhd::server {

/// Per-tenant ingest limits; 0 = unlimited.
struct TenantQuota {
  std::uint64_t max_logical_bytes = 0;  ///< sum of ingested file sizes
  std::uint64_t max_files = 0;          ///< stored files (FileManifests)
};

/// A PUT would push the tenant past its quota. The ingest is aborted;
/// partially written chunks become garbage for the next gc pass.
class QuotaExceededError : public StoreError {
 public:
  QuotaExceededError(const std::string& tenant, const std::string& what)
      : StoreError("tenant '" + tenant + "' quota exceeded: " + what) {}
};

class TenantView final : public StorageBackend {
 public:
  TenantView(StorageBackend& inner, std::string tenant)
      : inner_(inner), prefix_(std::move(tenant) + ".") {}

  void put(Ns ns, const std::string& name, ByteSpan data) override {
    inner_.put(ns, prefix_ + name, data);
  }
  void append(Ns ns, const std::string& name, ByteSpan data) override {
    inner_.append(ns, prefix_ + name, data);
  }
  std::optional<ByteVec> get(Ns ns, const std::string& name) const override {
    return inner_.get(ns, prefix_ + name);
  }
  std::optional<ByteVec> get_range(Ns ns, const std::string& name,
                                   std::uint64_t offset,
                                   std::uint64_t length) const override {
    return inner_.get_range(ns, prefix_ + name, offset, length);
  }
  bool exists(Ns ns, const std::string& name) const override {
    return inner_.exists(ns, prefix_ + name);
  }
  bool remove(Ns ns, const std::string& name) override {
    return inner_.remove(ns, prefix_ + name);
  }
  void seal(Ns ns, const std::string& name) override {
    inner_.seal(ns, prefix_ + name);
  }
  std::uint64_t object_count(Ns ns) const override {
    return list(ns).size();
  }
  std::uint64_t content_bytes(Ns ns) const override {
    std::uint64_t total = 0;
    for (const auto& name : list(ns)) {
      if (const auto obj = inner_.get(ns, prefix_ + name)) total += obj->size();
    }
    return total;
  }
  std::vector<std::string> list(Ns ns) const override {
    std::vector<std::string> mine;
    for (auto& name : inner_.list(ns)) {
      if (name.rfind(prefix_, 0) == 0) {
        mine.push_back(name.substr(prefix_.size()));
      }
    }
    return mine;
  }

  const std::string& prefix() const { return prefix_; }

 private:
  StorageBackend& inner_;
  std::string prefix_;
};

/// One stored file as seen through a tenant view.
struct TenantFile {
  std::string name;
  std::uint64_t bytes = 0;
};

/// Walks the tenant's FileManifests (objects are named by the hash of the
/// file name, so the payloads must be read to recover names). Seeds quota
/// accounting on a tenant's first touch and backs the `ls` RPC.
std::vector<TenantFile> scan_tenant_files(const StorageBackend& view);

}  // namespace mhd::server
