// FaultConn — deterministic network-fault injection for daemon sockets.
//
// The storage layer has had scripted fault plans since PR 4
// (store/fault_backend.h); this is the same idea for the WIRE. A FaultConn
// interposes a proxy between an accepted connection and the daemon: the
// daemon talks to one end of an internal socketpair while a pump thread
// shuttles bytes to/from the real peer, parsing the request stream's
// frame structure ([u32 len][u8 type][payload]) and executing a scripted
// *net-fault plan* against it. Because faults key off deterministic frame
// counters — never wall clock or kernel buffering — a failing scenario
// replays from its plan string.
//
// Plan mini-language (comma-separated atoms; frames and connections are
// 1-based; frames are counted on the client→daemon direction):
//
//   torn@N[:F]   forward only fraction F (0..1) of frame N's bytes
//                (header included), then close both directions — the
//                classic "client died mid-PUT" tear. torn@N draws F from
//                the seed.
//   stall@N[:MS] forward frame N's header plus one payload byte, then
//                stop forwarding for MS milliseconds (omitted = forever).
//                With the daemon's receive timeout armed this is a
//                slowloris: the read blocks until SO_RCVTIMEO reaps it.
//   reset@N      hard-close both directions just before frame N — the
//                daemon sees the connection vanish between requests.
//   garbage@N    replace frame N's 5-byte header with seeded garbage
//                (a hostile or corrupted peer; the daemon must fail the
//                connection with a typed ProtocolError, never crash).
//   short@N      deliver frame N one byte per write (stresses the
//                daemon's partial-read handling; semantically a no-op).
//   conn@K[xM]   apply the plan only to accepted connections K..K+M-1
//                (repeatable; no conn atom = every connection).
//   seed:S       seed for drawn tear fractions and garbage (default 42).
//
// Responses (daemon→client) always pass through unmodified; torn/reset
// kill both directions. The daemon enables this via
// DaemonConfig::net_fault_plan (`dedup_cli serve --net-fault-plan=SPEC`),
// and tests/bench drive it directly through wrap().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mhd::server {

struct NetFaultPlan {
  enum class Kind { kTorn, kStall, kReset, kGarbage, kShort };

  struct Atom {
    Kind kind = Kind::kTorn;
    std::uint64_t frame = 0;   ///< 1-based client→daemon frame index
    double fraction = -1.0;    ///< torn: <0 means "draw from seed"
    std::uint32_t stall_ms = 0;  ///< stall: 0 means "forever"
  };

  /// Connection selector: fault connections K..K+M-1 (1-based).
  struct ConnRange {
    std::uint64_t first = 1;
    std::uint64_t count = 1;
  };

  std::vector<Atom> atoms;
  std::vector<ConnRange> conns;  ///< empty = every connection
  std::uint64_t seed = 42;

  bool empty() const { return atoms.empty(); }
  bool applies_to_conn(std::uint64_t conn_index) const;

  /// Parses the mini-language above; throws std::invalid_argument naming
  /// the offending atom. An empty spec is an empty plan.
  static NetFaultPlan parse(const std::string& spec);
};

/// Interposes the fault proxy on a connected stream socket. Returns the
/// fd the server must use from now on; ownership of `fd` passes to the
/// pump. When the plan is empty or does not select `conn_index`, returns
/// `fd` unchanged and starts nothing. The pump thread is self-reaping: it
/// exits when either side closes and releases both fds.
int wrap_with_net_faults(int fd, const NetFaultPlan& plan,
                         std::uint64_t conn_index);

}  // namespace mhd::server
