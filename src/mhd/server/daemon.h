// DedupDaemon — the long-running multi-tenant dedup server.
//
// One daemon owns one repository (the caller holds the StoreLock) and
// serves many concurrent ingest/restore sessions over the protocol in
// protocol.h. Architecture, per connection:
//
//   accept thread ── admission check ──▶ session thread
//                                         PUT: socket pump ─▶ BoundedQueue
//                                              ─▶ dedup worker thread
//                                         GET: RestoreReader streaming
//
// Sharing and isolation:
//   * every session sees the repository through a TenantView (namespace
//     prefix, see tenant_view.h) stacked on ONE SyncBackend that
//     linearizes the physical store;
//   * engines are per-PUT and per-tenant: a tenant's PUTs serialize on
//     the tenant's write mutex (one writer per namespace), while PUTs of
//     different tenants and all GETs run concurrently;
//   * GETs never construct an engine — RestoreReader streams straight
//     from the (read-only) tenant view, so restore storms scale with
//     sessions, not with engine state.
//
// Admission control: at most max_sessions concurrent sessions; a rejected
// connection receives Busy(retry_after_ms) and is closed, and the
// rejection is counted. Within a PUT, the BoundedQueue between the socket
// pump and the dedup worker bounds buffered data; a full queue stops the
// socket reads and lets transport flow control push back to the client.
//
// Online maintenance: gc/fsck take the maintenance lock exclusively —
// they wait for in-flight requests to drain and hold off new ones, run
// against the quiesced store, then resume. Safe because engines only live
// for the duration of a PUT (nothing holds index state across requests).
//
// Quotas: per-tenant logical-byte and file-count limits, seeded from the
// repository on the tenant's first touch and enforced during streaming;
// an over-quota PUT is aborted mid-stream with a Quota response.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>

#include "mhd/dedup/engine.h"
#include "mhd/server/latency_histogram.h"
#include "mhd/server/protocol.h"
#include "mhd/server/tenant_view.h"
#include "mhd/store/sync_backend.h"

namespace mhd::server {

struct DaemonConfig {
  /// "unix:<path>" or "tcp:<port>" (loopback; 0 = ephemeral, see port()).
  std::string listen = "tcp:0";
  std::uint32_t max_sessions = 8;
  /// PutData frames buffered between socket pump and dedup worker.
  std::uint32_t session_queue_depth = 16;
  /// Suggested client back-off returned with Busy responses.
  std::uint32_t retry_after_ms = 100;
  TenantQuota quota;  ///< applied to every tenant
  EngineConfig engine;
};

/// Point-in-time counters for one tenant (stats RPC / tests).
struct TenantCounters {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t files = 0;
  std::uint64_t logical_bytes = 0;
  std::uint64_t ingest_bytes = 0;
  std::uint64_t restore_bytes = 0;
  std::uint64_t dup_bytes = 0;
  std::uint64_t queue_high_water = 0;  ///< max PutData queue depth seen
  std::uint64_t quota_rejections = 0;
  std::uint64_t put_p50_us = 0, put_p99_us = 0;
  std::uint64_t get_p50_us = 0, get_p99_us = 0;
};

class DedupDaemon {
 public:
  /// `active` is the top of the repository's backend stack (container/
  /// framed/fault layers applied); `raw` its physical bottom, which fsck
  /// needs. The daemon interposes its own SyncBackend — the caller's
  /// stack need not be thread-safe.
  DedupDaemon(StorageBackend& active, StorageBackend& raw, DaemonConfig cfg);
  ~DedupDaemon();

  DedupDaemon(const DedupDaemon&) = delete;
  DedupDaemon& operator=(const DedupDaemon&) = delete;

  /// Binds the listener and starts accepting. Throws on bind failure.
  void start();
  /// Stops accepting, unblocks and joins every session, closes the
  /// listener. Idempotent.
  void stop();

  /// Resolved listen spec ("tcp:<real port>" after an ephemeral bind).
  std::string listen_spec() const;
  int port() const { return listener_.port(); }

  /// The stats RPC's payload (also reachable without a connection).
  std::string stats_json() const;

  std::uint64_t sessions_served() const { return sessions_served_.load(); }
  std::uint64_t busy_rejections() const { return busy_rejections_.load(); }
  std::uint32_t active_sessions() const { return active_sessions_.load(); }

 private:
  struct TenantState {
    std::mutex write_mu;  ///< one writer per tenant namespace
    bool seeded = false;
    std::uint64_t files = 0;
    std::uint64_t logical_bytes = 0;
    TenantCounters counters;
    LatencyHistogram put_us;
    LatencyHistogram get_us;
  };

  struct SessionSlot {
    std::thread thread;
    std::atomic<bool> done{false};
    int fd = -1;
  };

  void accept_loop();
  void serve_connection(SessionSlot& slot);
  /// Request handlers; each runs under the maintenance lock (shared).
  void handle_put(int fd, ByteSpan payload);
  void handle_get(int fd, ByteSpan payload);
  void handle_ls(int fd, ByteSpan payload);
  void handle_maintain(int fd, ByteSpan payload);

  TenantState& tenant(const std::string& id);
  /// Tenant ids present in the repository (from object-name prefixes).
  std::vector<std::string> discover_tenants() const;
  /// First-touch quota seeding from the repository (caller holds the
  /// tenant's write_mu or is otherwise the only accessor).
  void seed_tenant(const std::string& id, TenantState& ts);
  void reap_finished_sessions();

  SyncBackend sync_;       ///< linearizes the shared stack for sessions
  StorageBackend& raw_;    ///< physical layer (fsck target)
  DaemonConfig cfg_;
  Listener listener_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};

  /// Maintenance lock: requests shared, gc/fsck exclusive (quiesce).
  std::shared_mutex maint_mu_;

  mutable std::mutex reg_mu_;  ///< tenants_ + sessions_ + counter updates
  std::map<std::string, std::unique_ptr<TenantState>> tenants_;
  std::list<std::unique_ptr<SessionSlot>> sessions_;

  std::atomic<std::uint32_t> active_sessions_{0};
  std::atomic<std::uint64_t> sessions_served_{0};
  std::atomic<std::uint64_t> busy_rejections_{0};
  std::atomic<std::uint64_t> maintenance_runs_{0};
};

}  // namespace mhd::server
