// DedupDaemon — the long-running multi-tenant dedup server.
//
// One daemon owns one repository (the caller holds the StoreLock) and
// serves many concurrent ingest/restore sessions over the protocol in
// protocol.h. Architecture, per connection:
//
//   accept thread ── admission check ──▶ session thread
//                                         PUT: engine pulls PutData frames
//                                              inline (SocketFrameSource)
//                                         GET: RestoreReader streaming
//
// PUT data path (see DESIGN.md §8 "Data path"): the session thread runs
// the dedup engine directly and the engine PULLS payload bytes out of the
// connection's FrameReader — no per-PUT worker thread, no frame queue, no
// per-frame allocation. Backpressure is the transport itself: when dedup
// stalls, the daemon stops reading and TCP/Unix flow control reaches the
// client.
//
// Engines are per-tenant and PERSISTENT (EngineSession): the first PUT
// constructs the tenant's TenantView → ObjectStore → engine stack and
// later PUTs reuse it with the manifest cache, bloom filter and index
// handles warm. Every PUT ends with DedupEngine::flush_session(), which
// makes the session state bit-identical — on disk and in future dedup
// decisions — to tearing the engine down and rebuilding it (the fresh-
// engine baseline the equivalence tests compare against). Sessions are
// dropped at the maintenance gate (gc rewrites hooks/manifests/index
// beneath them), on any ingest error (a half-run engine's cache state is
// not derivable from disk), and at daemon stop.
//
// Sharing and isolation:
//   * every session sees the repository through a TenantView (namespace
//     prefix, see tenant_view.h) stacked on ONE SyncBackend that
//     linearizes the physical store;
//   * a tenant's PUTs serialize on the tenant's write mutex (one writer
//     per namespace), while PUTs of different tenants and all GETs run
//     concurrently;
//   * GETs never construct an engine — RestoreReader streams straight
//     from the (read-only) tenant view, so restore storms scale with
//     sessions, not with engine state.
//
// Admission control: at most max_sessions concurrent sessions; a rejected
// connection receives Busy(retry_after_ms) and is closed, and the
// rejection is counted.
//
// Online maintenance: gc/fsck take the maintenance lock exclusively —
// they wait for in-flight requests to drain (each request holds it
// shared, and every PUT flushes at its end), drop all warm engine
// sessions, run against the quiesced store, then resume.
//
// Quotas: per-tenant logical-byte and file-count limits, seeded from the
// repository on the tenant's first touch and enforced during streaming;
// an over-quota PUT is aborted mid-stream with a Quota response.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>

#include "mhd/dedup/engine.h"
#include "mhd/server/fault_conn.h"
#include "mhd/server/latency_histogram.h"
#include "mhd/server/protocol.h"
#include "mhd/server/tenant_view.h"
#include "mhd/store/sync_backend.h"

namespace mhd::server {

struct DaemonConfig {
  /// "unix:<path>" or "tcp:<port>" (loopback; 0 = ephemeral, see port()).
  std::string listen = "tcp:0";
  std::uint32_t max_sessions = 8;
  /// Legacy knob from the queue-based data path. Ingest now pulls frames
  /// inline (transport flow control IS the backpressure), so this only
  /// survives for CLI/config compatibility and the stats report.
  std::uint32_t session_queue_depth = 16;
  /// Suggested client back-off returned with Busy and Retry responses.
  std::uint32_t retry_after_ms = 100;
  /// SO_RCVTIMEO applied to every admitted connection: a peer that stalls
  /// mid-frame longer than this is reaped (IdleTimeoutError), freeing its
  /// admission slot. 0 disables the timeout (reads may block forever).
  std::uint32_t idle_timeout_ms = 30'000;
  /// Network chaos plan (fault_conn.h grammar), applied to admitted
  /// connections. Empty = no fault injection. Parsed at construction;
  /// a malformed plan throws std::invalid_argument from the constructor.
  std::string net_fault_plan;
  TenantQuota quota;  ///< applied to every tenant
  EngineConfig engine;
};

/// Point-in-time counters for one tenant (stats RPC / tests).
struct TenantCounters {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t files = 0;
  std::uint64_t logical_bytes = 0;
  std::uint64_t ingest_bytes = 0;
  std::uint64_t restore_bytes = 0;
  std::uint64_t dup_bytes = 0;
  /// Peak bytes held in the connection FrameReaders' coalescing buffers
  /// during this tenant's PUTs (was the PutData queue depth before the
  /// inline data path).
  std::uint64_t queue_high_water = 0;
  std::uint64_t quota_rejections = 0;
  /// GETs that failed: no such file, or the stream ended short because of
  /// damaged objects. Their latencies live in a separate histogram so
  /// fast failures cannot pollute the success percentiles.
  std::uint64_t get_errors = 0;
  /// Failure taxonomy (per tenant; the same events are also counted
  /// globally, including ones that die before a tenant is known):
  ///  * protocol_errors — malformed frames / handshake violations from
  ///    this tenant's connections (hostile or corrupted peers);
  ///  * peer_disconnects — benign deaths: EPIPE/ECONNRESET or EOF
  ///    mid-frame (a client killed mid-PUT);
  ///  * idle_timeout_reaps — connections reaped by SO_RCVTIMEO while a
  ///    request for this tenant was in flight (slowloris);
  ///  * transient_retries — store-level reads that hit TransientReadError
  ///    and were absorbed by retry (PUT via ObjectStore, GET via
  ///    RestoreReader) — nonzero means the backend flaked but no request
  ///    failed;
  ///  * retryable_errors — requests that exhausted store retries and were
  ///    answered with a Retry response (session dropped and rebuilt, the
  ///    client is expected to re-send).
  std::uint64_t protocol_errors = 0;
  std::uint64_t peer_disconnects = 0;
  std::uint64_t idle_timeout_reaps = 0;
  std::uint64_t transient_retries = 0;
  std::uint64_t retryable_errors = 0;
  /// Sampled similarity tier (all zero on mem/disk indexes): champion
  /// loads and missed-duplicate bytes are per-PUT deltas accumulated
  /// across this tenant's PUTs; hook entries is a gauge from the last PUT.
  std::uint64_t champion_loads = 0;
  std::uint64_t sampled_missed_dup_bytes = 0;
  std::uint64_t sampled_hook_entries = 0;
  std::uint64_t put_p50_us = 0, put_p99_us = 0;
  std::uint64_t get_p50_us = 0, get_p99_us = 0;
};

class DedupDaemon {
 public:
  /// `active` is the top of the repository's backend stack (container/
  /// framed/fault layers applied); `raw` its physical bottom, which fsck
  /// needs. The daemon interposes its own SyncBackend — the caller's
  /// stack need not be thread-safe.
  DedupDaemon(StorageBackend& active, StorageBackend& raw, DaemonConfig cfg);
  ~DedupDaemon();

  DedupDaemon(const DedupDaemon&) = delete;
  DedupDaemon& operator=(const DedupDaemon&) = delete;

  /// Binds the listener and starts accepting. Throws on bind failure.
  void start();
  /// Stops accepting, unblocks and joins every session, closes the
  /// listener. Idempotent.
  void stop();

  /// Resolved listen spec ("tcp:<real port>" after an ephemeral bind).
  std::string listen_spec() const;
  int port() const { return listener_.port(); }

  /// The stats RPC's payload (also reachable without a connection).
  std::string stats_json() const;
  /// Same snapshot, but atomically resets every latency histogram under
  /// the same lock hold — the stats RPC's reset flag, for benchmarks that
  /// measure phases without restarting the daemon.
  std::string stats_json_and_reset();

  std::uint64_t sessions_served() const { return sessions_served_.load(); }
  std::uint64_t busy_rejections() const { return busy_rejections_.load(); }
  std::uint32_t active_sessions() const { return active_sessions_.load(); }
  std::uint64_t protocol_errors() const { return protocol_errors_.load(); }
  std::uint64_t peer_disconnects() const { return peer_disconnects_.load(); }
  std::uint64_t idle_timeout_reaps() const {
    return idle_timeout_reaps_.load();
  }
  std::uint64_t retryable_errors() const { return retryable_errors_.load(); }

 private:
  struct EngineSession;  ///< warm TenantView→ObjectStore→engine stack

  struct TenantState {
    std::mutex write_mu;  ///< one writer per tenant namespace
    bool seeded = false;
    std::uint64_t files = 0;
    std::uint64_t logical_bytes = 0;
    TenantCounters counters;
    LatencyHistogram put_us;
    LatencyHistogram get_us;
    LatencyHistogram get_err_us;  ///< failed GETs, kept out of get_us
    /// Warm engine stack, reused across PUTs. Touched only under write_mu,
    /// except the maintenance gate / stop, which hold the exclusive
    /// maintenance lock (no PUT can be in flight then).
    std::unique_ptr<EngineSession> session;
  };

  struct SessionSlot {
    std::thread thread;
    std::atomic<bool> done{false};
    int fd = -1;
  };

  void accept_loop();
  void serve_connection(SessionSlot& slot);
  /// Request handlers; each runs under the maintenance lock (shared).
  void handle_put(int fd, FrameReader& reader, ByteSpan payload);
  void handle_get(int fd, ByteSpan payload);
  void handle_ls(int fd, ByteSpan payload);
  void handle_maintain(int fd, ByteSpan payload);
  /// Flush boundary: destroys every tenant's warm engine session. Caller
  /// must guarantee no PUT is in flight (exclusive maintenance lock, or
  /// all session threads joined).
  void drop_engine_sessions();
  std::string build_stats_json(bool reset_histograms) const;

  TenantState& tenant(const std::string& id);
  /// Tenant ids present in the repository (from object-name prefixes).
  std::vector<std::string> discover_tenants() const;
  /// First-touch quota seeding from the repository (caller holds the
  /// tenant's write_mu or is otherwise the only accessor).
  void seed_tenant(const std::string& id, TenantState& ts);
  void reap_finished_sessions();

  SyncBackend sync_;       ///< linearizes the shared stack for sessions
  StorageBackend& raw_;    ///< physical layer (fsck target)
  DaemonConfig cfg_;
  Listener listener_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};

  /// Maintenance lock: requests shared, gc/fsck exclusive (quiesce).
  std::shared_mutex maint_mu_;

  mutable std::mutex reg_mu_;  ///< tenants_ + sessions_ + counter updates
  std::map<std::string, std::unique_ptr<TenantState>> tenants_;
  std::list<std::unique_ptr<SessionSlot>> sessions_;

  /// Parsed from cfg_.net_fault_plan at construction (empty = no chaos).
  NetFaultPlan net_fault_plan_;

  std::atomic<std::uint32_t> active_sessions_{0};
  std::atomic<std::uint64_t> sessions_served_{0};
  std::atomic<std::uint64_t> busy_rejections_{0};
  std::atomic<std::uint64_t> maintenance_runs_{0};
  /// Admitted-connection sequence (1-based), the chaos plan's conn index.
  std::atomic<std::uint64_t> accepted_conns_{0};
  /// Global failure taxonomy — see TenantCounters for the field glossary.
  /// Counted at the serve loop, so events with no attributable tenant
  /// (malformed PutBegin, garbage between requests) still land here.
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> peer_disconnects_{0};
  std::atomic<std::uint64_t> idle_timeout_reaps_{0};
  std::atomic<std::uint64_t> transient_retries_{0};
  std::atomic<std::uint64_t> retryable_errors_{0};
};

}  // namespace mhd::server
