#include "mhd/dedup/bimodal_engine.h"

#include "mhd/chunk/chunk_stream.h"
#include "mhd/chunk/rabin_chunker.h"

namespace mhd {

BimodalEngine::BimodalEngine(ObjectStore& store, const EngineConfig& config)
    : DedupEngine(store, config),
      cache_(store, config.manifest_cache_capacity, /*hook_flags=*/false,
             config.manifest_cache_bytes, &fp_index()),
      bloom_(config.bloom_bytes) {
  if (cfg_.use_bloom) seed_bloom_from_hooks(bloom_, store.backend());
  restore_warm_state(cache_);
}

std::optional<BimodalEngine::DupRef> BimodalEngine::find_duplicate(
    const Digest& hash, const FileCtx& ctx, AccessKind query_kind) {
  if (const auto it = ctx.current.find(hash); it != ctx.current.end()) {
    return it->second;
  }
  if (auto loc = cache_.lookup_hash(hash)) {
    const ManifestEntry& e = loc->manifest->entries()[loc->entry_index];
    return DupRef{loc->manifest->chunk_name(), e.offset, e.size};
  }
  if (sampled_mode()) {
    // Similarity path only — no exact fallback (see CdcEngine).
    if (load_champions(cache_, hash)) {
      if (auto loc = cache_.lookup_hash(hash)) {
        const ManifestEntry& e = loc->manifest->entries()[loc->entry_index];
        return DupRef{loc->manifest->chunk_name(), e.offset, e.size};
      }
    }
    return std::nullopt;
  }
  if (cfg_.use_bloom && !bloom_.maybe_contains(hash.prefix64())) {
    return std::nullopt;
  }
  const auto hook = degrade_on_corruption(
      [&] { return store_.get_hook(hash, query_kind); });
  if (!hook || hook->size() != Digest::kSize) return std::nullopt;
  Digest manifest_name;
  std::copy(hook->begin(), hook->end(), manifest_name.bytes.begin());
  if (degrade_on_corruption([&] { return cache_.load(manifest_name); }) ==
      nullptr) {
    return std::nullopt;
  }
  if (auto loc = cache_.lookup_hash(hash)) {
    const ManifestEntry& e = loc->manifest->entries()[loc->entry_index];
    return DupRef{loc->manifest->chunk_name(), e.offset, e.size};
  }
  return std::nullopt;
}

void BimodalEngine::store_small(FileCtx& ctx, ByteSpan bytes,
                                const Digest& hash,
                                std::uint32_t chunk_count) {
  if (!ctx.writer) ctx.writer.emplace(store_.open_chunk(ctx.dig.hex()));
  ctx.writer->write(bytes);
  ctx.manifest.add({hash, ctx.chunk_off, static_cast<std::uint32_t>(bytes.size()),
                    chunk_count, false});
  store_.put_hook(hash, ctx.dig.span());
  if (cfg_.use_bloom) bloom_.insert(hash.prefix64());
  ctx.current.emplace(hash, DupRef{ctx.dig, ctx.chunk_off,
                                   static_cast<std::uint32_t>(bytes.size())});
  ctx.fm.add_range(ctx.dig, ctx.chunk_off, bytes.size(), /*coalesce=*/false);
  ctx.chunk_off += bytes.size();
  ++counters_.stored_chunks;
}

void BimodalEngine::emit_big(FileCtx& ctx, BigChunk& chunk, bool transition) {
  if (chunk.dup && admit_duplicate(chunk.dup->chunk_name, chunk.dup->offset,
                                   chunk.dup->size)) {
    note_duplicate(chunk.dup->size);
    ctx.fm.add_range(chunk.dup->chunk_name, chunk.dup->offset, chunk.dup->size,
                     /*coalesce=*/false);
    return;
  }
  if (!transition) {
    // Store the big chunk whole: one entry, one hook, one hash.
    note_unique(chunk.bytes.size());
    store_small(ctx, chunk.bytes, chunk.hash,
                std::max<std::uint32_t>(1, cfg_.sd));
    return;
  }
  // Transition point: re-chunk at the small expected size and deduplicate
  // each small chunk individually.
  const auto small_chunker =
      make_chunker(cfg_.chunker, cfg_.chunker_config(cfg_.ecs));
  MemorySource src(chunk.bytes);
  ChunkStream stream(src, *small_chunker);
  ByteVec bytes;
  while (stream.next(bytes)) {
    ++counters_.input_chunks;
    const Digest hash = Sha1::hash(bytes);
    if (const auto dup = find_duplicate(hash, ctx, AccessKind::kSmallChunkQuery);
        dup && admit_duplicate(dup->chunk_name, dup->offset, dup->size)) {
      note_duplicate(dup->size);
      ctx.fm.add_range(dup->chunk_name, dup->offset, dup->size, false);
      continue;
    }
    note_unique(bytes.size());
    store_small(ctx, bytes, hash, 1);
  }
}

void BimodalEngine::process_file(const std::string& file_name,
                                 ByteSource& data) {
  FileCtx ctx;
  ctx.dig = unique_store_digest(file_digest(file_name));
  ctx.manifest = Manifest(ctx.dig);
  ctx.fm = FileManifest(file_name);

  const std::uint64_t big_size =
      static_cast<std::uint64_t>(cfg_.ecs) * cfg_.sd;
  const auto stream = open_ingest(data, big_size);

  // One-big-chunk delay line so a non-duplicate chunk knows whether its
  // successor is a duplicate (transition-point detection needs both sides).
  std::optional<BigChunk> held;
  bool prev_was_dup = false;

  ByteVec bytes;
  Digest hash;
  while (stream->next(bytes, hash)) {
    counters_.input_bytes += bytes.size();
    ++counters_.input_chunks;
    BigChunk incoming;
    incoming.hash = hash;
    incoming.bytes = std::move(bytes);
    incoming.dup =
        find_duplicate(incoming.hash, ctx, AccessKind::kBigChunkQuery);

    if (held) {
      const bool transition = prev_was_dup || incoming.dup.has_value();
      const bool held_was_dup = held->dup.has_value();
      emit_big(ctx, *held, transition);
      prev_was_dup = held_was_dup;
    }
    held = std::move(incoming);
  }
  if (held) {
    emit_big(ctx, *held, prev_was_dup);  // stream end: no right neighbor
  }

  if (ctx.writer) {
    ctx.writer->close();
    store_.put_manifest(ctx.dig.hex(), ctx.manifest.serialize(false));
    cache_.insert(ctx.dig, std::move(ctx.manifest), /*dirty=*/false);
    ++counters_.files_with_data;
  }
  store_.put_file_manifest(file_digest(file_name).hex(), ctx.fm.serialize());
}

void BimodalEngine::finish() {
  cache_.flush();
  persist_index_state(cache_);
}

}  // namespace mhd
