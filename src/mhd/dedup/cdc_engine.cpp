#include "mhd/dedup/cdc_engine.h"

#include "mhd/chunk/chunk_stream.h"
#include "mhd/chunk/rabin_chunker.h"
#include "mhd/format/file_manifest.h"

namespace mhd {

CdcEngine::CdcEngine(ObjectStore& store, const EngineConfig& config)
    : DedupEngine(store, config),
      cache_(store, config.manifest_cache_capacity, /*hook_flags=*/false,
             config.manifest_cache_bytes, &fp_index()),
      bloom_(config.bloom_bytes) {
  if (cfg_.use_bloom) seed_bloom_from_hooks(bloom_, store.backend());
  restore_warm_state(cache_);
}

std::optional<CdcEngine::DupRef> CdcEngine::find_duplicate(const Digest& hash) {
  if (const auto it = current_file_.find(hash); it != current_file_.end()) {
    return it->second;
  }
  if (auto loc = cache_.lookup_hash(hash)) {
    const ManifestEntry& e = loc->manifest->entries()[loc->entry_index];
    return DupRef{loc->manifest->chunk_name(), e.offset, e.size};
  }
  if (sampled_mode()) {
    // Similarity path only: the bloom + get_hook fallback below assumes
    // every stored fingerprint is findable; the sampled tier deliberately
    // forgets, and a miss here is stored fresh (the loss meter counts it).
    if (load_champions(cache_, hash)) {
      if (auto loc = cache_.lookup_hash(hash)) {
        const ManifestEntry& e = loc->manifest->entries()[loc->entry_index];
        return DupRef{loc->manifest->chunk_name(), e.offset, e.size};
      }
    }
    return std::nullopt;
  }
  if (cfg_.use_bloom && !bloom_.maybe_contains(hash.prefix64())) {
    return std::nullopt;
  }
  const auto hook = degrade_on_corruption(
      [&] { return store_.get_hook(hash, AccessKind::kSmallChunkQuery); });
  if (!hook || hook->size() != Digest::kSize) return std::nullopt;
  Digest manifest_name;
  std::copy(hook->begin(), hook->end(), manifest_name.bytes.begin());
  if (degrade_on_corruption([&] { return cache_.load(manifest_name); }) ==
      nullptr) {
    return std::nullopt;
  }
  if (auto loc = cache_.lookup_hash(hash)) {
    const ManifestEntry& e = loc->manifest->entries()[loc->entry_index];
    return DupRef{loc->manifest->chunk_name(), e.offset, e.size};
  }
  return std::nullopt;
}

void CdcEngine::process_file(const std::string& file_name, ByteSource& data) {
  const Digest dig = unique_store_digest(file_digest(file_name));
  Manifest manifest(dig);
  FileManifest fm(file_name);
  std::optional<ChunkWriter> writer;
  std::uint64_t chunk_off = 0;
  current_file_.clear();

  const auto stream = open_ingest(data, cfg_.ecs);
  ByteVec bytes;
  Digest hash;
  while (stream->next(bytes, hash)) {
    counters_.input_bytes += bytes.size();
    ++counters_.input_chunks;

    if (const auto dup = find_duplicate(hash);
        dup && admit_duplicate(dup->chunk_name, dup->offset, dup->size)) {
      note_duplicate(dup->size);
      fm.add_range(dup->chunk_name, dup->offset, dup->size,
                   /*coalesce=*/false);
      continue;
    }

    note_unique(bytes.size());
    if (!writer) writer.emplace(store_.open_chunk(dig.hex()));
    writer->write(bytes);
    manifest.add({hash, chunk_off, static_cast<std::uint32_t>(bytes.size()), 1,
                  false});
    store_.put_hook(hash, dig.span());
    if (cfg_.use_bloom) bloom_.insert(hash.prefix64());
    current_file_.emplace(
        hash, DupRef{dig, chunk_off, static_cast<std::uint32_t>(bytes.size())});
    fm.add_range(dig, chunk_off, bytes.size(), /*coalesce=*/false);
    chunk_off += bytes.size();
    ++counters_.stored_chunks;
  }

  if (writer) {
    writer->close();
    store_.put_manifest(dig.hex(), manifest.serialize(false));
    cache_.insert(dig, std::move(manifest), /*dirty=*/false);
    ++counters_.files_with_data;
  }
  store_.put_file_manifest(file_digest(file_name).hex(), fm.serialize());
  current_file_.clear();
}

void CdcEngine::finish() {
  cache_.flush();
  persist_index_state(cache_);
}

}  // namespace mhd
