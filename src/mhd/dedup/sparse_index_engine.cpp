#include "mhd/dedup/sparse_index_engine.h"

#include <algorithm>

#include "mhd/chunk/chunk_stream.h"
#include "mhd/chunk/rabin_chunker.h"

namespace mhd {

ByteVec SparseIndexEngine::SegManifest::serialize() const {
  ByteVec out;
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(containers.size()));
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(entries.size()));
  for (const auto& c : containers) append(out, c.span());
  for (const auto& e : entries) {
    append(out, e.hash.span());
    append_le<std::uint32_t>(out, e.container_index);
    append_le<std::uint64_t>(out, e.offset);
    append_le<std::uint32_t>(out, e.size);
  }
  return out;
}

std::optional<SparseIndexEngine::SegManifest>
SparseIndexEngine::SegManifest::deserialize(ByteSpan data) {
  if (data.size() < 8) return std::nullopt;
  SegManifest m;
  const std::uint32_t ncont = load_le<std::uint32_t>(data.data());
  const std::uint32_t nent = load_le<std::uint32_t>(data.data() + 4);
  std::size_t pos = 8;
  if (data.size() < pos + std::size_t{ncont} * 20 + std::size_t{nent} * 36) {
    return std::nullopt;
  }
  for (std::uint32_t i = 0; i < ncont; ++i) {
    Digest d;
    std::copy(data.begin() + static_cast<std::ptrdiff_t>(pos),
              data.begin() + static_cast<std::ptrdiff_t>(pos + 20),
              d.bytes.begin());
    pos += 20;
    m.containers.push_back(d);
  }
  for (std::uint32_t i = 0; i < nent; ++i) {
    Entry e;
    std::copy(data.begin() + static_cast<std::ptrdiff_t>(pos),
              data.begin() + static_cast<std::ptrdiff_t>(pos + 20),
              e.hash.bytes.begin());
    pos += 20;
    e.container_index = load_le<std::uint32_t>(data.data() + pos);
    pos += 4;
    e.offset = load_le<std::uint64_t>(data.data() + pos);
    pos += 8;
    e.size = load_le<std::uint32_t>(data.data() + pos);
    pos += 4;
    if (e.container_index >= m.containers.size()) return std::nullopt;
    m.entries.push_back(e);
  }
  return m;
}

SparseIndexEngine::SparseIndexEngine(ObjectStore& store,
                                     const EngineConfig& config)
    : DedupEngine(store, config),
      cache_(config.manifest_cache_capacity, nullptr,
             config.manifest_cache_bytes,
             [](const SegManifest& m) { return m.weight; }) {}

std::uint64_t SparseIndexEngine::index_ram_bytes() const {
  // Hash-map node: key + vector header + bucket overhead (~48 B) plus the
  // manifest ids held per hook.
  std::uint64_t bytes = 0;
  for (const auto& [key, manifests] : sparse_index_) {
    (void)key;
    bytes += 48 + manifests.size() * Digest::kSize;
  }
  return bytes;
}

void SparseIndexEngine::dedup_segment(std::vector<SegChunk>& segment,
                                      const Digest& file_dig,
                                      std::uint64_t segment_seq,
                                      FileManifest& fm,
                                      bool& stored_anything) {
  if (segment.empty()) return;

  // Segment identity: digest of (file digest, sequence number).
  ByteVec id_bytes = to_vec(file_dig.span());
  append_le<std::uint64_t>(id_bytes, segment_seq);
  const Digest seg_name = unique_store_digest(Sha1::hash(id_bytes));

  // 1. Champion selection: sampled hooks vote for known manifests.
  std::vector<std::pair<Digest, int>> votes;  // manifest -> hook hits
  for (const auto& c : segment) {
    if (!is_hook(c.hash)) continue;
    const auto it = sparse_index_.find(c.hash.prefix64());
    if (it == sparse_index_.end()) continue;
    for (const Digest& mname : it->second) {
      auto v = std::find_if(votes.begin(), votes.end(),
                            [&](const auto& p) { return p.first == mname; });
      if (v == votes.end()) {
        votes.emplace_back(mname, 1);
      } else {
        ++v->second;
      }
    }
  }
  std::stable_sort(votes.begin(), votes.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  if (votes.size() > cfg_.max_champions) votes.resize(cfg_.max_champions);

  // 2. Load champions and build the segment-local duplicate map.
  std::unordered_map<Digest, ChunkRef, DigestHasher> known;
  for (const auto& [mname, hits] : votes) {
    (void)hits;
    SegManifest* m = cache_.get(mname);
    if (m == nullptr) {
      const auto raw = degrade_on_corruption(
          [&] { return store_.get_manifest(mname.hex()); });
      if (!raw) continue;
      auto parsed = SegManifest::deserialize(*raw);
      if (!parsed) continue;
      ++loads_;
      parsed->weight = parsed->serialized_size();
      m = &cache_.put(mname, std::move(*parsed));
    }
    for (const auto& e : m->entries) {
      known.emplace(e.hash,
                    ChunkRef{m->containers[e.container_index], e.offset, e.size});
    }
  }

  // 3. Deduplicate the segment; survivors go to this segment's container.
  SegManifest manifest;
  std::optional<ChunkWriter> writer;
  std::uint64_t container_off = 0;
  auto container_index = [&](const Digest& c) -> std::uint32_t {
    const auto it = std::find(manifest.containers.begin(),
                              manifest.containers.end(), c);
    if (it != manifest.containers.end()) {
      return static_cast<std::uint32_t>(it - manifest.containers.begin());
    }
    manifest.containers.push_back(c);
    return static_cast<std::uint32_t>(manifest.containers.size() - 1);
  };

  for (auto& c : segment) {
    const auto it = known.find(c.hash);
    if (it != known.end() &&
        admit_duplicate(it->second.container, it->second.offset,
                        it->second.size)) {
      note_duplicate(it->second.size);
      fm.add_range(it->second.container, it->second.offset, it->second.size,
                   /*coalesce=*/false);
      manifest.entries.push_back({c.hash, container_index(it->second.container),
                                  it->second.offset, it->second.size});
      continue;
    }
    note_unique(c.bytes.size());
    if (!writer) writer.emplace(store_.open_chunk(seg_name.hex()));
    writer->write(c.bytes);
    const ChunkRef ref{seg_name, container_off,
                       static_cast<std::uint32_t>(c.bytes.size())};
    known.emplace(c.hash, ref);  // intra-segment dedup
    manifest.entries.push_back({c.hash, container_index(seg_name),
                                container_off,
                                static_cast<std::uint32_t>(c.bytes.size())});
    fm.add_range(seg_name, container_off, c.bytes.size(), false);
    container_off += c.bytes.size();
    ++counters_.stored_chunks;
  }
  if (writer) {
    writer->close();
    stored_anything = true;
  }

  // 4. Persist the segment manifest and update the sparse index + hooks.
  store_.put_manifest(seg_name.hex(), manifest.serialize());
  for (const auto& c : segment) {
    if (!is_hook(c.hash)) continue;
    auto& list = sparse_index_[c.hash.prefix64()];
    if (std::find(list.begin(), list.end(), seg_name) == list.end()) {
      if (list.size() >= cfg_.max_manifests_per_hook) {
        list.erase(list.begin());  // drop the oldest mapping
      }
      list.push_back(seg_name);
      // Hooks are also persisted (hash-named files) so the index survives
      // restart; this is what Fig. 7(a)'s high inode count reflects.
      store_.put_hook(c.hash, seg_name.span());
    }
  }
  manifest.weight = manifest.serialized_size();
  cache_.put(seg_name, std::move(manifest));
  segment.clear();
}

void SparseIndexEngine::process_file(const std::string& file_name,
                                     ByteSource& data) {
  const Digest dig = file_digest(file_name);
  FileManifest fm(file_name);
  bool stored_anything = false;

  const std::uint64_t segment_bytes = static_cast<std::uint64_t>(cfg_.ecs) *
                                      cfg_.sd * cfg_.segment_factor;
  const auto stream = open_ingest(data, cfg_.ecs);

  std::vector<SegChunk> segment;
  std::uint64_t segment_fill = 0;
  std::uint64_t segment_seq = 0;

  ByteVec bytes;
  SegChunk c;
  while (stream->next(bytes, c.hash)) {
    counters_.input_bytes += bytes.size();
    ++counters_.input_chunks;
    segment_fill += bytes.size();
    c.bytes = std::move(bytes);
    segment.push_back(std::move(c));
    if (segment_fill >= segment_bytes) {
      dedup_segment(segment, dig, segment_seq++, fm, stored_anything);
      segment_fill = 0;
      end_dup_run();  // slices do not span segment boundaries here
    }
  }
  dedup_segment(segment, dig, segment_seq++, fm, stored_anything);

  if (stored_anything) ++counters_.files_with_data;
  store_.put_file_manifest(dig.hex(), fm.serialize());
}

void SparseIndexEngine::finish() {}

}  // namespace mhd
