// FBC — Frequency-Based Chunking (Lu, Jin & Du, MASCOTS'10), the third
// member of the big-chunk-first family the paper discusses alongside
// Bimodal and SubChunk ("FBC performs selective re-chunking using several
// strategies based on the frequency information of chunks estimated from
// data that have been previously processed").
//
// This implementation keeps a frequency sketch of sampled small-chunk
// fingerprints. A non-duplicate big chunk is re-chunked at ECS when the
// sketch says it contains small content seen at least `threshold` times
// before — i.e. re-chunking is spent where duplicated small chunks are
// statistically likely, independent of transition points.
#pragma once

#include <unordered_map>

#include "mhd/core/manifest_cache.h"
#include "mhd/dedup/engine.h"
#include "mhd/format/file_manifest.h"

namespace mhd {

class FbcEngine final : public DedupEngine {
 public:
  FbcEngine(ObjectStore& store, const EngineConfig& config);

  std::string name() const override { return "FBC"; }
  void finish() override;

  std::uint64_t manifest_loads() const override {
    return cache_.manifest_loads();
  }
  std::uint64_t index_ram_bytes() const override {
    return frequency_.size() * 16 + DedupEngine::index_ram_bytes();
  }

  /// Frequency threshold for re-chunking (>= this many prior sightings).
  static constexpr std::uint32_t kFrequencyThreshold = 2;
  /// Sample 1-in-kSampleMod small fingerprints into the sketch.
  static constexpr std::uint64_t kSampleMod = 4;
  /// Aux-blob name the sketch persists under in the disk index.
  static constexpr const char* kSketchAuxName = "fbc-frequency";

 private:
  struct DupRef {
    Digest chunk_name;
    std::uint64_t offset = 0;
    std::uint32_t size = 0;
  };
  struct FileCtx {
    Digest dig{};
    Manifest manifest;
    FileManifest fm;
    std::optional<ChunkWriter> writer;
    std::uint64_t chunk_off = 0;
    std::unordered_map<Digest, DupRef, DigestHasher> current;
  };

  void process_file(const std::string& file_name, ByteSource& data) override;

  std::optional<DupRef> find_duplicate(const Digest& hash, const FileCtx& ctx,
                                       AccessKind query_kind);
  void store_region(FileCtx& ctx, ByteSpan bytes, const Digest& hash,
                    std::uint32_t chunk_count);
  /// Small-chunks the region, updates the sketch, and reports whether any
  /// sampled fingerprint was already frequent.
  bool looks_frequent(ByteSpan big_bytes,
                      std::vector<std::pair<Digest, ByteVec>>& smalls);
  void save_frequency_sketch();
  void load_frequency_sketch();

  ManifestCache cache_;
  BloomFilter bloom_;
  /// Sampled small-chunk fingerprint -> times seen.
  std::unordered_map<std::uint64_t, std::uint32_t> frequency_;
};

}  // namespace mhd
