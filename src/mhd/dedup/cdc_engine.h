// Plain content-defined-chunking deduplication (the paper's "CDC" column):
// every chunk at ECS granularity is indexed individually — one Manifest
// entry and one on-disk Hook per stored chunk. Duplicate detection uses the
// Manifest cache for locality, a bloom filter to skip lookups for new
// hashes, and an on-disk hook query otherwise. Maximum duplicate
// elimination at maximum metadata cost (TABLE I: 512F + 312N bytes).
#pragma once

#include <unordered_map>

#include "mhd/core/manifest_cache.h"
#include "mhd/dedup/engine.h"

namespace mhd {

class CdcEngine final : public DedupEngine {
 public:
  CdcEngine(ObjectStore& store, const EngineConfig& config);

  std::string name() const override { return "CDC"; }
  void finish() override;

  std::uint64_t manifest_loads() const override {
    return cache_.manifest_loads();
  }

 protected:
  void process_file(const std::string& file_name, ByteSource& data) override;

 private:
  struct DupRef {
    Digest chunk_name;
    std::uint64_t offset = 0;
    std::uint32_t size = 0;
  };
  std::optional<DupRef> find_duplicate(const Digest& hash);

  ManifestCache cache_;
  BloomFilter bloom_;
  /// Chunks of the file currently being processed (its Manifest enters the
  /// cache only at file end): enables intra-file deduplication.
  std::unordered_map<Digest, DupRef, DigestHasher> current_file_;
};

}  // namespace mhd
