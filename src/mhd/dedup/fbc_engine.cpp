#include "mhd/dedup/fbc_engine.h"

#include "mhd/index/persistent_index.h"
#include "mhd/index/sampled_index.h"

#include "mhd/chunk/chunk_stream.h"
#include "mhd/chunk/rabin_chunker.h"

namespace mhd {

FbcEngine::FbcEngine(ObjectStore& store, const EngineConfig& config)
    : DedupEngine(store, config),
      cache_(store, config.manifest_cache_capacity, /*hook_flags=*/false,
             config.manifest_cache_bytes, &fp_index()),
      bloom_(config.bloom_bytes) {
  if (cfg_.use_bloom) seed_bloom_from_hooks(bloom_, store.backend());
  restore_warm_state(cache_);
  load_frequency_sketch();
}

std::optional<FbcEngine::DupRef> FbcEngine::find_duplicate(
    const Digest& hash, const FileCtx& ctx, AccessKind query_kind) {
  if (const auto it = ctx.current.find(hash); it != ctx.current.end()) {
    return it->second;
  }
  if (auto loc = cache_.lookup_hash(hash)) {
    const ManifestEntry& e = loc->manifest->entries()[loc->entry_index];
    return DupRef{loc->manifest->chunk_name(), e.offset, e.size};
  }
  if (sampled_mode()) {
    // Similarity path only — no exact fallback (see CdcEngine).
    if (load_champions(cache_, hash)) {
      if (auto loc = cache_.lookup_hash(hash)) {
        const ManifestEntry& e = loc->manifest->entries()[loc->entry_index];
        return DupRef{loc->manifest->chunk_name(), e.offset, e.size};
      }
    }
    return std::nullopt;
  }
  if (cfg_.use_bloom && !bloom_.maybe_contains(hash.prefix64())) {
    return std::nullopt;
  }
  const auto hook = degrade_on_corruption(
      [&] { return store_.get_hook(hash, query_kind); });
  if (!hook || hook->size() != Digest::kSize) return std::nullopt;
  Digest manifest_name;
  std::copy(hook->begin(), hook->end(), manifest_name.bytes.begin());
  if (degrade_on_corruption([&] { return cache_.load(manifest_name); }) ==
      nullptr) {
    return std::nullopt;
  }
  if (auto loc = cache_.lookup_hash(hash)) {
    const ManifestEntry& e = loc->manifest->entries()[loc->entry_index];
    return DupRef{loc->manifest->chunk_name(), e.offset, e.size};
  }
  return std::nullopt;
}

void FbcEngine::store_region(FileCtx& ctx, ByteSpan bytes, const Digest& hash,
                             std::uint32_t chunk_count) {
  if (!ctx.writer) ctx.writer.emplace(store_.open_chunk(ctx.dig.hex()));
  ctx.writer->write(bytes);
  ctx.manifest.add({hash, ctx.chunk_off, static_cast<std::uint32_t>(bytes.size()),
                    chunk_count, false});
  store_.put_hook(hash, ctx.dig.span());
  if (cfg_.use_bloom) bloom_.insert(hash.prefix64());
  ctx.current.emplace(hash, DupRef{ctx.dig, ctx.chunk_off,
                                   static_cast<std::uint32_t>(bytes.size())});
  ctx.fm.add_range(ctx.dig, ctx.chunk_off, bytes.size(), /*coalesce=*/false);
  ctx.chunk_off += bytes.size();
  ++counters_.stored_chunks;
}

bool FbcEngine::looks_frequent(
    ByteSpan big_bytes, std::vector<std::pair<Digest, ByteVec>>& smalls) {
  const auto chunker =
      make_chunker(cfg_.chunker, cfg_.chunker_config(cfg_.ecs));
  MemorySource src(big_bytes);
  ChunkStream stream(src, *chunker);
  bool frequent = false;
  ByteVec bytes;
  while (stream.next(bytes)) {
    const Digest hash = Sha1::hash(bytes);
    const std::uint64_t fp = hash.prefix64();
    if (fp % kSampleMod == 0) {
      auto& count = frequency_[fp];
      if (count + 1 >= kFrequencyThreshold) frequent = true;
      ++count;
    }
    smalls.emplace_back(hash, std::move(bytes));
  }
  return frequent;
}

void FbcEngine::process_file(const std::string& file_name, ByteSource& data) {
  FileCtx ctx;
  ctx.dig = unique_store_digest(file_digest(file_name));
  ctx.manifest = Manifest(ctx.dig);
  ctx.fm = FileManifest(file_name);

  const std::uint64_t big_size =
      static_cast<std::uint64_t>(cfg_.ecs) * cfg_.sd;
  const auto stream = open_ingest(data, big_size);

  ByteVec big_bytes;
  Digest big_hash;
  while (stream->next(big_bytes, big_hash)) {
    counters_.input_bytes += big_bytes.size();
    ++counters_.input_chunks;

    if (const auto dup =
            find_duplicate(big_hash, ctx, AccessKind::kBigChunkQuery);
        dup && admit_duplicate(dup->chunk_name, dup->offset, dup->size)) {
      note_duplicate(dup->size);
      ctx.fm.add_range(dup->chunk_name, dup->offset, dup->size, false);
      continue;
    }

    // Frequency-driven selective re-chunking: small-chunk the big chunk
    // (this also feeds the sketch) and only deduplicate small when the
    // sketch indicates previously seen content.
    std::vector<std::pair<Digest, ByteVec>> smalls;
    const bool frequent = looks_frequent(big_bytes, smalls);
    if (!frequent) {
      note_unique(big_bytes.size());
      store_region(ctx, big_bytes, big_hash,
                   std::max<std::uint32_t>(1, cfg_.sd));
      continue;
    }
    counters_.input_chunks += smalls.size();
    for (auto& [hash, bytes] : smalls) {
      if (const auto dup =
              find_duplicate(hash, ctx, AccessKind::kSmallChunkQuery);
          dup && admit_duplicate(dup->chunk_name, dup->offset, dup->size)) {
        note_duplicate(dup->size);
        ctx.fm.add_range(dup->chunk_name, dup->offset, dup->size, false);
        continue;
      }
      note_unique(bytes.size());
      store_region(ctx, bytes, hash, 1);
    }
  }

  if (ctx.writer) {
    ctx.writer->close();
    store_.put_manifest(ctx.dig.hex(), ctx.manifest.serialize(false));
    cache_.insert(ctx.dig, std::move(ctx.manifest), /*dirty=*/false);
    ++counters_.files_with_data;
  }
  store_.put_file_manifest(file_digest(file_name).hex(), ctx.fm.serialize());
}

void FbcEngine::finish() {
  cache_.flush();
  save_frequency_sketch();
  persist_index_state(cache_);
}

// The frequency sketch is FBC's second piece of cross-restart state: the
// re-chunking decision depends on how often sampled fingerprints were seen
// in *prior* data, so a warm-restarted run must resume with the sketch the
// uninterrupted run would have. Persisted as an aux blob of whichever
// persistent index tier is active — disk or sampled — as count-prefixed
// u64 key / u32 count pairs; mem runs keep it in RAM only.
void FbcEngine::save_frequency_sketch() {
  auto* disk = dynamic_cast<PersistentIndex*>(&fp_index());
  auto* sampled = dynamic_cast<SampledIndex*>(&fp_index());
  if (disk == nullptr && sampled == nullptr) return;
  ByteVec payload;
  payload.reserve(8 + frequency_.size() * 12);
  append_le(payload, static_cast<std::uint64_t>(frequency_.size()));
  for (const auto& [key, seen] : frequency_) {
    append_le(payload, key);
    append_le(payload, seen);
  }
  if (disk != nullptr) {
    disk->save_aux(kSketchAuxName, payload);
  } else {
    sampled->save_aux(kSketchAuxName, payload);
  }
}

void FbcEngine::load_frequency_sketch() {
  std::optional<ByteVec> payload;
  if (auto* disk = dynamic_cast<PersistentIndex*>(&fp_index())) {
    payload = disk->load_aux(kSketchAuxName);
  } else if (auto* sampled = dynamic_cast<SampledIndex*>(&fp_index())) {
    payload = sampled->load_aux(kSketchAuxName);
  }
  if (!payload || payload->size() < 8) return;
  const auto count = load_le<std::uint64_t>(payload->data());
  if (payload->size() != 8 + count * 12) return;
  frequency_.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const Byte* p = payload->data() + 8 + i * 12;
    frequency_[load_le<std::uint64_t>(p)] = load_le<std::uint32_t>(p + 8);
  }
}

}  // namespace mhd
