// Extreme Binning (Bhagwat, Eshghi, Long & Lillibridge, MASCOTS'09) — the
// file-similarity baseline from the paper's related work: "uses one chunk
// from each file to represent the corresponding file. If the representative
// chunk is found to be a duplicate, data locality information of the
// corresponding file is loaded into the RAM. As only one disk access is
// needed per file, the throughput ... is comparatively high."
//
// Per file: chunk at ECS, take the minimum chunk hash as the
// representative; the in-RAM primary index maps representative -> bin.
// A bin (stored as a Manifest) holds the chunk index of every file that
// shared the representative; it is loaded with one disk access, the file
// is deduplicated against it, and the bin absorbs the file's new chunks.
#pragma once

#include <unordered_map>

#include "mhd/dedup/engine.h"
#include "mhd/format/file_manifest.h"
#include "mhd/format/manifest.h"

namespace mhd {

class ExtremeBinningEngine final : public DedupEngine {
 public:
  ExtremeBinningEngine(ObjectStore& store, const EngineConfig& config);

  std::string name() const override { return "ExtremeBinning"; }
  void finish() override;

  std::uint64_t manifest_loads() const override { return bin_loads_; }
  std::uint64_t index_ram_bytes() const override {
    return primary_index_.size() * (Digest::kSize * 2 + 16);
  }

 private:
  struct BinEntry {
    Digest chunk_name;  ///< DiskChunk holding the bytes
    std::uint64_t offset = 0;
    std::uint32_t size = 0;
  };
  /// A bin: chunk hash -> location, serialized as a Manifest-like blob.
  using Bin = std::unordered_map<Digest, BinEntry, DigestHasher>;

  void process_file(const std::string& file_name, ByteSource& data) override;

  ByteVec serialize_bin(const Bin& bin) const;
  std::optional<Bin> deserialize_bin(ByteSpan data) const;

  /// representative chunk hash -> bin object name.
  std::unordered_map<Digest, Digest, DigestHasher> primary_index_;
  std::uint64_t bin_loads_ = 0;
};

}  // namespace mhd
