#include "mhd/dedup/engine.h"

#include <algorithm>

#include "mhd/core/manifest_cache.h"
#include "mhd/format/file_manifest.h"
#include "mhd/index/mem_index.h"
#include "mhd/index/persistent_index.h"
#include "mhd/index/sampled_index.h"
#include "mhd/pipeline/ingest_pipeline.h"
#include "mhd/util/buffer_pool.h"
#include "mhd/util/hex.h"
#include "mhd/util/timer.h"

namespace mhd {

void DedupEngine::recycle_chunk(ByteVec&& bytes) {
  if (bytes.capacity() > 0) chunk_buffer_pool().release(std::move(bytes));
}

void DedupEngine::seed_bloom_from_hooks(BloomFilter& bloom,
                                        const StorageBackend& backend) {
  for (const auto& name : backend.list(Ns::kHook)) {
    const auto bytes = hex_decode(name);
    if (!bytes || bytes->size() != Digest::kSize) continue;
    Digest d;
    std::copy(bytes->begin(), bytes->end(), d.bytes.begin());
    bloom.insert(d.prefix64());
  }
}

FingerprintIndex& DedupEngine::fp_index() {
  if (!fp_index_) {
    if (cfg_.index_impl == IndexImpl::kDisk) {
      index_was_present_ = PersistentIndex::present(store_.backend());
      PersistentIndexConfig pc;
      pc.shards = cfg_.index_shards;
      pc.cache_bytes = cfg_.index_cache_bytes;
      pc.bloom_bits_per_key = cfg_.index_bloom_bits_per_key;
      pc.journal_batch = cfg_.index_journal_batch;
      pc.compact_threshold = cfg_.index_compact_threshold;
      fp_index_ = std::make_unique<PersistentIndex>(store_.backend(), pc);
    } else if (cfg_.index_impl == IndexImpl::kSampled) {
      index_was_present_ = SampledIndex::present(store_.backend());
      SampledIndexConfig sc;
      sc.sample_bits = cfg_.sample_bits;
      sc.max_champions = cfg_.max_champions;
      sc.max_manifests_per_hook = cfg_.max_manifests_per_hook;
      fp_index_ = std::make_unique<SampledIndex>(store_.backend(), sc);
    } else {
      fp_index_ = std::make_unique<MemIndex>();
    }
  }
  return *fp_index_;
}

void DedupEngine::restore_warm_state(ManifestCache& cache) {
  if (!index_was_present_) return;
  if (auto* disk = dynamic_cast<PersistentIndex*>(fp_index_.get())) {
    cache.warm_load(disk->load_warm_list());
  } else if (auto* sampled = dynamic_cast<SampledIndex*>(fp_index_.get())) {
    cache.warm_load(sampled->load_warm_list());
  }
}

void DedupEngine::persist_index_state(ManifestCache& cache) {
  if (!fp_index_) return;
  if (auto* disk = dynamic_cast<PersistentIndex*>(fp_index_.get())) {
    disk->save_warm_list(cache.resident_names());
  } else if (auto* sampled = dynamic_cast<SampledIndex*>(fp_index_.get())) {
    sampled->save_warm_list(cache.resident_names());
  }
  fp_index_->flush();
}

bool DedupEngine::load_champions(ManifestCache& cache, const Digest& hash) {
  auto* sampled = dynamic_cast<SampledIndex*>(&fp_index());
  if (sampled == nullptr) return false;
  bool loaded = false;
  for (const Digest& name : sampled->champions_for(hash)) {
    if (cache.cached(name) != nullptr) continue;
    Manifest* m = degrade_on_corruption([&] { return cache.load(name); });
    if (m == nullptr) continue;
    sampled->note_champion_load();
    loaded = true;
  }
  return loaded;
}

Digest DedupEngine::unique_store_digest(const Digest& base) const {
  Digest d = base;
  std::uint64_t salt = 0;
  while (store_.backend().exists(Ns::kDiskChunk, d.hex()) ||
         store_.backend().exists(Ns::kManifest, d.hex())) {
    ByteVec salted = to_vec(base.span());
    append_le<std::uint64_t>(salted, ++salt);
    d = Sha1::hash(salted);
  }
  return d;
}

std::unique_ptr<HashedChunkStream> DedupEngine::open_ingest(
    ByteSource& data, std::uint64_t expected_chunk_bytes) {
  auto chunker =
      make_chunker(cfg_.chunker, cfg_.chunker_config(expected_chunk_bytes));
  return open_hashed_stream(data, std::move(chunker), cfg_.ingest_threads,
                            cfg_.pipeline_queue_depth, &pipeline_stats_);
}

void DedupEngine::add_file(const std::string& file_name, ByteSource& data) {
  const Stopwatch watch;
  ++counters_.input_files;
  if (rewrite_) rewrite_->begin_file();
  end_dup_run();  // duplicate slices never span file boundaries
  process_file(file_name, data);
  end_dup_run();
  counters_.cpu_seconds += watch.seconds();
}

std::optional<ByteVec> DedupEngine::reconstruct(
    const std::string& file_name) const {
  // Restore never degrades: a corrupt object makes the restore fail
  // (nullopt) instead of silently returning wrong bytes.
  try {
    const StorageBackend& backend = store_.backend();
    const auto raw =
        backend.get(Ns::kFileManifest, file_digest(file_name).hex());
    if (!raw) return std::nullopt;
    const auto fm = FileManifest::deserialize(*raw);
    if (!fm) return std::nullopt;

    ByteVec out;
    out.reserve(static_cast<std::size_t>(fm->total_length()));
    for (const auto& entry : fm->entries()) {
      auto piece = backend.get_range(Ns::kDiskChunk, entry.chunk_name.hex(),
                                     entry.offset, entry.length);
      if (!piece) return std::nullopt;
      append(out, *piece);
    }
    return out;
  } catch (const CorruptObjectError&) {
    return std::nullopt;
  }
}

}  // namespace mhd
