// Bimodal content-defined chunking (Kruus, Ungureanu & Dubnicki, FAST'10),
// as analysed in the paper's TABLE I/II.
//
// The stream is chunked at the big expected size ECS*SD and deduplicated
// at big-chunk granularity first. Non-duplicate big chunks that sit at a
// "transition point" (adjacent to a duplicate big chunk) are re-chunked at
// the small expected size ECS and deduplicated small; other non-duplicate
// big chunks are stored whole under a single hash. Every stored chunk —
// big or small — costs one Manifest entry and one on-disk Hook, which is
// exactly why Bimodal's metadata grows with 2L(SD-1) extra hooks/entries
// in TABLE I. Duplicate data strictly inside non-transition big chunks is
// missed (the DER cost the paper shows in Fig. 8).
#pragma once

#include <unordered_map>

#include "mhd/core/manifest_cache.h"
#include "mhd/dedup/engine.h"
#include "mhd/format/file_manifest.h"

namespace mhd {

class BimodalEngine final : public DedupEngine {
 public:
  BimodalEngine(ObjectStore& store, const EngineConfig& config);

  std::string name() const override { return "Bimodal"; }
  void finish() override;

  std::uint64_t manifest_loads() const override {
    return cache_.manifest_loads();
  }

 protected:
  void process_file(const std::string& file_name, ByteSource& data) override;

 private:
  struct DupRef {
    Digest chunk_name;
    std::uint64_t offset = 0;
    std::uint32_t size = 0;
  };
  struct BigChunk {
    ByteVec bytes;
    Digest hash;
    std::optional<DupRef> dup;  ///< resolved duplicate, if any
  };
  struct FileCtx {
    Digest dig{};
    Manifest manifest;
    FileManifest fm;
    std::optional<ChunkWriter> writer;
    std::uint64_t chunk_off = 0;
    std::unordered_map<Digest, DupRef, DigestHasher> current;  ///< intra-file
  };

  std::optional<DupRef> find_duplicate(const Digest& hash,
                                       const FileCtx& ctx,
                                       AccessKind query_kind);
  /// Emits one resolved big chunk; `transition` selects re-chunking.
  void emit_big(FileCtx& ctx, BigChunk& chunk, bool transition);
  void store_small(FileCtx& ctx, ByteSpan bytes, const Digest& hash,
                   std::uint32_t chunk_count);

  ManifestCache cache_;
  BloomFilter bloom_;
};

}  // namespace mhd
