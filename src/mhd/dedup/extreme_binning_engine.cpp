#include "mhd/dedup/extreme_binning_engine.h"

#include "mhd/chunk/chunk_stream.h"
#include "mhd/chunk/rabin_chunker.h"

namespace mhd {

ExtremeBinningEngine::ExtremeBinningEngine(ObjectStore& store,
                                           const EngineConfig& config)
    : DedupEngine(store, config) {}

ByteVec ExtremeBinningEngine::serialize_bin(const Bin& bin) const {
  ByteVec out;
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(bin.size()));
  for (const auto& [hash, entry] : bin) {
    append(out, hash.span());
    append(out, entry.chunk_name.span());
    append_le<std::uint64_t>(out, entry.offset);
    append_le<std::uint32_t>(out, entry.size);
  }
  return out;
}

std::optional<ExtremeBinningEngine::Bin> ExtremeBinningEngine::deserialize_bin(
    ByteSpan data) const {
  if (data.size() < 4) return std::nullopt;
  const std::uint32_t count = load_le<std::uint32_t>(data.data());
  constexpr std::size_t kEntry = 20 + 20 + 8 + 4;
  if (data.size() < 4 + static_cast<std::size_t>(count) * kEntry) {
    return std::nullopt;
  }
  Bin bin;
  std::size_t pos = 4;
  for (std::uint32_t i = 0; i < count; ++i) {
    Digest hash;
    BinEntry entry;
    std::copy(data.begin() + static_cast<std::ptrdiff_t>(pos),
              data.begin() + static_cast<std::ptrdiff_t>(pos + 20),
              hash.bytes.begin());
    pos += 20;
    std::copy(data.begin() + static_cast<std::ptrdiff_t>(pos),
              data.begin() + static_cast<std::ptrdiff_t>(pos + 20),
              entry.chunk_name.bytes.begin());
    pos += 20;
    entry.offset = load_le<std::uint64_t>(data.data() + pos);
    pos += 8;
    entry.size = load_le<std::uint32_t>(data.data() + pos);
    pos += 4;
    bin.emplace(hash, entry);
  }
  return bin;
}

void ExtremeBinningEngine::process_file(const std::string& file_name,
                                        ByteSource& data) {
  const Digest dig = unique_store_digest(file_digest(file_name));
  FileManifest fm(file_name);

  // Chunk the whole file first: Extreme Binning needs the representative
  // (minimum) chunk hash before it can pick a bin.
  std::vector<std::pair<Digest, ByteVec>> chunks;
  const auto stream = open_ingest(data, cfg_.ecs);
  ByteVec bytes;
  Digest hash;
  std::optional<Digest> representative;
  while (stream->next(bytes, hash)) {
    counters_.input_bytes += bytes.size();
    ++counters_.input_chunks;
    if (!representative || hash < *representative) representative = hash;
    chunks.emplace_back(hash, std::move(bytes));
  }
  if (chunks.empty()) {
    store_.put_file_manifest(file_digest(file_name).hex(), fm.serialize());
    return;
  }

  // One disk access per file: load the representative's bin if known.
  Bin bin;
  Digest bin_name = *representative;
  const auto idx = primary_index_.find(*representative);
  if (idx != primary_index_.end()) {
    bin_name = idx->second;
    if (const auto raw = degrade_on_corruption(
            [&] { return store_.get_manifest(bin_name.hex()); })) {
      if (auto parsed = deserialize_bin(*raw)) {
        bin = std::move(*parsed);
        ++bin_loads_;
      }
    }
  }

  std::optional<ChunkWriter> writer;
  std::uint64_t chunk_off = 0;
  bool bin_grew = false;
  for (auto& [hash, chunk_bytes] : chunks) {
    const auto hit = bin.find(hash);
    if (hit != bin.end() &&
        admit_duplicate(hit->second.chunk_name, hit->second.offset,
                        hit->second.size)) {
      note_duplicate(hit->second.size);
      fm.add_range(hit->second.chunk_name, hit->second.offset,
                   hit->second.size, /*coalesce=*/false);
      continue;
    }
    note_unique(chunk_bytes.size());
    if (!writer) writer.emplace(store_.open_chunk(dig.hex()));
    writer->write(chunk_bytes);
    bin.emplace(hash, BinEntry{dig, chunk_off,
                               static_cast<std::uint32_t>(chunk_bytes.size())});
    bin_grew = true;
    fm.add_range(dig, chunk_off, chunk_bytes.size(), false);
    chunk_off += chunk_bytes.size();
    ++counters_.stored_chunks;
  }
  if (writer) {
    writer->close();
    ++counters_.files_with_data;
  }

  if (bin_grew) {
    store_.put_manifest(bin_name.hex(), serialize_bin(bin));
  }
  primary_index_[*representative] = bin_name;
  store_.put_file_manifest(file_digest(file_name).hex(), fm.serialize());
}

void ExtremeBinningEngine::finish() {}

}  // namespace mhd
