// Rewrite algorithms — the dedup-time half of fragmentation control.
//
// With container packing (store/container_store.h) a duplicate chunk can
// be referenced wherever dedup first placed it, but every such reference
// drags a whole old container into the restore. Rewrite algorithms trade
// a little dedup ratio for restore locality by *declining* some duplicate
// references at dedup time, so the bytes are stored fresh into the
// current container instead (selectable via --rewrite):
//
//  * kCbr — capping / container-bounded rewriting: within each segment of
//    the input stream (cbr_segment_bytes; segments never span files) at
//    most cbr_cap distinct *old* containers may be referenced. References
//    into the currently-filling container are always free. Once the cap
//    is reached, further duplicates pointing at new old containers are
//    rewritten. A restore of one segment then touches at most
//    cap + its-own-write-order containers.
//
//  * kHar — history-aware rewriting: per snapshot generation the
//    controller accumulates how many bytes each old container contributed
//    to duplicate references. At end_snapshot() containers whose
//    utilization (referenced bytes / container payload bytes) fell below
//    har_utilization are flagged *sparse*; duplicates resolving into a
//    sparse container in any later generation are rewritten. Sparse
//    containers thus drain over generations and GC can reclaim them.
//
// The controller is advisory and placement-driven: it answers "may this
// duplicate be referenced in place?" through the authoritative placement
// query ContainerBackend::locate(). Without a container layer every
// duplicate is admitted (nothing to compact).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "mhd/hash/digest.h"
#include "mhd/store/container_store.h"

namespace mhd {

enum class RewriteMode { kNone, kCbr, kHar };

const char* rewrite_mode_name(RewriteMode mode);
std::optional<RewriteMode> parse_rewrite_mode(const std::string& name);

struct RewriteStats {
  std::uint64_t duplicates_seen = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rewritten_chunks = 0;
  std::uint64_t rewritten_bytes = 0;
  std::uint64_t segments = 0;           ///< CBR segments closed
  std::uint64_t sparse_containers = 0;  ///< HAR: currently flagged sparse
};

struct RewriteConfig {
  RewriteMode mode = RewriteMode::kNone;
  std::uint64_t segment_bytes = 4ull << 20;  ///< CBR segment length
  std::uint32_t cap = 16;  ///< CBR: max distinct old containers per segment
  double har_utilization = 0.5;  ///< HAR sparse threshold
};

class RewriteController {
 public:
  /// `containers` may be nullptr (legacy layout): every duplicate admits.
  RewriteController(const RewriteConfig& config,
                    const ContainerBackend* containers);

  /// Stream bookkeeping: segments never span files.
  void begin_file();

  /// Advances the CBR segment position for bytes that are not duplicate
  /// decisions (unique chunks, bulk-extended matches).
  void on_stream_bytes(std::uint64_t bytes);

  /// The rewrite decision for one detected duplicate whose stored copy is
  /// the chunk's logical bytes at [offset, offset+size). True = reference
  /// in place; false = store fresh (rewrite).
  bool admit(const Digest& chunk_name, std::uint64_t offset,
             std::uint64_t size);

  /// Closes a snapshot generation: HAR folds this generation's container
  /// utilization into the sparse set consulted by later generations.
  void end_snapshot();

  const RewriteStats& stats() const { return stats_; }
  RewriteMode mode() const { return cfg_.mode; }

 private:
  void advance_segment(std::uint64_t bytes);

  RewriteConfig cfg_;
  const ContainerBackend* containers_;
  RewriteStats stats_;

  // CBR state.
  std::uint64_t segment_pos_ = 0;
  std::unordered_set<std::uint64_t> segment_containers_;

  // HAR state.
  std::unordered_map<std::uint64_t, std::uint64_t> generation_refs_;
  std::unordered_set<std::uint64_t> sparse_;
};

}  // namespace mhd
