// Anchor-driven subchunk deduplication (Romanski et al., SYSTOR'11), as
// analysed in the paper's TABLE I/II.
//
// The stream is chunked at the big expected size ECS*SD; every
// non-duplicate big chunk is re-chunked at ECS and deduplicated small; the
// surviving small chunks of one big chunk are coalesced into a single
// container DiskChunk (hence N/SD DiskChunk inodes in TABLE I). The
// per-file manifest maps small chunks to containers, paying a shared
// 28-byte header per container group plus 36 bytes per small chunk. Each
// file gets one Hook (its first big-chunk hash) pointing at its manifest.
//
// Every incoming big chunk pays a big-chunk duplication query before
// re-chunking — the (N+D)/SD query row of TABLE II that MHD eliminates.
//
// Implementation note (documented in EXPERIMENTS.md): each big chunk also
// records its restore recipe — the container ranges covering its full
// extent — because a later duplicate big chunk must be reconstructible
// even though its bytes are scattered across containers. The paper's
// 36N + 28N/SD byte model excludes recipes, so our measured manifests are
// slightly larger; orderings are unaffected.
#pragma once

#include <unordered_map>

#include "mhd/container/lru_cache.h"
#include "mhd/dedup/engine.h"
#include "mhd/format/file_manifest.h"
#include "mhd/format/manifest.h"

namespace mhd {

class SubChunkEngine final : public DedupEngine {
 public:
  SubChunkEngine(ObjectStore& store, const EngineConfig& config);

  std::string name() const override { return "SubChunk"; }
  void finish() override;

  std::uint64_t manifest_loads() const override { return loads_; }

 protected:
  void process_file(const std::string& file_name, ByteSource& data) override;

 private:
  struct SmallRef {
    Digest container;
    std::uint64_t offset = 0;
    std::uint32_t size = 0;
  };
  /// One big chunk's metadata: its container group + restore recipe.
  struct BigGroup {
    Digest big_hash;
    Digest container;                      ///< == big_hash (container name)
    std::vector<ManifestEntry> smalls;     ///< stored smalls in container
    std::vector<FileManifestEntry> recipe; ///< full extent, restore order
  };
  /// Per-file manifest: all big groups of the file.
  struct SubManifest {
    std::vector<BigGroup> groups;
    std::uint64_t weight = 0;  ///< serialized size snapshot for the cache
    ByteVec serialize() const;
    static std::optional<SubManifest> deserialize(ByteSpan data);
    std::uint64_t serialized_size() const;
  };

  std::optional<SmallRef> find_small(const Digest& hash);
  std::optional<const BigGroup*> find_big(const Digest& hash);
  /// Loads the file manifest a hook points at into the cache.
  bool load_manifest_for(const Digest& hook_hash, AccessKind query_kind);
  void index_manifest(const Digest& name, const SubManifest& m);
  void unindex_manifest(const SubManifest& m);

  LruCache<Digest, SubManifest, DigestHasher> cache_;
  BloomFilter bloom_;
  /// Global indexes over cached manifests.
  std::unordered_map<Digest, SmallRef, DigestHasher> small_index_;
  std::unordered_map<Digest, std::pair<Digest, std::size_t>, DigestHasher>
      big_index_;  ///< big hash -> (manifest name, group position)
  std::uint64_t loads_ = 0;
};

}  // namespace mhd
