#include "mhd/dedup/subchunk_engine.h"

#include "mhd/chunk/chunk_stream.h"
#include "mhd/chunk/rabin_chunker.h"

namespace mhd {

namespace {
void append_digest(ByteVec& out, const Digest& d) { append(out, d.span()); }

Digest read_digest(ByteSpan data, std::size_t& pos) {
  Digest d;
  std::copy(data.begin() + static_cast<std::ptrdiff_t>(pos),
            data.begin() + static_cast<std::ptrdiff_t>(pos + Digest::kSize),
            d.bytes.begin());
  pos += Digest::kSize;
  return d;
}
}  // namespace

ByteVec SubChunkEngine::SubManifest::serialize() const {
  ByteVec out;
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(groups.size()));
  for (const auto& g : groups) {
    // Container header: big-chunk hash (20) + container address (20) +
    // small-chunk count (4) + recipe count (4). (The paper accounts 28
    // bytes; our header also carries the container name and the recipe —
    // see the class comment.)
    append_digest(out, g.big_hash);
    append_digest(out, g.container);
    append_le<std::uint32_t>(out, static_cast<std::uint32_t>(g.smalls.size()));
    append_le<std::uint32_t>(out, static_cast<std::uint32_t>(g.recipe.size()));
    for (const auto& e : g.smalls) {
      append_digest(out, e.hash);
      append_le<std::uint64_t>(out, e.offset);
      append_le<std::uint32_t>(out, e.size);
      append_le<std::uint32_t>(out, e.chunk_count);
    }
    for (const auto& r : g.recipe) {
      append_digest(out, r.chunk_name);
      append_le<std::uint64_t>(out, r.offset);
      append_le<std::uint32_t>(out, r.length);
    }
  }
  return out;
}

std::optional<SubChunkEngine::SubManifest>
SubChunkEngine::SubManifest::deserialize(ByteSpan data) {
  if (data.size() < 4) return std::nullopt;
  SubManifest m;
  std::size_t pos = 0;
  const std::uint32_t group_count = load_le<std::uint32_t>(data.data());
  pos += 4;
  for (std::uint32_t gi = 0; gi < group_count; ++gi) {
    if (data.size() < pos + 48) return std::nullopt;
    BigGroup g;
    g.big_hash = read_digest(data, pos);
    g.container = read_digest(data, pos);
    const std::uint32_t smalls = load_le<std::uint32_t>(data.data() + pos);
    pos += 4;
    const std::uint32_t recipes = load_le<std::uint32_t>(data.data() + pos);
    pos += 4;
    if (data.size() < pos + std::size_t{smalls} * 36 + std::size_t{recipes} * 32) {
      return std::nullopt;
    }
    for (std::uint32_t i = 0; i < smalls; ++i) {
      ManifestEntry e;
      e.hash = read_digest(data, pos);
      e.offset = load_le<std::uint64_t>(data.data() + pos);
      pos += 8;
      e.size = load_le<std::uint32_t>(data.data() + pos);
      pos += 4;
      e.chunk_count = load_le<std::uint32_t>(data.data() + pos);
      pos += 4;
      g.smalls.push_back(e);
    }
    for (std::uint32_t i = 0; i < recipes; ++i) {
      FileManifestEntry r;
      r.chunk_name = read_digest(data, pos);
      r.offset = load_le<std::uint64_t>(data.data() + pos);
      pos += 8;
      r.length = load_le<std::uint32_t>(data.data() + pos);
      pos += 4;
      g.recipe.push_back(r);
    }
    m.groups.push_back(std::move(g));
  }
  return m;
}

std::uint64_t SubChunkEngine::SubManifest::serialized_size() const {
  std::uint64_t bytes = 4;
  for (const auto& g : groups) {
    bytes += 48 + g.smalls.size() * 36 + g.recipe.size() * 32;
  }
  return bytes;
}

SubChunkEngine::SubChunkEngine(ObjectStore& store, const EngineConfig& config)
    : DedupEngine(store, config),
      cache_(
          config.manifest_cache_capacity,
          [this](const Digest& name, SubManifest& m) {
            (void)name;
            unindex_manifest(m);
          },
          config.manifest_cache_bytes,
          [](const SubManifest& m) { return m.weight; }),
      bloom_(config.bloom_bytes) {
  if (cfg_.use_bloom) seed_bloom_from_hooks(bloom_, store.backend());
}

void SubChunkEngine::index_manifest(const Digest& name, const SubManifest& m) {
  for (std::size_t gi = 0; gi < m.groups.size(); ++gi) {
    const BigGroup& g = m.groups[gi];
    big_index_.insert_or_assign(g.big_hash, std::make_pair(name, gi));
    for (const auto& e : g.smalls) {
      small_index_.insert_or_assign(e.hash, SmallRef{g.container, e.offset,
                                                     e.size});
    }
  }
}

void SubChunkEngine::unindex_manifest(const SubManifest& m) {
  for (const auto& g : m.groups) {
    big_index_.erase(g.big_hash);
    for (const auto& e : g.smalls) small_index_.erase(e.hash);
  }
}

std::optional<SubChunkEngine::SmallRef> SubChunkEngine::find_small(
    const Digest& hash) {
  const auto it = small_index_.find(hash);
  if (it == small_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<const SubChunkEngine::BigGroup*> SubChunkEngine::find_big(
    const Digest& hash) {
  const auto it = big_index_.find(hash);
  if (it == big_index_.end()) return std::nullopt;
  SubManifest* m = cache_.get(it->second.first);
  if (m == nullptr || it->second.second >= m->groups.size()) {
    return std::nullopt;
  }
  return &m->groups[it->second.second];
}

bool SubChunkEngine::load_manifest_for(const Digest& hook_hash,
                                       AccessKind query_kind) {
  if (cfg_.use_bloom && !bloom_.maybe_contains(hook_hash.prefix64())) {
    return false;
  }
  const auto hook = degrade_on_corruption(
      [&] { return store_.get_hook(hook_hash, query_kind); });
  if (!hook || hook->size() != Digest::kSize) return false;
  Digest manifest_name;
  std::copy(hook->begin(), hook->end(), manifest_name.bytes.begin());
  if (cache_.contains(manifest_name)) return true;
  const auto raw = degrade_on_corruption(
      [&] { return store_.get_manifest(manifest_name.hex()); });
  if (!raw) return false;
  auto m = SubManifest::deserialize(*raw);
  if (!m) return false;
  ++loads_;
  m->weight = m->serialized_size();
  index_manifest(manifest_name, *m);
  cache_.put(manifest_name, std::move(*m));
  return true;
}

void SubChunkEngine::process_file(const std::string& file_name,
                                  ByteSource& data) {
  const Digest dig = unique_store_digest(file_digest(file_name));
  SubManifest manifest;
  FileManifest fm(file_name);
  bool first_big = true;
  bool stored_anything = false;

  const std::uint64_t big_size =
      static_cast<std::uint64_t>(cfg_.ecs) * cfg_.sd;
  const auto stream = open_ingest(data, big_size);

  ByteVec big_bytes;
  Digest big_hash;
  while (stream->next(big_bytes, big_hash)) {
    counters_.input_bytes += big_bytes.size();
    ++counters_.input_chunks;

    // Big-chunk duplication query (cache first, then the on-disk hook — the
    // query MHD's bi-directional extension avoids).
    auto big = find_big(big_hash);
    if (!big && load_manifest_for(big_hash, AccessKind::kBigChunkQuery)) {
      big = find_big(big_hash);
    }
    if (big && !(*big)->recipe.empty() &&
        admit_duplicate((*big)->recipe.front().chunk_name,
                        (*big)->recipe.front().offset, big_bytes.size())) {
      note_duplicate(big_bytes.size());
      for (const auto& r : (*big)->recipe) {
        fm.add_range(r.chunk_name, r.offset, r.length, /*coalesce=*/false);
      }
      continue;
    }

    // Non-duplicate big chunk: re-chunk at ECS, dedup small, coalesce the
    // surviving smalls into one container DiskChunk (name salted if the
    // same big-chunk hash produced a container before).
    BigGroup group;
    group.big_hash = big_hash;
    group.container = unique_store_digest(big_hash);
    std::optional<ChunkWriter> writer;
    std::uint64_t container_off = 0;
    const Digest container = group.container;

    const auto small_chunker =
        make_chunker(cfg_.chunker, cfg_.chunker_config(cfg_.ecs));
    MemorySource src(big_bytes);
    ChunkStream small_stream(src, *small_chunker);
    ByteVec bytes;
    while (small_stream.next(bytes)) {
      ++counters_.input_chunks;
      const Digest hash = Sha1::hash(bytes);
      if (const auto dup = find_small(hash);
          dup && admit_duplicate(dup->container, dup->offset, dup->size)) {
        note_duplicate(dup->size);
        fm.add_range(dup->container, dup->offset, dup->size, false);
        group.recipe.push_back({dup->container, dup->offset, dup->size});
        continue;
      }
      note_unique(bytes.size());
      if (!writer) writer.emplace(store_.open_chunk(container.hex()));
      writer->write(bytes);
      group.smalls.push_back({hash, container_off,
                              static_cast<std::uint32_t>(bytes.size()), 1,
                              false});
      small_index_.insert_or_assign(
          hash, SmallRef{container, container_off,
                         static_cast<std::uint32_t>(bytes.size())});
      fm.add_range(container, container_off, bytes.size(), false);
      group.recipe.push_back({container, container_off,
                              static_cast<std::uint32_t>(bytes.size())});
      container_off += bytes.size();
      ++counters_.stored_chunks;
    }
    if (writer) {
      writer->close();
      stored_anything = true;
    }
    big_index_.insert_or_assign(big_hash,
                                std::make_pair(dig, manifest.groups.size()));
    manifest.groups.push_back(std::move(group));

    // The file's hook is its first big chunk (the "anchor").
    if (first_big) {
      store_.put_hook(big_hash, dig.span());
      if (cfg_.use_bloom) bloom_.insert(big_hash.prefix64());
      first_big = false;
    }
  }

  if (!manifest.groups.empty()) {
    store_.put_manifest(dig.hex(), manifest.serialize());
    manifest.weight = manifest.serialized_size();
    cache_.put(dig, std::move(manifest));
    if (stored_anything) ++counters_.files_with_data;
  }
  store_.put_file_manifest(file_digest(file_name).hex(), fm.serialize());
}

void SubChunkEngine::finish() {}

}  // namespace mhd
