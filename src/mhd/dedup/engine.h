// DedupEngine — the common interface of all deduplication algorithms
// (CDC, Bimodal, SubChunk, SparseIndexing, FBC, ExtremeBinning, MHD).
//
// An engine consumes a backup stream file-by-file, writes DiskChunks /
// Hooks / Manifests / FileManifests through an ObjectStore (which counts
// categorized disk accesses), and exposes the counters the paper's
// analysis uses: N (stored chunks), D (duplicate chunks), L (duplicate
// data slices), F (files not completely duplicate), duplicate bytes, HHR
// statistics and CPU time. reconstruct() restores any file byte-exactly
// from the store — the correctness invariant every test suite leans on.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "mhd/chunk/byte_source.h"
#include "mhd/chunk/make_chunker.h"
#include "mhd/container/bloom_filter.h"
#include "mhd/dedup/rewrite.h"
#include "mhd/hash/sha1.h"
#include "mhd/index/fingerprint_index.h"
#include "mhd/pipeline/hashed_chunk_stream.h"
#include "mhd/pipeline/stage.h"
#include "mhd/store/object_store.h"
#include "mhd/store/store_errors.h"

namespace mhd {

class ManifestCache;

struct EngineConfig {
  std::uint32_t ecs = 4096;  ///< expected (small) chunk size, bytes
  std::uint32_t sd = 1000;   ///< sample distance, in hashes
  ChunkerKind chunker = ChunkerKind::kRabin;  ///< cut-point algorithm
  /// Scan-loop implementation (--chunker-impl). Purely a speed knob: every
  /// implementation yields bit-identical cut points, so dedup results do
  /// not depend on it.
  ChunkerImpl chunker_impl = ChunkerImpl::kAuto;
  /// SHA-1 kernel selection (--hash-impl). Like chunker_impl a pure speed
  /// knob: every kernel produces bit-identical digests. Applied
  /// process-wide at engine construction (the fingerprint kernel is global
  /// state, like the allocator).
  Sha1Impl hash_impl = Sha1Impl::kAuto;

  /// ChunkerConfig for this engine at the given expected chunk size, with
  /// the engine's scan-implementation choice applied. Engines must build
  /// their chunkers through this so --chunker-impl reaches the hot loop.
  ChunkerConfig chunker_config(std::uint64_t expected_bytes) const {
    ChunkerConfig cc = ChunkerConfig::from_expected(expected_bytes);
    cc.impl = chunker_impl;
    return cc;
  }

  /// Hash-worker pool size for the staged ingest pipeline
  /// (--ingest-threads). 0 = serial ingest: read, chunk and SHA-1 run
  /// inline on the caller's thread. N >= 1 runs the pipelined path
  /// (read → chunk → N hash workers → reorder → dedup); results are
  /// bit-identical either way — this is purely a throughput knob.
  std::uint32_t ingest_threads = 0;
  /// Bounded capacity of each inter-stage queue, in chunks. Caps the
  /// memory held by in-flight chunks and the reorder window.
  std::uint32_t pipeline_queue_depth = 64;

  bool use_bloom = true;
  std::size_t bloom_bytes = 4 << 20;  ///< paper: 100 MB; scaled for corpus
  std::size_t manifest_cache_capacity = 64;
  /// RAM budget for cached manifests in bytes (0 = count-limited only).
  /// Giving every algorithm the same budget makes the comparison fair:
  /// metadata-heavy algorithms fit fewer manifests and lose locality.
  std::uint64_t manifest_cache_bytes = 0;

  // SparseIndexing parameters (Section V: segment = ECS*SD*5, <=10
  // champions, a hook maps to <=5 manifests).
  std::uint32_t segment_factor = 5;
  std::uint32_t max_champions = 10;
  std::uint32_t max_manifests_per_hook = 5;

  // MHD ablation switches (DESIGN.md section 6).
  bool enable_edge_hash = true;
  bool enable_backward_extension = true;
  bool enable_shm = true;

  // Fingerprint-index routing (DESIGN.md "Fingerprint index"). kMem keeps
  // the historical always-resident map; kDisk stores the index under
  // Ns::kIndex with bounded RAM and warm restart (--index-impl). The two
  // make bit-identical dedup decisions — kDisk additionally survives
  // process restarts. kSampled is the similarity tier (DESIGN.md "Sampled
  // similarity index"): index RAM scales with the sample rate, dedup
  // decisions may miss duplicates (measured, never hidden), restores stay
  // byte-exact.
  IndexImpl index_impl = IndexImpl::kMem;
  /// Sampled tier: a fingerprint whose low `sample_bits` bits (of its
  /// prefix64) are zero is a hook — expected one hook per 2^bits chunks
  /// (--sample-bits). Champion fan-out reuses max_champions (--champions)
  /// and max_manifests_per_hook caps each hook's champion list.
  std::uint32_t sample_bits = 6;
  /// Weight budget of the disk index's hot bucket-page cache
  /// (--index-cache-mb).
  std::uint64_t index_cache_bytes = 8ull << 20;
  /// Bloom sizing for the disk index's negative-lookup front
  /// (--index-bloom-bits-per-key).
  std::uint32_t index_bloom_bits_per_key = 10;
  // Disk-index geometry knobs (programmatic; tests shrink them to force
  // many journal segments and compactions on tiny corpora).
  std::uint32_t index_shards = 64;
  std::uint32_t index_journal_batch = 64;
  std::uint64_t index_compact_threshold = 4096;

  // Durability stack (DESIGN.md "Durability model"). With `framed` the
  // simulation runner layers FramedBackend (CRC32C self-verifying objects,
  // typed corrupt-vs-absent errors) over the repository; `fault_plan` adds
  // a FaultInjectingBackend *below* the framing speaking the plan
  // mini-language in store/fault_backend.h (--fault-plan). Dedup results
  // are bit-identical with framing on; only physical bytes differ.
  bool framed = false;
  std::string fault_plan;

  // Container packing + rewrite (DESIGN.md "Container store and restore
  // path"). 0 keeps the legacy per-chunk layout; with a size the runner
  // layers a ContainerBackend of that container size over the stack
  // (--container-mb) and `rewrite` selects the fragmentation-control
  // algorithm applied at dedup time (--rewrite).
  std::uint64_t container_bytes = 0;
  /// RAM budget of the restore path's whole-container LRU cache
  /// (--restore-cache-mb).
  std::uint64_t restore_cache_bytes = 32ull << 20;
  RewriteMode rewrite = RewriteMode::kNone;
  std::uint64_t cbr_segment_bytes = 4ull << 20;
  std::uint32_t cbr_cap = 16;
  double har_utilization = 0.5;
};

struct EngineCounters {
  std::uint64_t input_bytes = 0;
  std::uint64_t input_files = 0;
  std::uint64_t input_chunks = 0;   ///< small chunks hashed from the stream
  std::uint64_t dup_chunks = 0;     ///< D
  std::uint64_t dup_bytes = 0;
  std::uint64_t dup_slices = 0;     ///< L
  std::uint64_t stored_chunks = 0;  ///< N: chunks written as new data
  std::uint64_t files_with_data = 0;  ///< F: files not completely duplicate

  // MHD-specific (zero for baselines).
  std::uint64_t hhr_operations = 0;
  std::uint64_t hhr_chunk_reloads = 0;  ///< Fig. 10(b) "HHR Cost"
  std::uint64_t shm_merged_hashes = 0;

  /// Graceful degradation: reads that failed CRC verification and were
  /// treated as non-duplicate (hook/manifest lookups, HHR chunk reloads)
  /// instead of aborting the ingest. Data is still stored correctly —
  /// only the dedup ratio suffers. Always zero on a healthy store.
  std::uint64_t corruption_fallbacks = 0;

  /// Duplicates declined by the rewrite controller and stored fresh for
  /// restore locality (always zero with --rewrite=none).
  std::uint64_t rewritten_chunks = 0;
  std::uint64_t rewritten_bytes = 0;

  double cpu_seconds = 0;

  double dad() const {
    return dup_slices == 0
               ? 0.0
               : static_cast<double>(dup_bytes) / static_cast<double>(dup_slices);
  }
};

class DedupEngine {
 public:
  DedupEngine(ObjectStore& store, const EngineConfig& config)
      : store_(store), cfg_(config) {
    set_sha1_impl(config.hash_impl);
    if (cfg_.rewrite != RewriteMode::kNone) {
      RewriteConfig rc;
      rc.mode = cfg_.rewrite;
      rc.segment_bytes = cfg_.cbr_segment_bytes;
      rc.cap = cfg_.cbr_cap;
      rc.har_utilization = cfg_.har_utilization;
      rewrite_ = std::make_unique<RewriteController>(
          rc, dynamic_cast<const ContainerBackend*>(&store.backend()));
    }
  }
  virtual ~DedupEngine() = default;

  virtual std::string name() const = 0;

  /// Deduplicates one file of the backup stream (CPU time is accumulated
  /// into counters().cpu_seconds).
  void add_file(const std::string& file_name, ByteSource& data);

  /// Flushes buffered state: dirty manifests, open chunk writers, indexes.
  /// Must be called once after the last add_file.
  virtual void finish() = 0;

  /// Session flush boundary for long-lived engines (the daemon's warm
  /// per-tenant sessions): makes every byte of this session durable and
  /// brings the engine into a state where continuing with the SAME engine
  /// object is bit-identical — on disk and in dedup decisions — to
  /// destroying it and constructing a fresh engine over the same store.
  /// Returns true when the engine may be reused after the flush; false
  /// means the caller must discard it (the engine carries cross-session
  /// state a fresh engine would not reconstruct, e.g. a rewrite
  /// controller's segment history). The default is the conservative
  /// finish()-and-discard.
  virtual bool flush_session() {
    finish();
    return false;
  }

  /// Restores a previously added file byte-exactly from the store.
  /// Reads bypass access accounting (restore is not deduplication work).
  std::optional<ByteVec> reconstruct(const std::string& file_name) const;

  /// Closes a snapshot generation for the rewrite controller (HAR folds
  /// this generation's container utilization into its sparse set). The
  /// simulation runner calls this at every corpus snapshot boundary,
  /// including before finish(). No-op without --rewrite.
  void end_snapshot() {
    if (rewrite_) rewrite_->end_snapshot();
  }

  /// The engine's rewrite controller, nullptr with --rewrite=none.
  const RewriteController* rewrite_controller() const {
    return rewrite_.get();
  }

  const EngineCounters& counters() const { return counters_; }
  const EngineConfig& config() const { return cfg_; }

  /// Per-stage ingest-pipeline counters aggregated over all add_file
  /// calls. Empty when the engine ran serially (ingest_threads == 0).
  const PipelineStats& pipeline_stats() const { return pipeline_stats_; }

  /// Manifests loaded from disk into the cache (the paper's TABLE V).
  virtual std::uint64_t manifest_loads() const { return 0; }

  /// Bytes of auxiliary in-RAM index structures beyond the manifest cache
  /// (the fingerprint index's RAM high-water; SparseIndexing's sparse
  /// index; the paper's TABLE III).
  virtual std::uint64_t index_ram_bytes() const {
    return fp_index_ ? fp_index_->ram_high_water() : 0;
  }

  /// The engine's fingerprint index, if it routes through one (nullptr
  /// for engines with private similarity indexes, e.g. SparseIndexing).
  const FingerprintIndex* fingerprint_index() const { return fp_index_.get(); }
  /// Resolved index implementation name for reports
  /// ("mem" | "disk" | "sampled").
  const char* index_impl_name() const {
    if (fp_index_) return fp_index_->impl_name();
    switch (cfg_.index_impl) {
      case IndexImpl::kDisk: return "disk";
      case IndexImpl::kSampled: return "sampled";
      case IndexImpl::kMem: break;
    }
    return "mem";
  }
  ObjectStore& store() { return store_; }
  const ObjectStore& store() const { return store_; }

  /// Name digest used for a file's DiskChunk / Manifest / FileManifest.
  static Digest file_digest(const std::string& file_name) {
    return Sha1::hash(as_bytes(file_name));
  }

  /// Rebuilds a bloom filter from the hooks already persisted in the
  /// backend, so an engine opened on an existing repository (e.g. the
  /// dedup_cli resuming a backup store) still detects duplicates. Hook
  /// file names are the hex of the hook's chunk hash.
  static void seed_bloom_from_hooks(BloomFilter& bloom,
                                    const StorageBackend& backend);

 protected:
  virtual void process_file(const std::string& file_name, ByteSource& data) = 0;

  /// Opens the top-level ingest stream over `data` with a chunker of the
  /// engine's configured kind at `expected_chunk_bytes`: serial when
  /// cfg_.ingest_threads == 0, the staged concurrent pipeline otherwise.
  /// Chunk boundaries, hashes and delivery order are identical either way,
  /// so engines use this without caring which path runs underneath.
  std::unique_ptr<HashedChunkStream> open_ingest(
      ByteSource& data, std::uint64_t expected_chunk_bytes);

  /// Lazily creates the configured FingerprintIndex (MemIndex or
  /// PersistentIndex over the store's backend). Callable from derived
  /// constructors' member-init lists so the index can be handed to a
  /// ManifestCache. Whether an on-disk index already existed (a reopen)
  /// is captured at creation for restore_warm_state().
  FingerprintIndex& fp_index();

  /// Warm restart: when the disk index was reopened, reload the manifest
  /// cache's previous residency (saved by persist_index_state) so the
  /// reopened engine resumes with the exact working set it closed with.
  /// No-op for MemIndex or a freshly created disk index.
  void restore_warm_state(ManifestCache& cache);

  /// End-of-run persistence: saves the cache residency list into the disk
  /// index and flushes it (journal tail, bloom snapshot, meta). Call from
  /// finish() after the cache flush. No-op for MemIndex.
  void persist_index_state(ManifestCache& cache);

  /// True when this engine routes through the sampled similarity tier —
  /// anchor lookups must then use similarity_anchor() instead of the
  /// exact bloom + get_hook fallback (which assumes every stored
  /// fingerprint is findable; the sampled tier deliberately forgets).
  bool sampled_mode() const { return cfg_.index_impl == IndexImpl::kSampled; }

  /// Sampled-tier anchor path: when `hash` is a sampled hook, loads its
  /// champion manifests (up to cfg_.max_champions, skipping already-cached
  /// ones) into `cache`. Returns true when at least one new champion was
  /// loaded — the caller then retries its cache lookup. When nothing
  /// loads, the chunk is stored fresh; if it actually was a duplicate the
  /// loss meter counts it (sampled_missed_dup_bytes), never hides it.
  bool load_champions(ManifestCache& cache, const Digest& hash);

  /// Returns `base`, salted until no DiskChunk/Manifest with that name
  /// exists. DiskChunks are immutable and may be referenced by other
  /// files' manifests, so re-ingesting a file name (or a colliding
  /// container id) must never append to an existing object.
  Digest unique_store_digest(const Digest& base) const;

  /// Returns a consumed chunk buffer's storage to the process-wide pool
  /// (see util/buffer_pool.h). Engines call this wherever a chunk's bytes
  /// leave the pending window for good — after the store write, a
  /// duplicate drop, or match extension consuming the buffer — closing the
  /// acquire/release cycle that makes steady-state ingest allocation-free.
  static void recycle_chunk(ByteVec&& bytes);

  /// Graceful degradation: runs a dedup-index lookup (hook/manifest read)
  /// and maps CorruptObjectError to the lookup's "not found" value — the
  /// region is simply treated as non-duplicate and stored fresh, which is
  /// always correct, and the event is counted as a corruption_fallback.
  /// Restore paths must NOT use this: there, corruption is a hard error.
  template <typename Fn>
  auto degrade_on_corruption(Fn&& fn) -> decltype(fn()) {
    try {
      return fn();
    } catch (const CorruptObjectError&) {
      ++counters_.corruption_fallbacks;
      return decltype(fn()){};
    }
  }

  /// Tracks the L counter: call per chunk decision in stream order.
  void note_duplicate(std::uint64_t bytes) {
    if (!in_dup_run_) {
      ++counters_.dup_slices;
      in_dup_run_ = true;
    }
    ++counters_.dup_chunks;
    counters_.dup_bytes += bytes;
  }
  /// `bytes` advances the rewrite controller's segment position (CBR
  /// segments are measured over the whole stream, not just duplicates).
  void note_unique(std::uint64_t bytes = 0) {
    in_dup_run_ = false;
    if (rewrite_ && bytes > 0) rewrite_->on_stream_bytes(bytes);
  }
  void end_dup_run() { in_dup_run_ = false; }

  /// The rewrite decision for one detected duplicate: true admits the
  /// in-place reference, false directs the engine to store the bytes
  /// fresh (counted as a rewritten chunk). Engines call this at every
  /// duplicate-decision site before emitting the reference.
  bool admit_duplicate(const Digest& chunk_name, std::uint64_t offset,
                       std::uint64_t size) {
    if (!rewrite_) return true;
    if (rewrite_->admit(chunk_name, offset, size)) return true;
    ++counters_.rewritten_chunks;
    counters_.rewritten_bytes += size;
    return false;
  }

  /// Segment-position advance for bulk paths that consume stream bytes
  /// without per-chunk decisions (MHD's match extension).
  void advance_rewrite_stream(std::uint64_t bytes) {
    if (rewrite_ && bytes > 0) rewrite_->on_stream_bytes(bytes);
  }

  ObjectStore& store_;
  EngineConfig cfg_;
  EngineCounters counters_;

 private:
  bool in_dup_run_ = false;
  PipelineStats pipeline_stats_;
  std::unique_ptr<FingerprintIndex> fp_index_;
  std::unique_ptr<RewriteController> rewrite_;
  bool index_was_present_ = false;  ///< disk index existed before open
};

}  // namespace mhd
