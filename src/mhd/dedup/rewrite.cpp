#include "mhd/dedup/rewrite.h"

namespace mhd {

const char* rewrite_mode_name(RewriteMode mode) {
  switch (mode) {
    case RewriteMode::kNone: return "none";
    case RewriteMode::kCbr: return "cbr";
    case RewriteMode::kHar: return "har";
  }
  return "?";
}

std::optional<RewriteMode> parse_rewrite_mode(const std::string& name) {
  if (name == "none") return RewriteMode::kNone;
  if (name == "cbr" || name == "capping") return RewriteMode::kCbr;
  if (name == "har") return RewriteMode::kHar;
  return std::nullopt;
}

RewriteController::RewriteController(const RewriteConfig& config,
                                     const ContainerBackend* containers)
    : cfg_(config), containers_(containers) {
  if (cfg_.segment_bytes == 0) cfg_.segment_bytes = 4ull << 20;
}

void RewriteController::begin_file() {
  // Segments never span files: a restore is per file, so the per-segment
  // container bound must hold within each file on its own.
  if (!segment_containers_.empty() || segment_pos_ > 0) ++stats_.segments;
  segment_pos_ = 0;
  segment_containers_.clear();
}

void RewriteController::advance_segment(std::uint64_t bytes) {
  segment_pos_ += bytes;
  while (segment_pos_ >= cfg_.segment_bytes) {
    segment_pos_ -= cfg_.segment_bytes;
    segment_containers_.clear();
    ++stats_.segments;
  }
}

void RewriteController::on_stream_bytes(std::uint64_t bytes) {
  if (cfg_.mode == RewriteMode::kCbr) advance_segment(bytes);
}

bool RewriteController::admit(const Digest& chunk_name, std::uint64_t offset,
                              std::uint64_t size) {
  ++stats_.duplicates_seen;
  const auto admitted = [&] {
    ++stats_.admitted;
    if (cfg_.mode == RewriteMode::kCbr) advance_segment(size);
    return true;
  };
  const auto rewritten = [&] {
    ++stats_.rewritten_chunks;
    stats_.rewritten_bytes += size;
    // The fresh copy advances the stream like any unique chunk.
    if (cfg_.mode == RewriteMode::kCbr) advance_segment(size);
    return false;
  };

  if (cfg_.mode == RewriteMode::kNone || containers_ == nullptr) {
    return admitted();
  }
  const auto container = containers_->locate(chunk_name.hex(), offset);
  if (!container) return admitted();  // unknown placement: nothing to judge
  if (*container == containers_->open_container()) {
    return admitted();  // the write head is this stream's own locality
  }

  if (cfg_.mode == RewriteMode::kHar) {
    if (sparse_.count(*container) > 0) return rewritten();
    generation_refs_[*container] += size;
    return admitted();
  }

  // CBR capping.
  if (segment_containers_.count(*container) > 0) return admitted();
  if (segment_containers_.size() <
      static_cast<std::size_t>(cfg_.cap)) {
    segment_containers_.insert(*container);
    return admitted();
  }
  return rewritten();
}

void RewriteController::end_snapshot() {
  if (cfg_.mode != RewriteMode::kHar || containers_ == nullptr) {
    generation_refs_.clear();
    return;
  }
  for (const auto& [container, referenced] : generation_refs_) {
    const std::uint64_t payload = containers_->container_data_bytes(container);
    if (payload == 0) continue;
    const double utilization =
        static_cast<double>(referenced) / static_cast<double>(payload);
    if (utilization < cfg_.har_utilization) sparse_.insert(container);
  }
  generation_refs_.clear();
  stats_.sparse_containers = sparse_.size();
}

}  // namespace mhd
