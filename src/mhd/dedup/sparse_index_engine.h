// Sparse Indexing (Lillibridge et al., FAST'09), as configured in the
// paper's Section V: segment size ECS*SD*5, at most 10 champions per
// segment, each sampled hook maps to at most 5 manifests, hooks sampled at
// rate 1/SD by hash value.
//
// The incoming stream is cut into ECS chunks and grouped into segments.
// For each segment, its sampled hooks vote for previously seen segment
// manifests through the in-RAM sparse index; the top-voted "champions" are
// loaded and the segment's chunks are deduplicated against them. The
// segment manifest records *every* chunk of the segment (duplicates too,
// so popular hashes are stored many times — the metadata growth the paper
// criticises), and the sparse index entry of each hook is updated.
// index_ram_bytes() reports the sparse index footprint (paper TABLE III).
#pragma once

#include <unordered_map>

#include "mhd/container/lru_cache.h"
#include "mhd/dedup/engine.h"
#include "mhd/format/file_manifest.h"

namespace mhd {

class SparseIndexEngine final : public DedupEngine {
 public:
  SparseIndexEngine(ObjectStore& store, const EngineConfig& config);

  std::string name() const override { return "SparseIndexing"; }
  void finish() override;

  std::uint64_t manifest_loads() const override { return loads_; }
  std::uint64_t index_ram_bytes() const override;

 protected:
  void process_file(const std::string& file_name, ByteSource& data) override;

 private:
  struct SegChunk {
    ByteVec bytes;
    Digest hash;
  };
  struct ChunkRef {
    Digest container;
    std::uint64_t offset = 0;
    std::uint32_t size = 0;
  };
  /// A segment manifest: every chunk of the segment with its location.
  struct SegManifest {
    std::vector<Digest> containers;  ///< shared container table
    struct Entry {
      Digest hash;
      std::uint32_t container_index = 0;
      std::uint64_t offset = 0;
      std::uint32_t size = 0;
    };
    std::vector<Entry> entries;
    std::uint64_t weight = 0;  ///< serialized size snapshot for the cache
    ByteVec serialize() const;
    static std::optional<SegManifest> deserialize(ByteSpan data);
    std::uint64_t serialized_size() const {
      return 8 + containers.size() * 20 + entries.size() * 36;
    }
  };

  bool is_hook(const Digest& hash) const {
    return hash.prefix64() % cfg_.sd == 0;
  }
  void dedup_segment(std::vector<SegChunk>& segment, const Digest& file_dig,
                     std::uint64_t segment_seq, FileManifest& fm,
                     bool& stored_anything);

  /// hook prefix -> most recent manifests containing it (<= max 5).
  std::unordered_map<std::uint64_t, std::vector<Digest>> sparse_index_;
  LruCache<Digest, SegManifest, DigestHasher> cache_;
  std::uint64_t loads_ = 0;
};

}  // namespace mhd
