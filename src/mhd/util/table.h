// Plain-text table rendering for benchmark harness output.
//
// The bench binaries print paper-style tables (rows = algorithms or ECS
// values, columns = metrics); TextTable right-aligns numeric columns and
// keeps the output grep/CSV friendly via to_csv().
#pragma once

#include <string>
#include <vector>

namespace mhd {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; missing cells render empty, extra cells are kept.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);
  static std::string num(std::uint64_t v);

  /// Render with aligned columns and a separator under the header.
  std::string to_string() const;

  /// Render as comma-separated values (header first).
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mhd
