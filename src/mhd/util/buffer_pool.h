// Recycled chunk-buffer slabs for the ingest hot path.
//
// Every chunk that flows through ChunkStream / IngestPipeline lives in a
// ByteVec. Without pooling, steady-state ingest performs one allocation
// (and eventually one free) per chunk — pure overhead that also serializes
// hash workers on the allocator lock. The pool keeps returned slabs (with
// their capacity intact) on a free list, so after warm-up every acquire is
// a pop and chunk append runs entirely inside recycled capacity: zero heap
// allocations per chunk.
//
// Ownership protocol (see DESIGN.md "Chunk buffer pool"):
//  * the producer that fills a buffer acquires it (ChunkStream::next for
//    serial ingest, the pipeline's read stage for I/O blocks);
//  * whoever consumes the bytes releases the slab — moving a ByteVec moves
//    the obligation with it. Releasing a buffer the pool never saw is fine
//    (the pool adopts it); dropping a pooled buffer on the floor is also
//    fine (plain vector destruction), just a lost recycling opportunity.
//
// The free list is bounded two ways: slabs above kMaxSlabBytes are dropped
// on release (pathological chunk sizes must not pin memory), and a
// periodic high-water trim shrinks the list toward the observed peak of
// concurrently outstanding buffers, so a burst (deep reorder buffer, wide
// hash pool) doesn't leave its footprint behind forever.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "mhd/util/bytes.h"

namespace mhd {

/// Thread-safe free list of ByteVec slabs. All methods may be called
/// concurrently from pipeline stages.
class BufferPool {
 public:
  /// Slabs larger than this are freed on release instead of pooled.
  static constexpr std::size_t kMaxSlabBytes = 8u << 20;
  /// Releases between high-water trims.
  static constexpr std::uint64_t kTrimInterval = 4096;
  /// Free slabs kept beyond the outstanding high-water mark when trimming.
  static constexpr std::size_t kTrimSlack = 4;

  /// Counters for tests and bench metadata. Monotonic except free_count /
  /// outstanding, which are instantaneous.
  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t reuses = 0;   ///< acquires served from the free list
    std::uint64_t releases = 0;
    std::uint64_t dropped_oversize = 0;
    std::uint64_t dropped_trim = 0;
    std::size_t free_count = 0;
    std::size_t outstanding = 0;  ///< acquired minus released, saturating
    std::size_t outstanding_high_water = 0;
  };

  /// Returns an empty buffer, recycled (capacity intact) when available.
  ByteVec acquire();

  /// Takes `buf`'s storage back. The buffer is cleared but keeps its
  /// capacity; oversize slabs are freed instead.
  void release(ByteVec&& buf);

  /// Drops every pooled slab and resets the high-water mark (not the
  /// monotonic counters).
  void trim();

  Stats stats() const;

 private:
  void trim_locked();

  mutable std::mutex mu_;
  std::vector<ByteVec> free_;
  Stats stats_;
};

/// The process-wide pool the ingest path uses. Separate pools are only
/// worth it when tests need isolated counters.
BufferPool& chunk_buffer_pool();

}  // namespace mhd
