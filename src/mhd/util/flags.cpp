#include "mhd/util/flags.h"

#include <cstdlib>
#include <stdexcept>

namespace mhd {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    const std::string key =
        eq == std::string::npos ? body : body.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "true" : body.substr(eq + 1);
    if (!values_.emplace(key, value).second) {
      throw std::invalid_argument("duplicate flag: --" + key);
    }
  }
}

std::string Flags::get(const std::string& key, const std::string& def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 0);
}

double Flags::get_double(const std::string& key, double def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::uint64_t Flags::get_uint(const std::string& key, std::uint64_t def,
                              std::uint64_t min_value,
                              std::uint64_t max_value) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  const std::string& s = it->second;
  std::uint64_t value = 0;
  bool ok = !s.empty();
  for (const char c : s) {
    if (c < '0' || c > '9') {
      ok = false;
      break;
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {  // overflow
      ok = false;
      break;
    }
    value = value * 10 + digit;
  }
  if (!ok) {
    throw std::invalid_argument("--" + key + "=" + s +
                                " (expected a non-negative integer)");
  }
  if (value < min_value || value > max_value) {
    throw std::invalid_argument(
        "--" + key + "=" + s + " (allowed range: " +
        std::to_string(min_value) + ".." + std::to_string(max_value) + ")");
  }
  return value;
}

std::uint64_t Flags::get_size(const std::string& key, std::uint64_t def,
                              std::uint64_t min_value,
                              std::uint64_t max_value,
                              std::uint64_t unit) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  std::string digits = it->second;
  std::uint64_t multiplier = unit == 0 ? 1 : unit;
  if (!digits.empty()) {
    switch (digits.back()) {
      case 'k': case 'K': multiplier = 1ull << 10; digits.pop_back(); break;
      case 'm': case 'M': multiplier = 1ull << 20; digits.pop_back(); break;
      case 'g': case 'G': multiplier = 1ull << 30; digits.pop_back(); break;
      default: break;
    }
  }
  std::uint64_t value = 0;
  bool ok = !digits.empty();
  for (const char c : digits) {
    if (c < '0' || c > '9') {
      ok = false;
      break;
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {  // overflow
      ok = false;
      break;
    }
    value = value * 10 + digit;
  }
  if (ok && value != 0 && multiplier > UINT64_MAX / value) ok = false;
  if (!ok) {
    throw std::invalid_argument(
        "--" + key + "=" + it->second +
        " (expected a non-negative size, optionally suffixed K/M/G)");
  }
  value *= multiplier;
  if (value < min_value || value > max_value) {
    throw std::invalid_argument(
        "--" + key + "=" + it->second + " (allowed range: " +
        std::to_string(min_value) + ".." + std::to_string(max_value) +
        " bytes)");
  }
  return value;
}

std::string Flags::get_choice(const std::string& key,
                              const std::vector<std::string>& allowed,
                              const std::string& def) const {
  const auto it = values_.find(key);
  const std::string value = it == values_.end() ? def : it->second;
  for (const auto& a : allowed) {
    if (value == a) return value;
  }
  std::string msg = "--" + key + "=" + value + " (allowed:";
  for (const auto& a : allowed) msg += " " + a;
  msg += ")";
  throw std::invalid_argument(msg);
}

std::vector<std::int64_t> Flags::get_int_list(
    const std::string& key, std::vector<std::int64_t> def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  std::vector<std::int64_t> out;
  const std::string& s = it->second;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const auto comma = s.find(',', pos);
    const std::string tok =
        s.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!tok.empty()) out.push_back(std::strtoll(tok.c_str(), nullptr, 0));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace mhd
