#include "mhd/util/table.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace mhd {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::num(std::uint64_t v) { return std::to_string(v); }

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c >= width.size()) width.resize(c + 1, 0);
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      out << (c == 0 ? "" : "  ");
      // Left-align first column (labels), right-align the rest (numbers).
      if (c == 0) {
        out << cell << std::string(width[c] - cell.size(), ' ');
      } else {
        out << std::string(width[c] - cell.size(), ' ') << cell;
      }
    }
    out << '\n';
  };

  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : ",") << row[c];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace mhd
