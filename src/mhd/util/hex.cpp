#include "mhd/util/hex.h"

namespace mhd {

namespace {
constexpr char kDigits[] = "0123456789abcdef";

int digit_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string hex_encode(ByteSpan data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (Byte b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

std::optional<ByteVec> hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  ByteVec out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = digit_value(hex[i]);
    const int lo = digit_value(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<Byte>((hi << 4) | lo));
  }
  return out;
}

}  // namespace mhd
