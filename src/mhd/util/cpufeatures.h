// Runtime CPU feature detection for SIMD kernel dispatch.
//
// The chunking hot loop ships several kernels (AVX2, SSE2, portable
// unrolled scalar) compiled into the same binary; at runtime the best one
// the CPU supports is selected once and cached. Intrinsics above the
// baseline ISA are compiled with per-function target attributes, so the
// binary itself stays runnable on any x86-64 (and any non-x86 target,
// where detection reports kNone and the portable kernel is used).
#pragma once

namespace mhd {

struct CpuFeatures {
  bool sse2 = false;
  bool ssse3 = false;
  bool sse41 = false;
  bool sse42 = false;  ///< hardware CRC32C (the crc32 instruction family)
  bool avx2 = false;    ///< implies OS support for YMM state (XGETBV checked)
  bool sha_ni = false;  ///< SHA New Instructions (CPUID leaf 7 EBX bit 29)
};

/// Detects and caches the host CPU's features (thread-safe, detection runs
/// once).
const CpuFeatures& cpu_features();

/// SIMD kernel tiers, best-first dispatch order: kAvx2 > kSse2 > kNone.
enum class SimdLevel : int {
  kNone = 0,  ///< portable unrolled-scalar kernel only
  kSse2,
  kAvx2,
};

/// The best SIMD level the host supports.
SimdLevel best_simd_level();

/// "none" | "sse2" | "avx2".
const char* simd_level_name(SimdLevel level);

}  // namespace mhd
