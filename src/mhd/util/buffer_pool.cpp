#include "mhd/util/buffer_pool.h"

#include <utility>

namespace mhd {

ByteVec BufferPool::acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.acquires;
  ++stats_.outstanding;
  if (stats_.outstanding > stats_.outstanding_high_water) {
    stats_.outstanding_high_water = stats_.outstanding;
  }
  if (free_.empty()) return ByteVec{};
  ++stats_.reuses;
  ByteVec buf = std::move(free_.back());
  free_.pop_back();
  stats_.free_count = free_.size();
  return buf;
}

void BufferPool::release(ByteVec&& buf) {
  ByteVec local = std::move(buf);
  local.clear();
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.releases;
  if (stats_.outstanding > 0) --stats_.outstanding;
  if (local.capacity() == 0) return;  // nothing worth pooling
  if (local.capacity() > kMaxSlabBytes) {
    ++stats_.dropped_oversize;
    return;  // freed by local's destructor, after the lock is released
  }
  free_.push_back(std::move(local));
  stats_.free_count = free_.size();
  if (stats_.releases % kTrimInterval == 0) trim_locked();
}

void BufferPool::trim() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.dropped_trim += free_.size();
  free_.clear();
  free_.shrink_to_fit();
  stats_.free_count = 0;
  stats_.outstanding_high_water = stats_.outstanding;
}

void BufferPool::trim_locked() {
  // Keep enough slabs to refill every concurrently outstanding buffer at
  // the observed peak, plus slack; beyond that the burst is over and the
  // memory should go back. The high-water then decays to the current
  // outstanding count so the next interval measures afresh.
  const std::size_t keep = stats_.outstanding_high_water + kTrimSlack;
  if (free_.size() > keep) {
    stats_.dropped_trim += free_.size() - keep;
    free_.resize(keep);
    stats_.free_count = free_.size();
  }
  stats_.outstanding_high_water = stats_.outstanding;
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

BufferPool& chunk_buffer_pool() {
  static BufferPool pool;
  return pool;
}

}  // namespace mhd
