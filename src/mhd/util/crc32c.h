// CRC32C (Castagnoli) kernel family — the integrity checksum behind the
// self-verifying object framing (store/framing.h).
//
// Every object written through the durability layer carries a CRC32C over
// its payload, and every read re-verifies it, so the checksum sits on the
// ingest and restore hot paths next to SHA-1. Two kernels share one
// contract and are bit-identical on every input (enforced by
// tests/util/crc32c_test.cpp):
//
//  * portable — slice-by-8 table lookup; runs anywhere.
//  * sse42    — the x86 crc32 instruction (8 bytes per issue), compiled
//    with a per-function target attribute so the binary stays runnable on
//    any x86-64; availability is a runtime CPUID question
//    (util/cpufeatures), never a compile-time one.
//
// The API follows zlib's chaining convention: `crc` is the running value,
// 0 for a fresh stream, and crc32c(crc32c(0, a), b) == crc32c(0, a ++ b).
// The final/initial bit inversions happen inside each call.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "mhd/util/bytes.h"

namespace mhd {

/// Extends `crc` (0 = fresh stream) over `len` bytes.
using Crc32cFn = std::uint32_t (*)(std::uint32_t crc, const Byte* data,
                                   std::size_t len);

std::uint32_t crc32c_portable(std::uint32_t crc, const Byte* data,
                              std::size_t len);

/// One compiled-in kernel. Calling `fn` with supported == false raises
/// SIGILL, so every iteration over the registry must gate on it.
struct Crc32cKernelInfo {
  const char* name;  ///< "portable" | "sse42"
  Crc32cFn fn;
  bool supported;
};

/// Every kernel compiled into this binary, portable first.
std::span<const Crc32cKernelInfo> crc32c_kernels();

/// Best-supported kernel, resolved once at first use.
std::uint32_t crc32c(std::uint32_t crc, ByteSpan data);

/// Name of the kernel crc32c() dispatches to ("portable" | "sse42").
const char* crc32c_impl_name();

}  // namespace mhd
