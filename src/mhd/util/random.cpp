#include "mhd/util/random.h"

namespace mhd {

std::uint64_t Xoshiro256::below(std::uint64_t bound) {
  // Lemire's nearly-divisionless bounded generation; bias is rejected.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    const unsigned __int128 m =
        static_cast<unsigned __int128>(r) * static_cast<unsigned __int128>(bound);
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

double Xoshiro256::uniform01() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Xoshiro256::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

}  // namespace mhd
