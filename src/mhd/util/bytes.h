// Common byte-oriented aliases and small helpers used across all subsystems.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mhd {

using Byte = std::uint8_t;
/// Non-owning read-only view of raw bytes.
using ByteSpan = std::span<const Byte>;
/// Non-owning mutable view of raw bytes.
using MutByteSpan = std::span<Byte>;
/// Owning byte buffer.
using ByteVec = std::vector<Byte>;

/// View a string's contents as bytes (no copy).
inline ByteSpan as_bytes(std::string_view s) {
  return {reinterpret_cast<const Byte*>(s.data()), s.size()};
}

/// Copy a byte span into an owning buffer.
inline ByteVec to_vec(ByteSpan s) { return ByteVec(s.begin(), s.end()); }

/// Append `src` to `dst`.
inline void append(ByteVec& dst, ByteSpan src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Constant-free equality over spans (memcmp semantics).
inline bool equal(ByteSpan a, ByteSpan b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

/// Load/store little-endian integers; used by serialization code.
template <typename T>
inline T load_le(const Byte* p) {
  T v{};
  std::memcpy(&v, p, sizeof(T));
  return v;  // host is little-endian on all supported targets
}

template <typename T>
inline void store_le(Byte* p, T v) {
  std::memcpy(p, &v, sizeof(T));
}

template <typename T>
inline void append_le(ByteVec& dst, T v) {
  const auto old = dst.size();
  dst.resize(old + sizeof(T));
  store_le(dst.data() + old, v);
}

}  // namespace mhd
