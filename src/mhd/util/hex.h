// Hex encoding/decoding for hash-addressable object names.
#pragma once

#include <optional>
#include <string>

#include "mhd/util/bytes.h"

namespace mhd {

/// Lower-case hex encoding of `data` (2 chars per byte).
std::string hex_encode(ByteSpan data);

/// Decode a hex string; returns std::nullopt on odd length or bad digit.
std::optional<ByteVec> hex_decode(std::string_view hex);

}  // namespace mhd
