// Minimal --key=value command-line flag parsing for bench/example binaries.
//
// Every table/figure harness accepts overrides such as --size_mb=64 or
// --sd=500 so the paper sweeps can be rescaled without recompiling.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mhd {

class Flags {
 public:
  /// Parses argv entries of the form --key=value or --key (value "true").
  /// Non-flag arguments are collected into positional(). Defining the same
  /// flag twice (e.g. "--ecs=512 --ecs=1024") throws std::invalid_argument:
  /// silently keeping one of the two has burned enough benchmark runs.
  Flags(int argc, char** argv);

  std::string get(const std::string& key, const std::string& def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// Unsigned integer flag with range validation: returns `def` when
  /// absent; throws std::invalid_argument when the value is not a plain
  /// non-negative integer (rejecting "-1", "4x", "") or falls outside
  /// [min_value, max_value]. The go-to helper for thread/size knobs where
  /// a silently-truncated negative would mean "4 billion workers".
  std::uint64_t get_uint(const std::string& key, std::uint64_t def,
                         std::uint64_t min_value = 0,
                         std::uint64_t max_value = UINT64_MAX) const;

  /// Byte-size flag accepting K/M/G suffixes (powers of 1024): "--x=4M",
  /// "--x=128K", "--x=1G". A plain number is multiplied by `unit` (1 for
  /// flags taking bytes; 1<<20 for flags whose bare number means MB, like
  /// --index-cache-mb). Returns `def` (already in bytes) when absent;
  /// throws std::invalid_argument — get_uint conventions — on malformed
  /// values, overflow, or a scaled result outside [min_value, max_value].
  std::uint64_t get_size(const std::string& key, std::uint64_t def,
                         std::uint64_t min_value = 0,
                         std::uint64_t max_value = UINT64_MAX,
                         std::uint64_t unit = 1) const;

  /// Value of an enumerated flag, e.g. --chunker-impl={auto,scalar,simd}:
  /// returns `def` when absent, and throws std::invalid_argument naming the
  /// allowed values when the given value is not one of `allowed`.
  std::string get_choice(const std::string& key,
                         const std::vector<std::string>& allowed,
                         const std::string& def) const;

  /// Comma-separated integer list, e.g. --ecs=512,1024,2048.
  std::vector<std::int64_t> get_int_list(const std::string& key,
                                         std::vector<std::int64_t> def) const;

  bool has(const std::string& key) const { return values_.count(key) > 0; }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace mhd
