// Deterministic PRNGs used by the workload generator and tests.
//
// SplitMix64 is used for seeding and for counter-mode byte generation (any
// 8-byte window of synthetic content can be regenerated from (block id,
// offset) without materializing the stream). Xoshiro256** is the general
// purpose generator; both are tiny, fast and fully reproducible.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace mhd {

/// SplitMix64 step: maps any 64-bit value to a well-mixed 64-bit value.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97f4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// xoshiro256** — satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853C49E6748FEA9BULL) {
    std::uint64_t s = seed;
    for (auto& word : state_) {
      s = splitmix64(s);
      word = s;
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform01();

  /// true with probability p (clamped to [0,1]).
  bool chance(double p);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mhd
