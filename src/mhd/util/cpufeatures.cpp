#include "mhd/util/cpufeatures.h"

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define MHD_X86 1
#endif

namespace mhd {

namespace {

#ifdef MHD_X86
// XGETBV via inline asm: the _xgetbv intrinsic needs -mxsave on some
// toolchains, and this file is compiled without ISA extensions so the
// detector itself runs anywhere.
std::uint64_t read_xcr0() {
  std::uint32_t lo = 0, hi = 0;
  __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

CpuFeatures detect_x86() {
  CpuFeatures f;
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return f;
  f.sse2 = (edx & (1u << 26)) != 0;
  f.ssse3 = (ecx & (1u << 9)) != 0;
  f.sse41 = (ecx & (1u << 19)) != 0;
  f.sse42 = (ecx & (1u << 20)) != 0;

  if (__get_cpuid_max(0, nullptr) >= 7) {
    unsigned eax7 = 0, ebx7 = 0, ecx7 = 0, edx7 = 0;
    __cpuid_count(7, 0, eax7, ebx7, ecx7, edx7);
    // SHA-NI operates on XMM state only, so no XGETBV gate beyond SSE.
    f.sha_ni = (ebx7 & (1u << 29)) != 0;

    // AVX2 needs the instruction set (leaf 7 EBX bit 5) *and* OS-enabled
    // YMM state: CPUID.1:ECX OSXSAVE + AVX bits, then XCR0 XMM|YMM.
    const bool osxsave = (ecx & (1u << 27)) != 0;
    const bool avx = (ecx & (1u << 28)) != 0;
    if (osxsave && avx) {
      const bool avx2_insn = (ebx7 & (1u << 5)) != 0;
      const std::uint64_t xcr0 = read_xcr0();
      f.avx2 = avx2_insn && (xcr0 & 0x6) == 0x6;
    }
  }
  return f;
}
#endif

CpuFeatures detect() {
#ifdef MHD_X86
  return detect_x86();
#else
  return CpuFeatures{};
#endif
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = detect();
  return features;
}

SimdLevel best_simd_level() {
  const CpuFeatures& f = cpu_features();
  if (f.avx2) return SimdLevel::kAvx2;
  if (f.sse2) return SimdLevel::kSse2;
  return SimdLevel::kNone;
}

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kNone: return "none";
    case SimdLevel::kSse2: return "sse2";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "?";
}

}  // namespace mhd
