#include "mhd/util/crc32c.h"

#include <array>

#include "mhd/util/cpufeatures.h"

#if defined(__x86_64__) && defined(__GNUC__)
#include <nmmintrin.h>
#define MHD_CRC32C_X86_KERNEL 1
#endif

namespace mhd {

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // CRC32C, reflected

/// Slice-by-8 lookup tables, built once at first use. Table 0 is the
/// classic byte-at-a-time table; tables 1..7 fold 8 input bytes per
/// iteration into a single combined update.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? (c >> 1) ^ kPoly : c >> 1;
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (std::size_t j = 1; j < 8; ++j) {
        c = t[0][c & 0xFF] ^ (c >> 8);
        t[j][i] = c;
      }
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint32_t crc32c_portable(std::uint32_t crc, const Byte* data,
                              std::size_t len) {
  const auto& t = tables().t;
  std::uint32_t c = ~crc;
  // Align to 8 bytes so the sliced loop reads whole words.
  while (len > 0 && (reinterpret_cast<std::uintptr_t>(data) & 7) != 0) {
    c = t[0][(c ^ *data++) & 0xFF] ^ (c >> 8);
    --len;
  }
  while (len >= 8) {
    std::uint64_t word;
    __builtin_memcpy(&word, data, 8);
    word ^= c;  // little-endian fold of the running CRC into the low half
    c = t[7][word & 0xFF] ^ t[6][(word >> 8) & 0xFF] ^
        t[5][(word >> 16) & 0xFF] ^ t[4][(word >> 24) & 0xFF] ^
        t[3][(word >> 32) & 0xFF] ^ t[2][(word >> 40) & 0xFF] ^
        t[1][(word >> 48) & 0xFF] ^ t[0][(word >> 56) & 0xFF];
    data += 8;
    len -= 8;
  }
  while (len-- > 0) c = t[0][(c ^ *data++) & 0xFF] ^ (c >> 8);
  return ~c;
}

#ifdef MHD_CRC32C_X86_KERNEL

__attribute__((target("sse4.2"))) std::uint32_t crc32c_sse42(
    std::uint32_t crc, const Byte* data, std::size_t len) {
  std::uint32_t c32 = ~crc;
  while (len > 0 && (reinterpret_cast<std::uintptr_t>(data) & 7) != 0) {
    c32 = _mm_crc32_u8(c32, *data++);
    --len;
  }
  std::uint64_t c = c32;
  // One crc32 instruction per 8 bytes. (A 3-way interleave + PCLMUL merge
  // would hide the 3-cycle latency chain; framing records are small enough
  // that the simple loop already removes CRC from the profile.)
  while (len >= 8) {
    std::uint64_t word;
    __builtin_memcpy(&word, data, 8);
    c = _mm_crc32_u64(c, word);
    data += 8;
    len -= 8;
  }
  c32 = static_cast<std::uint32_t>(c);
  while (len-- > 0) c32 = _mm_crc32_u8(c32, *data++);
  return ~c32;
}

#endif  // MHD_CRC32C_X86_KERNEL

std::span<const Crc32cKernelInfo> crc32c_kernels() {
  static const std::array<Crc32cKernelInfo,
#ifdef MHD_CRC32C_X86_KERNEL
                          2
#else
                          1
#endif
                          >
      kernels = {{
          {"portable", &crc32c_portable, true},
#ifdef MHD_CRC32C_X86_KERNEL
          {"sse42", &crc32c_sse42, cpu_features().sse42},
#endif
      }};
  return {kernels.data(), kernels.size()};
}

namespace {

const Crc32cKernelInfo& dispatch() {
  static const Crc32cKernelInfo& best = [] {
    const auto kernels = crc32c_kernels();
    for (auto it = kernels.rbegin(); it != kernels.rend(); ++it) {
      if (it->supported) return *it;
    }
    return kernels.front();
  }();
  return best;
}

}  // namespace

std::uint32_t crc32c(std::uint32_t crc, ByteSpan data) {
  return dispatch().fn(crc, data.data(), data.size());
}

const char* crc32c_impl_name() { return dispatch().name; }

}  // namespace mhd
