#include "mhd/index/mem_index.h"

#include <algorithm>

namespace mhd {

std::optional<IndexEntry> MemIndex::lookup(const Digest& fp) {
  const auto it = map_.find(fp);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

void MemIndex::put(const Digest& fp, const IndexEntry& entry) {
  map_.insert_or_assign(fp, entry);
  high_water_ = std::max(high_water_, ram_bytes());
}

bool MemIndex::erase(const Digest& fp) { return map_.erase(fp) > 0; }

bool MemIndex::maybe_contains(const Digest& fp) const {
  return map_.count(fp) > 0;
}

}  // namespace mhd
