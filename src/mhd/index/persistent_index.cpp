#include "mhd/index/persistent_index.h"

#include <algorithm>
#include <cstdlib>

#include "mhd/store/framing.h"
#include "mhd/store/store_errors.h"
#include "mhd/util/hex.h"

namespace mhd {

namespace {

constexpr std::uint32_t kMetaMagic = 0x314D494Du;   // "MIM1"
constexpr std::uint32_t kPageMagic = 0x3150494Du;   // "MIP1"
constexpr std::uint32_t kJournalMagic = 0x314A494Du;  // "MIJ1"
constexpr std::uint32_t kWarmMagic = 0x3157494Du;   // "MIW1"
// v1 records were 48 bytes (fp, manifest, offset); v2 appends the 8-byte
// container location. The index is advisory and rebuildable, so a v1
// repository simply fails the version check and starts fresh — a missed
// duplicate at worst, never a wrong restore.
constexpr std::uint32_t kFormatVersion = 2;

constexpr char kMetaName[] = "meta";
constexpr char kBloomName[] = "bloom";
constexpr char kWarmName[] = "warm";

/// Serialized record size in pages (fp + manifest + offset + container).
constexpr std::size_t kRecBytes = Digest::kSize * 2 + 16;
/// Journal records carry a leading op byte (1 = put, 0 = erase).
constexpr std::size_t kJournalRecBytes = 1 + kRecBytes;

/// Estimated resident bytes per delta entry (node + key/value + bucket).
constexpr std::uint64_t kDeltaEntryRamBytes = 96;

std::string shard_object_name(std::uint32_t shard, std::uint32_t gen) {
  return "shard-" + std::to_string(shard) + "-g" + std::to_string(gen);
}

std::string journal_object_name(std::uint64_t seq) {
  return "journal-" + std::to_string(seq);
}

void append_digest(ByteVec& out, const Digest& d) { append(out, d.span()); }

Digest read_digest(const Byte* p) {
  Digest d;
  std::copy(p, p + Digest::kSize, d.bytes.begin());
  return d;
}

void append_rec(ByteVec& out, const index_detail::Rec& rec) {
  append_digest(out, rec.fp);
  append_digest(out, rec.manifest);
  append_le(out, rec.offset);
  append_le(out, rec.container);
}

index_detail::Rec read_rec(const Byte* p) {
  index_detail::Rec rec;
  rec.fp = read_digest(p);
  rec.manifest = read_digest(p + Digest::kSize);
  rec.offset = load_le<std::uint64_t>(p + 2 * Digest::kSize);
  rec.container = load_le<std::uint64_t>(p + 2 * Digest::kSize + 8);
  return rec;
}

bool rec_less(const index_detail::Rec& a, const index_detail::Rec& b) {
  return a.fp < b.fp;
}

/// Reads and unseals one index object, tolerating *double* framing: the
/// index seals its own payloads, and under FramedBackend the physical
/// bytes carry a second outer frame. Peeling frames until the payload no
/// longer unseals makes the same reader work on the raw backend (fsck) and
/// on the logical view (engines, GC) alike. A bare payload can't unseal by
/// accident: its tail would have to be a valid MTR1 trailer with a
/// matching CRC.
std::optional<ByteVec> get_unsealed(const StorageBackend& backend,
                                    const std::string& name) {
  std::optional<ByteVec> framed;
  try {
    framed = backend.get(Ns::kIndex, name);
  } catch (const StoreError&) {
    return std::nullopt;
  }
  if (!framed) return std::nullopt;
  auto payload = framing::unseal_object(*framed);
  if (!payload) return std::nullopt;
  while (auto inner = framing::unseal_object(*payload)) payload = inner;
  return payload;
}

struct MetaView {
  std::uint32_t shards = 0;
  std::uint64_t page_count = 0;
  std::uint64_t first_seq = 0;
  std::uint64_t next_seq = 0;
  std::vector<std::uint32_t> gens;
};

ByteVec serialize_meta(const MetaView& m) {
  ByteVec out;
  append_le(out, kMetaMagic);
  append_le(out, kFormatVersion);
  append_le(out, m.shards);
  append_le(out, m.page_count);
  append_le(out, m.first_seq);
  append_le(out, m.next_seq);
  for (const std::uint32_t g : m.gens) append_le(out, g);
  return out;
}

std::optional<MetaView> parse_meta(ByteSpan payload) {
  constexpr std::size_t kFixed = 4 + 4 + 4 + 8 + 8 + 8;
  if (payload.size() < kFixed) return std::nullopt;
  if (load_le<std::uint32_t>(payload.data()) != kMetaMagic) return std::nullopt;
  if (load_le<std::uint32_t>(payload.data() + 4) != kFormatVersion) {
    return std::nullopt;
  }
  MetaView m;
  m.shards = load_le<std::uint32_t>(payload.data() + 8);
  m.page_count = load_le<std::uint64_t>(payload.data() + 12);
  m.first_seq = load_le<std::uint64_t>(payload.data() + 20);
  m.next_seq = load_le<std::uint64_t>(payload.data() + 28);
  if (m.shards == 0 || m.shards > 4096) return std::nullopt;
  if (payload.size() != kFixed + m.shards * 4ull) return std::nullopt;
  m.gens.resize(m.shards);
  for (std::uint32_t s = 0; s < m.shards; ++s) {
    m.gens[s] = load_le<std::uint32_t>(payload.data() + kFixed + s * 4ull);
  }
  return m;
}

std::optional<std::vector<index_detail::Rec>> parse_page(
    ByteSpan payload, std::uint32_t expected_shard) {
  constexpr std::size_t kHeader = 4 + 4 + 4 + 8;
  if (payload.size() < kHeader) return std::nullopt;
  if (load_le<std::uint32_t>(payload.data()) != kPageMagic) return std::nullopt;
  if (load_le<std::uint32_t>(payload.data() + 4) != kFormatVersion) {
    return std::nullopt;
  }
  if (load_le<std::uint32_t>(payload.data() + 8) != expected_shard) {
    return std::nullopt;
  }
  const auto count = load_le<std::uint64_t>(payload.data() + 12);
  if (payload.size() != kHeader + count * kRecBytes) return std::nullopt;
  std::vector<index_detail::Rec> recs;
  recs.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    recs.push_back(read_rec(payload.data() + kHeader + i * kRecBytes));
  }
  if (!std::is_sorted(recs.begin(), recs.end(), rec_less)) return std::nullopt;
  return recs;
}

ByteVec serialize_page(std::uint32_t shard,
                       const std::vector<index_detail::Rec>& recs) {
  ByteVec out;
  out.reserve(20 + recs.size() * kRecBytes);
  append_le(out, kPageMagic);
  append_le(out, kFormatVersion);
  append_le(out, shard);
  append_le(out, static_cast<std::uint64_t>(recs.size()));
  for (const auto& rec : recs) append_rec(out, rec);
  return out;
}

struct JournalRec {
  Byte op = Byte{0};
  index_detail::Rec rec;
};

std::optional<std::vector<JournalRec>> parse_journal(ByteSpan payload) {
  constexpr std::size_t kHeader = 4 + 4 + 4;
  if (payload.size() < kHeader) return std::nullopt;
  if (load_le<std::uint32_t>(payload.data()) != kJournalMagic) {
    return std::nullopt;
  }
  if (load_le<std::uint32_t>(payload.data() + 4) != kFormatVersion) {
    return std::nullopt;
  }
  const auto count = load_le<std::uint32_t>(payload.data() + 8);
  if (payload.size() != kHeader + count * static_cast<std::uint64_t>(
                                              kJournalRecBytes)) {
    return std::nullopt;
  }
  std::vector<JournalRec> recs;
  recs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const Byte* p = payload.data() + kHeader + i * kJournalRecBytes;
    JournalRec jr;
    jr.op = *p;
    jr.rec = read_rec(p + 1);
    recs.push_back(jr);
  }
  return recs;
}

int bloom_probes(std::uint32_t bits_per_key) {
  // k = ln2 * bits/key, the textbook optimum, at least one probe.
  return std::max(1, static_cast<int>(bits_per_key * 693 / 1000));
}

BloomFilter make_bloom(const PersistentIndexConfig& cfg) {
  const std::uint64_t bytes =
      std::max<std::uint64_t>(cfg.expected_keys * cfg.bloom_bits_per_key / 8,
                              1024);
  return BloomFilter(static_cast<std::size_t>(bytes),
                     bloom_probes(cfg.bloom_bits_per_key));
}

std::uint32_t normalize_shards(std::uint32_t shards) {
  shards = std::clamp<std::uint32_t>(shards, 1, 4096);
  std::uint32_t pow2 = 1;
  while (pow2 < shards) pow2 <<= 1;
  return pow2;
}

bool entry_equal(const IndexEntry& a, const IndexEntry& b) {
  return a.manifest == b.manifest && a.offset == b.offset &&
         a.container == b.container;
}

}  // namespace

PersistentIndex::PersistentIndex(StorageBackend& backend,
                                 PersistentIndexConfig config)
    : backend_(backend),
      cfg_([&config] {
        config.shards = normalize_shards(config.shards);
        config.journal_batch = std::max<std::uint32_t>(config.journal_batch, 1);
        config.compact_threshold =
            std::max<std::uint64_t>(config.compact_threshold, 1);
        return config;
      }()),
      bloom_(make_bloom(cfg_)),
      cache_(
          /*capacity=*/cfg_.shards,
          [this](const std::uint32_t& shard, Page& page) {
            // Pages are written synchronously during compaction, so a
            // dirty page reaching eviction means the shadow write was
            // interrupted; flushing it here keeps write-back semantics.
            if (page.dirty) write_page_at(shard, page.pending_gen, page);
          },
          cfg_.cache_bytes, [](const Page& page) { return page.weight(); }) {
  // The constructor is single-threaded by contract (nobody shares an index
  // that is still being opened); it uses the same locking helpers as
  // steady state, just without contention.
  const auto meta_payload = get_unsealed(backend_, kMetaName);
  const auto meta = meta_payload ? parse_meta(*meta_payload) : std::nullopt;
  if (meta) cfg_.shards = meta->shards;  // geometry owned by the repository
  init_shards();
  if (meta) {
    gens_ = meta->gens;
    first_seq_ = meta->first_seq;
    next_seq_ = meta->first_seq;  // re-discovered by the forward scan
    page_count_ = meta->page_count;
    count_.store(meta->page_count, std::memory_order_relaxed);
    bool bloom_loaded = false;
    if (const auto bloom_payload = get_unsealed(backend_, kBloomName)) {
      if (auto filter = BloomFilter::deserialize(*bloom_payload)) {
        bloom_ = std::move(*filter);
        bloom_loaded = true;
      }
    }
    if (!bloom_loaded) rebuild_bloom_from_pages();
    replay_journal();
    sweep_stale_objects();
  } else if ([this] {
               // Only THIS family's objects signal a torn commit point —
               // the sampled tier's "sampled-" objects share the namespace
               // and say nothing about the disk index's meta.
               for (const auto& name : backend_.list(Ns::kIndex)) {
                 if (name.rfind("sampled-", 0) != 0) return true;
               }
               return false;
             }()) {
    // Objects without a readable meta: the commit point was torn. The
    // hooks namespace is authoritative, so rebuild from it.
    rebuild_from_hooks();
  } else {
    gens_.assign(cfg_.shards, 0);
    write_meta();
  }
  if (gens_.size() != cfg_.shards) gens_.assign(cfg_.shards, 0);
  note_ram();
}

void PersistentIndex::init_shards() {
  shards_.clear();
  shards_.reserve(cfg_.shards);
  for (std::uint32_t s = 0; s < cfg_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool PersistentIndex::present(const StorageBackend& backend) {
  return backend.exists(Ns::kIndex, kMetaName);
}

std::uint32_t PersistentIndex::shard_of(const Digest& fp) const {
  return static_cast<std::uint32_t>(fp.prefix64() & (cfg_.shards - 1));
}

std::optional<IndexEntry> PersistentIndex::probe_page(std::uint32_t shard,
                                                      const Digest& fp) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  Page* page = cache_.get(shard);
  if (!page) {
    Page fresh;
    const std::string name = shard_object_name(shard, gens_[shard]);
    bool exists = false;
    try {
      exists = backend_.exists(Ns::kIndex, name);
    } catch (const StoreError&) {
      exists = false;
    }
    if (exists) {
      const auto payload = get_unsealed(backend_, name);
      auto recs = payload ? parse_page(*payload, shard) : std::nullopt;
      if (recs) {
        fresh.recs = std::move(*recs);
      } else {
        // Damaged page: treat as empty — its entries degrade to missed
        // duplicates, which is always safe.
        ++corrupt_pages_;
      }
    }
    page = &cache_.put(shard, std::move(fresh));
    page_cache_high_water_ =
        std::max(page_cache_high_water_, cache_.total_weight());
  }
  index_detail::Rec probe;
  probe.fp = fp;
  const auto it = std::lower_bound(page->recs.begin(), page->recs.end(),
                                   probe, rec_less);
  if (it == page->recs.end() || !(it->fp == fp)) return std::nullopt;
  return IndexEntry{it->manifest, it->offset, it->container};
}

void PersistentIndex::write_page_at(std::uint32_t shard, std::uint32_t gen,
                                    const Page& page) {
  backend_.put(Ns::kIndex, shard_object_name(shard, gen),
               framing::seal_object(serialize_page(shard, page.recs)));
}

std::optional<IndexEntry> PersistentIndex::lookup_quiet(const Digest& fp) {
  const std::uint32_t s = shard_of(fp);
  {
    std::lock_guard<std::mutex> lock(shards_[s]->mu);
    const auto dit = shards_[s]->delta.find(fp);
    if (dit != shards_[s]->delta.end()) {
      if (!dit->second) return std::nullopt;  // tombstone
      return *dit->second;
    }
  }
  return probe_page(s, fp);
}

std::optional<IndexEntry> PersistentIndex::lookup(const Digest& fp) {
  std::shared_lock<std::shared_mutex> sl(struct_mu_);
  const std::uint32_t s = shard_of(fp);
  {
    std::lock_guard<std::mutex> lock(shards_[s]->mu);
    const auto dit = shards_[s]->delta.find(fp);
    if (dit != shards_[s]->delta.end()) {
      if (!dit->second) return std::nullopt;
      return *dit->second;
    }
  }
  {
    std::lock_guard<std::mutex> lock(bloom_mu_);
    if (!bloom_.maybe_contains(fp.prefix64())) return std::nullopt;
  }
  const auto hit = probe_page(s, fp);
  // A read-only workload still churns pages through the cache; the total
  // RAM high-water must cover that growth, not just mutation paths.
  note_ram();
  return hit;
}

void PersistentIndex::append_journal_record(Byte op, const Digest& fp,
                                            const IndexEntry& e) {
  std::lock_guard<std::mutex> lock(journal_mu_);
  pending_.push_back(op);
  append_digest(pending_, fp);
  append_digest(pending_, e.manifest);
  append_le(pending_, e.offset);
  append_le(pending_, e.container);
  ++pending_count_;
  journal_records_.fetch_add(1, std::memory_order_relaxed);
  // Group commit: whichever session fills the batch seals the whole
  // window — its own records and every other session's — as one segment.
  if (pending_count_ >= cfg_.journal_batch) write_pending_segment_locked();
}

void PersistentIndex::write_pending_segment_locked() {
  if (pending_count_ == 0) return;
  ByteVec payload;
  payload.reserve(12 + pending_.size());
  append_le(payload, kJournalMagic);
  append_le(payload, kFormatVersion);
  append_le(payload, pending_count_);
  append(payload, pending_);
  backend_.put(Ns::kIndex, journal_object_name(next_seq_),
               framing::seal_object(payload));
  ++next_seq_;
  journal_segments_.fetch_add(1, std::memory_order_relaxed);
  pending_.clear();
  pending_count_ = 0;
}

void PersistentIndex::put(const Digest& fp, const IndexEntry& entry) {
  bool want_compact = false;
  {
    std::shared_lock<std::shared_mutex> sl(struct_mu_);
    const std::uint32_t s = shard_of(fp);
    std::lock_guard<std::mutex> sg(shards_[s]->mu);
    auto& delta = shards_[s]->delta;

    std::optional<IndexEntry> prev;
    const auto dit = delta.find(fp);
    if (dit != delta.end()) {
      prev = dit->second;  // nullopt = tombstone
    } else {
      bool maybe;
      {
        std::lock_guard<std::mutex> bl(bloom_mu_);
        maybe = bloom_.maybe_contains(fp.prefix64());
      }
      if (maybe) prev = probe_page(s, fp);
    }
    if (prev && entry_equal(*prev, entry)) {
      return;  // no-op put: don't journal warm-restart re-learns
    }
    if (dit == delta.end()) delta_total_.fetch_add(1, std::memory_order_relaxed);
    delta[fp] = entry;
    if (!prev) count_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> bl(bloom_mu_);
      bloom_.insert(fp.prefix64());
    }
    append_journal_record(Byte{1}, fp, entry);
    want_compact =
        delta_total_.load(std::memory_order_relaxed) >= cfg_.compact_threshold;
    note_ram();
  }
  if (want_compact) {
    std::unique_lock<std::shared_mutex> ul(struct_mu_);
    if (delta_total_.load(std::memory_order_relaxed) >= cfg_.compact_threshold) {
      compact_exclusive();
    }
  }
}

bool PersistentIndex::erase(const Digest& fp) {
  bool want_compact = false;
  bool erased = false;
  {
    std::shared_lock<std::shared_mutex> sl(struct_mu_);
    const std::uint32_t s = shard_of(fp);
    std::lock_guard<std::mutex> sg(shards_[s]->mu);
    auto& delta = shards_[s]->delta;

    std::optional<IndexEntry> prev;
    const auto dit = delta.find(fp);
    if (dit != delta.end()) {
      prev = dit->second;
    } else {
      bool maybe;
      {
        std::lock_guard<std::mutex> bl(bloom_mu_);
        maybe = bloom_.maybe_contains(fp.prefix64());
      }
      if (maybe) prev = probe_page(s, fp);
    }
    if (!prev) return false;
    if (dit == delta.end()) delta_total_.fetch_add(1, std::memory_order_relaxed);
    delta[fp] = std::nullopt;
    count_.fetch_sub(1, std::memory_order_relaxed);
    append_journal_record(Byte{0}, fp, IndexEntry{});
    want_compact =
        delta_total_.load(std::memory_order_relaxed) >= cfg_.compact_threshold;
    note_ram();
    erased = true;
  }
  if (want_compact) {
    std::unique_lock<std::shared_mutex> ul(struct_mu_);
    if (delta_total_.load(std::memory_order_relaxed) >= cfg_.compact_threshold) {
      compact_exclusive();
    }
  }
  return erased;
}

bool PersistentIndex::maybe_contains(const Digest& fp) const {
  std::shared_lock<std::shared_mutex> sl(struct_mu_);
  auto* self = const_cast<PersistentIndex*>(this);
  const std::uint32_t s = self->shard_of(fp);
  {
    std::lock_guard<std::mutex> lock(self->shards_[s]->mu);
    const auto dit = self->shards_[s]->delta.find(fp);
    if (dit != self->shards_[s]->delta.end()) return dit->second.has_value();
  }
  std::lock_guard<std::mutex> bl(bloom_mu_);
  return bloom_.maybe_contains(fp.prefix64());
}

void PersistentIndex::flush() {
  std::unique_lock<std::shared_mutex> ul(struct_mu_);
  {
    std::lock_guard<std::mutex> jl(journal_mu_);
    write_pending_segment_locked();
  }
  write_bloom();
  write_meta();
}

std::uint64_t PersistentIndex::entry_count() const {
  return count_.load(std::memory_order_relaxed);
}

std::uint64_t PersistentIndex::ram_bytes() const {
  std::shared_lock<std::shared_mutex> sl(struct_mu_);
  return ram_bytes_estimate();
}

std::uint64_t PersistentIndex::ram_high_water() const {
  return ram_high_water_.load(std::memory_order_relaxed);
}

void PersistentIndex::compact() {
  std::unique_lock<std::shared_mutex> ul(struct_mu_);
  compact_exclusive();
}

std::uint64_t PersistentIndex::journal_segment_count() const {
  std::shared_lock<std::shared_mutex> sl(struct_mu_);
  std::lock_guard<std::mutex> jl(journal_mu_);
  return next_seq_ - first_seq_;
}

std::uint64_t PersistentIndex::compaction_count() const {
  std::shared_lock<std::shared_mutex> sl(struct_mu_);
  return compactions_;
}

std::uint64_t PersistentIndex::page_cache_ram_high_water() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return page_cache_high_water_;
}

std::uint64_t PersistentIndex::corrupt_page_reads() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return corrupt_pages_;
}

std::uint64_t PersistentIndex::journal_records_appended() const {
  return journal_records_.load(std::memory_order_relaxed);
}

std::uint64_t PersistentIndex::journal_segments_written() const {
  return journal_segments_.load(std::memory_order_relaxed);
}

void PersistentIndex::compact_exclusive() {
  // Exclusive on struct_mu_: every shard, the cache, the bloom and the
  // journal belong to this thread — the leaf locks are taken only where a
  // helper shared with the point-op path insists on them.
  if (delta_total_.load(std::memory_order_relaxed) == 0) return;
  // The pending batch becomes a segment first so the journal covers every
  // acknowledged op in the pre-commit crash window.
  {
    std::lock_guard<std::mutex> jl(journal_mu_);
    write_pending_segment_locked();
  }

  const std::uint64_t old_first = first_seq_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> replaced;  // shard,gen
  for (std::uint32_t shard = 0; shard < cfg_.shards; ++shard) {
    auto& delta = shards_[shard]->delta;
    if (delta.empty()) continue;
    // Prime the cache entry through the probe path (loads the page), then
    // mutate it in place under cache_mu_.
    probe_page(shard, delta.begin()->first);
    std::lock_guard<std::mutex> cl(cache_mu_);
    Page* page = cache_.get(shard);
    if (!page) {
      // Evicted between probe and lock (only possible if the cache budget
      // is absurdly small); reload through put of an empty page.
      page = &cache_.put(shard, Page{});
    }
    std::vector<index_detail::Rec> merged = page->recs;
    for (const auto& [fp, value] : delta) {
      index_detail::Rec probe;
      probe.fp = fp;
      const auto it = std::lower_bound(merged.begin(), merged.end(), probe,
                                       rec_less);
      const bool found = it != merged.end() && it->fp == fp;
      if (value) {
        index_detail::Rec rec{fp, value->manifest, value->offset,
                              value->container};
        if (found) {
          *it = rec;
        } else {
          merged.insert(it, rec);
        }
      } else if (found) {
        merged.erase(it);
      }
    }
    const std::uint32_t new_gen = gens_[shard] + 1;
    const std::uint64_t old_weight = page->weight();
    page->recs = std::move(merged);
    page->dirty = false;
    page->pending_gen = new_gen;
    write_page_at(shard, new_gen, *page);
    cache_.reweigh(shard, old_weight);
    page_cache_high_water_ =
        std::max(page_cache_high_water_, cache_.total_weight());
    replaced.emplace_back(shard, gens_[shard]);
  }

  // COMMIT: the meta names the new generations and discards the journal.
  for (const auto& [shard, old_gen] : replaced) gens_[shard] = old_gen + 1;
  first_seq_ = next_seq_;
  page_count_ = count_.load(std::memory_order_relaxed);
  write_meta();

  // Post-commit cleanup; a crash here only leaves sweepable garbage.
  for (const auto& [shard, old_gen] : replaced) {
    backend_.remove(Ns::kIndex, shard_object_name(shard, old_gen));
  }
  for (std::uint64_t seq = old_first; seq < first_seq_; ++seq) {
    backend_.remove(Ns::kIndex, journal_object_name(seq));
  }
  for (auto& shard : shards_) shard->delta.clear();
  delta_total_.store(0, std::memory_order_relaxed);
  ++compactions_;
  note_ram();
}

void PersistentIndex::write_meta() {
  MetaView m;
  m.shards = cfg_.shards;
  m.page_count = page_count_;
  m.first_seq = first_seq_;
  m.next_seq = next_seq_;
  m.gens = gens_;
  backend_.put(Ns::kIndex, kMetaName,
               framing::seal_object(serialize_meta(m)));
}

void PersistentIndex::write_bloom() {
  backend_.put(Ns::kIndex, kBloomName,
               framing::seal_object(bloom_.serialize()));
}

void PersistentIndex::rebuild_bloom_from_pages() {
  bloom_ = make_bloom(cfg_);
  for (std::uint32_t shard = 0; shard < cfg_.shards; ++shard) {
    const auto payload =
        get_unsealed(backend_, shard_object_name(shard, gens_[shard]));
    if (!payload) continue;
    const auto recs = parse_page(*payload, shard);
    if (!recs) continue;
    for (const auto& rec : *recs) bloom_.insert(rec.fp.prefix64());
  }
}

void PersistentIndex::replay_journal() {
  for (std::uint64_t seq = first_seq_;; ++seq) {
    bool exists = false;
    try {
      exists = backend_.exists(Ns::kIndex, journal_object_name(seq));
    } catch (const StoreError&) {
      exists = false;
    }
    if (!exists) {
      next_seq_ = seq;
      break;
    }
    const auto payload = get_unsealed(backend_, journal_object_name(seq));
    const auto recs = payload ? parse_journal(*payload) : std::nullopt;
    if (!recs) {
      // Torn tail: truncate here. Anything after the tear is unordered
      // relative to the lost segment and must go too.
      next_seq_ = seq;
      std::uint64_t later = seq;
      while (true) {
        bool more = false;
        try {
          more = backend_.remove(Ns::kIndex, journal_object_name(later));
        } catch (const StoreError&) {
          more = false;
        }
        if (!more) break;
        ++later;
      }
      break;
    }
    for (const auto& jr : *recs) {
      const auto prev = lookup_quiet(jr.rec.fp);
      auto& shard = *shards_[shard_of(jr.rec.fp)];
      if (jr.op == Byte{1}) {
        if (!prev) count_.fetch_add(1, std::memory_order_relaxed);
        if (shard.delta.find(jr.rec.fp) == shard.delta.end()) {
          delta_total_.fetch_add(1, std::memory_order_relaxed);
        }
        shard.delta[jr.rec.fp] =
            IndexEntry{jr.rec.manifest, jr.rec.offset, jr.rec.container};
        bloom_.insert(jr.rec.fp.prefix64());
      } else {
        if (prev) count_.fetch_sub(1, std::memory_order_relaxed);
        if (shard.delta.find(jr.rec.fp) == shard.delta.end()) {
          delta_total_.fetch_add(1, std::memory_order_relaxed);
        }
        shard.delta[jr.rec.fp] = std::nullopt;
      }
    }
  }
}

void PersistentIndex::sweep_stale_objects() {
  // Remove generations not named by meta and journal segments outside the
  // live window — leftovers of a crash between commit and cleanup.
  std::vector<std::string> stale;
  for (const auto& name : backend_.list(Ns::kIndex)) {
    if (name.rfind("shard-", 0) == 0) {
      const auto dash = name.find("-g");
      if (dash == std::string::npos) continue;
      const std::uint32_t shard = static_cast<std::uint32_t>(
          std::strtoul(name.c_str() + 6, nullptr, 10));
      const std::uint32_t gen = static_cast<std::uint32_t>(
          std::strtoul(name.c_str() + dash + 2, nullptr, 10));
      if (shard >= cfg_.shards || gen != gens_[shard]) stale.push_back(name);
    } else if (name.rfind("journal-", 0) == 0) {
      const std::uint64_t seq = std::strtoull(name.c_str() + 8, nullptr, 10);
      if (seq < first_seq_ || seq >= next_seq_) stale.push_back(name);
    }
  }
  for (const auto& name : stale) backend_.remove(Ns::kIndex, name);
}

void PersistentIndex::rebuild_from_hooks() {
  // The meta must never be absent: it carries the shard geometry, which is
  // owned by the repository, so it survives the clear and is atomically
  // overwritten below. A kill anywhere in this function leaves a readable
  // meta with the right geometry; the next rebuild starts over cleanly.
  for (const auto& name : backend_.list(Ns::kIndex)) {
    if (name == kMetaName) continue;
    if (name.rfind("sampled-", 0) == 0) continue;  // the sampled tier's
    backend_.remove(Ns::kIndex, name);
  }
  gens_.assign(cfg_.shards, 0);
  first_seq_ = next_seq_ = 0;
  page_count_ = 0;
  for (auto& shard : shards_) shard->delta.clear();
  delta_total_.store(0, std::memory_order_relaxed);
  pending_.clear();
  pending_count_ = 0;
  count_.store(0, std::memory_order_relaxed);
  write_meta();
  bloom_ = make_bloom(cfg_);

  std::vector<std::vector<index_detail::Rec>> pages(cfg_.shards);
  for (const auto& name : backend_.list(Ns::kHook)) {
    const auto bytes = hex_decode(name);
    if (!bytes || bytes->size() != Digest::kSize) continue;
    const Digest fp = read_digest(bytes->data());
    std::optional<ByteVec> target;
    try {
      target = backend_.get(Ns::kHook, name);
    } catch (const StoreError&) {
      continue;  // damaged hook: the entry degrades to a missed duplicate
    }
    if (!target || target->size() != Digest::kSize) continue;
    index_detail::Rec rec;
    rec.fp = fp;
    rec.manifest = read_digest(target->data());
    rec.offset = 0;  // unknown after rebuild; engines confirm via manifest
    pages[shard_of(fp)].push_back(rec);
  }
  std::uint64_t total = 0;
  for (std::uint32_t shard = 0; shard < cfg_.shards; ++shard) {
    auto& recs = pages[shard];
    std::sort(recs.begin(), recs.end(), rec_less);
    recs.erase(std::unique(recs.begin(), recs.end(),
                           [](const index_detail::Rec& a,
                              const index_detail::Rec& b) {
                             return a.fp == b.fp;
                           }),
               recs.end());
    total += recs.size();
    for (const auto& rec : recs) bloom_.insert(rec.fp.prefix64());
    if (!recs.empty()) {
      Page page;
      page.recs = std::move(recs);
      write_page_at(shard, 0, page);
    }
  }
  count_.store(total, std::memory_order_relaxed);
  page_count_ = total;
  write_meta();
  write_bloom();
}

std::uint64_t PersistentIndex::ram_bytes_estimate() const {
  std::uint64_t total =
      delta_total_.load(std::memory_order_relaxed) * kDeltaEntryRamBytes;
  {
    std::lock_guard<std::mutex> bl(bloom_mu_);
    total += bloom_.size_bytes();
  }
  {
    std::lock_guard<std::mutex> cl(cache_mu_);
    total += cache_.total_weight();
  }
  {
    std::lock_guard<std::mutex> jl(journal_mu_);
    total += pending_.capacity();
  }
  return total;
}

void PersistentIndex::note_ram() {
  const std::uint64_t now = ram_bytes_estimate();
  std::uint64_t seen = ram_high_water_.load(std::memory_order_relaxed);
  while (now > seen &&
         !ram_high_water_.compare_exchange_weak(seen, now,
                                                std::memory_order_relaxed)) {
  }
}

void PersistentIndex::save_warm_list(const std::vector<Digest>& names) {
  std::unique_lock<std::shared_mutex> ul(struct_mu_);
  ByteVec payload;
  payload.reserve(16 + names.size() * Digest::kSize);
  append_le(payload, kWarmMagic);
  append_le(payload, kFormatVersion);
  append_le(payload, static_cast<std::uint64_t>(names.size()));
  for (const auto& name : names) append_digest(payload, name);
  backend_.put(Ns::kIndex, kWarmName, framing::seal_object(payload));
}

std::vector<Digest> PersistentIndex::load_warm_list() const {
  std::shared_lock<std::shared_mutex> sl(struct_mu_);
  const auto payload = get_unsealed(backend_, kWarmName);
  if (!payload) return {};
  constexpr std::size_t kHeader = 4 + 4 + 8;
  if (payload->size() < kHeader) return {};
  if (load_le<std::uint32_t>(payload->data()) != kWarmMagic) return {};
  if (load_le<std::uint32_t>(payload->data() + 4) != kFormatVersion) return {};
  const auto count = load_le<std::uint64_t>(payload->data() + 8);
  if (payload->size() != kHeader + count * Digest::kSize) return {};
  std::vector<Digest> names;
  names.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    names.push_back(read_digest(payload->data() + kHeader + i * Digest::kSize));
  }
  return names;
}

void PersistentIndex::save_aux(const std::string& name, ByteSpan payload) {
  std::unique_lock<std::shared_mutex> ul(struct_mu_);
  backend_.put(Ns::kIndex, "aux-" + name, framing::seal_object(payload));
}

std::optional<ByteVec> PersistentIndex::load_aux(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> sl(struct_mu_);
  return get_unsealed(backend_, "aux-" + name);
}

bool index_present(const StorageBackend& backend) {
  return PersistentIndex::present(backend);
}

IndexCheckReport check_index(const StorageBackend& backend) {
  IndexCheckReport report;
  const auto meta_payload = get_unsealed(backend, kMetaName);
  const auto meta = meta_payload ? parse_meta(*meta_payload) : std::nullopt;
  if (!meta) {
    if (backend.exists(Ns::kIndex, kMetaName)) ++report.corrupt_objects;
    return report;
  }
  report.meta_ok = true;

  std::unordered_map<Digest, Digest, DigestHasher> live;
  for (std::uint32_t shard = 0; shard < meta->shards; ++shard) {
    const std::string name = shard_object_name(shard, meta->gens[shard]);
    if (!backend.exists(Ns::kIndex, name)) continue;
    const auto payload = get_unsealed(backend, name);
    const auto recs = payload ? parse_page(*payload, shard) : std::nullopt;
    if (!recs) {
      ++report.corrupt_objects;
      continue;
    }
    for (const auto& rec : *recs) live.insert_or_assign(rec.fp, rec.manifest);
  }
  for (std::uint64_t seq = meta->first_seq;; ++seq) {
    if (!backend.exists(Ns::kIndex, journal_object_name(seq))) break;
    const auto payload = get_unsealed(backend, journal_object_name(seq));
    const auto recs = payload ? parse_journal(*payload) : std::nullopt;
    if (!recs) {
      ++report.corrupt_objects;
      break;
    }
    for (const auto& jr : *recs) {
      if (jr.op == Byte{1}) {
        live.insert_or_assign(jr.rec.fp, jr.rec.manifest);
      } else {
        live.erase(jr.rec.fp);
      }
    }
  }

  report.entries = live.size();
  for (const auto& [fp, manifest] : live) {
    if (!backend.exists(Ns::kManifest, manifest.hex())) ++report.stale_entries;
  }
  for (const auto& name : backend.list(Ns::kHook)) {
    const auto bytes = hex_decode(name);
    if (!bytes || bytes->size() != Digest::kSize) continue;
    if (live.find(read_digest(bytes->data())) == live.end()) {
      ++report.unindexed_hooks;
    }
  }
  return report;
}

void rebuild_index(StorageBackend& backend, PersistentIndexConfig config) {
  // Preserve the persisted geometry when the old meta is readable.
  if (const auto meta_payload = get_unsealed(backend, kMetaName)) {
    if (const auto meta = parse_meta(*meta_payload)) {
      config.shards = meta->shards;
    }
  }
  // Clear everything except the meta, then atomically overwrite it with a
  // fresh empty meta. The meta carries the shard geometry, which is owned
  // by the repository; were it removed first, a kill before the rewrite
  // would make the next rebuild invent the default geometry — a silent,
  // permanent divergence. With this ordering every kill window leaves a
  // readable meta, and the repository stays a deterministic function of
  // its hooks and its geometry.
  for (const auto& name : backend.list(Ns::kIndex)) {
    if (name == kMetaName) continue;
    // The sampled similarity tier shares Ns::kIndex under a "sampled-"
    // prefix; its objects belong to rebuild_sampled_index, not to us.
    if (name.rfind("sampled-", 0) == 0) continue;
    backend.remove(Ns::kIndex, name);
  }
  MetaView fresh;
  fresh.shards = normalize_shards(config.shards);
  fresh.gens.assign(fresh.shards, 0);
  backend.put(Ns::kIndex, kMetaName,
              framing::seal_object(serialize_meta(fresh)));
  // A fresh PersistentIndex over the cleared namespace, re-fed from the
  // hooks (the authoritative fingerprint source), then compacted so the
  // result is pure bucket pages with an empty journal.
  PersistentIndex index(backend, config);
  for (const auto& name : backend.list(Ns::kHook)) {
    const auto bytes = hex_decode(name);
    if (!bytes || bytes->size() != Digest::kSize) continue;
    Digest fp;
    std::copy(bytes->begin(), bytes->end(), fp.bytes.begin());
    std::optional<ByteVec> target;
    try {
      target = backend.get(Ns::kHook, name);
    } catch (const StoreError&) {
      continue;
    }
    if (!target || target->size() != Digest::kSize) continue;
    Digest manifest;
    std::copy(target->begin(), target->end(), manifest.bytes.begin());
    index.put(fp, IndexEntry{manifest, 0});
  }
  index.compact();
  index.flush();
}

}  // namespace mhd
