#include "mhd/index/persistent_index.h"

#include <algorithm>
#include <cstdlib>

#include "mhd/store/framing.h"
#include "mhd/store/store_errors.h"
#include "mhd/util/hex.h"

namespace mhd {

namespace {

constexpr std::uint32_t kMetaMagic = 0x314D494Du;   // "MIM1"
constexpr std::uint32_t kPageMagic = 0x3150494Du;   // "MIP1"
constexpr std::uint32_t kJournalMagic = 0x314A494Du;  // "MIJ1"
constexpr std::uint32_t kWarmMagic = 0x3157494Du;   // "MIW1"
// v1 records were 48 bytes (fp, manifest, offset); v2 appends the 8-byte
// container location. The index is advisory and rebuildable, so a v1
// repository simply fails the version check and starts fresh — a missed
// duplicate at worst, never a wrong restore.
constexpr std::uint32_t kFormatVersion = 2;

constexpr char kMetaName[] = "meta";
constexpr char kBloomName[] = "bloom";
constexpr char kWarmName[] = "warm";

/// Serialized record size in pages (fp + manifest + offset + container).
constexpr std::size_t kRecBytes = Digest::kSize * 2 + 16;
/// Journal records carry a leading op byte (1 = put, 0 = erase).
constexpr std::size_t kJournalRecBytes = 1 + kRecBytes;

/// Estimated resident bytes per delta entry (node + key/value + bucket).
constexpr std::uint64_t kDeltaEntryRamBytes = 96;

std::string shard_object_name(std::uint32_t shard, std::uint32_t gen) {
  return "shard-" + std::to_string(shard) + "-g" + std::to_string(gen);
}

std::string journal_object_name(std::uint64_t seq) {
  return "journal-" + std::to_string(seq);
}

void append_digest(ByteVec& out, const Digest& d) { append(out, d.span()); }

Digest read_digest(const Byte* p) {
  Digest d;
  std::copy(p, p + Digest::kSize, d.bytes.begin());
  return d;
}

void append_rec(ByteVec& out, const index_detail::Rec& rec) {
  append_digest(out, rec.fp);
  append_digest(out, rec.manifest);
  append_le(out, rec.offset);
  append_le(out, rec.container);
}

index_detail::Rec read_rec(const Byte* p) {
  index_detail::Rec rec;
  rec.fp = read_digest(p);
  rec.manifest = read_digest(p + Digest::kSize);
  rec.offset = load_le<std::uint64_t>(p + 2 * Digest::kSize);
  rec.container = load_le<std::uint64_t>(p + 2 * Digest::kSize + 8);
  return rec;
}

bool rec_less(const index_detail::Rec& a, const index_detail::Rec& b) {
  return a.fp < b.fp;
}

/// Reads and unseals one index object, tolerating *double* framing: the
/// index seals its own payloads, and under FramedBackend the physical
/// bytes carry a second outer frame. Peeling frames until the payload no
/// longer unseals makes the same reader work on the raw backend (fsck) and
/// on the logical view (engines, GC) alike. A bare payload can't unseal by
/// accident: its tail would have to be a valid MTR1 trailer with a
/// matching CRC.
std::optional<ByteVec> get_unsealed(const StorageBackend& backend,
                                    const std::string& name) {
  std::optional<ByteVec> framed;
  try {
    framed = backend.get(Ns::kIndex, name);
  } catch (const StoreError&) {
    return std::nullopt;
  }
  if (!framed) return std::nullopt;
  auto payload = framing::unseal_object(*framed);
  if (!payload) return std::nullopt;
  while (auto inner = framing::unseal_object(*payload)) payload = inner;
  return payload;
}

struct MetaView {
  std::uint32_t shards = 0;
  std::uint64_t page_count = 0;
  std::uint64_t first_seq = 0;
  std::uint64_t next_seq = 0;
  std::vector<std::uint32_t> gens;
};

ByteVec serialize_meta(const MetaView& m) {
  ByteVec out;
  append_le(out, kMetaMagic);
  append_le(out, kFormatVersion);
  append_le(out, m.shards);
  append_le(out, m.page_count);
  append_le(out, m.first_seq);
  append_le(out, m.next_seq);
  for (const std::uint32_t g : m.gens) append_le(out, g);
  return out;
}

std::optional<MetaView> parse_meta(ByteSpan payload) {
  constexpr std::size_t kFixed = 4 + 4 + 4 + 8 + 8 + 8;
  if (payload.size() < kFixed) return std::nullopt;
  if (load_le<std::uint32_t>(payload.data()) != kMetaMagic) return std::nullopt;
  if (load_le<std::uint32_t>(payload.data() + 4) != kFormatVersion) {
    return std::nullopt;
  }
  MetaView m;
  m.shards = load_le<std::uint32_t>(payload.data() + 8);
  m.page_count = load_le<std::uint64_t>(payload.data() + 12);
  m.first_seq = load_le<std::uint64_t>(payload.data() + 20);
  m.next_seq = load_le<std::uint64_t>(payload.data() + 28);
  if (m.shards == 0 || m.shards > 4096) return std::nullopt;
  if (payload.size() != kFixed + m.shards * 4ull) return std::nullopt;
  m.gens.resize(m.shards);
  for (std::uint32_t s = 0; s < m.shards; ++s) {
    m.gens[s] = load_le<std::uint32_t>(payload.data() + kFixed + s * 4ull);
  }
  return m;
}

std::optional<std::vector<index_detail::Rec>> parse_page(
    ByteSpan payload, std::uint32_t expected_shard) {
  constexpr std::size_t kHeader = 4 + 4 + 4 + 8;
  if (payload.size() < kHeader) return std::nullopt;
  if (load_le<std::uint32_t>(payload.data()) != kPageMagic) return std::nullopt;
  if (load_le<std::uint32_t>(payload.data() + 4) != kFormatVersion) {
    return std::nullopt;
  }
  if (load_le<std::uint32_t>(payload.data() + 8) != expected_shard) {
    return std::nullopt;
  }
  const auto count = load_le<std::uint64_t>(payload.data() + 12);
  if (payload.size() != kHeader + count * kRecBytes) return std::nullopt;
  std::vector<index_detail::Rec> recs;
  recs.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    recs.push_back(read_rec(payload.data() + kHeader + i * kRecBytes));
  }
  if (!std::is_sorted(recs.begin(), recs.end(), rec_less)) return std::nullopt;
  return recs;
}

ByteVec serialize_page(std::uint32_t shard,
                       const std::vector<index_detail::Rec>& recs) {
  ByteVec out;
  out.reserve(20 + recs.size() * kRecBytes);
  append_le(out, kPageMagic);
  append_le(out, kFormatVersion);
  append_le(out, shard);
  append_le(out, static_cast<std::uint64_t>(recs.size()));
  for (const auto& rec : recs) append_rec(out, rec);
  return out;
}

struct JournalRec {
  Byte op = Byte{0};
  index_detail::Rec rec;
};

std::optional<std::vector<JournalRec>> parse_journal(ByteSpan payload) {
  constexpr std::size_t kHeader = 4 + 4 + 4;
  if (payload.size() < kHeader) return std::nullopt;
  if (load_le<std::uint32_t>(payload.data()) != kJournalMagic) {
    return std::nullopt;
  }
  if (load_le<std::uint32_t>(payload.data() + 4) != kFormatVersion) {
    return std::nullopt;
  }
  const auto count = load_le<std::uint32_t>(payload.data() + 8);
  if (payload.size() != kHeader + count * static_cast<std::uint64_t>(
                                              kJournalRecBytes)) {
    return std::nullopt;
  }
  std::vector<JournalRec> recs;
  recs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const Byte* p = payload.data() + kHeader + i * kJournalRecBytes;
    JournalRec jr;
    jr.op = *p;
    jr.rec = read_rec(p + 1);
    recs.push_back(jr);
  }
  return recs;
}

int bloom_probes(std::uint32_t bits_per_key) {
  // k = ln2 * bits/key, the textbook optimum, at least one probe.
  return std::max(1, static_cast<int>(bits_per_key * 693 / 1000));
}

BloomFilter make_bloom(const PersistentIndexConfig& cfg) {
  const std::uint64_t bytes =
      std::max<std::uint64_t>(cfg.expected_keys * cfg.bloom_bits_per_key / 8,
                              1024);
  return BloomFilter(static_cast<std::size_t>(bytes),
                     bloom_probes(cfg.bloom_bits_per_key));
}

std::uint32_t normalize_shards(std::uint32_t shards) {
  shards = std::clamp<std::uint32_t>(shards, 1, 4096);
  std::uint32_t pow2 = 1;
  while (pow2 < shards) pow2 <<= 1;
  return pow2;
}

}  // namespace

PersistentIndex::PersistentIndex(StorageBackend& backend,
                                 PersistentIndexConfig config)
    : backend_(backend),
      cfg_([&config] {
        config.shards = normalize_shards(config.shards);
        config.journal_batch = std::max<std::uint32_t>(config.journal_batch, 1);
        config.compact_threshold =
            std::max<std::uint64_t>(config.compact_threshold, 1);
        return config;
      }()),
      bloom_(make_bloom(cfg_)),
      cache_(
          /*capacity=*/cfg_.shards,
          [this](const std::uint32_t& shard, Page& page) {
            // Pages are written synchronously during compaction, so a
            // dirty page reaching eviction means the shadow write was
            // interrupted; flushing it here keeps write-back semantics.
            if (page.dirty) write_page_at(shard, page.pending_gen, page);
          },
          cfg_.cache_bytes, [](const Page& page) { return page.weight(); }) {
  const auto meta_payload = get_unsealed(backend_, kMetaName);
  const auto meta = meta_payload ? parse_meta(*meta_payload) : std::nullopt;
  if (meta) {
    cfg_.shards = meta->shards;  // geometry is owned by the repository
    gens_ = meta->gens;
    first_seq_ = meta->first_seq;
    next_seq_ = meta->first_seq;  // re-discovered by the forward scan
    page_count_ = meta->page_count;
    count_ = meta->page_count;
    bool bloom_loaded = false;
    if (const auto bloom_payload = get_unsealed(backend_, kBloomName)) {
      if (auto filter = BloomFilter::deserialize(*bloom_payload)) {
        bloom_ = std::move(*filter);
        bloom_loaded = true;
      }
    }
    if (!bloom_loaded) rebuild_bloom_from_pages();
    replay_journal();
    sweep_stale_objects();
  } else if (backend_.object_count(Ns::kIndex) > 0) {
    // Objects without a readable meta: the commit point was torn. The
    // hooks namespace is authoritative, so rebuild from it.
    rebuild_from_hooks();
  } else {
    gens_.assign(cfg_.shards, 0);
    write_meta();
  }
  if (gens_.size() != cfg_.shards) gens_.assign(cfg_.shards, 0);
  note_ram();
}

bool PersistentIndex::present(const StorageBackend& backend) {
  return backend.exists(Ns::kIndex, kMetaName);
}

std::uint32_t PersistentIndex::shard_of(const Digest& fp) const {
  return static_cast<std::uint32_t>(fp.prefix64() & (cfg_.shards - 1));
}

PersistentIndex::Page& PersistentIndex::load_page(std::uint32_t shard) {
  if (Page* hit = cache_.get(shard)) return *hit;
  Page page;
  const std::string name = shard_object_name(shard, gens_[shard]);
  bool exists = false;
  try {
    exists = backend_.exists(Ns::kIndex, name);
  } catch (const StoreError&) {
    exists = false;
  }
  if (exists) {
    const auto payload = get_unsealed(backend_, name);
    auto recs = payload ? parse_page(*payload, shard) : std::nullopt;
    if (recs) {
      page.recs = std::move(*recs);
    } else {
      // Damaged page: treat as empty — its entries degrade to missed
      // duplicates, which is always safe.
      ++corrupt_pages_;
    }
  }
  Page& placed = cache_.put(shard, std::move(page));
  note_ram();
  return placed;
}

void PersistentIndex::write_page_at(std::uint32_t shard, std::uint32_t gen,
                                    const Page& page) {
  backend_.put(Ns::kIndex, shard_object_name(shard, gen),
               framing::seal_object(serialize_page(shard, page.recs)));
}

std::optional<IndexEntry> PersistentIndex::lookup_quiet(const Digest& fp) {
  const auto dit = delta_.find(fp);
  if (dit != delta_.end()) {
    if (!dit->second) return std::nullopt;  // tombstone
    return *dit->second;
  }
  const Page& page = load_page(shard_of(fp));
  index_detail::Rec probe;
  probe.fp = fp;
  const auto it = std::lower_bound(page.recs.begin(), page.recs.end(), probe,
                                   rec_less);
  if (it == page.recs.end() || !(it->fp == fp)) return std::nullopt;
  return IndexEntry{it->manifest, it->offset, it->container};
}

std::optional<IndexEntry> PersistentIndex::lookup_locked(const Digest& fp) {
  const auto dit = delta_.find(fp);
  if (dit != delta_.end()) {
    if (!dit->second) return std::nullopt;
    return *dit->second;
  }
  if (!bloom_.maybe_contains(fp.prefix64())) return std::nullopt;
  return lookup_quiet(fp);
}

std::optional<IndexEntry> PersistentIndex::lookup(const Digest& fp) {
  std::lock_guard<std::mutex> lock(mu_);
  return lookup_locked(fp);
}

void PersistentIndex::append_journal_record(Byte op, const Digest& fp,
                                            const IndexEntry& e) {
  pending_.push_back(op);
  append_digest(pending_, fp);
  append_digest(pending_, e.manifest);
  append_le(pending_, e.offset);
  append_le(pending_, e.container);
  ++pending_count_;
  if (pending_count_ >= cfg_.journal_batch) write_pending_segment();
}

void PersistentIndex::write_pending_segment() {
  if (pending_count_ == 0) return;
  ByteVec payload;
  payload.reserve(12 + pending_.size());
  append_le(payload, kJournalMagic);
  append_le(payload, kFormatVersion);
  append_le(payload, pending_count_);
  append(payload, pending_);
  backend_.put(Ns::kIndex, journal_object_name(next_seq_),
               framing::seal_object(payload));
  ++next_seq_;
  pending_.clear();
  pending_count_ = 0;
}

void PersistentIndex::put(const Digest& fp, const IndexEntry& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto prev = lookup_locked(fp);
  if (prev && prev->manifest == entry.manifest &&
      prev->offset == entry.offset && prev->container == entry.container) {
    return;  // no-op put: don't journal warm-restart re-learns
  }
  delta_[fp] = entry;
  bloom_.insert(fp.prefix64());
  if (!prev) ++count_;
  append_journal_record(Byte{1}, fp, entry);
  if (delta_.size() >= cfg_.compact_threshold) compact_locked();
  note_ram();
}

bool PersistentIndex::erase(const Digest& fp) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto prev = lookup_locked(fp);
  if (!prev) return false;
  delta_[fp] = std::nullopt;
  --count_;
  append_journal_record(Byte{0}, fp, IndexEntry{});
  if (delta_.size() >= cfg_.compact_threshold) compact_locked();
  note_ram();
  return true;
}

bool PersistentIndex::maybe_contains(const Digest& fp) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto dit = delta_.find(fp);
  if (dit != delta_.end()) return dit->second.has_value();
  return bloom_.maybe_contains(fp.prefix64());
}

void PersistentIndex::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  write_pending_segment();
  write_bloom();
  write_meta();
}

std::uint64_t PersistentIndex::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

std::uint64_t PersistentIndex::ram_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ram_bytes_locked();
}

std::uint64_t PersistentIndex::ram_high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ram_high_water_;
}

void PersistentIndex::compact() {
  std::lock_guard<std::mutex> lock(mu_);
  compact_locked();
  note_ram();
}

std::uint64_t PersistentIndex::journal_segment_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - first_seq_;
}

std::uint64_t PersistentIndex::compaction_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return compactions_;
}

std::uint64_t PersistentIndex::page_cache_ram_high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return page_cache_high_water_;
}

std::uint64_t PersistentIndex::corrupt_page_reads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return corrupt_pages_;
}

void PersistentIndex::compact_locked() {
  if (delta_.empty()) return;
  // The pending batch becomes a segment first so the journal covers every
  // acknowledged op in the pre-commit crash window.
  write_pending_segment();

  std::unordered_map<std::uint32_t, std::vector<
      std::pair<Digest, DeltaValue>>> by_shard;
  for (const auto& [fp, value] : delta_) {
    by_shard[shard_of(fp)].emplace_back(fp, value);
  }

  const std::uint64_t old_first = first_seq_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> replaced;  // shard,gen
  for (auto& [shard, ops] : by_shard) {
    Page& page = load_page(shard);
    std::vector<index_detail::Rec> merged = page.recs;
    for (const auto& [fp, value] : ops) {
      index_detail::Rec probe;
      probe.fp = fp;
      const auto it = std::lower_bound(merged.begin(), merged.end(), probe,
                                       rec_less);
      const bool found = it != merged.end() && it->fp == fp;
      if (value) {
        index_detail::Rec rec{fp, value->manifest, value->offset,
                              value->container};
        if (found) {
          *it = rec;
        } else {
          merged.insert(it, rec);
        }
      } else if (found) {
        merged.erase(it);
      }
    }
    const std::uint32_t new_gen = gens_[shard] + 1;
    const std::uint64_t old_weight = page.weight();
    page.recs = std::move(merged);
    page.dirty = false;
    page.pending_gen = new_gen;
    write_page_at(shard, new_gen, page);
    cache_.reweigh(shard, old_weight);
    replaced.emplace_back(shard, gens_[shard]);
  }

  // COMMIT: the meta names the new generations and discards the journal.
  for (const auto& [shard, old_gen] : replaced) gens_[shard] = old_gen + 1;
  first_seq_ = next_seq_;
  page_count_ = count_;
  write_meta();

  // Post-commit cleanup; a crash here only leaves sweepable garbage.
  for (const auto& [shard, old_gen] : replaced) {
    backend_.remove(Ns::kIndex, shard_object_name(shard, old_gen));
  }
  for (std::uint64_t seq = old_first; seq < first_seq_; ++seq) {
    backend_.remove(Ns::kIndex, journal_object_name(seq));
  }
  delta_.clear();
  ++compactions_;
  note_ram();
}

void PersistentIndex::write_meta() {
  MetaView m;
  m.shards = cfg_.shards;
  m.page_count = page_count_;
  m.first_seq = first_seq_;
  m.next_seq = next_seq_;
  m.gens = gens_;
  backend_.put(Ns::kIndex, kMetaName,
               framing::seal_object(serialize_meta(m)));
}

void PersistentIndex::write_bloom() {
  backend_.put(Ns::kIndex, kBloomName,
               framing::seal_object(bloom_.serialize()));
}

void PersistentIndex::rebuild_bloom_from_pages() {
  bloom_ = make_bloom(cfg_);
  for (std::uint32_t shard = 0; shard < cfg_.shards; ++shard) {
    const auto payload =
        get_unsealed(backend_, shard_object_name(shard, gens_[shard]));
    if (!payload) continue;
    const auto recs = parse_page(*payload, shard);
    if (!recs) continue;
    for (const auto& rec : *recs) bloom_.insert(rec.fp.prefix64());
  }
}

void PersistentIndex::replay_journal() {
  for (std::uint64_t seq = first_seq_;; ++seq) {
    bool exists = false;
    try {
      exists = backend_.exists(Ns::kIndex, journal_object_name(seq));
    } catch (const StoreError&) {
      exists = false;
    }
    if (!exists) {
      next_seq_ = seq;
      break;
    }
    const auto payload = get_unsealed(backend_, journal_object_name(seq));
    const auto recs = payload ? parse_journal(*payload) : std::nullopt;
    if (!recs) {
      // Torn tail: truncate here. Anything after the tear is unordered
      // relative to the lost segment and must go too.
      next_seq_ = seq;
      std::uint64_t later = seq;
      while (true) {
        bool more = false;
        try {
          more = backend_.remove(Ns::kIndex, journal_object_name(later));
        } catch (const StoreError&) {
          more = false;
        }
        if (!more) break;
        ++later;
      }
      break;
    }
    for (const auto& jr : *recs) {
      const auto prev = lookup_quiet(jr.rec.fp);
      if (jr.op == Byte{1}) {
        if (!prev) ++count_;
        delta_[jr.rec.fp] =
            IndexEntry{jr.rec.manifest, jr.rec.offset, jr.rec.container};
        bloom_.insert(jr.rec.fp.prefix64());
      } else {
        if (prev) --count_;
        delta_[jr.rec.fp] = std::nullopt;
      }
    }
  }
}

void PersistentIndex::sweep_stale_objects() {
  // Remove generations not named by meta and journal segments outside the
  // live window — leftovers of a crash between commit and cleanup.
  std::vector<std::string> stale;
  for (const auto& name : backend_.list(Ns::kIndex)) {
    if (name.rfind("shard-", 0) == 0) {
      const auto dash = name.find("-g");
      if (dash == std::string::npos) continue;
      const std::uint32_t shard = static_cast<std::uint32_t>(
          std::strtoul(name.c_str() + 6, nullptr, 10));
      const std::uint32_t gen = static_cast<std::uint32_t>(
          std::strtoul(name.c_str() + dash + 2, nullptr, 10));
      if (shard >= cfg_.shards || gen != gens_[shard]) stale.push_back(name);
    } else if (name.rfind("journal-", 0) == 0) {
      const std::uint64_t seq = std::strtoull(name.c_str() + 8, nullptr, 10);
      if (seq < first_seq_ || seq >= next_seq_) stale.push_back(name);
    }
  }
  for (const auto& name : stale) backend_.remove(Ns::kIndex, name);
}

void PersistentIndex::rebuild_from_hooks() {
  for (const auto& name : backend_.list(Ns::kIndex)) {
    backend_.remove(Ns::kIndex, name);
  }
  gens_.assign(cfg_.shards, 0);
  first_seq_ = next_seq_ = 0;
  delta_.clear();
  pending_.clear();
  pending_count_ = 0;
  count_ = 0;
  bloom_ = make_bloom(cfg_);

  std::vector<std::vector<index_detail::Rec>> pages(cfg_.shards);
  for (const auto& name : backend_.list(Ns::kHook)) {
    const auto bytes = hex_decode(name);
    if (!bytes || bytes->size() != Digest::kSize) continue;
    const Digest fp = read_digest(bytes->data());
    std::optional<ByteVec> target;
    try {
      target = backend_.get(Ns::kHook, name);
    } catch (const StoreError&) {
      continue;  // damaged hook: the entry degrades to a missed duplicate
    }
    if (!target || target->size() != Digest::kSize) continue;
    index_detail::Rec rec;
    rec.fp = fp;
    rec.manifest = read_digest(target->data());
    rec.offset = 0;  // unknown after rebuild; engines confirm via manifest
    pages[shard_of(fp)].push_back(rec);
  }
  for (std::uint32_t shard = 0; shard < cfg_.shards; ++shard) {
    auto& recs = pages[shard];
    std::sort(recs.begin(), recs.end(), rec_less);
    recs.erase(std::unique(recs.begin(), recs.end(),
                           [](const index_detail::Rec& a,
                              const index_detail::Rec& b) {
                             return a.fp == b.fp;
                           }),
               recs.end());
    count_ += recs.size();
    for (const auto& rec : recs) bloom_.insert(rec.fp.prefix64());
    if (!recs.empty()) {
      Page page;
      page.recs = std::move(recs);
      write_page_at(shard, 0, page);
    }
  }
  page_count_ = count_;
  write_meta();
  write_bloom();
}

std::uint64_t PersistentIndex::ram_bytes_locked() const {
  return bloom_.size_bytes() + cache_.total_weight() +
         delta_.size() * kDeltaEntryRamBytes + pending_.capacity();
}

void PersistentIndex::note_ram() {
  ram_high_water_ = std::max(ram_high_water_, ram_bytes_locked());
  page_cache_high_water_ =
      std::max(page_cache_high_water_, cache_.total_weight());
}

void PersistentIndex::save_warm_list(const std::vector<Digest>& names) {
  std::lock_guard<std::mutex> lock(mu_);
  ByteVec payload;
  payload.reserve(16 + names.size() * Digest::kSize);
  append_le(payload, kWarmMagic);
  append_le(payload, kFormatVersion);
  append_le(payload, static_cast<std::uint64_t>(names.size()));
  for (const auto& name : names) append_digest(payload, name);
  backend_.put(Ns::kIndex, kWarmName, framing::seal_object(payload));
}

std::vector<Digest> PersistentIndex::load_warm_list() const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto payload = get_unsealed(backend_, kWarmName);
  if (!payload) return {};
  constexpr std::size_t kHeader = 4 + 4 + 8;
  if (payload->size() < kHeader) return {};
  if (load_le<std::uint32_t>(payload->data()) != kWarmMagic) return {};
  if (load_le<std::uint32_t>(payload->data() + 4) != kFormatVersion) return {};
  const auto count = load_le<std::uint64_t>(payload->data() + 8);
  if (payload->size() != kHeader + count * Digest::kSize) return {};
  std::vector<Digest> names;
  names.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    names.push_back(read_digest(payload->data() + kHeader + i * Digest::kSize));
  }
  return names;
}

void PersistentIndex::save_aux(const std::string& name, ByteSpan payload) {
  std::lock_guard<std::mutex> lock(mu_);
  backend_.put(Ns::kIndex, "aux-" + name, framing::seal_object(payload));
}

std::optional<ByteVec> PersistentIndex::load_aux(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return get_unsealed(backend_, "aux-" + name);
}

bool index_present(const StorageBackend& backend) {
  return PersistentIndex::present(backend);
}

IndexCheckReport check_index(const StorageBackend& backend) {
  IndexCheckReport report;
  const auto meta_payload = get_unsealed(backend, kMetaName);
  const auto meta = meta_payload ? parse_meta(*meta_payload) : std::nullopt;
  if (!meta) {
    if (backend.exists(Ns::kIndex, kMetaName)) ++report.corrupt_objects;
    return report;
  }
  report.meta_ok = true;

  std::unordered_map<Digest, Digest, DigestHasher> live;
  for (std::uint32_t shard = 0; shard < meta->shards; ++shard) {
    const std::string name = shard_object_name(shard, meta->gens[shard]);
    if (!backend.exists(Ns::kIndex, name)) continue;
    const auto payload = get_unsealed(backend, name);
    const auto recs = payload ? parse_page(*payload, shard) : std::nullopt;
    if (!recs) {
      ++report.corrupt_objects;
      continue;
    }
    for (const auto& rec : *recs) live.insert_or_assign(rec.fp, rec.manifest);
  }
  for (std::uint64_t seq = meta->first_seq;; ++seq) {
    if (!backend.exists(Ns::kIndex, journal_object_name(seq))) break;
    const auto payload = get_unsealed(backend, journal_object_name(seq));
    const auto recs = payload ? parse_journal(*payload) : std::nullopt;
    if (!recs) {
      ++report.corrupt_objects;
      break;
    }
    for (const auto& jr : *recs) {
      if (jr.op == Byte{1}) {
        live.insert_or_assign(jr.rec.fp, jr.rec.manifest);
      } else {
        live.erase(jr.rec.fp);
      }
    }
  }

  report.entries = live.size();
  for (const auto& [fp, manifest] : live) {
    if (!backend.exists(Ns::kManifest, manifest.hex())) ++report.stale_entries;
  }
  for (const auto& name : backend.list(Ns::kHook)) {
    const auto bytes = hex_decode(name);
    if (!bytes || bytes->size() != Digest::kSize) continue;
    if (live.find(read_digest(bytes->data())) == live.end()) {
      ++report.unindexed_hooks;
    }
  }
  return report;
}

void rebuild_index(StorageBackend& backend, PersistentIndexConfig config) {
  // Preserve the persisted geometry when the old meta is readable.
  if (const auto meta_payload = get_unsealed(backend, kMetaName)) {
    if (const auto meta = parse_meta(*meta_payload)) {
      config.shards = meta->shards;
    }
  }
  for (const auto& name : backend.list(Ns::kIndex)) {
    backend.remove(Ns::kIndex, name);
  }
  // A fresh PersistentIndex over the cleared namespace, re-fed from the
  // hooks (the authoritative fingerprint source), then compacted so the
  // result is pure bucket pages with an empty journal.
  PersistentIndex index(backend, config);
  for (const auto& name : backend.list(Ns::kHook)) {
    const auto bytes = hex_decode(name);
    if (!bytes || bytes->size() != Digest::kSize) continue;
    Digest fp;
    std::copy(bytes->begin(), bytes->end(), fp.bytes.begin());
    std::optional<ByteVec> target;
    try {
      target = backend.get(Ns::kHook, name);
    } catch (const StoreError&) {
      continue;
    }
    if (!target || target->size() != Digest::kSize) continue;
    Digest manifest;
    std::copy(target->begin(), target->end(), manifest.bytes.begin());
    index.put(fp, IndexEntry{manifest, 0});
  }
  index.compact();
  index.flush();
}

}  // namespace mhd
