// PersistentIndex — the disk-resident FingerprintIndex (--index-impl=disk).
//
// Layout, all under Ns::kIndex and all CRC-sealed with framing::seal_object
// (self-verifying even on a bare backend; under FramedBackend the outer
// frame verifies a second time):
//
//   meta                     geometry + shard page generations + journal
//                            window; the COMMIT POINT of every compaction
//   shard-<s>-g<gen>         sorted (fp, manifest, offset) bucket page;
//                            only the generation named by meta is live
//   journal-<seq>            append-only batches of put/erase records
//                            covering everything newer than the pages
//   bloom                    BloomFilter snapshot (negative-lookup front)
//   warm                     ManifestCache residency list (MRU first) for
//                            warm restart
//
// Write path: puts go to an in-RAM delta map, the bloom filter, and a
// pending journal batch (sealed to a journal-<seq> object every
// journal_batch records). When the delta reaches compact_threshold, the
// journal is folded into the bucket pages shadow-paged: new page
// generations are written first, meta commits them, and only then are old
// pages and consumed journal segments removed. Every crash window is safe:
//  * before meta: old pages + intact journal replay to the same state
//    (journal records are absolute, so replay is idempotent);
//  * a torn meta: the index rebuilds from the hooks namespace, which stays
//    authoritative (entries re-learned, offsets degrade to 0);
//  * after meta: stale pages/segments are swept on the next open.
// A torn journal tail (partial segment) is truncated on reopen — records
// before it are replayed, the tear and everything after are dropped.
//
// Reads go delta-first, then through a weight-bounded LruCache of bucket
// pages (write-back: compaction mutates pages in cache and flushes dirty
// ones before the meta commit), fronted by the bloom filter. RAM is
// bounded by cache_bytes + the delta/bloom, not by index size.
//
// Concurrency (the multi-tenant daemon's requirement): point operations
// from many sessions run in parallel under FINE-GRAINED SHARD LOCKING.
// The lock hierarchy, outermost first:
//
//   struct_mu_ (shared_mutex)   point ops hold it shared; structural
//                               changes (compaction, flush, warm/aux
//                               writes, rebuild) hold it exclusive
//   shard mutex                 one per bucket shard, serializes the
//                               delta entries of that shard
//   leaf mutexes                bloom_mu_ / cache_mu_ / journal_mu_,
//                               acquired one at a time, never nested
//
// Journal appends are GROUP-COMMITTED: sessions push records into one
// shared pending batch under journal_mu_, and whichever session crosses
// the batch boundary seals the whole batch — records from all sessions —
// as a single journal segment (one backend write instead of one per
// record). journal_records_appended()/journal_segments_written() expose
// the achieved batching ratio.
//
// The index is advisory: a lost entry costs a missed duplicate, never a
// wrong restore. Lookups may race puts and observe either order — both
// answers are correct by that contract. The *backend* must tolerate
// concurrent calls (the daemon interposes SyncBackend; single-threaded
// callers need nothing).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "mhd/container/bloom_filter.h"
#include "mhd/container/lru_cache.h"
#include "mhd/index/fingerprint_index.h"
#include "mhd/store/backend.h"

namespace mhd {

struct PersistentIndexConfig {
  /// Bucket-page count; rounded up to a power of two, clamped to [1,4096].
  std::uint32_t shards = 64;
  /// Weight budget of the hot-page LruCache (--index-cache-mb).
  std::uint64_t cache_bytes = 8ull << 20;
  /// Bloom sizing (--index-bloom-bits-per-key) for `expected_keys`.
  std::uint32_t bloom_bits_per_key = 10;
  std::uint64_t expected_keys = 1u << 20;
  /// Journal records buffered in RAM before a segment object is written —
  /// the group-commit window shared by every concurrent session.
  std::uint32_t journal_batch = 64;
  /// Delta entries that trigger folding the journal into the pages.
  std::uint64_t compact_threshold = 4096;
};

namespace index_detail {
/// One bucket-page / journal record as stored on disk (56 bytes framed:
/// fingerprint, owning manifest, chunk offset, container id; journal
/// records carry one extra op byte in front).
struct Rec {
  Digest fp;
  Digest manifest;
  std::uint64_t offset = 0;
  std::uint64_t container = IndexEntry::kNoContainer;
};
}  // namespace index_detail

class PersistentIndex final : public FingerprintIndex {
 public:
  explicit PersistentIndex(StorageBackend& backend,
                           PersistentIndexConfig config = {});
  /// Deliberately does NOT flush: an unflushed close is crash-equivalent
  /// and recovery must cope. Engines flush explicitly in finish().
  ~PersistentIndex() override = default;

  PersistentIndex(const PersistentIndex&) = delete;
  PersistentIndex& operator=(const PersistentIndex&) = delete;

  /// True when `backend` holds a persistent index (its meta object).
  static bool present(const StorageBackend& backend);

  const char* impl_name() const override { return "disk"; }
  std::optional<IndexEntry> lookup(const Digest& fp) override;
  void put(const Digest& fp, const IndexEntry& entry) override;
  bool erase(const Digest& fp) override;
  bool maybe_contains(const Digest& fp) const override;
  void flush() override;
  std::uint64_t entry_count() const override;
  std::uint64_t ram_bytes() const override;
  std::uint64_t ram_high_water() const override;

  /// Folds delta + journal into the bucket pages (see file comment).
  void compact();

  std::uint64_t journal_segment_count() const;
  std::uint64_t compaction_count() const;
  /// High-water of the page cache's weight alone — the budget-bounded part.
  std::uint64_t page_cache_ram_high_water() const;
  std::uint64_t page_cache_budget() const { return cfg_.cache_bytes; }

  /// Group-commit observability: put/erase records appended since open vs
  /// journal segment objects actually written. records/segments is the
  /// achieved batch size — with S concurrent sessions it approaches
  /// journal_batch, i.e. one backend write absorbs a whole cross-session
  /// window of appends.
  std::uint64_t journal_records_appended() const;
  std::uint64_t journal_segments_written() const;

  /// Warm-restart residency snapshot: manifest names MRU-first.
  void save_warm_list(const std::vector<Digest>& names);
  std::vector<Digest> load_warm_list() const;

  /// Engine-private sidecar blobs stored alongside the index (e.g. FBC's
  /// frequency sketch), sealed like every other index object. A missing or
  /// corrupt blob simply reads back as nullopt — aux state is advisory.
  void save_aux(const std::string& name, ByteSpan payload);
  std::optional<ByteVec> load_aux(const std::string& name) const;

  /// Bucket pages that failed their CRC and were treated as empty (lost
  /// entries degrade to missed duplicates, never wrong data).
  std::uint64_t corrupt_page_reads() const;

 private:
  struct Page {
    std::vector<index_detail::Rec> recs;  ///< sorted by fp
    bool dirty = false;
    /// Generation this page will be written as (meaningful while dirty).
    std::uint32_t pending_gen = 0;
    std::uint64_t weight() const { return 64 + recs.size() * 48; }
  };
  /// Delta value: engaged = put, disengaged = erase tombstone.
  using DeltaValue = std::optional<IndexEntry>;

  /// Per-shard write state: the shard's slice of the delta map under its
  /// own mutex. Point ops lock exactly one shard; compaction (exclusive
  /// on struct_mu_) owns them all without locking.
  struct Shard {
    std::mutex mu;
    std::unordered_map<Digest, DeltaValue, DigestHasher> delta;
  };

  std::uint32_t shard_of(const Digest& fp) const;
  /// Sorted-page probe: loads the shard page through the cache and copies
  /// the match out, all under cache_mu_ (the returned value never aliases
  /// cache memory). Counts a corrupt page exactly once per load.
  std::optional<IndexEntry> probe_page(std::uint32_t shard, const Digest& fp);
  /// Ground-truth point lookup (delta, then page — no bloom): the ctor's
  /// journal replay and the no-op-put check use it.
  std::optional<IndexEntry> lookup_quiet(const Digest& fp);
  void write_page_at(std::uint32_t shard, std::uint32_t gen,
                     const Page& page);
  /// Appends one record to the shared pending batch (journal_mu_), sealing
  /// a full batch as one segment — the group-commit point.
  void append_journal_record(Byte op, const Digest& fp, const IndexEntry& e);
  /// Caller holds journal_mu_ or struct_mu_ exclusively.
  void write_pending_segment_locked();
  void rebuild_bloom_from_pages();
  void replay_journal();
  void sweep_stale_objects();
  void rebuild_from_hooks();
  /// Caller holds struct_mu_ exclusively (or is the constructor).
  void compact_exclusive();
  void write_meta();
  void write_bloom();
  void init_shards();
  std::uint64_t ram_bytes_estimate() const;
  void note_ram();

  StorageBackend& backend_;
  PersistentIndexConfig cfg_;
  BloomFilter bloom_;
  LruCache<std::uint32_t, Page> cache_;
  std::vector<std::unique_ptr<Shard>> shards_;

  ByteVec pending_;               ///< serialized records of the open batch
  std::uint32_t pending_count_ = 0;
  std::vector<std::uint32_t> gens_;  ///< live generation per shard
  std::uint64_t first_seq_ = 0;      ///< oldest live journal segment
  std::uint64_t next_seq_ = 0;       ///< next segment number to write
  std::uint64_t page_count_ = 0;     ///< entries folded into pages (meta)
  std::uint64_t compactions_ = 0;
  std::uint64_t corrupt_pages_ = 0;        ///< guarded by cache_mu_
  std::uint64_t page_cache_high_water_ = 0;  ///< guarded by cache_mu_

  std::atomic<std::uint64_t> count_{0};        ///< exact live entry count
  std::atomic<std::uint64_t> delta_total_{0};  ///< entries across shards
  std::atomic<std::uint64_t> journal_records_{0};
  std::atomic<std::uint64_t> journal_segments_{0};
  std::atomic<std::uint64_t> ram_high_water_{0};

  /// Lock hierarchy — see file comment. struct_mu_ > shard.mu > leaves.
  mutable std::shared_mutex struct_mu_;
  mutable std::mutex bloom_mu_;
  mutable std::mutex cache_mu_;
  mutable std::mutex journal_mu_;
};

/// True when the backend holds a persistent fingerprint index.
bool index_present(const StorageBackend& backend);

/// Read-only cross-check of the persistent index against the live
/// hooks/manifests (scrub integration; never mutates the backend).
struct IndexCheckReport {
  bool meta_ok = false;
  std::uint64_t entries = 0;
  /// Index entries whose target manifest no longer exists (e.g. after an
  /// out-of-band deletion): must be 0 on a healthy repository.
  std::uint64_t stale_entries = 0;
  /// Hooks with no index entry (informational: a lost journal tail —
  /// the duplicates are simply re-learned through the hooks).
  std::uint64_t unindexed_hooks = 0;
  std::uint64_t corrupt_objects = 0;
};
IndexCheckReport check_index(const StorageBackend& backend);

/// Drops every index object and rebuilds the index from the hooks
/// namespace (the authoritative fingerprint source), preserving the
/// persisted geometry when the old meta is readable. Used by GC (swept
/// manifests must leave no index entries) and fsck's repair path.
void rebuild_index(StorageBackend& backend, PersistentIndexConfig config = {});

}  // namespace mhd
