#include "mhd/index/sampled_index.h"

#include <algorithm>

#include "mhd/index/mem_index.h"
#include "mhd/index/similarity/sampling.h"
#include "mhd/store/framing.h"
#include "mhd/store/store_errors.h"
#include "mhd/util/hex.h"

namespace mhd {

namespace {

constexpr std::uint32_t kMetaMagic = 0x314D534Du;   // "MSM1"
constexpr std::uint32_t kStateMagic = 0x3153534Du;  // "MSS1"
constexpr std::uint32_t kWarmMagic = 0x3157534Du;   // "MSW1"
constexpr std::uint32_t kFormatVersion = 1;

// The "sampled-" prefix keeps this family disjoint from the disk index's
// objects inside the shared Ns::kIndex namespace: each family's rebuild
// clears only its own names.
constexpr char kMetaName[] = "sampled-meta";
constexpr char kWarmName[] = "sampled-warm";
constexpr char kStatePrefix[] = "sampled-state-g";
constexpr char kAuxPrefix[] = "sampled-aux-";

std::string state_object_name(std::uint32_t gen) {
  return kStatePrefix + std::to_string(gen);
}

Digest read_digest(const Byte* p) {
  Digest d;
  std::copy(p, p + Digest::kSize, d.bytes.begin());
  return d;
}

/// Reads and unseals one index object, peeling double framing exactly like
/// the disk index's reader (works on the raw backend for fsck and on the
/// logical view for engines alike).
std::optional<ByteVec> get_unsealed(const StorageBackend& backend,
                                    const std::string& name) {
  std::optional<ByteVec> framed;
  try {
    framed = backend.get(Ns::kIndex, name);
  } catch (const StoreError&) {
    return std::nullopt;
  }
  if (!framed) return std::nullopt;
  auto payload = framing::unseal_object(*framed);
  if (!payload) return std::nullopt;
  while (auto inner = framing::unseal_object(*payload)) payload = inner;
  return payload;
}

struct MetaView {
  std::uint32_t sample_bits = 0;
  std::uint32_t max_per_hook = 0;
  std::uint32_t generation = 0;
  std::uint64_t champion_loads = 0;
};

ByteVec serialize_meta(const MetaView& m) {
  ByteVec out;
  append_le(out, kMetaMagic);
  append_le(out, kFormatVersion);
  append_le(out, m.sample_bits);
  append_le(out, m.max_per_hook);
  append_le(out, m.generation);
  append_le(out, m.champion_loads);
  return out;
}

std::optional<MetaView> parse_meta(ByteSpan payload) {
  constexpr std::size_t kSize = 4 * 5 + 8;
  if (payload.size() != kSize) return std::nullopt;
  if (load_le<std::uint32_t>(payload.data()) != kMetaMagic) return std::nullopt;
  if (load_le<std::uint32_t>(payload.data() + 4) != kFormatVersion) {
    return std::nullopt;
  }
  MetaView m;
  m.sample_bits = load_le<std::uint32_t>(payload.data() + 8);
  m.max_per_hook = load_le<std::uint32_t>(payload.data() + 12);
  m.generation = load_le<std::uint32_t>(payload.data() + 16);
  m.champion_loads = load_le<std::uint64_t>(payload.data() + 20);
  if (m.sample_bits > 64 || m.max_per_hook == 0 || m.max_per_hook > 1024) {
    return std::nullopt;
  }
  return m;
}

}  // namespace

SampledIndex::SampledIndex(StorageBackend& backend, SampledIndexConfig config)
    : backend_(backend),
      cfg_(config),
      hooks_(config.max_manifests_per_hook) {
  // Normalize to what parse_meta accepts, so a flushed meta always reopens.
  cfg_.sample_bits = std::min<std::uint32_t>(cfg_.sample_bits, 64);
  cfg_.max_manifests_per_hook =
      std::clamp<std::uint32_t>(cfg_.max_manifests_per_hook, 1, 1024);
  open();
}

bool SampledIndex::present(const StorageBackend& backend) {
  return backend.exists(Ns::kIndex, kMetaName);
}

void SampledIndex::open() {
  const auto meta_payload = get_unsealed(backend_, kMetaName);
  const auto meta = meta_payload ? parse_meta(*meta_payload) : std::nullopt;
  if (meta) {
    // Geometry is owned by the repository (like the disk index's shards):
    // adopting it keeps the hook predicate stable across reopen even when
    // the caller passes different knobs.
    cfg_.sample_bits = meta->sample_bits;
    cfg_.max_manifests_per_hook = meta->max_per_hook;
    hooks_ = similarity::HookTable(cfg_.max_manifests_per_hook);
    generation_ = meta->generation;
    champion_loads_ = meta->champion_loads;
    if (load_state(generation_)) {
      sweep_stale_states();
      note_ram();
      return;
    }
    // Committed meta pointing at an unreadable state: corruption, not a
    // crash window (state is written before the meta commit). Self-heal.
    rebuild_from_hooks();
    note_ram();
    return;
  }
  if (backend_.exists(Ns::kIndex, kMetaName)) {
    // Torn meta: the hooks namespace stays authoritative.
    rebuild_from_hooks();
  }
  // else: fresh tier — empty state, meta appears at the first flush().
  note_ram();
}

bool SampledIndex::load_state(std::uint32_t gen) {
  const std::string name = state_object_name(gen);
  if (!backend_.exists(Ns::kIndex, name)) {
    // A fresh index commits generation 0 with no state blob yet.
    return gen == 0;
  }
  const auto payload = get_unsealed(backend_, name);
  if (!payload || payload->size() < 8) return false;
  if (load_le<std::uint32_t>(payload->data()) != kStateMagic) return false;
  if (load_le<std::uint32_t>(payload->data() + 4) != kFormatVersion) {
    return false;
  }
  const Byte* p = payload->data() + 8;
  const Byte* end = payload->data() + payload->size();
  if (!hooks_.deserialize(p, end)) return false;
  if (!meter_.deserialize(p, end)) return false;
  return p == end;
}

void SampledIndex::sweep_stale_states() {
  const std::string live = state_object_name(generation_);
  for (const auto& name : backend_.list(Ns::kIndex)) {
    if (name.rfind(kStatePrefix, 0) != 0) continue;
    if (name == live) continue;
    backend_.remove(Ns::kIndex, name);
  }
}

void SampledIndex::flush() {
  const std::uint32_t next = generation_ + 1;
  ByteVec state;
  append_le(state, kStateMagic);
  append_le(state, kFormatVersion);
  hooks_.serialize(state);
  meter_.serialize(state);
  backend_.put(Ns::kIndex, state_object_name(next),
               framing::seal_object(state));
  MetaView m;
  m.sample_bits = cfg_.sample_bits;
  m.max_per_hook = cfg_.max_manifests_per_hook;
  m.generation = next;
  m.champion_loads = champion_loads_;
  backend_.put(Ns::kIndex, kMetaName, framing::seal_object(serialize_meta(m)));
  // Only after the commit point does the previous generation die.
  const std::string old_state = state_object_name(generation_);
  if (backend_.exists(Ns::kIndex, old_state)) {
    backend_.remove(Ns::kIndex, old_state);
  }
  generation_ = next;
}

std::optional<IndexEntry> SampledIndex::lookup(const Digest& fp) {
  const auto found = resident_.find(fp);
  if (found == resident_.end()) return std::nullopt;
  return found->second;
}

void SampledIndex::put(const Digest& fp, const IndexEntry& entry) {
  resident_.insert_or_assign(fp, entry);
  if (similarity::is_hook(fp, cfg_.sample_bits)) {
    hooks_.associate(fp.prefix64(), entry.manifest);
  }
  note_ram();
}

bool SampledIndex::erase(const Digest& fp) {
  return resident_.erase(fp) > 0;
}

bool SampledIndex::maybe_contains(const Digest& fp) const {
  return resident_.find(fp) != resident_.end();
}

std::uint64_t SampledIndex::entry_count() const { return resident_.size(); }

std::uint64_t SampledIndex::ram_bytes() const {
  return resident_.size() * MemIndex::kEntryRamBytes + hooks_.ram_bytes();
}

std::uint64_t SampledIndex::ram_high_water() const { return ram_high_water_; }

void SampledIndex::note_ram() {
  ram_high_water_ = std::max(ram_high_water_, ram_bytes());
}

std::vector<Digest> SampledIndex::champions_for(const Digest& fp) const {
  if (!similarity::is_hook(fp, cfg_.sample_bits)) return {};
  return hooks_.champions(fp.prefix64(), cfg_.max_champions);
}

void SampledIndex::save_aux(const std::string& name, ByteSpan payload) {
  backend_.put(Ns::kIndex, kAuxPrefix + name, framing::seal_object(payload));
}

std::optional<ByteVec> SampledIndex::load_aux(const std::string& name) const {
  return get_unsealed(backend_, kAuxPrefix + name);
}

void SampledIndex::save_warm_list(const std::vector<Digest>& names) {
  ByteVec payload;
  payload.reserve(16 + names.size() * Digest::kSize);
  append_le(payload, kWarmMagic);
  append_le(payload, kFormatVersion);
  append_le(payload, static_cast<std::uint64_t>(names.size()));
  for (const auto& name : names) append(payload, name.span());
  backend_.put(Ns::kIndex, kWarmName, framing::seal_object(payload));
}

std::vector<Digest> SampledIndex::load_warm_list() const {
  const auto payload = get_unsealed(backend_, kWarmName);
  if (!payload) return {};
  constexpr std::size_t kHeader = 4 + 4 + 8;
  if (payload->size() < kHeader) return {};
  if (load_le<std::uint32_t>(payload->data()) != kWarmMagic) return {};
  if (load_le<std::uint32_t>(payload->data() + 4) != kFormatVersion) return {};
  const auto count = load_le<std::uint64_t>(payload->data() + 8);
  if (payload->size() != kHeader + count * Digest::kSize) return {};
  std::vector<Digest> names;
  names.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    names.push_back(read_digest(payload->data() + kHeader + i * Digest::kSize));
  }
  return names;
}

void SampledIndex::rebuild_from_hooks() {
  hooks_.clear();
  meter_.clear();
  champion_loads_ = 0;
  generation_ = 0;
  for (const auto& name : backend_.list(Ns::kHook)) {
    const auto bytes = hex_decode(name);
    if (!bytes || bytes->size() != Digest::kSize) continue;
    const Digest fp = read_digest(bytes->data());
    // Chunks already stored must not read as future misses.
    meter_.seed(fp.prefix64());
    if (!similarity::is_hook(fp, cfg_.sample_bits)) continue;
    std::optional<ByteVec> target;
    try {
      target = backend_.get(Ns::kHook, name);
    } catch (const StoreError&) {
      continue;
    }
    if (!target || target->size() != Digest::kSize) continue;
    hooks_.associate(fp.prefix64(), read_digest(target->data()));
  }
  flush();
  sweep_stale_states();
  note_ram();
}

bool sampled_index_present(const StorageBackend& backend) {
  return SampledIndex::present(backend);
}

SampledCheckReport check_sampled_index(const StorageBackend& backend) {
  SampledCheckReport report;
  const auto meta_payload = get_unsealed(backend, kMetaName);
  const auto meta = meta_payload ? parse_meta(*meta_payload) : std::nullopt;
  if (!meta) {
    if (backend.exists(Ns::kIndex, kMetaName)) ++report.corrupt_objects;
    return report;
  }
  report.meta_ok = true;
  const std::string state_name = state_object_name(meta->generation);
  if (!backend.exists(Ns::kIndex, state_name)) {
    if (meta->generation != 0) ++report.corrupt_objects;
    return report;
  }
  const auto payload = get_unsealed(backend, state_name);
  similarity::HookTable hooks(meta->max_per_hook);
  similarity::LossMeter meter;
  bool ok = payload && payload->size() >= 8 &&
            load_le<std::uint32_t>(payload->data()) == kStateMagic &&
            load_le<std::uint32_t>(payload->data() + 4) == kFormatVersion;
  if (ok) {
    const Byte* p = payload->data() + 8;
    const Byte* end = payload->data() + payload->size();
    ok = hooks.deserialize(p, end) && meter.deserialize(p, end) && p == end;
  }
  if (!ok) {
    ++report.corrupt_objects;
    return report;
  }
  report.hook_entries = hooks.hook_count();
  report.champion_refs = hooks.champion_refs();
  hooks.for_each([&](std::uint64_t, const std::vector<Digest>& champions) {
    for (const Digest& m : champions) {
      if (!backend.exists(Ns::kManifest, m.hex())) ++report.stale_champions;
    }
  });
  return report;
}

void rebuild_sampled_index(StorageBackend& backend,
                           SampledIndexConfig config) {
  // Preserve the persisted geometry when the old meta is readable, exactly
  // like the disk index's rebuild preserves its shard count.
  if (const auto meta_payload = get_unsealed(backend, kMetaName)) {
    if (const auto meta = parse_meta(*meta_payload)) {
      config.sample_bits = meta->sample_bits;
      config.max_manifests_per_hook = meta->max_per_hook;
    }
  }
  // Clear only this family's objects (the disk index may coexist under the
  // same namespace), keeping the meta until it is atomically overwritten —
  // the geometry must survive every kill window (see rebuild_index).
  for (const auto& name : backend.list(Ns::kIndex)) {
    if (name.rfind("sampled-", 0) != 0) continue;
    if (name == kMetaName) continue;
    backend.remove(Ns::kIndex, name);
  }
  MetaView fresh;
  fresh.sample_bits = config.sample_bits;
  fresh.max_per_hook = config.max_manifests_per_hook;
  backend.put(Ns::kIndex, kMetaName,
              framing::seal_object(serialize_meta(fresh)));
  SampledIndex index(backend, config);
  index.rebuild_from_hooks();
}

}  // namespace mhd
