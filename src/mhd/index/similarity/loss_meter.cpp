#include "mhd/index/similarity/loss_meter.h"

#include <algorithm>
#include <vector>

namespace mhd::similarity {

void LossMeter::serialize(ByteVec& out) const {
  append_le(out, missed_bytes_);
  append_le(out, missed_chunks_);
  std::vector<std::uint64_t> prefixes(seen_.begin(), seen_.end());
  std::sort(prefixes.begin(), prefixes.end());
  append_le(out, static_cast<std::uint64_t>(prefixes.size()));
  for (const std::uint64_t p : prefixes) append_le(out, p);
}

bool LossMeter::deserialize(const Byte*& p, const Byte* end) {
  clear();
  if (end - p < 24) return false;
  missed_bytes_ = load_le<std::uint64_t>(p);
  missed_chunks_ = load_le<std::uint64_t>(p + 8);
  const auto count = load_le<std::uint64_t>(p + 16);
  p += 24;
  if (static_cast<std::uint64_t>(end - p) < count * 8) {
    return clear(), false;
  }
  seen_.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i, p += 8) {
    seen_.insert(load_le<std::uint64_t>(p));
  }
  return true;
}

}  // namespace mhd::similarity
