// HookTable — the sparse RAM-resident half of the sampled similarity tier:
// sampled fingerprint prefix → the champion manifests that contain it.
//
// This is the structure whose size realizes the tier's RAM claim: it holds
// one entry per *hook* (expected chunks / 2^sample_bits), not one per
// fingerprint, and each entry is a short champion list capped at
// max_manifests_per_hook. Champions deliberately SURVIVE manifest-cache
// eviction — that persistence across the working set is what lets a later
// hook hit pull an old segment back for full-segment dedup.
//
// Determinism contract (warm restart must be bit-identical to an
// uninterrupted run): associate() is a no-op when the manifest is already
// listed — no reordering on re-sighting — and otherwise prepends and trims
// the oldest. The table is then a pure function of the sequence of
// first-association events, and serialize() emits hooks in sorted key
// order so equal tables produce equal bytes.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mhd/hash/digest.h"
#include "mhd/util/bytes.h"

namespace mhd::similarity {

class HookTable {
 public:
  /// Estimated resident bytes per hook beyond its champion digests
  /// (unordered_map node + key + vector header + bucket share).
  static constexpr std::uint64_t kHookRamBytes = 72;

  explicit HookTable(std::uint32_t max_manifests_per_hook)
      : max_per_hook_(max_manifests_per_hook == 0 ? 1
                                                  : max_manifests_per_hook) {}

  /// Associates `manifest` as the newest champion of `hook`. No-op when it
  /// is already listed (see determinism contract); otherwise prepends and
  /// drops the oldest champion beyond max_manifests_per_hook.
  void associate(std::uint64_t hook, const Digest& manifest);

  /// The hook's champions, newest first, at most `max_out`. Empty when the
  /// hook is unknown.
  std::vector<Digest> champions(std::uint64_t hook,
                                std::uint32_t max_out) const;

  std::uint64_t hook_count() const { return table_.size(); }
  std::uint64_t champion_refs() const { return champion_refs_; }
  std::uint64_t ram_bytes() const {
    return table_.size() * kHookRamBytes + champion_refs_ * Digest::kSize;
  }

  /// Visits every (hook, champions) pair — fsck's cross-check walk.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [hook, champions] : table_) fn(hook, champions);
  }

  void clear();

  /// Appends [count u64][per hook: key u64, n u32, n digests], hooks in
  /// ascending key order (equal tables ⇒ equal bytes).
  void serialize(ByteVec& out) const;
  /// Parses a serialize() image at `p`, advancing it past the section.
  /// False (table cleared) on any structural violation.
  bool deserialize(const Byte*& p, const Byte* end);

 private:
  std::unordered_map<std::uint64_t, std::vector<Digest>> table_;
  std::uint64_t champion_refs_ = 0;
  std::uint32_t max_per_hook_;
};

}  // namespace mhd::similarity
