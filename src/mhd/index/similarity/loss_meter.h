// LossMeter — measures the dedup the sampled tier gives up, instead of
// hiding it (the ISSUE's "stored again, and that loss is measured").
//
// The meter watches the stream of freshly STORED chunks (every entry of
// every freshly built manifest). A 64-bit fingerprint prefix appearing in
// that stream twice means the same chunk was written twice — a duplicate
// the exact tiers would have caught and the sampled tier missed. Summing
// those bytes yields sampled_missed_dup_bytes, the dedup-ratio delta vs
// exact reported in metrics/JSON and checked by the differential suite.
//
// The seen-set is O(total stored chunks) and exists only to measure: it is
// accounted as ram_bytes() here but deliberately EXCLUDED from the
// SampledIndex's index RAM (the tier's RAM claim covers the structures
// dedup needs — resident map + hook table — not the meter).
#pragma once

#include <cstdint>
#include <unordered_set>

#include "mhd/util/bytes.h"

namespace mhd::similarity {

class LossMeter {
 public:
  /// Estimated resident bytes per seen prefix (u64 + node + bucket share).
  static constexpr std::uint64_t kSeenRamBytes = 40;

  /// Records a freshly stored chunk. A re-sighted prefix counts its bytes
  /// as a missed duplicate.
  void note_stored(std::uint64_t prefix64, std::uint64_t bytes) {
    if (!seen_.insert(prefix64).second) {
      ++missed_chunks_;
      missed_bytes_ += bytes;
    }
  }

  /// Marks a prefix as seen without loss accounting (rebuild from hooks:
  /// the chunks already stored must not read as future misses).
  void seed(std::uint64_t prefix64) { seen_.insert(prefix64); }

  std::uint64_t missed_dup_bytes() const { return missed_bytes_; }
  std::uint64_t missed_dup_chunks() const { return missed_chunks_; }
  std::uint64_t seen_count() const { return seen_.size(); }
  std::uint64_t ram_bytes() const { return seen_.size() * kSeenRamBytes; }

  void clear() {
    seen_.clear();
    missed_bytes_ = missed_chunks_ = 0;
  }

  /// Appends [missed_bytes u64][missed_chunks u64][count u64][prefixes],
  /// prefixes ascending (equal meters ⇒ equal bytes).
  void serialize(ByteVec& out) const;
  /// Parses a serialize() image at `p`, advancing past it. False (meter
  /// cleared) on structural violation.
  bool deserialize(const Byte*& p, const Byte* end);

 private:
  std::unordered_set<std::uint64_t> seen_;
  std::uint64_t missed_bytes_ = 0;
  std::uint64_t missed_chunks_ = 0;
};

}  // namespace mhd::similarity
