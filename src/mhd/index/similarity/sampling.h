// Min-hash-style fingerprint sampling for the sampled similarity tier
// (--index-impl=sampled, DESIGN.md "Sampled similarity index").
//
// The sampling invariant: a fingerprint is a HOOK iff the low
// `sample_bits` bits of its 64-bit prefix are zero. SHA-1 output is
// uniform, so the expected hook rate is one per 2^sample_bits chunks, and
// — crucially — the predicate is a pure function of the fingerprint. Two
// segments sharing data therefore sample the SAME hooks (the min-hash
// property sparse indexing leans on), and every process, restart, or
// rebuild derives the identical hook set from the identical chunks.
#pragma once

#include <cstdint>

#include "mhd/hash/digest.h"

namespace mhd::similarity {

/// Hook predicate over a fingerprint's 64-bit prefix. sample_bits >= 64
/// degenerates to "only the all-zero prefix", never undefined behavior.
inline bool is_hook(std::uint64_t prefix64, std::uint32_t sample_bits) {
  const std::uint64_t mask =
      sample_bits >= 64 ? ~0ull : ((1ull << sample_bits) - 1);
  return (prefix64 & mask) == 0;
}

inline bool is_hook(const Digest& fp, std::uint32_t sample_bits) {
  return is_hook(fp.prefix64(), sample_bits);
}

}  // namespace mhd::similarity
