#include "mhd/index/similarity/hook_table.h"

#include <algorithm>

namespace mhd::similarity {

namespace {

Digest read_digest(const Byte* p) {
  Digest d;
  std::copy(p, p + Digest::kSize, d.bytes.begin());
  return d;
}

}  // namespace

void HookTable::associate(std::uint64_t hook, const Digest& manifest) {
  auto& champions = table_[hook];
  if (std::find(champions.begin(), champions.end(), manifest) !=
      champions.end()) {
    return;
  }
  champions.insert(champions.begin(), manifest);
  ++champion_refs_;
  if (champions.size() > max_per_hook_) {
    champions.pop_back();
    --champion_refs_;
  }
}

std::vector<Digest> HookTable::champions(std::uint64_t hook,
                                         std::uint32_t max_out) const {
  const auto found = table_.find(hook);
  if (found == table_.end()) return {};
  const auto& list = found->second;
  const std::size_t n = std::min<std::size_t>(list.size(), max_out);
  return std::vector<Digest>(list.begin(), list.begin() + n);
}

void HookTable::clear() {
  table_.clear();
  champion_refs_ = 0;
}

void HookTable::serialize(ByteVec& out) const {
  std::vector<std::uint64_t> keys;
  keys.reserve(table_.size());
  for (const auto& [hook, champions] : table_) keys.push_back(hook);
  std::sort(keys.begin(), keys.end());
  append_le(out, static_cast<std::uint64_t>(keys.size()));
  for (const std::uint64_t key : keys) {
    const auto& champions = table_.at(key);
    append_le(out, key);
    append_le(out, static_cast<std::uint32_t>(champions.size()));
    for (const Digest& m : champions) append(out, m.span());
  }
}

bool HookTable::deserialize(const Byte*& p, const Byte* end) {
  clear();
  if (end - p < 8) return false;
  const auto count = load_le<std::uint64_t>(p);
  p += 8;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (end - p < 12) return clear(), false;
    const auto key = load_le<std::uint64_t>(p);
    const auto n = load_le<std::uint32_t>(p + 8);
    p += 12;
    if (n == 0 || n > max_per_hook_ ||
        static_cast<std::uint64_t>(end - p) < n * Digest::kSize) {
      return clear(), false;
    }
    std::vector<Digest> champions;
    champions.reserve(n);
    for (std::uint32_t j = 0; j < n; ++j, p += Digest::kSize) {
      champions.push_back(read_digest(p));
    }
    champion_refs_ += champions.size();
    table_.emplace(key, std::move(champions));
  }
  return true;
}

}  // namespace mhd::similarity
