// FingerprintIndex — the chunk-fingerprint → owning-manifest map behind
// every duplicate lookup (the paper's Table 3 concern: index RAM, not
// chunk data, is what limits inline deduplication at scale).
//
// Three implementations share this interface:
//
//  * MemIndex — a plain in-RAM hash map with byte accounting. This is the
//    historical behavior (ManifestCache's global map / the engines' hook
//    map) extracted behind the interface; it vanishes on process exit.
//  * PersistentIndex — sharded on-disk bucket pages + an append-only
//    CRC-framed journal under Ns::kIndex, fronted by a BloomFilter for
//    negative lookups and a weight-bounded LruCache of hot pages. It
//    survives restarts with bounded RAM (see persistent_index.h).
//  * SampledIndex — a sampled similarity tier (sparse-indexing style): an
//    exact map only for cache-resident manifests plus a sparse hook table
//    over min-hash-sampled fingerprints pointing at champion manifests.
//    Index RAM scales with the sample rate, not the corpus; the price is a
//    measured dedup-ratio loss, never a wrong restore (see sampled_index.h).
//
// The index is advisory, never authoritative: hooks and manifests remain
// the durable truth, so a lost or stale index entry can only cost a missed
// duplicate (data stored fresh — always correct), never a wrong restore.
#pragma once

#include <cstdint>
#include <optional>

#include "mhd/hash/digest.h"

namespace mhd {

/// Which FingerprintIndex implementation an engine routes through
/// (--index-impl). kMem is bit-identical to the pre-index behavior.
enum class IndexImpl { kMem, kDisk, kSampled };

/// What a fingerprint resolves to: the manifest that indexes the chunk,
/// plus the chunk's offset in its DiskChunk (advisory; rebuilt entries
/// carry offset 0 — engines confirm through the manifest anyway).
struct IndexEntry {
  /// Sentinel for `container`: placement unknown / legacy layout.
  static constexpr std::uint64_t kNoContainer = ~0ull;

  Digest manifest{};
  std::uint64_t offset = 0;
  /// Location record: the container holding the chunk's bytes at `offset`
  /// when the store packs containers (kNoContainer otherwise). Advisory
  /// like everything here — ContainerBackend::locate() on the extent maps
  /// is the authoritative placement query; this copy lets index-only
  /// consumers (stats, future routing) see placement without a map walk.
  std::uint64_t container = kNoContainer;
};

class FingerprintIndex {
 public:
  virtual ~FingerprintIndex() = default;

  virtual const char* impl_name() const = 0;

  /// Resolves a fingerprint; nullopt when absent. Never throws:
  /// PersistentIndex treats a CRC-failing bucket page as empty (and counts
  /// it), so a damaged index entry degrades to "not a duplicate" — stored
  /// fresh, always correct.
  virtual std::optional<IndexEntry> lookup(const Digest& fp) = 0;

  /// Inserts or replaces the entry for `fp`.
  virtual void put(const Digest& fp, const IndexEntry& entry) = 0;

  /// Removes the entry; returns false when it was absent.
  virtual bool erase(const Digest& fp) = 0;

  /// Cheap negative gate (bloom front on the persistent index, exact on
  /// MemIndex): false means lookup() would definitely miss.
  virtual bool maybe_contains(const Digest& fp) const = 0;

  /// Durably persists all buffered state (journal tail, bucket pages,
  /// bloom snapshot). No-op for MemIndex.
  virtual void flush() = 0;

  virtual std::uint64_t entry_count() const = 0;

  /// Current resident bytes of the index's in-RAM structures.
  virtual std::uint64_t ram_bytes() const = 0;
  /// High-water of ram_bytes() over the index's lifetime (TABLE III).
  virtual std::uint64_t ram_high_water() const = 0;
};

}  // namespace mhd
