// MemIndex — the always-resident FingerprintIndex (today's behavior behind
// the interface). A plain unordered_map plus byte accounting, so callers
// that used to grow an anonymous global map now get an index_ram_bytes
// high-water for the paper's Table 3 comparison.
#pragma once

#include <unordered_map>

#include "mhd/index/fingerprint_index.h"

namespace mhd {

class MemIndex final : public FingerprintIndex {
 public:
  /// Estimated resident bytes per entry: the 48-byte key/value payload
  /// plus unordered_map node and bucket overhead on a 64-bit libstdc++.
  static constexpr std::uint64_t kEntryRamBytes = 80;

  const char* impl_name() const override { return "mem"; }

  std::optional<IndexEntry> lookup(const Digest& fp) override;
  void put(const Digest& fp, const IndexEntry& entry) override;
  bool erase(const Digest& fp) override;
  bool maybe_contains(const Digest& fp) const override;
  void flush() override {}

  std::uint64_t entry_count() const override { return map_.size(); }
  std::uint64_t ram_bytes() const override {
    return map_.size() * kEntryRamBytes;
  }
  std::uint64_t ram_high_water() const override { return high_water_; }

 private:
  std::unordered_map<Digest, IndexEntry, DigestHasher> map_;
  std::uint64_t high_water_ = 0;
};

}  // namespace mhd
