// SampledIndex — the sampled similarity FingerprintIndex
// (--index-impl=sampled; DESIGN.md "Sampled similarity index").
//
// Exact indexes (MemIndex, PersistentIndex) hold one entry per stored
// fingerprint, which at the ROADMAP's billion-fingerprint scale blows the
// RAM/IOPS budget. This tier instead composes, per the sparse-indexing /
// extreme-binning family:
//
//  * a RESIDENT MAP — an exact map covering only the ManifestCache's
//    resident manifests (the mirror invariant's normal put/erase flow);
//    bounded by the cache, not the corpus;
//  * a HOOK TABLE (similarity/hook_table.h) — sampled fingerprint prefixes
//    (similarity/sampling.h; --sample-bits) → champion manifests. Hook
//    entries survive eviction, so a later hook hit can reload an old
//    champion segment into the cache for full-segment dedup;
//  * a LOSS METER (similarity/loss_meter.h) — duplicates the tier missed
//    are stored again and MEASURED (sampled_missed_dup_bytes), not hidden.
//
// Persistence, all under Ns::kIndex with a "sampled-" name prefix (the
// disk index's objects coexist; its rebuild spares this family and vice
// versa), each CRC-sealed via framing::seal_object:
//
//   sampled-meta            sample_bits + max_manifests_per_hook (geometry
//                           owned by the repository), live state
//                           generation, persisted counters; COMMIT POINT
//   sampled-state-g<G>      hook table + loss meter image; only the
//                           generation named by meta is live
//   sampled-warm            ManifestCache residency list (MRU first)
//
// flush() is shadow-paged: state generation G+1 is written first, meta
// commits it, then G is removed. Crash windows: before the meta commit the
// old generation stays live (the new one is swept on reopen); a torn meta
// rebuilds from the hooks namespace — the authoritative fingerprint
// source — losing only counters and loss history, never correctness. The
// index remains advisory throughout: any lost state costs missed
// duplicates (measured), never a wrong restore.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "mhd/index/fingerprint_index.h"
#include "mhd/index/similarity/hook_table.h"
#include "mhd/index/similarity/loss_meter.h"
#include "mhd/store/backend.h"

namespace mhd {

struct SampledIndexConfig {
  /// Hook predicate: low `sample_bits` bits of the fingerprint prefix are
  /// zero (--sample-bits). Expected one hook per 2^bits chunks.
  std::uint32_t sample_bits = 6;
  /// Champion manifests loaded per hook hit (--champions).
  std::uint32_t max_champions = 10;
  /// Cap of each hook's champion list.
  std::uint32_t max_manifests_per_hook = 5;
};

class SampledIndex final : public FingerprintIndex {
 public:
  /// Opens (or initializes) the sampled tier over `backend`. When a
  /// sampled-meta exists its geometry (sample_bits, max_manifests_per_hook)
  /// OVERRIDES the config — geometry is owned by the repository, exactly
  /// like the disk index's shard count.
  explicit SampledIndex(StorageBackend& backend,
                        SampledIndexConfig config = {});
  /// Deliberately does NOT flush (crash-equivalent close; engines flush in
  /// finish(), matching PersistentIndex).
  ~SampledIndex() override = default;

  SampledIndex(const SampledIndex&) = delete;
  SampledIndex& operator=(const SampledIndex&) = delete;

  /// True when `backend` holds a sampled tier (its sampled-meta object).
  static bool present(const StorageBackend& backend);

  const char* impl_name() const override { return "sampled"; }
  std::optional<IndexEntry> lookup(const Digest& fp) override;
  void put(const Digest& fp, const IndexEntry& entry) override;
  /// Resident map only: champions deliberately survive eviction.
  bool erase(const Digest& fp) override;
  bool maybe_contains(const Digest& fp) const override;
  /// Shadow-paged persistence of hook table + loss meter + counters.
  void flush() override;
  /// Resident-map entries (the exact, cache-mirroring part). The sparse
  /// part is hook_entries().
  std::uint64_t entry_count() const override;
  /// Resident map + hook table. The loss meter is measurement apparatus,
  /// reported separately (loss_meter_ram_bytes()).
  std::uint64_t ram_bytes() const override;
  std::uint64_t ram_high_water() const override;

  /// The champion manifests to load for `fp`, newest first, capped at
  /// max_champions. Empty when fp is not a hook or the hook is unknown.
  std::vector<Digest> champions_for(const Digest& fp) const;

  /// Counts one champion manifest actually loaded on a hook hit.
  void note_champion_load() { ++champion_loads_; }

  /// Loss metering: every chunk of a freshly BUILT manifest (stored data,
  /// not reloads) flows through here from ManifestCache::insert.
  void note_fresh_chunk(const Digest& hash, std::uint64_t bytes) {
    meter_.note_stored(hash.prefix64(), bytes);
  }

  std::uint32_t sample_bits() const { return cfg_.sample_bits; }
  std::uint64_t hook_entries() const { return hooks_.hook_count(); }
  std::uint64_t champion_loads() const { return champion_loads_; }
  std::uint64_t missed_dup_bytes() const { return meter_.missed_dup_bytes(); }
  std::uint64_t missed_dup_chunks() const {
    return meter_.missed_dup_chunks();
  }
  std::uint64_t loss_meter_ram_bytes() const { return meter_.ram_bytes(); }

  /// Engine-private sidecar blobs (same contract as PersistentIndex's
  /// aux objects; e.g. FBC's frequency sketch), CRC-sealed under
  /// "sampled-aux-<name>" so a rebuild of this tier clears them too.
  void save_aux(const std::string& name, ByteSpan payload);
  std::optional<ByteVec> load_aux(const std::string& name) const;

  /// Warm-restart residency snapshot (same contract as PersistentIndex).
  void save_warm_list(const std::vector<Digest>& names);
  std::vector<Digest> load_warm_list() const;

  /// Re-derives hook table + loss-meter seed from the hooks namespace (the
  /// authoritative fingerprint source) and persists the result. The ctor's
  /// torn-meta recovery and rebuild_sampled_index() both land here;
  /// counters and loss history reset — missed duplicates, never wrong data.
  void rebuild_from_hooks();

 private:
  void open();
  /// True when generation `gen`'s state blob loaded cleanly (an absent
  /// blob at generation 0 is a fresh index, not corruption).
  bool load_state(std::uint32_t gen);
  void sweep_stale_states();
  void note_ram();

  StorageBackend& backend_;
  SampledIndexConfig cfg_;
  std::unordered_map<Digest, IndexEntry, DigestHasher> resident_;
  similarity::HookTable hooks_;
  similarity::LossMeter meter_;
  std::uint32_t generation_ = 0;  ///< live sampled-state generation
  std::uint64_t champion_loads_ = 0;
  std::uint64_t ram_high_water_ = 0;
};

/// True when the backend holds a sampled similarity tier.
bool sampled_index_present(const StorageBackend& backend);

/// Read-only cross-check of the sampled tier against live manifests
/// (fsck integration; never mutates the backend).
struct SampledCheckReport {
  bool meta_ok = false;
  std::uint64_t hook_entries = 0;
  std::uint64_t champion_refs = 0;
  /// Champion references whose manifest no longer exists (e.g. swept by
  /// GC without a rebuild): must be 0 on a healthy repository.
  std::uint64_t stale_champions = 0;
  std::uint64_t corrupt_objects = 0;
};
SampledCheckReport check_sampled_index(const StorageBackend& backend);

/// Drops every sampled-tier object and rebuilds the hook table from the
/// hooks namespace (sampled fingerprints only; the loss meter is seeded so
/// already-stored chunks do not read as future misses), preserving the
/// persisted geometry when the old meta is readable. Spares every
/// non-"sampled-" index object — the disk index may coexist.
void rebuild_sampled_index(StorageBackend& backend,
                           SampledIndexConfig config = {});

}  // namespace mhd
