#include "mhd/store/framing.h"

#include <limits>
#include <stdexcept>

#include "mhd/util/crc32c.h"

namespace mhd::framing {

namespace {

void append_header(ByteVec& out, std::uint32_t magic, ByteSpan payload) {
  if (payload.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error("framing: payload exceeds u32 length field");
  }
  append_le(out, magic);
  append_le(out, static_cast<std::uint32_t>(payload.size()));
  append_le(out, crc32c(0, payload));
}

}  // namespace

ByteVec seal_object(ByteSpan payload) {
  ByteVec out = to_vec(payload);
  append_header(out, kTrailerMagic, payload);  // trailer shares the layout
  return out;
}

std::optional<ByteVec> unseal_object(ByteSpan framed) {
  if (framed.size() < kTrailerBytes) return std::nullopt;
  const Byte* t = framed.data() + framed.size() - kTrailerBytes;
  if (load_le<std::uint32_t>(t) != kTrailerMagic) return std::nullopt;
  const std::uint32_t len = load_le<std::uint32_t>(t + 4);
  if (len != framed.size() - kTrailerBytes) return std::nullopt;
  const ByteSpan payload = framed.first(len);
  if (load_le<std::uint32_t>(t + 8) != crc32c(0, payload)) return std::nullopt;
  return to_vec(payload);
}

ByteVec frame_record(ByteSpan payload) {
  ByteVec out;
  out.reserve(kHeaderBytes + payload.size());
  append_header(out, kRecordMagic, payload);
  append(out, payload);
  return out;
}

ByteVec seal_record(std::uint64_t logical_length) {
  ByteVec len_le;
  append_le(len_le, logical_length);
  ByteVec out;
  out.reserve(kSealBytes);
  append_header(out, kSealMagic, len_le);
  append(out, len_le);
  return out;
}

RecordScan scan_records(ByteSpan framed) {
  RecordScan scan;
  std::size_t pos = 0;
  while (pos + kHeaderBytes <= framed.size()) {
    const Byte* h = framed.data() + pos;
    const std::uint32_t magic = load_le<std::uint32_t>(h);
    if (magic != kRecordMagic && magic != kSealMagic) {
      scan.corrupt = true;
      return scan;
    }
    const std::uint32_t len = load_le<std::uint32_t>(h + 4);
    if (pos + kHeaderBytes + len > framed.size()) {
      // Header intact but the payload runs off the end: a torn last write.
      scan.torn = true;
      return scan;
    }
    const ByteSpan payload = framed.subspan(pos + kHeaderBytes, len);
    if (load_le<std::uint32_t>(h + 8) != crc32c(0, payload)) {
      scan.corrupt = true;
      return scan;
    }
    if (magic == kSealMagic) {
      if (len != 8 ||
          load_le<std::uint64_t>(payload.data()) != scan.logical_bytes) {
        scan.corrupt = true;  // seal disagrees with the records before it
        return scan;
      }
      scan.sealed = true;
      pos += kHeaderBytes + len;
      scan.valid_prefix = pos;
      if (pos != framed.size()) scan.corrupt = true;  // bytes after the seal
      return scan;
    }
    pos += kHeaderBytes + len;
    scan.logical_bytes += len;
    scan.valid_prefix = pos;
    ++scan.records;
  }
  // Ran out of bytes without a seal: a cut mid-header, or a clean cut at a
  // record boundary (which the seal record exists to catch).
  scan.torn = true;
  return scan;
}

std::optional<ByteVec> extract_stream(ByteSpan framed) {
  const RecordScan scan = scan_records(framed);
  if (!scan.sealed || scan.corrupt || scan.torn) return std::nullopt;
  ByteVec out;
  out.reserve(scan.logical_bytes);
  std::size_t pos = 0;
  while (pos + kHeaderBytes <= framed.size()) {
    const Byte* h = framed.data() + pos;
    const std::uint32_t magic = load_le<std::uint32_t>(h);
    const std::uint32_t len = load_le<std::uint32_t>(h + 4);
    if (magic == kSealMagic) break;
    append(out, framed.subspan(pos + kHeaderBytes, len));
    pos += kHeaderBytes + len;
  }
  return out;
}

}  // namespace mhd::framing
