// ObjectStore — the accounting façade every engine talks to.
//
// It wraps a StorageBackend and records one categorized disk access per
// logical operation (matching the paper's TABLE II cost model: sequential
// output of a whole DiskChunk is one access; each hook lookup, manifest
// load/store, and chunk-byte reload is one access). Byte counts accumulate
// separately for the bandwidth term of the DiskModel.
#pragma once

#include <memory>
#include <string>

#include "mhd/hash/digest.h"
#include "mhd/store/backend.h"
#include "mhd/store/stats.h"

namespace mhd {

class ObjectStore;

/// Sequential writer for a DiskChunk being assembled; accounts a single
/// kChunkOut access when closed (sequential stream = one positioning).
class ChunkWriter {
 public:
  /// Move disarms the source: only the destination's close() records the
  /// access (a defaulted move would double-count on destruction).
  ChunkWriter(ChunkWriter&& other) noexcept
      : store_(other.store_),
        name_(std::move(other.name_)),
        bytes_(other.bytes_),
        closed_(other.closed_) {
    other.closed_ = true;
  }
  ChunkWriter& operator=(ChunkWriter&&) = delete;
  ~ChunkWriter();

  void write(ByteSpan data);
  std::uint64_t bytes_written() const { return bytes_; }
  const std::string& name() const { return name_; }

  /// Finalizes the object and records the access. Idempotent.
  void close();

 private:
  friend class ObjectStore;
  ChunkWriter(ObjectStore* store, std::string name);

  ObjectStore* store_;
  std::string name_;
  std::uint64_t bytes_ = 0;
  bool closed_ = false;
};

class ObjectStore {
 public:
  explicit ObjectStore(StorageBackend& backend) : backend_(backend) {}

  // --- DiskChunks (immutable once closed) -------------------------------
  ChunkWriter open_chunk(const std::string& name);
  /// Reload of stored chunk bytes (the HHR byte-comparison path).
  std::optional<ByteVec> read_chunk_range(const std::string& name,
                                          std::uint64_t offset,
                                          std::uint64_t length);
  std::optional<ByteVec> read_chunk(const std::string& name);

  // --- Hooks (immutable hash-named sample files) -------------------------
  void put_hook(const Digest& hook_hash, ByteSpan payload);
  /// Disk lookup of a hook by content hash; counted under `query_kind`
  /// when the hook is absent (a pure failed index probe) and as kHookIn
  /// when present (the hook file is actually read).
  std::optional<ByteVec> get_hook(const Digest& hook_hash,
                                  AccessKind query_kind);
  bool hook_exists(const Digest& hook_hash, AccessKind query_kind);

  // --- Manifests (the only mutable metadata) ------------------------------
  void put_manifest(const std::string& name, ByteSpan data);
  std::optional<ByteVec> get_manifest(const std::string& name);

  // --- FileManifests ------------------------------------------------------
  void put_file_manifest(const std::string& name, ByteSpan data);
  std::optional<ByteVec> get_file_manifest(const std::string& name);

  StorageBackend& backend() { return backend_; }
  const StorageBackend& backend() const { return backend_; }
  StorageStats& stats() { return stats_; }
  const StorageStats& stats() const { return stats_; }

 private:
  friend class ChunkWriter;
  StorageBackend& backend_;
  StorageStats stats_;
};

}  // namespace mhd
