#include "mhd/store/memory_backend.h"

#include <algorithm>

namespace mhd {

const char* ns_name(Ns ns) {
  switch (ns) {
    case Ns::kDiskChunk: return "diskchunks";
    case Ns::kHook: return "hooks";
    case Ns::kManifest: return "manifests";
    case Ns::kFileManifest: return "filemanifests";
    case Ns::kIndex: return "index";
    case Ns::kContainer: return "containers";
    case Ns::kChunkMap: return "chunkmaps";
    case Ns::kCount: break;
  }
  return "?";
}

std::uint64_t StorageBackend::total_objects() const {
  std::uint64_t total = 0;
  for (int i = 0; i < static_cast<int>(Ns::kCount); ++i) {
    total += object_count(static_cast<Ns>(i));
  }
  return total;
}

std::uint64_t StorageBackend::total_content_bytes() const {
  std::uint64_t total = 0;
  for (int i = 0; i < static_cast<int>(Ns::kCount); ++i) {
    total += content_bytes(static_cast<Ns>(i));
  }
  return total;
}

std::uint64_t StorageBackend::stored_bytes_with_inodes() const {
  return total_content_bytes() + total_objects() * kInodeBytes;
}

void MemoryBackend::put(Ns ns, const std::string& name, ByteSpan data) {
  auto& map = space(ns);
  auto& bytes = bytes_[static_cast<int>(ns)];
  auto it = map.find(name);
  if (it != map.end()) {
    bytes -= it->second.size();
    it->second.assign(data.begin(), data.end());
  } else {
    map.emplace(name, to_vec(data));
  }
  bytes += data.size();
}

void MemoryBackend::append(Ns ns, const std::string& name, ByteSpan data) {
  auto& map = space(ns);
  mhd::append(map[name], data);
  bytes_[static_cast<int>(ns)] += data.size();
}

std::optional<ByteVec> MemoryBackend::get(Ns ns, const std::string& name) const {
  const auto& map = space(ns);
  const auto it = map.find(name);
  if (it == map.end()) return std::nullopt;
  return it->second;
}

std::optional<ByteVec> MemoryBackend::get_range(Ns ns, const std::string& name,
                                                std::uint64_t offset,
                                                std::uint64_t length) const {
  const auto& map = space(ns);
  const auto it = map.find(name);
  if (it == map.end()) return std::nullopt;
  const ByteVec& obj = it->second;
  // Checked as two comparisons: `offset + length` can wrap u64.
  if (offset > obj.size() || length > obj.size() - offset) return std::nullopt;
  return ByteVec(obj.begin() + static_cast<std::ptrdiff_t>(offset),
                 obj.begin() + static_cast<std::ptrdiff_t>(offset + length));
}

bool MemoryBackend::exists(Ns ns, const std::string& name) const {
  return space(ns).count(name) > 0;
}

bool MemoryBackend::remove(Ns ns, const std::string& name) {
  auto& map = space(ns);
  auto it = map.find(name);
  if (it == map.end()) return false;
  bytes_[static_cast<int>(ns)] -= it->second.size();
  map.erase(it);
  return true;
}

std::uint64_t MemoryBackend::object_count(Ns ns) const {
  return space(ns).size();
}

std::uint64_t MemoryBackend::content_bytes(Ns ns) const {
  return bytes_[static_cast<int>(ns)];
}

std::vector<std::string> MemoryBackend::list(Ns ns) const {
  std::vector<std::string> names;
  names.reserve(space(ns).size());
  for (const auto& [name, _] : space(ns)) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace mhd
