#include "mhd/store/file_backend.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace mhd {

namespace fs = std::filesystem;

FileBackend::FileBackend(fs::path root) : root_(std::move(root)) {
  for (int i = 0; i < static_cast<int>(Ns::kCount); ++i) {
    const Ns ns = static_cast<Ns>(i);
    fs::create_directories(root_ / ns_name(ns));
    // Adopt pre-existing content (e.g. resuming a backup repository).
    for (const auto& entry : fs::directory_iterator(root_ / ns_name(ns))) {
      if (!entry.is_regular_file()) continue;
      ++counts_[i];
      bytes_[i] += entry.file_size();
    }
  }
}

fs::path FileBackend::path_for(Ns ns, const std::string& name) const {
  return root_ / ns_name(ns) / name;
}

void FileBackend::put(Ns ns, const std::string& name, ByteSpan data) {
  const fs::path p = path_for(ns, name);
  const bool existed = fs::exists(p);
  const std::uint64_t old_size = existed ? fs::file_size(p) : 0;
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("FileBackend: cannot write " + p.string());
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  out.close();
  const int i = static_cast<int>(ns);
  if (!existed) ++counts_[i];
  bytes_[i] += data.size();
  bytes_[i] -= old_size;
}

void FileBackend::append(Ns ns, const std::string& name, ByteSpan data) {
  const fs::path p = path_for(ns, name);
  const bool existed = fs::exists(p);
  std::ofstream out(p, std::ios::binary | std::ios::app);
  if (!out) throw std::runtime_error("FileBackend: cannot append " + p.string());
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  out.close();
  const int i = static_cast<int>(ns);
  if (!existed) ++counts_[i];
  bytes_[i] += data.size();
}

std::optional<ByteVec> FileBackend::get(Ns ns, const std::string& name) const {
  const fs::path p = path_for(ns, name);
  std::ifstream in(p, std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const auto size = in.tellg();
  in.seekg(0);
  ByteVec out(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(out.data()), size);
  if (!in) return std::nullopt;
  return out;
}

std::optional<ByteVec> FileBackend::get_range(Ns ns, const std::string& name,
                                              std::uint64_t offset,
                                              std::uint64_t length) const {
  const fs::path p = path_for(ns, name);
  std::ifstream in(p, std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const std::uint64_t size = static_cast<std::uint64_t>(in.tellg());
  if (offset + length > size) return std::nullopt;
  in.seekg(static_cast<std::streamoff>(offset));
  ByteVec out(static_cast<std::size_t>(length));
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(length));
  if (!in) return std::nullopt;
  return out;
}

bool FileBackend::exists(Ns ns, const std::string& name) const {
  return fs::exists(path_for(ns, name));
}

bool FileBackend::remove(Ns ns, const std::string& name) {
  const fs::path p = path_for(ns, name);
  if (!fs::exists(p)) return false;
  const std::uint64_t size = fs::file_size(p);
  fs::remove(p);
  const int i = static_cast<int>(ns);
  --counts_[i];
  bytes_[i] -= size;
  return true;
}

std::uint64_t FileBackend::object_count(Ns ns) const {
  return counts_[static_cast<int>(ns)];
}

std::uint64_t FileBackend::content_bytes(Ns ns) const {
  return bytes_[static_cast<int>(ns)];
}

std::vector<std::string> FileBackend::list(Ns ns) const {
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(root_ / ns_name(ns))) {
    if (entry.is_regular_file()) names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace mhd
