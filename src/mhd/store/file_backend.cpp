#include "mhd/store/file_backend.h"

#include <algorithm>
#include <fstream>

#include "mhd/store/store_errors.h"

namespace mhd {

namespace fs = std::filesystem;

namespace {

/// Temp files from interrupted atomic puts carry this suffix; object names
/// are hex digests and can never collide with it.
constexpr const char* kTmpSuffix = ".tmp";

bool is_tmp(const fs::path& p) { return p.extension() == kTmpSuffix; }

/// Writes `data` and verifies both the write and the close took: a short
/// write (ENOSPC, quota) must surface as an error, never as a silently
/// truncated object.
void write_all_or_throw(const fs::path& p, ByteSpan data,
                        std::ios::openmode mode) {
  std::ofstream out(p, std::ios::binary | mode);
  if (!out) throw BackendIoError("FileBackend: cannot open " + p.string());
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw BackendIoError("FileBackend: short write to " + p.string());
  out.close();
  if (out.fail()) {
    throw BackendIoError("FileBackend: close failed for " + p.string());
  }
}

}  // namespace

FileBackend::FileBackend(fs::path root) : root_(std::move(root)) {
  for (int i = 0; i < static_cast<int>(Ns::kCount); ++i) {
    const Ns ns = static_cast<Ns>(i);
    fs::create_directories(root_ / ns_name(ns));
    // Adopt pre-existing content (e.g. resuming a backup repository).
    // Orphaned temp files are debris from an interrupted atomic put: the
    // rename never happened, so the old object (if any) is still intact.
    std::vector<fs::path> stale_tmps;
    for (const auto& entry : fs::directory_iterator(root_ / ns_name(ns))) {
      if (!entry.is_regular_file()) continue;
      if (is_tmp(entry.path())) {
        stale_tmps.push_back(entry.path());
        continue;
      }
      ++counts_[i];
      bytes_[i] += entry.file_size();
    }
    for (const auto& tmp : stale_tmps) fs::remove(tmp);
  }
}

fs::path FileBackend::path_for(Ns ns, const std::string& name) const {
  return root_ / ns_name(ns) / name;
}

void FileBackend::put(Ns ns, const std::string& name, ByteSpan data) {
  const fs::path p = path_for(ns, name);
  const fs::path tmp = p.string() + kTmpSuffix;
  const bool existed = fs::exists(p);
  const std::uint64_t old_size = existed ? fs::file_size(p) : 0;
  // Atomic replace: write the new bytes beside the object, then rename
  // over it. A crash mid-put leaves either the old object or the new one,
  // never a half-written mix; the stale .tmp is swept on reopen.
  try {
    write_all_or_throw(tmp, data, std::ios::trunc);
  } catch (...) {
    std::error_code ec;
    fs::remove(tmp, ec);
    throw;
  }
  std::error_code ec;
  fs::rename(tmp, p, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw BackendIoError("FileBackend: rename failed for " + p.string());
  }
  const int i = static_cast<int>(ns);
  if (!existed) ++counts_[i];
  bytes_[i] += data.size();
  bytes_[i] -= old_size;
}

void FileBackend::append(Ns ns, const std::string& name, ByteSpan data) {
  const fs::path p = path_for(ns, name);
  const bool existed = fs::exists(p);
  const std::uint64_t old_size = existed ? fs::file_size(p) : 0;
  try {
    write_all_or_throw(p, data, std::ios::app);
  } catch (...) {
    // A failed append may have landed a prefix; resync the counters from
    // the filesystem so accounting stays truthful, then surface the error
    // (the framing layer makes the partial tail detectable).
    const int i = static_cast<int>(ns);
    std::error_code ec;
    const bool exists_now = fs::exists(p, ec) && !ec;
    const std::uint64_t new_size = exists_now ? fs::file_size(p, ec) : 0;
    if (!existed && exists_now) ++counts_[i];
    bytes_[i] += new_size;
    bytes_[i] -= old_size;
    throw;
  }
  const int i = static_cast<int>(ns);
  if (!existed) ++counts_[i];
  bytes_[i] += data.size();
}

std::optional<ByteVec> FileBackend::get(Ns ns, const std::string& name) const {
  const fs::path p = path_for(ns, name);
  std::ifstream in(p, std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const auto size = in.tellg();
  in.seekg(0);
  ByteVec out(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(out.data()), size);
  if (!in) return std::nullopt;
  return out;
}

std::optional<ByteVec> FileBackend::get_range(Ns ns, const std::string& name,
                                              std::uint64_t offset,
                                              std::uint64_t length) const {
  const fs::path p = path_for(ns, name);
  std::ifstream in(p, std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const std::uint64_t size = static_cast<std::uint64_t>(in.tellg());
  // Checked as two comparisons: `offset + length` can wrap u64.
  if (offset > size || length > size - offset) return std::nullopt;
  in.seekg(static_cast<std::streamoff>(offset));
  ByteVec out(static_cast<std::size_t>(length));
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(length));
  if (!in) return std::nullopt;
  return out;
}

bool FileBackend::exists(Ns ns, const std::string& name) const {
  return fs::exists(path_for(ns, name));
}

bool FileBackend::remove(Ns ns, const std::string& name) {
  const fs::path p = path_for(ns, name);
  if (!fs::exists(p)) return false;
  const std::uint64_t size = fs::file_size(p);
  fs::remove(p);
  const int i = static_cast<int>(ns);
  --counts_[i];
  bytes_[i] -= size;
  return true;
}

std::uint64_t FileBackend::object_count(Ns ns) const {
  return counts_[static_cast<int>(ns)];
}

std::uint64_t FileBackend::content_bytes(Ns ns) const {
  return bytes_[static_cast<int>(ns)];
}

std::vector<std::string> FileBackend::list(Ns ns) const {
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(root_ / ns_name(ns))) {
    if (!entry.is_regular_file() || is_tmp(entry.path())) continue;
    names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace mhd
