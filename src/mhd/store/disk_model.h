// Deterministic disk cost model.
//
// The paper measures ThroughputRatio = T(plain copy) / T(dedup) on a real
// Ext3 disk. Our substrate is simulated, so disk time is modeled from the
// categorized access counters: each access pays a positioning (seek +
// rotational) latency and transferred bytes pay bandwidth. Index queries
// (hook lookups that miss) pay a seek only. The model is deliberately
// simple — the paper compares *counts*, and a monotone model preserves
// every ordering and crossover.
#pragma once

#include <cstdint>

#include "mhd/store/stats.h"

namespace mhd {

struct DiskModel {
  /// Effective positioning cost per access. Lower than a raw HDD seek
  /// (~8 ms) because the paper's Ext3 prototype benefits from the page
  /// cache and request queueing for its many small metadata files.
  double seek_seconds = 0.002;
  double read_bw = 100.0 * 1e6;         ///< bytes/second sequential read
  double write_bw = 90.0 * 1e6;         ///< bytes/second sequential write

  /// Modeled disk time for a set of recorded accesses.
  double io_seconds(const StorageStats& stats) const;

  /// Modeled time for the paper's baseline "simply copying data" of
  /// `bytes` (one sequential read + one sequential write stream).
  double copy_seconds(std::uint64_t bytes) const;
};

}  // namespace mhd
