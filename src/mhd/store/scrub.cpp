#include "mhd/store/scrub.h"

#include <array>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "mhd/format/file_manifest.h"
#include "mhd/format/manifest.h"
#include "mhd/hash/digest.h"
#include "mhd/index/persistent_index.h"
#include "mhd/index/sampled_index.h"
#include "mhd/store/container_store.h"
#include "mhd/store/file_backend.h"
#include "mhd/store/framing.h"
#include "mhd/util/hex.h"

namespace mhd {

namespace {

namespace fs = std::filesystem;

/// Removes the object from its namespace; on a FileBackend the bytes are
/// preserved under <root>/quarantine/<namespace>/ first. Removal goes
/// through the backend so its accounting stays exact.
void quarantine(StorageBackend& raw, Ns ns, const std::string& name,
                const ByteVec& bytes) {
  if (auto* file = dynamic_cast<FileBackend*>(&raw)) {
    const fs::path dir = file->root() / "quarantine" / ns_name(ns);
    fs::create_directories(dir);
    std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  raw.remove(ns, name);
}

std::optional<std::string> hook_target(const ByteVec& payload) {
  if (payload.size() != Digest::kSize) return std::nullopt;
  return hex_encode({payload.data(), payload.size()});
}

/// Namespace scope of a physical object name. Multi-tenant repositories
/// (written through the server's TenantView) prefix every object with
/// `<tenant>.`; '.' is reserved as the separator and never appears in
/// bare object names (hex digests, "meta", "shard-…"). References INSIDE
/// objects are always bare names scoped to the referencing object's own
/// tenant, so every cross-reference check joins scope + bare name.
std::string scope_of(const std::string& name) {
  const auto dot = name.find('.');
  return dot == std::string::npos ? std::string{} : name.substr(0, dot + 1);
}

/// Store-layer mirror of the server's TenantView (which fsck cannot
/// depend on — the server layer sits above the store): scopes a backend
/// to one name prefix so the per-tenant fingerprint index can be checked
/// and rebuilt with the same code path as a single-tenant repository.
/// fsck-grade performance: list() filters the full physical listing.
class ScopedBackend final : public StorageBackend {
 public:
  ScopedBackend(StorageBackend& inner, std::string prefix)
      : inner_(inner), prefix_(std::move(prefix)) {}

  void put(Ns ns, const std::string& name, ByteSpan data) override {
    inner_.put(ns, prefix_ + name, data);
  }
  void append(Ns ns, const std::string& name, ByteSpan data) override {
    inner_.append(ns, prefix_ + name, data);
  }
  std::optional<ByteVec> get(Ns ns, const std::string& name) const override {
    return inner_.get(ns, prefix_ + name);
  }
  std::optional<ByteVec> get_range(Ns ns, const std::string& name,
                                   std::uint64_t offset,
                                   std::uint64_t length) const override {
    return inner_.get_range(ns, prefix_ + name, offset, length);
  }
  bool exists(Ns ns, const std::string& name) const override {
    return inner_.exists(ns, prefix_ + name);
  }
  bool remove(Ns ns, const std::string& name) override {
    return inner_.remove(ns, prefix_ + name);
  }
  void seal(Ns ns, const std::string& name) override {
    inner_.seal(ns, prefix_ + name);
  }
  std::uint64_t object_count(Ns ns) const override {
    return list(ns).size();
  }
  std::uint64_t content_bytes(Ns ns) const override {
    std::uint64_t total = 0;
    for (const auto& name : list(ns)) {
      if (const auto obj = inner_.get(ns, prefix_ + name)) {
        total += obj->size();
      }
    }
    return total;
  }
  std::vector<std::string> list(Ns ns) const override {
    std::vector<std::string> mine;
    for (auto& name : inner_.list(ns)) {
      if (name.rfind(prefix_, 0) != 0) continue;
      std::string base = name.substr(prefix_.size());
      // The empty scope must not see other scopes' objects.
      if (base.find('.') != std::string::npos) continue;
      mine.push_back(std::move(base));
    }
    return mine;
  }

 private:
  StorageBackend& inner_;
  std::string prefix_;
};

}  // namespace

const char* fsck_kind_name(FsckIssue::Kind kind) {
  switch (kind) {
    case FsckIssue::Kind::kTornTail: return "torn-tail";
    case FsckIssue::Kind::kCorrupt: return "corrupt";
    case FsckIssue::Kind::kDanglingHook: return "dangling-hook";
    case FsckIssue::Kind::kBrokenRef: return "broken-ref";
    case FsckIssue::Kind::kOrphan: return "orphan";
    case FsckIssue::Kind::kIndexInconsistent: return "index-inconsistent";
  }
  return "?";
}

const char* fsck_action_name(FsckIssue::Action action) {
  switch (action) {
    case FsckIssue::Action::kNone: return "reported";
    case FsckIssue::Action::kTruncatedSealed: return "truncated+sealed";
    case FsckIssue::Action::kQuarantined: return "quarantined";
    case FsckIssue::Action::kRemoved: return "removed";
    case FsckIssue::Action::kRebuilt: return "rebuilt";
  }
  return "?";
}

std::string FsckReport::to_string() const {
  std::ostringstream out;
  out << "fsck: " << objects << " objects, " << clean_objects << " clean";
  if (torn != 0) out << ", " << torn << " torn";
  if (corrupt != 0) out << ", " << corrupt << " corrupt";
  if (dangling_hooks != 0) out << ", " << dangling_hooks << " dangling hooks";
  if (broken_refs != 0) out << ", " << broken_refs << " broken refs";
  if (index_issues != 0) out << ", " << index_issues << " index issues";
  if (orphans != 0) out << ", " << orphans << " orphans";
  if (repaired != 0) {
    out << "; repaired " << repaired << " (" << salvaged_bytes
        << " bytes salvaged)";
  }
  out << '\n';
  for (const auto& issue : issues) {
    out << "  [" << fsck_kind_name(issue.kind) << "] " << ns_name(issue.ns)
        << '/' << issue.name << ": " << issue.detail << " ("
        << fsck_action_name(issue.action) << ")\n";
  }
  return out.str();
}

FsckReport fsck_repository(StorageBackend& raw, bool repair) {
  FsckReport rep;

  // --- Pass 1a: record-stream namespaces (DiskChunks, containers) -------
  // Containers get the same treatment as legacy DiskChunk streams: a torn
  // tail is cut at the last intact record and resealed (every packed byte
  // before the tear survives); a CRC-failing stream is quarantined.
  std::unordered_map<std::string, std::uint64_t> chunk_logical;
  std::unordered_map<std::string, std::uint64_t> container_logical;
  for (const Ns stream_ns : {Ns::kDiskChunk, Ns::kContainer}) {
    auto& logical =
        stream_ns == Ns::kDiskChunk ? chunk_logical : container_logical;
    for (const auto& name : raw.list(stream_ns)) {
      ++rep.objects;
      const auto bytes = raw.get(stream_ns, name);
      if (!bytes) continue;
      const auto scan = framing::scan_records(*bytes);
      if (scan.sealed && !scan.corrupt && !scan.torn) {
        ++rep.clean_objects;
        logical.emplace(name, scan.logical_bytes);
        continue;
      }
      FsckIssue issue{stream_ns, name, FsckIssue::Kind::kCorrupt, "", {}};
      if (scan.corrupt) {
        ++rep.corrupt;
        issue.detail = "record CRC/structure mismatch after " +
                       std::to_string(scan.logical_bytes) + " good bytes";
        if (repair) {
          quarantine(raw, stream_ns, name, *bytes);
          issue.action = FsckIssue::Action::kQuarantined;
          ++rep.repaired;
        }
      } else {
        // Torn: every record before the tear is intact; cut and re-seal.
        ++rep.torn;
        issue.kind = FsckIssue::Kind::kTornTail;
        issue.detail = "stream ends unsealed at byte " +
                       std::to_string(scan.valid_prefix) + " of " +
                       std::to_string(bytes->size());
        if (repair) {
          ByteVec fixed(bytes->begin(),
                        bytes->begin() +
                            static_cast<std::ptrdiff_t>(scan.valid_prefix));
          append(fixed, framing::seal_record(scan.logical_bytes));
          raw.put(stream_ns, name, fixed);
          logical.emplace(name, scan.logical_bytes);
          rep.salvaged_bytes += scan.logical_bytes;
          issue.action = FsckIssue::Action::kTruncatedSealed;
          ++rep.repaired;
        }
      }
      rep.issues.push_back(std::move(issue));
    }
  }

  // --- Pass 1b: sealed-object namespaces --------------------------------
  std::array<std::unordered_map<std::string, ByteVec>, 4> payloads;
  const std::array<Ns, 4> sealed_ns = {Ns::kHook, Ns::kManifest,
                                       Ns::kFileManifest, Ns::kChunkMap};
  for (std::size_t s = 0; s < sealed_ns.size(); ++s) {
    const Ns ns = sealed_ns[s];
    for (const auto& name : raw.list(ns)) {
      ++rep.objects;
      const auto bytes = raw.get(ns, name);
      if (!bytes) continue;
      if (auto payload = framing::unseal_object(*bytes)) {
        ++rep.clean_objects;
        payloads[s].emplace(name, std::move(*payload));
        continue;
      }
      ++rep.corrupt;
      FsckIssue issue{ns, name, FsckIssue::Kind::kCorrupt,
                      "trailer CRC/structure mismatch", {}};
      if (repair) {
        quarantine(raw, ns, name, *bytes);
        issue.action = FsckIssue::Action::kQuarantined;
        ++rep.repaired;
      }
      rep.issues.push_back(std::move(issue));
    }
  }
  // --- Pass 1c: index objects (sealed; advisory, rebuildable) -----------
  // Two index families share Ns::kIndex: the disk index's objects and the
  // sampled similarity tier's "sampled-"-prefixed ones. Damage is tracked
  // per (scope, family) so Pass 3 rebuilds only the family actually hit.
  const auto is_sampled_object = [](const std::string& name) {
    const std::string base = name.substr(scope_of(name).size());
    return base.rfind("sampled-", 0) == 0;
  };
  std::unordered_set<std::string> damaged_index_scopes;
  std::unordered_set<std::string> damaged_sampled_scopes;
  for (const auto& name : raw.list(Ns::kIndex)) {
    ++rep.objects;
    const auto bytes = raw.get(Ns::kIndex, name);
    if (!bytes) continue;
    if (framing::unseal_object(*bytes)) {
      ++rep.clean_objects;
      continue;
    }
    ++rep.corrupt;
    (is_sampled_object(name) ? damaged_sampled_scopes : damaged_index_scopes)
        .insert(scope_of(name));
    FsckIssue issue{Ns::kIndex, name, FsckIssue::Kind::kCorrupt,
                    "trailer CRC/structure mismatch", {}};
    if (repair) {
      quarantine(raw, Ns::kIndex, name, *bytes);
      issue.action = FsckIssue::Action::kQuarantined;
      ++rep.repaired;
    }
    rep.issues.push_back(std::move(issue));
  }

  const auto& hooks = payloads[0];
  const auto& manifests = payloads[1];
  const auto& file_manifests = payloads[2];
  const auto& chunk_maps = payloads[3];

  // --- Pass 1d: extent maps must resolve into intact containers ---------
  // A committed chunk map is the durable identity of a container-packed
  // chunk: its logical length joins chunk_logical (so the reference pass
  // below treats packed and legacy chunks uniformly), but only when every
  // extent lands inside a clean/salvaged container — a chunk with any
  // unresolvable extent must fail reference checks loudly, not shortened.
  std::unordered_set<std::string> referenced_containers;
  for (const auto& [name, payload] : chunk_maps) {
    const auto extents = ContainerBackend::parse_extents(payload);
    if (!extents) {
      ++rep.broken_refs;
      rep.issues.push_back({Ns::kChunkMap, name, FsckIssue::Kind::kBrokenRef,
                            "CRC-clean but unparseable", {}});
      continue;
    }
    std::uint64_t total = 0;
    bool resolvable = true;
    for (const auto& e : *extents) {
      const std::string cname = ContainerBackend::container_name(e.container);
      referenced_containers.insert(cname);
      const auto it = container_logical.find(cname);
      if (it == container_logical.end() || e.offset > it->second ||
          e.length > it->second - e.offset) {
        resolvable = false;
        ++rep.broken_refs;
        rep.issues.push_back(
            {Ns::kChunkMap, name, FsckIssue::Kind::kBrokenRef,
             "extent [" + std::to_string(e.offset) + "," +
                 std::to_string(e.offset + e.length) +
                 ") unresolvable in container " + cname,
             {}});
        continue;
      }
      total += e.length;
    }
    if (resolvable) chunk_logical.emplace(name, total);
  }

  // --- Pass 2: cross-references (over clean/repaired objects only) ------
  std::unordered_set<std::string> referenced;
  for (const auto& [name, payload] : file_manifests) {
    const auto fm = FileManifest::deserialize(payload);
    if (!fm) {
      ++rep.broken_refs;
      rep.issues.push_back({Ns::kFileManifest, name,
                            FsckIssue::Kind::kBrokenRef,
                            "CRC-clean but unparseable", {}});
      continue;
    }
    for (const auto& e : fm->entries()) {
      const std::string chunk = scope_of(name) + e.chunk_name.hex();
      referenced.insert(chunk);
      const auto it = chunk_logical.find(chunk);
      const bool resolvable =
          it != chunk_logical.end() && e.offset <= it->second &&
          e.length <= it->second - e.offset;
      if (!resolvable) {
        ++rep.broken_refs;
        rep.issues.push_back(
            {Ns::kFileManifest, name, FsckIssue::Kind::kBrokenRef,
             "range [" + std::to_string(e.offset) + "," +
                 std::to_string(e.offset + e.length) +
                 ") unresolvable in chunk " + chunk,
             {}});
      }
    }
  }

  for (const auto& [name, payload] : manifests) {
    const auto m = Manifest::deserialize(payload);
    if (!m || scope_of(name) + m->chunk_name().hex() != name) {
      continue;  // engine-specific
    }
    const auto it = chunk_logical.find(name);
    if (it == chunk_logical.end()) {
      ++rep.broken_refs;
      rep.issues.push_back({Ns::kManifest, name, FsckIssue::Kind::kBrokenRef,
                            "manifest for missing chunk", {}});
    }
  }

  for (const auto& [name, payload] : hooks) {
    const auto target = hook_target(payload);
    if (target && manifests.count(scope_of(name) + *target) > 0) continue;
    ++rep.dangling_hooks;
    FsckIssue issue{Ns::kHook, name, FsckIssue::Kind::kDanglingHook,
                    target ? "target manifest " + *target + " missing"
                           : "malformed hook payload",
                    {}};
    if (repair) {
      // Hooks are a rebuildable similarity index, never user data.
      raw.remove(Ns::kHook, name);
      issue.action = FsckIssue::Action::kRemoved;
      ++rep.repaired;
    }
    rep.issues.push_back(std::move(issue));
  }

  // --- Pass 3: fingerprint index vs live hooks/manifests ----------------
  // The index is advisory: any inconsistency (torn objects, a missing
  // commit point, entries naming removed manifests) is repaired by
  // rebuilding from the hooks, never by touching user data. A
  // multi-tenant repository carries one index PER tenant scope, each
  // checked and rebuilt against the hooks of the same scope — and each
  // scope may carry either index family (disk and/or sampled), checked
  // and rebuilt independently so a sampled-only scope is never "repaired"
  // into a disk index or vice versa.
  std::set<std::string> disk_scopes, sampled_scopes;
  for (const auto& name : raw.list(Ns::kIndex)) {
    (is_sampled_object(name) ? sampled_scopes : disk_scopes)
        .insert(scope_of(name));
  }
  for (const auto& scope : damaged_index_scopes) disk_scopes.insert(scope);
  for (const auto& scope : damaged_sampled_scopes) {
    sampled_scopes.insert(scope);
  }
  for (const auto& scope : disk_scopes) {
    ScopedBackend view(raw, scope);
    IndexCheckReport index = check_index(view);
    const bool damaged = damaged_index_scopes.count(scope) > 0;
    if (!index.meta_ok || index.stale_entries > 0 ||
        index.corrupt_objects > 0 || damaged) {
      ++rep.index_issues;
      FsckIssue issue{
          Ns::kIndex, scope + "meta", FsckIssue::Kind::kIndexInconsistent,
          !index.meta_ok
              ? "index objects present but meta unreadable"
              : std::to_string(index.stale_entries) + " stale entries, " +
                    std::to_string(index.corrupt_objects) +
                    " corrupt objects",
          {}};
      if (repair) {
        rebuild_index(view);
        index = check_index(view);
        issue.action = FsckIssue::Action::kRebuilt;
        ++rep.repaired;
      }
      rep.issues.push_back(std::move(issue));
    }
    rep.index_entries += index.entries;
    rep.stale_index_entries += index.stale_entries;
  }
  for (const auto& scope : sampled_scopes) {
    ScopedBackend view(raw, scope);
    SampledCheckReport sampled = check_sampled_index(view);
    const bool damaged = damaged_sampled_scopes.count(scope) > 0;
    if (!sampled.meta_ok || sampled.stale_champions > 0 ||
        sampled.corrupt_objects > 0 || damaged) {
      ++rep.index_issues;
      FsckIssue issue{
          Ns::kIndex, scope + "sampled-meta",
          FsckIssue::Kind::kIndexInconsistent,
          !sampled.meta_ok
              ? "sampled-tier objects present but meta unreadable"
              : std::to_string(sampled.stale_champions) +
                    " stale champions, " +
                    std::to_string(sampled.corrupt_objects) +
                    " corrupt objects",
          {}};
      if (repair) {
        rebuild_sampled_index(view);
        sampled = check_sampled_index(view);
        issue.action = FsckIssue::Action::kRebuilt;
        ++rep.repaired;
      }
      rep.issues.push_back(std::move(issue));
    }
    rep.sampled_hook_entries += sampled.hook_entries;
    rep.stale_sampled_champions += sampled.stale_champions;
  }

  for (const auto& [name, logical] : chunk_logical) {
    if (referenced.count(name) > 0) continue;
    ++rep.orphans;
    rep.issues.push_back({Ns::kDiskChunk, name, FsckIssue::Kind::kOrphan,
                          std::to_string(logical) +
                              " logical bytes unreachable from any "
                              "FileManifest (collect_garbage reclaims)",
                          {}});
  }
  for (const auto& [name, logical] : container_logical) {
    if (referenced_containers.count(name) > 0) continue;
    ++rep.orphans;
    rep.issues.push_back({Ns::kContainer, name, FsckIssue::Kind::kOrphan,
                          std::to_string(logical) +
                              " payload bytes referenced by no chunk map "
                              "(sweep_containers reclaims)",
                          {}});
  }

  return rep;
}

}  // namespace mhd
