// ContainerBackend — fixed-size container packing for chunk data.
//
// A StorageBackend decorator that keeps the *logical* DiskChunk namespace
// every engine and manifest speaks (name-addressable chunk objects with
// byte offsets) while physically packing the bytes into fixed-size
// containers in write order, the layout every fragmentation-aware dedup
// store uses (destor's container store, CBR/HAR papers):
//
//   * append(kDiskChunk, name, data) packs the bytes into the currently
//     open container under Ns::kContainer (a record stream, CRC-framed by
//     the FramedBackend below) and records an extent
//     {container, container_offset, length}. A container that reaches the
//     configured size is sealed and a new one opened; one append may
//     split across the boundary.
//   * seal(kDiskChunk, name) commits the chunk's extent map as a sealed
//     object under Ns::kChunkMap — the durability point of the chunk.
//     Every extent a committed map names was appended by a strictly
//     earlier mutation, so a crash can only lose bytes no committed map
//     references (the invariant fsck leans on).
//   * get/get_range(kDiskChunk, ...) resolve through the extent map and
//     read whole containers through a bounded LRU container cache — the
//     forward-assembly-area of the restore path. Reads of the still-open
//     container are served from its in-RAM image (its tail is not yet a
//     clean stream below).
//
// Layering (outermost first):
//
//   ObjectStore → ContainerBackend → FramedBackend → [Fault] → File/Memory
//
// All namespaces other than kDiskChunk pass through untouched; the inner
// backend never sees a kDiskChunk object. Reopening a repository scans
// Ns::kContainer for the highest container id and always starts a fresh
// container (sealed streams are immutable).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mhd/store/backend.h"

namespace mhd {

struct ContainerConfig {
  /// Target physical container size (chunk payload bytes per container).
  std::uint64_t container_bytes = 4ull << 20;
  /// RAM budget of the whole-container restore cache (--restore-cache-mb).
  std::uint64_t cache_bytes = 32ull << 20;
};

/// Monotonic counters; diff two snapshots around a restore to get that
/// restore's container traffic (the CFL denominator).
struct ContainerStats {
  std::uint64_t containers_sealed = 0;
  std::uint64_t packed_bytes = 0;       ///< chunk bytes packed so far
  std::uint64_t container_reads = 0;    ///< whole-container loads (misses)
  std::uint64_t container_read_bytes = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t open_hits = 0;  ///< reads served from the open container
};

class ContainerBackend final : public StorageBackend {
 public:
  /// One contiguous placement of part of a chunk's logical byte range.
  struct Extent {
    std::uint64_t container = 0;  ///< numeric container id
    std::uint64_t offset = 0;     ///< byte offset inside the container
    std::uint64_t length = 0;
  };

  ContainerBackend(StorageBackend& inner, ContainerConfig config);
  ~ContainerBackend() override;

  void put(Ns ns, const std::string& name, ByteSpan data) override;
  void append(Ns ns, const std::string& name, ByteSpan data) override;
  std::optional<ByteVec> get(Ns ns, const std::string& name) const override;
  std::optional<ByteVec> get_range(Ns ns, const std::string& name,
                                   std::uint64_t offset,
                                   std::uint64_t length) const override;
  bool exists(Ns ns, const std::string& name) const override;
  bool remove(Ns ns, const std::string& name) override;
  std::uint64_t object_count(Ns ns) const override;
  std::uint64_t content_bytes(Ns ns) const override;
  std::vector<std::string> list(Ns ns) const override;
  void seal(Ns ns, const std::string& name) override;

  StorageBackend& inner() { return inner_; }
  const StorageBackend& inner() const { return inner_; }
  const ContainerConfig& config() const { return cfg_; }

  /// Seals the open container (if it holds any bytes) so every packed byte
  /// is a clean stream below. Called from the destructor; callers that
  /// measure or fsck the inner backend mid-life call it explicitly.
  void flush();

  /// Container id holding the chunk's bytes at `logical_offset`; nullopt
  /// for an unknown chunk. This is the placement query rewrite algorithms
  /// (CBR/HAR) make at dedup time.
  std::optional<std::uint64_t> locate(const std::string& chunk_name,
                                      std::uint64_t logical_offset) const;

  /// Id of the currently open (still-filling) container.
  std::uint64_t open_container() const { return open_id_; }

  /// Data bytes packed into container `id` (0 if unknown) — the HAR
  /// utilization denominator.
  std::uint64_t container_data_bytes(std::uint64_t id) const;

  /// GC sweep: removes sealed containers referenced by no surviving chunk
  /// extent map. Returns {containers removed, payload bytes reclaimed}.
  /// Run after the chunk-map sweep of collect_garbage().
  std::pair<std::uint64_t, std::uint64_t> sweep_containers();

  /// Empties the whole-container LRU cache (the counters are untouched).
  /// Restore benchmarks call this to measure from a cold cache instead of
  /// whatever ingest/verification happened to leave resident.
  void drop_cache();

  ContainerStats stats() const;

  static std::string container_name(std::uint64_t id);
  static std::optional<std::uint64_t> parse_container_name(
      const std::string& name);

  /// (De)serialization of an extent map (the Ns::kChunkMap payload).
  static ByteVec serialize_extents(const std::vector<Extent>& extents);
  static std::optional<std::vector<Extent>> parse_extents(ByteSpan bytes);

 private:
  using ExtentMap = std::vector<Extent>;

  /// Extent map for a chunk: committed (RAM cache over kChunkMap) or still
  /// pending. nullptr when the chunk is unknown. Caller holds mu_.
  const ExtentMap* extents_for(const std::string& name) const;

  /// Bytes [offset, offset+length) of container `id`, via the open image,
  /// the cache, or a whole-container load. Caller holds mu_.
  std::optional<ByteVec> read_container_range(std::uint64_t id,
                                              std::uint64_t offset,
                                              std::uint64_t length) const;
  void cache_insert(std::uint64_t id, ByteVec bytes) const;
  void roll_container();

  StorageBackend& inner_;
  ContainerConfig cfg_;

  mutable std::mutex mu_;

  std::uint64_t open_id_ = 0;
  std::uint64_t open_fill_ = 0;  ///< payload bytes in the open container
  ByteVec open_image_;           ///< in-RAM copy of the open container
  mutable std::unordered_map<std::uint64_t, std::uint64_t> container_fill_;

  std::unordered_map<std::string, ExtentMap> pending_;    ///< unsealed chunks
  mutable std::unordered_map<std::string, ExtentMap> committed_;  ///< cache
  std::uint64_t chunk_logical_bytes_ = 0;  ///< content_bytes(kDiskChunk)

  // Whole-container LRU cache (recency list + index), byte-budgeted.
  struct CacheEntry {
    std::uint64_t id = 0;
    ByteVec bytes;
  };
  mutable std::vector<CacheEntry> lru_;  ///< front = most recent
  mutable std::uint64_t cached_bytes_ = 0;

  mutable ContainerStats stats_;
};

}  // namespace mhd
