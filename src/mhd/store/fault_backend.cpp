#include "mhd/store/fault_backend.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "mhd/store/store_errors.h"
#include "mhd/util/random.h"

namespace mhd {

namespace {

std::uint64_t parse_u64(const std::string& atom, const std::string& s) {
  std::size_t used = 0;
  const unsigned long long v = std::stoull(s, &used);
  if (used != s.size()) {
    throw std::invalid_argument("fault plan: bad number in '" + atom + "'");
  }
  return v;
}

double parse_fraction(const std::string& atom, const std::string& s) {
  std::size_t used = 0;
  const double f = std::stod(s, &used);
  if (used != s.size() || f < 0.0 || f > 1.0) {
    throw std::invalid_argument("fault plan: fraction outside [0,1] in '" +
                                atom + "'");
  }
  return f;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    std::string atom = spec.substr(start, end - start);
    start = end + 1;
    // Trim surrounding whitespace.
    while (!atom.empty() && std::isspace(static_cast<unsigned char>(atom.front()))) atom.erase(atom.begin());
    while (!atom.empty() && std::isspace(static_cast<unsigned char>(atom.back()))) atom.pop_back();
    if (atom.empty()) continue;

    try {
      if (atom.rfind("seed:", 0) == 0) {
        plan.seed = parse_u64(atom, atom.substr(5));
      } else if (atom.rfind("fail@", 0) == 0) {
        plan.fail_ops.push_back(parse_u64(atom, atom.substr(5)));
      } else if (atom.rfind("torn@", 0) == 0) {
        const std::string rest = atom.substr(5);
        const std::size_t colon = rest.find(':');
        Tear tear;
        tear.op = parse_u64(atom, rest.substr(0, colon));
        if (colon != std::string::npos) {
          tear.fraction = parse_fraction(atom, rest.substr(colon + 1));
        }
        plan.torn_ops.push_back(tear);
      } else if (atom.rfind("crash@", 0) == 0) {
        if (plan.crash) {
          throw std::invalid_argument("fault plan: multiple crash@ atoms");
        }
        const std::string rest = atom.substr(6);
        const std::size_t colon = rest.find(':');
        Tear tear;
        tear.op = parse_u64(atom, rest.substr(0, colon));
        if (colon != std::string::npos) {
          tear.fraction = parse_fraction(atom, rest.substr(colon + 1));
        }
        plan.crash = tear;
      } else if (atom.rfind("readerr@", 0) == 0) {
        const std::string rest = atom.substr(8);
        const std::size_t x = rest.find('x');
        ReadErr re;
        re.first = parse_u64(atom, rest.substr(0, x));
        if (x != std::string::npos) {
          re.count = parse_u64(atom, rest.substr(x + 1));
        }
        plan.read_errors.push_back(re);
      } else {
        throw std::invalid_argument("fault plan: unknown atom '" + atom + "'");
      }
    } catch (const std::invalid_argument&) {
      throw;
    } catch (const std::exception&) {
      throw std::invalid_argument("fault plan: malformed atom '" + atom + "'");
    }
    if (end == spec.size()) break;
  }
  return plan;
}

FaultInjectingBackend::FaultInjectingBackend(StorageBackend& inner,
                                             FaultPlan plan)
    : inner_(inner), plan_(std::move(plan)) {}

void FaultInjectingBackend::check_crashed() const {
  if (crashed_) {
    throw CrashStopError("fault backend: crash-stopped");
  }
}

double FaultInjectingBackend::tear_fraction(
    const FaultPlan::Tear& tear) const {
  if (tear.fraction >= 0.0) return tear.fraction;
  // Drawn fraction: deterministic in (plan seed, op index) alone.
  Xoshiro256 rng(plan_.seed ^ (tear.op * 0x9E3779B97F4A7C15ull));
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

double FaultInjectingBackend::on_mutation() {
  check_crashed();
  const std::uint64_t op = ++mutations_;
  if (plan_.crash && plan_.crash->op == op) {
    const double frac = plan_.crash->fraction >= 0.0
                            ? tear_fraction(*plan_.crash)
                            : 0.0;  // crash@N alone: nothing persists
    crashed_ = true;
    if (frac > 0.0) return frac;  // caller persists the torn prefix first
    throw CrashStopError("fault backend: crash at op " + std::to_string(op));
  }
  for (const std::uint64_t f : plan_.fail_ops) {
    if (f == op) {
      throw BackendIoError("fault backend: injected failure at op " +
                           std::to_string(op));
    }
  }
  for (const auto& tear : plan_.torn_ops) {
    if (tear.op == op) return tear_fraction(tear);
  }
  return 1.0;
}

void FaultInjectingBackend::on_read() const {
  check_crashed();
  const std::uint64_t op = ++reads_;
  for (const auto& re : plan_.read_errors) {
    if (op >= re.first && op < re.first + re.count) {
      throw TransientReadError("fault backend: injected read error at read " +
                               std::to_string(op));
    }
  }
}

void FaultInjectingBackend::put(Ns ns, const std::string& name,
                                ByteSpan data) {
  const double frac = on_mutation();
  if (frac >= 1.0) {
    inner_.put(ns, name, data);
  } else {
    const auto keep = static_cast<std::size_t>(
        std::floor(frac * static_cast<double>(data.size())));
    inner_.put(ns, name, data.first(keep));
  }
  if (crashed_) {
    throw CrashStopError("fault backend: crash tore put to " +
                         std::to_string(frac));
  }
}

void FaultInjectingBackend::append(Ns ns, const std::string& name,
                                   ByteSpan data) {
  const double frac = on_mutation();
  if (frac >= 1.0) {
    inner_.append(ns, name, data);
  } else {
    const auto keep = static_cast<std::size_t>(
        std::floor(frac * static_cast<double>(data.size())));
    inner_.append(ns, name, data.first(keep));
  }
  if (crashed_) {
    throw CrashStopError("fault backend: crash tore append to " +
                         std::to_string(frac));
  }
}

bool FaultInjectingBackend::remove(Ns ns, const std::string& name) {
  const double frac = on_mutation();
  if (frac < 1.0) return false;  // a "torn" remove simply doesn't happen
  return inner_.remove(ns, name);
}

std::optional<ByteVec> FaultInjectingBackend::get(
    Ns ns, const std::string& name) const {
  on_read();
  return inner_.get(ns, name);
}

std::optional<ByteVec> FaultInjectingBackend::get_range(
    Ns ns, const std::string& name, std::uint64_t offset,
    std::uint64_t length) const {
  on_read();
  return inner_.get_range(ns, name, offset, length);
}

bool FaultInjectingBackend::exists(Ns ns, const std::string& name) const {
  check_crashed();
  return inner_.exists(ns, name);
}

std::uint64_t FaultInjectingBackend::object_count(Ns ns) const {
  return inner_.object_count(ns);
}

std::uint64_t FaultInjectingBackend::content_bytes(Ns ns) const {
  return inner_.content_bytes(ns);
}

std::vector<std::string> FaultInjectingBackend::list(Ns ns) const {
  return inner_.list(ns);
}

void FaultInjectingBackend::seal(Ns ns, const std::string& name) {
  // Not counted as a mutation: raw seal is a no-op, and in the framed
  // stack the seal arrives here as an append (already counted).
  check_crashed();
  inner_.seal(ns, name);
}

}  // namespace mhd
