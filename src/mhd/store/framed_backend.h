// FramedBackend — the self-verifying layer of the storage stack.
//
// A StorageBackend decorator that stores every object with CRC32C framing
// (see framing.h) in the inner backend while presenting the *logical*
// (unframed) view to callers: content_bytes, get, and get_range all speak
// logical bytes, so engine accounting and manifest offsets are unchanged
// whether or not the repository is framed.
//
// Layering (outermost first):
//
//     ObjectStore → FramedBackend → [FaultInjectingBackend] → File/Memory
//
// Faults are injected *below* the framing, so a torn write or bit flip
// lands in framed bytes and is detected on the next read as a typed
// CorruptObjectError — absent stays nullopt, corrupt throws. fsck operates
// on the inner (raw) backend where torn/corrupt structure is visible.
//
// DiskChunks use per-append record framing and are finished by seal();
// the other namespaces are sealed whole objects. Appending to a sealed
// stream or reading an unsealed one is a caller bug and reads as corrupt.
#pragma once

#include <array>
#include <unordered_map>

#include "mhd/store/backend.h"

namespace mhd {

class FramedBackend final : public StorageBackend {
 public:
  /// Adopts pre-existing framed content in `inner` (reopening a
  /// repository): scans every object to rebuild logical sizes. Torn or
  /// corrupt objects count their salvageable logical prefix.
  explicit FramedBackend(StorageBackend& inner);

  void put(Ns ns, const std::string& name, ByteSpan data) override;
  void append(Ns ns, const std::string& name, ByteSpan data) override;
  std::optional<ByteVec> get(Ns ns, const std::string& name) const override;
  std::optional<ByteVec> get_range(Ns ns, const std::string& name,
                                   std::uint64_t offset,
                                   std::uint64_t length) const override;
  bool exists(Ns ns, const std::string& name) const override;
  bool remove(Ns ns, const std::string& name) override;
  std::uint64_t object_count(Ns ns) const override;
  /// Logical payload bytes (framing overhead excluded).
  std::uint64_t content_bytes(Ns ns) const override;
  std::vector<std::string> list(Ns ns) const override;
  void seal(Ns ns, const std::string& name) override;

  StorageBackend& inner() { return inner_; }
  const StorageBackend& inner() const { return inner_; }

  /// Framed bytes actually stored below — physical − logical is the
  /// framing overhead reported by the pipeline bench.
  std::uint64_t physical_bytes(Ns ns) const { return inner_.content_bytes(ns); }

 private:
  using SizeMap = std::unordered_map<std::string, std::uint64_t>;
  SizeMap& sizes(Ns ns) { return sizes_[static_cast<int>(ns)]; }
  const SizeMap& sizes(Ns ns) const { return sizes_[static_cast<int>(ns)]; }

  /// Whole logical object or a typed error; never a silent wrong answer.
  ByteVec verified_get(Ns ns, const std::string& name,
                       const ByteVec& framed) const;

  StorageBackend& inner_;
  std::array<SizeMap, static_cast<int>(Ns::kCount)> sizes_;
  std::array<std::uint64_t, static_cast<int>(Ns::kCount)> bytes_{};
};

}  // namespace mhd
