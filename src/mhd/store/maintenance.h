// Repository maintenance: integrity scrubbing and garbage collection.
//
// The paper's system only ever adds backups; a production deduplication
// store also needs deletion. Deletion is two-phase here, as in most
// content-addressed stores:
//   1. delete_file() removes a FileManifest (the only object that makes
//      a file reachable);
//   2. collect_garbage() mark-and-sweeps: DiskChunks referenced by no
//      FileManifest are deleted together with their Manifests, and hooks
//      whose target manifest disappeared are dropped.
// scrub_repository() verifies the invariants everything else relies on:
// every FileManifest range resolves, every (parseable) Manifest's entries
// hash-match its DiskChunk bytes and tile it exactly, and every hook
// points at an existing manifest.
#pragma once

#include <cstdint>
#include <string>

#include "mhd/store/backend.h"

namespace mhd {

struct ScrubReport {
  std::uint64_t file_manifests = 0;
  std::uint64_t manifests = 0;
  std::uint64_t opaque_manifests = 0;  ///< engine-specific formats, skipped
  std::uint64_t chunks = 0;
  std::uint64_t hooks = 0;

  std::uint64_t broken_file_ranges = 0;   ///< FileManifest range unresolvable
  std::uint64_t manifest_hash_mismatches = 0;
  std::uint64_t manifest_coverage_errors = 0;  ///< entries don't tile chunk
  std::uint64_t dangling_hooks = 0;            ///< hook -> missing manifest
  std::uint64_t unparseable = 0;
  std::uint64_t corrupt_objects = 0;  ///< CRC-failing reads (framed stores)

  // Persistent fingerprint index (zero when no index is present).
  std::uint64_t index_entries = 0;
  std::uint64_t stale_index_entries = 0;  ///< entry -> missing manifest
  std::uint64_t unindexed_hooks = 0;      ///< informational (lost journal)

  // Sampled similarity tier (zero when none is present): hook-table
  // entries are cross-checked against live manifests — a stale champion
  // could pull a swept segment back into the cache.
  std::uint64_t sampled_hook_entries = 0;
  std::uint64_t stale_sampled_champions = 0;

  bool clean() const {
    return broken_file_ranges == 0 && manifest_hash_mismatches == 0 &&
           manifest_coverage_errors == 0 && dangling_hooks == 0 &&
           unparseable == 0 && corrupt_objects == 0 &&
           stale_index_entries == 0 && stale_sampled_champions == 0;
  }
};

/// Full integrity pass over a repository (read-only).
ScrubReport scrub_repository(const StorageBackend& backend);

/// Removes the FileManifest of `file_name`; returns false if absent.
/// The file's data becomes garbage-collectable unless shared.
bool delete_file(StorageBackend& backend, const std::string& file_name);

struct GcReport {
  std::uint64_t live_chunks = 0;
  std::uint64_t deleted_chunks = 0;
  std::uint64_t deleted_manifests = 0;
  std::uint64_t deleted_hooks = 0;
  std::uint64_t reclaimed_bytes = 0;
  /// Persistent fingerprint index, when one exists: GC rebuilds it from
  /// the surviving hooks so swept manifests leave no stale entries.
  bool index_rebuilt = false;
  std::uint64_t index_entries = 0;
  std::uint64_t dropped_index_entries = 0;
  /// Sampled similarity tier, when one exists: rebuilt the same way so
  /// swept champions drop out of the hook table.
  bool sampled_index_rebuilt = false;
  std::uint64_t sampled_hook_entries = 0;
  std::uint64_t dropped_sampled_champions = 0;
  /// Container layer (zero without one): sealed containers referenced by
  /// no surviving chunk map, swept after the chunk sweep. Their payload
  /// bytes are the physical copies of the logical reclaimed_bytes, so
  /// they are reported separately, not added into reclaimed_bytes.
  std::uint64_t deleted_containers = 0;
  std::uint64_t container_bytes_reclaimed = 0;
};

/// Mark-and-sweep garbage collection (see file comment). Safe to run at
/// any time between backups; never touches objects reachable from a
/// FileManifest. On a framed store a CorruptObjectError propagates: a
/// FileManifest that cannot be read could reference any chunk, so sweeping
/// past it would risk deleting live data — run fsck_repository() first.
GcReport collect_garbage(StorageBackend& backend);

}  // namespace mhd
