// In-memory storage backend with exact inode/byte accounting.
#pragma once

#include <unordered_map>

#include "mhd/store/backend.h"

namespace mhd {

class MemoryBackend final : public StorageBackend {
 public:
  void put(Ns ns, const std::string& name, ByteSpan data) override;
  void append(Ns ns, const std::string& name, ByteSpan data) override;
  std::optional<ByteVec> get(Ns ns, const std::string& name) const override;
  std::optional<ByteVec> get_range(Ns ns, const std::string& name,
                                   std::uint64_t offset,
                                   std::uint64_t length) const override;
  bool exists(Ns ns, const std::string& name) const override;
  bool remove(Ns ns, const std::string& name) override;
  std::uint64_t object_count(Ns ns) const override;
  std::uint64_t content_bytes(Ns ns) const override;
  std::vector<std::string> list(Ns ns) const override;

 private:
  using Map = std::unordered_map<std::string, ByteVec>;
  Map& space(Ns ns) { return spaces_[static_cast<int>(ns)]; }
  const Map& space(Ns ns) const { return spaces_[static_cast<int>(ns)]; }

  std::array<Map, static_cast<int>(Ns::kCount)> spaces_;
  std::array<std::uint64_t, static_cast<int>(Ns::kCount)> bytes_{};
};

}  // namespace mhd
