#include "mhd/store/container_store.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "mhd/store/store_errors.h"

namespace mhd {

namespace {

constexpr std::uint32_t kExtentMagic = 0x314D5843u;  // "CXM1"
constexpr std::size_t kExtentBytes = 24;             // 3 x u64

}  // namespace

std::string ContainerBackend::container_name(std::uint64_t id) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "c%08llx",
                static_cast<unsigned long long>(id));
  return buf;
}

std::optional<std::uint64_t> ContainerBackend::parse_container_name(
    const std::string& name) {
  if (name.size() < 2 || name[0] != 'c') return std::nullopt;
  char* end = nullptr;
  const unsigned long long id = std::strtoull(name.c_str() + 1, &end, 16);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return id;
}

ByteVec ContainerBackend::serialize_extents(const std::vector<Extent>& extents) {
  ByteVec out;
  out.reserve(8 + extents.size() * kExtentBytes);
  append_le<std::uint32_t>(out, kExtentMagic);
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(extents.size()));
  for (const Extent& e : extents) {
    append_le<std::uint64_t>(out, e.container);
    append_le<std::uint64_t>(out, e.offset);
    append_le<std::uint64_t>(out, e.length);
  }
  return out;
}

std::optional<std::vector<ContainerBackend::Extent>>
ContainerBackend::parse_extents(ByteSpan bytes) {
  if (bytes.size() < 8) return std::nullopt;
  if (load_le<std::uint32_t>(bytes.data()) != kExtentMagic) return std::nullopt;
  const std::uint32_t count = load_le<std::uint32_t>(bytes.data() + 4);
  if (bytes.size() != 8 + static_cast<std::size_t>(count) * kExtentBytes) {
    return std::nullopt;
  }
  std::vector<Extent> out;
  out.reserve(count);
  const Byte* p = bytes.data() + 8;
  for (std::uint32_t i = 0; i < count; ++i, p += kExtentBytes) {
    out.push_back({load_le<std::uint64_t>(p), load_le<std::uint64_t>(p + 8),
                   load_le<std::uint64_t>(p + 16)});
  }
  return out;
}

ContainerBackend::ContainerBackend(StorageBackend& inner, ContainerConfig config)
    : inner_(inner), cfg_(config) {
  if (cfg_.container_bytes == 0) cfg_.container_bytes = 4ull << 20;
  // Sealed container streams are immutable: reopening always starts the
  // next fresh id after anything already present (clean, torn, or not).
  for (const auto& name : inner_.list(Ns::kContainer)) {
    if (const auto id = parse_container_name(name)) {
      open_id_ = std::max(open_id_, *id + 1);
    }
  }
  // Adopt committed extent maps so the logical chunk namespace (exists,
  // list, content_bytes) is complete from the start. Maps that fail CRC
  // verification are skipped here — fsck owns quarantining them.
  for (const auto& name : inner_.list(Ns::kChunkMap)) {
    try {
      const auto raw = inner_.get(Ns::kChunkMap, name);
      if (!raw) continue;
      auto extents = parse_extents(*raw);
      if (!extents) continue;
      for (const Extent& e : *extents) chunk_logical_bytes_ += e.length;
      committed_.emplace(name, std::move(*extents));
    } catch (const CorruptObjectError&) {
    }
  }
}

ContainerBackend::~ContainerBackend() {
  // The seal write may throw (crash-stop plans, dead device); destruction
  // during unwind must not double-throw. The open container is then torn
  // below — exactly what fsck repairs.
  try {
    flush();
  } catch (...) {
  }
}

void ContainerBackend::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (open_fill_ > 0) roll_container();
}

void ContainerBackend::roll_container() {
  inner_.seal(Ns::kContainer, container_name(open_id_));
  container_fill_[open_id_] = open_fill_;
  cache_insert(open_id_, std::move(open_image_));
  ++stats_.containers_sealed;
  ++open_id_;
  open_fill_ = 0;
  open_image_ = ByteVec();
}

void ContainerBackend::cache_insert(std::uint64_t id, ByteVec bytes) const {
  if (bytes.size() > cfg_.cache_bytes) return;  // would evict everything
  cached_bytes_ += bytes.size();
  lru_.insert(lru_.begin(), {id, std::move(bytes)});
  while (cached_bytes_ > cfg_.cache_bytes && !lru_.empty()) {
    cached_bytes_ -= lru_.back().bytes.size();
    lru_.pop_back();
    ++stats_.cache_evictions;
  }
}

void ContainerBackend::append(Ns ns, const std::string& name, ByteSpan data) {
  if (ns != Ns::kDiskChunk) {
    inner_.append(ns, name, data);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ExtentMap& extents = pending_[name];
  while (!data.empty()) {
    if (open_fill_ >= cfg_.container_bytes) roll_container();
    const std::uint64_t room = cfg_.container_bytes - open_fill_;
    const std::size_t take =
        static_cast<std::size_t>(std::min<std::uint64_t>(room, data.size()));
    const ByteSpan piece = data.first(take);
    inner_.append(Ns::kContainer, container_name(open_id_), piece);
    mhd::append(open_image_, piece);
    if (!extents.empty() && extents.back().container == open_id_ &&
        extents.back().offset + extents.back().length == open_fill_) {
      extents.back().length += take;
    } else {
      extents.push_back({open_id_, open_fill_, take});
    }
    open_fill_ += take;
    stats_.packed_bytes += take;
    chunk_logical_bytes_ += take;
    data = data.subspan(take);
  }
}

void ContainerBackend::seal(Ns ns, const std::string& name) {
  if (ns != Ns::kDiskChunk) {
    inner_.seal(ns, name);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = pending_.find(name);
  if (it == pending_.end()) return;  // already committed or never written
  // The commit point: every extent below was appended by an earlier
  // mutation, so the map never names bytes that might not be durable.
  inner_.put(Ns::kChunkMap, name, serialize_extents(it->second));
  committed_[name] = std::move(it->second);
  pending_.erase(it);
}

void ContainerBackend::put(Ns ns, const std::string& name, ByteSpan data) {
  if (ns != Ns::kDiskChunk) {
    inner_.put(ns, name, data);
    return;
  }
  // Whole-object chunk put = replace: drop any prior mapping, pack, commit.
  remove(Ns::kDiskChunk, name);
  append(Ns::kDiskChunk, name, data);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.find(name) == pending_.end()) pending_[name] = {};
  }
  seal(Ns::kDiskChunk, name);
}

const ContainerBackend::ExtentMap* ContainerBackend::extents_for(
    const std::string& name) const {
  if (const auto it = committed_.find(name); it != committed_.end()) {
    return &it->second;
  }
  if (const auto it = pending_.find(name); it != pending_.end()) {
    return &it->second;
  }
  // Fallback for maps that appeared below after construction (tests, fsck
  // repairs): verify-read and adopt. Corruption propagates to the caller.
  const auto raw = inner_.get(Ns::kChunkMap, name);
  if (!raw) return nullptr;
  auto extents = parse_extents(*raw);
  if (!extents) {
    throw CorruptObjectError(Ns::kChunkMap, name, "unparseable extent map");
  }
  return &committed_.emplace(name, std::move(*extents)).first->second;
}

std::optional<ByteVec> ContainerBackend::read_container_range(
    std::uint64_t id, std::uint64_t offset, std::uint64_t length) const {
  if (id == open_id_) {
    if (offset > open_image_.size() || length > open_image_.size() - offset) {
      return std::nullopt;
    }
    ++stats_.open_hits;
    return ByteVec(open_image_.begin() + static_cast<std::ptrdiff_t>(offset),
                   open_image_.begin() +
                       static_cast<std::ptrdiff_t>(offset + length));
  }
  const ByteVec* bytes = nullptr;
  for (std::size_t i = 0; i < lru_.size(); ++i) {
    if (lru_[i].id != id) continue;
    if (i != 0) std::rotate(lru_.begin(), lru_.begin() + i, lru_.begin() + i + 1);
    bytes = &lru_.front().bytes;
    ++stats_.cache_hits;
    break;
  }
  if (bytes != nullptr) {
    if (offset > bytes->size() || length > bytes->size() - offset) {
      return std::nullopt;
    }
    return ByteVec(bytes->begin() + static_cast<std::ptrdiff_t>(offset),
                   bytes->begin() +
                       static_cast<std::ptrdiff_t>(offset + length));
  }
  auto loaded = inner_.get(Ns::kContainer, container_name(id));
  if (!loaded) return std::nullopt;
  ++stats_.container_reads;
  stats_.container_read_bytes += loaded->size();
  container_fill_.emplace(id, loaded->size());
  if (offset > loaded->size() || length > loaded->size() - offset) {
    return std::nullopt;
  }
  ByteVec out(loaded->begin() + static_cast<std::ptrdiff_t>(offset),
              loaded->begin() + static_cast<std::ptrdiff_t>(offset + length));
  cache_insert(id, std::move(*loaded));
  return out;
}

std::optional<ByteVec> ContainerBackend::get_range(Ns ns,
                                                   const std::string& name,
                                                   std::uint64_t offset,
                                                   std::uint64_t length) const {
  if (ns != Ns::kDiskChunk) return inner_.get_range(ns, name, offset, length);
  std::lock_guard<std::mutex> lock(mu_);
  const ExtentMap* extents = extents_for(name);
  if (extents == nullptr) return std::nullopt;
  std::uint64_t total = 0;
  for (const Extent& e : *extents) total += e.length;
  if (offset > total || length > total - offset) return std::nullopt;
  ByteVec out;
  out.reserve(static_cast<std::size_t>(length));
  std::uint64_t pos = 0;       // logical position of the current extent
  std::uint64_t need = length;
  for (const Extent& e : *extents) {
    if (need == 0) break;
    if (offset >= pos + e.length) {
      pos += e.length;
      continue;
    }
    const std::uint64_t skip = offset > pos ? offset - pos : 0;
    const std::uint64_t take = std::min<std::uint64_t>(e.length - skip, need);
    auto piece = read_container_range(e.container, e.offset + skip, take);
    if (!piece) return std::nullopt;
    mhd::append(out, *piece);
    offset += take;
    need -= take;
    pos += e.length;
  }
  if (need != 0) return std::nullopt;
  return out;
}

std::optional<ByteVec> ContainerBackend::get(Ns ns,
                                             const std::string& name) const {
  if (ns != Ns::kDiskChunk) return inner_.get(ns, name);
  std::uint64_t total = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const ExtentMap* extents = extents_for(name);
    if (extents == nullptr) return std::nullopt;
    for (const Extent& e : *extents) total += e.length;
  }
  return get_range(Ns::kDiskChunk, name, 0, total);
}

bool ContainerBackend::exists(Ns ns, const std::string& name) const {
  if (ns != Ns::kDiskChunk) return inner_.exists(ns, name);
  std::lock_guard<std::mutex> lock(mu_);
  return committed_.count(name) > 0 || pending_.count(name) > 0 ||
         inner_.exists(Ns::kChunkMap, name);
}

bool ContainerBackend::remove(Ns ns, const std::string& name) {
  if (ns != Ns::kDiskChunk) return inner_.remove(ns, name);
  std::lock_guard<std::mutex> lock(mu_);
  bool existed = false;
  for (auto* map : {&committed_, &pending_}) {
    const auto it = map->find(name);
    if (it == map->end()) continue;
    for (const Extent& e : it->second) chunk_logical_bytes_ -= e.length;
    map->erase(it);
    existed = true;
  }
  return inner_.remove(Ns::kChunkMap, name) || existed;
}

std::uint64_t ContainerBackend::object_count(Ns ns) const {
  if (ns != Ns::kDiskChunk) return inner_.object_count(ns);
  std::lock_guard<std::mutex> lock(mu_);
  return committed_.size() + pending_.size();
}

std::uint64_t ContainerBackend::content_bytes(Ns ns) const {
  if (ns != Ns::kDiskChunk) return inner_.content_bytes(ns);
  std::lock_guard<std::mutex> lock(mu_);
  return chunk_logical_bytes_;
}

std::vector<std::string> ContainerBackend::list(Ns ns) const {
  if (ns != Ns::kDiskChunk) return inner_.list(ns);
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(committed_.size() + pending_.size());
  for (const auto& [name, _] : committed_) names.push_back(name);
  for (const auto& [name, _] : pending_) {
    if (committed_.count(name) == 0) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::optional<std::uint64_t> ContainerBackend::locate(
    const std::string& chunk_name, std::uint64_t logical_offset) const {
  std::lock_guard<std::mutex> lock(mu_);
  const ExtentMap* extents = nullptr;
  try {
    extents = extents_for(chunk_name);
  } catch (const CorruptObjectError&) {
    return std::nullopt;  // advisory query: unknown, never an abort
  }
  if (extents == nullptr) return std::nullopt;
  std::uint64_t pos = 0;
  for (const Extent& e : *extents) {
    if (logical_offset < pos + e.length) return e.container;
    pos += e.length;
  }
  return std::nullopt;
}

std::uint64_t ContainerBackend::container_data_bytes(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == open_id_) return open_fill_;
  if (const auto it = container_fill_.find(id); it != container_fill_.end()) {
    return it->second;
  }
  try {
    if (const auto bytes = inner_.get(Ns::kContainer, container_name(id))) {
      container_fill_.emplace(id, bytes->size());
      return bytes->size();
    }
  } catch (const CorruptObjectError&) {
  }
  return 0;
}

std::pair<std::uint64_t, std::uint64_t> ContainerBackend::sweep_containers() {
  std::lock_guard<std::mutex> lock(mu_);
  std::unordered_map<std::uint64_t, bool> live;
  for (const auto* map : {&committed_, &pending_}) {
    for (const auto& [_, extents] : *map) {
      for (const Extent& e : extents) live[e.container] = true;
    }
  }
  std::uint64_t removed = 0, reclaimed = 0;
  for (const auto& name : inner_.list(Ns::kContainer)) {
    const auto id = parse_container_name(name);
    if (!id || *id == open_id_ || live.count(*id) > 0) continue;
    std::uint64_t payload = 0;
    if (const auto it = container_fill_.find(*id);
        it != container_fill_.end()) {
      payload = it->second;
    } else {
      try {
        if (const auto bytes = inner_.get(Ns::kContainer, name)) {
          payload = bytes->size();
        }
      } catch (const CorruptObjectError&) {
        continue;  // torn/corrupt containers belong to fsck, not GC
      }
    }
    if (!inner_.remove(Ns::kContainer, name)) continue;
    container_fill_.erase(*id);
    for (std::size_t i = 0; i < lru_.size(); ++i) {
      if (lru_[i].id != *id) continue;
      cached_bytes_ -= lru_[i].bytes.size();
      lru_.erase(lru_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
    ++removed;
    reclaimed += payload;
  }
  return {removed, reclaimed};
}

void ContainerBackend::drop_cache() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  cached_bytes_ = 0;
}

ContainerStats ContainerBackend::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace mhd
