// Typed storage errors — the durability layer's failure vocabulary.
//
// The base StorageBackend contract distinguishes only present/absent
// (optional returns). The durability layer needs a richer taxonomy, and it
// matters who gets to see which error:
//
//  * CorruptObjectError  — the object exists but fails its CRC32C framing
//    (bit rot, torn write, truncation). Never retryable; engines degrade
//    gracefully (treat the region as non-duplicate), restore paths stop
//    rather than emit wrong bytes, and fsck quarantines.
//  * TransientReadError  — the read may succeed if retried (the fault
//    injector's transient mode; a real system's EINTR/EIO-with-retry
//    class). ObjectStore retries these with bounded backoff.
//  * BackendIoError      — a permanent I/O failure of one operation
//    (ENOSPC short write, failed close). The op did not take effect
//    logically; on-disk garbage, if any, is detectable via framing.
//  * CrashStopError      — the injected crash-stop: the backend is dead
//    and every subsequent operation fails. The crash-recovery harness
//    catches this, reopens, and runs fsck.
//
// All derive from StoreError so call sites can catch the family.
#pragma once

#include <stdexcept>
#include <string>

#include "mhd/store/backend.h"

namespace mhd {

struct StoreError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class CorruptObjectError : public StoreError {
 public:
  CorruptObjectError(Ns ns, std::string name, const std::string& detail)
      : StoreError("corrupt object " + std::string(ns_name(ns)) + "/" + name +
                   ": " + detail),
        ns_(ns),
        name_(std::move(name)) {}

  Ns ns() const { return ns_; }
  const std::string& object_name() const { return name_; }

 private:
  Ns ns_;
  std::string name_;
};

struct TransientReadError : StoreError {
  using StoreError::StoreError;
};

struct BackendIoError : StoreError {
  using StoreError::StoreError;
};

struct CrashStopError : StoreError {
  using StoreError::StoreError;
};

}  // namespace mhd
