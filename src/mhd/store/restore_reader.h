// RestoreReader — streaming file reconstruction.
//
// DedupEngine::reconstruct() materializes the whole file; that is fine for
// tests but not for multi-gigabyte disk images. RestoreReader is a
// ByteSource over a FileManifest: it resolves one recipe entry at a time
// and streams the bytes out with a small read buffer, so a restore runs in
// O(buffer) memory. It also exposes the total length up front (for
// progress reporting) and fails with a poisoned state rather than
// returning wrong bytes if the repository is damaged mid-stream.
#pragma once

#include <optional>
#include <string>

#include "mhd/chunk/byte_source.h"
#include "mhd/format/file_manifest.h"
#include "mhd/store/backend.h"

namespace mhd {

class RestoreReader final : public ByteSource {
 public:
  /// Opens a restore stream for `file_name`; nullopt if the file is not in
  /// the repository (no FileManifest).
  static std::optional<RestoreReader> open(const StorageBackend& backend,
                                           const std::string& file_name);

  /// Total bytes this restore will produce.
  std::uint64_t total_length() const { return total_; }

  /// Bytes produced so far (progress).
  std::uint64_t produced() const { return produced_; }

  /// False once an unresolvable recipe entry has been hit; read() returns
  /// 0 from then on (a short restore, never corrupt bytes).
  bool ok() const { return ok_; }

  /// TransientReadErrors absorbed by the bounded in-stream retry. A
  /// restore that completed with retries is still byte-exact; only an
  /// exhausted retry budget surfaces as a TransientReadError to the
  /// caller (who may restart the whole restore).
  std::uint64_t transient_retries() const { return transient_retries_; }

  std::size_t read(MutByteSpan out) override;

 private:
  RestoreReader(const StorageBackend& backend, FileManifest fm);

  const StorageBackend* backend_;
  FileManifest fm_;
  std::size_t entry_index_ = 0;
  std::uint64_t entry_pos_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t produced_ = 0;
  std::uint64_t transient_retries_ = 0;
  bool ok_ = true;
};

}  // namespace mhd
