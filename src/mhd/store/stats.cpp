#include "mhd/store/stats.h"

#include <sstream>

namespace mhd {

const char* access_kind_name(AccessKind kind) {
  switch (kind) {
    case AccessKind::kChunkOut: return "Chunk Output";
    case AccessKind::kChunkIn: return "Chunk Input";
    case AccessKind::kHookOut: return "Hook Output";
    case AccessKind::kHookIn: return "Hook Input";
    case AccessKind::kManifestOut: return "Manifest Output";
    case AccessKind::kManifestIn: return "Manifest Input";
    case AccessKind::kBigChunkQuery: return "Big Chunk Query";
    case AccessKind::kSmallChunkQuery: return "Small Chunk Query";
    case AccessKind::kFileManifestOut: return "FileManifest Output";
    case AccessKind::kFileManifestIn: return "FileManifest Input";
    case AccessKind::kCount: break;
  }
  return "?";
}

std::uint64_t StorageStats::total_accesses() const {
  std::uint64_t total = 0;
  for (const auto c : accesses) total += c;
  return total;
}

std::uint64_t StorageStats::io_accesses() const {
  return total_accesses() - count(AccessKind::kBigChunkQuery) -
         count(AccessKind::kSmallChunkQuery);
}

StorageStats& StorageStats::operator+=(const StorageStats& other) {
  for (int i = 0; i < kKinds; ++i) accesses[i] += other.accesses[i];
  bytes_written += other.bytes_written;
  bytes_read += other.bytes_read;
  transient_retries += other.transient_retries;
  return *this;
}

std::string StorageStats::to_string() const {
  std::ostringstream out;
  for (int i = 0; i < kKinds; ++i) {
    const auto kind = static_cast<AccessKind>(i);
    if (accesses[i] != 0) {
      out << access_kind_name(kind) << " Times: " << accesses[i] << '\n';
    }
  }
  out << "Bytes written: " << bytes_written << '\n';
  out << "Bytes read: " << bytes_read << '\n';
  if (transient_retries != 0) {
    out << "Transient read retries: " << transient_retries << '\n';
  }
  out << "Total accesses: " << total_accesses() << '\n';
  return out.str();
}

}  // namespace mhd
