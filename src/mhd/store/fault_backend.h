// FaultInjectingBackend — deterministic storage-fault injection.
//
// A StorageBackend decorator that executes a scripted *fault plan* against
// the operation stream: the N-th mutating operation can fail cleanly, tear
// (persist only a prefix of its bytes, then report success — the silent
// partial write every crash-consistency bug starts with), or crash-stop
// the backend; the N-th read can raise a transient error. Because faults
// key off deterministic operation counters (never wall clock or real I/O
// timing), a failing scenario replays bit-for-bit from its plan string.
//
// The injector sits *below* FramedBackend in the stack, so injected
// damage lands in framed physical bytes and must be caught by CRC
// verification above — exactly the property the acceptance tests pin.
//
// Plan mini-language (comma-separated atoms; ops are 1-based):
//
//   fail@N       N-th mutating op throws BackendIoError, nothing persists
//   torn@N:F     N-th mutating op persists only fraction F (0..1) of its
//                bytes and reports success; torn@N draws F from the seed
//   crash@N      N-th mutating op crash-stops: nothing persists, this and
//                every later op throws CrashStopError
//   crash@N:F    as crash@N but the in-flight write tears to fraction F
//   readerr@N    N-th read (get/get_range) throws TransientReadError
//   readerr@NxM  reads N..N+M-1 all fail (tests bounded retry exhaustion)
//   seed:S       seed for drawn tear fractions (default 42)
//
// Mutating ops are put/append/remove; reads are get/get_range. exists,
// list, and the accounting queries are never faulted.
#pragma once

#include <optional>
#include <vector>

#include "mhd/store/backend.h"

namespace mhd {

struct FaultPlan {
  struct Tear {
    std::uint64_t op = 0;
    double fraction = -1.0;  ///< <0 means "draw from seed"
  };
  struct ReadErr {
    std::uint64_t first = 0;
    std::uint64_t count = 1;
  };

  std::vector<std::uint64_t> fail_ops;
  std::vector<Tear> torn_ops;
  std::optional<Tear> crash;
  std::vector<ReadErr> read_errors;
  std::uint64_t seed = 42;

  bool empty() const {
    return fail_ops.empty() && torn_ops.empty() && !crash &&
           read_errors.empty();
  }

  /// Parses the mini-language above; throws std::invalid_argument with the
  /// offending atom on malformed input. An empty spec is an empty plan.
  static FaultPlan parse(const std::string& spec);
};

class FaultInjectingBackend final : public StorageBackend {
 public:
  FaultInjectingBackend(StorageBackend& inner, FaultPlan plan);

  void put(Ns ns, const std::string& name, ByteSpan data) override;
  void append(Ns ns, const std::string& name, ByteSpan data) override;
  std::optional<ByteVec> get(Ns ns, const std::string& name) const override;
  std::optional<ByteVec> get_range(Ns ns, const std::string& name,
                                   std::uint64_t offset,
                                   std::uint64_t length) const override;
  bool exists(Ns ns, const std::string& name) const override;
  bool remove(Ns ns, const std::string& name) override;
  std::uint64_t object_count(Ns ns) const override;
  std::uint64_t content_bytes(Ns ns) const override;
  std::vector<std::string> list(Ns ns) const override;
  void seal(Ns ns, const std::string& name) override;

  StorageBackend& inner() { return inner_; }
  bool crashed() const { return crashed_; }
  std::uint64_t mutation_ops() const { return mutations_; }
  std::uint64_t read_ops() const { return reads_; }

 private:
  /// Advances the mutation counter and applies the plan. Returns the tear
  /// fraction to apply (1.0 = write everything), or throws.
  double on_mutation();
  void on_read() const;
  double tear_fraction(const FaultPlan::Tear& tear) const;
  void check_crashed() const;

  StorageBackend& inner_;
  FaultPlan plan_;
  std::uint64_t mutations_ = 0;
  mutable std::uint64_t reads_ = 0;
  bool crashed_ = false;
};

}  // namespace mhd
