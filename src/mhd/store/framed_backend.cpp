#include "mhd/store/framed_backend.h"

#include "mhd/store/framing.h"
#include "mhd/store/store_errors.h"

namespace mhd {

namespace {

bool is_stream(Ns ns) {
  return ns == Ns::kDiskChunk || ns == Ns::kContainer;
}

}  // namespace

FramedBackend::FramedBackend(StorageBackend& inner) : inner_(inner) {
  for (int i = 0; i < static_cast<int>(Ns::kCount); ++i) {
    const Ns ns = static_cast<Ns>(i);
    for (const auto& name : inner_.list(ns)) {
      const auto framed = inner_.get(ns, name);
      if (!framed) continue;
      std::uint64_t logical = 0;
      if (is_stream(ns)) {
        logical = framing::scan_records(*framed).logical_bytes;
      } else if (const auto payload = framing::unseal_object(*framed)) {
        logical = payload->size();
      }
      sizes(ns)[name] = logical;
      bytes_[i] += logical;
    }
  }
}

void FramedBackend::put(Ns ns, const std::string& name, ByteSpan data) {
  ByteVec framed;
  if (is_stream(ns)) {
    framed = framing::frame_record(data);
    mhd::append(framed, framing::seal_record(data.size()));
  } else {
    framed = framing::seal_object(data);
  }
  inner_.put(ns, name, framed);
  auto& size = sizes(ns)[name];
  bytes_[static_cast<int>(ns)] += data.size() - size;
  size = data.size();
}

void FramedBackend::append(Ns ns, const std::string& name, ByteSpan data) {
  if (is_stream(ns)) {
    inner_.append(ns, name, framing::frame_record(data));
    sizes(ns)[name] += data.size();
    bytes_[static_cast<int>(ns)] += data.size();
    return;
  }
  // Sealed namespaces have no incremental framing; read-modify-write keeps
  // the (rare, test-only) append path correct.
  ByteVec combined;
  if (const auto framed = inner_.get(ns, name)) {
    combined = verified_get(ns, name, *framed);
  }
  mhd::append(combined, data);
  put(ns, name, combined);
}

ByteVec FramedBackend::verified_get(Ns ns, const std::string& name,
                                    const ByteVec& framed) const {
  if (is_stream(ns)) {
    const auto scan = framing::scan_records(framed);
    if (auto payload = framing::extract_stream(framed)) return *payload;
    throw CorruptObjectError(
        ns, name,
        scan.corrupt ? "record CRC/structure mismatch"
                     : "torn or unsealed record stream");
  }
  if (auto payload = framing::unseal_object(framed)) return *payload;
  throw CorruptObjectError(ns, name, "trailer CRC/structure mismatch");
}

std::optional<ByteVec> FramedBackend::get(Ns ns,
                                          const std::string& name) const {
  const auto framed = inner_.get(ns, name);
  if (!framed) return std::nullopt;
  return verified_get(ns, name, *framed);
}

std::optional<ByteVec> FramedBackend::get_range(Ns ns, const std::string& name,
                                                std::uint64_t offset,
                                                std::uint64_t length) const {
  // Every range read re-verifies the whole object: the framing exists to
  // guarantee no silently-wrong byte ever leaves the store, and chunks are
  // small enough (MBs) that the CRC pass is cheap next to the I/O.
  const auto framed = inner_.get(ns, name);
  if (!framed) return std::nullopt;
  const ByteVec payload = verified_get(ns, name, *framed);
  if (offset > payload.size() || length > payload.size() - offset) {
    return std::nullopt;
  }
  return ByteVec(payload.begin() + static_cast<std::ptrdiff_t>(offset),
                 payload.begin() + static_cast<std::ptrdiff_t>(offset + length));
}

bool FramedBackend::exists(Ns ns, const std::string& name) const {
  return inner_.exists(ns, name);
}

bool FramedBackend::remove(Ns ns, const std::string& name) {
  if (!inner_.remove(ns, name)) return false;
  auto& map = sizes(ns);
  if (const auto it = map.find(name); it != map.end()) {
    bytes_[static_cast<int>(ns)] -= it->second;
    map.erase(it);
  }
  return true;
}

std::uint64_t FramedBackend::object_count(Ns ns) const {
  return inner_.object_count(ns);
}

std::uint64_t FramedBackend::content_bytes(Ns ns) const {
  return bytes_[static_cast<int>(ns)];
}

std::vector<std::string> FramedBackend::list(Ns ns) const {
  return inner_.list(ns);
}

void FramedBackend::seal(Ns ns, const std::string& name) {
  if (!is_stream(ns)) return;  // sealed namespaces are sealed at put
  const auto& map = sizes(ns);
  const auto it = map.find(name);
  const std::uint64_t logical = it == map.end() ? 0 : it->second;
  inner_.append(ns, name, framing::seal_record(logical));
}

}  // namespace mhd
