// fsck for framed repositories — the recovery half of the durability story.
//
// Operates on the RAW backend (the physical framed bytes *below*
// FramedBackend), where torn and corrupt structure is visible, and walks
// the whole repository:
//
//   1. Framing pass: every DiskChunk and container record stream is
//      scanned (clean / torn-tail / corrupt), every sealed object's
//      trailer CRC is checked (clean / corrupt). Committed chunk maps
//      (Ns::kChunkMap) must resolve every extent into an intact container
//      region; fully resolvable maps contribute their chunks' logical
//      lengths alongside legacy DiskChunk streams.
//   2. Reference pass: FileManifest entries must resolve to existing
//      chunks within their logical size; hooks must point at an existing
//      manifest; standard manifests must cover an existing chunk. Clean
//      chunks referenced by no FileManifest — and containers referenced by
//      no chunk map — are reported as orphans (informational — reclaiming
//      them is collect_garbage()'s / sweep_containers()'s job).
//
// With `repair`:
//   * torn chunk tails are truncated to the last intact record and the
//     stream re-sealed — every byte before the tear is salvaged;
//   * corrupt objects are quarantined: removed from the namespace, and
//     when the backend is a FileBackend the bytes are preserved under
//     <root>/quarantine/<namespace>/ for offline forensics;
//   * dangling hooks are dropped (they are a rebuildable similarity
//     index, never user data);
//   * a persistent fingerprint index that is torn, stale (entries naming
//     quarantined manifests), or missing its meta is rebuilt from the
//     hooks namespace — the index is advisory and never user data.
// Broken references and orphans are reported, never auto-deleted.
//
// Used by examples/fsck_cli.cpp and the crash-recovery harness: crash at
// op k → reopen → fsck --repair → resume → restore byte-identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mhd/store/backend.h"

namespace mhd {

struct FsckIssue {
  enum class Kind {
    kTornTail,      ///< chunk stream ends mid-record or unsealed
    kCorrupt,       ///< CRC/structure mismatch (bit rot, bad seal)
    kDanglingHook,  ///< hook -> missing manifest
    kBrokenRef,     ///< FileManifest/Manifest -> missing or short chunk
    kOrphan,        ///< clean chunk unreachable from any FileManifest
    kIndexInconsistent,  ///< fingerprint index stale/torn vs live objects
  };
  enum class Action {
    kNone,             ///< reported only
    kTruncatedSealed,  ///< torn tail cut at last intact record + resealed
    kQuarantined,      ///< removed; bytes preserved under quarantine/
    kRemoved,          ///< dropped (dangling hooks)
    kRebuilt,          ///< fingerprint index rebuilt from the hooks
  };

  Ns ns;
  std::string name;
  Kind kind;
  std::string detail;
  Action action = Action::kNone;
};

const char* fsck_kind_name(FsckIssue::Kind kind);
const char* fsck_action_name(FsckIssue::Action action);

struct FsckReport {
  std::uint64_t objects = 0;
  std::uint64_t clean_objects = 0;
  std::uint64_t torn = 0;
  std::uint64_t corrupt = 0;
  std::uint64_t dangling_hooks = 0;
  std::uint64_t broken_refs = 0;
  std::uint64_t orphans = 0;
  std::uint64_t repaired = 0;
  std::uint64_t salvaged_bytes = 0;  ///< logical bytes kept from torn tails
  /// Persistent fingerprint index (zero when no index is present).
  std::uint64_t index_entries = 0;
  std::uint64_t stale_index_entries = 0;  ///< entry -> missing manifest
  std::uint64_t index_issues = 0;  ///< inconsistent index structures found
  /// Sampled similarity tier (zero when none is present).
  std::uint64_t sampled_hook_entries = 0;
  std::uint64_t stale_sampled_champions = 0;  ///< champion -> missing manifest
  std::vector<FsckIssue> issues;

  /// Orphans are informational; everything else dirties the repository.
  bool clean() const {
    return torn == 0 && corrupt == 0 && dangling_hooks == 0 &&
           broken_refs == 0 && index_issues == 0;
  }

  std::string to_string() const;
};

/// Full fsck pass over a framed repository. With repair=false the backend
/// is never mutated.
FsckReport fsck_repository(StorageBackend& raw, bool repair);

}  // namespace mhd
