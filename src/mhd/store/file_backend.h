// Real-filesystem storage backend (one directory per namespace, one file
// per object) — the honest end-to-end path used by the dedup_cli example
// and the integration tests. Mirrors the paper's user-space Ext3 prototype.
#pragma once

#include <array>
#include <filesystem>

#include "mhd/store/backend.h"

namespace mhd {

class FileBackend final : public StorageBackend {
 public:
  /// Creates <root>/<namespace>/ directories as needed.
  explicit FileBackend(std::filesystem::path root);

  void put(Ns ns, const std::string& name, ByteSpan data) override;
  void append(Ns ns, const std::string& name, ByteSpan data) override;
  std::optional<ByteVec> get(Ns ns, const std::string& name) const override;
  std::optional<ByteVec> get_range(Ns ns, const std::string& name,
                                   std::uint64_t offset,
                                   std::uint64_t length) const override;
  bool exists(Ns ns, const std::string& name) const override;
  bool remove(Ns ns, const std::string& name) override;
  std::uint64_t object_count(Ns ns) const override;
  std::uint64_t content_bytes(Ns ns) const override;
  std::vector<std::string> list(Ns ns) const override;

  const std::filesystem::path& root() const { return root_; }

 private:
  std::filesystem::path path_for(Ns ns, const std::string& name) const;

  std::filesystem::path root_;
  // Cached counters so object_count/content_bytes stay O(1); kept in sync
  // by the mutating operations (the backend owns its directories).
  std::array<std::uint64_t, static_cast<int>(Ns::kCount)> counts_{};
  std::array<std::uint64_t, static_cast<int>(Ns::kCount)> bytes_{};
};

}  // namespace mhd
