// StoreLock — single-writer protection for an on-disk repository.
//
// Two processes mutating one store directory corrupt it in ways framing
// cannot catch (both adopt the same open container id, both sweep the
// other's fresh tmp files as orphans, both rewrite the index meta). The
// lock file makes that failure mode a fast, typed error instead of a
// silent race:
//
//   * acquire() creates `<root>/store.lock` with O_EXCL, recording the
//     holder's PID. A second acquire — from this or any other process —
//     throws StoreLockedError naming the holder.
//   * A lock whose recorded PID no longer exists (the holder crashed
//     without unlinking) is STALE: it is silently replaced, so one crash
//     never bricks a repository. Malformed lock files count as stale.
//   * Releasing (destructor or release()) unlinks the file. Only the
//     owning acquisition unlinks; a moved-from lock is inert.
//
// Readers (restore/scrub/stats) do not take the lock: they never mutate,
// and a half-written object is detected by framing, not by locking.
#pragma once

#include <filesystem>
#include <string>

#include "mhd/store/store_errors.h"

namespace mhd {

/// Another live process holds the store's write lock.
class StoreLockedError : public StoreError {
 public:
  StoreLockedError(std::string lock_path, long holder_pid)
      : StoreError("store is locked by pid " + std::to_string(holder_pid) +
                   " (" + lock_path + "); remove the lock file only if that "
                   "process is gone"),
        lock_path_(std::move(lock_path)),
        holder_pid_(holder_pid) {}

  const std::string& lock_path() const { return lock_path_; }
  long holder_pid() const { return holder_pid_; }

 private:
  std::string lock_path_;
  long holder_pid_;
};

class StoreLock {
 public:
  /// Takes the write lock of the repository at `root` (creating the
  /// directory if needed). Throws StoreLockedError when a live process
  /// holds it; adopts (replaces) a stale lock left by a dead one.
  static StoreLock acquire(const std::filesystem::path& root);

  /// Name of the lock file inside a repository root.
  static constexpr const char* kFileName = "store.lock";

  StoreLock(StoreLock&& other) noexcept;
  StoreLock& operator=(StoreLock&&) = delete;
  StoreLock(const StoreLock&) = delete;
  StoreLock& operator=(const StoreLock&) = delete;
  ~StoreLock();

  /// Unlinks the lock file early. Idempotent.
  void release();

  const std::string& path() const { return path_; }

 private:
  explicit StoreLock(std::string path) : path_(std::move(path)) {}

  std::string path_;  ///< empty = released / moved-from
};

/// True when `pid` names a live process (the stale-lock probe).
bool process_alive(long pid);

}  // namespace mhd
