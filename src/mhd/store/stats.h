// Storage access accounting.
//
// Every disk access an engine performs is recorded under one of the
// categories that TABLE II of the paper reports (chunk/hook/manifest input
// and output, big/small duplication queries), so the benchmark harness can
// print measured counts next to the paper's analytical formulas.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace mhd {

enum class AccessKind : int {
  kChunkOut = 0,
  kChunkIn,
  kHookOut,
  kHookIn,
  kManifestOut,
  kManifestIn,
  kBigChunkQuery,
  kSmallChunkQuery,
  kFileManifestOut,
  kFileManifestIn,
  kCount,
};

/// Human-readable name matching the paper's TABLE II row labels.
const char* access_kind_name(AccessKind kind);

struct StorageStats {
  static constexpr int kKinds = static_cast<int>(AccessKind::kCount);

  std::array<std::uint64_t, kKinds> accesses{};
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  /// Reads that hit a TransientReadError and were retried by ObjectStore.
  std::uint64_t transient_retries = 0;

  void record(AccessKind kind, std::uint64_t count = 1) {
    accesses[static_cast<int>(kind)] += count;
  }
  std::uint64_t count(AccessKind kind) const {
    return accesses[static_cast<int>(kind)];
  }

  /// All disk accesses including duplication queries (paper's "Summary").
  std::uint64_t total_accesses() const;

  /// Disk accesses excluding query categories (pure data/metadata I/O).
  std::uint64_t io_accesses() const;

  StorageStats& operator+=(const StorageStats& other);

  std::string to_string() const;
};

}  // namespace mhd
