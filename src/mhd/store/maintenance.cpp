#include "mhd/store/maintenance.h"

#include <unordered_set>

#include "mhd/format/file_manifest.h"
#include "mhd/index/persistent_index.h"
#include "mhd/index/sampled_index.h"
#include "mhd/format/manifest.h"
#include "mhd/hash/sha1.h"
#include "mhd/store/container_store.h"
#include "mhd/store/store_errors.h"
#include "mhd/util/hex.h"

namespace mhd {

namespace {

/// Hex-decoded manifest name from a hook payload (20-byte digest).
std::optional<std::string> hook_target(const ByteVec& payload) {
  if (payload.size() != Digest::kSize) return std::nullopt;
  return hex_encode({payload.data(), payload.size()});
}

/// True if `raw` parses as a standard 1:1 Manifest for the object `name`
/// whose entries are fully contained in a chunk of `chunk_size` bytes —
/// i.e. it cannot reference any other (possibly deleted) chunk.
bool is_self_contained_manifest(const std::string& name, const ByteVec& raw,
                                std::uint64_t chunk_size) {
  const auto m = Manifest::deserialize(raw);
  if (!m || m->chunk_name().hex() != name) return false;
  std::uint64_t covered = 0;
  for (const auto& e : m->entries()) {
    if (e.offset != covered) return false;
    covered += e.size;
  }
  return covered == chunk_size;
}

}  // namespace

ScrubReport scrub_repository(const StorageBackend& backend) {
  ScrubReport report;

  // On a framed backend a CRC-failing object throws; scrub keeps going —
  // one rotten object must not hide damage elsewhere in the repository.
  const auto safe_get = [&](Ns ns,
                            const std::string& name) -> std::optional<ByteVec> {
    try {
      return backend.get(ns, name);
    } catch (const CorruptObjectError&) {
      ++report.corrupt_objects;
      return std::nullopt;
    }
  };
  const auto safe_get_range =
      [&](const std::string& name, std::uint64_t offset,
          std::uint64_t length) -> std::optional<ByteVec> {
    try {
      return backend.get_range(Ns::kDiskChunk, name, offset, length);
    } catch (const CorruptObjectError&) {
      ++report.corrupt_objects;
      return std::nullopt;
    }
  };

  // FileManifests: every range must resolve to stored bytes.
  for (const auto& name : backend.list(Ns::kFileManifest)) {
    ++report.file_manifests;
    const auto raw = safe_get(Ns::kFileManifest, name);
    const auto fm = raw ? FileManifest::deserialize(*raw) : std::nullopt;
    if (!fm) {
      ++report.unparseable;
      continue;
    }
    for (const auto& e : fm->entries()) {
      if (!safe_get_range(e.chunk_name.hex(), e.offset, e.length)
               .has_value()) {
        ++report.broken_file_ranges;
      }
    }
  }

  // Manifests: standard-format ones must hash-match and tile their chunk.
  for (const auto& name : backend.list(Ns::kManifest)) {
    ++report.manifests;
    const auto raw = safe_get(Ns::kManifest, name);
    if (!raw) {
      ++report.unparseable;
      continue;
    }
    const auto m = Manifest::deserialize(*raw);
    if (!m || m->chunk_name().hex() != name) {
      // Engine-specific format (SubChunk groups, SparseIndexing segments,
      // Extreme Binning bins): integrity is covered via FileManifests.
      ++report.opaque_manifests;
      continue;
    }
    const auto chunk = safe_get(Ns::kDiskChunk, name);
    if (!chunk) {
      // A manifest for a missing chunk is an error (GC removes them).
      ++report.manifest_coverage_errors;
      continue;
    }
    std::uint64_t covered = 0;
    for (const auto& e : m->entries()) {
      if (e.offset != covered || e.offset + e.size > chunk->size()) {
        ++report.manifest_coverage_errors;
        break;
      }
      covered += e.size;
      if (Sha1::hash({chunk->data() + e.offset, e.size}) != e.hash) {
        ++report.manifest_hash_mismatches;
      }
    }
    if (covered != chunk->size()) ++report.manifest_coverage_errors;
  }

  // Hooks: must point at an existing manifest.
  for (const auto& name : backend.list(Ns::kHook)) {
    ++report.hooks;
    const auto payload = safe_get(Ns::kHook, name);
    const auto target = payload ? hook_target(*payload) : std::nullopt;
    if (!target || !backend.exists(Ns::kManifest, *target)) {
      ++report.dangling_hooks;
    }
  }

  // Persistent fingerprint index (when present): every entry must point
  // at an existing manifest — a stale entry means a future backup could
  // anchor on deleted data. Unindexed hooks are informational (a lost
  // journal tail; the duplicates are re-learned through the hooks).
  if (index_present(backend)) {
    const IndexCheckReport index = check_index(backend);
    report.index_entries = index.entries;
    report.stale_index_entries = index.stale_entries;
    report.unindexed_hooks = index.unindexed_hooks;
    report.corrupt_objects += index.corrupt_objects;
    if (!index.meta_ok) ++report.corrupt_objects;
  }

  // Sampled similarity tier (when present): every champion reference must
  // point at an existing manifest — a stale champion could pull a swept
  // segment back into the cache as a dedup target.
  if (sampled_index_present(backend)) {
    const SampledCheckReport sampled = check_sampled_index(backend);
    report.sampled_hook_entries = sampled.hook_entries;
    report.stale_sampled_champions = sampled.stale_champions;
    report.corrupt_objects += sampled.corrupt_objects;
    if (!sampled.meta_ok) ++report.corrupt_objects;
  }

  report.chunks = backend.object_count(Ns::kDiskChunk);
  return report;
}

bool delete_file(StorageBackend& backend, const std::string& file_name) {
  return backend.remove(Ns::kFileManifest,
                        Sha1::hash(as_bytes(file_name)).hex());
}

GcReport collect_garbage(StorageBackend& backend) {
  GcReport report;

  // Mark: every DiskChunk referenced by any FileManifest.
  std::unordered_set<std::string> live;
  for (const auto& name : backend.list(Ns::kFileManifest)) {
    const auto raw = backend.get(Ns::kFileManifest, name);
    const auto fm = raw ? FileManifest::deserialize(*raw) : std::nullopt;
    if (!fm) continue;
    for (const auto& e : fm->entries()) live.insert(e.chunk_name.hex());
  }
  report.live_chunks = live.size();

  // Sweep dead chunks.
  for (const auto& name : backend.list(Ns::kDiskChunk)) {
    if (live.count(name) > 0) continue;
    report.reclaimed_bytes +=
        backend.get(Ns::kDiskChunk, name).value_or(ByteVec{}).size();
    backend.remove(Ns::kDiskChunk, name);
    ++report.deleted_chunks;
  }

  // Sweep manifests. Kept only when provably safe: a standard 1:1
  // manifest whose entries are fully contained in its own (live) chunk —
  // the MHD/CDC/Bimodal/FBC family. Everything else (SubChunk group
  // manifests, SparseIndexing segment manifests, Extreme Binning bins)
  // references *other* containers that may just have been deleted, so
  // their deduplication state is dropped rather than risking a future
  // backup referencing reclaimed bytes. Restores never read Manifests, so
  // this only resets similarity indexes; run GC offline (no engine open),
  // as in-RAM indexes would go stale.
  for (const auto& name : backend.list(Ns::kManifest)) {
    bool keep = false;
    if (live.count(name) > 0) {
      const auto raw = backend.get(Ns::kManifest, name);
      const auto chunk = backend.get(Ns::kDiskChunk, name);
      keep = raw && chunk &&
             is_self_contained_manifest(name, *raw, chunk->size());
    }
    if (!keep) {
      if (backend.remove(Ns::kManifest, name)) ++report.deleted_manifests;
    }
  }

  // Sweep hooks pointing at deleted manifests.
  for (const auto& name : backend.list(Ns::kHook)) {
    const auto payload = backend.get(Ns::kHook, name);
    const auto target = payload ? hook_target(*payload) : std::nullopt;
    if (!target || !backend.exists(Ns::kManifest, *target)) {
      backend.remove(Ns::kHook, name);
      ++report.deleted_hooks;
    }
  }

  // With a container layer, the chunk sweep above released dead chunks'
  // extent maps; containers referenced by no surviving map follow them.
  if (auto* containers = dynamic_cast<ContainerBackend*>(&backend)) {
    const auto [removed, reclaimed] = containers->sweep_containers();
    report.deleted_containers = removed;
    report.container_bytes_reclaimed = reclaimed;
  }

  // The persistent fingerprint index (when present) may still map the
  // swept manifests' fingerprints; rebuild it from the surviving hooks so
  // no stale entry can ever resurrect a deleted chunk.
  if (index_present(backend)) {
    const std::uint64_t before = check_index(backend).entries;
    rebuild_index(backend);
    report.index_rebuilt = true;
    report.index_entries = check_index(backend).entries;
    report.dropped_index_entries =
        before > report.index_entries ? before - report.index_entries : 0;
  }

  // Same for the sampled similarity tier: swept champions must drop out
  // of the hook table so no hook hit can reload a deleted segment.
  if (sampled_index_present(backend)) {
    const std::uint64_t before = check_sampled_index(backend).champion_refs;
    rebuild_sampled_index(backend);
    report.sampled_index_rebuilt = true;
    const auto after = check_sampled_index(backend);
    report.sampled_hook_entries = after.hook_entries;
    report.dropped_sampled_champions =
        before > after.champion_refs ? before - after.champion_refs : 0;
  }
  return report;
}

}  // namespace mhd
