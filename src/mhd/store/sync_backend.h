// SyncBackend — mutual exclusion for a shared storage stack.
//
// The physical backends (FileBackend's cached counters, FramedBackend's
// logical-size maps) were written for single-owner use. The multi-tenant
// daemon runs many sessions over one stack, so it interposes this
// decorator at the top of the *shared* portion: every call forwards to
// the inner backend under one mutex, turning the stack below into a
// linearizable object store. CPU-heavy work (chunking, hashing, CRC of
// payloads the caller prepares) happens above this layer, outside the
// lock; only the actual store operations serialize.
//
// Layering in the daemon (outermost first):
//
//   TenantView (per session) → SyncBackend → [Container] → [Framed] →
//   [Fault] → File/Memory
//
// ContainerBackend carries its own internal mutex; nesting it under
// SyncBackend is benign (consistent lock order, no call cycles back up).
#pragma once

#include <mutex>

#include "mhd/store/backend.h"

namespace mhd {

class SyncBackend final : public StorageBackend {
 public:
  explicit SyncBackend(StorageBackend& inner) : inner_(inner) {}

  void put(Ns ns, const std::string& name, ByteSpan data) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_.put(ns, name, data);
  }
  void append(Ns ns, const std::string& name, ByteSpan data) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_.append(ns, name, data);
  }
  std::optional<ByteVec> get(Ns ns, const std::string& name) const override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_.get(ns, name);
  }
  std::optional<ByteVec> get_range(Ns ns, const std::string& name,
                                   std::uint64_t offset,
                                   std::uint64_t length) const override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_.get_range(ns, name, offset, length);
  }
  bool exists(Ns ns, const std::string& name) const override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_.exists(ns, name);
  }
  bool remove(Ns ns, const std::string& name) override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_.remove(ns, name);
  }
  void seal(Ns ns, const std::string& name) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_.seal(ns, name);
  }
  std::uint64_t object_count(Ns ns) const override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_.object_count(ns);
  }
  std::uint64_t content_bytes(Ns ns) const override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_.content_bytes(ns);
  }
  std::vector<std::string> list(Ns ns) const override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_.list(ns);
  }

  StorageBackend& inner() { return inner_; }
  const StorageBackend& inner() const { return inner_; }

 private:
  StorageBackend& inner_;
  mutable std::mutex mu_;
};

}  // namespace mhd
