#include "mhd/store/store_lock.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mhd {

bool process_alive(long pid) {
  if (pid <= 0) return false;
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return true;
  // EPERM: the process exists but belongs to someone else — still alive.
  return errno == EPERM;
}

namespace {

/// PID recorded in an existing lock file; -1 when unreadable/malformed
/// (treated as stale: a garbage lock must not brick the repository).
long read_lock_pid(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return -1;
  char buf[64] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  if (n == 0) return -1;
  char* end = nullptr;
  const long pid = std::strtol(buf, &end, 10);
  if (end == buf) return -1;
  return pid;
}

/// O_EXCL create; returns false when the file already exists.
bool create_lock_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) return false;
  char buf[32];
  const int len =
      std::snprintf(buf, sizeof(buf), "%ld\n", static_cast<long>(::getpid()));
  // A short write leaves a malformed file — read back as stale, which is
  // the safe direction (never locks anyone out).
  (void)!::write(fd, buf, static_cast<std::size_t>(len));
  ::close(fd);
  return true;
}

}  // namespace

StoreLock StoreLock::acquire(const std::filesystem::path& root) {
  std::filesystem::create_directories(root);
  const std::string path = (root / kFileName).string();
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (create_lock_file(path)) return StoreLock(path);
    const long holder = read_lock_pid(path);
    if (process_alive(holder)) throw StoreLockedError(path, holder);
    // Stale (dead holder or malformed): remove and retry once. If another
    // process races us to the re-create, the second attempt sees its live
    // lock and throws — exactly the wanted outcome.
    std::remove(path.c_str());
  }
  const long holder = read_lock_pid(path);
  throw StoreLockedError(path, holder);
}

StoreLock::StoreLock(StoreLock&& other) noexcept
    : path_(std::move(other.path_)) {
  other.path_.clear();
}

StoreLock::~StoreLock() { release(); }

void StoreLock::release() {
  if (path_.empty()) return;
  std::remove(path_.c_str());
  path_.clear();
}

}  // namespace mhd
