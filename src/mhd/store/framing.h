// Self-verifying object framing — the byte-level formats that make every
// stored object checkable after a crash or bit flip.
//
// Two formats, chosen per namespace:
//
//  * Sealed objects (Hooks, Manifests, FileManifests — written atomically
//    via put): the payload followed by a 12-byte trailer
//        [magic "MTR1"][payload len u32][crc32c(payload) u32]
//    A whole-object read re-checks the CRC; any flipped bit or truncation
//    is detected. The trailer sits at the *end* so a torn write (prefix
//    persisted) never leaves a valid trailer behind.
//
//  * Record streams (DiskChunks — grown by append): each append becomes
//        [magic "MRC1"][payload len u32][crc32c(payload) u32] payload
//    and close() appends a seal record
//        [magic "MSL1"][8][crc32c(len_le64)] len_le64
//    whose payload is the total logical length. A torn tail (partial last
//    record, or a clean cut at a record boundary before the seal) is
//    detectable and *truncatable*: every valid record before the tear is
//    still usable, which is what fsck --repair exploits.
//
// All integers little-endian. CRC32C is the hardware-accelerated kernel
// family in util/crc32c.h.
#pragma once

#include <cstdint>
#include <optional>

#include "mhd/util/bytes.h"

namespace mhd::framing {

constexpr std::uint32_t kRecordMagic = 0x3143524Du;   // "MRC1"
constexpr std::uint32_t kSealMagic = 0x314C534Du;     // "MSL1"
constexpr std::uint32_t kTrailerMagic = 0x3152544Du;  // "MTR1"

/// [magic u32][len u32][crc u32]
constexpr std::size_t kHeaderBytes = 12;
constexpr std::size_t kTrailerBytes = 12;
/// Physical size of a seal record (header + le64 logical length).
constexpr std::size_t kSealBytes = kHeaderBytes + 8;

// --- Sealed objects ------------------------------------------------------

/// payload + trailer. Payloads are metadata objects; sizes must fit u32.
ByteVec seal_object(ByteSpan payload);

/// Verifies the trailer; nullopt when the framing is missing, torn, or the
/// CRC mismatches (the caller decides which typed error to raise).
std::optional<ByteVec> unseal_object(ByteSpan framed);

// --- Record streams ------------------------------------------------------

/// One framed append: header + payload.
ByteVec frame_record(ByteSpan payload);

/// The end-of-stream seal carrying the total logical length.
ByteVec seal_record(std::uint64_t logical_length);

/// Result of walking a record stream front to back, verifying every CRC.
struct RecordScan {
  std::uint64_t logical_bytes = 0;  ///< payload bytes across valid records
  std::uint64_t valid_prefix = 0;   ///< physical bytes of intact records
  std::size_t records = 0;          ///< valid data records seen
  bool sealed = false;  ///< a valid, length-matching seal terminates it
  bool corrupt = false;  ///< bad magic / CRC mismatch / bytes after seal
  bool torn = false;     ///< ends mid-record or without a seal
};

/// Walks `framed`, stopping at the first defect. A clean stream has
/// sealed && !corrupt && !torn. `valid_prefix`/`logical_bytes` describe
/// the salvageable prefix even when the tail is torn — fsck truncates to
/// valid_prefix and appends seal_record(logical_bytes) to repair.
RecordScan scan_records(ByteSpan framed);

/// Concatenated payload of a clean, sealed stream; nullopt otherwise.
std::optional<ByteVec> extract_stream(ByteSpan framed);

}  // namespace mhd::framing
