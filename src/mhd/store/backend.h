// Storage backend interface — a namespaced, name-addressable object store.
//
// The paper's prototype stores DiskChunks, Hooks, Manifests and
// FileManifests as separate hash-addressable files in an Ext3 directory
// tree; each file costs one inode (256 bytes in the paper's accounting).
// MemoryBackend simulates that (fast, fully accounted) and FileBackend
// writes real files, so the same engine code runs in simulation and for
// real end-to-end backups.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mhd/util/bytes.h"

namespace mhd {

enum class Ns : int {
  kDiskChunk = 0,
  kHook,
  kManifest,
  kFileManifest,
  /// Persistent fingerprint-index objects (bucket pages, journal, bloom
  /// snapshot, meta — see index/persistent_index.h). Advisory: never
  /// needed to restore data, rebuildable from the hooks namespace.
  kIndex,
  /// Fixed-size containers packing chunk bytes in write order (record
  /// streams, like DiskChunks). Only present when the repository runs a
  /// ContainerBackend — see store/container_store.h.
  kContainer,
  /// Per-DiskChunk extent maps: logical chunk ranges -> (container,
  /// offset) placements. Sealed objects; committing one is the durability
  /// point of a chunk (and of a rewrite decision).
  kChunkMap,
  kCount,
};

const char* ns_name(Ns ns);

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Creates or replaces an object.
  virtual void put(Ns ns, const std::string& name, ByteSpan data) = 0;

  /// Appends to an object, creating it if absent.
  virtual void append(Ns ns, const std::string& name, ByteSpan data) = 0;

  /// Whole-object read; nullopt if absent.
  virtual std::optional<ByteVec> get(Ns ns, const std::string& name) const = 0;

  /// Range read; nullopt if absent or the range exceeds the object.
  virtual std::optional<ByteVec> get_range(Ns ns, const std::string& name,
                                           std::uint64_t offset,
                                           std::uint64_t length) const = 0;

  virtual bool exists(Ns ns, const std::string& name) const = 0;
  virtual bool remove(Ns ns, const std::string& name) = 0;

  /// Marks the end of an append stream. Raw backends need no terminator
  /// (no-op); durability decorators write an end-of-stream seal record so
  /// a truncation at a record boundary is distinguishable from a clean
  /// close. ChunkWriter::close() calls this once per finished DiskChunk.
  virtual void seal(Ns /*ns*/, const std::string& /*name*/) {}

  /// Number of objects (== inodes) in a namespace.
  virtual std::uint64_t object_count(Ns ns) const = 0;
  /// Total content bytes in a namespace.
  virtual std::uint64_t content_bytes(Ns ns) const = 0;
  virtual std::vector<std::string> list(Ns ns) const = 0;

  /// Paper's storage-management accounting: one inode = 256 bytes.
  static constexpr std::uint64_t kInodeBytes = 256;

  std::uint64_t total_objects() const;
  std::uint64_t total_content_bytes() const;
  /// content + 256 bytes per inode across all namespaces.
  std::uint64_t stored_bytes_with_inodes() const;
};

}  // namespace mhd
