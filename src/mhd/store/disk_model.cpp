#include "mhd/store/disk_model.h"

namespace mhd {

double DiskModel::io_seconds(const StorageStats& stats) const {
  const double seeks = static_cast<double>(stats.total_accesses());
  return seeks * seek_seconds +
         static_cast<double>(stats.bytes_read) / read_bw +
         static_cast<double>(stats.bytes_written) / write_bw;
}

double DiskModel::copy_seconds(std::uint64_t bytes) const {
  // One seek each for the source and destination streams.
  return 2 * seek_seconds + static_cast<double>(bytes) / read_bw +
         static_cast<double>(bytes) / write_bw;
}

}  // namespace mhd
