#include "mhd/store/restore_reader.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "mhd/hash/sha1.h"
#include "mhd/store/store_errors.h"

namespace mhd {

namespace {
/// Matches ObjectStore's ingest-side policy: transient device errors are
/// retried with bounded exponential backoff before giving up.
constexpr int kReadAttempts = 4;
}  // namespace

RestoreReader::RestoreReader(const StorageBackend& backend, FileManifest fm)
    : backend_(&backend), fm_(std::move(fm)), total_(fm_.total_length()) {}

std::optional<RestoreReader> RestoreReader::open(
    const StorageBackend& backend, const std::string& file_name) {
  std::optional<ByteVec> raw;
  for (int attempt = 1;; ++attempt) {
    try {
      raw = backend.get(Ns::kFileManifest,
                        Sha1::hash(as_bytes(file_name)).hex());
      break;
    } catch (const CorruptObjectError&) {
      return std::nullopt;  // corrupt manifest: restore fails, never lies
    } catch (const TransientReadError&) {
      if (attempt >= kReadAttempts) throw;
      std::this_thread::sleep_for(std::chrono::microseconds(50)
                                  * (1 << attempt));
    }
  }
  if (!raw) return std::nullopt;
  auto fm = FileManifest::deserialize(*raw);
  if (!fm) return std::nullopt;
  return RestoreReader(backend, std::move(*fm));
}

std::size_t RestoreReader::read(MutByteSpan out) {
  std::size_t written = 0;
  while (ok_ && written < out.size() &&
         entry_index_ < fm_.entries().size()) {
    const FileManifestEntry& e = fm_.entries()[entry_index_];
    const std::uint64_t remaining = e.length - entry_pos_;
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, out.size() - written));
    std::optional<ByteVec> piece;
    for (int attempt = 1;; ++attempt) {
      try {
        piece = backend_->get_range(Ns::kDiskChunk, e.chunk_name.hex(),
                                    e.offset + entry_pos_, take);
        break;
      } catch (const CorruptObjectError&) {
        piece.reset();  // checksum failure poisons the stream like a miss
        break;
      } catch (const TransientReadError&) {
        // A flaky read is not a damaged repository: retry in place so one
        // glitch doesn't force the caller to restart a long restore.
        if (attempt >= kReadAttempts) throw;
        ++transient_retries_;
        std::this_thread::sleep_for(std::chrono::microseconds(50)
                                    * (1 << attempt));
      }
    }
    if (!piece) {
      ok_ = false;  // damaged repository: stop, never emit wrong bytes
      break;
    }
    std::memcpy(out.data() + written, piece->data(), take);
    written += take;
    entry_pos_ += take;
    produced_ += take;
    if (entry_pos_ == e.length) {
      ++entry_index_;
      entry_pos_ = 0;
    }
  }
  return written;
}

}  // namespace mhd
