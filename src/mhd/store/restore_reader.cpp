#include "mhd/store/restore_reader.h"

#include <algorithm>
#include <cstring>

#include "mhd/hash/sha1.h"
#include "mhd/store/store_errors.h"

namespace mhd {

RestoreReader::RestoreReader(const StorageBackend& backend, FileManifest fm)
    : backend_(&backend), fm_(std::move(fm)), total_(fm_.total_length()) {}

std::optional<RestoreReader> RestoreReader::open(
    const StorageBackend& backend, const std::string& file_name) {
  std::optional<ByteVec> raw;
  try {
    raw = backend.get(Ns::kFileManifest, Sha1::hash(as_bytes(file_name)).hex());
  } catch (const CorruptObjectError&) {
    return std::nullopt;  // corrupt manifest: restore fails, never lies
  }
  if (!raw) return std::nullopt;
  auto fm = FileManifest::deserialize(*raw);
  if (!fm) return std::nullopt;
  return RestoreReader(backend, std::move(*fm));
}

std::size_t RestoreReader::read(MutByteSpan out) {
  std::size_t written = 0;
  while (ok_ && written < out.size() &&
         entry_index_ < fm_.entries().size()) {
    const FileManifestEntry& e = fm_.entries()[entry_index_];
    const std::uint64_t remaining = e.length - entry_pos_;
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, out.size() - written));
    std::optional<ByteVec> piece;
    try {
      piece = backend_->get_range(Ns::kDiskChunk, e.chunk_name.hex(),
                                  e.offset + entry_pos_, take);
    } catch (const CorruptObjectError&) {
      piece.reset();  // checksum failure poisons the stream like a miss
    }
    if (!piece) {
      ok_ = false;  // damaged repository: stop, never emit wrong bytes
      break;
    }
    std::memcpy(out.data() + written, piece->data(), take);
    written += take;
    entry_pos_ += take;
    produced_ += take;
    if (entry_pos_ == e.length) {
      ++entry_index_;
      entry_pos_ = 0;
    }
  }
  return written;
}

}  // namespace mhd
