#include "mhd/store/object_store.h"

#include <chrono>
#include <thread>

#include "mhd/store/store_errors.h"

namespace mhd {

namespace {

/// Transient reads are retried with bounded exponential backoff; the cap
/// keeps a persistently failing device from hanging an ingest.
constexpr int kReadAttempts = 4;

template <typename Fn>
auto with_read_retry(StorageStats& stats, Fn&& fn) {
  for (int attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const TransientReadError&) {
      if (attempt >= kReadAttempts) throw;
      ++stats.transient_retries;
      std::this_thread::sleep_for(std::chrono::microseconds(50) * (1 << attempt));
    }
  }
}

}  // namespace

ChunkWriter::ChunkWriter(ObjectStore* store, std::string name)
    : store_(store), name_(std::move(name)) {}

ChunkWriter::~ChunkWriter() {
  // close() touches the backend (seal record) and may throw; a destructor
  // running during unwind must not double-throw. Engines that care about
  // the error call close() explicitly.
  try {
    close();
  } catch (...) {
  }
}

void ChunkWriter::write(ByteSpan data) {
  store_->backend_.append(Ns::kDiskChunk, name_, data);
  bytes_ += data.size();
}

void ChunkWriter::close() {
  if (closed_) return;
  closed_ = true;
  if (bytes_ > 0) store_->backend_.seal(Ns::kDiskChunk, name_);
  store_->stats_.record(AccessKind::kChunkOut);
  store_->stats_.bytes_written += bytes_;
}

ChunkWriter ObjectStore::open_chunk(const std::string& name) {
  return ChunkWriter(this, name);
}

std::optional<ByteVec> ObjectStore::read_chunk_range(const std::string& name,
                                                     std::uint64_t offset,
                                                     std::uint64_t length) {
  auto data = with_read_retry(stats_, [&] {
    return backend_.get_range(Ns::kDiskChunk, name, offset, length);
  });
  stats_.record(AccessKind::kChunkIn);
  if (data) stats_.bytes_read += data->size();
  return data;
}

std::optional<ByteVec> ObjectStore::read_chunk(const std::string& name) {
  auto data =
      with_read_retry(stats_, [&] { return backend_.get(Ns::kDiskChunk, name); });
  stats_.record(AccessKind::kChunkIn);
  if (data) stats_.bytes_read += data->size();
  return data;
}

void ObjectStore::put_hook(const Digest& hook_hash, ByteSpan payload) {
  backend_.put(Ns::kHook, hook_hash.hex(), payload);
  stats_.record(AccessKind::kHookOut);
  stats_.bytes_written += payload.size();
}

std::optional<ByteVec> ObjectStore::get_hook(const Digest& hook_hash,
                                             AccessKind query_kind) {
  auto data = with_read_retry(
      stats_, [&] { return backend_.get(Ns::kHook, hook_hash.hex()); });
  if (data) {
    stats_.record(AccessKind::kHookIn);
    stats_.bytes_read += data->size();
  } else {
    stats_.record(query_kind);
  }
  return data;
}

bool ObjectStore::hook_exists(const Digest& hook_hash, AccessKind query_kind) {
  stats_.record(query_kind);
  return backend_.exists(Ns::kHook, hook_hash.hex());
}

void ObjectStore::put_manifest(const std::string& name, ByteSpan data) {
  backend_.put(Ns::kManifest, name, data);
  stats_.record(AccessKind::kManifestOut);
  stats_.bytes_written += data.size();
}

std::optional<ByteVec> ObjectStore::get_manifest(const std::string& name) {
  auto data = with_read_retry(
      stats_, [&] { return backend_.get(Ns::kManifest, name); });
  stats_.record(AccessKind::kManifestIn);
  if (data) stats_.bytes_read += data->size();
  return data;
}

void ObjectStore::put_file_manifest(const std::string& name, ByteSpan data) {
  backend_.put(Ns::kFileManifest, name, data);
  stats_.record(AccessKind::kFileManifestOut);
  stats_.bytes_written += data.size();
}

std::optional<ByteVec> ObjectStore::get_file_manifest(const std::string& name) {
  auto data = with_read_retry(
      stats_, [&] { return backend_.get(Ns::kFileManifest, name); });
  stats_.record(AccessKind::kFileManifestIn);
  if (data) stats_.bytes_read += data->size();
  return data;
}

}  // namespace mhd
