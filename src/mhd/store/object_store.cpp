#include "mhd/store/object_store.h"

namespace mhd {

ChunkWriter::ChunkWriter(ObjectStore* store, std::string name)
    : store_(store), name_(std::move(name)) {}

ChunkWriter::~ChunkWriter() { close(); }

void ChunkWriter::write(ByteSpan data) {
  store_->backend_.append(Ns::kDiskChunk, name_, data);
  bytes_ += data.size();
}

void ChunkWriter::close() {
  if (closed_) return;
  closed_ = true;
  store_->stats_.record(AccessKind::kChunkOut);
  store_->stats_.bytes_written += bytes_;
}

ChunkWriter ObjectStore::open_chunk(const std::string& name) {
  return ChunkWriter(this, name);
}

std::optional<ByteVec> ObjectStore::read_chunk_range(const std::string& name,
                                                     std::uint64_t offset,
                                                     std::uint64_t length) {
  auto data = backend_.get_range(Ns::kDiskChunk, name, offset, length);
  stats_.record(AccessKind::kChunkIn);
  if (data) stats_.bytes_read += data->size();
  return data;
}

std::optional<ByteVec> ObjectStore::read_chunk(const std::string& name) {
  auto data = backend_.get(Ns::kDiskChunk, name);
  stats_.record(AccessKind::kChunkIn);
  if (data) stats_.bytes_read += data->size();
  return data;
}

void ObjectStore::put_hook(const Digest& hook_hash, ByteSpan payload) {
  backend_.put(Ns::kHook, hook_hash.hex(), payload);
  stats_.record(AccessKind::kHookOut);
  stats_.bytes_written += payload.size();
}

std::optional<ByteVec> ObjectStore::get_hook(const Digest& hook_hash,
                                             AccessKind query_kind) {
  auto data = backend_.get(Ns::kHook, hook_hash.hex());
  if (data) {
    stats_.record(AccessKind::kHookIn);
    stats_.bytes_read += data->size();
  } else {
    stats_.record(query_kind);
  }
  return data;
}

bool ObjectStore::hook_exists(const Digest& hook_hash, AccessKind query_kind) {
  stats_.record(query_kind);
  return backend_.exists(Ns::kHook, hook_hash.hex());
}

void ObjectStore::put_manifest(const std::string& name, ByteSpan data) {
  backend_.put(Ns::kManifest, name, data);
  stats_.record(AccessKind::kManifestOut);
  stats_.bytes_written += data.size();
}

std::optional<ByteVec> ObjectStore::get_manifest(const std::string& name) {
  auto data = backend_.get(Ns::kManifest, name);
  stats_.record(AccessKind::kManifestIn);
  if (data) stats_.bytes_read += data->size();
  return data;
}

void ObjectStore::put_file_manifest(const std::string& name, ByteSpan data) {
  backend_.put(Ns::kFileManifest, name, data);
  stats_.record(AccessKind::kFileManifestOut);
  stats_.bytes_written += data.size();
}

std::optional<ByteVec> ObjectStore::get_file_manifest(const std::string& name) {
  auto data = backend_.get(Ns::kFileManifest, name);
  stats_.record(AccessKind::kFileManifestIn);
  if (data) stats_.bytes_read += data->size();
  return data;
}

}  // namespace mhd
