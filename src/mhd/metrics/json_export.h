// JSON export of experiment results for downstream plotting pipelines
// (each bench prints human tables; this produces machine-readable rows).
#pragma once

#include <string>
#include <vector>

#include "mhd/metrics/metrics.h"

namespace mhd {

/// Escapes a string for inclusion in a JSON string literal.
std::string json_escape(const std::string& s);

/// One result as a flat JSON object (single line).
std::string to_json(const ExperimentResult& result);

/// A JSON array of results (one object per line, pretty enough to diff).
std::string to_json(const std::vector<ExperimentResult>& results);

}  // namespace mhd
