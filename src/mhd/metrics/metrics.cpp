#include "mhd/metrics/metrics.h"

#include "mhd/dedup/rewrite.h"
#include "mhd/index/mem_index.h"
#include "mhd/index/sampled_index.h"
#include "mhd/store/container_store.h"
#include "mhd/store/framed_backend.h"

namespace mhd {

MetadataBreakdown MetadataBreakdown::from(const StorageBackend& backend) {
  MetadataBreakdown m;
  m.inodes_diskchunks = backend.object_count(Ns::kDiskChunk);
  m.inodes_hooks = backend.object_count(Ns::kHook);
  m.inodes_manifests = backend.object_count(Ns::kManifest);
  m.inodes_filemanifests = backend.object_count(Ns::kFileManifest);
  m.hook_bytes = backend.content_bytes(Ns::kHook);
  m.manifest_bytes = backend.content_bytes(Ns::kManifest);
  m.filemanifest_bytes = backend.content_bytes(Ns::kFileManifest);
  return m;
}

double ExperimentResult::data_only_der() const {
  return stored_data_bytes == 0
             ? 0.0
             : static_cast<double>(input_bytes) /
                   static_cast<double>(stored_data_bytes);
}

double ExperimentResult::real_der() const {
  const std::uint64_t out = stored_data_bytes + metadata.total_bytes();
  return out == 0 ? 0.0
                  : static_cast<double>(input_bytes) / static_cast<double>(out);
}

double ExperimentResult::metadata_ratio() const {
  return input_bytes == 0
             ? 0.0
             : static_cast<double>(metadata.total_bytes()) /
                   static_cast<double>(input_bytes);
}

double ExperimentResult::throughput_ratio() const {
  return dedup_seconds <= 0 ? 0.0 : copy_seconds / dedup_seconds;
}

double ExperimentResult::inodes_per_mb() const {
  return input_bytes == 0
             ? 0.0
             : static_cast<double>(metadata.total_inodes()) /
                   (static_cast<double>(input_bytes) / (1 << 20));
}

double ExperimentResult::manifest_hook_metadata_ratio() const {
  return input_bytes == 0
             ? 0.0
             : static_cast<double>(metadata.hook_manifest_bytes()) /
                   static_cast<double>(input_bytes);
}

double ExperimentResult::filemanifest_metadata_ratio() const {
  return input_bytes == 0
             ? 0.0
             : static_cast<double>(metadata.filemanifest_bytes) /
                   static_cast<double>(input_bytes);
}

double ExperimentResult::dad_bytes() const { return counters.dad(); }

ExperimentResult summarize(const std::string& algorithm,
                           const DedupEngine& engine,
                           const StorageBackend& backend,
                           const DiskModel& disk, double cpu_copy_bw) {
  ExperimentResult r;
  r.algorithm = algorithm;
  r.ecs = engine.config().ecs;
  r.sd = engine.config().sd;
  r.chunker = chunker_kind_name(engine.config().chunker);
  r.chunker_impl = resolved_chunker_impl_name(
      engine.config().chunker, engine.config().chunker_config(r.ecs));
  r.hash_impl = resolved_sha1_impl_name(engine.config().hash_impl);
  r.counters = engine.counters();
  r.stats = engine.store().stats();
  r.input_bytes = r.counters.input_bytes;
  r.stored_data_bytes = backend.content_bytes(Ns::kDiskChunk);
  r.physical_data_bytes = r.stored_data_bytes;
  // With a container layer the data bytes live under Ns::kContainer of the
  // inner backend; the logical DiskChunk view above stays the stored size.
  const StorageBackend* phys = &backend;
  Ns data_ns = Ns::kDiskChunk;
  if (const auto* cb = dynamic_cast<const ContainerBackend*>(&backend)) {
    r.container_bytes = cb->config().container_bytes;
    r.rewrite_mode = rewrite_mode_name(engine.config().rewrite);
    const ContainerStats cs = cb->stats();
    r.containers_sealed = cs.containers_sealed;
    r.container_packed_bytes = cs.packed_bytes;
    phys = &cb->inner();
    data_ns = Ns::kContainer;
    r.physical_data_bytes = phys->content_bytes(data_ns);
  }
  if (const auto* fb = dynamic_cast<const FramedBackend*>(phys)) {
    r.framed = true;
    r.physical_data_bytes = fb->physical_bytes(data_ns);
  }
  r.metadata = MetadataBreakdown::from(backend);
  r.manifest_loads = engine.manifest_loads();
  r.index_ram_bytes = engine.index_ram_bytes();
  r.index_impl = engine.index_impl_name();
  if (const FingerprintIndex* fp = engine.fingerprint_index()) {
    r.index_entries = fp->entry_count();
    if (const auto* sampled = dynamic_cast<const SampledIndex*>(fp)) {
      r.sample_bits = sampled->sample_bits();
      r.sampled_hook_entries = sampled->hook_entries();
      r.sampled_hook_table_bytes =
          sampled->ram_bytes() -
          sampled->entry_count() * MemIndex::kEntryRamBytes;
      r.champion_loads = sampled->champion_loads();
      r.sampled_missed_dup_bytes = sampled->missed_dup_bytes();
      r.sampled_missed_dup_chunks = sampled->missed_dup_chunks();
    }
  }
  r.ingest_threads = engine.config().ingest_threads;
  r.pipeline = engine.pipeline_stats();

  r.dedup_seconds = r.counters.cpu_seconds + disk.io_seconds(r.stats);
  r.copy_seconds = disk.copy_seconds(r.input_bytes) +
                   static_cast<double>(r.input_bytes) / cpu_copy_bw;
  return r;
}

}  // namespace mhd
