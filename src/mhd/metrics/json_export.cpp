#include "mhd/metrics/json_export.h"

#include <cstdio>
#include <sstream>

namespace mhd {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}
}  // namespace

std::string to_json(const ExperimentResult& r) {
  std::ostringstream out;
  out << "{\"algorithm\":\"" << json_escape(r.algorithm) << "\""
      << ",\"ecs\":" << r.ecs << ",\"sd\":" << r.sd
      << ",\"chunker\":\"" << json_escape(r.chunker) << "\""
      << ",\"chunker_impl\":\"" << json_escape(r.chunker_impl) << "\""
      << ",\"hash_impl\":\"" << json_escape(r.hash_impl) << "\""
      << ",\"input_bytes\":" << r.input_bytes
      << ",\"stored_data_bytes\":" << r.stored_data_bytes
      << ",\"framed\":" << (r.framed ? "true" : "false")
      << ",\"physical_data_bytes\":" << r.physical_data_bytes
      << ",\"framing_overhead_bytes\":" << r.framing_overhead_bytes()
      << ",\"metadata_bytes\":" << r.metadata.total_bytes()
      << ",\"hook_manifest_bytes\":" << r.metadata.hook_manifest_bytes()
      << ",\"filemanifest_bytes\":" << r.metadata.filemanifest_bytes
      << ",\"inodes\":" << r.metadata.total_inodes()
      << ",\"data_only_der\":" << num(r.data_only_der())
      << ",\"real_der\":" << num(r.real_der())
      << ",\"metadata_ratio\":" << num(r.metadata_ratio())
      << ",\"throughput_ratio\":" << num(r.throughput_ratio())
      << ",\"dad_bytes\":" << num(r.dad_bytes())
      << ",\"dup_slices\":" << r.counters.dup_slices
      << ",\"dup_bytes\":" << r.counters.dup_bytes
      << ",\"stored_chunks\":" << r.counters.stored_chunks
      << ",\"dup_chunks\":" << r.counters.dup_chunks
      << ",\"files_with_data\":" << r.counters.files_with_data
      << ",\"hhr_operations\":" << r.counters.hhr_operations
      << ",\"hhr_chunk_reloads\":" << r.counters.hhr_chunk_reloads
      << ",\"corruption_fallbacks\":" << r.counters.corruption_fallbacks
      << ",\"transient_retries\":" << r.stats.transient_retries
      << ",\"container_bytes\":" << r.container_bytes
      << ",\"rewrite_mode\":\"" << json_escape(r.rewrite_mode) << "\""
      << ",\"containers_sealed\":" << r.containers_sealed
      << ",\"container_packed_bytes\":" << r.container_packed_bytes
      << ",\"rewritten_chunks\":" << r.counters.rewritten_chunks
      << ",\"rewritten_bytes\":" << r.counters.rewritten_bytes
      << ",\"rewrite_ratio\":" << num(r.rewrite_ratio())
      << ",\"restore_bytes\":" << r.restore.bytes
      << ",\"restore_seconds\":" << num(r.restore.seconds)
      << ",\"restore_mb_per_s\":" << num(r.restore.mb_per_s())
      << ",\"restore_container_reads\":" << r.restore.container_reads
      << ",\"containers_read_per_mb\":" << num(r.restore.containers_read_per_mb())
      << ",\"cfl\":" << num(r.restore.cfl)
      << ",\"manifest_loads\":" << r.manifest_loads
      << ",\"index_ram_bytes\":" << r.index_ram_bytes
      << ",\"index_impl\":\"" << json_escape(r.index_impl) << "\""
      << ",\"index_entries\":" << r.index_entries
      << ",\"sample_bits\":" << r.sample_bits
      << ",\"sampled_hook_entries\":" << r.sampled_hook_entries
      << ",\"sampled_hook_table_bytes\":" << r.sampled_hook_table_bytes
      << ",\"champion_loads\":" << r.champion_loads
      << ",\"sampled_missed_dup_bytes\":" << r.sampled_missed_dup_bytes
      << ",\"sampled_missed_dup_chunks\":" << r.sampled_missed_dup_chunks
      << ",\"total_disk_accesses\":" << r.stats.total_accesses()
      << ",\"dedup_seconds\":" << num(r.dedup_seconds)
      << ",\"copy_seconds\":" << num(r.copy_seconds)
      << ",\"ingest_threads\":" << r.ingest_threads
      << ",\"pipeline\":[";
  for (std::size_t i = 0; i < r.pipeline.stages.size(); ++i) {
    const StageStats& s = r.pipeline.stages[i];
    out << (i == 0 ? "" : ",") << "{\"stage\":\"" << json_escape(s.stage)
        << "\",\"threads\":" << s.threads << ",\"items\":" << s.items
        << ",\"bytes\":" << s.bytes
        << ",\"busy_seconds\":" << num(s.busy_seconds)
        << ",\"idle_seconds\":" << num(s.idle_seconds)
        << ",\"utilization\":" << num(s.utilization())
        << ",\"queue_high_water\":" << s.queue_high_water << "}";
  }
  out << "]}";
  return out.str();
}

std::string to_json(const std::vector<ExperimentResult>& results) {
  std::ostringstream out;
  out << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    out << "  " << to_json(results[i]) << (i + 1 < results.size() ? "," : "")
        << "\n";
  }
  out << "]\n";
  return out.str();
}

}  // namespace mhd
