// Analytical cost models — TABLE I (metadata size) and TABLE II (disk
// access counts) of the paper, implemented verbatim as functions of
//   F  : number of input files that are not completely duplicate
//   N  : final number of non-duplicate chunks at ECS granularity
//   D  : final number of duplicate chunks
//   L  : number of detected duplicate data slices
//   SD : sample distance (>= 2 for TABLE I)
//
// Note: two of the paper's printed "summary" rows do not equal the sum of
// their component rows (MHD: components give 512F + 350N/SD + 148L vs the
// printed 512F + 424N/SD; SubChunk: 532F + 284N/SD + 36N vs the printed
// 532F + 280N/SD + 36N). Both the component-derived and the printed
// summaries are exposed; EXPERIMENTS.md discusses the discrepancy.
#pragma once

#include <cstdint>
#include <string>

namespace mhd {

struct AnalysisInputs {
  std::uint64_t F = 0;
  std::uint64_t N = 0;
  std::uint64_t D = 0;
  std::uint64_t L = 0;
  std::uint64_t SD = 2;
};

/// One TABLE I column.
struct MetadataModel {
  std::string algorithm;
  std::uint64_t inodes_diskchunks = 0;
  std::uint64_t inodes_hooks = 0;
  std::uint64_t bytes_per_hook = 20;
  std::uint64_t inodes_manifests = 0;
  std::uint64_t manifest_bytes = 0;
  std::uint64_t summary_printed = 0;  ///< the paper's summary row, verbatim

  /// Sum of the component rows (inodes at 256 B + hook bytes + manifests).
  std::uint64_t summary_components() const {
    return (inodes_diskchunks + inodes_hooks + inodes_manifests) * 256 +
           inodes_hooks * bytes_per_hook + manifest_bytes;
  }
};

MetadataModel table1_mhd(const AnalysisInputs& in);
MetadataModel table1_subchunk(const AnalysisInputs& in);
MetadataModel table1_bimodal(const AnalysisInputs& in);
MetadataModel table1_cdc(const AnalysisInputs& in);

/// One TABLE II column.
struct DiskAccessModel {
  std::string algorithm;
  std::uint64_t chunk_out = 0;
  std::uint64_t chunk_in = 0;
  std::uint64_t hook_out = 0;
  std::uint64_t hook_in = 0;
  std::uint64_t manifest_out = 0;
  std::uint64_t manifest_in = 0;
  std::uint64_t big_chunk_query = 0;
  std::uint64_t small_chunk_query = 0;
  std::uint64_t summary_without_bloom = 0;  ///< paper row, verbatim
  std::uint64_t summary_with_bloom = 0;     ///< paper row, verbatim

  std::uint64_t io_components() const {
    return chunk_out + chunk_in + hook_out + hook_in + manifest_out +
           manifest_in;
  }
};

DiskAccessModel table2_mhd(const AnalysisInputs& in);
DiskAccessModel table2_subchunk(const AnalysisInputs& in);
DiskAccessModel table2_bimodal(const AnalysisInputs& in);
DiskAccessModel table2_cdc(const AnalysisInputs& in);

/// Section IV: "when 3L < D/SD, the number of disk accesses for MHD is
/// lower than all other algorithms compared" — the condition under which
/// MHD's worst-case HHR cost is outweighed by the per-chunk queries it
/// avoids. The table2 bench prints which side of it a corpus falls on.
bool mhd_wins_disk_accesses(const AnalysisInputs& in);

/// Section IV (last paragraph): the maximal data-block size a single
/// SHA-1 hash can represent — MHD: ECS*(SD-1); SubChunk/Bimodal: ECS*SD;
/// CDC: ECS. This bounds each algorithm's best-case metadata density.
std::uint64_t max_block_per_hash_mhd(std::uint64_t ecs, std::uint64_t sd);
std::uint64_t max_block_per_hash_subchunk(std::uint64_t ecs, std::uint64_t sd);
std::uint64_t max_block_per_hash_bimodal(std::uint64_t ecs, std::uint64_t sd);
std::uint64_t max_block_per_hash_cdc(std::uint64_t ecs);

}  // namespace mhd
