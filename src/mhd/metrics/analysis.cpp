#include "mhd/metrics/analysis.h"

namespace mhd {

MetadataModel table1_mhd(const AnalysisInputs& in) {
  MetadataModel m;
  m.algorithm = "MHD";
  m.inodes_diskchunks = in.F;
  m.inodes_hooks = in.N / in.SD;
  m.inodes_manifests = in.F;
  m.manifest_bytes = 74 * in.N / in.SD + 148 * in.L;
  m.summary_printed = 512 * in.F + 424 * in.N / in.SD;
  return m;
}

MetadataModel table1_subchunk(const AnalysisInputs& in) {
  MetadataModel m;
  m.algorithm = "SubChunk";
  m.inodes_diskchunks = in.N / in.SD;
  m.inodes_hooks = in.F;
  m.inodes_manifests = in.F;
  m.manifest_bytes = 36 * in.N + 28 * in.N / in.SD;
  m.summary_printed = 532 * in.F + 280 * in.N / in.SD + 36 * in.N;
  return m;
}

MetadataModel table1_bimodal(const AnalysisInputs& in) {
  MetadataModel m;
  m.algorithm = "Bimodal";
  m.inodes_diskchunks = in.F;
  m.inodes_hooks = in.N / in.SD + 2 * in.L * (in.SD - 1);
  m.inodes_manifests = in.F;
  m.manifest_bytes = 36 * in.N / in.SD + 72 * in.L * (in.SD - 1);
  m.summary_printed =
      512 * in.F + 312 * in.N / in.SD + 624 * in.L * (in.SD - 1);
  return m;
}

MetadataModel table1_cdc(const AnalysisInputs& in) {
  MetadataModel m;
  m.algorithm = "CDC";
  m.inodes_diskchunks = in.F;
  m.inodes_hooks = in.N;
  m.inodes_manifests = in.F;
  m.manifest_bytes = 36 * in.N;
  m.summary_printed = 512 * in.F + 312 * in.N;
  return m;
}

DiskAccessModel table2_mhd(const AnalysisInputs& in) {
  DiskAccessModel m;
  m.algorithm = "MHD";
  m.chunk_out = in.F;
  m.chunk_in = 2 * in.L;
  m.hook_out = in.N / in.SD;
  m.hook_in = in.L;
  m.manifest_out = in.F + in.L;
  m.manifest_in = in.L;
  m.big_chunk_query = 0;
  m.small_chunk_query = in.N + in.L;
  m.summary_without_bloom = 2 * in.F + 6 * in.L + in.N + in.N / in.SD;
  m.summary_with_bloom = 2 * in.F + 6 * in.L + in.N / in.SD;
  return m;
}

DiskAccessModel table2_subchunk(const AnalysisInputs& in) {
  DiskAccessModel m;
  m.algorithm = "SubChunk";
  m.chunk_out = in.N / in.SD;
  m.hook_out = in.F;
  m.hook_in = in.L;
  m.manifest_out = in.F;
  m.manifest_in = in.L;
  m.big_chunk_query = (in.N + in.D) / in.SD;
  m.small_chunk_query = in.N + in.L;
  m.summary_without_bloom =
      2 * in.F + 3 * in.L + in.N + (2 * in.N + in.D) / in.SD;
  m.summary_with_bloom = 2 * in.F + 3 * in.L + (in.N + in.D) / in.SD;
  return m;
}

DiskAccessModel table2_bimodal(const AnalysisInputs& in) {
  DiskAccessModel m;
  m.algorithm = "Bimodal";
  m.chunk_out = in.F;
  m.hook_out = in.N / in.SD + 2 * (in.SD - 1) * in.L;
  m.hook_in = in.L;
  m.manifest_out = in.F;
  m.manifest_in = in.L;
  m.big_chunk_query = in.N / in.SD;
  m.small_chunk_query = (2 * in.SD + 1) * in.L;
  m.summary_without_bloom =
      2 * in.F + (4 * in.SD + 1) * in.L + 2 * in.N / in.SD;
  m.summary_with_bloom = 2 * in.F + (2 * in.SD + 1) * in.L + in.N / in.SD;
  return m;
}

DiskAccessModel table2_cdc(const AnalysisInputs& in) {
  DiskAccessModel m;
  m.algorithm = "CDC";
  m.chunk_out = in.F;
  m.hook_out = in.N;
  m.hook_in = in.L;
  m.manifest_out = in.F;
  m.manifest_in = in.L;
  m.big_chunk_query = 0;
  m.small_chunk_query = in.N + in.L;
  m.summary_without_bloom = 2 * in.F + 3 * in.L + 2 * in.N;
  m.summary_with_bloom = 2 * in.F + 3 * in.L + in.N;
  return m;
}

bool mhd_wins_disk_accesses(const AnalysisInputs& in) {
  return 3 * in.L < in.D / in.SD;
}

std::uint64_t max_block_per_hash_mhd(std::uint64_t ecs, std::uint64_t sd) {
  return ecs * (sd - 1);
}
std::uint64_t max_block_per_hash_subchunk(std::uint64_t ecs,
                                          std::uint64_t sd) {
  return ecs * sd;
}
std::uint64_t max_block_per_hash_bimodal(std::uint64_t ecs, std::uint64_t sd) {
  return ecs * sd;
}
std::uint64_t max_block_per_hash_cdc(std::uint64_t ecs) { return ecs; }

}  // namespace mhd
