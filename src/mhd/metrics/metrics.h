// Evaluation metrics — Section V of the paper.
//
//  * data-only DER     : input bytes / stored data bytes
//  * real DER          : input bytes / (stored data + ALL metadata, from
//                        the file system's perspective: inodes at 256 B
//                        each + hook + manifest + filemanifest bytes)
//  * MetaDataRatio     : total metadata bytes / input bytes
//  * ThroughputRatio   : T(plain copy) / T(dedup); both are CPU time plus
//                        DiskModel time, so a value < 1 means dedup is
//                        slower than copying (as in the paper's Fig. 8)
//  * DAD               : duplicate bytes / duplicate slices (Fig. 10a)
#pragma once

#include <string>

#include "mhd/dedup/engine.h"
#include "mhd/store/disk_model.h"

namespace mhd {

/// Per-namespace metadata accounting pulled from a storage backend.
struct MetadataBreakdown {
  std::uint64_t inodes_diskchunks = 0;
  std::uint64_t inodes_hooks = 0;
  std::uint64_t inodes_manifests = 0;
  std::uint64_t inodes_filemanifests = 0;
  std::uint64_t hook_bytes = 0;
  std::uint64_t manifest_bytes = 0;
  std::uint64_t filemanifest_bytes = 0;

  static MetadataBreakdown from(const StorageBackend& backend);

  std::uint64_t total_inodes() const {
    return inodes_diskchunks + inodes_hooks + inodes_manifests +
           inodes_filemanifests;
  }
  std::uint64_t inode_bytes() const {
    return total_inodes() * StorageBackend::kInodeBytes;
  }
  /// All metadata bytes: inode overhead + metadata file contents.
  std::uint64_t total_bytes() const {
    return inode_bytes() + hook_bytes + manifest_bytes + filemanifest_bytes;
  }
  /// Hook + Manifest content bytes (paper Fig. 7(b) / TABLE IV).
  std::uint64_t hook_manifest_bytes() const {
    return hook_bytes + manifest_bytes;
  }
};

/// One measured restore pass (filled by benches/CLIs — summarize() never
/// runs a restore itself).
struct RestoreMetrics {
  std::uint64_t bytes = 0;   ///< logical bytes restored
  double seconds = 0;
  /// Whole-container loads this restore caused (ContainerStats diff);
  /// zero on a legacy per-chunk store.
  std::uint64_t container_reads = 0;
  std::uint64_t cache_hits = 0;
  /// Chunk-fragmentation level: optimal container reads
  /// (ceil(bytes/container_bytes)) over actual reads. 1.0 = perfectly
  /// sequential layout; falls toward 0 as duplicates scatter the stream
  /// across old containers. 0 when nothing was measured.
  double cfl = 0;

  double mb_per_s() const {
    return seconds <= 0 ? 0.0
                        : static_cast<double>(bytes) / (1 << 20) / seconds;
  }
  double containers_read_per_mb() const {
    return bytes == 0 ? 0.0
                      : static_cast<double>(container_reads) /
                            (static_cast<double>(bytes) / (1 << 20));
  }
};

/// Everything one (algorithm, ECS, SD, corpus) run produces.
struct ExperimentResult {
  std::string algorithm;
  std::uint32_t ecs = 0;
  std::uint32_t sd = 0;
  std::string chunker = "rabin";        ///< cut-point algorithm
  std::string chunker_impl = "scalar";  ///< resolved scan kernel
  std::string hash_impl = "portable";   ///< resolved SHA-1 kernel

  std::uint64_t input_bytes = 0;
  std::uint64_t stored_data_bytes = 0;  ///< DiskChunk content (logical)
  /// Physical DiskChunk bytes including self-verification framing; equals
  /// stored_data_bytes on an unframed store.
  std::uint64_t physical_data_bytes = 0;
  bool framed = false;
  MetadataBreakdown metadata;
  EngineCounters counters;
  StorageStats stats;
  std::uint64_t manifest_loads = 0;   ///< TABLE V
  std::uint64_t index_ram_bytes = 0;  ///< TABLE III (RAM high-water)
  std::string index_impl = "mem";   ///< "mem" | "disk" | "sampled"
  std::uint64_t index_entries = 0;  ///< fingerprints the index knows
  /// Sampled similarity tier (zero unless index_impl == "sampled").
  std::uint32_t sample_bits = 0;           ///< hook sampling rate (1/2^bits)
  std::uint64_t sampled_hook_entries = 0;  ///< sparse hook-table keys
  /// Measured hook-table RAM (keys + champion references) — the part of
  /// the tier whose footprint scales with the corpus.
  std::uint64_t sampled_hook_table_bytes = 0;
  std::uint64_t champion_loads = 0;        ///< segments pulled in on hook hits
  /// Duplicate bytes the sampled tier stored again because no loaded
  /// champion covered them — the measured dedup-ratio loss vs exact.
  std::uint64_t sampled_missed_dup_bytes = 0;
  std::uint64_t sampled_missed_dup_chunks = 0;

  /// Staged-ingest configuration and per-stage observability (empty when
  /// the run ingested serially, i.e. ingest_threads == 0).
  std::uint32_t ingest_threads = 0;
  PipelineStats pipeline;

  // Container store + rewrite (zero/"none" without --container-mb).
  std::uint64_t container_bytes = 0;  ///< configured container size
  std::string rewrite_mode = "none";
  std::uint64_t containers_sealed = 0;
  std::uint64_t container_packed_bytes = 0;
  /// Last measured restore pass, if the caller ran one (see
  /// measure_restore in sim/runner.h); all-zero otherwise.
  RestoreMetrics restore;

  double dedup_seconds = 0;  ///< CPU + modeled disk time
  double copy_seconds = 0;   ///< modeled baseline copy

  double data_only_der() const;
  double real_der() const;
  double metadata_ratio() const;     ///< fraction (not %)
  double throughput_ratio() const;
  double inodes_per_mb() const;                ///< Fig. 7(a)
  double manifest_hook_metadata_ratio() const; ///< Fig. 7(b)
  double filemanifest_metadata_ratio() const;  ///< Fig. 7(c)
  double dad_bytes() const;                    ///< Fig. 10(a)
  /// CRC framing cost on the data path (0 on unframed stores).
  std::uint64_t framing_overhead_bytes() const {
    return physical_data_bytes - stored_data_bytes;
  }
  /// Fraction of detected duplicate bytes declined for restore locality
  /// (0 with --rewrite=none): rewritten / (deduplicated + rewritten).
  double rewrite_ratio() const {
    const std::uint64_t seen = counters.dup_bytes + counters.rewritten_bytes;
    return seen == 0 ? 0.0
                     : static_cast<double>(counters.rewritten_bytes) /
                           static_cast<double>(seen);
  }
};

/// Fills the derived/metadata parts of a result from a finished engine.
/// `cpu_copy_bw` models the memcpy cost of the baseline copy.
ExperimentResult summarize(const std::string& algorithm,
                           const DedupEngine& engine,
                           const StorageBackend& backend,
                           const DiskModel& disk,
                           double cpu_copy_bw = 4.0e9);

}  // namespace mhd
