// Corpus presets used by tests, examples and the paper-reproduction
// benches. All presets keep the paper's *shape* (14 machines, 14 daily
// snapshots, 3 OS groups, DER ~ 4.1, DAD ~ 90-220 KB) and scale only the
// per-image size.
#pragma once

#include <cstdint>

#include "mhd/workload/corpus.h"

namespace mhd {

/// The ICPP'13 dataset stand-in scaled to ~total_mb megabytes of input.
CorpusConfig icpp13_preset(std::uint64_t total_mb, std::uint64_t seed = 1);

/// Tiny corpus for unit/integration tests (a few MB, seconds to process).
CorpusConfig test_preset(std::uint64_t seed = 1);

}  // namespace mhd
