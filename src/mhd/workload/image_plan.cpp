#include "mhd/workload/image_plan.h"

#include <algorithm>

namespace mhd {

void ImagePlan::recompute_total() {
  total_bytes_ = 0;
  for (const auto& e : extents_) total_bytes_ += e.length;
}

std::size_t ImageSource::read(MutByteSpan out) {
  std::size_t produced = 0;
  while (produced < out.size() && extent_index_ < plan_.extents().size()) {
    const Extent& e = plan_.extents()[extent_index_];
    const std::uint64_t remaining = e.length - extent_pos_;
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, out.size() - produced));
    blocks_.fill(e.content_id, e.offset + extent_pos_,
                 {out.data() + produced, take});
    produced += take;
    extent_pos_ += take;
    if (extent_pos_ == e.length) {
      ++extent_index_;
      extent_pos_ = 0;
    }
  }
  return produced;
}

}  // namespace mhd
