#include "mhd/workload/corpus.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "mhd/hash/mix.h"
#include "mhd/util/random.h"

namespace mhd {

namespace {
// Content-id tags keep the id spaces of OS bases, user data and mutations
// disjoint.
constexpr std::uint64_t kOsTag = 0x05BA5E0000000000ULL;
constexpr std::uint64_t kUserTag = 0x05E70000000000ULL;
constexpr std::uint64_t kMutTag = 0x307A7E0000000000ULL;

std::string file_name(std::uint32_t snapshot, std::uint32_t machine) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "day%02u/pc%02u.img", snapshot + 1,
                machine + 1);
  return buf;
}
}  // namespace

Corpus::Corpus(const CorpusConfig& config)
    : config_(config), blocks_(config.seed) {
  if (config_.machines == 0 || config_.snapshots == 0 ||
      config_.image_bytes == 0 || config_.os_count == 0 ||
      config_.extent_bytes == 0) {
    throw std::invalid_argument("Corpus: zero-sized configuration");
  }

  // Build per-machine snapshot chains, then interleave snapshot-major.
  std::vector<std::vector<ImagePlan>> chains(config_.machines);
  for (std::uint32_t m = 0; m < config_.machines; ++m) {
    chains[m].reserve(config_.snapshots);
    chains[m].push_back(initial_plan(m));
    for (std::uint32_t s = 1; s < config_.snapshots; ++s) {
      chains[m].push_back(mutate(chains[m][s - 1], m, s));
    }
  }

  files_.reserve(static_cast<std::size_t>(config_.machines) * config_.snapshots);
  plans_.reserve(files_.capacity());
  for (std::uint32_t s = 0; s < config_.snapshots; ++s) {
    for (std::uint32_t m = 0; m < config_.machines; ++m) {
      ImagePlan& plan = chains[m][s];
      files_.push_back({file_name(s, m), m, s, plan.total_bytes()});
      total_bytes_ += plan.total_bytes();
      plans_.push_back(std::move(plan));
    }
  }
}

ImagePlan Corpus::initial_plan(std::uint32_t machine) const {
  const std::uint32_t os = machine % config_.os_count;
  const std::uint64_t os_bytes = static_cast<std::uint64_t>(
      static_cast<double>(config_.image_bytes) * config_.os_fraction);

  ImagePlan plan;
  // OS base: shared content ids across all machines with this OS.
  std::uint64_t produced = 0;
  std::uint64_t index = 0;
  while (produced < os_bytes) {
    const std::uint64_t len =
        std::min<std::uint64_t>(config_.extent_bytes, os_bytes - produced);
    plan.add({kOsTag ^ mix64(os, index++), 0, len});
    produced += len;
  }
  // User data: machine-unique content ids.
  index = 0;
  while (produced < config_.image_bytes) {
    const std::uint64_t len = std::min<std::uint64_t>(
        config_.extent_bytes, config_.image_bytes - produced);
    plan.add({kUserTag ^ mix64(machine + 1000, index++), 0, len});
    produced += len;
  }
  return plan;
}

ImagePlan Corpus::mutate(const ImagePlan& prev, std::uint32_t machine,
                         std::uint32_t snapshot) const {
  Xoshiro256 rng(mix64(config_.seed ^ 0xDA117, machine * 10000 + snapshot));
  std::uint64_t fresh_counter = 0;
  auto fresh_id = [&] {
    return kMutTag ^ mix64(machine * 100000 + snapshot, fresh_counter++);
  };

  // Choose this snapshot's hot regions: runs of consecutive extents whose
  // union covers ~hot_fraction of the image. Everything else is untouched.
  const std::size_t n = prev.extents().size();
  std::vector<bool> hot(n, false);
  const std::size_t n_for_region = prev.extents().size();
  const std::size_t region = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.hot_region_fraction *
                                  static_cast<double>(n_for_region)));
  const bool quiet = rng.chance(config_.quiet_probability);
  const double hot_share =
      config_.hot_fraction * (quiet ? config_.quiet_factor : 1.0);
  const std::size_t hot_target =
      static_cast<std::size_t>(hot_share * static_cast<double>(n));
  std::size_t hot_marked = 0;
  // Bounded attempts: regions may overlap (re-marking is harmless) and the
  // last region is truncated so the hot share tracks the target exactly.
  for (int attempt = 0; attempt < 1000 && hot_marked < hot_target; ++attempt) {
    const std::size_t start =
        static_cast<std::size_t>(rng.below(std::max<std::uint64_t>(1, n)));
    for (std::size_t i = start;
         i < std::min(n, start + region) && hot_marked < hot_target; ++i) {
      hot_marked += !hot[i];
      hot[i] = true;
    }
  }

  ImagePlan next;
  for (std::size_t idx = 0; idx < n; ++idx) {
    const Extent& e = prev.extents()[idx];
    if (!hot[idx] || !rng.chance(config_.change_rate)) {
      next.add(e);
      continue;
    }
    const double kind = rng.uniform01();
    if (kind < config_.delete_fraction) {
      continue;  // extent deleted; downstream bytes shift backward
    }
    if (kind < config_.delete_fraction + config_.insert_fraction) {
      // Keep the extent and insert a small new one after it; downstream
      // bytes shift forward.
      next.add(e);
      const std::uint64_t span = config_.insert_max - config_.insert_min + 1;
      const std::uint64_t len = config_.insert_min + rng.below(span);
      next.add({fresh_id(), 0, len});
      continue;
    }
    // Replace: same position and length, fresh content.
    next.add({fresh_id(), 0, e.length});
  }
  return next;
}

std::unique_ptr<ByteSource> Corpus::open(std::size_t index) const {
  return std::make_unique<ImageSource>(plans_.at(index), blocks_);
}

const ImagePlan& Corpus::plan(std::size_t index) const {
  return plans_.at(index);
}

}  // namespace mhd
