// Synthetic disk-image backup corpus.
//
// Stands in for the paper's 1.0 TB dataset: disk-image backups of a group
// of PCs running several operating systems, taken daily over two weeks.
// Structure:
//   * machines are grouped by OS; the leading os_fraction of each day-1
//     image is the machine's OS base, shared by every machine of that OS;
//   * the rest of the day-1 image is machine-unique user data;
//   * each later snapshot mutates the previous one extent-by-extent:
//     replace (fresh content, same position), insert (small new extent —
//     shifts every downstream byte) or delete.
// Mutations are *clustered*: each snapshot picks a few "hot regions"
// (runs of hot_region_extents extents covering ~hot_fraction of the image)
// and only extents inside them change, with probability change_rate each.
// This mirrors real disk images — most of the disk is static day over day
// (few, very long duplicate slices carry the bulk of duplicate bytes)
// while changed areas produce many short slices. The knobs map onto the
// dataset characteristics of Section V-D: hot_fraction*change_rate sets
// the duplicate fraction (data-only DER) and extent_bytes/change_rate set
// the detected duplicate-slice length (DAD).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mhd/workload/image_plan.h"

namespace mhd {

struct CorpusConfig {
  std::uint32_t machines = 14;
  std::uint32_t snapshots = 14;     ///< two weeks of daily backups
  std::uint64_t image_bytes = 8ULL << 20;
  std::uint32_t os_count = 3;       ///< Windows / Linux / Mac groups
  double os_fraction = 0.35;        ///< leading image share that is OS base
  std::uint64_t extent_bytes = 16 << 10;
  double change_rate = 0.70;        ///< P(extent mutated | in a hot region)
  double hot_fraction = 0.50;       ///< image share inside hot regions
  double hot_region_fraction = 0.08;  ///< image share of one hot region
  /// A machine has "quiet" days (left on, barely used): its snapshot then
  /// mutates only quiet_factor * hot_fraction of the image. Quiet days
  /// produce the very long whole-image duplicate runs that dominate real
  /// backup streams (and that make the byte-weighted slice length far
  /// exceed the mean DAD).
  double quiet_probability = 0.50;
  double quiet_factor = 0.10;
  double insert_fraction = 0.10;    ///< share of mutations that insert
  double delete_fraction = 0.05;    ///< share of mutations that delete
  std::uint64_t insert_min = 2 << 10;
  std::uint64_t insert_max = 8 << 10;
  std::uint64_t seed = 1;
};

struct CorpusFile {
  std::string name;        ///< e.g. "day03/pc07.img"
  std::uint32_t machine = 0;
  std::uint32_t snapshot = 0;
  std::uint64_t bytes = 0;
};

class Corpus {
 public:
  explicit Corpus(const CorpusConfig& config);

  /// Files in backup order (snapshot-major: all machines day 1, then day 2
  /// ... ), matching how a backup system would feed the deduplicator.
  const std::vector<CorpusFile>& files() const { return files_; }
  std::uint64_t total_bytes() const { return total_bytes_; }
  const CorpusConfig& config() const { return config_; }

  /// Streaming reader for file `index` (into files()).
  std::unique_ptr<ByteSource> open(std::size_t index) const;

  const ImagePlan& plan(std::size_t index) const;

 private:
  ImagePlan initial_plan(std::uint32_t machine) const;
  ImagePlan mutate(const ImagePlan& prev, std::uint32_t machine,
                   std::uint32_t snapshot) const;

  CorpusConfig config_;
  BlockSource blocks_;
  std::vector<CorpusFile> files_;
  std::vector<ImagePlan> plans_;  ///< parallel to files_
  std::uint64_t total_bytes_ = 0;
};

}  // namespace mhd
