#include "mhd/workload/presets.h"

#include <algorithm>

namespace mhd {

CorpusConfig icpp13_preset(std::uint64_t total_mb, std::uint64_t seed) {
  CorpusConfig c;
  c.seed = seed;
  const std::uint64_t total = total_mb << 20;
  c.image_bytes = std::max<std::uint64_t>(
      total / (static_cast<std::uint64_t>(c.machines) * c.snapshots),
      256 << 10);
  return c;
}

CorpusConfig test_preset(std::uint64_t seed) {
  CorpusConfig c;
  c.machines = 4;
  c.snapshots = 4;
  c.os_count = 2;
  c.image_bytes = 256 << 10;
  c.extent_bytes = 8 << 10;
  c.seed = seed;
  return c;
}

}  // namespace mhd
