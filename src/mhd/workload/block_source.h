// Counter-mode synthetic content.
//
// Every logical content block in the corpus is identified by a 64-bit
// content id; its bytes are a pure function of (corpus seed, content id,
// offset). Any window of any block can therefore be regenerated in O(bytes)
// without materializing anything — the whole multi-gigabyte corpus streams
// from this function. Output is incompressible and collision-free for the
// purposes of chunk-hash dedup (distinct ids => distinct content).
#pragma once

#include <cstdint>

#include "mhd/util/bytes.h"

namespace mhd {

class BlockSource {
 public:
  explicit BlockSource(std::uint64_t corpus_seed) : seed_(corpus_seed) {}

  /// Fills `out` with the bytes of `content_id` starting at `offset`.
  void fill(std::uint64_t content_id, std::uint64_t offset,
            MutByteSpan out) const;

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t word_at(std::uint64_t content_id, std::uint64_t word_index) const;

  std::uint64_t seed_;
};

}  // namespace mhd
