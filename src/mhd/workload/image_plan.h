// ImagePlan — the extent-list description of one disk-image snapshot.
//
// A snapshot is a sequence of extents, each referencing a window of a
// logical content block (BlockSource). Snapshots of the same machine share
// most extents (duplication), and day-over-day mutation edits the extent
// list: replacing extents creates fresh unique data, inserting/deleting
// extents shifts all downstream bytes (the boundary-shifting behaviour
// content-defined chunking must absorb).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mhd/chunk/byte_source.h"
#include "mhd/workload/block_source.h"

namespace mhd {

struct Extent {
  std::uint64_t content_id = 0;
  std::uint64_t offset = 0;  ///< starting offset within the content block
  std::uint64_t length = 0;

  bool operator==(const Extent&) const = default;
};

class ImagePlan {
 public:
  ImagePlan() = default;

  void add(Extent e) {
    total_bytes_ += e.length;
    extents_.push_back(e);
  }

  const std::vector<Extent>& extents() const { return extents_; }
  std::vector<Extent>& extents() { return extents_; }
  std::uint64_t total_bytes() const { return total_bytes_; }

  /// Recomputes total_bytes after direct extent edits.
  void recompute_total();

 private:
  std::vector<Extent> extents_;
  std::uint64_t total_bytes_ = 0;
};

/// Streams the bytes of an ImagePlan through a BlockSource.
class ImageSource final : public ByteSource {
 public:
  ImageSource(const ImagePlan& plan, const BlockSource& blocks)
      : plan_(plan), blocks_(blocks) {}

  std::size_t read(MutByteSpan out) override;

 private:
  const ImagePlan& plan_;
  const BlockSource& blocks_;
  std::size_t extent_index_ = 0;
  std::uint64_t extent_pos_ = 0;
};

}  // namespace mhd
