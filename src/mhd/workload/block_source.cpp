#include "mhd/workload/block_source.h"

#include <cstring>

#include "mhd/hash/mix.h"
#include "mhd/util/random.h"

namespace mhd {

std::uint64_t BlockSource::word_at(std::uint64_t content_id,
                                   std::uint64_t word_index) const {
  return splitmix64(mix64(seed_ ^ content_id, word_index));
}

void BlockSource::fill(std::uint64_t content_id, std::uint64_t offset,
                       MutByteSpan out) const {
  std::size_t produced = 0;

  // Leading partial word.
  const std::uint64_t first_word = offset / 8;
  const std::size_t first_skip = static_cast<std::size_t>(offset % 8);
  if (first_skip != 0) {
    const std::uint64_t w = word_at(content_id, first_word);
    const Byte* wb = reinterpret_cast<const Byte*>(&w);
    const std::size_t take = std::min(out.size(), 8 - first_skip);
    for (std::size_t i = 0; i < take; ++i) out[produced++] = wb[first_skip + i];
  }

  // Full words.
  std::uint64_t word = (offset + produced) / 8;
  while (out.size() - produced >= 8) {
    const std::uint64_t w = word_at(content_id, word++);
    std::memcpy(out.data() + produced, &w, 8);
    produced += 8;
  }

  // Trailing partial word.
  if (produced < out.size()) {
    const std::uint64_t w = word_at(content_id, word);
    std::memcpy(out.data() + produced, &w, out.size() - produced);
  }
}

}  // namespace mhd
