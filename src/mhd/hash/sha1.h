// SHA-1 (FIPS 180-1), implemented from scratch.
//
// SHA-1 is the content hash of the paper's system: every chunk, merged
// chunk, hook and manifest is named by its SHA-1. Cryptographic strength is
// irrelevant here (dedup identity only), so the historical choice is kept
// for fidelity with the paper.
//
// The compression function is runtime-dispatched across the kernel family
// in sha1_kernels.h (portable / SSSE3-schedule / SHA-NI). Selection happens
// once — at first use or via set_sha1_impl() from the --hash-impl flag —
// and every hasher constructed afterwards uses the selected kernel. All
// kernels are bit-identical, so dispatch never changes results, only MB/s.
#pragma once

#include <cstdint>
#include <string_view>

#include "mhd/hash/digest.h"
#include "mhd/hash/sha1_kernels.h"
#include "mhd/util/bytes.h"

namespace mhd {

/// Selects the process-wide SHA-1 kernel. `requested` resolves through the
/// host CPUID (and the MHD_FORCE_PORTABLE_HASH override): kAuto picks the
/// best supported kernel, an explicit request falls back gracefully down
/// the shani > simd > portable chain when unsupported. Thread-safe, but
/// callers racing with in-flight hashing may see either kernel — engines
/// call this once at construction, before any hashing starts.
void set_sha1_impl(Sha1Impl requested);

/// The most recently requested implementation (kAuto until set).
Sha1Impl sha1_impl();

/// The compression function the next Sha1 instance will capture.
Sha1CompressFn active_sha1_compress();

/// Resolved kernel name ("shani", "simd-ssse3", "portable") of the kernel
/// currently installed by set_sha1_impl() / first use.
const char* active_sha1_impl_name();

/// Pure resolution: the kernel name `requested` would select on this host
/// right now (honours MHD_FORCE_PORTABLE_HASH). Used by metrics so JSON
/// reports the kernel that actually ran, not the flag that was asked for.
const char* resolved_sha1_impl_name(Sha1Impl requested);

/// Flag-vocabulary name: "auto" | "shani" | "simd" | "portable".
const char* sha1_impl_name(Sha1Impl impl);

/// Inverse of sha1_impl_name(); throws std::invalid_argument on anything
/// else.
Sha1Impl sha1_impl_from_string(std::string_view name);

/// One-shot digest through an explicit kernel, bypassing dispatch. This is
/// the primitive the differential tests and micro-benchmarks use to pin a
/// specific kernel regardless of what dispatch resolved.
Digest sha1_digest_with(Sha1CompressFn fn, ByteSpan data);

/// Incremental SHA-1 hasher. Captures the dispatched kernel at
/// construction, so a hasher's results are stable even if set_sha1_impl()
/// runs concurrently (all kernels agree anyway).
class Sha1 {
 public:
  Sha1() : fn_(active_sha1_compress()) { reset(); }

  void reset();
  void update(ByteSpan data);
  /// Finalizes and returns the digest. The hasher must be reset() before
  /// reuse after calling digest().
  Digest digest();

  /// One-shot fast path: whole 64-byte blocks are compressed directly from
  /// the caller's buffer in a single multi-block kernel call — no staging
  /// through the internal 64-byte buffer, no hasher object. This is the
  /// per-chunk fingerprint path every ingest site should use.
  static Digest digest_of(ByteSpan data) {
    return sha1_digest_with(active_sha1_compress(), data);
  }

  /// One-shot convenience (alias of digest_of, kept for existing callers).
  static Digest hash(ByteSpan data) { return digest_of(data); }

  /// One-shot over the concatenation of two spans (used by match extension
  /// when a region straddles buffer boundaries).
  static Digest hash2(ByteSpan a, ByteSpan b) {
    Sha1 h;
    h.update(a);
    h.update(b);
    return h.digest();
  }

 private:
  Sha1CompressFn fn_;
  std::uint32_t h_[5];
  std::uint64_t total_bytes_;
  Byte buffer_[64];
  std::size_t buffered_;
};

}  // namespace mhd
