// SHA-1 (FIPS 180-1), implemented from scratch.
//
// SHA-1 is the content hash of the paper's system: every chunk, merged
// chunk, hook and manifest is named by its SHA-1. Cryptographic strength is
// irrelevant here (dedup identity only), so the historical choice is kept
// for fidelity with the paper.
#pragma once

#include <cstdint>

#include "mhd/hash/digest.h"
#include "mhd/util/bytes.h"

namespace mhd {

/// Incremental SHA-1 hasher.
class Sha1 {
 public:
  Sha1() { reset(); }

  void reset();
  void update(ByteSpan data);
  /// Finalizes and returns the digest. The hasher must be reset() before
  /// reuse after calling digest().
  Digest digest();

  /// One-shot convenience.
  static Digest hash(ByteSpan data) {
    Sha1 h;
    h.update(data);
    return h.digest();
  }

  /// One-shot over the concatenation of two spans (used by match extension
  /// when a region straddles buffer boundaries).
  static Digest hash2(ByteSpan a, ByteSpan b) {
    Sha1 h;
    h.update(a);
    h.update(b);
    return h.digest();
  }

 private:
  void process_block(const Byte* block);

  std::uint32_t h_[5];
  std::uint64_t total_bytes_;
  Byte buffer_[64];
  std::size_t buffered_;
};

}  // namespace mhd
