// Cheap non-cryptographic 64-bit hashing used by the bloom filter (double
// hashing) and the workload generator (counter-mode content).
#pragma once

#include <cstdint>

#include "mhd/util/bytes.h"

namespace mhd {

/// FNV-1a 64-bit over a byte span.
std::uint64_t fnv1a64(ByteSpan data);

/// Mix two 64-bit values into one (order sensitive).
std::uint64_t mix64(std::uint64_t a, std::uint64_t b);

}  // namespace mhd
