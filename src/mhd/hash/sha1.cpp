#include "mhd/hash/sha1.h"

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <string>

namespace mhd {

// ---- Kernel dispatch ---------------------------------------------------

namespace {

constexpr std::uint32_t kInit[5] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu,
                                    0x10325476u, 0xC3D2E1F0u};

std::atomic<int> g_requested{static_cast<int>(Sha1Impl::kAuto)};
std::atomic<Sha1CompressFn> g_compress{nullptr};  // nullptr = not resolved yet

const Sha1KernelInfo* kernel_for(Sha1Impl impl) {
  for (const Sha1KernelInfo& k : sha1_kernels()) {
    if (k.impl == impl && k.supported) return &k;
  }
  return nullptr;
}

/// Resolution order: explicit supported request wins; everything else
/// (kAuto, or an unsupported explicit request) walks shani > simd >
/// portable. MHD_FORCE_PORTABLE_HASH pins portable regardless.
const Sha1KernelInfo& resolve_kernel(Sha1Impl requested) {
  const Sha1KernelInfo* portable = kernel_for(Sha1Impl::kPortable);
  if (sha1_portable_forced() || requested == Sha1Impl::kPortable) {
    return *portable;
  }
  if (requested != Sha1Impl::kAuto) {
    if (const Sha1KernelInfo* k = kernel_for(requested)) return *k;
    // Graceful fallback: asked-for kernel not on this silicon.
  }
  if (const Sha1KernelInfo* k = kernel_for(Sha1Impl::kShaNi)) return *k;
  if (const Sha1KernelInfo* k = kernel_for(Sha1Impl::kSimd)) return *k;
  return *portable;
}

}  // namespace

void set_sha1_impl(Sha1Impl requested) {
  g_requested.store(static_cast<int>(requested), std::memory_order_relaxed);
  g_compress.store(resolve_kernel(requested).fn, std::memory_order_release);
}

Sha1Impl sha1_impl() {
  return static_cast<Sha1Impl>(g_requested.load(std::memory_order_relaxed));
}

Sha1CompressFn active_sha1_compress() {
  Sha1CompressFn fn = g_compress.load(std::memory_order_acquire);
  if (fn == nullptr) {
    fn = resolve_kernel(sha1_impl()).fn;
    g_compress.store(fn, std::memory_order_release);
  }
  return fn;
}

const char* active_sha1_impl_name() {
  const Sha1CompressFn fn = active_sha1_compress();
  for (const Sha1KernelInfo& k : sha1_kernels()) {
    if (k.fn == fn) return k.name;
  }
  return "?";
}

const char* resolved_sha1_impl_name(Sha1Impl requested) {
  return resolve_kernel(requested).name;
}

const char* sha1_impl_name(Sha1Impl impl) {
  switch (impl) {
    case Sha1Impl::kAuto: return "auto";
    case Sha1Impl::kShaNi: return "shani";
    case Sha1Impl::kSimd: return "simd";
    case Sha1Impl::kPortable: return "portable";
  }
  return "?";
}

Sha1Impl sha1_impl_from_string(std::string_view name) {
  if (name == "auto") return Sha1Impl::kAuto;
  if (name == "shani") return Sha1Impl::kShaNi;
  if (name == "simd") return Sha1Impl::kSimd;
  if (name == "portable") return Sha1Impl::kPortable;
  throw std::invalid_argument("unknown --hash-impl value: " +
                              std::string(name));
}

// ---- One-shot fast path ------------------------------------------------

Digest sha1_digest_with(Sha1CompressFn fn, ByteSpan data) {
  std::uint32_t h[5];
  std::memcpy(h, kInit, sizeof(h));

  const std::size_t whole = data.size() / 64;
  if (whole > 0) fn(h, data.data(), whole);

  // Tail + padding in one stack buffer: rem bytes, 0x80, zeros, 64-bit
  // big-endian bit length — one block when rem < 56, two otherwise.
  const std::size_t rem = data.size() - whole * 64;
  alignas(16) Byte tail[128];
  if (rem > 0) std::memcpy(tail, data.data() + whole * 64, rem);
  const std::size_t tail_blocks = (rem < 56) ? 1 : 2;
  std::memset(tail + rem, 0, tail_blocks * 64 - rem);
  tail[rem] = 0x80;
  const std::uint64_t bit_len = static_cast<std::uint64_t>(data.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    tail[tail_blocks * 64 - 8 + i] = static_cast<Byte>(bit_len >> (56 - 8 * i));
  }
  fn(h, tail, tail_blocks);

  Digest out;
  for (int i = 0; i < 5; ++i) {
    out.bytes[i * 4] = static_cast<Byte>(h[i] >> 24);
    out.bytes[i * 4 + 1] = static_cast<Byte>(h[i] >> 16);
    out.bytes[i * 4 + 2] = static_cast<Byte>(h[i] >> 8);
    out.bytes[i * 4 + 3] = static_cast<Byte>(h[i]);
  }
  return out;
}

// ---- Incremental hasher ------------------------------------------------

void Sha1::reset() {
  std::memcpy(h_, kInit, sizeof(h_));
  total_bytes_ = 0;
  buffered_ = 0;
}

void Sha1::update(ByteSpan data) {
  total_bytes_ += data.size();
  const Byte* p = data.data();
  std::size_t n = data.size();

  if (buffered_ > 0) {
    const std::size_t take = std::min(n, sizeof(buffer_) - buffered_);
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    n -= take;
    if (buffered_ == sizeof(buffer_)) {
      fn_(h_, buffer_, 1);
      buffered_ = 0;
    }
  }
  // Whole blocks go straight from the caller's buffer in one multi-block
  // kernel call (SHA-NI amortizes its state load/shuffle across the run).
  const std::size_t whole = n / 64;
  if (whole > 0) {
    fn_(h_, p, whole);
    p += whole * 64;
    n -= whole * 64;
  }
  if (n > 0) {
    std::memcpy(buffer_, p, n);
    buffered_ = n;
  }
}

Digest Sha1::digest() {
  const std::uint64_t bit_len = total_bytes_ * 8;

  // Padding: 0x80, zeros, 64-bit big-endian length.
  static constexpr Byte kPad[64] = {0x80};
  const std::size_t rem = static_cast<std::size_t>(total_bytes_ % 64);
  const std::size_t pad_len = (rem < 56) ? (56 - rem) : (120 - rem);
  update({kPad, pad_len});

  Byte len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<Byte>(bit_len >> (56 - 8 * i));
  }
  // Bypass update()'s length accounting for the trailer.
  total_bytes_ -= pad_len;  // keep semantics tidy if caller inspects later
  std::memcpy(buffer_ + buffered_, len_be, 8);
  buffered_ += 8;
  fn_(h_, buffer_, 1);
  buffered_ = 0;

  Digest out;
  for (int i = 0; i < 5; ++i) {
    out.bytes[i * 4] = static_cast<Byte>(h_[i] >> 24);
    out.bytes[i * 4 + 1] = static_cast<Byte>(h_[i] >> 16);
    out.bytes[i * 4 + 2] = static_cast<Byte>(h_[i] >> 8);
    out.bytes[i * 4 + 3] = static_cast<Byte>(h_[i]);
  }
  return out;
}

}  // namespace mhd
