#include "mhd/hash/sha1.h"

#include <cstring>

namespace mhd {

namespace {
inline std::uint32_t rotl32(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}
}  // namespace

void Sha1::reset() {
  h_[0] = 0x67452301u;
  h_[1] = 0xEFCDAB89u;
  h_[2] = 0x98BADCFEu;
  h_[3] = 0x10325476u;
  h_[4] = 0xC3D2E1F0u;
  total_bytes_ = 0;
  buffered_ = 0;
}

void Sha1::process_block(const Byte* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (std::uint32_t(block[i * 4]) << 24) |
           (std::uint32_t(block[i * 4 + 1]) << 16) |
           (std::uint32_t(block[i * 4 + 2]) << 8) |
           std::uint32_t(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t tmp = rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::update(ByteSpan data) {
  total_bytes_ += data.size();
  const Byte* p = data.data();
  std::size_t n = data.size();

  if (buffered_ > 0) {
    const std::size_t take = std::min(n, sizeof(buffer_) - buffered_);
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    n -= take;
    if (buffered_ == sizeof(buffer_)) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }
  while (n >= 64) {
    process_block(p);
    p += 64;
    n -= 64;
  }
  if (n > 0) {
    std::memcpy(buffer_, p, n);
    buffered_ = n;
  }
}

Digest Sha1::digest() {
  const std::uint64_t bit_len = total_bytes_ * 8;

  // Padding: 0x80, zeros, 64-bit big-endian length.
  static constexpr Byte kPad[64] = {0x80};
  const std::size_t rem = static_cast<std::size_t>(total_bytes_ % 64);
  const std::size_t pad_len = (rem < 56) ? (56 - rem) : (120 - rem);
  update({kPad, pad_len});

  Byte len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<Byte>(bit_len >> (56 - 8 * i));
  }
  // Bypass update()'s length accounting for the trailer.
  total_bytes_ -= pad_len;  // keep semantics tidy if caller inspects later
  std::memcpy(buffer_ + buffered_, len_be, 8);
  buffered_ += 8;
  process_block(buffer_);
  buffered_ = 0;

  Digest out;
  for (int i = 0; i < 5; ++i) {
    out.bytes[i * 4] = static_cast<Byte>(h_[i] >> 24);
    out.bytes[i * 4 + 1] = static_cast<Byte>(h_[i] >> 16);
    out.bytes[i * 4 + 2] = static_cast<Byte>(h_[i] >> 8);
    out.bytes[i * 4 + 3] = static_cast<Byte>(h_[i]);
  }
  return out;
}

}  // namespace mhd
