#include "mhd/hash/sha1_kernels.h"

#include <cstdlib>

#include "mhd/util/cpufeatures.h"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define MHD_SHA1_X86_KERNELS 1
#endif

namespace mhd {

namespace {

inline std::uint32_t rotl32(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

/// The 80 rounds of FIPS 180-1 over a fully expanded message schedule.
/// Shared by the portable kernel (scalar schedule) and the SSSE3 kernel
/// (vector schedule): the rounds are a strict serial dependency chain
/// (a..e feed every step), so only the schedule is worth vectorizing
/// short of SHA-NI.
inline void sha1_rounds(std::uint32_t state[5], const std::uint32_t w[80]) {
  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3],
                e = state[4];
  for (int i = 0; i < 20; ++i) {
    const std::uint32_t tmp =
        rotl32(a, 5) + ((b & c) | (~b & d)) + e + 0x5A827999u + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = tmp;
  }
  for (int i = 20; i < 40; ++i) {
    const std::uint32_t tmp =
        rotl32(a, 5) + (b ^ c ^ d) + e + 0x6ED9EBA1u + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = tmp;
  }
  for (int i = 40; i < 60; ++i) {
    const std::uint32_t tmp = rotl32(a, 5) + ((b & c) | (b & d) | (c & d)) +
                              e + 0x8F1BBCDCu + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = tmp;
  }
  for (int i = 60; i < 80; ++i) {
    const std::uint32_t tmp =
        rotl32(a, 5) + (b ^ c ^ d) + e + 0xCA62C1D6u + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = tmp;
  }
  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
}

}  // namespace

void sha1_compress_portable(std::uint32_t state[5], const Byte* blocks,
                            std::size_t nblocks) {
  while (nblocks-- > 0) {
    std::uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
      w[i] = (std::uint32_t(blocks[i * 4]) << 24) |
             (std::uint32_t(blocks[i * 4 + 1]) << 16) |
             (std::uint32_t(blocks[i * 4 + 2]) << 8) |
             std::uint32_t(blocks[i * 4 + 3]);
    }
    for (int i = 16; i < 80; ++i) {
      w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
    }
    sha1_rounds(state, w);
    blocks += 64;
  }
}

#ifdef MHD_SHA1_X86_KERNELS

namespace {

// ---- SSSE3: vectorized message schedule --------------------------------
//
// W[i] = rotl1(W[i-3] ^ W[i-8] ^ W[i-14] ^ W[i-16]) computed four words at
// a time. Lane 3 of each quad depends on lane 0 (W[i+3] needs W[i]); the
// fix uses linearity of rotl over XOR:
//   W[i+3] = rotl1(W[i] ^ rest) = rotl1(W[i]) ^ rotl1(rest),
// so the quad is first computed with a zero in lane 3's missing term and
// lane 3 is patched with rotl1 of the quad's own lane 0 afterwards.

__attribute__((target("ssse3"))) inline __m128i rotl1_epi32(__m128i v) {
  return _mm_or_si128(_mm_slli_epi32(v, 1), _mm_srli_epi32(v, 31));
}

__attribute__((target("ssse3"))) void sha1_compress_ssse3_impl(
    std::uint32_t state[5], const Byte* blocks, std::size_t nblocks) {
  const __m128i bswap = _mm_set_epi8(12, 13, 14, 15, 8, 9, 10, 11, 4, 5, 6,
                                     7, 0, 1, 2, 3);
  while (nblocks-- > 0) {
    alignas(16) std::uint32_t w[80];
    for (int q = 0; q < 4; ++q) {
      const __m128i x = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(blocks + 16 * q));
      _mm_store_si128(reinterpret_cast<__m128i*>(w + 4 * q),
                      _mm_shuffle_epi8(x, bswap));
    }
    for (int i = 16; i < 80; i += 4) {
      const __m128i x16 =
          _mm_load_si128(reinterpret_cast<const __m128i*>(w + i - 16));
      const __m128i x14 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + i - 14));
      const __m128i x8 =
          _mm_load_si128(reinterpret_cast<const __m128i*>(w + i - 8));
      // [W[i-3], W[i-2], W[i-1], 0] — lane 3's W[i] term patched below.
      const __m128i x3 = _mm_srli_si128(
          _mm_load_si128(reinterpret_cast<const __m128i*>(w + i - 4)), 4);
      __m128i r = rotl1_epi32(_mm_xor_si128(_mm_xor_si128(x16, x14),
                                            _mm_xor_si128(x8, x3)));
      r = _mm_xor_si128(r, rotl1_epi32(_mm_slli_si128(r, 12)));
      _mm_store_si128(reinterpret_cast<__m128i*>(w + i), r);
    }
    sha1_rounds(state, w);
    blocks += 64;
  }
}

// ---- SHA-NI: full compression on the SHA extensions --------------------
//
// The canonical sha1rnds4 schedule: ABCD lives byte-reversed in one XMM,
// E rides in lane 3 of the round-constant operand, sha1msg1/sha1msg2
// expand the schedule four words at a time. State load/shuffle is hoisted
// out of the block loop — the reason the kernel API is multi-block.

// Steady-state 4-round group (rounds 12..63): consumes Ma, advances the
// schedule for the next three groups.
#define MHD_SHANI_G(Ein, Eout, Ma, Mb, Mc, Md, K)     \
  do {                                                \
    (Ein) = _mm_sha1nexte_epu32((Ein), (Ma));         \
    (Eout) = abcd;                                    \
    (Mb) = _mm_sha1msg2_epu32((Mb), (Ma));            \
    abcd = _mm_sha1rnds4_epu32(abcd, (Ein), (K));     \
    (Mc) = _mm_sha1msg1_epu32((Mc), (Ma));            \
    (Md) = _mm_xor_si128((Md), (Ma));                 \
  } while (0)

__attribute__((target("sha,sse4.1"))) void sha1_compress_shani_impl(
    std::uint32_t state[5], const Byte* blocks, std::size_t nblocks) {
  const __m128i bswap =
      _mm_set_epi64x(0x0001020304050607LL, 0x08090a0b0c0d0e0fLL);

  // abcd holds {A,B,C,D} with A in lane 3 (the 0x1B shuffle); e0 carries E
  // in lane 3.
  __m128i abcd = _mm_shuffle_epi32(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state)), 0x1B);
  __m128i e0 = _mm_set_epi32(static_cast<int>(state[4]), 0, 0, 0);
  __m128i e1;

  while (nblocks-- > 0) {
    const __m128i abcd_save = abcd;
    const __m128i e0_save = e0;

    __m128i m0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 0)), bswap);
    __m128i m1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 16)), bswap);
    __m128i m2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 32)), bswap);
    __m128i m3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 48)), bswap);

    // Rounds 0-3.
    e0 = _mm_add_epi32(e0, m0);
    e1 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
    // Rounds 4-7.
    e1 = _mm_sha1nexte_epu32(e1, m1);
    e0 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
    m0 = _mm_sha1msg1_epu32(m0, m1);
    // Rounds 8-11.
    e0 = _mm_sha1nexte_epu32(e0, m2);
    e1 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
    m1 = _mm_sha1msg1_epu32(m1, m2);
    m0 = _mm_xor_si128(m0, m2);

    MHD_SHANI_G(e1, e0, m3, m0, m2, m1, 0);  // rounds 12-15
    MHD_SHANI_G(e0, e1, m0, m1, m3, m2, 0);  // rounds 16-19
    MHD_SHANI_G(e1, e0, m1, m2, m0, m3, 1);  // rounds 20-23
    MHD_SHANI_G(e0, e1, m2, m3, m1, m0, 1);  // rounds 24-27
    MHD_SHANI_G(e1, e0, m3, m0, m2, m1, 1);  // rounds 28-31
    MHD_SHANI_G(e0, e1, m0, m1, m3, m2, 1);  // rounds 32-35
    MHD_SHANI_G(e1, e0, m1, m2, m0, m3, 1);  // rounds 36-39
    MHD_SHANI_G(e0, e1, m2, m3, m1, m0, 2);  // rounds 40-43
    MHD_SHANI_G(e1, e0, m3, m0, m2, m1, 2);  // rounds 44-47
    MHD_SHANI_G(e0, e1, m0, m1, m3, m2, 2);  // rounds 48-51
    MHD_SHANI_G(e1, e0, m1, m2, m0, m3, 2);  // rounds 52-55
    MHD_SHANI_G(e0, e1, m2, m3, m1, m0, 2);  // rounds 56-59
    MHD_SHANI_G(e1, e0, m3, m0, m2, m1, 3);  // rounds 60-63

    MHD_SHANI_G(e0, e1, m0, m1, m3, m2, 3);  // rounds 64-67
    // Rounds 68-71 (schedule expansion winds down: no more sha1msg1).
    e1 = _mm_sha1nexte_epu32(e1, m1);
    e0 = abcd;
    m2 = _mm_sha1msg2_epu32(m2, m1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
    m3 = _mm_xor_si128(m3, m1);
    // Rounds 72-75.
    e0 = _mm_sha1nexte_epu32(e0, m2);
    e1 = abcd;
    m3 = _mm_sha1msg2_epu32(m3, m2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);
    // Rounds 76-79.
    e1 = _mm_sha1nexte_epu32(e1, m3);
    e0 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);

    e0 = _mm_sha1nexte_epu32(e0, e0_save);
    abcd = _mm_add_epi32(abcd, abcd_save);
    blocks += 64;
  }

  abcd = _mm_shuffle_epi32(abcd, 0x1B);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), abcd);
  state[4] = static_cast<std::uint32_t>(_mm_extract_epi32(e0, 3));
}

#undef MHD_SHANI_G

}  // namespace

#endif  // MHD_SHA1_X86_KERNELS

bool sha1_portable_forced() {
  const char* v = std::getenv("MHD_FORCE_PORTABLE_HASH");
  return v != nullptr && v[0] != '\0' &&
         !(v[0] == '0' && v[1] == '\0');
}

std::span<const Sha1KernelInfo> sha1_kernels() {
#ifdef MHD_SHA1_X86_KERNELS
  static const Sha1KernelInfo kernels[] = {
      {"portable", Sha1Impl::kPortable, &sha1_compress_portable, true},
      {"simd-ssse3", Sha1Impl::kSimd, &sha1_compress_ssse3_impl,
       cpu_features().ssse3},
      {"shani", Sha1Impl::kShaNi, &sha1_compress_shani_impl,
       cpu_features().sha_ni && cpu_features().sse41},
  };
#else
  static const Sha1KernelInfo kernels[] = {
      {"portable", Sha1Impl::kPortable, &sha1_compress_portable, true},
  };
#endif
  return kernels;
}

}  // namespace mhd
