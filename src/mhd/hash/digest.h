// 160-bit digest value type used to name every chunk, hook and manifest.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>

#include "mhd/util/bytes.h"
#include "mhd/util/hex.h"

namespace mhd {

/// A SHA-1 digest. Hash-addressable object names are hex encodings of this.
struct Digest {
  static constexpr std::size_t kSize = 20;
  std::array<Byte, kSize> bytes{};

  auto operator<=>(const Digest&) const = default;

  ByteSpan span() const { return {bytes.data(), bytes.size()}; }
  std::string hex() const { return hex_encode(span()); }

  /// First 8 bytes as a little-endian integer — cheap well-mixed key for
  /// in-memory hash tables, bloom filters and sampling decisions.
  std::uint64_t prefix64() const {
    std::uint64_t v;
    std::memcpy(&v, bytes.data(), sizeof(v));
    return v;
  }

  bool is_zero() const {
    for (Byte b : bytes) {
      if (b != 0) return false;
    }
    return true;
  }
};

struct DigestHasher {
  std::size_t operator()(const Digest& d) const noexcept {
    return static_cast<std::size_t>(d.prefix64());
  }
};

}  // namespace mhd
