// Rabin fingerprinting by random polynomials (Rabin, 1981), the rolling
// hash used by the content-defined chunkers.
//
// The fingerprint of a byte window is the residue of its polynomial over
// GF(2) modulo a fixed irreducible polynomial P. Rolling a byte in/out is
// O(1) via two precomputed 256-entry tables:
//   append_table[o] = (o * x^deg(P))       mod P   (reduces the 8 overflow
//                                                   bits of f*x^8)
//   remove_table[b] = (b * x^(8*(w-1)))    mod P   (cancels the outgoing
//                                                   byte's contribution)
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "mhd/util/bytes.h"

namespace mhd {

class RabinFingerprint {
 public:
  /// Degree-63 irreducible polynomial (LBFS lineage); fingerprints < 2^63.
  static constexpr std::uint64_t kDefaultPoly = 0xBFE6B8A5BF378D83ULL;
  static constexpr std::size_t kDefaultWindow = 48;

  explicit RabinFingerprint(std::size_t window = kDefaultWindow,
                            std::uint64_t poly = kDefaultPoly);

  /// Clears the window and fingerprint.
  void reset();

  /// Rolls `b` into the window (and the byte `window` positions back out).
  /// Returns the new fingerprint.
  std::uint64_t push(Byte b);

  std::uint64_t value() const { return fp_; }
  std::size_t window_size() const { return window_.size(); }
  std::uint64_t poly() const { return poly_; }

  /// Non-rolling fingerprint of an entire buffer (for tests: rolling over a
  /// buffer must agree with the direct fingerprint of its last w bytes).
  std::uint64_t fingerprint(ByteSpan data) const;

 private:
  std::uint64_t shift_append(std::uint64_t f, Byte b) const;

  std::uint64_t poly_;
  int degree_;
  std::array<std::uint64_t, 256> append_table_;
  std::array<std::uint64_t, 256> remove_table_;
  std::vector<Byte> window_;
  std::size_t pos_ = 0;
  std::uint64_t fp_ = 0;
};

/// Degree of a GF(2) polynomial (position of the highest set bit), -1 for 0.
int poly_degree(std::uint64_t p);

/// (value << shift) mod p over GF(2); deg(p) must be <= 63.
std::uint64_t poly_mod_shifted(std::uint64_t value, int shift, std::uint64_t p);

}  // namespace mhd
