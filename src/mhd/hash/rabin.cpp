#include "mhd/hash/rabin.h"

namespace mhd {

int poly_degree(std::uint64_t p) {
  int d = -1;
  while (p != 0) {
    ++d;
    p >>= 1;
  }
  return d;
}

std::uint64_t poly_mod_shifted(std::uint64_t value, int shift, std::uint64_t p) {
  const int dp = poly_degree(p);
  // Work on a 128-bit register so value << shift never overflows for the
  // shifts used here (shift <= 8*(w-1) is reduced iteratively instead).
  unsigned __int128 v = value;
  int deg = poly_degree(value);
  if (deg < 0) return 0;
  deg += shift;
  v <<= shift;
  while (deg >= dp) {
    if ((v >> deg) & 1) {
      v ^= static_cast<unsigned __int128>(p) << (deg - dp);
    }
    --deg;
  }
  return static_cast<std::uint64_t>(v);
}

RabinFingerprint::RabinFingerprint(std::size_t window, std::uint64_t poly)
    : poly_(poly), degree_(poly_degree(poly)), window_(window, 0) {
  // append_table: reduction of the 8 bits that overflow past deg(P) when
  // the fingerprint is multiplied by x^8.
  for (int i = 0; i < 256; ++i) {
    append_table_[static_cast<std::size_t>(i)] =
        poly_mod_shifted(static_cast<std::uint64_t>(i), degree_, poly_);
  }
  // remove_table: contribution of a byte that is w-1 byte-positions old.
  // Built incrementally: start with (b * x^8) pattern and raise by x^8 per
  // window step, reducing as we go (avoids shifts beyond 128 bits).
  for (int b = 0; b < 256; ++b) {
    std::uint64_t f = static_cast<std::uint64_t>(b);
    for (std::size_t step = 1; step < window; ++step) {
      f = poly_mod_shifted(f, 8, poly_);
    }
    remove_table_[static_cast<std::size_t>(b)] = f;
  }
  reset();
}

void RabinFingerprint::reset() {
  std::fill(window_.begin(), window_.end(), Byte{0});
  pos_ = 0;
  fp_ = 0;
}

std::uint64_t RabinFingerprint::shift_append(std::uint64_t f, Byte b) const {
  const std::size_t top = static_cast<std::size_t>(f >> (degree_ - 8));
  return ((f << 8) & ((1ULL << degree_) - 1)) ^ append_table_[top] ^ b;
}

std::uint64_t RabinFingerprint::push(Byte b) {
  const Byte out = window_[pos_];
  window_[pos_] = b;
  pos_ = (pos_ + 1 == window_.size()) ? 0 : pos_ + 1;
  fp_ ^= remove_table_[out];
  fp_ = shift_append(fp_, b);
  return fp_;
}

std::uint64_t RabinFingerprint::fingerprint(ByteSpan data) const {
  std::uint64_t f = 0;
  for (Byte b : data) f = shift_append(f, b);
  return f;
}

}  // namespace mhd
