// SHA-1 compression-function kernel family.
//
// Ingest is fingerprint-bound: every small chunk is SHA-1'd once at ingest
// and again during BME/HHR match extension, so the compression function is
// the hot loop that caps end-to-end MB/s once chunking is SIMD. Three
// kernels share one multi-block contract and are bit-identical on every
// input (enforced by tests/hash/sha1_kernel_differential_test.cpp):
//
//  * portable   — the reference 80-round scalar loop; runs anywhere.
//  * simd-ssse3 — the message schedule (W[16..79]) is computed four words
//    at a time in XMM registers; the rounds themselves stay scalar.
//  * shani      — the full compression function on the SHA New
//    Instructions (sha1rnds4/sha1nexte/sha1msg1/sha1msg2), four rounds
//    per instruction.
//
// Accelerated kernels are compiled with per-function target attributes so
// the binary stays runnable on any x86-64; availability is a runtime
// CPUID question (util/cpufeatures), never a compile-time one. Selection
// happens once at startup through the dispatch in sha1.h; this header is
// the raw kernel registry the differential tests and micro-benchmarks
// iterate over.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "mhd/util/bytes.h"

namespace mhd {

/// Compresses `nblocks` consecutive 64-byte blocks into `state`. The
/// multi-block contract matters: SHA-NI amortizes the state load/shuffle
/// across the whole run instead of paying it per block.
using Sha1CompressFn = void (*)(std::uint32_t state[5], const Byte* blocks,
                                std::size_t nblocks);

void sha1_compress_portable(std::uint32_t state[5], const Byte* blocks,
                            std::size_t nblocks);

/// Requested implementation (the --hash-impl flag values). kAuto resolves
/// to the best kernel the host supports: shani > simd > portable.
enum class Sha1Impl : int {
  kAuto = 0,
  kShaNi,
  kSimd,
  kPortable,
};

/// One compiled-in kernel. `supported` is the host CPUID verdict: calling
/// `fn` with supported == false raises SIGILL, so every iteration over the
/// registry must gate on it. (The MHD_FORCE_PORTABLE_HASH override affects
/// dispatch resolution only, not this registry — the differential suite
/// still exercises every kernel the silicon can run.)
struct Sha1KernelInfo {
  const char* name;   ///< resolved name, e.g. "shani", "simd-ssse3"
  Sha1Impl impl;      ///< the request that selects exactly this kernel
  Sha1CompressFn fn;
  bool supported;
};

/// Every kernel compiled into this binary, portable first.
std::span<const Sha1KernelInfo> sha1_kernels();

/// True when MHD_FORCE_PORTABLE_HASH is set to a non-empty value other
/// than "0": dispatch then resolves every request to the portable kernel,
/// emulating a host without SHA extensions (the CI path for the
/// differential suite). Read live on every call, never cached.
bool sha1_portable_forced();

}  // namespace mhd
