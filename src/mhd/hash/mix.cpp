#include "mhd/hash/mix.h"

#include "mhd/util/random.h"

namespace mhd {

std::uint64_t fnv1a64(ByteSpan data) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (Byte b : data) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  return splitmix64(a ^ splitmix64(b));
}

}  // namespace mhd
