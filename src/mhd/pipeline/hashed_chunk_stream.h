// HashedChunkStream — the ingest front end every deduplication engine
// pulls from: whole chunks plus their SHA-1 fingerprints, strictly in
// input order.
//
// Two implementations share this interface:
//   * SerialHashedChunkStream: ChunkStream + Sha1 inline on the caller's
//     thread (the classic path, zero threads).
//   * IngestPipeline (ingest_pipeline.h): read → chunk → hash-pool →
//     reorder, delivering the exact same (bytes, hash) sequence from a
//     pool of worker threads.
// Because delivery order and content are identical, an engine cannot tell
// which implementation feeds it — dedup results are bit-identical.
#pragma once

#include <memory>

#include "mhd/chunk/chunk_stream.h"
#include "mhd/chunk/chunker.h"
#include "mhd/hash/digest.h"

namespace mhd {

class HashedChunkStream {
 public:
  virtual ~HashedChunkStream() = default;

  /// Fills `bytes` and `hash` with the next chunk, in input order.
  /// Returns false at end of stream. Propagates any pipeline-stage
  /// failure as the original exception on the calling thread.
  virtual bool next(ByteVec& bytes, Digest& hash) = 0;
};

/// The zero-thread implementation: chunk and fingerprint inline.
/// Takes ownership of the chunker (its state is private to the stream).
class SerialHashedChunkStream final : public HashedChunkStream {
 public:
  SerialHashedChunkStream(ByteSource& source, std::unique_ptr<Chunker> chunker);

  bool next(ByteVec& bytes, Digest& hash) override;

 private:
  std::unique_ptr<Chunker> chunker_;
  ChunkStream stream_;
};

}  // namespace mhd
