// BoundedQueue — the blocking MPMC channel that joins pipeline stages.
//
// Semantics (the pipeline's backpressure and shutdown contract):
//   * push() blocks while the queue is full; returns false (item dropped)
//     once the queue is closed, so producers learn the consumer went away.
//   * pop() blocks while the queue is empty; after close() it drains the
//     remaining items and then returns false.
//   * fail(err) aborts the channel: every blocked or future push/pop
//     rethrows `err` on the calling thread. Unlike close(), fail() does
//     not drain — a failed pipeline must stop fast, not finish its queue.
//   * high_water() reports the largest size the queue ever reached, the
//     per-stage queue-depth observability counter.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <mutex>
#include <utility>

namespace mhd {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is space (or the queue is closed/failed). Returns
  /// true if the item was enqueued, false if the queue was closed first.
  /// Rethrows the failure exception if fail() was called.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] {
      return items_.size() < capacity_ || closed_ || error_;
    });
    if (error_) std::rethrow_exception(error_);
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available (or the queue is closed/failed).
  /// Returns true with `out` filled, or false once closed and drained.
  /// Rethrows the failure exception if fail() was called (undelivered
  /// items are discarded — abort beats completeness).
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] {
      return !items_.empty() || closed_ || error_;
    });
    if (error_) std::rethrow_exception(error_);
    if (items_.empty()) return false;  // closed and drained
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Graceful shutdown: producers are done (or the consumer stopped
  /// caring). Blocked pushers return false; poppers drain whatever is
  /// queued, then get false. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Abort with an error: every blocked or subsequent push/pop rethrows
  /// `err` on its own thread. The first error wins; later calls are
  /// ignored. A null `err` degrades to close().
  void fail(std::exception_ptr err) {
    if (!err) {
      close();
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::move(err);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  /// Largest number of items ever queued (queue-depth high-water mark).
  std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
  std::exception_ptr error_;
};

}  // namespace mhd
