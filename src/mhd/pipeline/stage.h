// Stage framework for the staged ingest pipeline: per-stage observability
// counters, the first-error latch that propagates a failing stage's
// exception to the caller, and a thread wrapper that ties the two
// together.
//
// Every stage accounts its wall time into busy (doing work) vs idle
// (blocked on a queue push/pop), so a pipeline run can show exactly which
// stage is the bottleneck — the destor-style "which phase starves"
// question answered with numbers instead of intuition.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "mhd/util/timer.h"

namespace mhd {

/// Counters for one pipeline stage, aggregated over a whole run.
struct StageStats {
  std::string stage;            ///< "read", "chunk", "hash", "dedup"
  std::uint32_t threads = 0;    ///< workers this stage ran with
  std::uint64_t items = 0;      ///< items processed (blocks or chunks)
  std::uint64_t bytes = 0;      ///< payload bytes through the stage
  double busy_seconds = 0;      ///< time spent working
  double idle_seconds = 0;      ///< time blocked on queue push/pop
  std::uint64_t queue_high_water = 0;  ///< max depth of the output queue

  void merge(const StageStats& other) {
    threads = other.threads > threads ? other.threads : threads;
    items += other.items;
    bytes += other.bytes;
    busy_seconds += other.busy_seconds;
    idle_seconds += other.idle_seconds;
    if (other.queue_high_water > queue_high_water) {
      queue_high_water = other.queue_high_water;
    }
  }

  /// busy / (busy + idle); 0 when the stage never ran.
  double utilization() const {
    const double total = busy_seconds + idle_seconds;
    return total <= 0 ? 0.0 : busy_seconds / total;
  }
};

/// Per-stage stats of one pipelined ingest (or the aggregate over many
/// files: DedupEngine sums one of these per add_file).
struct PipelineStats {
  std::uint32_t hash_workers = 0;  ///< pool size the run was configured with
  std::uint64_t files = 0;         ///< pipelined ingests aggregated here
  std::vector<StageStats> stages;  ///< fixed order: read, chunk, hash, dedup

  bool empty() const { return files == 0 && stages.empty(); }

  StageStats& stage(const std::string& name) {
    for (auto& s : stages) {
      if (s.stage == name) return s;
    }
    stages.push_back(StageStats{});
    stages.back().stage = name;
    return stages.back();
  }

  void merge(const PipelineStats& other) {
    if (other.hash_workers > hash_workers) hash_workers = other.hash_workers;
    files += other.files;
    for (const auto& s : other.stages) stage(s.stage).merge(s);
  }
};

/// First-error latch shared by all stages of one pipeline. The first
/// exception any stage records is the one the caller sees; later failures
/// (usually cascades of the first) are dropped.
class PipelineError {
 public:
  /// Records `err` if no error is latched yet. Returns true if this call
  /// latched it (i.e. the caller is the originating failure).
  bool set(std::exception_ptr err) {
    std::lock_guard<std::mutex> lock(mu_);
    if (err_) return false;
    err_ = std::move(err);
    return true;
  }

  bool has() const {
    std::lock_guard<std::mutex> lock(mu_);
    return err_ != nullptr;
  }

  std::exception_ptr get() const {
    std::lock_guard<std::mutex> lock(mu_);
    return err_;
  }

  /// Rethrows the latched error on the calling thread; no-op when clean.
  void rethrow_if_set() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (err_) std::rethrow_exception(err_);
  }

 private:
  mutable std::mutex mu_;
  std::exception_ptr err_;
};

/// Accumulates one thread's busy/idle split: time inside `idle(...)`
/// lambdas (queue waits) counts as idle, everything else as busy. The
/// alive window is bracketed by start()/stop() around the thread body so
/// a stage that finishes early does not keep accruing "busy" time while
/// the rest of the pipeline drains. Not thread-safe — one StageTimer per
/// stage thread, merged at join time.
class StageTimer {
 public:
  void start() {
    clock_.reset();
    running_ = true;
  }

  void stop() {
    if (!running_) return;
    alive_seconds_ += clock_.seconds();
    running_ = false;
  }

  /// RAII start()/stop() for a stage thread's body.
  class Scope {
   public:
    explicit Scope(StageTimer& t) : t_(t) { t_.start(); }
    ~Scope() { t_.stop(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    StageTimer& t_;
  };

  /// Runs `fn` accounting its duration as idle time (a queue operation).
  template <typename Fn>
  auto idle(Fn&& fn) -> decltype(fn()) {
    const Stopwatch w;
    if constexpr (std::is_void_v<decltype(fn())>) {
      fn();
      idle_seconds_ += w.seconds();
    } else {
      auto r = fn();
      idle_seconds_ += w.seconds();
      return r;
    }
  }

  /// Alive time between start() and stop(), minus queue waits.
  double busy_seconds() const {
    const double total =
        alive_seconds_ + (running_ ? clock_.seconds() : 0.0);
    const double busy = total - idle_seconds_;
    return busy < 0 ? 0 : busy;
  }
  double idle_seconds() const { return idle_seconds_; }

 private:
  Stopwatch clock_;
  double alive_seconds_ = 0;
  double idle_seconds_ = 0;
  bool running_ = false;
};

/// A named stage: `threads` workers running `body(worker_index)`, each
/// catching any exception into the shared error latch and then invoking
/// `on_error` (which should fail the stage's queues so neighbours wake).
class Stage {
 public:
  Stage(std::string name, PipelineError& error) : name_(std::move(name)), error_(error) {}
  ~Stage() { join(); }

  Stage(const Stage&) = delete;
  Stage& operator=(const Stage&) = delete;

  void launch(std::uint32_t threads,
              std::function<void(std::uint32_t)> body,
              std::function<void()> on_error) {
    for (std::uint32_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this, i, body, on_error] {
        try {
          body(i);
        } catch (...) {
          error_.set(std::current_exception());
          if (on_error) on_error();
        }
      });
    }
  }

  void join() {
    for (auto& t : workers_) {
      if (t.joinable()) t.join();
    }
    workers_.clear();
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  PipelineError& error_;
  std::vector<std::thread> workers_;
};

}  // namespace mhd
