#include "mhd/pipeline/ingest_pipeline.h"

#include <cstring>

#include "mhd/hash/sha1.h"
#include "mhd/util/buffer_pool.h"

namespace mhd {

namespace {

/// ByteSource over the read→chunk queue: the chunk stage's ChunkStream
/// pulls from here instead of the real source. Pop waits are charged to
/// the chunk stage's idle time.
class QueueSource final : public ByteSource {
 public:
  QueueSource(BoundedQueue<ByteVec>& queue, StageTimer& timer)
      : queue_(queue), timer_(timer) {}

  std::size_t read(MutByteSpan out) override {
    if (offset_ == current_.size()) {
      // Recycle the drained I/O block for the read stage to refill.
      if (current_.capacity() > 0) {
        chunk_buffer_pool().release(std::move(current_));
      }
      current_.clear();
      offset_ = 0;
      const bool got = timer_.idle([&] { return queue_.pop(current_); });
      if (!got) return 0;
    }
    const std::size_t n = std::min(out.size(), current_.size() - offset_);
    std::memcpy(out.data(), current_.data() + offset_, n);
    offset_ += n;
    return n;
  }

 private:
  BoundedQueue<ByteVec>& queue_;
  StageTimer& timer_;
  ByteVec current_;
  std::size_t offset_ = 0;
};

}  // namespace

IngestPipeline::IngestPipeline(ByteSource& source,
                               std::unique_ptr<Chunker> chunker,
                               const PipelineOptions& options,
                               PipelineStats* stats_sink)
    : source_(source),
      chunker_(std::move(chunker)),
      opts_(options.normalized()),
      stats_sink_(stats_sink),
      raw_q_(4),
      work_q_(opts_.queue_depth),
      worker_logs_(opts_.hash_workers),
      read_stage_("read", error_),
      chunk_stage_("chunk", error_),
      hash_stage_("hash", error_) {
  // The consumer (dedup) clock runs from construction until shutdown —
  // the caller drives next() for the pipeline's whole active window.
  dedup_timer_.start();
  const auto on_error = [this] { abort_all(); };
  read_stage_.launch(1, [this](std::uint32_t) { run_read(); }, on_error);
  chunk_stage_.launch(1, [this](std::uint32_t) { run_chunk(); }, on_error);
  hash_stage_.launch(opts_.hash_workers,
                     [this](std::uint32_t w) { run_hash(w); }, on_error);
}

IngestPipeline::~IngestPipeline() { shutdown(); }

void IngestPipeline::run_read() {
  const StageTimer::Scope alive(read_timer_);
  for (;;) {
    ByteVec block = chunk_buffer_pool().acquire();
    block.resize(opts_.read_block);
    const std::size_t n = source_.read({block.data(), block.size()});
    if (n == 0) break;
    block.resize(n);
    ++read_items_;
    read_bytes_ += n;
    const bool pushed =
        read_timer_.idle([&] { return raw_q_.push(std::move(block)); });
    if (!pushed) return;  // consumer went away
  }
  raw_q_.close();
}

void IngestPipeline::run_chunk() {
  const StageTimer::Scope alive(chunk_timer_);
  QueueSource qs(raw_q_, chunk_timer_);
  ChunkStream stream(qs, *chunker_);
  ByteVec bytes;
  std::uint64_t seq = 0;
  while (stream.next(bytes)) {
    ++chunk_items_;
    chunk_bytes_ += bytes.size();
    WorkItem w{seq, std::move(bytes)};
    const bool pushed =
        chunk_timer_.idle([&] { return work_q_.push(std::move(w)); });
    if (!pushed) return;
    ++seq;
  }
  {
    std::lock_guard<std::mutex> lock(ro_mu_);
    chunk_done_ = true;
    total_chunks_ = seq;
  }
  ro_avail_.notify_all();
  work_q_.close();
}

void IngestPipeline::run_hash(std::uint32_t worker) {
  WorkerLog& log = worker_logs_[worker];
  const StageTimer::Scope alive(log.timer);
  WorkItem w;
  while (log.timer.idle([&] { return work_q_.pop(w); })) {
    const std::uint64_t seq = w.seq;
    HashedItem item;
    item.hash = Sha1::digest_of(w.bytes);
    ++log.items;
    log.bytes += w.bytes.size();
    item.bytes = std::move(w.bytes);
    if (!emplace_result(seq, std::move(item), log)) return;
  }
}

bool IngestPipeline::emplace_result(std::uint64_t seq, HashedItem item,
                                    WorkerLog& log) {
  std::unique_lock<std::mutex> lock(ro_mu_);
  // The window bounds memory: a worker far ahead of the consumer parks
  // until the cursor catches up. The worker holding next_seq_ always fits
  // (seq == next_seq_ < next_seq_ + depth), so this cannot deadlock.
  log.timer.idle([&] {
    ro_space_.wait(lock, [&] {
      return cancelled_ || failed_ || seq < next_seq_ + opts_.queue_depth;
    });
  });
  if (cancelled_ || failed_) return false;
  ro_buf_.emplace(seq, std::move(item));
  if (ro_buf_.size() > ro_high_water_) ro_high_water_ = ro_buf_.size();
  const bool ready = seq == next_seq_;
  lock.unlock();
  if (ready) ro_avail_.notify_one();
  return true;
}

bool IngestPipeline::next(ByteVec& bytes, Digest& hash) {
  std::unique_lock<std::mutex> lock(ro_mu_);
  dedup_timer_.idle([&] {
    ro_avail_.wait(lock, [&] {
      return failed_ || ro_buf_.count(next_seq_) > 0 ||
             (chunk_done_ && next_seq_ >= total_chunks_);
    });
  });
  if (failed_) {
    lock.unlock();
    error_.rethrow_if_set();
  }
  const auto it = ro_buf_.find(next_seq_);
  if (it == ro_buf_.end()) return false;  // end of stream
  // The caller's vector still holds the previous chunk's slab when the
  // engine didn't keep it; recycle it before overwriting.
  if (bytes.capacity() > 0) chunk_buffer_pool().release(std::move(bytes));
  bytes = std::move(it->second.bytes);
  hash = it->second.hash;
  ro_buf_.erase(it);
  ++next_seq_;
  ++dedup_items_;
  dedup_bytes_ += bytes.size();
  lock.unlock();
  ro_space_.notify_all();
  return true;
}

void IngestPipeline::abort_all() {
  const std::exception_ptr err = error_.get();
  raw_q_.fail(err);
  work_q_.fail(err);
  {
    std::lock_guard<std::mutex> lock(ro_mu_);
    failed_ = true;
  }
  ro_avail_.notify_all();
  ro_space_.notify_all();
}

void IngestPipeline::shutdown() {
  {
    std::lock_guard<std::mutex> lock(ro_mu_);
    cancelled_ = true;
  }
  raw_q_.close();
  work_q_.close();
  ro_avail_.notify_all();
  ro_space_.notify_all();
  read_stage_.join();
  chunk_stage_.join();
  hash_stage_.join();
  dedup_timer_.stop();
  flush_stats();
}

void IngestPipeline::flush_stats() {
  if (stats_flushed_) return;
  stats_flushed_ = true;
  if (!stats_sink_) return;

  PipelineStats p;
  p.hash_workers = opts_.hash_workers;
  p.files = 1;

  StageStats& read = p.stage("read");
  read.threads = 1;
  read.items = read_items_;
  read.bytes = read_bytes_;
  read.busy_seconds = read_timer_.busy_seconds();
  read.idle_seconds = read_timer_.idle_seconds();
  read.queue_high_water = raw_q_.high_water();

  StageStats& chunk = p.stage("chunk");
  chunk.threads = 1;
  chunk.items = chunk_items_;
  chunk.bytes = chunk_bytes_;
  chunk.busy_seconds = chunk_timer_.busy_seconds();
  chunk.idle_seconds = chunk_timer_.idle_seconds();
  chunk.queue_high_water = work_q_.high_water();

  StageStats& hash = p.stage("hash");
  hash.threads = opts_.hash_workers;
  for (const auto& log : worker_logs_) {
    hash.items += log.items;
    hash.bytes += log.bytes;
    hash.busy_seconds += log.timer.busy_seconds();
    hash.idle_seconds += log.timer.idle_seconds();
  }
  hash.queue_high_water = ro_high_water_;

  StageStats& dedup = p.stage("dedup");
  dedup.threads = 1;
  dedup.items = dedup_items_;
  dedup.bytes = dedup_bytes_;
  dedup.busy_seconds = dedup_timer_.busy_seconds();
  dedup.idle_seconds = dedup_timer_.idle_seconds();

  stats_sink_->merge(p);
}

std::unique_ptr<HashedChunkStream> open_hashed_stream(
    ByteSource& source, std::unique_ptr<Chunker> chunker,
    std::uint32_t hash_workers, std::uint32_t queue_depth,
    PipelineStats* stats_sink) {
  if (hash_workers == 0) {
    return std::make_unique<SerialHashedChunkStream>(source,
                                                     std::move(chunker));
  }
  PipelineOptions opts;
  opts.hash_workers = hash_workers;
  opts.queue_depth = queue_depth;
  return std::make_unique<IngestPipeline>(source, std::move(chunker), opts,
                                          stats_sink);
}

}  // namespace mhd
