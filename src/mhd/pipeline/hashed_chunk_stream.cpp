#include "mhd/pipeline/hashed_chunk_stream.h"

#include "mhd/hash/sha1.h"

namespace mhd {

SerialHashedChunkStream::SerialHashedChunkStream(
    ByteSource& source, std::unique_ptr<Chunker> chunker)
    : chunker_(std::move(chunker)), stream_(source, *chunker_) {}

bool SerialHashedChunkStream::next(ByteVec& bytes, Digest& hash) {
  if (!stream_.next(bytes)) return false;
  hash = Sha1::digest_of(bytes);
  return true;
}

}  // namespace mhd
