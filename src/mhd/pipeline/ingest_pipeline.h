// IngestPipeline — the staged concurrent ingest path:
//
//   read(1) ──raw blocks──▶ chunk(1) ──seq'd chunks──▶ hash pool(N)
//                                                          │ out of order
//                                                          ▼
//   caller (dedup+store) ◀──strict input order── reorder buffer
//
// The read stage pulls fixed-size blocks from the ByteSource; the chunk
// stage runs the (stateful, inherently serial) chunker over them; a pool
// of hash workers fingerprints chunks out of order; and a sequence-number
// reorder buffer hands them to the caller strictly in input order. Chunk
// boundaries and SHA-1 are pure functions of the byte stream, so the
// delivered (bytes, hash) sequence — and therefore every dedup decision,
// manifest and counter downstream — is bit-identical to the serial path.
//
// All queues are bounded (backpressure, bounded memory: at most
// queue_depth chunks live between any two stages). A failing stage latches
// its exception, aborts every queue, and the caller's next() rethrows it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "mhd/pipeline/bounded_queue.h"
#include "mhd/pipeline/hashed_chunk_stream.h"
#include "mhd/pipeline/stage.h"

namespace mhd {

struct PipelineOptions {
  std::uint32_t hash_workers = 4;  ///< SHA-1 pool size (>= 1)
  std::uint32_t queue_depth = 64;  ///< chunks in flight between stages
  std::uint32_t read_block = 256 * 1024;  ///< read-stage granularity, bytes

  PipelineOptions normalized() const {
    PipelineOptions o = *this;
    if (o.hash_workers == 0) o.hash_workers = 1;
    if (o.queue_depth == 0) o.queue_depth = 1;
    if (o.read_block == 0) o.read_block = 64 * 1024;
    return o;
  }
};

class IngestPipeline final : public HashedChunkStream {
 public:
  /// Starts the stage threads immediately. `source` must outlive the
  /// pipeline and is only touched by the read stage. Takes ownership of
  /// the chunker. When `stats_sink` is non-null, per-stage counters are
  /// merged into it when the pipeline is destroyed.
  IngestPipeline(ByteSource& source, std::unique_ptr<Chunker> chunker,
                 const PipelineOptions& options,
                 PipelineStats* stats_sink = nullptr);
  ~IngestPipeline() override;

  bool next(ByteVec& bytes, Digest& hash) override;

 private:
  struct WorkItem {
    std::uint64_t seq = 0;
    ByteVec bytes;
  };
  struct HashedItem {
    ByteVec bytes;
    Digest hash;
  };
  struct WorkerLog {  // one per hash worker, merged after join
    StageTimer timer;
    std::uint64_t items = 0;
    std::uint64_t bytes = 0;
  };

  void run_read();
  void run_chunk();
  void run_hash(std::uint32_t worker);
  /// Parks a finished chunk in the reorder buffer (blocking while the
  /// window is full). Returns false when the pipeline is cancelled.
  bool emplace_result(std::uint64_t seq, HashedItem item, WorkerLog& log);
  void abort_all();
  void shutdown();
  void flush_stats();

  ByteSource& source_;
  std::unique_ptr<Chunker> chunker_;
  const PipelineOptions opts_;
  PipelineStats* stats_sink_;

  BoundedQueue<ByteVec> raw_q_;     ///< read → chunk
  BoundedQueue<WorkItem> work_q_;   ///< chunk → hash pool

  // Reorder buffer: hash results parked by sequence number until the
  // consumer's cursor reaches them.
  std::mutex ro_mu_;
  std::condition_variable ro_avail_;  ///< consumer waits for next_seq_
  std::condition_variable ro_space_;  ///< workers wait for window space
  std::map<std::uint64_t, HashedItem> ro_buf_;
  std::uint64_t next_seq_ = 0;       ///< consumer cursor
  std::uint64_t total_chunks_ = 0;   ///< valid once chunk_done_
  std::uint64_t ro_high_water_ = 0;
  bool chunk_done_ = false;
  bool cancelled_ = false;  ///< consumer went away (destructor)
  bool failed_ = false;     ///< a stage latched an exception

  PipelineError error_;

  // Per-stage observability (threads write their own slots; merged after
  // join in flush_stats).
  StageTimer read_timer_;
  std::uint64_t read_items_ = 0;
  std::uint64_t read_bytes_ = 0;
  StageTimer chunk_timer_;
  std::uint64_t chunk_items_ = 0;
  std::uint64_t chunk_bytes_ = 0;
  std::vector<WorkerLog> worker_logs_;
  StageTimer dedup_timer_;
  std::uint64_t dedup_items_ = 0;
  std::uint64_t dedup_bytes_ = 0;
  bool stats_flushed_ = false;

  Stage read_stage_;
  Stage chunk_stage_;
  Stage hash_stage_;
};

/// Opens the ingest front end over `source`: serial when hash_workers is
/// 0, the staged pipeline otherwise. This is the single switch point every
/// engine goes through.
std::unique_ptr<HashedChunkStream> open_hashed_stream(
    ByteSource& source, std::unique_ptr<Chunker> chunker,
    std::uint32_t hash_workers, std::uint32_t queue_depth = 64,
    PipelineStats* stats_sink = nullptr);

}  // namespace mhd
