// hysteresis_anatomy — a guided tour of SHM, BME/FME and HHR.
//
// Builds the paper's Fig. 1/5/6 scenario by hand: a first disk image, a
// second image that shares a slice of it, a third that shares a slice of
// the second — and narrates what the MHD engine does at each step: how
// many hashes represent each file (Fig. 1's "only 5 hash values" point),
// which manifests get hysteresis-re-chunked, and why the same slice never
// triggers HHR twice (the EdgeHash).
//
//   ./hysteresis_anatomy [--ecs=1024] [--sd=16]
#include <cstdio>

#include "mhd/core/mhd_engine.h"
#include "mhd/format/manifest.h"
#include "mhd/store/memory_backend.h"
#include "mhd/util/flags.h"
#include "mhd/util/random.h"
#include "mhd/workload/block_source.h"

namespace {

using namespace mhd;

ByteVec content(std::uint64_t id, std::size_t n) {
  BlockSource src(7);
  ByteVec out(n);
  src.fill(id, 0, out);
  return out;
}

void show_manifest(const MemoryBackend& backend, const std::string& file) {
  const auto raw =
      backend.get(Ns::kManifest, DedupEngine::file_digest(file).hex());
  if (!raw) {
    std::printf("  %-10s: fully duplicate — no DiskChunk, no Manifest\n",
                file.c_str());
    return;
  }
  const auto m = Manifest::deserialize(*raw);
  std::size_t hooks = 0, merged = 0, singles = 0;
  for (const auto& e : m->entries()) {
    if (e.is_hook) {
      ++hooks;
    } else if (e.chunk_count > 1) {
      ++merged;
    } else {
      ++singles;
    }
  }
  std::printf("  %-10s: %zu manifest entries (%zu hooks, %zu merged, %zu "
              "single) for %llu stored bytes\n",
              file.c_str(), m->entries().size(), hooks, merged, singles,
              static_cast<unsigned long long>(
                  backend.content_bytes(Ns::kDiskChunk)));
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  EngineConfig cfg;
  cfg.ecs = static_cast<std::uint32_t>(flags.get_int("ecs", 1024));
  cfg.sd = static_cast<std::uint32_t>(flags.get_int("sd", 16));

  MemoryBackend backend;
  ObjectStore store(backend);
  MhdEngine engine(store, cfg);

  // Fig. 1 content: File-1 = [Slice-1 | Slice-2]; File-2 = [Slice-3 |
  // Slice-4 | Slice-1]; File-3 = [Slice-3 | fresh].
  const ByteVec slice1 = content(1, 120 << 10);
  const ByteVec slice2 = content(2, 100 << 10);
  const ByteVec slice3 = content(3, 80 << 10);
  const ByteVec slice4 = content(4, 90 << 10);
  const ByteVec fresh = content(5, 60 << 10);

  ByteVec file1 = slice1;
  append(file1, slice2);
  ByteVec file2 = slice3;
  append(file2, slice4);
  append(file2, slice1);
  ByteVec file3 = slice3;
  append(file3, fresh);

  auto feed = [&](const char* name, const ByteVec& bytes) {
    const auto before = engine.counters();
    MemorySource src(bytes);
    engine.add_file(name, src);
    const auto& after = engine.counters();
    std::printf("\nafter %s (%zu KB):\n", name, bytes.size() >> 10);
    std::printf("  duplicate found    : %llu bytes in %llu slice(s)\n",
                static_cast<unsigned long long>(after.dup_bytes -
                                                before.dup_bytes),
                static_cast<unsigned long long>(after.dup_slices -
                                                before.dup_slices));
    std::printf("  HHR re-chunkings   : +%llu (chunk reloads +%llu)\n",
                static_cast<unsigned long long>(after.hhr_operations -
                                                before.hhr_operations),
                static_cast<unsigned long long>(after.hhr_chunk_reloads -
                                                before.hhr_chunk_reloads));
  };

  std::printf("=== Hysteresis re-chunking, step by step (ECS=%u, SD=%u) ===\n",
              cfg.ecs, cfg.sd);
  feed("file1", file1);
  show_manifest(backend, "file1");
  std::printf("  (file1 alone: SHM merges SD-1 chunks per hash — a few "
              "hashes cover the whole file)\n");

  feed("file2", file2);
  engine.finish();  // flush dirty manifests so we can inspect them
  show_manifest(backend, "file1");
  show_manifest(backend, "file2");
  std::printf("  (file2's tail matched Slice-1 inside file1: file1's merged "
              "entries were re-chunked\n   at the discovered edge — "
              "hysteresis: the old manifest adapts only when duplication\n"
              "   is actually observed)\n");

  feed("file3", file3);
  engine.finish();
  show_manifest(backend, "file2");
  show_manifest(backend, "file3");

  // Re-feed file3: the EdgeHash pinned the boundary, so no new HHR.
  feed("file3-again", file3);
  std::printf("  (identical slice again: hash-matches the re-chunked "
              "entries directly — zero new HHR)\n");

  engine.finish();
  std::printf("\ntotal manifest bytes for ~%zu KB of input: %llu\n",
              (file1.size() + file2.size() + file3.size()) >> 10,
              static_cast<unsigned long long>(
                  backend.content_bytes(Ns::kManifest)));
  return 0;
}
