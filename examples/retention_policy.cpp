// retention_policy — the operational lifecycle of a deduplicating backup
// store: nightly backups accumulate, a retention policy expires old ones,
// garbage collection reclaims the space, and a scrub proves the survivors
// are intact. Exercises the maintenance subsystem (store/maintenance.h)
// on top of the BF-MHD engine.
//
//   ./retention_policy [--size_mb=24] [--keep_last=4] [--ecs=1024] [--sd=16]
#include <cstdio>

#include "mhd/core/mhd_engine.h"
#include "mhd/store/maintenance.h"
#include "mhd/store/memory_backend.h"
#include "mhd/util/flags.h"
#include "mhd/workload/presets.h"

int main(int argc, char** argv) {
  using namespace mhd;
  const Flags flags(argc, argv);
  const auto size_mb = static_cast<std::uint64_t>(flags.get_int("size_mb", 24));
  const auto keep_last =
      static_cast<std::uint32_t>(flags.get_int("keep_last", 4));

  EngineConfig cfg;
  cfg.ecs = static_cast<std::uint32_t>(flags.get_int("ecs", 1024));
  cfg.sd = static_cast<std::uint32_t>(flags.get_int("sd", 16));

  const Corpus corpus(icpp13_preset(size_mb, 1));
  const auto& ccfg = corpus.config();
  std::printf("ingesting %u machines x %u nights (%.1f MB)...\n",
              ccfg.machines, ccfg.snapshots, corpus.total_bytes() / 1048576.0);

  MemoryBackend backend;
  {
    ObjectStore store(backend);
    MhdEngine engine(store, cfg);
    for (std::size_t i = 0; i < corpus.files().size(); ++i) {
      auto src = corpus.open(i);
      engine.add_file(corpus.files()[i].name, *src);
    }
    engine.finish();
  }
  const auto before_chunks = backend.content_bytes(Ns::kDiskChunk);
  std::printf("stored: %.1f MB data, %llu objects\n",
              before_chunks / 1048576.0,
              static_cast<unsigned long long>(backend.total_objects()));

  // Retention: keep only the last `keep_last` nights of every machine.
  std::uint32_t expired = 0;
  for (const auto& f : corpus.files()) {
    if (f.snapshot + keep_last < ccfg.snapshots) {
      if (delete_file(backend, f.name)) ++expired;
    }
  }
  std::printf("retention: expired %u backups (keeping last %u nights)\n",
              expired, keep_last);

  const auto gc = collect_garbage(backend);
  std::printf("gc: reclaimed %.2f MB in %llu chunks (%llu live kept); "
              "%llu manifests, %llu hooks removed\n",
              gc.reclaimed_bytes / 1048576.0,
              static_cast<unsigned long long>(gc.deleted_chunks),
              static_cast<unsigned long long>(gc.live_chunks),
              static_cast<unsigned long long>(gc.deleted_manifests),
              static_cast<unsigned long long>(gc.deleted_hooks));
  std::printf("store is now %.1f MB (was %.1f MB)\n",
              backend.content_bytes(Ns::kDiskChunk) / 1048576.0,
              before_chunks / 1048576.0);

  // Survivors must restore byte-exactly and the repository must scrub
  // clean. Note: early backups' data that later backups deduplicated
  // against is still referenced, so it survives GC — deleting a backup
  // never harms another.
  ObjectStore store(backend);
  MhdEngine engine(store, cfg);
  std::size_t verified = 0;
  for (std::size_t i = 0; i < corpus.files().size(); ++i) {
    const auto& f = corpus.files()[i];
    if (f.snapshot + keep_last < ccfg.snapshots) continue;
    auto src = corpus.open(i);
    const ByteVec original = read_all(*src);
    const auto restored = engine.reconstruct(f.name);
    if (!restored || !equal(*restored, original)) {
      std::printf("RESTORE FAILED: %s\n", f.name.c_str());
      return 1;
    }
    ++verified;
  }
  const auto report = scrub_repository(backend);
  std::printf("verified %zu surviving backups byte-exactly; scrub: %s\n",
              verified, report.clean() ? "CLEAN" : "PROBLEMS FOUND");
  return report.clean() ? 0 : 1;
}
