// fsck_cli — offline checker/repairer for framed repositories.
//
//   ./fsck_cli check  <repo_dir>            verify every object + refs
//   ./fsck_cli repair <repo_dir>            fix what is fixable:
//                                           torn chunk tails truncated to
//                                           the last intact record and
//                                           re-sealed, corrupt objects
//                                           quarantined under
//                                           <repo>/quarantine/, dangling
//                                           hooks dropped
//   ./fsck_cli corrupt <repo_dir> [opts]    test fixture: flip one stored
//                                           byte (--ns=hooks --index=0
//                                           --byte=-1 for the middle)
//   ./fsck_cli tear <repo_dir> [opts]       test fixture: cut bytes off a
//                                           chunk tail (--index=0 --cut=5)
//
// check exits 0 on a clean repository, 1 otherwise (orphans are
// informational and do not dirty the result). The corrupt/tear fixtures
// write through the raw files, bypassing the backend — exactly the bit
// rot and torn writes the framing exists to catch.
//
// Container repositories (dedup_cli --container-mb) need no extra flags:
// fsck truncates torn container tails back to the last intact record,
// quarantines corrupt chunk maps, and cross-checks every chunk map extent
// against the surviving container bytes (--ns=containers / --ns=chunkmaps
// aim the fixtures at that layout).
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "mhd/store/file_backend.h"
#include "mhd/store/scrub.h"
#include "mhd/util/flags.h"

namespace {

using namespace mhd;

std::optional<Ns> ns_from_string(const std::string& s) {
  for (int i = 0; i < static_cast<int>(Ns::kCount); ++i) {
    if (s == ns_name(static_cast<Ns>(i))) return static_cast<Ns>(i);
  }
  return std::nullopt;
}

int cmd_check(const Flags& flags, bool repair) {
  const auto& args = flags.positional();
  if (args.size() != 2) {
    std::fprintf(stderr, "usage: fsck_cli %s <repo>\n",
                 repair ? "repair" : "check");
    return 2;
  }
  FileBackend backend(args[1]);
  const auto report = fsck_repository(backend, repair);
  std::printf("%s", report.to_string().c_str());
  if (report.clean()) {
    std::printf("repository is CLEAN%s\n",
                report.orphans != 0 ? " (orphans reclaimable via gc)" : "");
    return 0;
  }
  if (repair && report.repaired != 0) {
    // Everything repairable was repaired; a second pass reports what's left.
    FileBackend reopened(args[1]);
    const auto after = fsck_repository(reopened, false);
    std::printf("after repair: %s", after.to_string().c_str());
    return after.clean() ? 0 : 1;
  }
  std::printf("repository is DAMAGED%s\n",
              repair ? "" : " (try 'fsck_cli repair')");
  return 1;
}

/// Picks the --index'th object of --ns (sorted order) and returns its path.
std::optional<std::filesystem::path> target_object(const Flags& flags,
                                                   const FileBackend& backend,
                                                   const std::string& def_ns,
                                                   Ns* out_ns) {
  const auto ns = ns_from_string(flags.get("ns", def_ns));
  if (!ns) {
    std::fprintf(stderr, "unknown --ns (want diskchunks|hooks|manifests|"
                         "filemanifests|index|containers|chunkmaps)\n");
    return std::nullopt;
  }
  const auto names = backend.list(*ns);
  const auto index =
      static_cast<std::size_t>(flags.get_int("index", 0));
  if (index >= names.size()) {
    std::fprintf(stderr, "namespace %s has only %zu objects\n",
                 ns_name(*ns), names.size());
    return std::nullopt;
  }
  *out_ns = *ns;
  return backend.root() / ns_name(*ns) / names[index];
}

int cmd_corrupt(const Flags& flags) {
  const auto& args = flags.positional();
  if (args.size() != 2) {
    std::fprintf(stderr, "usage: fsck_cli corrupt <repo> [--ns=hooks] "
                         "[--index=0] [--byte=-1]\n");
    return 2;
  }
  FileBackend backend(args[1]);
  Ns ns;
  const auto path = target_object(flags, backend, "hooks", &ns);
  if (!path) return 1;

  std::fstream file(*path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekg(0, std::ios::end);
  const auto size = static_cast<long long>(file.tellg());
  if (size <= 0) return 1;
  long long offset = flags.get_int("byte", -1);
  if (offset < 0) offset = size / 2;
  if (offset >= size) offset = size - 1;
  file.seekg(offset);
  char byte = 0;
  file.read(&byte, 1);
  byte ^= 0x01;  // single-bit flip: the weakest corruption we must catch
  file.seekp(offset);
  file.write(&byte, 1);
  std::printf("flipped bit 0 of byte %lld in %s\n", offset,
              path->string().c_str());
  return file ? 0 : 1;
}

int cmd_tear(const Flags& flags) {
  const auto& args = flags.positional();
  if (args.size() != 2) {
    std::fprintf(stderr, "usage: fsck_cli tear <repo> [--index=0] [--cut=5]\n");
    return 2;
  }
  FileBackend backend(args[1]);
  Ns ns;
  const auto path = target_object(flags, backend, "diskchunks", &ns);
  if (!path) return 1;
  const auto size = std::filesystem::file_size(*path);
  const auto cut = static_cast<std::uint64_t>(flags.get_int("cut", 5));
  if (cut >= size) {
    std::fprintf(stderr, "cut %llu >= object size %llu\n",
                 static_cast<unsigned long long>(cut),
                 static_cast<unsigned long long>(size));
    return 1;
  }
  std::filesystem::resize_file(*path, size - cut);
  std::printf("tore %llu bytes off %s\n",
              static_cast<unsigned long long>(cut), path->string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const mhd::Flags flags(argc, argv);
  const auto& args = flags.positional();
  if (args.empty()) {
    std::fprintf(stderr, "usage: fsck_cli <check|repair|corrupt|tear> ...\n");
    return 2;
  }
  if (args[0] == "check") return cmd_check(flags, /*repair=*/false);
  if (args[0] == "repair") return cmd_check(flags, /*repair=*/true);
  if (args[0] == "corrupt") return cmd_corrupt(flags);
  if (args[0] == "tear") return cmd_tear(flags);
  std::fprintf(stderr, "unknown command: %s\n", args[0].c_str());
  return 2;
}
