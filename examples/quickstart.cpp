// Quickstart — the smallest useful MHD program.
//
// Generates a tiny synthetic backup corpus (3 machines x 3 nightly disk
// images), deduplicates it with BF-MHD through an in-memory store, prints
// the headline numbers, and proves the store is lossless by restoring one
// image byte-for-byte.
//
//   ./quickstart [--size_mb=8] [--ecs=2048] [--sd=32]
#include <cstdio>

#include "mhd/core/mhd_engine.h"
#include "mhd/metrics/metrics.h"
#include "mhd/store/memory_backend.h"
#include "mhd/util/flags.h"
#include "mhd/workload/presets.h"

int main(int argc, char** argv) {
  using namespace mhd;
  const Flags flags(argc, argv);

  // 1. A corpus: 3 PCs backed up nightly for 3 days (~--size_mb total).
  CorpusConfig corpus_cfg;
  corpus_cfg.machines = 3;
  corpus_cfg.snapshots = 3;
  corpus_cfg.os_count = 2;
  corpus_cfg.image_bytes = std::max<std::uint64_t>(
      (static_cast<std::uint64_t>(flags.get_int("size_mb", 8)) << 20) / 9,
      256 << 10);
  const Corpus corpus(corpus_cfg);

  // 2. An engine: BF-MHD over an in-memory hash-addressable store.
  EngineConfig cfg;
  cfg.ecs = static_cast<std::uint32_t>(flags.get_int("ecs", 2048));
  cfg.sd = static_cast<std::uint32_t>(flags.get_int("sd", 32));
  MemoryBackend backend;
  ObjectStore store(backend);
  MhdEngine engine(store, cfg);

  // 3. Feed the backup stream file by file.
  for (std::size_t i = 0; i < corpus.files().size(); ++i) {
    auto src = corpus.open(i);
    engine.add_file(corpus.files()[i].name, *src);
  }
  engine.finish();

  // 4. Headline numbers.
  const DiskModel disk;
  const auto r = summarize(engine.name(), engine, backend, disk);
  std::printf("deduplicated %zu disk images (%.1f MB)\n",
              corpus.files().size(), r.input_bytes / 1048576.0);
  std::printf("  stored data        : %.1f MB\n",
              r.stored_data_bytes / 1048576.0);
  std::printf("  metadata           : %.3f%% of input\n",
              r.metadata_ratio() * 100);
  std::printf("  data-only DER      : %.2f\n", r.data_only_der());
  std::printf("  real DER           : %.2f\n", r.real_der());
  std::printf("  duplicate slices   : %llu (DAD %.1f KB)\n",
              static_cast<unsigned long long>(r.counters.dup_slices),
              r.dad_bytes() / 1024.0);
  std::printf("  HHR re-chunkings   : %llu\n",
              static_cast<unsigned long long>(r.counters.hhr_operations));

  // 5. Restore an image and verify it byte-for-byte.
  const std::string& name = corpus.files().back().name;
  const auto restored = engine.reconstruct(name);
  auto src = corpus.open(corpus.files().size() - 1);
  const ByteVec original = read_all(*src);
  if (!restored || !equal(*restored, original)) {
    std::printf("RESTORE FAILED for %s\n", name.c_str());
    return 1;
  }
  std::printf("restore check      : %s restored byte-exactly (%zu bytes)\n",
              name.c_str(), restored->size());
  return 0;
}
