// run_experiment — the researcher's CLI: run any engine over a synthetic
// corpus with full parameter control and get every metric of the paper as
// a table and as JSON (for plotting pipelines).
//
//   ./run_experiment --algo=bf-mhd --size_mb=48 --ecs=1024 --sd=32
//                    [--chunker=rabin|tttd|gear]
//                    [--chunker-impl=auto|scalar|simd]
//                    [--hash-impl=auto|shani|simd|portable] [--cache_kb=256]
//                    [--index-impl=mem|disk|sampled] [--index-cache-mb=8]
//                    [--index-bloom-bits-per-key=10]
//                    [--sample-bits=6] [--champions=10]
//                    [--pipeline] [--ingest-threads=N]
//                    [--framed] [--fault-plan=SPEC]
//                    [--container-mb=N] [--rewrite=none|cbr|har]
//                    [--cbr-segment-mb=4] [--cbr-cap=16] [--har-util=0.5]
//                    [--restore-cache-mb=32] [--measure-restore]
//                    [--verify] [--json]
//
// --pipeline enables the staged concurrent ingest (4 hash workers);
// --ingest-threads=N picks the pool size explicitly (0 = serial). Results
// are bit-identical either way; pipelined runs additionally report
// per-stage busy/idle/queue-depth counters.
// --index-impl=disk routes the fingerprint index through the persistent
// sharded on-disk index (bounded RAM, warm restart); --index-cache-mb
// bounds its hot bucket-page cache (accepts K/M/G suffixes, bare number =
// MB) and --index-bloom-bits-per-key sizes its negative-lookup bloom.
// --index-impl=sampled keeps only a sparse similarity hook table resident
// (fingerprints whose low --sample-bits bits are zero); a hook hit loads
// up to --champions similar segments for full-segment dedup, and
// duplicates the sample misses are stored again — the loss is reported as
// sampled missed-dup MB, never hidden.
// --framed stores every object with CRC32C self-verification framing
// (dedup results stay bit-identical; the framing overhead is reported);
// --fault-plan injects deterministic storage faults below the framing,
// e.g. --fault-plan=torn@120:0.5,readerr@3x2,seed:7 (see
// store/fault_backend.h for the mini-language).
// --container-mb packs chunk data into fixed-size containers (the
// fragmentation-aware layout; 0 = legacy per-chunk objects) and
// --rewrite selects the dedup-time fragmentation control: cbr caps the
// distinct old containers a segment may reference, har rewrites
// duplicates into containers that went sparse across generations.
// --restore-cache-mb budgets the restore path's whole-container LRU;
// --measure-restore times a full streaming restore of the corpus after
// ingest and reports restore MB/s, containers-read-per-MB and CFL.
#include <cstdio>

#include "mhd/metrics/json_export.h"
#include "mhd/sim/runner.h"
#include "mhd/util/flags.h"
#include "mhd/util/table.h"
#include "mhd/workload/presets.h"

int main(int argc, char** argv) {
  using namespace mhd;
  const Flags flags(argc, argv);

  RunSpec spec;
  spec.algorithm = flags.get("algo", "bf-mhd");
  spec.engine.ecs = static_cast<std::uint32_t>(flags.get_int("ecs", 1024));
  spec.engine.sd = static_cast<std::uint32_t>(flags.get_int("sd", 32));
  spec.engine.chunker =
      chunker_kind_from_string(flags.get("chunker", "rabin"));
  spec.engine.chunker_impl = chunker_impl_from_string(
      flags.get_choice("chunker-impl", {"auto", "scalar", "simd"}, "auto"));
  spec.engine.hash_impl = sha1_impl_from_string(flags.get_choice(
      "hash-impl", {"auto", "shani", "simd", "portable"}, "auto"));
  spec.engine.manifest_cache_bytes =
      static_cast<std::uint64_t>(flags.get_int("cache_kb", 256)) << 10;
  spec.engine.manifest_cache_capacity = 4096;
  const std::string index_impl =
      flags.get_choice("index-impl", {"mem", "disk", "sampled"}, "mem");
  spec.engine.index_impl = index_impl == "disk"      ? IndexImpl::kDisk
                           : index_impl == "sampled" ? IndexImpl::kSampled
                                                     : IndexImpl::kMem;
  spec.engine.sample_bits = static_cast<std::uint32_t>(
      flags.get_uint("sample-bits", spec.engine.sample_bits, 0, 64));
  spec.engine.max_champions = static_cast<std::uint32_t>(
      flags.get_uint("champions", spec.engine.max_champions, 1, 1024));
  spec.engine.index_cache_bytes =
      flags.get_size("index-cache-mb", spec.engine.index_cache_bytes,
                     64ull << 10, 1ull << 40, /*unit=*/1ull << 20);
  spec.engine.index_bloom_bits_per_key = static_cast<std::uint32_t>(
      flags.get_uint("index-bloom-bits-per-key", 10, 1, 64));
  spec.engine.ingest_threads = static_cast<std::uint32_t>(flags.get_uint(
      "ingest-threads", flags.get_bool("pipeline", false) ? 4 : 0, 0, 256));
  spec.engine.pipeline_queue_depth = static_cast<std::uint32_t>(
      flags.get_uint("pipeline-queue-depth", 64, 1, 65536));
  spec.engine.framed = flags.get_bool("framed", false);
  spec.engine.fault_plan = flags.get("fault-plan", "");
  spec.engine.container_bytes =
      flags.get_size("container-mb", 0, 0, 1ull << 40, /*unit=*/1ull << 20);
  spec.engine.rewrite = *parse_rewrite_mode(
      flags.get_choice("rewrite", {"none", "cbr", "capping", "har"}, "none"));
  spec.engine.cbr_segment_bytes =
      flags.get_size("cbr-segment-mb", spec.engine.cbr_segment_bytes,
                     64ull << 10, 1ull << 40, /*unit=*/1ull << 20);
  spec.engine.cbr_cap = static_cast<std::uint32_t>(
      flags.get_uint("cbr-cap", spec.engine.cbr_cap, 1, 65536));
  spec.engine.har_utilization =
      flags.get_double("har-util", spec.engine.har_utilization);
  spec.engine.restore_cache_bytes =
      flags.get_size("restore-cache-mb", spec.engine.restore_cache_bytes,
                     64ull << 10, 1ull << 40, /*unit=*/1ull << 20);
  spec.verify = flags.get_bool("verify", false);
  spec.measure_restore = flags.get_bool("measure-restore", false);

  const auto size_mb = static_cast<std::uint64_t>(flags.get_int("size_mb", 48));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const Corpus corpus(icpp13_preset(size_mb, seed));

  ExperimentResult r;
  try {
    r = run_experiment(spec, corpus);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "experiment failed: %s\n", e.what());
    return 1;
  }

  if (flags.get_bool("json", false)) {
    std::printf("%s\n", to_json(r).c_str());
    return 0;
  }

  std::printf("%s on %.1f MB (ECS=%u, SD=%u, chunker=%s/%s, sha1=%s)%s\n\n",
              r.algorithm.c_str(), r.input_bytes / 1048576.0, r.ecs, r.sd,
              r.chunker.c_str(), r.chunker_impl.c_str(), r.hash_impl.c_str(),
              spec.verify ? " [restores verified byte-exactly]" : "");
  TextTable t({"Metric", "Value"});
  t.add_row({"data-only DER", TextTable::num(r.data_only_der(), 3)});
  t.add_row({"real DER", TextTable::num(r.real_der(), 3)});
  t.add_row({"MetaDataRatio", TextTable::num(r.metadata_ratio() * 100, 4) + "%"});
  t.add_row({"ThroughputRatio", TextTable::num(r.throughput_ratio(), 3)});
  t.add_row({"stored data MB", TextTable::num(r.stored_data_bytes / 1048576.0, 2)});
  t.add_row({"metadata KB", TextTable::num(r.metadata.total_bytes() / 1024)});
  t.add_row({"inodes", TextTable::num(r.metadata.total_inodes())});
  t.add_row({"duplicate slices (L)", TextTable::num(r.counters.dup_slices)});
  t.add_row({"DAD KB", TextTable::num(r.dad_bytes() / 1024.0, 1)});
  t.add_row({"stored chunks (N)", TextTable::num(r.counters.stored_chunks)});
  t.add_row({"duplicate chunks (D)", TextTable::num(r.counters.dup_chunks)});
  t.add_row({"HHR operations", TextTable::num(r.counters.hhr_operations)});
  t.add_row({"HHR chunk reloads", TextTable::num(r.counters.hhr_chunk_reloads)});
  t.add_row({"manifest loads", TextTable::num(r.manifest_loads)});
  t.add_row({"disk accesses", TextTable::num(r.stats.total_accesses())});
  t.add_row({"index RAM KB", TextTable::num(r.index_ram_bytes / 1024)});
  t.add_row({"index impl", r.index_impl});
  t.add_row({"index entries", TextTable::num(r.index_entries)});
  if (r.index_impl == "sampled") {
    t.add_row({"sampled hook entries", TextTable::num(r.sampled_hook_entries)});
    t.add_row({"champion loads", TextTable::num(r.champion_loads)});
    t.add_row({"sampled missed-dup MB",
               TextTable::num(r.sampled_missed_dup_bytes / 1048576.0, 2)});
  }
  if (r.framed) {
    t.add_row({"framing overhead KB",
               TextTable::num(r.framing_overhead_bytes() / 1024.0, 1)});
  }
  if (r.container_bytes != 0) {
    t.add_row({"container MB", TextTable::num(r.container_bytes / 1048576.0, 1)});
    t.add_row({"containers sealed", TextTable::num(r.containers_sealed)});
    t.add_row({"container packed MB",
               TextTable::num(r.container_packed_bytes / 1048576.0, 2)});
    t.add_row({"rewrite mode", r.rewrite_mode});
    if (r.rewrite_mode != "none") {
      t.add_row({"rewritten chunks", TextTable::num(r.counters.rewritten_chunks)});
      t.add_row({"rewritten MB",
                 TextTable::num(r.counters.rewritten_bytes / 1048576.0, 2)});
      t.add_row({"rewrite ratio",
                 TextTable::num(r.rewrite_ratio() * 100, 2) + "%"});
    }
  }
  if (r.restore.bytes != 0) {
    t.add_row({"restore MB/s", TextTable::num(r.restore.mb_per_s(), 1)});
    t.add_row({"containers read / MB",
               TextTable::num(r.restore.containers_read_per_mb(), 3)});
    t.add_row({"CFL", TextTable::num(r.restore.cfl, 3)});
  }
  if (r.stats.transient_retries != 0) {
    t.add_row({"transient retries", TextTable::num(r.stats.transient_retries)});
  }
  if (r.counters.corruption_fallbacks != 0) {
    t.add_row({"corruption fallbacks",
               TextTable::num(r.counters.corruption_fallbacks)});
  }
  std::printf("%s", t.to_string().c_str());

  if (!r.pipeline.empty()) {
    std::printf("\ningest pipeline (%u hash workers, %llu files)\n",
                r.ingest_threads,
                static_cast<unsigned long long>(r.pipeline.files));
    TextTable p({"Stage", "Threads", "Items", "MB", "Busy s", "Idle s",
                 "Util", "Queue HWM"});
    for (const auto& s : r.pipeline.stages) {
      p.add_row({s.stage,
                 TextTable::num(static_cast<std::uint64_t>(s.threads)),
                 TextTable::num(s.items),
                 TextTable::num(s.bytes / 1048576.0, 1),
                 TextTable::num(s.busy_seconds, 3),
                 TextTable::num(s.idle_seconds, 3),
                 TextTable::num(s.utilization() * 100, 1) + "%",
                 TextTable::num(s.queue_high_water)});
    }
    std::printf("%s", p.to_string().c_str());
  }
  return 0;
}
